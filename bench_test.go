// Benchmarks regenerating the paper's evaluation (§VI), one per table and
// figure, at ScaleSmall so `go test -bench=.` stays tractable; use
// cmd/caracbench for the paper-style tables at larger scales.
package carac

import (
	"testing"
	"time"

	"carac/internal/analysis"
	"carac/internal/bench"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/engines"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/jit/bytecode"
	"carac/internal/jit/lambda"
	"carac/internal/jit/quotes"
	"carac/internal/optimizer"
	"carac/internal/plancache"
	"carac/internal/storage"
	"carac/internal/workloads"
)

func newBenchRelation(indexed bool) *storage.Relation {
	r := storage.NewRelation("bench", 2)
	if indexed {
		r.BuildIndex(0)
	}
	return r
}

var benchSizes = bench.SizesFor(bench.ScaleSmall)

// runProgram benchmarks repeated runs of one prepared program, returning the
// last run's Result for benchmarks that report cache metrics.
func runProgram(b *testing.B, built *analysis.Built, opts core.Options) *core.Result {
	b.Helper()
	opts.Timeout = 2 * time.Minute
	// Warm once (captures the ground-fact baseline, registers indexes).
	if _, err := built.P.Run(opts); err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := built.P.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

// --- Table I: interpreted execution time -------------------------------

func BenchmarkTable1(b *testing.B) {
	sz := benchSizes
	pts := datagen.SListLib(sz.SListLib, sz.Seed)
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	csda := datagen.CSDAGraph(sz.CSDA, sz.Seed)

	cases := []struct {
		name  string
		form  analysis.Formulation
		build func(analysis.Formulation) *analysis.Built
	}{
		{"Ackermann", analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) }},
		{"Ackermann", analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) }},
		{"Fibonacci", analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Fibonacci(f, sz.FibN) }},
		{"Fibonacci", analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Fibonacci(f, sz.FibN) }},
		{"Primes", analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) }},
		{"Primes", analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) }},
		{"Andersen", analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return analysis.Andersen(f, pts) }},
		{"Andersen", analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return analysis.Andersen(f, pts) }},
		{"InvFuns", analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return analysis.InvFuns(f, pts) }},
		{"InvFuns", analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return analysis.InvFuns(f, pts) }},
		{sz.CSPAName, analysis.Unoptimized, func(f analysis.Formulation) *analysis.Built { return analysis.CSPA(f, cspa) }},
		{sz.CSPAName, analysis.HandOptimized, func(f analysis.Formulation) *analysis.Built { return analysis.CSPA(f, cspa) }},
		{"CSDA", analysis.HandOptimized, func(analysis.Formulation) *analysis.Built { return analysis.CSDA(csda) }},
	}
	for _, c := range cases {
		for _, indexed := range []bool{false, true} {
			if !indexed && (c.name == "CSDA" || c.name == sz.CSPAName) {
				continue // paper runs these indexed-only
			}
			idx := "Unindexed"
			if indexed {
				idx = "Indexed"
			}
			c := c
			indexed := indexed
			b.Run(c.name+"/"+idx+"/"+c.form.String(), func(b *testing.B) {
				runProgram(b, c.build(c.form), core.Options{Indexed: indexed})
			})
		}
	}
}

// --- Fig 5: code-generation time per granularity ------------------------

func BenchmarkFig5_Codegen(b *testing.B) {
	built := analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(benchSizes.CSPA, benchSizes.Seed))
	root, err := ir.Lower(built.P.AST())
	if err != nil {
		b.Fatal(err)
	}
	cat := built.P.Catalog()
	nodes := map[string]ir.Op{}
	ir.Walk(root, func(o ir.Op) {
		key := o.Kind().String()
		if _, ok := nodes[key]; !ok {
			nodes[key] = o
		}
	})

	for _, gran := range []string{"ProgramOp", "DoWhileOp", "UnionOp*", "UnionOp", "SPJ"} {
		op := nodes[gran]
		if op == nil {
			continue
		}
		b.Run("QuotesWarmFull/"+gran, func(b *testing.B) {
			c := quotes.NewCompiler()
			if _, err := c.Compile(op, cat, false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Compile(op, cat, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("QuotesColdFull/"+gran, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := quotes.NewCompiler().Compile(op, cat, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("QuotesWarmSnippet/"+gran, func(b *testing.B) {
			c := quotes.NewCompiler()
			if _, err := c.Compile(op, cat, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Compile(op, cat, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Bytecode/"+gran, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (bytecode.Compiler{}).Compile(op, cat, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Lambda/"+gran, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (lambda.Compiler{}).Compile(op, cat, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs 6/7: JIT speedup over unoptimized inputs -----------------------

func benchJITConfigs(b *testing.B, build func(analysis.Formulation) *analysis.Built, inputForm analysis.Formulation) {
	b.Helper()
	b.Run("InterpBaseline", func(b *testing.B) {
		runProgram(b, build(inputForm), core.Options{Indexed: true})
	})
	for _, jc := range bench.JITConfigs() {
		jc := jc
		b.Run(jc.Name, func(b *testing.B) {
			runProgram(b, build(inputForm), core.Options{Indexed: true, JIT: jc.Cfg})
		})
	}
}

func BenchmarkFig6_Macro(b *testing.B) {
	sz := benchSizes
	pts := datagen.SListLib(sz.SListLib, sz.Seed)
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	b.Run("Andersen", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return analysis.Andersen(f, pts) }, analysis.Unoptimized)
	})
	b.Run("InvFuns", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return analysis.InvFuns(f, pts) }, analysis.Unoptimized)
	})
	b.Run(sz.CSPAName, func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return analysis.CSPA(f, cspa) }, analysis.Unoptimized)
	})
}

func BenchmarkFig7_Micro(b *testing.B) {
	sz := benchSizes
	b.Run("Ackermann", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) }, analysis.Unoptimized)
	})
	b.Run("Fibonacci", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return workloads.Fibonacci(f, sz.FibN) }, analysis.Unoptimized)
	})
	b.Run("Primes", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) }, analysis.Unoptimized)
	})
}

// --- Figs 8/9: JIT applied to already hand-optimized inputs --------------

func BenchmarkFig8_MacroHandOpt(b *testing.B) {
	sz := benchSizes
	pts := datagen.SListLib(sz.SListLib, sz.Seed)
	csda := datagen.CSDAGraph(sz.CSDA, sz.Seed)
	b.Run("Andersen", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return analysis.Andersen(f, pts) }, analysis.HandOptimized)
	})
	b.Run("CSDA", func(b *testing.B) {
		benchJITConfigs(b, func(analysis.Formulation) *analysis.Built { return analysis.CSDA(csda) }, analysis.HandOptimized)
	})
}

func BenchmarkFig9_MicroHandOpt(b *testing.B) {
	sz := benchSizes
	b.Run("Ackermann", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) }, analysis.HandOptimized)
	})
	b.Run("Primes", func(b *testing.B) {
		benchJITConfigs(b, func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) }, analysis.HandOptimized)
	})
}

// --- Fig 10: AOT macro staging vs online ---------------------------------

func BenchmarkFig10_AOT(b *testing.B) {
	sz := benchSizes
	configs := []struct {
		name string
		opts core.Options
	}{
		{"JIT-lambda", core.Options{JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}}},
		{"MacroFactsRulesOnline", core.Options{AOT: core.AOTFactsAndRules, JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		{"MacroRulesOnline", core.Options{AOT: core.AOTRulesOnly, JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		{"MacroFactsRules", core.Options{AOT: core.AOTFactsAndRules}},
		{"MacroRules", core.Options{AOT: core.AOTRulesOnly}},
	}
	micro := map[string]func(analysis.Formulation) *analysis.Built{
		"Ackermann": func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) },
		"Fibonacci": func(f analysis.Formulation) *analysis.Built { return workloads.Fibonacci(f, sz.FibN) },
		"Primes":    func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) },
	}
	for name, build := range micro {
		for _, c := range configs {
			c := c
			build := build
			b.Run(name+"/"+c.name, func(b *testing.B) {
				runProgram(b, build(analysis.Unoptimized), c.opts)
			})
		}
	}
}

// --- Table II: baseline engines -----------------------------------------

func BenchmarkTable2_Engines(b *testing.B) {
	sz := benchSizes
	pts := datagen.SListLib(sz.SListLib, sz.Seed)
	csda := datagen.CSDAGraph(sz.CSDA, sz.Seed)
	build := map[string]func() *analysis.Built{
		"InvFuns": func() *analysis.Built { return analysis.InvFuns(analysis.HandOptimized, pts) },
		"CSDA":    func() *analysis.Built { return analysis.CSDA(csda) },
	}
	const cxx = 50 * time.Millisecond // scaled-down external compile cost
	for name, bf := range build {
		bf := bf
		b.Run(name+"/DLX", func(b *testing.B) {
			built := bf()
			for i := 0; i < b.N; i++ {
				if _, err := engines.RunDLX(built, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, mode := range []engines.SouffleMode{engines.SouffleInterp, engines.SouffleCompile, engines.SouffleAutoTune} {
			mode := mode
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				built := bf()
				for i := 0; i < b.N; i++ {
					if _, err := engines.RunSouffle(built, mode, cxx, time.Minute); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(name+"/Carac-JIT", func(b *testing.B) {
			runProgram(b, bf(), core.Options{Indexed: true,
				JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}})
		})
		b.Run(name+"/Carac-Sharded", func(b *testing.B) {
			built := bf()
			for i := 0; i < b.N; i++ {
				if _, err := engines.RunCaracSharded(built, 8, 0, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/Carac-Adaptive", func(b *testing.B) {
			built := bf()
			for i := 0; i < b.N; i++ {
				if _, err := engines.RunCaracAdaptive(built, 8, 0, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/Carac-AdaptiveJIT", func(b *testing.B) {
			built := bf()
			for i := 0; i < b.N; i++ {
				if _, err := engines.RunCaracAdaptiveJIT(built, 8, 0, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/Carac-Warm", func(b *testing.B) {
			built := bf()
			for i := 0; i < b.N; i++ {
				if _, err := engines.RunCaracWarm(built, 8, 0, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Skewed-graph row: the hub-and-spoke workload whose hot delta buckets
	// static spans straggle on, measured under the skew-aware configuration
	// (histograms + work stealing) against the static sharded engine.
	skew := func() *analysis.Built {
		return workloads.SkewedGraph(analysis.HandOptimized, 400, 900, 3, int(benchSizes.Seed))
	}
	b.Run("SkewedTC/Carac-Sharded", func(b *testing.B) {
		built := skew()
		for i := 0; i < b.N; i++ {
			if _, err := engines.RunCaracSharded(built, 8, 0, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SkewedTC/Carac-Skew", func(b *testing.B) {
		built := skew()
		for i := 0; i < b.N; i++ {
			if _, err := engines.RunCaracSkew(built, 8, 0, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations ------------------------------------------------------------

func BenchmarkAblation_Ordering(b *testing.B) {
	cspa := datagen.CSPAGraph(benchSizes.CSPA, benchSizes.Seed)
	for _, algo := range []optimizer.Algo{optimizer.AlgoSort, optimizer.AlgoGreedy} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			runProgram(b, analysis.CSPA(analysis.Unoptimized, cspa), core.Options{
				Indexed: true,
				JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ,
					Optimizer: optimizer.Options{Algo: algo, Selectivity: 0.5}},
			})
		})
	}
}

func BenchmarkAblation_Granularity(b *testing.B) {
	cspa := datagen.CSPAGraph(benchSizes.CSPA, benchSizes.Seed)
	for _, g := range []jit.Granularity{jit.GranProgram, jit.GranDoWhile, jit.GranUnionAll, jit.GranUnionRule, jit.GranSPJ} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			runProgram(b, analysis.CSPA(analysis.Unoptimized, cspa), core.Options{
				Indexed: true,
				JIT:     jit.Config{Backend: jit.BackendLambda, Granularity: g},
			})
		})
	}
}

func BenchmarkAblation_Freshness(b *testing.B) {
	cspa := datagen.CSPAGraph(benchSizes.CSPA, benchSizes.Seed)
	for _, th := range []float64{0.01, 0.5, 4} {
		th := th
		b.Run(bench.FormatSpeedup(th), func(b *testing.B) {
			runProgram(b, analysis.CSPA(analysis.Unoptimized, cspa), core.Options{
				Indexed: true,
				JIT:     jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranUnionAll, FreshnessThreshold: th},
			})
		})
	}
}

// --- Plan cache & parallel executor -------------------------------------

// BenchmarkPlanCache measures drift-gated plan reuse against the seed's
// cold per-execution planning: the hit-rate metric demonstrates plans being
// reused across fixpoint iterations, the reuse metric the fraction of
// subquery executions that skipped planning entirely.
func BenchmarkPlanCache(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	csda := datagen.CSDAGraph(sz.CSDA, sz.Seed)
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{sz.CSPAName, func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, cspa) }},
		{"CSDA", func() *analysis.Built { return analysis.CSDA(csda) }},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"ColdPlanning", core.Options{Indexed: true}},
		{"PlanCache", core.Options{Indexed: true, PlanCache: true}},
		{"Adaptive", core.Options{Indexed: true, AdaptivePlans: true}},
	}
	for _, w := range builds {
		for _, c := range configs {
			w, c := w, c
			b.Run(w.name+"/"+c.name, func(b *testing.B) {
				res := runProgram(b, w.build(), c.opts)
				if c.opts.PlanCache || c.opts.AdaptivePlans {
					b.ReportMetric(100*res.Plans.HitRate(), "hit%")
					if res.Interp.SPJRuns > 0 {
						b.ReportMetric(float64(res.Interp.PlanReuses)/float64(res.Interp.SPJRuns), "reuse/spj")
					}
					b.ReportMetric(float64(res.Interp.Reopts), "reopts")
				}
			})
		}
	}
}

// BenchmarkWarmRerun measures the Program-lifetime plan store: every
// iteration is a FULL re-run of an already-run Program, so the Cold
// configurations pay the per-Run re-planning (and re-compilation) tax on
// every iteration while SharedPlans starts from the store the previous run
// left behind. The custom metrics expose the acceptance properties
// directly: plan builds per run (strictly lower warm), cross-run hits
// (nonzero warm only), unit recompiles and cross-run unit reuse with a JIT
// attached, and the structural key count (below the rule count on the
// CSPA-style workload, whose rules share one shape).
func BenchmarkWarmRerun(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{sz.CSPAName, func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, cspa) }},
		{"TransitiveClosure", func() *analysis.Built {
			return workloads.TransitiveClosure(analysis.HandOptimized, 300, 800, int(sz.Seed))
		}},
	}
	lambdaSPJ := jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"ColdPlanCache", core.Options{Indexed: true, PlanCache: true}},
		{"SharedPlans", core.Options{Indexed: true, SharedPlans: true}},
		{"ColdJIT", core.Options{Indexed: true, PlanCache: true, JIT: lambdaSPJ}},
		{"SharedPlansJIT", core.Options{Indexed: true, SharedPlans: true, JIT: lambdaSPJ}},
	}
	for _, w := range builds {
		for _, c := range configs {
			w, c := w, c
			b.Run(w.name+"/"+c.name, func(b *testing.B) {
				built := w.build()
				res := runProgram(b, built, c.opts)
				b.ReportMetric(float64(res.Interp.PlanBuilds), "planbuilds/run")
				b.ReportMetric(float64(res.Plans.CrossRunHits), "crossrun-hits")
				if c.opts.JIT.Backend != jit.BackendOff {
					b.ReportMetric(float64(res.JIT.Compilations), "recompiles/run")
					b.ReportMetric(float64(res.Units.Hits), "unit-reuses")
					b.ReportMetric(float64(res.Units.CrossRunHits), "unit-crossrun")
				}
				if c.opts.SharedPlans {
					b.ReportMetric(float64(built.P.PlanStore().Keys(plancache.ClassPlans)), "plan-keys")
				}
			})
		}
	}
}

// BenchmarkParallelFixpoint compares the sequential semi-naive driver
// against the bounded-pool parallel rule executor on two workloads.
func BenchmarkParallelFixpoint(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	csda := datagen.CSDAGraph(sz.CSDA, sz.Seed)
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{sz.CSPAName, func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, cspa) }},
		{"CSDA", func() *analysis.Built { return analysis.CSDA(csda) }},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Sequential", core.Options{Indexed: true}},
		{"Parallel", core.Options{Indexed: true, ParallelUnions: true}},
		{"Parallel2", core.Options{Indexed: true, ParallelUnions: true, Workers: 2}},
		{"ParallelPlanCache", core.Options{Indexed: true, ParallelUnions: true, PlanCache: true}},
		{"ParallelAdaptive", core.Options{Indexed: true, ParallelUnions: true, AdaptivePlans: true}},
		{"Sharded8", core.Options{Indexed: true, Shards: 8}},
		{"Sharded8PlanCache", core.Options{Indexed: true, Shards: 8, PlanCache: true}},
		{"Adaptive8", core.Options{Indexed: true, Shards: 8, AdaptiveFanout: true}},
	}
	for _, w := range builds {
		for _, c := range configs {
			w, c := w, c
			b.Run(w.name+"/"+c.name, func(b *testing.B) {
				runProgram(b, w.build(), c.opts)
			})
		}
	}
}

// BenchmarkShardedSpeedup demonstrates the scaling property the sharded
// catalog exists for: a workload dominated by ONE recursive rule (transitive
// closure) cannot scale with -workers under rule-granular parallelism — the
// single rule serializes every iteration — but once Shards > 1 splits the
// rule's delta into hash buckets, the same workload scales with the worker
// count. Compare Parallel/W* (flat) against Sharded8/W* (scaling). The
// *JIT entries run the same fan-out with span-parameterized compiled units
// executing the bucket tasks — the fan-out × compilation interaction,
// archived by CI as BENCH_jitshard.json.
func BenchmarkShardedSpeedup(b *testing.B) {
	build := func() *analysis.Built {
		return workloads.TransitiveClosure(analysis.HandOptimized, 600, 1500, int(benchSizes.Seed))
	}
	lambdaSPJ := jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Sequential", core.Options{Indexed: true, PlanCache: true}},
		{"Parallel/W2", core.Options{Indexed: true, PlanCache: true, ParallelUnions: true, Workers: 2}},
		{"Parallel/W4", core.Options{Indexed: true, PlanCache: true, ParallelUnions: true, Workers: 4}},
		{"Sharded8/W1", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 1}},
		{"Sharded8/W2", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 2}},
		{"Sharded8/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4}},
		{"Adaptive8/W2", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 2, AdaptiveFanout: true}},
		{"Adaptive8/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, AdaptiveFanout: true}},
		{"Sharded8JIT/W2", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 2, JIT: lambdaSPJ}},
		{"Sharded8JIT/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, JIT: lambdaSPJ}},
		{"Adaptive8JIT/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, AdaptiveFanout: true, JIT: lambdaSPJ}},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			runProgram(b, build(), c.opts)
		})
	}
}

// BenchmarkSkewedSpeedup isolates the skew story BenchmarkShardedSpeedup's
// uniform graph cannot show: on the hub-and-spoke SkewedGraph the delta
// concentrates in a few hash buckets, so static contiguous bucket spans
// serialize each iteration behind the span holding the hubs — adding workers
// stops helping. The Steal* entries run the same fan-out with work-stealing
// per-bucket claims (plus histogram-fed ordering); compare Static*/W* against
// Steal*/W*. Archived by CI as BENCH_skew.json; the steal entries also run
// once under -race.
func BenchmarkSkewedSpeedup(b *testing.B) {
	build := func() *analysis.Built {
		return workloads.SkewedGraph(analysis.HandOptimized, 600, 1400, 3, int(benchSizes.Seed))
	}
	lambdaSPJ := jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Sequential", core.Options{Indexed: true, PlanCache: true}},
		{"Static8/W2", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 2, AdaptiveFanout: true}},
		{"Static8/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, AdaptiveFanout: true}},
		{"Steal8/W2", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 2, AdaptiveFanout: true,
			Histograms: true, StealThreshold: interp.DefaultStealThreshold}},
		{"Steal8/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, AdaptiveFanout: true,
			Histograms: true, StealThreshold: interp.DefaultStealThreshold}},
		{"Steal8JIT/W4", core.Options{Indexed: true, PlanCache: true, Shards: 8, Workers: 4, AdaptiveFanout: true,
			Histograms: true, StealThreshold: interp.DefaultStealThreshold, JIT: lambdaSPJ}},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			runProgram(b, build(), c.opts)
		})
	}
}

func BenchmarkStorageInsert(b *testing.B) {
	// Substrate microbenchmark: raw insert throughput with and without an
	// incremental index.
	for _, indexed := range []bool{false, true} {
		name := "Unindexed"
		if indexed {
			name = "Indexed"
		}
		indexed := indexed
		b.Run(name, func(b *testing.B) {
			rel := newBenchRelation(indexed)
			tuple := []int32{0, 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tuple[0] = int32(i % 65536)
				tuple[1] = int32(i)
				rel.Insert(tuple)
			}
		})
	}
}

// BenchmarkServeThroughput measures concurrent query serving: one warm run
// populates the program-lifetime plan store, then 4 snapshot-isolated
// sessions issue fixpoint queries concurrently through the server's shared
// worker pool. Each b.N iteration is one full drive of clients×queries;
// the headline custom metric is queries per second, with cross-run
// plan/unit reuse reported alongside.
func BenchmarkServeThroughput(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	configs := []struct {
		name   string
		useJIT bool
	}{
		{"Interp", false},
		{"JIT", true},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := engines.ServeConfig{
				Clients:          4,
				QueriesPerClient: 4,
				Workers:          4,
				UseJIT:           c.useJIT,
				Repeat:           1,
				Timeout:          2 * time.Minute,
			}
			built := analysis.CSPA(analysis.HandOptimized, cspa)
			// Prime Run + Serve happen inside the driver; drive once so the
			// measured iterations start from a warmed store.
			if _, err := engines.RunCaracServe(built, cfg); err != nil {
				b.Fatal(err)
			}
			var last *engines.ServeReport
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := engines.RunCaracServe(built, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(last.QPS, "queries/sec")
			b.ReportMetric(float64(last.CrossRunHits), "crossrun-hits")
			b.ReportMetric(float64(last.TotalFacts), "facts/query")
		})
	}
}

// BenchmarkMaterializedServe measures materialized-epoch serving against the
// re-derive path it replaces. Three modes, interpreted and JIT-compiled:
// RepeatHeavy (materialized, 90% of queries repeat on a persistent session —
// the memo path), RepeatFree (materialized, every query arrives on a fresh
// session — the seeded-lookup path), and Rederive (materialization off, the
// PR-7 baseline where every query runs the fixpoint). The headline metric is
// queries per second; memo-hits shows how many queries skipped derivation.
func BenchmarkMaterializedServe(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	modes := []struct {
		name        string
		materialize bool
		repeat      float64
	}{
		{"RepeatHeavy", true, 0.9},
		{"RepeatFree", true, 0},
		{"Rederive", false, 0.9},
	}
	engcfg := []struct {
		name   string
		useJIT bool
	}{
		{"Interp", false},
		{"JIT", true},
	}
	for _, m := range modes {
		for _, c := range engcfg {
			m, c := m, c
			b.Run(m.name+"/"+c.name, func(b *testing.B) {
				cfg := engines.ServeConfig{
					Clients:          4,
					QueriesPerClient: 10,
					Workers:          4,
					UseJIT:           c.useJIT,
					Materialize:      m.materialize,
					Repeat:           m.repeat,
					Timeout:          2 * time.Minute,
				}
				built := analysis.CSPA(analysis.HandOptimized, cspa)
				if _, err := engines.RunCaracServe(built, cfg); err != nil {
					b.Fatal(err)
				}
				var last *engines.ServeReport
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := engines.RunCaracServe(built, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = rep
				}
				b.ReportMetric(last.QPS, "queries/sec")
				b.ReportMetric(float64(last.MemoHits), "memo-hits")
				b.ReportMetric(float64(last.TotalFacts), "facts/query")
			})
		}
	}
}

// BenchmarkStreamingIngest measures incremental view maintenance under a
// streaming churn load: a standing transitive-closure fixpoint absorbs
// alternating delete / re-insert batches over a fixed churn set of ground
// edges via Program.Apply, so every measured batch runs the warm
// counting/DRed path (over-delete, rederive, monotone continuation) instead
// of a cold recompute. Modes compare the incremental path against
// Naive-forced full recomputation of the same batches, interpreted and
// JIT-compiled. retracted/batch and rederived/batch confirm the deletions do
// real work; cold-batches must be 0 on the incremental modes (after the
// bootstrap run) and equal to every batch on Recompute.
func BenchmarkStreamingIngest(b *testing.B) {
	sz := benchSizes
	const churnEdges = 8
	modes := []struct {
		name  string
		naive bool // forces ApplyResult.Cold: full recompute per batch
	}{
		{"Incremental", false},
		{"Recompute", true},
	}
	engcfg := []struct {
		name string
		jit  jit.Config
	}{
		{"Interp", jit.Config{}},
		{"JIT", jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}},
	}
	for _, m := range modes {
		for _, c := range engcfg {
			m, c := m, c
			b.Run(m.name+"/"+c.name, func(b *testing.B) {
				built := workloads.TransitiveClosure(analysis.HandOptimized, 400, 1200, int(sz.Seed))
				p := built.P
				edge := p.Relation("edge", 2)
				// Churn set: edges from fresh node IDs into the random graph,
				// so they exist exactly once and their closure rows genuinely
				// appear and disappear with them. Half get a permanent 2-hop
				// detour so their closure rows survive the over-delete via
				// rederivation; the other half's rows are physically removed.
				churn := make([][]storage.Value, churnEdges)
				for i := range churn {
					src, dst := storage.Value(400+i), storage.Value((i*37)%400)
					churn[i] = []storage.Value{src, dst}
					edge.FactTuple(churn[i])
					if i%2 == 0 {
						via := storage.Value(500 + i)
						edge.FactTuple([]storage.Value{src, via})
						edge.FactTuple([]storage.Value{via, dst})
					}
				}
				opts := core.Options{
					Indexed:     true,
					SharedPlans: true,
					Naive:       m.naive,
					Timeout:     2 * time.Minute,
					JIT:         c.jit,
				}
				// Bootstrap fixpoint: the first transaction is always cold.
				if _, err := p.Run(opts); err != nil {
					b.Fatal(err)
				}
				var retracted, rederived, cold, batches int64
				step := func(del bool) {
					tx := p.NewTx()
					for _, t := range churn {
						if del {
							tx.DeleteTuple(edge, t)
						} else {
							tx.InsertTuple(edge, t)
						}
					}
					res, err := p.Apply(tx, opts)
					if err != nil {
						b.Fatal(err)
					}
					retracted += int64(res.Retracted)
					rederived += int64(res.Rederived)
					if res.Cold {
						cold++
					}
					batches++
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step(true)  // retract the churn set
					step(false) // assert it back: state is identical every iteration
				}
				b.ReportMetric(float64(retracted)/float64(batches), "retracted/batch")
				b.ReportMetric(float64(rederived)/float64(batches), "rederived/batch")
				b.ReportMetric(float64(cold), "cold-batches")
			})
		}
	}
}

// BenchmarkColdStart measures the first-query latency the persistent cache
// (Options.CacheDir) removes across process restarts. Each iteration is a
// full two-process simulation over a fresh cache directory: a cold Program
// plans (and, with the JIT, compiles) from scratch and flushes to disk, then
// a second fresh Program — the "restarted process" — opens the same
// directory. The cold-ns / diskwarm-ns metrics are the two first-query
// latencies; warm-planbuilds and warm-recompiles must report 0.
func BenchmarkColdStart(b *testing.B) {
	sz := benchSizes
	cspa := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{sz.CSPAName, func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, cspa) }},
		{"TransitiveClosure", func() *analysis.Built {
			return workloads.TransitiveClosure(analysis.HandOptimized, 300, 800, int(sz.Seed))
		}},
	}
	engcfg := []struct {
		name   string
		useJIT bool
	}{
		{"Interp", false},
		{"BytecodeJIT", true},
	}
	for _, w := range builds {
		for _, c := range engcfg {
			w, c := w, c
			b.Run(w.name+"/"+c.name, func(b *testing.B) {
				var rep *engines.ColdStartReport
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					dir := b.TempDir() // fresh directory: every iteration restarts from truly cold
					b.StartTimer()
					r, err := engines.RunCaracColdStart(w.build, dir, c.useJIT, 2*time.Minute)
					if err != nil {
						b.Fatal(err)
					}
					rep = r
				}
				b.ReportMetric(float64(rep.Cold.Nanoseconds()), "cold-ns")
				b.ReportMetric(float64(rep.Warm.Nanoseconds()), "diskwarm-ns")
				b.ReportMetric(float64(rep.WarmPlanBuilds), "warm-planbuilds")
				b.ReportMetric(float64(rep.WarmCompiles), "warm-recompiles")
				b.ReportMetric(float64(rep.DiskHits), "disk-hits")
			})
		}
	}
}
