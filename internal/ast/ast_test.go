package ast

import (
	"strings"
	"testing"

	"carac/internal/storage"
)

func tcProgram(t *testing.T) (*Program, storage.PredID, storage.PredID) {
	t.Helper()
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	tc := cat.Declare("tc", 2)
	p := NewProgram(cat)
	// tc(x,y) :- edge(x,y).
	p.MustAddRule(&Rule{
		Head:    Rel(tc, V(0), V(1)),
		Body:    []Atom{Rel(edge, V(0), V(1))},
		NumVars: 2, VarNames: []string{"x", "y"},
	})
	// tc(x,y) :- tc(x,z), edge(z,y).
	p.MustAddRule(&Rule{
		Head:    Rel(tc, V(0), V(1)),
		Body:    []Atom{Rel(tc, V(0), V(2)), Rel(edge, V(2), V(1))},
		NumVars: 3, VarNames: []string{"x", "y", "z"},
	})
	return p, edge, tc
}

func TestBuiltinArity(t *testing.T) {
	if BAdd.Arity() != 3 || BLt.Arity() != 2 || BNone.Arity() != 0 {
		t.Fatal("builtin arities wrong")
	}
}

func TestBiPanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bi with wrong arity should panic")
		}
	}()
	Bi(BAdd, V(0), V(1))
}

func TestAtomVars(t *testing.T) {
	a := Rel(0, V(1), C(5), V(1), V(2))
	vars := a.Vars(nil)
	if len(vars) != 2 || vars[0] != 1 || vars[1] != 2 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestRuleClone(t *testing.T) {
	p, _, _ := tcProgram(t)
	r := p.Rules[1]
	c := r.Clone()
	c.Body[0], c.Body[1] = c.Body[1], c.Body[0]
	c.Body[0].Terms[0] = C(99)
	if r.Body[0].Terms[0].Kind != TermVar {
		t.Fatal("Clone shares term storage with original")
	}
}

func TestFormatRule(t *testing.T) {
	p, _, _ := tcProgram(t)
	got := p.FormatRule(p.Rules[1])
	want := "tc(x, y) :- tc(x, z), edge(z, y)."
	if got != want {
		t.Fatalf("FormatRule = %q, want %q", got, want)
	}
}

func TestFormatRuleWithConstAndNeg(t *testing.T) {
	cat := storage.NewCatalog()
	num := cat.Declare("num", 1)
	comp := cat.Declare("composite", 1)
	prime := cat.Declare("prime", 1)
	p := NewProgram(cat)
	r := &Rule{
		Head:    Rel(prime, V(0)),
		Body:    []Atom{Rel(num, V(0)), Neg(comp, V(0)), Bi(BGe, V(0), C(2))},
		NumVars: 1, VarNames: []string{"p"},
	}
	p.MustAddRule(r)
	got := p.FormatRule(r)
	if !strings.Contains(got, "!composite(p)") || !strings.Contains(got, ">=(p, 2)") {
		t.Fatalf("FormatRule = %q", got)
	}
}

func TestCheckRuleArityMismatch(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	p := NewProgram(cat)
	err := p.AddRule(&Rule{
		Head:    Rel(edge, V(0)),
		Body:    []Atom{Rel(edge, V(0), V(1))},
		NumVars: 2,
	})
	if err == nil {
		t.Fatal("arity mismatch not detected")
	}
}

func TestCheckRuleUnboundHead(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	out := cat.Declare("out", 2)
	p := NewProgram(cat)
	err := p.AddRule(&Rule{
		Head:    Rel(out, V(0), V(3)), // v3 appears nowhere in the body
		Body:    []Atom{Rel(edge, V(0), V(1))},
		NumVars: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unbound head var not detected: %v", err)
	}
}

func TestCheckRuleUnboundNegation(t *testing.T) {
	cat := storage.NewCatalog()
	a := cat.Declare("a", 1)
	b := cat.Declare("b", 1)
	out := cat.Declare("out", 1)
	p := NewProgram(cat)
	err := p.AddRule(&Rule{
		Head:    Rel(out, V(0)),
		Body:    []Atom{Rel(a, V(0)), Neg(b, V(1))}, // v1 unbound
		NumVars: 2,
	})
	if err == nil {
		t.Fatal("unbound negated var not detected")
	}
}

func TestCheckRuleBuiltinChainBinds(t *testing.T) {
	cat := storage.NewCatalog()
	n := cat.Declare("n", 1)
	out := cat.Declare("out", 1)
	p := NewProgram(cat)
	// out(y) :- n(x), y = x + 1: y bound through the builtin.
	err := p.AddRule(&Rule{
		Head:    Rel(out, V(1)),
		Body:    []Atom{Rel(n, V(0)), Bi(BAdd, V(0), C(1), V(1))},
		NumVars: 2, VarNames: []string{"x", "y"},
	})
	if err != nil {
		t.Fatalf("builtin output should bind head var: %v", err)
	}
}

func TestCheckRuleBuiltinNeverEvaluable(t *testing.T) {
	cat := storage.NewCatalog()
	n := cat.Declare("n", 1)
	out := cat.Declare("out", 1)
	p := NewProgram(cat)
	// lt(y, z) with both unbound can never run.
	err := p.AddRule(&Rule{
		Head:    Rel(out, V(0)),
		Body:    []Atom{Rel(n, V(0)), Bi(BLt, V(1), V(2))},
		NumVars: 3,
	})
	if err == nil {
		t.Fatal("unevaluable builtin not detected")
	}
}

func TestBuiltinBindableRules(t *testing.T) {
	bound := func(ids ...VarID) func(VarID) bool {
		set := map[VarID]bool{}
		for _, id := range ids {
			set[id] = true
		}
		return func(v VarID) bool { return set[v] }
	}
	cases := []struct {
		atom Atom
		b    func(VarID) bool
		ok   bool
		outs int
	}{
		{Bi(BAdd, V(0), V(1), V(2)), bound(0, 1), true, 1},
		{Bi(BAdd, V(0), V(1), V(2)), bound(0, 2), true, 1},
		{Bi(BAdd, V(0), V(1), V(2)), bound(0), false, 0},
		{Bi(BSub, V(0), C(1), V(2)), bound(0), true, 1},
		{Bi(BMul, V(0), V(1), V(2)), bound(0, 1), true, 1},
		{Bi(BMul, V(0), V(1), V(2)), bound(2, 0), true, 1},
		{Bi(BDiv, V(0), V(1), V(2)), bound(2), false, 0},
		{Bi(BDiv, V(0), V(1), V(2)), bound(0, 1), true, 1},
		{Bi(BEq, V(0), V(1)), bound(0), true, 1},
		{Bi(BLt, V(0), V(1)), bound(0), false, 0},
		{Bi(BLt, V(0), V(1)), bound(0, 1), true, 0},
	}
	for i, c := range cases {
		outs, ok := BuiltinBindable(c.atom, c.b)
		if ok != c.ok || len(outs) != c.outs {
			t.Errorf("case %d (%v): got outs=%v ok=%v, want %d outputs ok=%v", i, c.atom.Builtin, outs, ok, c.outs, c.ok)
		}
	}
}

func TestLegalOrder(t *testing.T) {
	cat := storage.NewCatalog()
	n := cat.Declare("n", 1)
	out := cat.Declare("out", 1)
	p := NewProgram(cat)
	r := &Rule{
		Head:    Rel(out, V(1)),
		Body:    []Atom{Rel(n, V(0)), Bi(BAdd, V(0), C(1), V(1))},
		NumVars: 2,
	}
	p.MustAddRule(r)
	if !LegalOrder(r, []int{0, 1}) {
		t.Fatal("n(x), y=x+1 should be legal")
	}
	if LegalOrder(r, []int{1, 0}) {
		t.Fatal("y=x+1 before n(x) must be illegal (x unbound)")
	}
}

func TestLegalOrderNegation(t *testing.T) {
	cat := storage.NewCatalog()
	a := cat.Declare("a", 1)
	b := cat.Declare("b", 1)
	out := cat.Declare("out", 1)
	p := NewProgram(cat)
	r := &Rule{
		Head:    Rel(out, V(0)),
		Body:    []Atom{Rel(a, V(0)), Neg(b, V(0))},
		NumVars: 1,
	}
	p.MustAddRule(r)
	if !LegalOrder(r, []int{0, 1}) || LegalOrder(r, []int{1, 0}) {
		t.Fatal("negation ordering constraints violated")
	}
}
