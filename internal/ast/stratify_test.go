package ast

import (
	"strings"
	"testing"

	"carac/internal/storage"
)

func TestStratifyLinear(t *testing.T) {
	p, _, tc := tcProgram(t)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(strata))
	}
	if len(strata[0].Preds) != 1 || strata[0].Preds[0] != tc {
		t.Fatalf("stratum preds = %v", strata[0].Preds)
	}
	if len(strata[0].Rules) != 2 {
		t.Fatalf("stratum rules = %v", strata[0].Rules)
	}
}

func TestStratifyNegationOrder(t *testing.T) {
	cat := storage.NewCatalog()
	num := cat.Declare("num", 1)
	comp := cat.Declare("composite", 1)
	prime := cat.Declare("prime", 1)
	p := NewProgram(cat)
	p.MustAddRule(&Rule{ // composite(c) :- num(a), num(b), c = a*b
		Head:    Rel(comp, V(2)),
		Body:    []Atom{Rel(num, V(0)), Rel(num, V(1)), Bi(BMul, V(0), V(1), V(2))},
		NumVars: 3,
	})
	p.MustAddRule(&Rule{ // prime(x) :- num(x), !composite(x)
		Head:    Rel(prime, V(0)),
		Body:    []Atom{Rel(num, V(0)), Neg(comp, V(0))},
		NumVars: 1,
	})
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(strata))
	}
	if strata[0].Preds[0] != comp || strata[1].Preds[0] != prime {
		t.Fatalf("strata order wrong: %v", strata)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	cat := storage.NewCatalog()
	a := cat.Declare("a", 1)
	b := cat.Declare("b", 1)
	base := cat.Declare("base", 1)
	p := NewProgram(cat)
	p.MustAddRule(&Rule{Head: Rel(a, V(0)), Body: []Atom{Rel(base, V(0)), Neg(b, V(0))}, NumVars: 1})
	p.MustAddRule(&Rule{Head: Rel(b, V(0)), Body: []Atom{Rel(base, V(0)), Neg(a, V(0))}, NumVars: 1})
	_, err := p.Stratify()
	if err == nil || !strings.Contains(err.Error(), "not stratifiable") {
		t.Fatalf("negative cycle not rejected: %v", err)
	}
}

func TestStratifyMutualRecursionOneStratum(t *testing.T) {
	// CSPA-like: VaFlow and VAlias/MAlias are mutually recursive.
	cat := storage.NewCatalog()
	assign := cat.Declare("Assign", 2)
	deref := cat.Declare("Derefr", 2)
	vaflow := cat.Declare("VaFlow", 2)
	valias := cat.Declare("VAlias", 2)
	malias := cat.Declare("MAlias", 2)
	p := NewProgram(cat)
	add := func(head Atom, body ...Atom) {
		maxVar := VarID(-1)
		scan := func(a Atom) {
			for _, tm := range a.Terms {
				if tm.Kind == TermVar && tm.Var > maxVar {
					maxVar = tm.Var
				}
			}
		}
		scan(head)
		for _, a := range body {
			scan(a)
		}
		p.MustAddRule(&Rule{Head: head, Body: body, NumVars: int(maxVar) + 1})
	}
	add(Rel(vaflow, V(0), V(1)), Rel(assign, V(0), V(1)))
	add(Rel(vaflow, V(0), V(1)), Rel(malias, V(2), V(1)), Rel(assign, V(0), V(2)))
	add(Rel(vaflow, V(0), V(1)), Rel(vaflow, V(2), V(1)), Rel(vaflow, V(0), V(2)))
	add(Rel(valias, V(0), V(1)), Rel(vaflow, V(2), V(1)), Rel(vaflow, V(2), V(0)))
	add(Rel(malias, V(0), V(1)), Rel(valias, V(2), V(3)), Rel(deref, V(3), V(1)), Rel(deref, V(2), V(0)))
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("mutually recursive CSPA should be one stratum, got %d", len(strata))
	}
	if len(strata[0].Preds) != 3 {
		t.Fatalf("stratum preds = %v, want {VaFlow, VAlias, MAlias}", strata[0].Preds)
	}
}

func TestStratifyAggregationIsStratified(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	deg := cat.Declare("deg", 2)
	p := NewProgram(cat)
	p.MustAddRule(&Rule{
		Head:    Rel(deg, V(0), V(1)),
		Body:    []Atom{Rel(edge, V(0), V(2))},
		Agg:     AggSpec{Kind: AggCount, HeadPos: 1},
		NumVars: 3,
	})
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("strata = %d", len(strata))
	}

	// Recursive aggregation must be rejected.
	p2 := NewProgram(cat)
	p2.MustAddRule(&Rule{
		Head:    Rel(deg, V(0), V(1)),
		Body:    []Atom{Rel(deg, V(0), V(2))},
		Agg:     AggSpec{Kind: AggCount, HeadPos: 1},
		NumVars: 3,
	})
	if _, err := p2.Stratify(); err == nil {
		t.Fatal("recursive aggregation not rejected")
	}
}

func TestRecursiveAtoms(t *testing.T) {
	p, _, _ := tcProgram(t)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	s := strata[0]
	if got := RecursiveAtoms(p, s, 0); len(got) != 0 {
		t.Fatalf("rule 0 recursive atoms = %v, want none (edge is EDB)", got)
	}
	if got := RecursiveAtoms(p, s, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("rule 1 recursive atoms = %v, want [0]", got)
	}
}

func TestEliminateAliases(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	e2 := cat.Declare("e2", 2) // alias of edge
	tc := cat.Declare("tc", 2)
	p := NewProgram(cat)
	p.MustAddRule(&Rule{Head: Rel(e2, V(0), V(1)), Body: []Atom{Rel(edge, V(0), V(1))}, NumVars: 2})
	p.MustAddRule(&Rule{Head: Rel(tc, V(0), V(1)), Body: []Atom{Rel(e2, V(0), V(1))}, NumVars: 2})
	p.MustAddRule(&Rule{Head: Rel(tc, V(0), V(1)), Body: []Atom{Rel(tc, V(0), V(2)), Rel(e2, V(2), V(1))}, NumVars: 3})
	removed := p.EliminateAliases()
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(p.Rules))
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if a.IsRelational() && a.Pred == e2 {
				t.Fatal("alias predicate still referenced")
			}
		}
	}
}

func TestEliminateAliasesKeepsNonAliases(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	rev := cat.Declare("rev", 2) // not an alias: swapped columns
	p := NewProgram(cat)
	p.MustAddRule(&Rule{Head: Rel(rev, V(0), V(1)), Body: []Atom{Rel(edge, V(1), V(0))}, NumVars: 2})
	if removed := p.EliminateAliases(); removed != 0 {
		t.Fatalf("column-swapping rule wrongly treated as alias (removed=%d)", removed)
	}
}

func TestPrecedenceGraphDedup(t *testing.T) {
	p, edge, tc := tcProgram(t)
	edges := p.PrecedenceGraph()
	if len(edges) != 2 {
		t.Fatalf("edges = %v, want edge->tc and tc->tc", edges)
	}
	found := map[[2]storage.PredID]bool{}
	for _, e := range edges {
		found[[2]storage.PredID{e.Body, e.Head}] = true
		if e.Negated {
			t.Fatal("no negated edges expected")
		}
	}
	if !found[[2]storage.PredID{edge, tc}] || !found[[2]storage.PredID{tc, tc}] {
		t.Fatalf("missing edges: %v", edges)
	}
}
