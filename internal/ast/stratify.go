package ast

import (
	"fmt"
	"sort"

	"carac/internal/storage"
)

// Stratum is one evaluation layer: the set of mutually recursive IDB
// predicates (one SCC of the precedence graph) plus the rules defining them.
// Strata are returned in dependency (topological) order; evaluating them in
// sequence with a fixpoint per stratum implements stratified Datalog with
// negation and aggregation.
type Stratum struct {
	Preds []storage.PredID // IDB predicates computed in this stratum
	Rules []int            // indices into Program.Rules
}

// DepEdge is one edge of the predicate precedence graph: Head depends on
// Body. Negated marks negation or aggregation dependencies, which must not
// occur inside an SCC.
type DepEdge struct {
	Body, Head storage.PredID
	Negated    bool
}

// PrecedenceGraph returns the dependency edges of the program (deduplicated;
// a dependency is marked negated if any occurrence is negated/aggregated).
func (p *Program) PrecedenceGraph() []DepEdge {
	type key struct{ b, h storage.PredID }
	edges := make(map[key]bool) // -> negated
	for _, r := range p.Rules {
		aggregated := r.Agg.Kind != AggNone
		for _, a := range r.Body {
			if !a.IsRelational() {
				continue
			}
			k := key{a.Pred, r.Head.Pred}
			neg := a.Kind == AtomNegated || aggregated
			edges[k] = edges[k] || neg
		}
	}
	out := make([]DepEdge, 0, len(edges))
	for k, neg := range edges {
		out = append(out, DepEdge{Body: k.b, Head: k.h, Negated: neg})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Head != out[j].Head {
			return out[i].Head < out[j].Head
		}
		return out[i].Body < out[j].Body
	})
	return out
}

// Stratify computes the evaluation strata of the program: Tarjan SCCs of the
// precedence graph, condensed and topologically ordered. It returns an error
// if a negated or aggregated dependency occurs within an SCC (the program is
// then not stratifiable).
//
// Predicates without rules (pure EDB) are not represented in the result.
func (p *Program) Stratify() ([]Stratum, error) {
	n := p.Catalog.NumPreds()
	adj := make([][]int32, n) // body -> heads
	edges := p.PrecedenceGraph()
	for _, e := range edges {
		adj[e.Body] = append(adj[e.Body], int32(e.Head))
	}

	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var sccs [][]int32
	var counter int32

	type frame struct {
		v  int32
		ei int
	}
	for start := int32(0); start < int32(n); start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop f.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(len(sccs))
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}

	// Negation/aggregation inside an SCC is unstratifiable.
	for _, e := range edges {
		if e.Negated && comp[e.Body] == comp[e.Head] {
			return nil, fmt.Errorf("ast: program not stratifiable: negated/aggregated dependency %s -> %s inside a recursive component",
				p.Catalog.Pred(e.Body).Name, p.Catalog.Pred(e.Head).Name)
		}
	}

	// Tarjan emits SCCs in reverse topological order of the condensation
	// (every edge goes from a later-emitted SCC to an earlier-emitted one is
	// false — it is the opposite: SCCs are emitted children-first), so
	// reversing gives dependency order: bodies before heads.
	hasRules := make(map[storage.PredID][]int)
	for ri, r := range p.Rules {
		hasRules[r.Head.Pred] = append(hasRules[r.Head.Pred], ri)
	}

	var strata []Stratum
	for si := len(sccs) - 1; si >= 0; si-- {
		var s Stratum
		members := sccs[si]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, pid := range members {
			if rs, ok := hasRules[storage.PredID(pid)]; ok {
				s.Preds = append(s.Preds, storage.PredID(pid))
				s.Rules = append(s.Rules, rs...)
			}
		}
		if len(s.Preds) > 0 {
			sort.Ints(s.Rules)
			strata = append(strata, s)
		}
	}
	return strata, nil
}

// RecursivePreds returns, for each rule index, the set of body-atom indices
// whose predicate belongs to the same stratum as the rule head — i.e. the
// atoms that get a delta version in semi-naive evaluation.
func RecursiveAtoms(p *Program, s Stratum, ruleIdx int) []int {
	inStratum := make(map[storage.PredID]bool, len(s.Preds))
	for _, pid := range s.Preds {
		inStratum[pid] = true
	}
	r := p.Rules[ruleIdx]
	var out []int
	for i, a := range r.Body {
		if a.Kind == AtomRelation && inStratum[a.Pred] {
			out = append(out, i)
		}
	}
	return out
}

// EliminateAliases rewrites away alias rules of the form A(x1..xn) :- B(x1..xn)
// where A has exactly one defining rule whose body is a single positive atom
// with identical distinct variables — replacing uses of A with B — avoiding
// the extra materialization the paper mentions (§V-A). It returns the number
// of aliases removed.
func (p *Program) EliminateAliases() int {
	defCount := make(map[storage.PredID]int)
	for _, r := range p.Rules {
		defCount[r.Head.Pred]++
	}
	alias := make(map[storage.PredID]storage.PredID)
	for _, r := range p.Rules {
		if defCount[r.Head.Pred] != 1 || len(r.Body) != 1 || r.Agg.Kind != AggNone {
			continue
		}
		b := r.Body[0]
		if b.Kind != AtomRelation || len(b.Terms) != len(r.Head.Terms) {
			continue
		}
		if b.Pred == r.Head.Pred {
			continue
		}
		// Head and body must be identical sequences of distinct variables.
		seen := map[VarID]bool{}
		ok := true
		for i := range b.Terms {
			ht, bt := r.Head.Terms[i], b.Terms[i]
			if ht.Kind != TermVar || bt.Kind != TermVar || ht.Var != bt.Var || seen[ht.Var] {
				ok = false
				break
			}
			seen[ht.Var] = true
		}
		if ok {
			alias[r.Head.Pred] = b.Pred
		}
	}
	if len(alias) == 0 {
		return 0
	}
	// Resolve alias chains (A -> B -> C becomes A -> C).
	resolve := func(pid storage.PredID) storage.PredID {
		for {
			next, ok := alias[pid]
			if !ok {
				return pid
			}
			pid = next
		}
	}
	kept := p.Rules[:0]
	for _, r := range p.Rules {
		if _, isAlias := alias[r.Head.Pred]; isAlias {
			continue // drop the alias-defining rule
		}
		for i := range r.Body {
			if r.Body[i].IsRelational() {
				r.Body[i].Pred = resolve(r.Body[i].Pred)
			}
		}
		kept = append(kept, r)
	}
	p.Rules = kept
	return len(alias)
}
