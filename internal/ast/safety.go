package ast

import "fmt"

// BuiltinBindable reports whether the builtin atom can execute given the set
// of currently bound variables: it returns ok=true and the indices of term
// positions that the evaluation will newly bind (outputs). The binding rules
// mirror Soufflé functors:
//
//   - add/sub: any single unknown among the three terms is solvable;
//   - mul: both factors bound (product derived), or product plus one factor
//     bound (the other factor derived when it divides evenly);
//   - div/mod: the first two terms must be bound, the third may be derived;
//   - eq: either side may be derived from the other;
//   - ne/lt/le/gt/ge: all terms must be bound (pure filters).
func BuiltinBindable(a Atom, bound func(VarID) bool) (outputs []int, ok bool) {
	if a.Kind != AtomBuiltin {
		return nil, false
	}
	isBound := func(i int) bool {
		t := a.Terms[i]
		return t.Kind == TermConst || bound(t.Var)
	}
	unbound := func() []int {
		var u []int
		for i := range a.Terms {
			if !isBound(i) {
				u = append(u, i)
			}
		}
		return u
	}
	u := unbound()
	switch a.Builtin {
	case BAdd, BSub:
		if len(u) <= 1 {
			return u, true
		}
	case BMul:
		if len(u) == 0 {
			return nil, true
		}
		if len(u) == 1 {
			return u, true // solve the unknown (may fail at runtime if not divisible)
		}
	case BDiv, BMod:
		if isBound(0) && isBound(1) {
			return u, true
		}
	case BEq:
		if len(u) <= 1 {
			return u, true
		}
	case BNe, BLt, BLe, BGt, BGe:
		if len(u) == 0 {
			return nil, true
		}
	}
	return nil, false
}

// CheckRule validates a rule: predicate arities match declarations, the head
// is a positive relational atom, aggregation is well-formed, and the rule is
// safe (every head variable and every variable of a negated atom or builtin
// filter can be bound by some evaluation order). Safety is decided by a
// boundness fixpoint: positive relational atoms bind their variables;
// builtins bind outputs once their inputs are bound.
func (p *Program) CheckRule(r *Rule) error {
	if r.Head.Kind != AtomRelation {
		return fmt.Errorf("ast: rule head must be a positive relational atom")
	}
	check := func(a Atom) error {
		if a.Kind == AtomBuiltin {
			if len(a.Terms) != a.Builtin.Arity() {
				return fmt.Errorf("ast: builtin %v arity %d, got %d terms", a.Builtin, a.Builtin.Arity(), len(a.Terms))
			}
			return nil
		}
		pd := p.Catalog.Pred(a.Pred)
		if len(a.Terms) != pd.Arity {
			return fmt.Errorf("ast: atom %s/%d used with %d terms", pd.Name, pd.Arity, len(a.Terms))
		}
		return nil
	}
	if err := check(r.Head); err != nil {
		return err
	}
	for _, a := range r.Body {
		if err := check(a); err != nil {
			return err
		}
	}
	if r.Agg.Kind != AggNone {
		if r.Agg.HeadPos < 0 || r.Agg.HeadPos >= len(r.Head.Terms) {
			return fmt.Errorf("ast: aggregate head position %d out of range", r.Agg.HeadPos)
		}
		if t := r.Head.Terms[r.Agg.HeadPos]; t.Kind != TermVar {
			return fmt.Errorf("ast: aggregate head position must be a variable")
		}
	}

	// Boundness fixpoint.
	bound := make([]bool, r.NumVars)
	for _, a := range r.Body {
		if a.Kind == AtomRelation {
			for _, t := range a.Terms {
				if t.Kind == TermVar {
					bound[t.Var] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, a := range r.Body {
			if a.Kind != AtomBuiltin {
				continue
			}
			outs, ok := BuiltinBindable(a, func(v VarID) bool { return bound[v] })
			if !ok {
				continue
			}
			for _, i := range outs {
				if t := a.Terms[i]; t.Kind == TermVar && !bound[t.Var] {
					bound[t.Var] = true
					changed = true
				}
			}
		}
	}
	requireBound := func(a Atom, what string) error {
		for _, t := range a.Terms {
			if t.Kind == TermVar && !bound[t.Var] {
				return fmt.Errorf("ast: unsafe rule: variable %s in %s cannot be bound", r.VarName(t.Var), what)
			}
		}
		return nil
	}
	for i, t := range r.Head.Terms {
		if r.Agg.Kind != AggNone && i == r.Agg.HeadPos {
			continue // aggregate output is computed, not bound from the body
		}
		if t.Kind == TermVar && !bound[t.Var] {
			return fmt.Errorf("ast: unsafe rule: head variable %s not bound by body", r.VarName(t.Var))
		}
	}
	for _, a := range r.Body {
		if a.Kind == AtomNegated {
			if err := requireBound(a, "negated atom"); err != nil {
				return err
			}
		}
		if a.Kind == AtomBuiltin {
			if _, ok := BuiltinBindable(a, func(v VarID) bool { return bound[v] }); !ok {
				return fmt.Errorf("ast: unsafe rule: builtin %v can never be evaluated (unbound inputs)", a.Builtin)
			}
		}
	}
	if r.Agg.Kind == AggSum || r.Agg.Kind == AggMin || r.Agg.Kind == AggMax {
		if !bound[r.Agg.OverVar] {
			return fmt.Errorf("ast: aggregate variable %s not bound by body", r.VarName(r.Agg.OverVar))
		}
	}
	return nil
}

// LegalOrder reports whether executing the body atoms in the given
// permutation respects binding constraints: builtins run only when their
// inputs are bound, negated atoms only when fully bound. The optimizer uses
// this to constrain reordering.
func LegalOrder(r *Rule, perm []int) bool {
	bound := make([]bool, r.NumVars)
	for _, i := range perm {
		a := r.Body[i]
		switch a.Kind {
		case AtomRelation:
			for _, t := range a.Terms {
				if t.Kind == TermVar {
					bound[t.Var] = true
				}
			}
		case AtomNegated:
			for _, t := range a.Terms {
				if t.Kind == TermVar && !bound[t.Var] {
					return false
				}
			}
		case AtomBuiltin:
			outs, ok := BuiltinBindable(a, func(v VarID) bool { return bound[v] })
			if !ok {
				return false
			}
			for _, o := range outs {
				if t := a.Terms[o]; t.Kind == TermVar {
					bound[t.Var] = true
				}
			}
		}
	}
	return true
}
