package ast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"carac/internal/storage"
)

// randomProgram builds a random positive Datalog program over nPreds
// predicates (no negation, so it always stratifies).
func randomProgram(rng *rand.Rand, nPreds, nRules int) *Program {
	cat := storage.NewCatalog()
	ids := make([]storage.PredID, nPreds)
	for i := range ids {
		ids[i] = cat.Declare(predName(i), 2)
	}
	p := NewProgram(cat)
	for r := 0; r < nRules; r++ {
		head := ids[rng.Intn(nPreds)]
		nBody := 1 + rng.Intn(3)
		var body []Atom
		// Chain variables so every rule is safe: atom i = (v_i, v_i+1).
		for b := 0; b < nBody; b++ {
			body = append(body, Rel(ids[rng.Intn(nPreds)], V(VarID(b)), V(VarID(b+1))))
		}
		rule := &Rule{
			Head:    Rel(head, V(0), V(VarID(nBody))),
			Body:    body,
			NumVars: nBody + 1,
		}
		if err := p.AddRule(rule); err != nil {
			panic(err)
		}
	}
	return p
}

func predName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// Property: stratification partitions exactly the predicates that have
// rules, each appearing once, and within the returned order every
// non-recursive dependency points backwards.
func TestStratifyPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, 2+rng.Intn(6), 1+rng.Intn(12))
		strata, err := p.Stratify()
		if err != nil {
			return false // positive programs always stratify
		}
		withRules := map[storage.PredID]bool{}
		for _, r := range p.Rules {
			withRules[r.Head.Pred] = true
		}
		seen := map[storage.PredID]int{}
		level := map[storage.PredID]int{}
		ruleSeen := map[int]bool{}
		for si, s := range strata {
			for _, pid := range s.Preds {
				seen[pid]++
				level[pid] = si
			}
			for _, ri := range s.Rules {
				if ruleSeen[ri] {
					return false // rule in two strata
				}
				ruleSeen[ri] = true
				if p.Rules[ri].Head.Pred != s.Preds[0] && !contains(s.Preds, p.Rules[ri].Head.Pred) {
					return false // rule assigned to stratum not defining its head
				}
			}
		}
		for pid := range withRules {
			if seen[pid] != 1 {
				return false
			}
		}
		if len(ruleSeen) != len(p.Rules) {
			return false
		}
		// Dependencies respect the order: body strata <= head strata.
		for _, e := range p.PrecedenceGraph() {
			bl, bok := level[e.Body]
			hl, hok := level[e.Head]
			if bok && hok && bl > hl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func contains(ps []storage.PredID, p storage.PredID) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
