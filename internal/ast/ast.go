// Package ast defines the Datalog abstract syntax tree Carac builds as rules
// are defined (paper §V-A): terms, atoms (relational, negated, builtin
// arithmetic/comparison), rules with optional aggregation, and whole
// programs, plus the per-rule metadata (variable/constant locations, join
// keys) and program-level analyses (precedence graph, SCCs, stratification,
// alias elimination) that later stages consume.
package ast

import (
	"fmt"
	"strings"

	"carac/internal/storage"
)

// VarID identifies a variable within a single rule (rule-scoped, dense).
type VarID int32

// TermKind discriminates Term.
type TermKind uint8

const (
	// TermVar is a rule variable.
	TermVar TermKind = iota
	// TermConst is an interned constant (integer or symbol id).
	TermConst
)

// Term is one argument position of an atom.
type Term struct {
	Kind TermKind
	Var  VarID         // valid when Kind == TermVar
	Val  storage.Value // valid when Kind == TermConst
}

// V returns a variable term.
func V(id VarID) Term { return Term{Kind: TermVar, Var: id} }

// C returns a constant term.
func C(v storage.Value) Term { return Term{Kind: TermConst, Val: v} }

// AtomKind discriminates Atom.
type AtomKind uint8

const (
	// AtomRelation is a positive relational atom.
	AtomRelation AtomKind = iota
	// AtomNegated is a stratified-negated relational atom.
	AtomNegated
	// AtomBuiltin is an arithmetic or comparison builtin.
	AtomBuiltin
)

// Builtin enumerates the builtin predicates (paper §VI-A micro programs use
// arithmetic; Soufflé-style functors).
type Builtin uint8

const (
	BNone Builtin = iota
	BAdd          // add(a,b,c): a+b=c, any single unknown solvable
	BSub          // sub(a,b,c): a-b=c (natural: fails if a-b<0), any single unknown solvable
	BMul          // mul(a,b,c): a*b=c; needs a,b bound, or c plus one factor when divisible
	BDiv          // div(a,b,c): a/b=c truncated; needs a,b bound
	BMod          // mod(a,b,c): a%b=c; needs a,b bound
	BEq           // eq(a,b): can bind one side from the other
	BNe           // ne(a,b): needs both bound
	BLt           // lt(a,b)
	BLe           // le(a,b)
	BGt           // gt(a,b)
	BGe           // ge(a,b)
)

// Arity returns the number of terms the builtin takes.
func (b Builtin) Arity() int {
	switch b {
	case BAdd, BSub, BMul, BDiv, BMod:
		return 3
	case BEq, BNe, BLt, BLe, BGt, BGe:
		return 2
	default:
		return 0
	}
}

// String returns the surface name of the builtin.
func (b Builtin) String() string {
	switch b {
	case BAdd:
		return "add"
	case BSub:
		return "sub"
	case BMul:
		return "mul"
	case BDiv:
		return "div"
	case BMod:
		return "mod"
	case BEq:
		return "="
	case BNe:
		return "!="
	case BLt:
		return "<"
	case BLe:
		return "<="
	case BGt:
		return ">"
	case BGe:
		return ">="
	default:
		return "?"
	}
}

// Atom is one conjunct of a rule body (or a rule head, which must be a
// positive relational atom).
type Atom struct {
	Kind    AtomKind
	Pred    storage.PredID // relation/negated atoms
	Builtin Builtin        // builtin atoms
	Terms   []Term
}

// Rel constructs a positive relational atom.
func Rel(pred storage.PredID, terms ...Term) Atom {
	return Atom{Kind: AtomRelation, Pred: pred, Terms: terms}
}

// Neg constructs a negated relational atom.
func Neg(pred storage.PredID, terms ...Term) Atom {
	return Atom{Kind: AtomNegated, Pred: pred, Terms: terms}
}

// Bi constructs a builtin atom.
func Bi(b Builtin, terms ...Term) Atom {
	if len(terms) != b.Arity() {
		panic(fmt.Sprintf("ast: builtin %v takes %d terms, got %d", b, b.Arity(), len(terms)))
	}
	return Atom{Kind: AtomBuiltin, Builtin: b, Terms: terms}
}

// IsRelational reports whether the atom reads a stored relation (positive or
// negated).
func (a Atom) IsRelational() bool { return a.Kind != AtomBuiltin }

// Vars appends the distinct variables of the atom to dst in first-occurrence
// order.
func (a Atom) Vars(dst []VarID) []VarID {
	for _, t := range a.Terms {
		if t.Kind != TermVar {
			continue
		}
		seen := false
		for _, v := range dst {
			if v == t.Var {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// AggKind enumerates aggregation operators (paper §V-A: the DSL is extended
// with stratified negation and aggregation).
type AggKind uint8

const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

// String returns the surface name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "none"
	}
}

// AggSpec describes an aggregation rule: the head term at HeadPos receives
// Kind aggregated over OverVar (ignored for count), grouped by the remaining
// head variables.
type AggSpec struct {
	Kind    AggKind
	HeadPos int
	OverVar VarID
}

// Rule is head :- body with optional aggregation. NumVars is the size of
// the rule's dense variable space; VarNames are for diagnostics only.
type Rule struct {
	Head     Atom
	Body     []Atom
	Agg      AggSpec
	NumVars  int
	VarNames []string
}

// Clone returns a deep copy of the rule (atom orders are mutated by the
// optimizer, so shared rules must be cloned before reordering).
func (r *Rule) Clone() *Rule {
	c := &Rule{Head: cloneAtom(r.Head), Agg: r.Agg, NumVars: r.NumVars}
	c.Body = make([]Atom, len(r.Body))
	for i, a := range r.Body {
		c.Body[i] = cloneAtom(a)
	}
	c.VarNames = append([]string(nil), r.VarNames...)
	return c
}

func cloneAtom(a Atom) Atom {
	a.Terms = append([]Term(nil), a.Terms...)
	return a
}

// VarName returns the diagnostic name for v, falling back to v<i>.
func (r *Rule) VarName(v VarID) string {
	if int(v) < len(r.VarNames) && r.VarNames[v] != "" {
		return r.VarNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Program is a set of rules over a shared catalog. Facts live in the
// catalog's predicate databases, not in the AST.
type Program struct {
	Catalog *storage.Catalog
	Rules   []*Rule
}

// NewProgram returns an empty program over catalog.
func NewProgram(catalog *storage.Catalog) *Program {
	return &Program{Catalog: catalog}
}

// AddRule validates and appends a rule.
func (p *Program) AddRule(r *Rule) error {
	if err := p.CheckRule(r); err != nil {
		return err
	}
	p.Rules = append(p.Rules, r)
	return nil
}

// MustAddRule is AddRule that panics on error; used by internal workload
// definitions that are known-good.
func (p *Program) MustAddRule(r *Rule) {
	if err := p.AddRule(r); err != nil {
		panic(err)
	}
}

// format helpers ------------------------------------------------------------

// FormatAtom renders an atom using the catalog's predicate and symbol names.
func (p *Program) FormatAtom(r *Rule, a Atom) string {
	var sb strings.Builder
	switch a.Kind {
	case AtomNegated:
		sb.WriteByte('!')
		fallthrough
	case AtomRelation:
		sb.WriteString(p.Catalog.Pred(a.Pred).Name)
	case AtomBuiltin:
		sb.WriteString(a.Builtin.String())
	}
	sb.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch t.Kind {
		case TermVar:
			sb.WriteString(r.VarName(t.Var))
		case TermConst:
			sb.WriteString(p.Catalog.Symbols.Format(t.Val))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// FormatRule renders a rule in Datalog surface syntax.
func (p *Program) FormatRule(r *Rule) string {
	var sb strings.Builder
	sb.WriteString(p.FormatAtom(r, r.Head))
	if len(r.Body) == 0 {
		sb.WriteByte('.')
		return sb.String()
	}
	sb.WriteString(" :- ")
	for i, a := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.FormatAtom(r, a))
	}
	sb.WriteByte('.')
	return sb.String()
}
