package stats

import (
	"carac/internal/ir"
	"carac/internal/storage"
)

// Snapshot is a deep, immutable capture of every statistic the optimizer
// consumes — cardinalities, per-column distinct counts, and per-column
// value-distribution histograms — taken at an epoch boundary. Unlike the
// live Catalog source, whose reads chase counters that the single writer
// keeps mutating (and whose histogram buckets a baseline rewind rebuilds
// mid-iteration), a Snapshot is consistent by construction: all values
// describe the same instant, and nothing that happens to the catalog
// afterwards — inserts, truncations, the ensureBaseline rewind between fact
// batches — can change what it reports. Serving sessions plan against the
// Snapshot of their pinned epoch.
//
// It implements Source, DistinctSource, and HistogramSource, so it can stand
// anywhere a live Catalog source does (AOT staging, histogram-overlap
// ordering).
type Snapshot struct {
	// CapturedEpoch is the catalog epoch generation at capture time.
	CapturedEpoch uint64

	cards    map[[2]int32]int
	distinct map[[3]int32]int
	hists    map[[3]int32]storage.Histogram
}

func srcRel(p *storage.PredicateDB, src ir.Source) *storage.Relation {
	if src == ir.SrcDelta {
		return p.DeltaKnown
	}
	return p.Derived
}

// CaptureSnapshot deep-copies the catalog's current statistics: the
// cardinality of every relation, the distinct count of every indexed column,
// and a copy of every registered histogram, for both the Derived and the
// DeltaKnown database of every predicate. The histograms are value copies
// (storage.Histogram is copy-safe by design), so the snapshot shares no
// mutable state with the catalog.
func CaptureSnapshot(cat *storage.Catalog) *Snapshot {
	return CaptureSnapshotAt(cat, cat.Epoch())
}

// CaptureSnapshotAt is CaptureSnapshot with an explicit epoch stamp. The
// serving layer uses it for post-fixpoint snapshots: a materialization is
// computed on a session's private catalog (whose own epoch counter never
// advances), but the statistics it captures describe the serving epoch the
// materialization belongs to, so the stamp must come from the server.
func CaptureSnapshotAt(cat *storage.Catalog, epoch uint64) *Snapshot {
	s := &Snapshot{
		CapturedEpoch: epoch,
		cards:         make(map[[2]int32]int, 2*cat.NumPreds()),
		distinct:      make(map[[3]int32]int),
		hists:         make(map[[3]int32]storage.Histogram),
	}
	for _, pd := range cat.Preds() {
		for _, src := range []ir.Source{ir.SrcDerived, ir.SrcDelta} {
			rel := srcRel(pd, src)
			s.cards[[2]int32{int32(pd.ID), int32(src)}] = rel.Len()
			for _, col := range rel.IndexedColumns() {
				k := [3]int32{int32(pd.ID), int32(src), int32(col)}
				s.distinct[k] = rel.DistinctCount(col)
			}
			for _, col := range rel.HistogramColumns() {
				if h, ok := rel.HistogramOf(col); ok {
					s.hists[[3]int32{int32(pd.ID), int32(src), int32(col)}] = h
				}
			}
		}
	}
	return s
}

// Card implements Source; unknown pairs read as 0.
func (s *Snapshot) Card(pred storage.PredID, src ir.Source) int {
	return s.cards[[2]int32{int32(pred), int32(src)}]
}

// Distinct implements DistinctSource; columns without a captured index read
// as -1, matching the live source's "unindexed" answer.
func (s *Snapshot) Distinct(pred storage.PredID, src ir.Source, col int) int {
	if d, ok := s.distinct[[3]int32{int32(pred), int32(src), int32(col)}]; ok {
		return d
	}
	return -1
}

// Histogram implements HistogramSource; ok is false for columns that carried
// no histogram at capture time.
func (s *Snapshot) Histogram(pred storage.PredID, src ir.Source, col int) (storage.Histogram, bool) {
	h, ok := s.hists[[3]int32{int32(pred), int32(src), int32(col)}]
	return h, ok
}
