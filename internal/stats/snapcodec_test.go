package stats

import (
	"bytes"
	"reflect"
	"testing"

	"carac/internal/storage"
)

func fullSnapshot() *Snapshot {
	h := storage.Histogram{Total: 99}
	for i := range h.Counts {
		h.Counts[i] = uint32(i * 3)
	}
	return &Snapshot{
		CapturedEpoch: 7,
		cards:         map[[2]int32]int{{1, 0}: 40, {1, 1}: 12, {3, 2}: 0},
		distinct:      map[[3]int32]int{{1, 0, 0}: 9, {1, 0, 1}: 4},
		hists:         map[[3]int32]storage.Histogram{{1, 0, 0}: h},
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := fullSnapshot()
	got, err := DecodeSnapshot(AppendSnapshot(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestSnapshotCodecDeterministic: map iteration order must not leak into the
// bytes — identical snapshots encode identically (content addressing depends
// on it).
func TestSnapshotCodecDeterministic(t *testing.T) {
	a := AppendSnapshot(nil, fullSnapshot())
	for i := 0; i < 16; i++ {
		if b := AppendSnapshot(nil, fullSnapshot()); !bytes.Equal(a, b) {
			t.Fatal("encoding depends on map iteration order")
		}
	}
}

func TestSnapshotCodecTruncation(t *testing.T) {
	b := AppendSnapshot(nil, fullSnapshot())
	for n := 0; n < len(b); n++ {
		if _, err := DecodeSnapshot(b[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(b))
		}
	}
}
