package stats

import (
	"fmt"
	"sort"

	"carac/internal/storage"
	"carac/internal/wire"
)

// SnapshotCodecVersion tags the layout below; bump on any change so stale
// cache files invalidate instead of misdecoding.
const SnapshotCodecVersion = 1

func appendKey2(b []byte, k [2]int32) []byte {
	b = wire.AppendI32(b, k[0])
	return wire.AppendI32(b, k[1])
}

func appendKey3(b []byte, k [3]int32) []byte {
	b = wire.AppendI32(b, k[0])
	b = wire.AppendI32(b, k[1])
	return wire.AppendI32(b, k[2])
}

func less3(a, b [3]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// AppendSnapshot serializes s onto b for the persistent cache: the profile
// statistics a restarted process can re-optimize against without replaying
// the workload. Map entries are emitted in sorted key order so identical
// snapshots produce identical bytes.
func AppendSnapshot(b []byte, s *Snapshot) []byte {
	b = wire.AppendU64(b, s.CapturedEpoch)

	ck := make([][2]int32, 0, len(s.cards))
	for k := range s.cards {
		ck = append(ck, k)
	}
	sort.Slice(ck, func(i, j int) bool {
		if ck[i][0] != ck[j][0] {
			return ck[i][0] < ck[j][0]
		}
		return ck[i][1] < ck[j][1]
	})
	b = wire.AppendInt(b, len(ck))
	for _, k := range ck {
		b = appendKey2(b, k)
		b = wire.AppendU64(b, uint64(s.cards[k]))
	}

	dk := make([][3]int32, 0, len(s.distinct))
	for k := range s.distinct {
		dk = append(dk, k)
	}
	sort.Slice(dk, func(i, j int) bool { return less3(dk[i], dk[j]) })
	b = wire.AppendInt(b, len(dk))
	for _, k := range dk {
		b = appendKey3(b, k)
		b = wire.AppendU64(b, uint64(int64(s.distinct[k])))
	}

	hk := make([][3]int32, 0, len(s.hists))
	for k := range s.hists {
		hk = append(hk, k)
	}
	sort.Slice(hk, func(i, j int) bool { return less3(hk[i], hk[j]) })
	b = wire.AppendInt(b, len(hk))
	for _, k := range hk {
		b = appendKey3(b, k)
		h := s.hists[k]
		for _, c := range h.Counts {
			b = wire.AppendU32(b, c)
		}
		b = wire.AppendU64(b, h.Total)
	}
	return b
}

// DecodeSnapshot reconstructs a Snapshot from AppendSnapshot output.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	r := wire.NewReader(b)
	s := &Snapshot{
		CapturedEpoch: r.U64(),
		cards:         make(map[[2]int32]int),
		distinct:      make(map[[3]int32]int),
		hists:         make(map[[3]int32]storage.Histogram),
	}
	n := r.Count(16)
	for i := 0; i < n; i++ {
		k := [2]int32{r.I32(), r.I32()}
		s.cards[k] = int(r.U64())
	}
	n = r.Count(20)
	for i := 0; i < n; i++ {
		k := [3]int32{r.I32(), r.I32(), r.I32()}
		s.distinct[k] = int(int64(r.U64()))
	}
	n = r.Count(12 + 4*storage.HistBuckets + 8)
	for i := 0; i < n; i++ {
		k := [3]int32{r.I32(), r.I32(), r.I32()}
		var h storage.Histogram
		for j := range h.Counts {
			h.Counts[j] = r.U32()
		}
		h.Total = r.U64()
		s.hists[k] = h
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("snapshot decode: %w", err)
	}
	return s, nil
}
