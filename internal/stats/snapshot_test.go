package stats

import (
	"testing"

	"carac/internal/ir"
	"carac/internal/storage"
)

// TestSnapshotDeepCopies pins the boundary-consistency contract: a Snapshot
// captured before mutations — including the truncate-and-rebuild rewind that
// in-flight live readers would observe half-done — keeps reporting the
// captured values bit-identically, while the live source moves on.
func TestSnapshotDeepCopies(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("edge", 2)
	pd := cat.Pred(id)
	pd.BuildIndexes([]int{0})
	pd.BuildHistograms([]int{0})
	for i := 0; i < 20; i++ {
		pd.AddFact([]storage.Value{storage.Value(i % 5), storage.Value(i)})
	}
	cat.AdvanceEpoch()

	snap := CaptureSnapshot(cat)
	live := Catalog{Cat: cat}

	if snap.CapturedEpoch != 1 {
		t.Fatalf("captured epoch %d, want 1", snap.CapturedEpoch)
	}
	if got, want := snap.Card(id, ir.SrcDerived), live.Card(id, ir.SrcDerived); got != want {
		t.Fatalf("snapshot card %d, live %d", got, want)
	}
	if got, want := snap.Distinct(id, ir.SrcDerived, 0), live.Distinct(id, ir.SrcDerived, 0); got != want || got != 5 {
		t.Fatalf("snapshot distinct %d, live %d, want 5", got, want)
	}
	h0, ok := snap.Histogram(id, ir.SrcDerived, 0)
	if !ok || h0.Total != 20 {
		t.Fatalf("snapshot histogram ok=%v total=%d, want 20", ok, h0.Total)
	}
	card0 := snap.Card(id, ir.SrcDerived)
	dist0 := snap.Distinct(id, ir.SrcDerived, 0)

	// The hazard sequence: truncate (rebuilds dedup/index/histograms from
	// the prefix) then re-insert a different distribution.
	pd.Derived.TruncateTo(3)
	for i := 0; i < 40; i++ {
		pd.AddFact([]storage.Value{storage.Value(1000 + i), storage.Value(i)})
	}

	if got := live.Card(id, ir.SrcDerived); got == card0 {
		t.Fatalf("test vacuous: live card unchanged (%d)", got)
	}
	if got := snap.Card(id, ir.SrcDerived); got != card0 {
		t.Errorf("snapshot card drifted: %d -> %d", card0, got)
	}
	if got := snap.Distinct(id, ir.SrcDerived, 0); got != dist0 {
		t.Errorf("snapshot distinct drifted: %d -> %d", dist0, got)
	}
	if got, ok := snap.Histogram(id, ir.SrcDerived, 0); !ok || got != h0 {
		t.Errorf("snapshot histogram drifted (ok=%v)", ok)
	}
}

// TestSnapshotAbsentStatistics: columns without captured artifacts answer
// like the live source's "not available" conventions.
func TestSnapshotAbsentStatistics(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("r", 2)
	cat.Pred(id).AddFact([]storage.Value{1, 2})
	snap := CaptureSnapshot(cat)

	if got := snap.Distinct(id, ir.SrcDerived, 0); got != -1 {
		t.Errorf("unindexed distinct = %d, want -1", got)
	}
	if _, ok := snap.Histogram(id, ir.SrcDerived, 0); ok {
		t.Error("histogram reported for unregistered column")
	}
	if got := snap.Card(id, ir.SrcDelta); got != 0 {
		t.Errorf("empty delta card %d, want 0", got)
	}
	if got := snap.Card(id, ir.SrcDerived); got != 1 {
		t.Errorf("derived card %d, want 1", got)
	}
}

// TestSnapshotIsSource: the snapshot satisfies the three statistics
// interfaces, so it can stand in wherever a live Catalog source does.
func TestSnapshotIsSource(t *testing.T) {
	var _ Source = (*Snapshot)(nil)
	var _ DistinctSource = (*Snapshot)(nil)
	var _ HistogramSource = (*Snapshot)(nil)
}
