// Package stats is Carac's unified statistics subsystem: every statistic the
// runtime optimizer, the JIT freshness test, and the plan cache consume —
// live cardinalities, per-column distinct counts, and monotone drift
// counters — flows through the interfaces defined here and is maintained
// incrementally inside the storage mutation paths, never re-derived ad hoc.
//
// The paper (§IV) feeds the reordering decision with "concrete instances of
// relations plugged directly into the reordering algorithm at the last
// possible moment"; this package is the single place those concrete
// observations are read from. Statistic sources:
//
//   - Catalog — the production source, reading counts straight from the
//     incrementally maintained storage catalog (O(1) per read);
//   - Frozen — an immutable point-in-time snapshot, safe to hand to an
//     asynchronous compile thread;
//   - Profile — an offline profiling capture (Soufflé-auto-tuner style);
//   - Unit — the rules-only source (cardinality 1 everywhere), used when
//     facts are not yet loaded.
package stats

import (
	"math"

	"carac/internal/ir"
	"carac/internal/storage"
)

// Source supplies live relation cardinalities, the primary input of the
// paper's join-order decision. Tests inject synthetic ones.
type Source interface {
	Card(pred storage.PredID, src ir.Source) int
}

// DistinctSource optionally supplies per-column distinct-value counts (from
// incremental indexes — the cheap "online statistics" the paper contrasts
// with its constant selectivity heuristic, §IV). Implementations return -1
// when the column is unindexed.
type DistinctSource interface {
	Distinct(pred storage.PredID, src ir.Source, col int) int
}

// HistogramSource optionally supplies per-column value-distribution
// histograms (incrementally maintained in the storage mutation paths, see
// storage.Relation.BuildHistogram). The optimizer's join-size estimate reads
// them to replace the constant join-key selectivity with the measured
// histogram overlap of the two join columns. Implementations report ok=false
// when the column carries no histogram.
type HistogramSource interface {
	Histogram(pred storage.PredID, src ir.Source, col int) (storage.Histogram, bool)
}

// Catalog reads statistics straight from the storage catalog. All of its
// reads are O(1): cardinalities and distinct counts are maintained
// incrementally by the storage mutation paths, and drift counters are bumped
// on every insert, swap, and truncate.
type Catalog struct {
	Cat *storage.Catalog
}

// Card returns the current tuple count of the relation (pred, src) resolves to.
func (s Catalog) Card(pred storage.PredID, src ir.Source) int {
	p := s.Cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown.Len()
	}
	return p.Derived.Len()
}

// Distinct returns the observed distinct count of a column, or -1 when the
// column carries no index.
func (s Catalog) Distinct(pred storage.PredID, src ir.Source, col int) int {
	p := s.Cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown.DistinctCount(col)
	}
	return p.Derived.DistinctCount(col)
}

// DriftCounter returns the predicate's monotone mutation counter (see
// storage.PredicateDB.DriftCounter): equal counters guarantee the
// predicate's relations are unchanged, so any artifact built against them is
// still exact.
func (s Catalog) DriftCounter(pred storage.PredID) uint64 {
	return s.Cat.Pred(pred).DriftCounter()
}

// ShardCard returns the tuple count of bucket shard of the relation
// (pred, src) resolves to — the statistic the sharded fixpoint driver
// consults to skip empty buckets and, per iteration, to pick the effective
// fan-out (task count, bucket spans, and the sequential fast path for
// small-delta tails — the adaptive fan-out driver in internal/interp).
// Like Card it is O(1): bucket sizes are maintained incrementally by the
// storage mutation paths; unpartitioned relations read as one bucket
// holding everything.
func (s Catalog) ShardCard(pred storage.PredID, src ir.Source, shard int) int {
	p := s.Cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown.ShardLen(shard)
	}
	return p.Derived.ShardLen(shard)
}

// Histogram returns the value-distribution histogram of a column of the
// relation (pred, src) resolves to, or ok=false when none is registered.
// Like every Catalog read it is O(1) modulo the fixed bucket count: the
// counts are maintained incrementally by the storage mutation paths.
func (s Catalog) Histogram(pred storage.PredID, src ir.Source, col int) (storage.Histogram, bool) {
	p := s.Cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown.HistogramOf(col)
	}
	return p.Derived.HistogramOf(col)
}

// ShardHistogram returns bucket shard's histogram of a column of the
// relation (pred, src) resolves to — the per-shard distribution variant,
// available under the physical layout (each bucket sub-relation owns its
// counts; unpartitioned relations read as one bucket).
func (s Catalog) ShardHistogram(pred storage.PredID, src ir.Source, shard, col int) (storage.Histogram, bool) {
	p := s.Cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown.ShardHistogram(shard, col)
	}
	return p.Derived.ShardHistogram(shard, col)
}

// ShardDriftCounter returns the predicate's per-bucket monotone counter (see
// storage.PredicateDB.ShardDriftCounter). The bucket counters refine the
// predicate-level DriftCounter without perturbing it: registering or reading
// shard partitions never advances the totals the plan cache's freshness
// policy compares, so sharded and unsharded runs see identical drift.
func (s Catalog) ShardDriftCounter(pred storage.PredID, shard int) uint64 {
	return s.Cat.Pred(pred).ShardDriftCounter(shard)
}

// Unit reports cardinality 1 for every relation: the rules-only source
// (only selectivity differentiates atoms, §VI-C's macro staging without
// fact knowledge).
type Unit struct{}

// Card implements Source.
func (Unit) Card(storage.PredID, ir.Source) int { return 1 }

// Frozen is an immutable point-in-time cardinality snapshot keyed by
// (pred, src). It is safe to share with an asynchronous compile thread while
// the interpreter keeps mutating the live catalog.
type Frozen map[[2]int32]int

// Card implements Source; unknown pairs read as 0.
func (f Frozen) Card(pred storage.PredID, src ir.Source) int {
	return f[[2]int32{int32(pred), int32(src)}]
}

// Set records a snapshot entry (test helper and incremental builder).
func (f Frozen) Set(pred storage.PredID, src ir.Source, n int) {
	f[[2]int32{int32(pred), int32(src)}] = n
}

// Freeze snapshots the cardinality of every relational atom beneath op from
// src, producing an immutable Source for asynchronous consumers.
func Freeze(op ir.Op, src Source) Frozen {
	f := Frozen{}
	ir.Walk(op, func(o ir.Op) {
		spj, ok := o.(*ir.SPJOp)
		if !ok {
			return
		}
		for _, a := range spj.Atoms {
			if a.IsRelational() {
				k := [2]int32{int32(a.Pred), int32(a.Src)}
				if _, seen := f[k]; !seen {
					f[k] = src.Card(a.Pred, a.Src)
				}
			}
		}
	})
	return f
}

// Profile is a captured offline profile: fixpoint cardinalities for derived
// relations and fixpoint-size/iterations as the per-iteration delta
// estimate — the statistics Soufflé's profile-guided auto-tuner fixes join
// orders with.
type Profile struct {
	derived map[storage.PredID]int
	delta   map[storage.PredID]int
}

// Card implements Source from the profile.
func (p Profile) Card(pred storage.PredID, src ir.Source) int {
	if src == ir.SrcDelta {
		return p.delta[pred]
	}
	return p.derived[pred]
}

// CaptureProfile snapshots a finished run's catalog into a Profile,
// estimating per-iteration delta cardinality as fixpoint size / iterations.
func CaptureProfile(cat *storage.Catalog, iterations int64) Profile {
	if iterations < 1 {
		iterations = 1
	}
	p := Profile{
		derived: make(map[storage.PredID]int, cat.NumPreds()),
		delta:   make(map[storage.PredID]int, cat.NumPreds()),
	}
	for _, pd := range cat.Preds() {
		n := pd.Derived.Len()
		p.derived[pd.ID] = n
		p.delta[pd.ID] = n / int(iterations)
	}
	return p
}

// CardVector snapshots the cardinalities of every relational atom of the
// subquery — the state the freshness test compares against (paper §V-B2).
func CardVector(spj *ir.SPJOp, src Source) []int {
	return AppendCardVector(nil, spj, src)
}

// AppendCardVector is CardVector into a caller-reused buffer (hot paths run
// it per subquery execution).
func AppendCardVector(dst []int, spj *ir.SPJOp, src Source) []int {
	for _, a := range spj.Atoms {
		if a.IsRelational() {
			dst = append(dst, src.Card(a.Pred, a.Src))
		}
	}
	return dst
}

// CounterVector snapshots the drift counters of every relational atom of the
// subquery. Equal vectors guarantee the relations the subquery reads are
// byte-for-byte unchanged — a cheaper freshness pre-test than cardinality
// drift, requiring no threshold.
func CounterVector(spj *ir.SPJOp, cat *storage.Catalog) []uint64 {
	return AppendCounterVector(nil, spj, cat)
}

// AppendCounterVector is CounterVector into a caller-reused buffer.
func AppendCounterVector(dst []uint64, spj *ir.SPJOp, cat *storage.Catalog) []uint64 {
	for _, a := range spj.Atoms {
		if a.IsRelational() {
			dst = append(dst, cat.Pred(a.Pred).DriftCounter())
		}
	}
	return dst
}

// CountersEqual reports whether two counter vectors are identical.
func CountersEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Drift returns the maximum relative cardinality change between two card
// vectors: max_i |new_i - old_i| / max(1, old_i). Vectors of different
// lengths drift infinitely (the subquery changed shape).
func Drift(old, new []int) float64 {
	if len(old) != len(new) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range old {
		den := float64(old[i])
		if den < 1 {
			den = 1
		}
		rel := math.Abs(float64(new[i]-old[i])) / den
		if rel > d {
			d = rel
		}
	}
	return d
}
