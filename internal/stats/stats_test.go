package stats

import (
	"math"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
)

func TestCatalogCardAndDistinct(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("r", 2)
	p := cat.Pred(id)
	p.BuildIndexes([]int{0})
	for i := int32(0); i < 20; i++ {
		p.AddFact([]storage.Value{i % 4, i})
	}
	cs := Catalog{Cat: cat}
	if got := cs.Card(id, ir.SrcDerived); got != 20 {
		t.Fatalf("Card = %d, want 20", got)
	}
	if got := cs.Card(id, ir.SrcDelta); got != 0 {
		t.Fatalf("delta Card = %d, want 0", got)
	}
	if got := cs.Distinct(id, ir.SrcDerived, 0); got != 4 {
		t.Fatalf("Distinct = %d, want 4", got)
	}
	if got := cs.Distinct(id, ir.SrcDerived, 1); got != -1 {
		t.Fatalf("unindexed Distinct = %d, want -1", got)
	}
}

// TestDriftCounterMonotone: the per-predicate counter must advance on every
// insert, swap, truncate, and clear, and never decrease — the invariant the
// plan cache's equality fast path relies on.
func TestDriftCounterMonotone(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("r", 2)
	p := cat.Pred(id)
	last := p.DriftCounter()
	step := func(what string, f func()) {
		f()
		got := p.DriftCounter()
		if got <= last {
			t.Fatalf("%s: counter %d did not advance past %d", what, got, last)
		}
		last = got
	}
	step("AddFact", func() { p.AddFact([]storage.Value{1, 2}) })
	step("DeltaNew insert", func() { p.DeltaNew.Insert([]storage.Value{3, 4}) })
	step("SwapClear", func() { p.SwapClear() })
	step("second fact", func() { p.AddFact([]storage.Value{5, 6}) })
	step("TruncateTo", func() { p.Derived.TruncateTo(1) })
	step("Reset", func() { p.Reset() })

	// Duplicate insert and no-op clear must NOT advance (no content change).
	p.AddFact([]storage.Value{9, 9})
	before := p.DriftCounter()
	p.AddFact([]storage.Value{9, 9})
	p.DeltaNew.Clear() // already empty
	if got := p.DriftCounter(); got != before {
		t.Fatalf("no-op mutations moved the counter: %d -> %d", before, got)
	}
}

func TestFreezeSnapshotsAndStaysPut(t *testing.T) {
	cat := storage.NewCatalog()
	e := cat.Declare("e", 2)
	spj := &ir.SPJOp{
		NumVars: 2,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: e, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	cat.Pred(e).AddFact([]storage.Value{1, 2})
	f := Freeze(spj, Catalog{Cat: cat})
	if got := f.Card(e, ir.SrcDerived); got != 1 {
		t.Fatalf("frozen Card = %d, want 1", got)
	}
	cat.Pred(e).AddFact([]storage.Value{3, 4})
	if got := f.Card(e, ir.SrcDerived); got != 1 {
		t.Fatalf("frozen Card moved with live data: %d", got)
	}
	if got := (Catalog{Cat: cat}).Card(e, ir.SrcDerived); got != 2 {
		t.Fatalf("live Card = %d, want 2", got)
	}
}

func TestProfileCapture(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("r", 1)
	for i := int32(0); i < 12; i++ {
		cat.Pred(id).AddFact([]storage.Value{i})
	}
	prof := CaptureProfile(cat, 4)
	if got := prof.Card(id, ir.SrcDerived); got != 12 {
		t.Fatalf("profile derived = %d, want 12", got)
	}
	if got := prof.Card(id, ir.SrcDelta); got != 3 {
		t.Fatalf("profile delta = %d, want 12/4", got)
	}
	// Zero iterations clamp to 1.
	prof0 := CaptureProfile(cat, 0)
	if got := prof0.Card(id, ir.SrcDelta); got != 12 {
		t.Fatalf("clamped profile delta = %d, want 12", got)
	}
}

func TestCountersEqual(t *testing.T) {
	if !CountersEqual([]uint64{1, 2}, []uint64{1, 2}) {
		t.Fatal("equal vectors reported unequal")
	}
	if CountersEqual([]uint64{1, 2}, []uint64{1, 3}) || CountersEqual([]uint64{1}, []uint64{1, 1}) {
		t.Fatal("unequal vectors reported equal")
	}
}

func TestUnitSource(t *testing.T) {
	if (Unit{}).Card(0, ir.SrcDerived) != 1 || (Unit{}).Card(5, ir.SrcDelta) != 1 {
		t.Fatal("Unit must report cardinality 1 everywhere")
	}
}

func TestDriftEdgeCases(t *testing.T) {
	if d := Drift([]int{100}, []int{150}); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("Drift = %v, want 0.5", d)
	}
	if d := Drift([]int{1, 2}, []int{1}); !math.IsInf(d, 1) {
		t.Fatalf("shape change should drift infinitely, got %v", d)
	}
	if d := Drift([]int{0}, []int{7}); math.Abs(d-7) > 1e-9 {
		t.Fatalf("zero-base drift = %v, want 7", d)
	}
	if d := Drift(nil, nil); d != 0 {
		t.Fatalf("empty drift = %v, want 0", d)
	}
}

func TestShardStatsAggregateToTotals(t *testing.T) {
	cat := storage.NewCatalog()
	id := cat.Declare("e", 2)
	pd := cat.Pred(id)
	pd.SetShards(4, 0)
	for i := 0; i < 50; i++ {
		pd.AddFact([]storage.Value{storage.Value(i % 13), storage.Value(i)})
	}
	pd.SeedDeltas()
	src := Catalog{Cat: cat}
	for _, ir2 := range []ir.Source{ir.SrcDerived, ir.SrcDelta} {
		sum := 0
		for s := 0; s < 4; s++ {
			sum += src.ShardCard(id, ir2, s)
		}
		if total := src.Card(id, ir2); sum != total {
			t.Fatalf("src %v: per-shard cards sum to %d, total is %d", ir2, sum, total)
		}
	}
	// Per-shard drift counters refine, never perturb, the predicate total.
	before := src.DriftCounter(id)
	for s := 0; s < 4; s++ {
		_ = src.ShardDriftCounter(id, s)
	}
	if after := src.DriftCounter(id); after != before {
		t.Fatalf("reading shard drift counters moved the total %d -> %d", before, after)
	}
}
