// Package workloads defines the paper's microbenchmarks (§VI-A): bounded
// Ackermann, Fibonacci, and prime-sieve programs expressed as recursive
// Datalog over arithmetic builtins. They are deliberately short-running —
// their role in the evaluation is to find the point where online
// optimization overhead stops paying off (§VI-B).
//
// Like the macro analyses, each program exists in a HandOptimized and an
// Unoptimized formulation (adversarial but legal atom orders).
package workloads

import (
	"carac/internal/analysis"
	"carac/internal/core"
)

// Fibonacci builds fib(i, v) for i in 0..n via
//
//	fib(0,0). fib(1,1).
//	fib(j,s) :- fib(i,a), j = i+2, j <= n, k = j-1, fib(k,b), s = a+b.
func Fibonacci(form analysis.Formulation, n int) *analysis.Built {
	p := core.NewProgram()
	fib := p.Relation("fib", 2)
	lim := p.Relation("lim", 1)
	i, j, k, a, b, s, m := core.NewVar("i"), core.NewVar("j"), core.NewVar("k"),
		core.NewVar("a"), core.NewVar("b"), core.NewVar("s"), core.NewVar("m")

	if form == analysis.HandOptimized {
		p.MustRule(fib.A(j, s),
			fib.A(i, a), core.Add(i, 2, j), lim.A(m), core.Le(j, m),
			core.Sub(j, 1, k), fib.A(k, b), core.Add(a, b, s))
	} else {
		// fib × fib cartesian product first, arithmetic filters last.
		p.MustRule(fib.A(j, s),
			fib.A(i, a), fib.A(k, b), core.Add(i, 1, k), core.Add(i, 2, j),
			lim.A(m), core.Le(j, m), core.Add(a, b, s))
	}
	fib.MustFact(0, 0)
	fib.MustFact(1, 1)
	lim.MustFact(n)
	return &analysis.Built{P: p, Output: fib}
}

// Ackermann builds the bounded Ackermann relation ack(m, n, r):
//
//	ack(0,n,r)   :- nat(n), r = n+1.
//	ack(m1,0,r)  :- ack(m,1,r), m1 = m+1, m1 <= maxm.
//	ack(m1,n1,r) :- ack(m1,n,k), m = m1-1, ack(m,k,r), n1 = n+1, n1 <= maxn.
//
// Values escaping the nat domain simply do not derive, keeping the fixpoint
// finite; maxm/maxn bound the explored arguments.
func Ackermann(form analysis.Formulation, maxM, maxN int) *analysis.Built {
	p := core.NewProgram()
	nat := p.Relation("nat", 1)
	maxm := p.Relation("maxm", 1)
	maxn := p.Relation("maxn", 1)
	ack := p.Relation("ack", 3)
	n, r, m, m1, n1, k, mm, nn := core.NewVar("n"), core.NewVar("r"), core.NewVar("m"),
		core.NewVar("m1"), core.NewVar("n1"), core.NewVar("k"), core.NewVar("mm"), core.NewVar("nn")

	p.MustRule(ack.A(0, n, r), nat.A(n), core.Add(n, 1, r))
	if form == analysis.HandOptimized {
		p.MustRule(ack.A(m1, 0, r),
			ack.A(m, 1, r), core.Add(m, 1, m1), maxm.A(mm), core.Le(m1, mm))
		p.MustRule(ack.A(m1, n1, r),
			ack.A(m1, n, k), core.Sub(m1, 1, m), ack.A(m, k, r),
			core.Add(n, 1, n1), maxn.A(nn), core.Le(n1, nn))
	} else {
		p.MustRule(ack.A(m1, 0, r),
			maxm.A(mm), ack.A(m, 1, r), core.Add(m, 1, m1), core.Le(m1, mm))
		// Scan the whole ack relation twice joining only on k, guards last.
		p.MustRule(ack.A(m1, n1, r),
			ack.A(m, k, r), ack.A(m1, n, k), core.Sub(m1, 1, m),
			maxn.A(nn), core.Add(n, 1, n1), core.Le(n1, nn))
	}
	for i := 0; i <= maxN*16+16; i++ {
		nat.MustFact(i)
	}
	maxm.MustFact(maxM)
	maxn.MustFact(maxN)
	return &analysis.Built{P: p, Output: ack}
}

// Primes builds the sieve via stratified negation:
//
//	composite(c) :- num(a), num(b), c = a*b, num(c).
//	prime(p)     :- num(p), !composite(p).
func Primes(form analysis.Formulation, n int) *analysis.Built {
	p := core.NewProgram()
	num := p.Relation("num", 1)
	comp := p.Relation("composite", 1)
	prime := p.Relation("prime", 1)
	a, b, c, q := core.NewVar("a"), core.NewVar("b"), core.NewVar("c"), core.NewVar("q")

	if form == analysis.HandOptimized {
		p.MustRule(comp.A(c), num.A(a), num.A(b), core.Mul(a, b, c), num.A(c))
	} else {
		// The full num³ cube filtered afterwards.
		p.MustRule(comp.A(c), num.A(a), num.A(b), num.A(c), core.Mul(a, b, c))
	}
	p.MustRule(prime.A(q), num.A(q), Not(comp.A(q)))
	for i := 2; i <= n; i++ {
		num.MustFact(i)
	}
	return &analysis.Built{P: p, Output: prime}
}

// TransitiveClosure builds the canonical single-recursive-rule workload —
// reachability over a pseudo-random graph:
//
//	tc(x,y) :- edge(x,y).
//	tc(x,y) :- tc(x,z), edge(z,y).
//
// One large rule dominates the fixpoint, so rule-granular parallelism cannot
// help it (the iteration serializes on the one rule); it is the shape the
// sharded fan-out exists for. The Unoptimized formulation leads with the
// non-delta edge scan (adversarial but legal).
func TransitiveClosure(form analysis.Formulation, nodes, edges, seed int) *analysis.Built {
	p := core.NewProgram()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)
	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")

	p.MustRule(tc.A(x, y), edge.A(x, y))
	if form == analysis.HandOptimized {
		p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
	} else {
		p.MustRule(tc.A(x, y), edge.A(z, y), tc.A(x, z))
	}
	// Deterministic splitmix64 edge generator: self-loops dropped, duplicates
	// deduped by storage.
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < edges; i++ {
		a := int(next() % uint64(nodes))
		b := int(next() % uint64(nodes))
		if a == b {
			continue
		}
		edge.MustFact(a, b)
	}
	return &analysis.Built{P: p, Output: tc}
}

// SkewedGraph builds the transitive-closure rules over a deliberately skewed
// graph: hubs form a small ring, every other node points a spoke at one hub
// (node i → hub i%hubs), and a power-law background of extra edges piles onto
// the low-numbered nodes. The derived tc facts concentrate on the hubs'
// delta buckets — tc is sharded on its join column z in tc(x,z), edge(z,y) —
// so a static contiguous bucket span containing a hub bucket serializes the
// iteration behind one straggler task. This is the workload skew detection
// and work-stealing bucket claims exist for; the hub ring plus background
// edges keep several buckets occupied, so there is always work to steal.
func SkewedGraph(form analysis.Formulation, nodes, edges, hubs, seed int) *analysis.Built {
	p := core.NewProgram()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)
	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")

	p.MustRule(tc.A(x, y), edge.A(x, y))
	if form == analysis.HandOptimized {
		p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
	} else {
		p.MustRule(tc.A(x, y), edge.A(z, y), tc.A(x, z))
	}
	if hubs < 1 {
		hubs = 1
	}
	if nodes <= hubs {
		nodes = hubs + 1
	}
	// Hub ring: keeps the hubs mutually reachable so hub-bucket deltas renew
	// every iteration instead of draining after one.
	for h := 0; h < hubs; h++ {
		edge.MustFact(h, (h+1)%hubs)
	}
	// Spokes: every non-hub node feeds one hub.
	for i := hubs; i < nodes; i++ {
		edge.MustFact(i, i%hubs)
	}
	// Power-law background: deterministic splitmix64 targets, right-shifted
	// by a random 0..7 bits so low-numbered nodes absorb most extra edges.
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < edges; i++ {
		a := int(next() % uint64(nodes))
		b := int((next() % uint64(nodes)) >> (next() % 8))
		if a == b {
			continue
		}
		edge.MustFact(a, b)
	}
	return &analysis.Built{P: p, Output: tc}
}

// Not re-exports core.Not for readability inside this package.
func Not(a core.Atom) core.Atom { return core.Not(a) }
