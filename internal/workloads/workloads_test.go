package workloads

import (
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/jit"
	"carac/internal/storage"
)

func TestFibonacciValues(t *testing.T) {
	for _, form := range []analysis.Formulation{analysis.HandOptimized, analysis.Unoptimized} {
		b := Fibonacci(form, 20)
		if _, err := b.P.Run(core.Options{}); err != nil {
			t.Fatal(err)
		}
		if b.Output.Len() != 21 {
			t.Fatalf("%v: |fib| = %d, want 21", form, b.Output.Len())
		}
		for _, c := range [][2]int{{10, 55}, {15, 610}, {20, 6765}} {
			if !b.Output.Contains(c[0], c[1]) {
				t.Fatalf("%v: fib(%d) != %d", form, c[0], c[1])
			}
		}
	}
}

func TestAckermannValues(t *testing.T) {
	for _, form := range []analysis.Formulation{analysis.HandOptimized, analysis.Unoptimized} {
		b := Ackermann(form, 2, 12)
		if _, err := b.P.Run(core.Options{}); err != nil {
			t.Fatal(err)
		}
		// ack(1, n) = n+2; ack(2, n) = 2n+3 (within the bounded domain).
		cases := [][3]int{
			{0, 5, 6},
			{1, 3, 5},
			{1, 10, 12},
			{2, 2, 7},
			{2, 5, 13},
		}
		for _, c := range cases {
			if !b.Output.Contains(c[0], c[1], c[2]) {
				t.Fatalf("%v: ack(%d,%d) != %d", form, c[0], c[1], c[2])
			}
		}
	}
}

func TestAckermannFormulationsAgree(t *testing.T) {
	a := Ackermann(analysis.HandOptimized, 2, 8)
	u := Ackermann(analysis.Unoptimized, 2, 8)
	ra, err := a.P.Run(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := u.P.Run(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Output.Len() != u.Output.Len() {
		t.Fatalf("|ack| differs: %d vs %d", a.Output.Len(), u.Output.Len())
	}
	_ = ra
	_ = ru
	same := true
	a.Output.Each(func(tu []storage.Value) bool {
		if !u.Output.Contains(int(tu[0]), int(tu[1]), int(tu[2])) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("formulations derive different ack tuples")
	}
}

func TestPrimesValues(t *testing.T) {
	for _, form := range []analysis.Formulation{analysis.HandOptimized, analysis.Unoptimized} {
		b := Primes(form, 50)
		if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatal(err)
		}
		want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
		if b.Output.Len() != len(want) {
			t.Fatalf("%v: %d primes, want %d", form, b.Output.Len(), len(want))
		}
		for _, v := range want {
			if !b.Output.Contains(v) {
				t.Fatalf("%v: missing prime %d", form, v)
			}
		}
	}
}

func TestMicrosUnderJIT(t *testing.T) {
	builders := map[string]func() *analysis.Built{
		"fib":  func() *analysis.Built { return Fibonacci(analysis.Unoptimized, 15) },
		"ack":  func() *analysis.Built { return Ackermann(analysis.Unoptimized, 2, 8) },
		"prim": func() *analysis.Built { return Primes(analysis.Unoptimized, 40) },
	}
	for name, build := range builders {
		ref := build()
		if _, err := ref.P.Run(core.Options{}); err != nil {
			t.Fatalf("%s ref: %v", name, err)
		}
		for _, backend := range []jit.Backend{jit.BackendIRGen, jit.BackendLambda, jit.BackendBytecode, jit.BackendQuotes} {
			b := build()
			if _, err := b.P.Run(core.Options{Indexed: true,
				JIT: jit.Config{Backend: backend, Granularity: jit.GranUnionAll}}); err != nil {
				t.Fatalf("%s %v: %v", name, backend, err)
			}
			if b.Output.Len() != ref.Output.Len() {
				t.Fatalf("%s %v: |out| = %d, want %d", name, backend, b.Output.Len(), ref.Output.Len())
			}
		}
	}
}
