package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Composite (multi-column) hash indexes. The paper's Carac builds one index
// per single filter/join column (§IV); this extension implements the
// auto-index-selection direction it cites (Subotić et al., VLDB'18) in a
// simplified form: indexes over column *sets*, chosen from the bound-column
// signatures that actually occur in rule bodies, so multi-key joins probe
// once instead of probing one column and filtering the rest.

type compositeIndex struct {
	cols []int // ascending
	m    map[string][]int32
}

func colsKey(cols []int) string {
	b := make([]byte, 2*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(c))
	}
	return string(b)
}

func (ci *compositeIndex) keyFor(vals []Value, scratch []byte) []byte {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(scratch[4*i:], uint32(v))
	}
	return scratch[:4*len(vals)]
}

// BuildCompositeIndex registers (and backfills) a hash index over the given
// column set (order-insensitive; at least two columns — use BuildIndex for
// one). Maintained incrementally on insert; registration survives Clear.
func (r *Relation) BuildCompositeIndex(cols []int) {
	if len(cols) < 2 {
		panic(fmt.Sprintf("storage: composite index on %q needs >= 2 columns, got %v", r.name, cols))
	}
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	for i, c := range sorted {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("storage: composite index column %d out of range for %q/%d", c, r.name, r.arity))
		}
		if i > 0 && sorted[i-1] == c {
			panic(fmt.Sprintf("storage: duplicate composite index column %d for %q", c, r.name))
		}
	}
	key := colsKey(sorted)
	if r.composites == nil {
		r.composites = make(map[string]*compositeIndex)
	}
	if _, ok := r.composites[key]; ok {
		return
	}
	if r.subs != nil {
		// Physical mode: per-bucket registration, empty parent entry for
		// bookkeeping (as in BuildIndex).
		for _, s := range r.subs {
			s.BuildCompositeIndex(sorted)
		}
		r.composites[key] = &compositeIndex{cols: sorted, m: make(map[string][]int32)}
		return
	}
	ci := &compositeIndex{cols: sorted, m: make(map[string][]int32)}
	vals := make([]Value, len(sorted))
	scratch := make([]byte, 4*len(sorted))
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		t := r.Row(row)
		for i, c := range sorted {
			vals[i] = t[c]
		}
		k := string(ci.keyFor(vals, scratch))
		ci.m[k] = append(ci.m[k], row)
	}
	r.composites[key] = ci
}

// HasCompositeIndex reports whether an index over exactly this column set is
// registered.
func (r *Relation) HasCompositeIndex(cols []int) bool {
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	_, ok := r.composites[colsKey(sorted)]
	return ok
}

// CompositeIndexes returns the registered column sets.
func (r *Relation) CompositeIndexes() [][]int {
	out := make([][]int, 0, len(r.composites))
	for _, ci := range r.composites {
		out = append(out, append([]int(nil), ci.cols...))
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// ProbeComposite returns the rows whose columns cols (ascending) equal vals
// (in the same order). ok is false when no such composite index exists —
// including on physically sharded relations (bucket-local row ids; see
// Probe), where executors probe the PhysSubs individually.
func (r *Relation) ProbeComposite(cols []int, vals []Value) ([]int32, bool) {
	if r.subs != nil {
		return nil, false
	}
	ci, ok := r.composites[colsKey(cols)]
	if !ok {
		return nil, false
	}
	scratch := make([]byte, 4*len(vals))
	return ci.m[string(ci.keyFor(vals, scratch))], true
}

// DistinctCount returns the number of distinct values in column col as
// observed by its incremental index, or -1 when col is unindexed. This is
// the cheap "online statistics" alternative the paper mentions (§IV,
// Selectivity): no extra maintenance cost because the index already exists.
func (r *Relation) DistinctCount(col int) int {
	idx, ok := r.indexes[col]
	if !ok {
		return -1
	}
	if r.subs != nil {
		// Buckets partition the shard key's value space disjointly, so the
		// per-bucket distinct counts sum exactly for that column. For any
		// other column a value may recur across buckets; report the largest
		// bucket's count, a valid lower bound for the selectivity heuristic.
		n := 0
		for _, s := range r.subs {
			d := s.DistinctCount(col)
			if col == r.shardCol {
				n += d
			} else if d > n {
				n = d
			}
		}
		return n
	}
	return len(idx)
}
