package storage

import "fmt"

// PredID identifies a predicate inside a Catalog. Ids are dense and assigned
// in declaration order, so they can index slices.
type PredID int32

// PredicateDB bundles the three per-predicate relations of the semi-naive
// evaluation scheme (paper §V-B1, §V-D):
//
//   - Derived: every fact discovered so far (the "derived database", ⋆).
//   - DeltaKnown: facts first discovered in the previous iteration,
//     read-only during the current iteration (δ).
//   - DeltaNew: facts discovered in the current iteration, write-only.
//
// Splitting the delta into a read-only Known and a write-only New database
// is what lets any IROp boundary act as a JIT safe point and enables
// parallel/asynchronous work: readers and writers never share a relation.
type PredicateDB struct {
	ID    PredID
	Name  string
	Arity int

	Derived    *Relation
	DeltaKnown *Relation
	DeltaNew   *Relation

	// EDB predicates hold only ground facts (no rules derive them); their
	// deltas stay empty after seeding.
	EDB bool

	// swaps counts SwapClear invocations, the delta-rotation component of the
	// predicate's drift counter.
	swaps uint64

	// Shard configuration (0 = unsharded): all three relations are
	// partitioned into shards buckets by hash of column shardCol, the
	// planned join key. physical selects the physically sharded backing
	// store for the delta pair (per-bucket slabs and indexes, concurrent
	// per-bucket inserts) plus bucket-local dedup on Derived; see shard.go
	// and physshard.go.
	shards   int
	shardCol int
	physical bool
}

func newPredicateDB(id PredID, name string, arity int) *PredicateDB {
	return &PredicateDB{
		ID:         id,
		Name:       name,
		Arity:      arity,
		Derived:    NewRelation(name+"⋆", arity),
		DeltaKnown: NewRelation(name+"δ", arity),
		DeltaNew:   NewRelation(name+"δ'", arity),
	}
}

// AddFact inserts a ground fact into Derived, returning true if new.
// Facts become visible to the first iteration via SeedDeltas.
func (p *PredicateDB) AddFact(t []Value) bool {
	return p.Derived.Insert(t)
}

// SeedDeltas copies Derived into DeltaKnown, making every initial fact
// "newly discovered" for the first semi-naive iteration.
func (p *PredicateDB) SeedDeltas() {
	p.DeltaKnown.Clear()
	p.DeltaKnown.InsertAll(p.Derived)
}

// SwapClear implements SwapClearOp for one predicate: merge the facts
// discovered this iteration into Derived, swap the read-only and write-only
// delta databases, and clear the relation that will become the next
// write-only delta (paper §V-B1).
func (p *PredicateDB) SwapClear() {
	p.swaps++
	p.Derived.InsertAll(p.DeltaNew)
	p.DeltaKnown, p.DeltaNew = p.DeltaNew, p.DeltaKnown
	// Relation names travel with the structs; swap them back so Derived/δ/δ'
	// naming stays meaningful in debug output.
	p.DeltaKnown.name, p.DeltaNew.name = p.Name+"δ", p.Name+"δ'"
	p.DeltaNew.Clear()
}

// DriftCounter returns a monotone counter that advances on every mutation of
// any of the predicate's three relations — insert, clear, truncate — and on
// every delta swap. The sum over all three relations is invariant under
// SwapClear's pointer exchange (the relation set is unchanged) and each
// component only grows, so the counter is monotone; equal observations
// guarantee the predicate's visible state did not change in between. This is
// the cheap freshness pre-test the statistics subsystem and the plan cache
// consult before computing cardinality drift.
func (p *PredicateDB) DriftCounter() uint64 {
	return p.swaps + p.Derived.Mutations() + p.DeltaKnown.Mutations() + p.DeltaNew.Mutations()
}

// SetShards partitions all three relations into n buckets by hash of column
// col — the join key the planner probes, so the parallel executor can hand
// each bucket of the delta to a different worker. n < 2 removes the
// partition. The partitions are row-id views: registering them leaves every
// relation's content and mutation counter untouched, so DriftCounter totals
// are identical before and after sharding.
func (p *PredicateDB) SetShards(n, col int) {
	if n < 2 {
		p.shards, p.shardCol = 0, 0
	} else {
		p.shards, p.shardCol = n, col
	}
	p.physical = false
	p.Derived.SetShardKey(n, col)
	p.DeltaKnown.SetShardKey(n, col)
	p.DeltaNew.SetShardKey(n, col)
}

// SetShardsPhysical partitions like SetShards but with the physically
// sharded backing store: the delta pair becomes n independent per-bucket
// sub-relations (so the merge barrier can fold worker buffers concurrently,
// one task per bucket — SwapClear's pointer exchange carries the mode with
// the structs), and Derived keeps the global arena with a per-bucket dedup
// split (so the workers' frozen set-difference probes are bucket-local).
// Content and predicate-level drift totals are preserved exactly, like
// SetShards. n < 2 removes the partition.
func (p *PredicateDB) SetShardsPhysical(n, col int) {
	if n < 2 {
		p.SetShards(n, col)
		return
	}
	p.shards, p.shardCol = n, col
	p.physical = true
	p.Derived.SetShardKeySplit(n, col)
	p.DeltaKnown.SetShardKeyPhysical(n, col)
	p.DeltaNew.SetShardKeyPhysical(n, col)
}

// Shards returns the configured bucket count (0 = unsharded).
func (p *PredicateDB) Shards() int { return p.shards }

// Physical reports whether the configured partition uses the physically
// sharded backing store (SetShardsPhysical).
func (p *PredicateDB) Physical() bool { return p.physical }

// ShardKeyCol returns the configured shard key column.
func (p *PredicateDB) ShardKeyCol() int { return p.shardCol }

// ShardDriftCounter is the per-bucket analogue of DriftCounter: a monotone
// counter over bucket s of all three relations plus the delta rotations. The
// three per-relation components travel with the relation structs, so the sum
// is invariant under SwapClear's pointer exchange, exactly like the
// predicate-level counter it refines.
func (p *PredicateDB) ShardDriftCounter(s int) uint64 {
	return p.swaps + p.Derived.ShardMutations(s) + p.DeltaKnown.ShardMutations(s) + p.DeltaNew.ShardMutations(s)
}

// BuildIndexes registers indexes on the given columns across all three
// relations, so probes work regardless of which database an atom reads.
func (p *PredicateDB) BuildIndexes(cols []int) {
	for _, c := range cols {
		p.Derived.BuildIndex(c)
		p.DeltaKnown.BuildIndex(c)
		p.DeltaNew.BuildIndex(c)
	}
}

// BuildCompositeIndexes registers one composite index per column set across
// all three relations (auto-index selection extension).
func (p *PredicateDB) BuildCompositeIndexes(sets [][]int) {
	for _, cols := range sets {
		p.Derived.BuildCompositeIndex(cols)
		p.DeltaKnown.BuildCompositeIndex(cols)
		p.DeltaNew.BuildCompositeIndex(cols)
	}
}

// Reset drops all tuples from the three relations (index registrations are
// kept), returning the predicate to its pre-run state.
func (p *PredicateDB) Reset() {
	p.Derived.Clear()
	p.DeltaKnown.Clear()
	p.DeltaNew.Clear()
}

// Catalog owns every PredicateDB of a program plus the shared symbol table.
// It is the single mutable store the executor, optimizer, and JIT all read;
// because all program state lives here (never on an execution stack), any
// IROp node is a valid point to switch between interpretation and compiled
// code (paper §V-B3).
type Catalog struct {
	Symbols *SymbolTable
	preds   []*PredicateDB
	byName  map[string]PredID
	// epoch counts snapshot boundaries (Runs and published serving epochs);
	// see Epoch/AdvanceEpoch in epoch.go.
	epoch uint64
}

// NewCatalog returns an empty catalog with a fresh symbol table.
func NewCatalog() *Catalog {
	return &Catalog{
		Symbols: NewSymbolTable(),
		byName:  make(map[string]PredID),
	}
}

// Declare registers a predicate, returning its dense id. Re-declaring an
// existing name with the same arity returns the existing id; a different
// arity panics (schema conflict).
func (c *Catalog) Declare(name string, arity int) PredID {
	if id, ok := c.byName[name]; ok {
		if c.preds[id].Arity != arity {
			panic(fmt.Sprintf("storage: predicate %q redeclared with arity %d (was %d)", name, arity, c.preds[id].Arity))
		}
		return id
	}
	id := PredID(len(c.preds))
	c.preds = append(c.preds, newPredicateDB(id, name, arity))
	c.byName[name] = id
	return id
}

// Pred returns the PredicateDB for id.
func (c *Catalog) Pred(id PredID) *PredicateDB { return c.preds[id] }

// PredByName looks a predicate up by name.
func (c *Catalog) PredByName(name string) (*PredicateDB, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.preds[id], true
}

// NumPreds returns the number of declared predicates.
func (c *Catalog) NumPreds() int { return len(c.preds) }

// Preds returns the predicate slice indexed by PredID. Callers must not
// mutate it.
func (c *Catalog) Preds() []*PredicateDB { return c.preds }

// ResetFacts clears all derived and delta data in every predicate, keeping
// declarations and index registrations. Used between repeated benchmark runs.
func (c *Catalog) ResetFacts() {
	for _, p := range c.preds {
		p.Reset()
	}
}

// ConfigureShards partitions every predicate into n buckets, keyed by the
// predicate's entry in keyCols (its planned join key; column 0 when absent).
// n < 2 removes all partitions.
func (c *Catalog) ConfigureShards(n int, keyCols map[PredID]int) {
	for _, p := range c.preds {
		col := keyCols[p.ID]
		if col < 0 || col >= p.Arity {
			col = 0
		}
		p.SetShards(n, col)
	}
}

// ConfigureShardsPhysical is ConfigureShards with the physically sharded
// backing store (SetShardsPhysical) — the layout the parallel merge barrier
// requires. Every execution engine reads it: the interpreter's executors and
// all compiled backends iterate the bucket-local surface (Relation.PhysSubs
// / EachShardRange), so it is safe — and the default — for sharded runs
// with a JIT controller attached.
func (c *Catalog) ConfigureShardsPhysical(n int, keyCols map[PredID]int) {
	for _, p := range c.preds {
		col := keyCols[p.ID]
		if col < 0 || col >= p.Arity {
			col = 0
		}
		p.SetShardsPhysical(n, col)
	}
}

// TotalDerived returns the total number of tuples across all Derived
// relations — the headline "facts discovered" statistic.
func (c *Catalog) TotalDerived() int {
	n := 0
	for _, p := range c.preds {
		n += p.Derived.Len()
	}
	return n
}
