package storage

import (
	"testing"
	"testing/quick"
)

func TestTruncateToBasic(t *testing.T) {
	r := NewRelation("r", 2)
	r.BuildIndex(0)
	for i := Value(0); i < 10; i++ {
		r.Insert([]Value{i, i * 2})
	}
	r.TruncateTo(4)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Contains([]Value{5, 10}) {
		t.Fatal("truncated tuple still present")
	}
	if !r.Contains([]Value{3, 6}) {
		t.Fatal("surviving tuple lost")
	}
	// Index consistent after truncate.
	rows, ok := r.Probe(0, 3)
	if !ok || len(rows) != 1 || rows[0] != 3 {
		t.Fatalf("probe after truncate = %v, %v", rows, ok)
	}
	if rows, _ := r.Probe(0, 7); len(rows) != 0 {
		t.Fatal("index kept truncated rows")
	}
	// Reinsert a truncated tuple: must be new again.
	if !r.Insert([]Value{5, 10}) {
		t.Fatal("reinsert after truncate reported duplicate")
	}
}

func TestTruncateToNoops(t *testing.T) {
	r := NewRelation("r", 1)
	r.Insert([]Value{1})
	r.TruncateTo(5) // beyond length
	r.TruncateTo(1) // exact length
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.TruncateTo(-1)
	if r.Len() != 1 {
		t.Fatal("negative truncate mutated relation")
	}
	r.TruncateTo(0)
	if r.Len() != 0 {
		t.Fatal("truncate to zero failed")
	}
}

// Property: TruncateTo(n) after inserting a+b distinct tuples leaves exactly
// the first n, with dedup and index state identical to a fresh relation
// holding those n.
func TestTruncateEquivalentToFreshProperty(t *testing.T) {
	f := func(raw [][2]int8, keepRaw uint8) bool {
		// Deduplicate input preserving order.
		seen := map[[2]int8]bool{}
		var tuples [][2]int8
		for _, tp := range raw {
			if !seen[tp] {
				seen[tp] = true
				tuples = append(tuples, tp)
			}
		}
		if len(tuples) == 0 {
			return true
		}
		keep := int(keepRaw) % (len(tuples) + 1)

		full := NewRelation("full", 2)
		full.BuildIndex(1)
		for _, tp := range tuples {
			full.Insert([]Value{Value(tp[0]), Value(tp[1])})
		}
		full.TruncateTo(keep)

		fresh := NewRelation("fresh", 2)
		fresh.BuildIndex(1)
		for _, tp := range tuples[:keep] {
			fresh.Insert([]Value{Value(tp[0]), Value(tp[1])})
		}
		if !relEqual(full, fresh) {
			return false
		}
		for v := -128; v < 128; v++ {
			a, _ := full.Probe(1, Value(v))
			b, _ := fresh.Probe(1, Value(v))
			if len(a) != len(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
