package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Relation stores a set of fixed-arity tuples in insertion order with exact
// duplicate elimination and optional incremental single-column hash indexes.
//
// Rows live in a flat []Value arena so scans are sequential and
// allocation-light; tuple identity is tracked with byte-packed keys in a Go
// map. Indexes registered with BuildIndex are maintained incrementally on
// every insert, which is how Carac builds indexes "as each rule is defined
// ... incrementally before execution begins" (paper §IV, Index selection).
type Relation struct {
	name  string
	arity int

	arena []Value // len = count*arity
	// Dedup set: tuples of arity <= 2 pack losslessly into uint64 keys
	// (set64 — no per-insert allocation, the hot shape for graph and
	// points-to workloads), wider tuples into byte-string keys (set).
	// Exactly one of the two is active.
	set   map[string]struct{}
	set64 map[uint64]struct{}

	indexes    map[int]map[Value][]int32  // column -> value -> row ids
	composites map[string]*compositeIndex // column-set key -> index
	histograms map[int]*Histogram         // column -> value-distribution histogram
	scratch    []byte                     // reusable key buffer
	cscratch   []byte                     // composite-key buffer

	// muts counts content-changing operations (successful inserts, Clear,
	// TruncateTo) monotonically — it is never reset, so equal observations
	// guarantee unchanged content. The statistics subsystem aggregates it
	// into per-predicate drift counters.
	muts uint64

	// pinned marks the arena as referenced by an EpochRows view (PinRows):
	// the next destructive operation must flip to a fresh arena instead of
	// rewriting the pinned slab in place (epoch.go, copy-on-flip).
	pinned bool

	// Reference-count state (counts.go): enabled per relation by
	// EnableCounts, off everywhere else so the hot insert path pays one
	// branch. counts[i] is row i's assertion count; rowIdx64/rowIdxS map
	// each row's dedup key to its id (exactly one active, mirroring
	// set/set64). Counts travel with rows through every layout transition
	// and compaction.
	countsOn bool
	counts   []uint32
	rowIdx64 map[uint64]int32
	rowIdxS  map[string]int32

	// Shard partition state (see shard.go and physshard.go). shardCount == 0
	// means unpartitioned; otherwise the relation is partitioned into
	// shardCount buckets by ShardOf(row[shardCol], shardCount) in one of
	// three modes:
	//
	//   - view (PR 2): shardRows holds row-id bucket views over the shared
	//     arena and shardMuts the per-bucket monotone mutation counters;
	//   - split dedup: view, plus dedupShards routes the duplicate-
	//     elimination set per bucket so membership probes touch a bucket-
	//     local map (Derived under physical sharding);
	//   - physical: subs holds one fully independent sub-relation per bucket
	//     (its own arena, dedup set, scratch, indexes, and mutation counter),
	//     so two goroutines can insert into different buckets without
	//     sharing any state (DeltaNew/DeltaKnown under physical sharding —
	//     the parallel merge barrier).
	shardCount    int
	shardCol      int
	shardRows     [][]int32
	shardMuts     []uint64
	dedupShards   []map[string]struct{}
	dedup64Shards []map[uint64]struct{}
	subs          []*Relation
}

// NewRelation creates an empty relation with the given name and arity.
// Arity must be at least 1.
func NewRelation(name string, arity int) *Relation {
	if arity < 1 {
		panic(fmt.Sprintf("storage: relation %q needs arity >= 1, got %d", name, arity))
	}
	r := &Relation{
		name:    name,
		arity:   arity,
		scratch: make([]byte, 4*arity),
	}
	if arity <= 2 {
		r.set64 = make(map[uint64]struct{})
	} else {
		r.set = make(map[string]struct{})
	}
	return r
}

// key64 packs a 1- or 2-column tuple into its uint64 dedup key.
func key64(t []Value) uint64 {
	k := uint64(uint32(t[0]))
	if len(t) == 2 {
		k |= uint64(uint32(t[1])) << 32
	}
	return k
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples currently stored.
func (r *Relation) Len() int {
	if r.subs != nil {
		n := 0
		for _, s := range r.subs {
			n += len(s.arena)
		}
		return n / r.arity
	}
	return len(r.arena) / r.arity
}

// Empty reports whether the relation holds no tuples.
func (r *Relation) Empty() bool {
	if r.subs != nil {
		for _, s := range r.subs {
			if len(s.arena) > 0 {
				return false
			}
		}
		return true
	}
	return len(r.arena) == 0
}

func (r *Relation) pack(t []Value) []byte {
	b := r.scratch
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// Insert adds tuple t, returning true if it was not already present.
// It panics if len(t) differs from the relation arity.
func (r *Relation) Insert(t []Value) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: insert arity %d into %q/%d", len(t), r.name, r.arity))
	}
	if r.subs != nil {
		// Physical mode: the bucket sub-relation owns the row outright (its
		// own arena, dedup set, and counter — Mutations sums them back up).
		return r.subs[ShardOf(t[r.shardCol], r.shardCount)].Insert(t)
	}
	if r.set64 != nil || r.dedup64Shards != nil {
		k := key64(t)
		set := r.set64
		if r.dedup64Shards != nil {
			set = r.dedup64Shards[ShardOf(t[r.shardCol], r.shardCount)]
		}
		if _, dup := set[k]; dup {
			return false
		}
		set[k] = struct{}{}
	} else {
		key := r.pack(t)
		set := r.set
		if r.dedupShards != nil {
			set = r.dedupShards[ShardOf(t[r.shardCol], r.shardCount)]
		}
		if _, dup := set[string(key)]; dup {
			return false
		}
		set[string(key)] = struct{}{}
	}
	r.muts++
	row := int32(r.Len())
	r.arena = append(r.arena, t...)
	if r.countsOn {
		r.counts = append(r.counts, 1)
		r.countRecord(t, row)
	}
	if r.shardCount > 0 {
		r.shardInsert(t, row)
	}
	if r.histograms != nil {
		r.histInsert(t)
	}
	for col, idx := range r.indexes {
		v := t[col]
		idx[v] = append(idx[v], row)
	}
	if r.composites != nil {
		t = r.Row(row) // arena-backed view (t may be caller-owned)
		for _, ci := range r.composites {
			if cap(r.cscratch) < 4*len(ci.cols) {
				r.cscratch = make([]byte, 4*len(ci.cols))
			}
			b := r.cscratch[:4*len(ci.cols)]
			for i, c := range ci.cols {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(t[c]))
			}
			ci.m[string(b)] = append(ci.m[string(b)], row)
		}
	}
	return true
}

// Contains reports whether tuple t is present. Unlike the mutation paths it
// packs into a local buffer, not the shared scratch, so concurrent Contains
// calls on an otherwise-unmutated relation are safe — the parallel rule
// executor's workers probe frozen Derived relations concurrently.
func (r *Relation) Contains(t []Value) bool {
	if len(t) != r.arity {
		return false
	}
	if r.subs != nil {
		return r.subs[ShardOf(t[r.shardCol], r.shardCount)].Contains(t)
	}
	if r.set64 != nil || r.dedup64Shards != nil {
		set := r.set64
		if r.dedup64Shards != nil {
			// Split-dedup mode: membership probes touch only the tuple's
			// bucket map — the bucket-local set difference the parallel
			// workers' frozen-Derived probes ride on.
			set = r.dedup64Shards[ShardOf(t[r.shardCol], r.shardCount)]
		}
		_, ok := set[key64(t)]
		return ok
	}
	var stack [64]byte
	var b []byte
	if n := 4 * len(t); n <= len(stack) {
		b = stack[:n]
	} else {
		b = make([]byte, n)
	}
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	set := r.set
	if r.dedupShards != nil {
		set = r.dedupShards[ShardOf(t[r.shardCol], r.shardCount)]
	}
	_, ok := set[string(b)]
	return ok
}

// Row returns a view of row i (valid until the next Insert reallocates the
// arena; callers must not mutate it). In physical mode row ids are bucket-
// major and the lookup walks the bucket lengths — hot paths avoid it by
// iterating the sub-relations directly (PhysSubs).
func (r *Relation) Row(i int32) []Value {
	if r.subs != nil {
		n := int(i)
		for _, s := range r.subs {
			if sl := len(s.arena) / s.arity; n < sl {
				return s.Row(int32(n))
			} else {
				n -= sl
			}
		}
		panic(fmt.Sprintf("storage: row %d out of range for physical %q", i, r.name))
	}
	off := int(i) * r.arity
	return r.arena[off : off+r.arity : off+r.arity]
}

// Each calls f for every tuple until f returns false. Order is insertion
// order, except in physical mode where it is bucket-major (per-bucket
// insertion order) — still deterministic, since every tuple's bucket is a
// pure function of its shard-key column.
func (r *Relation) Each(f func(row []Value) bool) {
	if r.subs != nil {
		for _, s := range r.subs {
			for off := 0; off < len(s.arena); off += s.arity {
				if !f(s.arena[off : off+s.arity : off+s.arity]) {
					return
				}
			}
		}
		return
	}
	for off := 0; off < len(r.arena); off += r.arity {
		if !f(r.arena[off : off+r.arity : off+r.arity]) {
			return
		}
	}
}

// BuildIndex registers (and backfills) a hash index on column col. Indexes
// persist across Clear: the registration survives, the entries are dropped.
func (r *Relation) BuildIndex(col int) {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("storage: index column %d out of range for %q/%d", col, r.name, r.arity))
	}
	if r.indexes == nil {
		r.indexes = make(map[int]map[Value][]int32)
	}
	if _, ok := r.indexes[col]; ok {
		return
	}
	if r.subs != nil {
		// Physical mode: the registration lives on every bucket (row ids are
		// bucket-local); the parent keeps an empty entry so HasIndex and
		// IndexedColumns keep answering, and mode transitions re-register.
		for _, s := range r.subs {
			s.BuildIndex(col)
		}
		r.indexes[col] = make(map[Value][]int32)
		return
	}
	idx := make(map[Value][]int32)
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		v := r.Row(row)[col]
		idx[v] = append(idx[v], row)
	}
	r.indexes[col] = idx
}

// HasIndex reports whether an index is registered on column col.
func (r *Relation) HasIndex(col int) bool {
	_, ok := r.indexes[col]
	return ok
}

// IndexedColumns returns the registered index columns in ascending order.
func (r *Relation) IndexedColumns() []int {
	cols := make([]int, 0, len(r.indexes))
	for c := range r.indexes {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// Probe returns the row ids whose column col equals v, using the hash index.
// It returns (nil, false) if no index is registered on col — including on a
// physically sharded relation, whose row ids are bucket-local: executors
// take the PhysSubs path there (probing each bucket's own index), and a
// caller that does not degrades to a filtered scan, which stays correct.
func (r *Relation) Probe(col int, v Value) ([]int32, bool) {
	if r.subs != nil {
		return nil, false
	}
	idx, ok := r.indexes[col]
	if !ok {
		return nil, false
	}
	return idx[v], true
}

// Mutations returns the relation's monotone mutation counter: it advances on
// every successful Insert, Clear, and TruncateTo and is never reset, so two
// equal observations bracket a window in which the content did not change.
// In physical mode the counter is the parent's clear/truncate component plus
// the sum of the per-bucket insert counters — the exact value the logical
// layout would have reported for the same operation sequence, so drift
// totals are byte-identical with and without physical sharding (mode
// transitions preserve the total, see physshard.go).
func (r *Relation) Mutations() uint64 {
	if r.subs != nil {
		m := r.muts
		for _, s := range r.subs {
			m += s.muts
		}
		return m
	}
	return r.muts
}

// Clear removes all tuples but keeps index and shard registrations.
func (r *Relation) Clear() {
	if r.subs != nil {
		// One logical content change, regardless of how many buckets held
		// rows — mirrors the unsharded counter exactly (per-bucket counters
		// advance for the buckets that lost rows, like shardClear).
		cleared := false
		for s, sub := range r.subs {
			if len(sub.arena) > 0 {
				cleared = true
				r.shardMuts[s]++
			}
			sub.resetContents(false)
		}
		if cleared {
			r.muts++
		}
		return
	}
	if len(r.arena) > 0 {
		r.muts++
	}
	if r.shardCount > 0 {
		r.shardClear()
	}
	if !r.detachPinned(0) {
		r.arena = r.arena[:0]
	}
	// Replacing the maps is faster than deleting every key for large sets
	// and returns memory to the allocator between iterations.
	r.freshDedup(0)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	r.histReset()
	r.countClear(false)
}

// freshDedup replaces the active dedup structure with an empty one
// (returning memory to the allocator; resetContents clears in place).
func (r *Relation) freshDedup(sizeHint int) {
	switch {
	case r.dedup64Shards != nil:
		for s := range r.dedup64Shards {
			r.dedup64Shards[s] = make(map[uint64]struct{})
		}
	case r.dedupShards != nil:
		for s := range r.dedupShards {
			r.dedupShards[s] = make(map[string]struct{})
		}
	case r.set64 != nil:
		r.set64 = make(map[uint64]struct{}, sizeHint)
	default:
		r.set = make(map[string]struct{}, sizeHint)
	}
}

// dedupAdd records t in the active dedup structure without a duplicate
// check (rebuild paths whose source is already duplicate-free).
func (r *Relation) dedupAdd(t []Value) {
	if r.set64 != nil || r.dedup64Shards != nil {
		k := key64(t)
		if r.dedup64Shards != nil {
			r.dedup64Shards[ShardOf(t[r.shardCol], r.shardCount)][k] = struct{}{}
		} else {
			r.set64[k] = struct{}{}
		}
		return
	}
	key := r.pack(t)
	if r.dedupShards != nil {
		r.dedupShards[ShardOf(t[r.shardCol], r.shardCount)][string(key)] = struct{}{}
	} else {
		r.set[string(key)] = struct{}{}
	}
}

// ClearRetain removes all tuples like Clear but keeps the allocated
// capacity: dedup and index maps are emptied in place (runtime map clear)
// and the arena is truncated, not released. Steady-state consumers that
// refill a relation every iteration — the parallel executor's worker delta
// buffers — stop paying an allocation per iteration.
func (r *Relation) ClearRetain() {
	if r.subs != nil {
		cleared := false
		for s, sub := range r.subs {
			if len(sub.arena) > 0 {
				cleared = true
				r.shardMuts[s]++
			}
			sub.resetContents(true)
		}
		if cleared {
			r.muts++
		}
		return
	}
	if len(r.arena) > 0 {
		r.muts++
	}
	if r.shardCount > 0 {
		r.shardClear()
	}
	r.detachPinned(0) // retain-capacity contract yields to a pinned epoch view
	r.resetContents(true)
}

// TruncateTo discards all but the first n tuples, rebuilding the dedup set
// and indexes. It supports resetting a relation to its ground-fact baseline
// between repeated runs (ground facts are always inserted before any
// derivation, so they occupy the arena prefix).
func (r *Relation) TruncateTo(n int) {
	if r.subs != nil {
		// Physical mode does not track global insertion order, so a prefix
		// truncation is undefined. Only Derived is ever truncated (ground-
		// fact baseline rewind) and Derived is never physical, so reaching
		// this is an engine-wiring bug, not a data-dependent condition.
		panic(fmt.Sprintf("storage: TruncateTo on physically sharded %q", r.name))
	}
	if n < 0 || n >= r.Len() {
		return
	}
	r.muts++
	if !r.detachPinned(n * r.arity) {
		r.arena = r.arena[:n*r.arity]
	}
	if r.shardCount > 0 {
		r.shardRebuild()
	}
	r.freshDedup(n)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	r.histReset()
	if r.countsOn {
		r.counts = r.counts[:n]
		r.countIdxReset()
	}
	r.reindexRows()
}

// reindexRows rebuilds every derived per-row structure — dedup set, registered
// histograms, hash and composite indexes, and (when counting is enabled) the
// row-id map — from the current arena, which the caller has just emptied or
// replaced with fresh containers. Shared by the prefix rewind (TruncateTo) and
// the batch deletion compaction (DeleteRows); counts themselves are positional
// and compacted by the caller alongside the arena.
func (r *Relation) reindexRows() {
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		t := r.Row(row)
		r.dedupAdd(t)
		r.histInsert(t)
		if r.countsOn {
			r.countRecord(t, row)
		}
		for col, idx := range r.indexes {
			v := t[col]
			idx[v] = append(idx[v], row)
		}
		for _, ci := range r.composites {
			if cap(r.cscratch) < 4*len(ci.cols) {
				r.cscratch = make([]byte, 4*len(ci.cols))
			}
			b := r.cscratch[:4*len(ci.cols)]
			for i, c := range ci.cols {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(t[c]))
			}
			ci.m[string(b)] = append(ci.m[string(b)], row)
		}
	}
}

// InsertAll inserts every tuple of src into r, returning the number of
// tuples that were new. The relations must have equal arity.
func (r *Relation) InsertAll(src *Relation) int {
	if src.arity != r.arity {
		panic(fmt.Sprintf("storage: InsertAll arity mismatch %q/%d <- %q/%d", r.name, r.arity, src.name, src.arity))
	}
	added := 0
	src.Each(func(row []Value) bool {
		if r.Insert(row) {
			added++
		}
		return true
	})
	return added
}

// Snapshot returns a copy of all tuples, useful for tests and result output.
func (r *Relation) Snapshot() [][]Value {
	out := make([][]Value, 0, r.Len())
	r.Each(func(row []Value) bool {
		t := make([]Value, len(row))
		copy(t, row)
		out = append(out, t)
		return true
	})
	return out
}
