package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Relation stores a set of fixed-arity tuples in insertion order with exact
// duplicate elimination and optional incremental single-column hash indexes.
//
// Rows live in a flat []Value arena so scans are sequential and
// allocation-light; tuple identity is tracked with byte-packed keys in a Go
// map. Indexes registered with BuildIndex are maintained incrementally on
// every insert, which is how Carac builds indexes "as each rule is defined
// ... incrementally before execution begins" (paper §IV, Index selection).
type Relation struct {
	name  string
	arity int

	arena []Value             // len = count*arity
	set   map[string]struct{} // packed-key dedup set

	indexes    map[int]map[Value][]int32  // column -> value -> row ids
	composites map[string]*compositeIndex // column-set key -> index
	scratch    []byte                     // reusable key buffer
	cscratch   []byte                     // composite-key buffer

	// muts counts content-changing operations (successful inserts, Clear,
	// TruncateTo) monotonically — it is never reset, so equal observations
	// guarantee unchanged content. The statistics subsystem aggregates it
	// into per-predicate drift counters.
	muts uint64

	// Shard partition state (see shard.go). shardCount == 0 means
	// unpartitioned; otherwise shardRows holds row ids bucketed by
	// ShardOf(row[shardCol], shardCount) and shardMuts the per-bucket
	// monotone mutation counters.
	shardCount int
	shardCol   int
	shardRows  [][]int32
	shardMuts  []uint64
}

// NewRelation creates an empty relation with the given name and arity.
// Arity must be at least 1.
func NewRelation(name string, arity int) *Relation {
	if arity < 1 {
		panic(fmt.Sprintf("storage: relation %q needs arity >= 1, got %d", name, arity))
	}
	return &Relation{
		name:    name,
		arity:   arity,
		set:     make(map[string]struct{}),
		scratch: make([]byte, 4*arity),
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples currently stored.
func (r *Relation) Len() int { return len(r.arena) / r.arity }

// Empty reports whether the relation holds no tuples.
func (r *Relation) Empty() bool { return len(r.arena) == 0 }

func (r *Relation) pack(t []Value) []byte {
	b := r.scratch
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// Insert adds tuple t, returning true if it was not already present.
// It panics if len(t) differs from the relation arity.
func (r *Relation) Insert(t []Value) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: insert arity %d into %q/%d", len(t), r.name, r.arity))
	}
	key := r.pack(t)
	if _, dup := r.set[string(key)]; dup {
		return false
	}
	r.set[string(key)] = struct{}{}
	r.muts++
	row := int32(r.Len())
	r.arena = append(r.arena, t...)
	if r.shardCount > 0 {
		r.shardInsert(t, row)
	}
	for col, idx := range r.indexes {
		v := t[col]
		idx[v] = append(idx[v], row)
	}
	if r.composites != nil {
		t = r.Row(row) // arena-backed view (t may be caller-owned)
		for _, ci := range r.composites {
			if cap(r.cscratch) < 4*len(ci.cols) {
				r.cscratch = make([]byte, 4*len(ci.cols))
			}
			b := r.cscratch[:4*len(ci.cols)]
			for i, c := range ci.cols {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(t[c]))
			}
			ci.m[string(b)] = append(ci.m[string(b)], row)
		}
	}
	return true
}

// Contains reports whether tuple t is present. Unlike the mutation paths it
// packs into a local buffer, not the shared scratch, so concurrent Contains
// calls on an otherwise-unmutated relation are safe — the parallel rule
// executor's workers probe frozen Derived relations concurrently.
func (r *Relation) Contains(t []Value) bool {
	if len(t) != r.arity {
		return false
	}
	var stack [64]byte
	var b []byte
	if n := 4 * len(t); n <= len(stack) {
		b = stack[:n]
	} else {
		b = make([]byte, n)
	}
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	_, ok := r.set[string(b)]
	return ok
}

// Row returns a view of row i (valid until the next Insert reallocates the
// arena; callers must not mutate it).
func (r *Relation) Row(i int32) []Value {
	off := int(i) * r.arity
	return r.arena[off : off+r.arity : off+r.arity]
}

// Each calls f for every tuple in insertion order until f returns false.
func (r *Relation) Each(f func(row []Value) bool) {
	for off := 0; off < len(r.arena); off += r.arity {
		if !f(r.arena[off : off+r.arity : off+r.arity]) {
			return
		}
	}
}

// BuildIndex registers (and backfills) a hash index on column col. Indexes
// persist across Clear: the registration survives, the entries are dropped.
func (r *Relation) BuildIndex(col int) {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("storage: index column %d out of range for %q/%d", col, r.name, r.arity))
	}
	if r.indexes == nil {
		r.indexes = make(map[int]map[Value][]int32)
	}
	if _, ok := r.indexes[col]; ok {
		return
	}
	idx := make(map[Value][]int32)
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		v := r.Row(row)[col]
		idx[v] = append(idx[v], row)
	}
	r.indexes[col] = idx
}

// HasIndex reports whether an index is registered on column col.
func (r *Relation) HasIndex(col int) bool {
	_, ok := r.indexes[col]
	return ok
}

// IndexedColumns returns the registered index columns in ascending order.
func (r *Relation) IndexedColumns() []int {
	cols := make([]int, 0, len(r.indexes))
	for c := range r.indexes {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// Probe returns the row ids whose column col equals v, using the hash index.
// It returns (nil, false) if no index is registered on col.
func (r *Relation) Probe(col int, v Value) ([]int32, bool) {
	idx, ok := r.indexes[col]
	if !ok {
		return nil, false
	}
	return idx[v], true
}

// Mutations returns the relation's monotone mutation counter: it advances on
// every successful Insert, Clear, and TruncateTo and is never reset, so two
// equal observations bracket a window in which the content did not change.
func (r *Relation) Mutations() uint64 { return r.muts }

// Clear removes all tuples but keeps index and shard registrations.
func (r *Relation) Clear() {
	if len(r.arena) > 0 {
		r.muts++
	}
	if r.shardCount > 0 {
		r.shardClear()
	}
	r.arena = r.arena[:0]
	// Replacing the map is faster than deleting every key for large sets and
	// returns memory to the allocator between iterations.
	r.set = make(map[string]struct{})
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
}

// TruncateTo discards all but the first n tuples, rebuilding the dedup set
// and indexes. It supports resetting a relation to its ground-fact baseline
// between repeated runs (ground facts are always inserted before any
// derivation, so they occupy the arena prefix).
func (r *Relation) TruncateTo(n int) {
	if n < 0 || n >= r.Len() {
		return
	}
	r.muts++
	r.arena = r.arena[:n*r.arity]
	if r.shardCount > 0 {
		r.shardRebuild()
	}
	r.set = make(map[string]struct{}, n)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	for row := int32(0); row < int32(n); row++ {
		t := r.Row(row)
		r.set[string(r.pack(t))] = struct{}{}
		for col, idx := range r.indexes {
			v := t[col]
			idx[v] = append(idx[v], row)
		}
		for _, ci := range r.composites {
			if cap(r.cscratch) < 4*len(ci.cols) {
				r.cscratch = make([]byte, 4*len(ci.cols))
			}
			b := r.cscratch[:4*len(ci.cols)]
			for i, c := range ci.cols {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(t[c]))
			}
			ci.m[string(b)] = append(ci.m[string(b)], row)
		}
	}
}

// InsertAll inserts every tuple of src into r, returning the number of
// tuples that were new. The relations must have equal arity.
func (r *Relation) InsertAll(src *Relation) int {
	if src.arity != r.arity {
		panic(fmt.Sprintf("storage: InsertAll arity mismatch %q/%d <- %q/%d", r.name, r.arity, src.name, src.arity))
	}
	added := 0
	src.Each(func(row []Value) bool {
		if r.Insert(row) {
			added++
		}
		return true
	})
	return added
}

// Snapshot returns a copy of all tuples, useful for tests and result output.
func (r *Relation) Snapshot() [][]Value {
	out := make([][]Value, 0, r.Len())
	r.Each(func(row []Value) bool {
		t := make([]Value, len(row))
		copy(t, row)
		out = append(out, t)
		return true
	})
	return out
}
