package storage

// This file implements per-row reference counts — the storage substrate of
// counting-based incremental view maintenance (core.Apply / Server.IngestTx).
// A count is a base-fact assertion multiplicity: inserting a tuple that is
// already present through IncRef bumps its count instead of being dropped as
// a duplicate, and a retraction only becomes a physical delete when DecRef
// reaches zero. Derived (non-ground) rows carry count 1 — the engine does not
// count derivations (exact derivation counting is incompatible with the
// semi-naive duplicate elimination every executor relies on); recursive
// retraction instead goes through the DRed over-delete/rederive driver in
// internal/interp, which only needs ground counts to decide which base facts
// actually disappeared.
//
// Counting is opt-in per relation (EnableCounts) so every existing path pays
// at most one branch. Like indexes and histograms, the registration survives
// Clear and every shard-layout transition; counts travel with rows through
// the physical split and dissolve (physshard.go) and through compactions
// (TruncateTo, DeleteRows). Count maintenance never touches a mutation
// counter — IncRef on a present row changes no relation content.

// EnableCounts switches the relation to counted mode, backfilling every
// current row with count 1 and building the row-id map. Idempotent. On a
// physically sharded relation the counts live per bucket sub-relation,
// mirroring indexes and histograms.
func (r *Relation) EnableCounts() {
	if r.countsOn {
		return
	}
	r.countsOn = true
	if r.subs != nil {
		for _, s := range r.subs {
			s.EnableCounts()
		}
		r.countIdxReset()
		return
	}
	n := r.Len()
	r.counts = make([]uint32, n)
	for i := range r.counts {
		r.counts[i] = 1
	}
	r.countIdxReset()
	for row := int32(0); row < int32(n); row++ {
		r.countRecord(r.Row(row), row)
	}
}

// CountsEnabled reports whether the relation is in counted mode.
func (r *Relation) CountsEnabled() bool { return r.countsOn }

// Count returns tuple t's assertion count, or 0 when t is absent (or
// counting is off).
func (r *Relation) Count(t []Value) uint32 {
	if !r.countsOn {
		return 0
	}
	if r.subs != nil {
		return r.subs[ShardOf(t[r.shardCol], r.shardCount)].Count(t)
	}
	row, ok := r.rowLookup(t)
	if !ok {
		return 0
	}
	return r.counts[row]
}

// IncRef asserts tuple t once: a present row's count is bumped (returning
// false — no content change), an absent tuple is inserted with count 1
// (returning true, exactly like Insert). Requires counted mode.
func (r *Relation) IncRef(t []Value) bool {
	if r.subs != nil {
		return r.subs[ShardOf(t[r.shardCol], r.shardCount)].IncRef(t)
	}
	if row, ok := r.rowLookup(t); ok {
		r.counts[row]++
		return false
	}
	return r.Insert(t)
}

// DecRef retracts one assertion of tuple t, returning the remaining count
// and whether t was present. A count that reaches zero leaves the row in
// place — the caller batches zero-count rows into one DeleteRows compaction —
// and saturates there (a zombie row re-asserted before the compaction goes
// back to count 1 via IncRef).
func (r *Relation) DecRef(t []Value) (remaining uint32, ok bool) {
	if r.subs != nil {
		return r.subs[ShardOf(t[r.shardCol], r.shardCount)].DecRef(t)
	}
	row, found := r.rowLookup(t)
	if !found {
		return 0, false
	}
	if r.counts[row] > 0 {
		r.counts[row]--
	}
	return r.counts[row], true
}

// RowOf returns tuple t's row id in counted mode. Row ids are global
// insertion positions, which physical sharding does not track — it reports
// ok=false there (counted callers address ground prefixes, and ground
// relations are never physical).
func (r *Relation) RowOf(t []Value) (int32, bool) {
	if !r.countsOn || r.subs != nil {
		return -1, false
	}
	return r.rowLookup(t)
}

// rowLookup resolves t to its row id through the active row-id map.
// Mutation-path discipline: uses the shared scratch buffer, so it must not
// race an Insert (the single-writer contract every mutation already has).
func (r *Relation) rowLookup(t []Value) (int32, bool) {
	if r.rowIdx64 != nil {
		row, ok := r.rowIdx64[key64(t)]
		return row, ok
	}
	if r.rowIdxS != nil {
		row, ok := r.rowIdxS[string(r.pack(t))]
		return row, ok
	}
	return -1, false
}

// countRecord maps row's dedup key to its id (called on append and rebuild;
// the counts slice itself is maintained positionally by the caller).
func (r *Relation) countRecord(t []Value, row int32) {
	if r.rowIdx64 != nil {
		r.rowIdx64[key64(t)] = row
		return
	}
	r.rowIdxS[string(r.pack(t))] = row
}

// countIdxReset replaces the row-id map with an empty one of the layout's
// key shape (uint64 keys for arity <= 2, packed strings otherwise).
func (r *Relation) countIdxReset() {
	if r.arity <= 2 {
		r.rowIdx64, r.rowIdxS = make(map[uint64]int32), nil
		return
	}
	r.rowIdxS, r.rowIdx64 = make(map[string]int32), nil
}

// countClear empties the count state on the relation-clearing paths. retain
// keeps allocated capacity (in-place map clear), mirroring resetContents.
// No-op when counting is off.
func (r *Relation) countClear(retain bool) {
	if !r.countsOn {
		return
	}
	r.counts = r.counts[:0]
	if retain {
		clear(r.rowIdx64)
		clear(r.rowIdxS)
		return
	}
	r.countIdxReset()
}
