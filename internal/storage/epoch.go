package storage

import "sort"

// This file is the storage half of the serving epoch protocol (core.Serve):
// an epoch pins an immutable view of every relation's ground rows so
// concurrent reader sessions can keep iterating it while the single writer
// ingests the next fact batch. The contract has two sides:
//
//   - PinRows hands out a capacity-clipped view of the arena and marks the
//     relation pinned. Appends remain legal while pinned — they touch only
//     memory beyond the view (or a freshly allocated slab), never the rows a
//     reader can see.
//   - The destructive operations (TruncateTo, Clear, ClearRetain) flip to a
//     fresh arena when the relation is pinned ("copy-on-flip") instead of
//     rewriting the old slab in place: the baseline rewind between fact
//     batches re-appends over the truncated region, which would otherwise
//     overwrite rows a pinned epoch is still serving.
//
// The epoch counter itself lives on the Catalog: AdvanceEpoch marks every
// boundary at which a consistent snapshot (rows plus statistics) is taken —
// each Run of a Program, and each published epoch of a serving Program.

// EpochRows is an immutable row snapshot of one relation, taken at an epoch
// boundary by Relation.PinRows. It stays valid — and byte-identical — for
// the lifetime of the epoch regardless of later inserts, truncations, or
// clears on the source relation.
//
// Single-slab layouts pin one arena; the physical layout pins one slab per
// non-empty bucket (arenas/starts), so the view is zero-copy in every mode.
type EpochRows struct {
	arena  []Value
	arenas [][]Value // physical layout: one capacity-clipped slab per non-empty bucket
	starts []int     // physical layout: starts[i] = first row index of arenas[i]; last entry = Len()
	arity  int
}

// Arity returns the tuple width.
func (e EpochRows) Arity() int { return e.arity }

// Len returns the number of pinned tuples.
func (e EpochRows) Len() int {
	if e.arity == 0 {
		return 0
	}
	if e.arenas != nil {
		return e.starts[len(e.starts)-1]
	}
	return len(e.arena) / e.arity
}

// Row returns a read-only view of row i. Callers must not mutate it.
func (e EpochRows) Row(i int) []Value {
	if e.arenas != nil {
		// First bucket whose start exceeds i, minus one — bucket row counts
		// are cumulative in starts.
		b := sort.SearchInts(e.starts, i+1) - 1
		off := (i - e.starts[b]) * e.arity
		return e.arenas[b][off : off+e.arity : off+e.arity]
	}
	off := i * e.arity
	return e.arena[off : off+e.arity : off+e.arity]
}

// Each calls f for every pinned tuple until f returns false.
func (e EpochRows) Each(f func(row []Value) bool) {
	if e.arenas != nil {
		for _, a := range e.arenas {
			for off := 0; off+e.arity <= len(a); off += e.arity {
				if !f(a[off : off+e.arity : off+e.arity]) {
					return
				}
			}
		}
		return
	}
	for off := 0; off+e.arity <= len(e.arena); off += e.arity {
		if !f(e.arena[off : off+e.arity : off+e.arity]) {
			return
		}
	}
}

// PinRows captures the relation's current rows as an immutable EpochRows
// view and marks the relation pinned, so the next destructive operation
// flips to a fresh arena instead of rewriting the slab the view references.
//
// The view is zero-copy in every layout. Single-slab modes (flat, view-
// partitioned, split-dedup — Derived in every configuration) hand out one
// capacity-clipped arena view. The physical mode pins each non-empty
// bucket's slab directly and marks the sub-relations pinned, so the bucket
// clear paths (resetContents) flip to fresh slabs under the same
// copy-on-flip discipline as the parent-level destructive operations.
func (r *Relation) PinRows() EpochRows {
	if r.subs != nil {
		arenas := make([][]Value, 0, len(r.subs))
		starts := make([]int, 1, len(r.subs)+1)
		for _, sub := range r.subs {
			n := len(sub.arena)
			if n == 0 {
				continue
			}
			sub.pinned = true
			arenas = append(arenas, sub.arena[:n:n])
			starts = append(starts, starts[len(starts)-1]+n/r.arity)
		}
		return EpochRows{arenas: arenas, starts: starts, arity: r.arity}
	}
	r.pinned = true
	return EpochRows{arena: r.arena[:len(r.arena):len(r.arena)], arity: r.arity}
}

// Pinned reports whether an epoch view currently pins the arena (cleared by
// the next destructive operation's copy-on-flip).
func (r *Relation) Pinned() bool { return r.pinned }

// detachPinned implements copy-on-flip for the destructive operations: when
// an epoch view pins the arena, move the retained prefix (keepVals values)
// onto a fresh slab and leave the old one to the epoch's readers. Reports
// whether a flip happened — if not, the caller performs its usual in-place
// truncation.
func (r *Relation) detachPinned(keepVals int) bool {
	if !r.pinned {
		return false
	}
	r.pinned = false
	fresh := make([]Value, keepVals)
	copy(fresh, r.arena[:keepVals])
	r.arena = fresh
	return true
}

// HistogramColumns returns the registered histogram columns in ascending
// order (mirroring IndexedColumns; used by statistics snapshots).
func (r *Relation) HistogramColumns() []int {
	cols := make([]int, 0, len(r.histograms))
	for c := range r.histograms {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// Epoch returns the catalog's current epoch generation. Epoch 0 is the
// pre-first-boundary state; every Run and every published serving epoch
// advances it.
func (c *Catalog) Epoch() uint64 { return c.epoch }

// AdvanceEpoch marks an epoch boundary — the instant at which a consistent
// snapshot of rows and statistics may be taken — and returns the new
// generation. Callers (core.Program) must hold the single-writer lock.
func (c *Catalog) AdvanceEpoch() uint64 {
	c.epoch++
	return c.epoch
}
