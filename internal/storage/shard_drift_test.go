package storage

import "testing"

// TestShardDriftAggregationRegression pins the satellite invariant of the
// sharded catalog: per-shard drift counters are a refinement of the
// predicate-level counter, never a perturbation of it. The plan cache's
// freshness policy compares PredicateDB.DriftCounter totals, so a sharded
// and an unsharded run of the identical mutation sequence must observe the
// same totals at every step — otherwise sharding would silently change
// which cached plans survive.
//
// The insert sequence is deliberately skewed: most keys hash to one bucket
// (a hub node fanning out), the shape that exposed aggregation bugs in
// incremental re-partitioning systems.
func TestShardDriftAggregationRegression(t *testing.T) {
	mkPred := func(shards int, physical bool) *PredicateDB {
		c := NewCatalog()
		id := c.Declare("p", 2)
		pd := c.Pred(id)
		if shards > 1 {
			if physical {
				pd.SetShardsPhysical(shards, 0)
			} else {
				pd.SetShards(shards, 0)
			}
		}
		return pd
	}
	flat := mkPred(0, false)
	sharded := mkPred(4, false)
	physical := mkPred(4, true)
	skewKey := Value(7)
	hot := ShardOf(skewKey, 4)

	step := 0
	check := func() {
		t.Helper()
		step++
		if f, s := flat.DriftCounter(), sharded.DriftCounter(); f != s {
			t.Fatalf("step %d: sharded drift total %d != unsharded %d", step, s, f)
		}
		if f, p := flat.DriftCounter(), physical.DriftCounter(); f != p {
			t.Fatalf("step %d: physical drift total %d != unsharded %d", step, p, f)
		}
		var sum uint64
		for b := 0; b < 4; b++ {
			sum += sharded.ShardDriftCounter(b)
		}
		// Each bucket counter embeds the shared swap count, so the sum over
		// buckets is >= the predicate counter minus relation-level-only
		// bumps; the invariant that matters is per-bucket monotonicity,
		// checked below against prevBuckets.
		_ = sum
	}
	prevBuckets := make([]uint64, 4)
	checkMonotone := func() {
		t.Helper()
		for b := 0; b < 4; b++ {
			cur := sharded.ShardDriftCounter(b)
			if cur < prevBuckets[b] {
				t.Fatalf("step %d: bucket %d drift counter moved backwards (%d -> %d)", step, b, prevBuckets[b], cur)
			}
			prevBuckets[b] = cur
		}
	}

	prevPhysBuckets := make([]uint64, 4)
	checkPhysMonotone := func() {
		t.Helper()
		for b := 0; b < 4; b++ {
			cur := physical.ShardDriftCounter(b)
			if cur < prevPhysBuckets[b] {
				t.Fatalf("step %d: physical bucket %d drift counter moved backwards (%d -> %d)", step, b, prevPhysBuckets[b], cur)
			}
			prevPhysBuckets[b] = cur
		}
	}

	apply := func(f func(*PredicateDB)) {
		f(flat)
		f(sharded)
		f(physical)
		check()
		checkMonotone()
		checkPhysMonotone()
	}

	// Forced skew: 20 tuples on one hub key, 4 spread keys.
	for i := 0; i < 20; i++ {
		i := i
		apply(func(p *PredicateDB) { p.AddFact([]Value{skewKey, Value(i)}) })
	}
	for i := 0; i < 4; i++ {
		i := i
		apply(func(p *PredicateDB) { p.AddFact([]Value{Value(100 + i), Value(i)}) })
	}
	hotDrift := sharded.ShardDriftCounter(hot)
	var coldMax uint64
	for b := 0; b < 4; b++ {
		if b != hot && sharded.ShardDriftCounter(b) > coldMax {
			coldMax = sharded.ShardDriftCounter(b)
		}
	}
	if hotDrift <= coldMax {
		t.Fatalf("skewed bucket %d drift %d not above cold buckets' max %d — skew not visible per shard", hot, hotDrift, coldMax)
	}

	// Two fixpoint-style delta rotations with fresh derivations in between.
	apply(func(p *PredicateDB) { p.SeedDeltas() })
	apply(func(p *PredicateDB) { p.DeltaNew.Insert([]Value{skewKey, 500}) })
	apply(func(p *PredicateDB) { p.SwapClear() })
	apply(func(p *PredicateDB) { p.DeltaNew.Insert([]Value{Value(101), 501}) })
	apply(func(p *PredicateDB) { p.SwapClear() })

	// Incremental-batch rewind: truncate to the ground baseline and reload.
	apply(func(p *PredicateDB) { p.Derived.TruncateTo(24) })
	apply(func(p *PredicateDB) { p.DeltaKnown.Clear(); p.DeltaNew.Clear() })
	for i := 0; i < 6; i++ {
		i := i
		apply(func(p *PredicateDB) { p.AddFact([]Value{skewKey, Value(600 + i)}) })
	}

	// Regression pin: the exact total for this sequence. If this moves, the
	// drift accounting the plan cache depends on changed — that is an API
	// break for cached-plan freshness, not a cosmetic diff.
	const wantTotal = 64
	if got := flat.DriftCounter(); got != wantTotal {
		t.Fatalf("unsharded drift total = %d, pinned %d", got, wantTotal)
	}
	if got := sharded.DriftCounter(); got != wantTotal {
		t.Fatalf("sharded drift total = %d, pinned %d", got, wantTotal)
	}
	if got := physical.DriftCounter(); got != wantTotal {
		t.Fatalf("physical drift total = %d, pinned %d", got, wantTotal)
	}
}
