package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// snapshotSet canonicalizes a relation's content for order-insensitive
// comparison (physical mode iterates bucket-major, not insertion order).
func snapshotSet(r *Relation) map[string]bool {
	out := make(map[string]bool, r.Len())
	r.Each(func(row []Value) bool {
		out[fmt.Sprint(row)] = true
		return true
	})
	return out
}

func sameContent(t *testing.T, step string, a, b *Relation) {
	t.Helper()
	sa, sb := snapshotSet(a), snapshotSet(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d tuples", step, len(sa), len(sb))
	}
	for k := range sa {
		if !sb[k] {
			t.Fatalf("%s: tuple %s missing", step, k)
		}
	}
}

// TestPhysicalShardEquivalence drives an identical randomized operation
// sequence through a flat, a view-sharded, a split-dedup, and a physically
// sharded relation: content, Len, Contains answers, and — the invariant the
// plan cache's freshness policy rides on — the relation-level mutation
// counter must agree at every step.
func TestPhysicalShardEquivalence(t *testing.T) {
	flat := NewRelation("p", 2)
	view := NewRelation("p", 2)
	view.SetShardKey(4, 0)
	split := NewRelation("p", 2)
	split.SetShardKeySplit(4, 0)
	phys := NewRelation("p", 2)
	phys.SetShardKeyPhysical(4, 0)
	for _, r := range []*Relation{flat, view, split, phys} {
		r.BuildIndex(0)
		r.BuildIndex(1)
	}
	all := []*Relation{flat, view, split, phys}

	rng := rand.New(rand.NewSource(99))
	check := func(step string) {
		t.Helper()
		for _, r := range all[1:] {
			sameContent(t, step, flat, r)
			if r.Mutations() != flat.Mutations() {
				t.Fatalf("%s: mutation counter %d, flat %d", step, r.Mutations(), flat.Mutations())
			}
			if r.Len() != flat.Len() {
				t.Fatalf("%s: len %d, flat %d", step, r.Len(), flat.Len())
			}
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			tpl := []Value{Value(rng.Intn(40)), Value(rng.Intn(40))}
			want := flat.Insert(tpl)
			for _, r := range all[1:] {
				if got := r.Insert(tpl); got != want {
					t.Fatalf("insert %v: new=%v, flat=%v", tpl, got, want)
				}
			}
			probe := []Value{Value(rng.Intn(50)), Value(rng.Intn(50))}
			want2 := flat.Contains(probe)
			for _, r := range all[1:] {
				if got := r.Contains(probe); got != want2 {
					t.Fatalf("contains %v: %v, flat %v", probe, got, want2)
				}
			}
		}
		check(fmt.Sprintf("round %d inserts", round))
		// Per-bucket membership: every bucket's tuples re-Contains and the
		// bucket lengths cover the relation exactly.
		n := 0
		for s := 0; s < 4; s++ {
			n += phys.ShardLen(s)
			phys.EachShard(s, func(row []Value) bool {
				if ShardOf(row[0], 4) != s {
					t.Fatalf("bucket %d holds misrouted row %v", s, row)
				}
				return true
			})
		}
		if n != flat.Len() {
			t.Fatalf("bucket lengths sum to %d, want %d", n, flat.Len())
		}
		if round < 2 {
			for _, r := range all {
				r.Clear()
			}
			check(fmt.Sprintf("round %d clear", round))
		}
	}
}

// TestPhysicalShardModeTransitions cycles one relation through every
// partition mode with content loaded: content and the mutation total must
// survive each hop exactly, and per-bucket counters must never move
// backwards while a partition is registered.
func TestPhysicalShardModeTransitions(t *testing.T) {
	r := NewRelation("t", 2)
	r.BuildIndex(0)
	oracle := NewRelation("t", 2)
	oracle.BuildIndex(0)
	rng := rand.New(rand.NewSource(7))
	insert := func(n int) {
		for i := 0; i < n; i++ {
			tpl := []Value{Value(rng.Intn(30)), Value(rng.Intn(30))}
			a, b := r.Insert(tpl), oracle.Insert(tpl)
			if a != b {
				t.Fatalf("insert divergence on %v", tpl)
			}
		}
	}
	prevBuckets := map[int]uint64{}
	checkBuckets := func(step string) {
		t.Helper()
		shards, _ := r.ShardConfig()
		for s := 0; s < shards; s++ {
			cur := r.ShardMutations(s)
			if prev, ok := prevBuckets[s]; ok && cur < prev {
				t.Fatalf("%s: bucket %d counter %d < %d", step, s, cur, prev)
			}
			prevBuckets[s] = cur
		}
	}
	steps := []struct {
		name  string
		apply func()
	}{
		{"view4", func() { r.SetShardKey(4, 0) }},
		{"phys4", func() { r.SetShardKeyPhysical(4, 0) }},
		{"phys8", func() { r.SetShardKeyPhysical(8, 0) }},
		{"split4", func() { r.SetShardKeySplit(4, 0) }},
		{"phys4b", func() { r.SetShardKeyPhysical(4, 0) }},
		{"view8", func() { r.SetShardKey(8, 0) }},
		{"off", func() { r.SetShardKey(0, 0) }},
		{"phys4c", func() { r.SetShardKeyPhysical(4, 0) }},
	}
	insert(50)
	for _, st := range steps {
		before := r.Mutations()
		st.apply()
		if got := r.Mutations(); got != before {
			t.Fatalf("%s: transition moved the counter %d -> %d", st.name, before, got)
		}
		if got, want := r.Mutations(), oracle.Mutations(); got != want {
			t.Fatalf("%s: counter %d, oracle %d", st.name, got, want)
		}
		sameContent(t, st.name, oracle, r)
		insert(25)
		sameContent(t, st.name+"+inserts", oracle, r)
		if got, want := r.Mutations(), oracle.Mutations(); got != want {
			t.Fatalf("%s+inserts: counter %d, oracle %d", st.name, got, want)
		}
		checkBuckets(st.name)
		// Probe equivalence through whatever index surface the mode offers.
		for v := Value(0); v < 30; v++ {
			want := 0
			oracle.Each(func(row []Value) bool {
				if row[0] == v {
					want++
				}
				return true
			})
			got := 0
			if subs := r.PhysSubs(); subs != nil {
				for _, sub := range subs {
					rows, ok := sub.Probe(0, v)
					if !ok {
						t.Fatalf("%s: sub lost index", st.name)
					}
					got += len(rows)
				}
			} else if rows, ok := r.Probe(0, v); ok {
				got = len(rows)
			} else {
				t.Fatalf("%s: index lost", st.name)
			}
			if got != want {
				t.Fatalf("%s: probe(%d) = %d rows, want %d", st.name, v, got, want)
			}
		}
	}
}

// TestPhysicalShardConcurrentInsert hammers the property the parallel merge
// barrier is built on: goroutines inserting into disjoint buckets of one
// physically sharded relation share no state. Run under -race (the CI
// storage test job does), with overlapping tuple streams so per-bucket
// dedup is exercised concurrently too.
func TestPhysicalShardConcurrentInsert(t *testing.T) {
	const shards = 8
	for round := 0; round < 5; round++ {
		r := NewRelation("c", 2)
		r.BuildIndex(0)
		r.SetShardKeyPhysical(shards, 0)
		// Pre-route tuples: every goroutine owns exactly one bucket.
		routed := make([][][]Value, shards)
		total := map[string]bool{}
		for i := 0; i < 4000; i++ {
			tpl := []Value{Value(i % 97), Value(i % 53)}
			s := ShardOf(tpl[0], shards)
			routed[s] = append(routed[s], tpl)
			total[fmt.Sprint(tpl)] = true
		}
		var wg sync.WaitGroup
		counts := make([]int, shards)
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for _, tpl := range routed[s] {
					if r.ShardInsert(s, tpl) {
						counts[s]++
					}
				}
				// Double-pass: every re-insert must dedup.
				for _, tpl := range routed[s] {
					if r.ShardInsert(s, tpl) {
						t.Errorf("bucket %d accepted duplicate %v", s, tpl)
					}
				}
			}(s)
		}
		wg.Wait()
		if r.Len() != len(total) {
			t.Fatalf("round %d: %d tuples, want %d", round, r.Len(), len(total))
		}
		sum := 0
		for s, c := range counts {
			if c != r.ShardLen(s) {
				t.Fatalf("round %d: bucket %d count %d, ShardLen %d", round, s, c, r.ShardLen(s))
			}
			sum += c
		}
		if sum != len(total) {
			t.Fatalf("round %d: per-bucket counts sum to %d, want %d", round, sum, len(total))
		}
		for k := range total {
			var a, b Value
			fmt.Sscanf(k, "[%d %d]", &a, &b)
			if !r.Contains([]Value{a, b}) {
				t.Fatalf("round %d: tuple %s missing after concurrent insert", round, k)
			}
		}
	}
}

// TestPhysicalSubIdentityStable pins the identity guarantee compiled units
// lean on (see PhysSubs): within one physical configuration, the per-bucket
// sub-relations are emptied or kept in place — never reallocated — by
// Clear, ClearRetain, the predicate-level SwapClear rotation, and the
// idempotent re-registration every Run performs; only an actually changed
// layout rebuilds them.
func TestPhysicalSubIdentityStable(t *testing.T) {
	p := newPredicateDB(0, "p", 2)
	p.SetShardsPhysical(4, 0)
	for i := Value(0); i < 32; i++ {
		p.DeltaNew.Insert([]Value{i, i * 3})
	}
	snap := func(r *Relation) []*Relation {
		return append([]*Relation(nil), r.PhysSubs()...)
	}
	same := func(a, b []*Relation) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	newSubs := snap(p.DeltaNew)
	knownSubs := snap(p.DeltaKnown)
	if len(newSubs) != 4 {
		t.Fatalf("expected 4 sub-relations, got %d", len(newSubs))
	}

	p.DeltaNew.ClearRetain()
	if !same(snap(p.DeltaNew), newSubs) {
		t.Fatal("ClearRetain reallocated sub-relations")
	}
	p.DeltaNew.Clear()
	if !same(snap(p.DeltaNew), newSubs) {
		t.Fatal("Clear reallocated sub-relations")
	}

	// SwapClear exchanges the relation structs; each struct keeps its subs.
	p.SwapClear()
	if !same(snap(p.DeltaKnown), newSubs) || !same(snap(p.DeltaNew), knownSubs) {
		t.Fatal("SwapClear did not carry sub-relations with the structs")
	}

	// Idempotent re-registration (the per-Run ConfigureShardsPhysical path).
	p.SetShardsPhysical(4, 0)
	if !same(snap(p.DeltaKnown), newSubs) || !same(snap(p.DeltaNew), knownSubs) {
		t.Fatal("idempotent re-registration rebuilt sub-relations")
	}

	// A genuinely changed layout must rebuild.
	p.SetShardsPhysical(8, 0)
	if got := p.DeltaNew.PhysSubs(); len(got) != 8 {
		t.Fatalf("re-partition to 8 buckets yielded %d subs", len(got))
	}
	if same(snap(p.DeltaKnown)[:4], newSubs) {
		t.Fatal("changed layout served the old sub-relations")
	}
}
