package storage

import (
	"testing"
	"testing/quick"
)

func TestPredicateDBSwapClearMergesIntoDerived(t *testing.T) {
	c := NewCatalog()
	id := c.Declare("tc", 2)
	p := c.Pred(id)

	p.DeltaNew.Insert([]Value{1, 2})
	p.DeltaNew.Insert([]Value{3, 4})
	p.SwapClear()

	if !p.Derived.Contains([]Value{1, 2}) || !p.Derived.Contains([]Value{3, 4}) {
		t.Fatal("SwapClear did not merge DeltaNew into Derived")
	}
	if p.DeltaKnown.Len() != 2 {
		t.Fatalf("DeltaKnown should hold the previous iteration's facts, len=%d", p.DeltaKnown.Len())
	}
	if p.DeltaNew.Len() != 0 {
		t.Fatal("DeltaNew should be cleared after swap")
	}
}

func TestPredicateDBSwapClearTwice(t *testing.T) {
	c := NewCatalog()
	p := c.Pred(c.Declare("r", 1))
	p.DeltaNew.Insert([]Value{1})
	p.SwapClear()
	p.DeltaNew.Insert([]Value{2})
	p.SwapClear()
	if p.Derived.Len() != 2 {
		t.Fatalf("Derived = %d, want 2", p.Derived.Len())
	}
	if p.DeltaKnown.Len() != 1 || !p.DeltaKnown.Contains([]Value{2}) {
		t.Fatal("second swap lost iteration isolation")
	}
	p.SwapClear()
	if p.DeltaKnown.Len() != 0 {
		t.Fatal("empty iteration should leave empty DeltaKnown (fixpoint signal)")
	}
}

func TestPredicateDBSeedDeltas(t *testing.T) {
	c := NewCatalog()
	p := c.Pred(c.Declare("edge", 2))
	p.AddFact([]Value{1, 2})
	p.AddFact([]Value{2, 3})
	p.SeedDeltas()
	if p.DeltaKnown.Len() != 2 {
		t.Fatalf("SeedDeltas copied %d facts, want 2", p.DeltaKnown.Len())
	}
}

func TestPredicateDBIndexesOnAllThree(t *testing.T) {
	c := NewCatalog()
	p := c.Pred(c.Declare("r", 2))
	p.BuildIndexes([]int{0})
	p.Derived.Insert([]Value{1, 2})
	p.DeltaKnown.Insert([]Value{1, 3})
	p.DeltaNew.Insert([]Value{1, 4})
	for _, rel := range []*Relation{p.Derived, p.DeltaKnown, p.DeltaNew} {
		rows, ok := rel.Probe(0, 1)
		if !ok || len(rows) != 1 {
			t.Fatalf("%s probe = %v,%v", rel.Name(), rows, ok)
		}
	}
}

func TestCatalogDeclareIdempotent(t *testing.T) {
	c := NewCatalog()
	a := c.Declare("edge", 2)
	b := c.Declare("edge", 2)
	if a != b {
		t.Fatalf("re-declare returned new id %d != %d", b, a)
	}
	if c.NumPreds() != 1 {
		t.Fatalf("NumPreds = %d, want 1", c.NumPreds())
	}
}

func TestCatalogDeclareArityConflictPanics(t *testing.T) {
	c := NewCatalog()
	c.Declare("edge", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("arity conflict should panic")
		}
	}()
	c.Declare("edge", 3)
}

func TestCatalogLookups(t *testing.T) {
	c := NewCatalog()
	id := c.Declare("vP", 2)
	p, ok := c.PredByName("vP")
	if !ok || p.ID != id {
		t.Fatalf("PredByName = %v,%v", p, ok)
	}
	if _, ok := c.PredByName("nope"); ok {
		t.Fatal("PredByName found undeclared predicate")
	}
	if c.Pred(id).Name != "vP" {
		t.Fatalf("Pred(%d).Name = %q", id, c.Pred(id).Name)
	}
}

func TestCatalogResetFacts(t *testing.T) {
	c := NewCatalog()
	p := c.Pred(c.Declare("r", 1))
	p.BuildIndexes([]int{0})
	p.AddFact([]Value{1})
	p.SeedDeltas()
	p.DeltaNew.Insert([]Value{2})
	c.ResetFacts()
	if c.TotalDerived() != 0 || p.DeltaKnown.Len() != 0 || p.DeltaNew.Len() != 0 {
		t.Fatal("ResetFacts left data behind")
	}
	if !p.Derived.HasIndex(0) {
		t.Fatal("ResetFacts dropped index registration")
	}
}

// Property: after any sequence of DeltaNew inserts and SwapClears, Derived
// equals the union of everything ever inserted, and DeltaKnown equals the
// genuinely-new facts of the last batch.
func TestSwapClearInvariantProperty(t *testing.T) {
	f := func(batches [][]int8) bool {
		c := NewCatalog()
		p := c.Pred(c.Declare("r", 1))
		all := map[Value]bool{}
		var lastNew map[Value]bool
		for _, batch := range batches {
			lastNew = map[Value]bool{}
			for _, v := range batch {
				tu := []Value{Value(v)}
				if !p.Derived.Contains(tu) {
					if p.DeltaNew.Insert(tu) {
						lastNew[Value(v)] = true
					}
					all[Value(v)] = true
				}
			}
			p.SwapClear()
			if p.DeltaKnown.Len() != len(lastNew) {
				return false
			}
		}
		if p.Derived.Len() != len(all) {
			return false
		}
		for v := range all {
			if !p.Derived.Contains([]Value{v}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
