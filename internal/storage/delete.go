package storage

// This file implements batched physical deletion — the one destructive
// operation that removes individual rows rather than a suffix or everything.
// It exists for incremental maintenance (core.Apply / Server.IngestTx): a
// transaction's retractions are collected (count-gated by DecRef) and applied
// as ONE stable compaction per relation, rebuilding the derived structures —
// dedup set, indexes, composites, histograms, shard views, row-id map — the
// same way TruncateTo does, and advancing the mutation counter once per batch
// (one logical content change, exactly like Clear).
//
// Epoch safety: a pinned arena (an EpochRows view references it) is never
// compacted in place — the survivors move to a fresh slab and the old one is
// left to the epoch's readers, the same copy-on-flip discipline as the other
// destructive operations (epoch.go).

// DeleteRows removes every currently present tuple of tuples from r in one
// batch, returning the number of rows removed and how many of those had row
// ids below boundary (the ground-fact arena prefix — callers shrink their
// baseline watermark by removedBelow). Tuples that are absent are ignored;
// when nothing is present the relation — including its mutation counters —
// is untouched. In physical mode the batch routes per bucket and boundary is
// meaningless (row ids are bucket-local): removedBelow is 0, and per-bucket
// counters advance for the buckets that lost rows, mirroring Clear.
func (r *Relation) DeleteRows(tuples [][]Value, boundary int) (removed, removedBelow int) {
	if len(tuples) == 0 {
		return 0, 0
	}
	if r.subs != nil {
		byBucket := make([][][]Value, len(r.subs))
		for _, t := range tuples {
			b := ShardOf(t[r.shardCol], r.shardCount)
			byBucket[b] = append(byBucket[b], t)
		}
		for s, bt := range byBucket {
			if len(bt) == 0 {
				continue
			}
			rm, _ := r.subs[s].deleteCompact(bt, 0)
			if rm > 0 {
				removed += rm
				r.shardMuts[s]++
			}
		}
		if removed > 0 {
			r.muts++
		}
		return removed, 0
	}
	removed, removedBelow = r.deleteCompact(tuples, boundary)
	if removed > 0 {
		r.muts++
	}
	return removed, removedBelow
}

// AssertAt is the insertion half of ground maintenance: it asserts tuples as
// ground facts while keeping the ground-fact arena prefix invariant (rows
// [0, boundary) are ground). A tuple already present below boundary just
// gains an assertion (count++, no content change); one present at or above
// boundary — a derived row being promoted to a ground fact — is relocated
// into the prefix with the batch's assertions as its count (its previous
// count 1 recorded presence, not assertion); an absent tuple
// is spliced in at the prefix with count 1 (repeats within the batch bump
// the count instead). Returns the distinct newly inserted tuples in
// first-occurrence order and the number of promotions — the caller's ground
// watermark grows by len(added)+promoted. Switches the relation to counted
// mode if it was not already. Not meaningful in physical mode (no global row
// order); there the tuples are simply IncRef'd into their buckets.
func (r *Relation) AssertAt(tuples [][]Value, boundary int) (added [][]Value, promoted int) {
	if len(tuples) == 0 {
		return nil, 0
	}
	r.EnableCounts()
	if r.subs != nil {
		for _, t := range tuples {
			if r.IncRef(t) {
				added = append(added, append([]Value(nil), t...))
			}
		}
		return added, 0
	}
	n := r.Len()
	if boundary > n {
		boundary = n
	}
	// Dedup the batch first so repeated assertions of one tuple fold into
	// its multiplicity instead of producing duplicate rows.
	type staged struct {
		t   []Value
		cnt uint32
	}
	var order []*staged
	s64 := make(map[uint64]*staged)
	sS := make(map[string]*staged)
	for _, t := range tuples {
		var st *staged
		if r.arity <= 2 {
			st = s64[key64(t)]
		} else {
			st = sS[string(r.pack(t))]
		}
		if st == nil {
			st = &staged{t: append([]Value(nil), t...)}
			if r.arity <= 2 {
				s64[key64(t)] = st
			} else {
				sS[string(r.pack(t))] = st
			}
			order = append(order, st)
		}
		st.cnt++
	}
	// mid holds the rows entering the prefix, in batch order.
	var mid []*staged
	var midCounts []uint32
	reloc := make(map[int]struct{})
	for _, st := range order {
		row, ok := r.rowLookup(st.t)
		if ok && int(row) < boundary {
			r.counts[row] += st.cnt
			continue
		}
		if ok {
			reloc[int(row)] = struct{}{}
			mid = append(mid, st)
			midCounts = append(midCounts, st.cnt)
			promoted++
			continue
		}
		mid = append(mid, st)
		midCounts = append(midCounts, st.cnt)
		added = append(added, st.t)
	}
	if len(mid) == 0 {
		return nil, 0 // pure count bumps: no content or structure change
	}
	// Rebuild onto a fresh slab — splicing always moves rows, and a fresh
	// slab doubles as the copy-on-flip for any pinned epoch readers.
	total := n - len(reloc) + len(mid)
	dst := make([]Value, 0, total*r.arity)
	cnts := make([]uint32, 0, total)
	for i := 0; i < boundary; i++ {
		dst = append(dst, r.Row(int32(i))...)
		cnts = append(cnts, r.counts[i])
	}
	for i, st := range mid {
		dst = append(dst, st.t...)
		cnts = append(cnts, midCounts[i])
	}
	for i := boundary; i < n; i++ {
		if _, moved := reloc[i]; moved {
			continue
		}
		dst = append(dst, r.Row(int32(i))...)
		cnts = append(cnts, r.counts[i])
	}
	r.arena = dst
	r.pinned = false
	r.counts = cnts
	r.countIdxReset()
	r.freshDedup(total)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	r.histReset()
	r.reindexRows()
	if r.shardCount > 0 && r.subs == nil {
		r.shardRebuild()
	}
	if len(added) > 0 {
		r.muts++ // one logical content change per batch, like DeleteRows
	}
	return added, promoted
}

// deleteCompact performs the single-slab compaction: locate the doomed rows,
// move the survivors down (or onto a fresh slab when pinned), and rebuild
// every derived structure. The caller owns all mutation-counter accounting.
func (r *Relation) deleteCompact(tuples [][]Value, boundary int) (removed, removedBelow int) {
	n := r.Len()
	if n == 0 {
		return 0, 0
	}
	// Dead-row scan against a key set in the relation's dedup key shape.
	var dead []int
	if r.arity <= 2 {
		del := make(map[uint64]struct{}, len(tuples))
		for _, t := range tuples {
			del[key64(t)] = struct{}{}
		}
		for i := 0; i < n; i++ {
			if _, doomed := del[key64(r.Row(int32(i)))]; doomed {
				dead = append(dead, i)
			}
		}
	} else {
		del := make(map[string]struct{}, len(tuples))
		for _, t := range tuples {
			del[string(r.pack(t))] = struct{}{}
		}
		for i := 0; i < n; i++ {
			if _, doomed := del[string(r.pack(r.Row(int32(i))))]; doomed {
				dead = append(dead, i)
			}
		}
	}
	if len(dead) == 0 {
		return 0, 0
	}
	removed = len(dead)
	for _, i := range dead {
		if i < boundary {
			removedBelow++
		}
	}
	// Stable compaction. In place, the write offset never passes the read
	// offset; a pinned slab flips to a fresh one and stays with its epoch.
	src := r.arena
	var dst []Value
	if r.pinned {
		r.pinned = false
		dst = make([]Value, 0, (n-removed)*r.arity)
	} else {
		dst = r.arena[:0]
	}
	di, cw := 0, 0
	for i := 0; i < n; i++ {
		if di < len(dead) && dead[di] == i {
			di++
			continue
		}
		dst = append(dst, src[i*r.arity:(i+1)*r.arity]...)
		if r.countsOn {
			r.counts[cw] = r.counts[i]
			cw++
		}
	}
	r.arena = dst
	if r.countsOn {
		r.counts = r.counts[:cw]
		r.countIdxReset()
	}
	r.freshDedup(n - removed)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	r.histReset()
	r.reindexRows()
	if r.shardCount > 0 && r.subs == nil {
		r.shardRebuild()
	}
	return removed, removedBelow
}
