package storage

import (
	"fmt"
	"math"
	"testing"
)

// TestPackedDedupBoundaryValues pins the uint64-packed dedup fast path
// (arity <= 2 tuples key as one uint64, no per-insert allocation) at the
// domain boundaries of storage.Value: negative values, MinInt32, MaxInt32,
// and zero must pack losslessly — duplicate detection, membership, and
// cross-pair distinctness all exact.
func TestPackedDedupBoundaryValues(t *testing.T) {
	boundary := []Value{0, -1, 1, math.MinInt32, math.MaxInt32, math.MinInt32 + 1, math.MaxInt32 - 1}

	t.Run("arity1", func(t *testing.T) {
		r := NewRelation("b1", 1)
		if r.set64 == nil || r.set != nil {
			t.Fatal("arity 1 must use the packed uint64 dedup set")
		}
		for _, v := range boundary {
			if !r.Insert([]Value{v}) {
				t.Fatalf("first insert of %d rejected as duplicate", v)
			}
			if r.Insert([]Value{v}) {
				t.Fatalf("duplicate %d not detected", v)
			}
			if !r.Contains([]Value{v}) {
				t.Fatalf("Contains(%d) = false after insert", v)
			}
		}
		if r.Len() != len(boundary) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(boundary))
		}
	})

	t.Run("arity2", func(t *testing.T) {
		r := NewRelation("b2", 2)
		if r.set64 == nil {
			t.Fatal("arity 2 must use the packed uint64 dedup set")
		}
		seen := 0
		for _, a := range boundary {
			for _, b := range boundary {
				if !r.Insert([]Value{a, b}) {
					t.Fatalf("first insert of (%d,%d) rejected", a, b)
				}
				seen++
				if r.Insert([]Value{a, b}) {
					t.Fatalf("duplicate (%d,%d) not detected", a, b)
				}
			}
		}
		if r.Len() != seen {
			t.Fatalf("Len = %d, want %d distinct pairs", r.Len(), seen)
		}
		// Column order must matter: (min,max) and (max,min) are distinct keys.
		if !r.Contains([]Value{math.MinInt32, math.MaxInt32}) || !r.Contains([]Value{math.MaxInt32, math.MinInt32}) {
			t.Fatal("swapped boundary pair lost")
		}
		if r.Contains([]Value{2, -1}) {
			t.Fatal("phantom membership for a never-inserted pair")
		}
	})
}

// TestDedupArityTransition pins the representation switch at arity 3: the
// packed path serves arities 1 and 2 only, wider tuples fall back to
// byte-string keys — with the same exactness at value boundaries.
func TestDedupArityTransition(t *testing.T) {
	for arity := 1; arity <= 4; arity++ {
		r := NewRelation(fmt.Sprintf("a%d", arity), arity)
		packed := r.set64 != nil
		if want := arity <= 2; packed != want {
			t.Fatalf("arity %d: packed dedup = %v, want %v", arity, packed, want)
		}
		if packed == (r.set != nil) {
			t.Fatalf("arity %d: exactly one dedup structure must be active", arity)
		}
		tuple := make([]Value, arity)
		for i := range tuple {
			tuple[i] = Value(math.MinInt32 + i)
		}
		if !r.Insert(tuple) || r.Insert(tuple) {
			t.Fatalf("arity %d: dedup wrong at boundary values", arity)
		}
		tuple[arity-1] = math.MaxInt32
		if !r.Insert(tuple) {
			t.Fatalf("arity %d: distinct tuple rejected", arity)
		}
		if r.Len() != 2 {
			t.Fatalf("arity %d: Len = %d, want 2", arity, r.Len())
		}
	}
}

// TestClearRetainKeepsCapacity pins ClearRetain's contract across repeated
// fill/clear cycles — the worker-buffer recycling pattern: contents and
// membership reset every cycle, the arena capacity and index registrations
// survive, and the mutation counter advances exactly once per non-empty
// clear (never for an empty one).
func TestClearRetainKeepsCapacity(t *testing.T) {
	const rows = 512
	r := NewRelation("buf", 2)
	r.BuildIndex(0)
	fill := func() {
		for i := 0; i < rows; i++ {
			r.Insert([]Value{Value(i % 61), Value(i)})
		}
	}
	fill()
	capBefore := cap(r.arena)
	if capBefore < rows*2 {
		t.Fatalf("arena cap %d too small after %d inserts", capBefore, rows)
	}

	for cycle := 0; cycle < 5; cycle++ {
		mutsBefore := r.Mutations()
		r.ClearRetain()
		if got := r.Mutations(); got != mutsBefore+1 {
			t.Fatalf("cycle %d: non-empty ClearRetain advanced counter by %d, want 1", cycle, got-mutsBefore)
		}
		if r.Len() != 0 || !r.Empty() {
			t.Fatalf("cycle %d: relation not empty after ClearRetain", cycle)
		}
		if r.Contains([]Value{0, 0}) {
			t.Fatalf("cycle %d: stale membership after ClearRetain", cycle)
		}
		if got := cap(r.arena); got != capBefore {
			t.Fatalf("cycle %d: arena capacity not retained: %d != %d", cycle, got, capBefore)
		}
		// Empty clear: no content change, no counter movement.
		mutsBefore = r.Mutations()
		r.ClearRetain()
		if got := r.Mutations(); got != mutsBefore {
			t.Fatalf("cycle %d: empty ClearRetain advanced counter", cycle)
		}
		fill()
		if r.Len() != rows {
			t.Fatalf("cycle %d: refill found %d rows, want %d (dedup residue?)", cycle, r.Len(), rows)
		}
		// The retained index must keep answering exactly.
		if ids, ok := r.Probe(0, 7); !ok || len(ids) == 0 {
			t.Fatalf("cycle %d: index lost after ClearRetain (ok=%v hits=%d)", cycle, ok, len(ids))
		}
	}
}

// TestClearRetainShardedBuffer covers the recycling pattern under a shard
// partition (the physically mirrored worker buffers): per-bucket views reset
// with capacity kept, and refills repartition correctly.
func TestClearRetainShardedBuffer(t *testing.T) {
	r := NewRelation("sbuf", 2)
	r.SetShardKey(4, 0)
	for i := 0; i < 256; i++ {
		r.Insert([]Value{Value(i), Value(i + 1)})
	}
	perBucket := make([]int, 4)
	for s := 0; s < 4; s++ {
		perBucket[s] = r.ShardLen(s)
	}
	r.ClearRetain()
	for s := 0; s < 4; s++ {
		if r.ShardLen(s) != 0 {
			t.Fatalf("bucket %d not empty after ClearRetain", s)
		}
	}
	for i := 0; i < 256; i++ {
		r.Insert([]Value{Value(i), Value(i + 1)})
	}
	for s := 0; s < 4; s++ {
		if r.ShardLen(s) != perBucket[s] {
			t.Fatalf("bucket %d holds %d rows after refill, want %d", s, r.ShardLen(s), perBucket[s])
		}
	}
}
