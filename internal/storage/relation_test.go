package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("edge", 2)
	if !r.Insert([]Value{1, 2}) {
		t.Fatal("first insert reported duplicate")
	}
	if r.Insert([]Value{1, 2}) {
		t.Fatal("duplicate insert reported new")
	}
	if !r.Insert([]Value{2, 1}) {
		t.Fatal("reversed tuple should be distinct")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Contains([]Value{1, 2}) || r.Contains([]Value{9, 9}) {
		t.Fatal("Contains disagrees with inserts")
	}
}

func TestRelationNegativeValuesDistinct(t *testing.T) {
	// Symbol ids are negative; packing must keep them distinct from
	// positive values with the same magnitude.
	r := NewRelation("r", 1)
	r.Insert([]Value{-1})
	if r.Contains([]Value{1}) {
		t.Fatal("-1 and 1 collided in the dedup key")
	}
	r.Insert([]Value{1})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRelationRowAndEachOrder(t *testing.T) {
	r := NewRelation("r", 3)
	want := [][]Value{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for _, tu := range want {
		r.Insert(tu)
	}
	for i, w := range want {
		if got := r.Row(int32(i)); !reflect.DeepEqual([]Value(got), w) {
			t.Fatalf("Row(%d) = %v, want %v", i, got, w)
		}
	}
	var seen [][]Value
	r.Each(func(row []Value) bool {
		cp := append([]Value(nil), row...)
		seen = append(seen, cp)
		return true
	})
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("Each order = %v, want %v", seen, want)
	}
}

func TestRelationEachEarlyStop(t *testing.T) {
	r := NewRelation("r", 1)
	for i := Value(0); i < 10; i++ {
		r.Insert([]Value{i})
	}
	n := 0
	r.Each(func(row []Value) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d rows, want 3", n)
	}
}

func TestRelationIndexIncrementalVsBackfill(t *testing.T) {
	// An index built before inserts (incremental) must agree with one built
	// after (backfill).
	inc := NewRelation("inc", 2)
	inc.BuildIndex(0)
	back := NewRelation("back", 2)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tu := []Value{Value(rng.Intn(20)), Value(rng.Intn(50))}
		inc.Insert(tu)
		back.Insert(tu)
	}
	back.BuildIndex(0)

	for k := Value(0); k < 20; k++ {
		a, okA := inc.Probe(0, k)
		b, okB := back.Probe(0, k)
		if !okA || !okB {
			t.Fatalf("probe not ok: %v %v", okA, okB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %d: incremental %v != backfill %v", k, a, b)
		}
	}
}

func TestRelationProbeMatchesScan(t *testing.T) {
	r := NewRelation("r", 2)
	r.BuildIndex(1)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		r.Insert([]Value{Value(rng.Intn(100)), Value(rng.Intn(10))})
	}
	for k := Value(0); k < 10; k++ {
		rows, ok := r.Probe(1, k)
		if !ok {
			t.Fatal("index missing")
		}
		var scan []int32
		for i := int32(0); i < int32(r.Len()); i++ {
			if r.Row(i)[1] == k {
				scan = append(scan, i)
			}
		}
		if !reflect.DeepEqual(rows, scan) {
			t.Fatalf("key %d: probe %v != scan %v", k, rows, scan)
		}
	}
}

func TestRelationProbeWithoutIndex(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert([]Value{1, 2})
	if _, ok := r.Probe(0, 1); ok {
		t.Fatal("Probe reported ok without an index")
	}
	if r.HasIndex(0) {
		t.Fatal("HasIndex true without BuildIndex")
	}
}

func TestRelationClearKeepsIndexRegistration(t *testing.T) {
	r := NewRelation("r", 2)
	r.BuildIndex(0)
	r.Insert([]Value{1, 2})
	r.Clear()
	if r.Len() != 0 {
		t.Fatalf("Len after Clear = %d", r.Len())
	}
	if !r.HasIndex(0) {
		t.Fatal("Clear dropped index registration")
	}
	r.Insert([]Value{3, 4})
	rows, ok := r.Probe(0, 3)
	if !ok || len(rows) != 1 {
		t.Fatalf("index not maintained after Clear: %v %v", rows, ok)
	}
	if r.Contains([]Value{1, 2}) {
		t.Fatal("Clear left stale tuple")
	}
}

func TestRelationInsertAllCountsNew(t *testing.T) {
	a := NewRelation("a", 1)
	b := NewRelation("b", 1)
	a.Insert([]Value{1})
	a.Insert([]Value{2})
	b.Insert([]Value{2})
	b.Insert([]Value{3})
	if n := a.InsertAll(b); n != 1 {
		t.Fatalf("InsertAll added %d, want 1 (only 3 is new)", n)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestRelationIndexedColumns(t *testing.T) {
	r := NewRelation("r", 3)
	r.BuildIndex(2)
	r.BuildIndex(0)
	if got := r.IndexedColumns(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("IndexedColumns = %v", got)
	}
}

func TestRelationArityPanics(t *testing.T) {
	r := NewRelation("r", 2)
	for _, bad := range [][]Value{{1}, {1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Insert(%v) into arity-2 relation should panic", bad)
				}
			}()
			r.Insert(bad)
		}()
	}
}

// Property: a Relation behaves exactly like a set of tuples.
func TestRelationSetSemanticsProperty(t *testing.T) {
	f := func(tuples [][2]int16) bool {
		r := NewRelation("p", 2)
		model := make(map[[2]Value]bool)
		for _, tp := range tuples {
			tu := []Value{Value(tp[0]), Value(tp[1])}
			wantNew := !model[[2]Value{tu[0], tu[1]}]
			gotNew := r.Insert(tu)
			if gotNew != wantNew {
				return false
			}
			model[[2]Value{tu[0], tu[1]}] = true
		}
		if r.Len() != len(model) {
			return false
		}
		ok := true
		r.Each(func(row []Value) bool {
			if !model[[2]Value{row[0], row[1]}] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: indexes never change which tuples a relation contains.
func TestRelationIndexTransparencyProperty(t *testing.T) {
	f := func(tuples [][2]int8) bool {
		plain := NewRelation("plain", 2)
		indexed := NewRelation("indexed", 2)
		indexed.BuildIndex(0)
		indexed.BuildIndex(1)
		for _, tp := range tuples {
			tu := []Value{Value(tp[0]), Value(tp[1])}
			plain.Insert(tu)
			indexed.Insert(tu)
		}
		return relEqual(plain, indexed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// relEqual reports set equality of two relations (test helper).
func relEqual(a, b *Relation) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	eq := true
	a.Each(func(row []Value) bool {
		if !b.Contains(row) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

func sortTuples(ts [][]Value) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func TestRelationSnapshotCopies(t *testing.T) {
	r := NewRelation("r", 2)
	r.Insert([]Value{1, 2})
	snap := r.Snapshot()
	snap[0][0] = 99
	if !r.Contains([]Value{1, 2}) {
		t.Fatal("Snapshot mutation leaked into relation")
	}
}
