package storage

import (
	"fmt"
	"testing"
)

func epochRowStrings(e EpochRows) []string {
	out := make([]string, 0, e.Len())
	e.Each(func(row []Value) bool {
		out = append(out, fmt.Sprint(row))
		return true
	})
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPinRowsTruncateCopyOnFlip is the core copy-on-flip contract: a
// baseline rewind (TruncateTo) followed by re-appends must not rewrite the
// slab a pinned epoch view references.
func TestPinRowsTruncateCopyOnFlip(t *testing.T) {
	r := NewRelation("t", 2)
	for i := 0; i < 8; i++ {
		r.Insert([]Value{Value(i), Value(i + 100)})
	}
	view := r.PinRows()
	if !r.Pinned() {
		t.Fatal("relation not marked pinned after PinRows")
	}
	want := epochRowStrings(view)

	// The rewind + re-append sequence that corrupted unpinned views: without
	// the flip, rows 2..7 of the shared arena get overwritten in place.
	r.TruncateTo(2)
	if r.Pinned() {
		t.Fatal("pinned flag must clear at the flip")
	}
	for i := 0; i < 6; i++ {
		r.Insert([]Value{Value(1000 + i), Value(2000 + i)})
	}

	if got := epochRowStrings(view); !sameStrings(got, want) {
		t.Fatalf("pinned view changed:\nwant %v\ngot  %v", want, got)
	}
	if r.Len() != 8 {
		t.Fatalf("live relation length %d, want 8", r.Len())
	}
	if !r.Contains([]Value{1000, 2000}) || r.Contains([]Value{5, 105}) {
		t.Fatal("live relation content wrong after flip")
	}
}

// TestPinRowsClearVariants covers the other destructive operations.
func TestPinRowsClearVariants(t *testing.T) {
	for _, op := range []struct {
		name  string
		apply func(*Relation)
	}{
		{"Clear", func(r *Relation) { r.Clear() }},
		{"ClearRetain", func(r *Relation) { r.ClearRetain() }},
		{"TruncateToZero", func(r *Relation) { r.TruncateTo(0) }},
	} {
		t.Run(op.name, func(t *testing.T) {
			r := NewRelation("t", 3)
			for i := 0; i < 5; i++ {
				r.Insert([]Value{Value(i), Value(i * 2), Value(i * 3)})
			}
			view := r.PinRows()
			want := epochRowStrings(view)
			op.apply(r)
			for i := 0; i < 5; i++ {
				r.Insert([]Value{Value(i + 50), Value(i + 60), Value(i + 70)})
			}
			if got := epochRowStrings(view); !sameStrings(got, want) {
				t.Fatalf("pinned view changed after %s:\nwant %v\ngot  %v", op.name, want, got)
			}
			if r.Len() != 5 {
				t.Fatalf("live length %d, want 5", r.Len())
			}
		})
	}
}

// TestPinRowsAppendWhilePinned: plain appends are legal while pinned — they
// extend past the view without disturbing it, and the view's length stays
// fixed.
func TestPinRowsAppendWhilePinned(t *testing.T) {
	r := NewRelation("t", 1)
	r.Insert([]Value{1})
	r.Insert([]Value{2})
	view := r.PinRows()
	for i := 3; i < 100; i++ {
		r.Insert([]Value{Value(i)})
	}
	if view.Len() != 2 {
		t.Fatalf("view grew with appends: len %d, want 2", view.Len())
	}
	if got := epochRowStrings(view); !sameStrings(got, []string{"[1]", "[2]"}) {
		t.Fatalf("view rows changed: %v", got)
	}
}

// TestPinRowsSplitDedup pins the sharded-Derived layout (split dedup keeps
// one global arena, so the zero-copy pin applies).
func TestPinRowsSplitDedup(t *testing.T) {
	r := NewRelation("t", 2)
	for i := 0; i < 16; i++ {
		r.Insert([]Value{Value(i), Value(i)})
	}
	r.SetShardKeySplit(4, 0)
	view := r.PinRows()
	want := epochRowStrings(view)
	r.TruncateTo(3)
	for i := 0; i < 10; i++ {
		r.Insert([]Value{Value(i + 300), Value(i)})
	}
	if got := epochRowStrings(view); !sameStrings(got, want) {
		t.Fatalf("pinned split-dedup view changed")
	}
}

// TestPinRowsPhysicalZeroCopy: physical relations (bucket-major arenas) pin
// each bucket's slab directly — no flattening copy — and the per-bucket
// copy-on-flip discipline keeps the view intact through Clear and re-insert.
func TestPinRowsPhysicalZeroCopy(t *testing.T) {
	r := NewRelation("t", 2)
	for i := 0; i < 12; i++ {
		r.Insert([]Value{Value(i), Value(i + 1)})
	}
	r.SetShardKeyPhysical(4, 0)
	view := r.PinRows()
	if r.Pinned() {
		t.Fatal("physical pin must not set the flat-slab pinned flag")
	}
	want := epochRowStrings(view)
	if len(want) != 12 || view.Len() != 12 {
		t.Fatalf("pinned view has %d rows (Len %d), want 12", len(want), view.Len())
	}
	r.Clear()
	r.Insert([]Value{77, 78})
	if got := epochRowStrings(view); !sameStrings(got, want) {
		t.Fatal("pinned physical view changed after Clear + insert")
	}
}

// TestPinRowsPhysicalRow pins the multi-arena random-access surface: Row(i)
// over the bucket-major view must agree with Each's iteration order for
// every index, across bucket boundaries.
func TestPinRowsPhysicalRow(t *testing.T) {
	r := NewRelation("t", 2)
	for i := 0; i < 37; i++ { // uneven bucket fill
		r.Insert([]Value{Value(i * 7 % 11), Value(i)})
	}
	r.SetShardKeyPhysical(5, 0)
	view := r.PinRows()
	if view.Len() != 37 {
		t.Fatalf("view len %d, want 37", view.Len())
	}
	i := 0
	view.Each(func(row []Value) bool {
		if got := view.Row(i); fmt.Sprint(got) != fmt.Sprint(row) {
			t.Fatalf("Row(%d) = %v, Each yields %v", i, got, row)
		}
		i++
		return true
	})
	if i != view.Len() {
		t.Fatalf("Each visited %d rows, Len says %d", i, view.Len())
	}

	// The view stays valid when the relation re-shards (the old slabs are
	// abandoned wholesale, satisfying the pin without a copy).
	r.SetShardKeyPhysical(3, 1)
	j := 0
	view.Each(func(row []Value) bool { j++; return true })
	if j != 37 {
		t.Fatalf("pinned view lost rows after re-shard: %d, want 37", j)
	}
}

// TestPinnedTruncatePreservesLiveInvariants: after a copy-on-flip rewind the
// live relation's dedup, indexes, and histograms describe the fresh arena.
func TestPinnedTruncatePreservesLiveInvariants(t *testing.T) {
	r := NewRelation("t", 2)
	r.BuildIndex(0)
	r.BuildHistogram(1)
	for i := 0; i < 10; i++ {
		r.Insert([]Value{Value(i % 3), Value(i)})
	}
	_ = r.PinRows()
	r.TruncateTo(4)
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	if r.Insert([]Value{0, 0}) { // row 0 is (0,0): still deduped
		t.Fatal("dedup lost after flip")
	}
	rows, ok := r.Probe(0, 0)
	if !ok || len(rows) != 2 { // rows 0 and 3 have key 0 in the 4-row prefix
		t.Fatalf("index wrong after flip: ok=%v rows=%v", ok, rows)
	}
	h, ok := r.HistogramOf(1)
	if !ok || h.Total != 4 {
		t.Fatalf("histogram total %d after flip, want 4", h.Total)
	}
}

// TestCatalogEpoch pins the epoch counter surface.
func TestCatalogEpoch(t *testing.T) {
	c := NewCatalog()
	if c.Epoch() != 0 {
		t.Fatalf("fresh catalog epoch %d, want 0", c.Epoch())
	}
	if got := c.AdvanceEpoch(); got != 1 || c.Epoch() != 1 {
		t.Fatalf("first advance: returned %d, Epoch %d", got, c.Epoch())
	}
	if got := c.AdvanceEpoch(); got != 2 {
		t.Fatalf("second advance returned %d", got)
	}
}
