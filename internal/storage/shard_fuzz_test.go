package storage

import (
	"fmt"
	"testing"
)

// checkShardPartition asserts the shard-routing soundness property: the
// buckets are a disjoint, exact cover of the relation — unioning them
// reproduces the unsharded content with no dropped and no duplicated tuples,
// every tuple sits in the bucket its key hashes to, and the per-bucket
// cardinalities aggregate to the relation's total.
func checkShardPartition(t *testing.T, r *Relation) {
	t.Helper()
	shards, col := r.ShardConfig()
	if shards == 0 {
		t.Fatal("relation is unpartitioned")
	}
	seen := make(map[string]int)
	total := 0
	for s := 0; s < shards; s++ {
		n := 0
		r.EachShard(s, func(row []Value) bool {
			if got := ShardOf(row[col], shards); got != s {
				t.Fatalf("tuple %v in bucket %d, hashes to %d", row, s, got)
			}
			seen[fmt.Sprint(row)]++
			n++
			return true
		})
		if n != r.ShardLen(s) {
			t.Fatalf("bucket %d iterated %d rows, ShardLen says %d", s, n, r.ShardLen(s))
		}
		total += n
	}
	if total != r.Len() {
		t.Fatalf("buckets hold %d rows, relation holds %d", total, r.Len())
	}
	for _, row := range r.Snapshot() {
		key := fmt.Sprint(row)
		switch seen[key] {
		case 1:
			delete(seen, key)
		case 0:
			t.Fatalf("tuple %s dropped from every bucket", key)
		default:
			t.Fatalf("tuple %s appears in %d buckets", key, seen[key])
		}
	}
	for key := range seen {
		t.Fatalf("bucket tuple %s not in relation", key)
	}
}

// FuzzShardRouting drives a partitioned relation through arbitrary
// insert/truncate/clear sequences decoded from the fuzz input and checks the
// partition-exactness property after every operation. Run the short-fuzz CI
// job with: go test -fuzz=FuzzShardRouting -fuzztime=20s ./internal/storage/
func FuzzShardRouting(f *testing.F) {
	f.Add(uint8(4), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), uint8(1), []byte{0, 0, 0, 1, 255, 9, 200, 1, 1, 2})
	f.Add(uint8(7), uint8(0), []byte{220, 5, 5, 200, 0, 5, 6, 5, 7})
	f.Add(uint8(16), uint8(1), []byte{9, 9, 9, 9, 9, 9, 210, 2, 3, 4})
	f.Fuzz(func(t *testing.T, nshards, keyCol uint8, data []byte) {
		shards := 2 + int(nshards)%15
		col := int(keyCol) % 2
		r := NewRelation("fuzz", 2)
		r.SetShardKey(shards, col)
		r.BuildIndex(0) // indexes and shards must stay consistent together
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i]
			switch {
			case op >= 200 && op < 210:
				// Truncate to a prefix derived from the operand byte.
				if n := r.Len(); n > 0 {
					r.TruncateTo(int(data[i+1]) % (n + 1))
				}
			case op >= 210 && op < 215:
				r.Clear()
			case op >= 215 && op < 220:
				// Incremental batch: a run of consecutive keys (the dense-id
				// pattern incremental fact loads produce).
				base := Value(data[i+1])
				for j := Value(0); j < 8; j++ {
					r.Insert([]Value{base + j, Value(op)})
				}
			default:
				r.Insert([]Value{Value(op), Value(data[i+1])})
			}
			checkShardPartition(t, r)
		}
		// Reconfiguration rebuilds buckets from the live arena.
		r.SetShardKey(3+shards%5, 1-col)
		checkShardPartition(t, r)
	})
}

// TestShardRoutingProperty is the deterministic slice of the fuzz property:
// pseudo-random operation sequences over several shard layouts, with the
// per-bucket counters checked for monotonicity at every step (the fuzz
// target skips that to stay stateless).
func TestShardRoutingProperty(t *testing.T) {
	for _, cfg := range []struct{ shards, col int }{{2, 0}, {5, 1}, {16, 0}} {
		r := NewRelation("prop", 2)
		r.SetShardKey(cfg.shards, cfg.col)
		prev := make([]uint64, cfg.shards)
		rng := uint64(0x9e3779b97f4a7c15)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for step := 0; step < 400; step++ {
			switch next() % 10 {
			case 0:
				r.TruncateTo(int(next()) % (r.Len() + 1))
			case 1:
				r.Clear()
			default:
				r.Insert([]Value{Value(next() % 64), Value(next() % 1024)})
			}
			checkShardPartition(t, r)
			for s := 0; s < cfg.shards; s++ {
				if m := r.ShardMutations(s); m < prev[s] {
					t.Fatalf("shards=%d step %d: bucket %d counter moved backwards (%d -> %d)", cfg.shards, step, s, prev[s], m)
				} else {
					prev[s] = m
				}
			}
		}
	}
}
