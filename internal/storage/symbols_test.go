package storage

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSymbolTableInternStable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Fatalf("distinct strings interned to same id %d", a)
	}
	if got := st.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed id: %d -> %d", a, got)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

func TestSymbolTableIdsAreNegative(t *testing.T) {
	st := NewSymbolTable()
	for i := 0; i < 100; i++ {
		v := st.Intern(fmt.Sprintf("sym%d", i))
		if v >= 0 {
			t.Fatalf("interned id %d is non-negative; collides with integer constants", v)
		}
		if !IsSymbol(v) {
			t.Fatalf("IsSymbol(%d) = false for interned id", v)
		}
	}
	if IsSymbol(0) || IsSymbol(42) {
		t.Fatal("non-negative values must not be classified as symbols")
	}
}

func TestSymbolTableRoundTrip(t *testing.T) {
	st := NewSymbolTable()
	f := func(s string) bool {
		v := st.Intern(s)
		return st.Name(v) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolTableLookup(t *testing.T) {
	st := NewSymbolTable()
	if _, ok := st.Lookup("missing"); ok {
		t.Fatal("Lookup on empty table reported ok")
	}
	v := st.Intern("x")
	got, ok := st.Lookup("x")
	if !ok || got != v {
		t.Fatalf("Lookup(x) = %d,%v want %d,true", got, ok, v)
	}
}

func TestSymbolTableNamePanicsOnNonSymbol(t *testing.T) {
	st := NewSymbolTable()
	defer func() {
		if recover() == nil {
			t.Fatal("Name(7) should panic: 7 is an integer constant, not a symbol")
		}
	}()
	st.Name(7)
}

func TestSymbolTableFormat(t *testing.T) {
	st := NewSymbolTable()
	v := st.Intern("serialize")
	if got := st.Format(v); got != "serialize" {
		t.Fatalf("Format(symbol) = %q", got)
	}
	if got := st.Format(42); got != "42" {
		t.Fatalf("Format(42) = %q", got)
	}
}
