package storage

// This file implements incrementally maintained per-column value-distribution
// histograms — the skew statistic behind histogram-overlap join-size
// estimation (internal/optimizer) and the skew-aware work-stealing fan-out
// (internal/interp). A histogram is registered per column like a hash index
// (BuildHistogram / PredicateDB.BuildHistograms) and maintained in the same
// mutation paths that maintain cardinality and drift counters: Insert
// increments the inserted value's bucket, Clear/ClearRetain/TruncateTo reset
// or rebuild, and the partition-mode transitions of shard.go/physshard.go
// carry the registration with the relation.
//
// Two invariants:
//
//   - Total always equals the relation's Len() (per registered column), in
//     every shard layout and across every mode transition — the property
//     TestHistogramInvariants pins.
//   - Histogram maintenance never touches a mutation counter. Like index
//     registration, building or updating histograms leaves Mutations() and
//     ShardMutations() byte-identical to a histogram-free run, so the drift
//     totals the plan cache's freshness policy observes are unperturbed
//     (asserted by the differential harness's drift-increment comparison).
//
// The bucketing is a fixed-width hash histogram: HistBuckets counters
// indexed by an avalanche mix of the value (the same mix ShardOf uses, with
// an independent bucket count so histogram buckets do not alias shard
// buckets). Equi-depth boundaries would need periodic re-binning — a hash
// histogram is maintainable in O(1) per insert and overlap between two hash
// histograms is computed bucket-wise, which is all the join-size estimate
// needs.

// HistBuckets is the fixed bucket count of every column histogram. 64 keeps
// a histogram copy at 260 bytes (stack-friendly for readers) while giving
// the overlap estimate enough resolution to separate disjoint and skewed
// join-key domains.
const HistBuckets = 64

// Histogram is one column's value-distribution summary: Counts[b] tuples
// whose column value hashes to bucket b, Total their sum. Readers receive
// copies (HistogramOf), so the type is safe to pass by value.
type Histogram struct {
	Counts [HistBuckets]uint32
	Total  uint64
}

// HistBucketOf returns the histogram bucket of value v: the 32-bit avalanche
// mix of ShardOf reduced mod HistBuckets, so consecutive integer keys spread
// evenly.
func HistBucketOf(v Value) int {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return int(x % HistBuckets)
}

// add counts one inserted value.
func (h *Histogram) add(v Value) {
	h.Counts[HistBucketOf(v)]++
	h.Total++
}

// Overlap returns the fraction of h's rows whose bucket is non-empty in
// other — the histogram-overlap join selectivity: scanning h's relation
// first, only that fraction of its rows can find any join partner in other's
// column. 0 when h is empty (nothing to scan) and 1 when every populated
// bucket of h is also populated in other.
func (h Histogram) Overlap(other Histogram) float64 {
	if h.Total == 0 {
		return 0
	}
	var hit uint64
	for b, c := range h.Counts {
		if other.Counts[b] > 0 {
			hit += uint64(c)
		}
	}
	return float64(hit) / float64(h.Total)
}

// BuildHistogram registers (and backfills) a value-distribution histogram on
// column col. Like BuildIndex the registration survives Clear (counts are
// reset, the histogram stays) and is propagated through every shard-layout
// transition; on a physically sharded relation the counts live per bucket
// sub-relation and the parent keeps an empty registration so HasHistogram
// and mode transitions keep answering.
func (r *Relation) BuildHistogram(col int) {
	if col < 0 || col >= r.arity {
		panic("storage: histogram column out of range")
	}
	if r.histograms == nil {
		r.histograms = make(map[int]*Histogram)
	}
	if _, ok := r.histograms[col]; ok {
		return
	}
	if r.subs != nil {
		for _, s := range r.subs {
			s.BuildHistogram(col)
		}
		r.histograms[col] = &Histogram{}
		return
	}
	h := &Histogram{}
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		h.add(r.Row(row)[col])
	}
	r.histograms[col] = h
}

// HasHistogram reports whether a histogram is registered on column col.
func (r *Relation) HasHistogram(col int) bool {
	_, ok := r.histograms[col]
	return ok
}

// HistogramOf returns a copy of column col's histogram, or ok=false when
// none is registered. On a physically sharded relation it sums the per-bucket
// histograms, so Total equals Len() in every layout.
func (r *Relation) HistogramOf(col int) (Histogram, bool) {
	if _, ok := r.histograms[col]; !ok {
		return Histogram{}, false
	}
	if r.subs != nil {
		var sum Histogram
		for _, s := range r.subs {
			if sh, ok := s.histograms[col]; ok {
				for b, c := range sh.Counts {
					sum.Counts[b] += c
				}
				sum.Total += sh.Total
			}
		}
		return sum, true
	}
	return *r.histograms[col], true
}

// ShardHistogram returns a copy of bucket s's histogram of column col — the
// per-shard distribution statistic. Per-bucket histograms are maintained only
// by the physical layout (each bucket sub-relation owns its counts); an
// unpartitioned relation reads as a single bucket holding everything, and the
// row-id view layouts report ok=false rather than an estimate.
func (r *Relation) ShardHistogram(s, col int) (Histogram, bool) {
	if r.subs != nil {
		return r.subs[s].HistogramOf(col)
	}
	if r.shardCount == 0 {
		return r.HistogramOf(col)
	}
	return Histogram{}, false
}

// histInsert counts a freshly inserted tuple in every registered histogram.
// Callers own the counter accounting — this never touches muts.
func (r *Relation) histInsert(t []Value) {
	for col, h := range r.histograms {
		h.add(t[col])
	}
}

// histReset zeroes every registered histogram in place (registrations kept).
func (r *Relation) histReset() {
	for _, h := range r.histograms {
		*h = Histogram{}
	}
}

// BuildHistograms registers histograms on the given columns across all three
// relations, so the optimizer's overlap estimate works regardless of which
// database an atom reads (mirroring BuildIndexes).
func (p *PredicateDB) BuildHistograms(cols []int) {
	for _, c := range cols {
		p.Derived.BuildHistogram(c)
		p.DeltaKnown.BuildHistogram(c)
		p.DeltaNew.BuildHistogram(c)
	}
}
