package storage

import (
	"math/rand"
	"sync"
	"testing"
)

// recount rebuilds column col's histogram from the relation's live content —
// the ground truth every incrementally maintained histogram must match.
func recount(r *Relation, col int) Histogram {
	var h Histogram
	r.Each(func(row []Value) bool {
		h.add(row[col])
		return true
	})
	return h
}

// histCheck asserts the maintenance invariant on every given column: the
// histogram exists, Total equals Len(), the bucket counts sum to Total, and
// the distribution matches an exact recount of the live content.
func histCheck(t *testing.T, step string, r *Relation, cols ...int) {
	t.Helper()
	for _, c := range cols {
		h, ok := r.HistogramOf(c)
		if !ok {
			t.Fatalf("%s: col %d histogram missing", step, c)
		}
		if int(h.Total) != r.Len() {
			t.Fatalf("%s: col %d Total %d, Len %d", step, c, h.Total, r.Len())
		}
		var sum uint64
		for _, n := range h.Counts {
			sum += uint64(n)
		}
		if sum != h.Total {
			t.Fatalf("%s: col %d bucket sum %d, Total %d", step, c, sum, h.Total)
		}
		if want := recount(r, c); want != h {
			t.Fatalf("%s: col %d distribution diverged from recount", step, c)
		}
	}
}

// TestHistogramInvariants drives an identical randomized operation sequence —
// inserts, duplicate inserts, Clear, ClearRetain, TruncateTo — through a
// flat, a view-sharded, a split-dedup, and a physically sharded relation with
// histograms registered on both columns, asserting after every step that each
// histogram's Total equals the relation cardinality and its distribution
// matches an exact recount. A histogram-free twin runs the same sequence to
// pin the second invariant: maintenance never perturbs the mutation counter.
func TestHistogramInvariants(t *testing.T) {
	layouts := []struct {
		name  string
		setup func(r *Relation)
	}{
		{"flat", func(r *Relation) {}},
		{"view", func(r *Relation) { r.SetShardKey(4, 0) }},
		{"split", func(r *Relation) { r.SetShardKeySplit(4, 0) }},
		{"physical", func(r *Relation) { r.SetShardKeyPhysical(4, 0) }},
	}
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			r := NewRelation("p", 2)
			bare := NewRelation("p", 2)
			lay.setup(r)
			lay.setup(bare)
			r.BuildHistogram(0)
			r.BuildHistogram(1)

			rng := rand.New(rand.NewSource(7))
			tuple := func() []Value {
				return []Value{Value(rng.Intn(40)), Value(rng.Intn(40))}
			}
			step := func(name string) {
				t.Helper()
				histCheck(t, name, r, 0, 1)
				if r.Mutations() != bare.Mutations() {
					t.Fatalf("%s: mutation counter %d, histogram-free twin %d",
						name, r.Mutations(), bare.Mutations())
				}
			}
			both := func(f func(x *Relation)) {
				f(r)
				f(bare)
			}

			for i := 0; i < 400; i++ {
				tp := tuple()
				both(func(x *Relation) { x.Insert(tp) })
			}
			step("inserts")
			both(func(x *Relation) { x.ClearRetain() })
			step("ClearRetain")
			for i := 0; i < 200; i++ {
				tp := tuple()
				both(func(x *Relation) { x.Insert(tp) })
			}
			step("reinserts")
			both(func(x *Relation) { x.Clear() })
			step("Clear")
			for i := 0; i < 200; i++ {
				tp := tuple()
				both(func(x *Relation) { x.Insert(tp) })
			}
			if lay.name == "flat" {
				n := r.Len() / 2
				both(func(x *Relation) { x.TruncateTo(n) })
				step("TruncateTo")
			}
			step("final")
		})
	}
}

// TestHistogramModeTransitions walks one relation through every shard-layout
// transition — flat → view → split → physical → flat — with content present,
// asserting the registration and the totals survive each move.
func TestHistogramModeTransitions(t *testing.T) {
	r := NewRelation("p", 2)
	r.BuildHistogram(1)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		r.Insert([]Value{Value(rng.Intn(50)), Value(rng.Intn(50))})
	}
	histCheck(t, "flat", r, 1)
	r.SetShardKey(8, 0)
	histCheck(t, "view", r, 1)
	r.SetShardKeySplit(8, 0)
	histCheck(t, "split", r, 1)
	r.SetShardKeyPhysical(8, 0)
	histCheck(t, "physical", r, 1)
	// Per-shard variant: each bucket's histogram recounts that bucket alone,
	// and the bucket totals sum to the whole.
	var per uint64
	for s := 0; s < 8; s++ {
		h, ok := r.ShardHistogram(s, 1)
		if !ok {
			t.Fatalf("bucket %d: no shard histogram in physical mode", s)
		}
		per += h.Total
	}
	if int(per) != r.Len() {
		t.Fatalf("shard totals sum %d, Len %d", per, r.Len())
	}
	r.SetShardKey(0, 0)
	histCheck(t, "dissolved", r, 1)
}

// TestHistogramSwapClear pins the delta-exchange path: PredicateDB.SwapClear
// exchanges the delta relation structs (histograms travel with them) and
// clears the new DeltaNew, so after the swap DeltaKnown's histogram describes
// the promoted delta and DeltaNew's is empty.
func TestHistogramSwapClear(t *testing.T) {
	cat := NewCatalog()
	id := cat.Declare("p", 2)
	pd := cat.Pred(id)
	pd.BuildHistograms([]int{0, 1})
	for i := 0; i < 100; i++ {
		pd.DeltaNew.Insert([]Value{Value(i % 13), Value(i % 7)})
	}
	want := pd.DeltaNew.Len()
	pd.SwapClear()
	histCheck(t, "DeltaKnown after swap", pd.DeltaKnown, 0, 1)
	histCheck(t, "DeltaNew after swap", pd.DeltaNew, 0, 1)
	if pd.DeltaKnown.Len() != want {
		t.Fatalf("DeltaKnown lost rows: %d, want %d", pd.DeltaKnown.Len(), want)
	}
	h, _ := pd.DeltaNew.HistogramOf(0)
	if h.Total != 0 {
		t.Fatalf("DeltaNew histogram not reset: Total %d", h.Total)
	}
}

// TestHistogramConcurrentShardInsert stress-tests the race contract under
// -race: concurrent ShardInserts into distinct buckets of a physically
// sharded relation update bucket-local histograms without synchronization,
// and the summed parent histogram still satisfies the invariant.
func TestHistogramConcurrentShardInsert(t *testing.T) {
	const shards = 8
	r := NewRelation("p", 2)
	r.SetShardKeyPhysical(shards, 0)
	r.BuildHistogram(0)
	r.BuildHistogram(1)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for v := Value(0); v < 4000; v++ {
				if ShardOf(v, shards) != s {
					continue
				}
				r.ShardInsert(s, []Value{v, v % 17})
			}
		}(s)
	}
	wg.Wait()
	histCheck(t, "concurrent", r, 0, 1)
}
