package storage

import (
	"encoding/binary"
	"fmt"
)

// This file implements the two physically sharded storage modes behind the
// SetShardKey partitioning (see shard.go for the row-id view mode of PR 2):
//
//   - split dedup (SetShardKeySplit): the arena, indexes, and row ids stay
//     global, but the duplicate-elimination set is split into one map per
//     bucket, routed by the shard key. Membership probes — the set
//     difference against the iteration-frozen Derived that every parallel
//     worker performs per candidate tuple — touch a bucket-local map.
//
//   - physical (SetShardKeyPhysical): every bucket is a fully independent
//     sub-relation with its own arena slab, dedup set, scratch buffer, hash
//     indexes, and mutation counter. Two goroutines inserting into
//     different buckets share no state at all, which is what lets the
//     merge barrier fold worker delta buffers into DeltaNew as one
//     concurrent task per bucket instead of one row at a time under a
//     single writer (the Amdahl bound this refactor removes).
//
// Both modes preserve the relation-level mutation counter exactly: for any
// operation sequence, Mutations() reports the same value the flat layout
// would have, so the drift totals the plan cache's freshness policy
// observes are byte-identical across {off, view, split, physical} — the
// same invariant PR 2 established for the view mode, extended here.
// Per-bucket counters stay monotone across arbitrary mode transitions.

// resetContents drops all tuples and index entries without touching any
// mutation counter — the caller owns the accounting. retain keeps the
// allocated capacity (in-place map clears, truncated slices) for consumers
// that immediately refill, e.g. worker delta buffers. A pinned arena (an
// epoch view references it — physical buckets are pinned individually by
// PinRows) is detached to a fresh slab instead of truncated in place, so
// the refill never rewrites rows the view still serves.
func (r *Relation) resetContents(retain bool) {
	if !r.detachPinned(0) {
		r.arena = r.arena[:0]
	}
	r.histReset()
	r.countClear(retain)
	if retain {
		clear(r.set)
		clear(r.set64)
		for s := range r.dedupShards {
			clear(r.dedupShards[s])
		}
		for s := range r.dedup64Shards {
			clear(r.dedup64Shards[s])
		}
		for _, idx := range r.indexes {
			clear(idx)
		}
		for _, ci := range r.composites {
			clear(ci.m)
		}
		return
	}
	r.freshDedup(0)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
}

// maxObservableCounter returns a value at least as large as the relation
// counter and every currently observable per-bucket counter, in any mode —
// the floor new per-bucket counters must be bumped past so that equal
// observations never bracket a mode transition.
func (r *Relation) maxObservableCounter() uint64 {
	m := r.Mutations()
	for s := 0; s < r.shardCount; s++ {
		if c := r.ShardMutations(s); c > m {
			m = c
		}
	}
	for _, c := range r.shardMuts {
		if c > m {
			m = c
		}
	}
	return m
}

// SetShardKeySplit registers the split-dedup partition: the row-id bucket
// views of SetShardKey plus a per-bucket duplicate-elimination map, so
// Contains probes (and insert dedup) touch only the tuple's bucket.
// Idempotent for an identical configuration; shards < 2 removes the
// partition entirely.
func (r *Relation) SetShardKeySplit(shards, col int) {
	if shards < 2 {
		r.SetShardKey(shards, col)
		return
	}
	if (r.dedupShards != nil || r.dedup64Shards != nil) && r.subs == nil && r.shardCount == shards && r.shardCol == col {
		return
	}
	r.SetShardKey(shards, col) // dissolves other modes, builds the views
	// Distribute the existing dedup keys. Packed keys hold the tuple
	// columns at fixed offsets (little-endian bytes, or uint64 halves for
	// the arity <= 2 fast path), so the shard key column is decodable
	// without touching the arena.
	if r.set64 != nil {
		r.dedup64Shards = make([]map[uint64]struct{}, shards)
		for s := range r.dedup64Shards {
			r.dedup64Shards[s] = make(map[uint64]struct{})
		}
		for key := range r.set64 {
			v := Value(uint32(key >> (32 * uint(col))))
			r.dedup64Shards[ShardOf(v, shards)][key] = struct{}{}
		}
		r.set64 = make(map[uint64]struct{})
		return
	}
	r.dedupShards = make([]map[string]struct{}, shards)
	for s := range r.dedupShards {
		r.dedupShards[s] = make(map[string]struct{})
	}
	for key := range r.set {
		v := Value(binary.LittleEndian.Uint32([]byte(key)[4*col:]))
		r.dedupShards[ShardOf(v, shards)][key] = struct{}{}
	}
	r.set = make(map[string]struct{})
}

// unsplitDedup folds the per-bucket dedup maps back into the single set.
func (r *Relation) unsplitDedup() {
	if r.dedup64Shards != nil {
		total := 0
		for _, m := range r.dedup64Shards {
			total += len(m)
		}
		r.set64 = make(map[uint64]struct{}, total)
		for _, m := range r.dedup64Shards {
			for k := range m {
				r.set64[k] = struct{}{}
			}
		}
		r.dedup64Shards = nil
		return
	}
	if r.dedupShards == nil {
		return
	}
	total := 0
	for _, m := range r.dedupShards {
		total += len(m)
	}
	r.set = make(map[string]struct{}, total)
	for _, m := range r.dedupShards {
		for k := range m {
			r.set[k] = struct{}{}
		}
	}
	r.dedupShards = nil
}

// SetShardKeyPhysical converts the relation to the physical mode: shards
// independent sub-relations keyed by hash of column col. Content and
// Mutations() are preserved exactly; per-bucket counters jump past every
// previously observable value (bucket contents are reassigned wholesale).
// Idempotent for an identical configuration; shards < 2 removes the
// partition.
func (r *Relation) SetShardKeyPhysical(shards, col int) {
	if shards < 2 {
		r.SetShardKey(shards, col)
		return
	}
	if col < 0 || col >= r.arity {
		panic("storage: shard key column out of range")
	}
	if r.subs != nil && r.shardCount == shards && r.shardCol == col {
		return
	}
	base := r.maxObservableCounter() + 1
	if r.subs != nil {
		r.dissolvePhys()
	}
	r.unsplitDedup()
	target := r.muts

	subs := make([]*Relation, shards)
	for s := range subs {
		sub := NewRelation(fmt.Sprintf("%s·%d", r.name, s), r.arity)
		for c := range r.indexes {
			sub.BuildIndex(c)
		}
		for _, ci := range r.composites {
			sub.BuildCompositeIndex(ci.cols)
		}
		for c := range r.histograms {
			sub.BuildHistogram(c)
		}
		if r.countsOn {
			sub.EnableCounts()
		}
		subs[s] = sub
	}
	rows := 0
	for off := 0; off < len(r.arena); off += r.arity {
		t := r.arena[off : off+r.arity : off+r.arity]
		sub := subs[ShardOf(t[col], shards)]
		sub.Insert(t)
		if r.countsOn {
			// The re-insert recorded count 1; carry the row's real assertion
			// count into the bucket with it.
			sub.counts[len(sub.counts)-1] = r.counts[rows]
		}
		rows++
	}
	r.subs = subs
	r.shardCount, r.shardCol = shards, col
	r.shardRows = nil
	r.shardMuts = make([]uint64, shards)
	for s := range r.shardMuts {
		r.shardMuts[s] = base
	}
	// The re-inserts above advanced the sub counters by one per row; deduct
	// them from the parent component so the observable total is unchanged
	// (every arena row was one successful insert in the flat history too).
	r.muts = target - uint64(rows)
	r.arena = nil
	r.freshDedup(0)
	for c := range r.indexes {
		r.indexes[c] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	// The flat slab was abandoned wholesale (rows moved into the buckets),
	// which satisfies any pinned epoch view without a copy.
	r.pinned = false
	// Histogram counts moved into the bucket sub-relations with the rows;
	// the parent keeps an empty registration (HistogramOf sums the subs),
	// and likewise the reference counts moved with them.
	r.histReset()
	r.countClear(false)
}

// dissolvePhys converts a physical relation back to the flat layout,
// preserving content and the observable mutation total. The per-bucket
// observables are parked in shardMuts so any later partition registration
// bumps past them.
func (r *Relation) dissolvePhys() {
	target := r.Mutations()
	for s := range r.subs {
		r.shardMuts[s] += r.subs[s].muts
	}
	subs := r.subs
	r.subs = nil
	r.shardCount, r.shardCol = 0, 0
	r.shardRows = nil
	r.arena = r.arena[:0]
	r.freshDedup(0)
	for col := range r.indexes {
		r.indexes[col] = make(map[Value][]int32)
	}
	for _, ci := range r.composites {
		ci.m = make(map[string][]int32)
	}
	r.histReset() // the re-inserts below rebuild the parent counts
	r.countClear(false)
	for _, sub := range subs {
		i := 0
		sub.Each(func(row []Value) bool {
			r.Insert(row)
			if r.countsOn && sub.countsOn {
				r.counts[len(r.counts)-1] = sub.counts[i]
			}
			i++
			return true
		})
	}
	r.muts = target
}

// PhysSubs returns the per-bucket sub-relations of a physically sharded
// relation, or nil in every other mode. Executors use it to serve scans and
// probes bucket-locally (per-bucket row ids are meaningless to the parent).
// Callers must not mutate the slice or insert through it.
//
// Sub-relation identity is stable for the lifetime of a physical
// configuration: Clear, ClearRetain, and an idempotent re-registration of
// the identical layout (the per-Run ConfigureShardsPhysical path) empty or
// keep the existing sub-relations in place, never reallocate them, and the
// parent struct carries its subs through SwapClear's pointer exchange.
// Compiled units nonetheless resolve PhysSubs per invocation rather than
// capturing the slice — a changed layout dissolves and rebuilds the
// sub-relations, and resolving late is what keeps a cached unit valid
// across partition-mode transitions (the unit fingerprint only pins the
// bucket count its spans were sized for).
func (r *Relation) PhysSubs() []*Relation { return r.subs }

// ProbeSpan returns the sub-relation index range [lo, hi) a probe for
// col == v must visit on a physically sharded relation: exactly the key's
// bucket when col is the shard key column (rows with other keys cannot live
// elsewhere), every bucket otherwise. The routing rule lives here so every
// executor and compiled backend shares one implementation. Meaningless when
// PhysSubs() is nil.
func (r *Relation) ProbeSpan(col int, v Value) (lo, hi int) {
	if r.subs == nil {
		return 0, 0
	}
	if col == r.shardCol {
		b := ShardOf(v, r.shardCount)
		return b, b + 1
	}
	return 0, len(r.subs)
}

// ProbeSpanComposite is ProbeSpan for a composite probe: when any probed
// column is the shard key column, its key routes to one bucket.
func (r *Relation) ProbeSpanComposite(cols []int, vals []Value) (lo, hi int) {
	if r.subs == nil {
		return 0, 0
	}
	for ci, c := range cols {
		if c == r.shardCol {
			b := ShardOf(vals[ci], r.shardCount)
			return b, b + 1
		}
	}
	return 0, len(r.subs)
}

// EachProbe visits every row with row[col] == v until f returns false,
// through the best access path the relation's mode offers: the global hash
// index (or a filtered scan when none is registered) on a flat or
// view-partitioned relation, per-bucket indexes routed by ProbeSpan on a
// physical one. Every executor and compiled backend probes through this one
// implementation, so the index-miss degradation and the bucket routing
// cannot drift apart between engines.
func (r *Relation) EachProbe(col int, v Value, f func(row []Value) bool) {
	if r.subs != nil {
		lo, hi := r.ProbeSpan(col, v)
		r.EachShardRangeProbe(lo, hi, col, v, f)
		return
	}
	if rows, ok := r.Probe(col, v); ok {
		for _, ri := range rows {
			if !f(r.Row(ri)) {
				return
			}
		}
		return
	}
	r.Each(func(row []Value) bool {
		if row[col] == v {
			return f(row)
		}
		return true
	})
}

// EachShardRangeProbe is EachProbe restricted to buckets [lo, hi) of a
// physically sharded relation — the probe surface of a bucket-span task
// (callers intersect ProbeSpan with their task span). On a non-physical
// relation it falls back to the unrestricted EachProbe.
func (r *Relation) EachShardRangeProbe(lo, hi, col int, v Value, f func(row []Value) bool) {
	if r.subs == nil {
		r.EachProbe(col, v, f)
		return
	}
	for s := lo; s < hi; s++ {
		sub := r.subs[s]
		rows, ok := sub.Probe(col, v)
		if !ok {
			stopped := false
			sub.Each(func(row []Value) bool {
				if row[col] == v && !f(row) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
			continue
		}
		for _, ri := range rows {
			if !f(sub.Row(ri)) {
				return
			}
		}
	}
}

// EachProbeComposite is EachProbe for a composite key over cols/vals.
func (r *Relation) EachProbeComposite(cols []int, vals []Value, f func(row []Value) bool) {
	if r.subs != nil {
		lo, hi := r.ProbeSpanComposite(cols, vals)
		r.EachShardRangeProbeComposite(lo, hi, cols, vals, f)
		return
	}
	if rows, ok := r.ProbeComposite(cols, vals); ok {
		for _, ri := range rows {
			if !f(r.Row(ri)) {
				return
			}
		}
		return
	}
	r.Each(func(row []Value) bool {
		if coversKey(row, cols, vals) {
			return f(row)
		}
		return true
	})
}

// EachShardRangeProbeComposite is EachShardRangeProbe for a composite key.
func (r *Relation) EachShardRangeProbeComposite(lo, hi int, cols []int, vals []Value, f func(row []Value) bool) {
	if r.subs == nil {
		r.EachProbeComposite(cols, vals, f)
		return
	}
	for s := lo; s < hi; s++ {
		sub := r.subs[s]
		rows, ok := sub.ProbeComposite(cols, vals)
		if !ok {
			stopped := false
			sub.Each(func(row []Value) bool {
				if coversKey(row, cols, vals) && !f(row) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
			continue
		}
		for _, ri := range rows {
			if !f(sub.Row(ri)) {
				return
			}
		}
	}
}

// coversKey reports whether row matches the composite equality key.
func coversKey(row []Value, cols []int, vals []Value) bool {
	for ci, c := range cols {
		if row[c] != vals[ci] {
			return false
		}
	}
	return true
}

// ShardInsert inserts t into bucket s of a physically sharded relation,
// returning true if it was not already present. The caller must route
// consistently — s == ShardOf(t[shard key column], shard count) — which the
// merge barrier guarantees by draining bucket s of worker buffers
// partitioned with the identical key. Distinct buckets share no state, so
// concurrent ShardInserts into different buckets are race-free; two
// goroutines must never target the same bucket. Falls back to a routed
// Insert when the relation is not physical.
func (r *Relation) ShardInsert(s int, t []Value) bool {
	if r.subs == nil {
		return r.Insert(t)
	}
	return r.subs[s].Insert(t)
}

// EachShardRange calls f for every tuple of buckets [lo, hi) until f
// returns false — the scan surface of a bucket-span task (the adaptive
// fan-out hands each task a contiguous range of buckets when the delta is
// too small to justify one task per bucket). On an unpartitioned relation
// it visits every tuple.
func (r *Relation) EachShardRange(lo, hi int, f func(row []Value) bool) {
	if r.shardCount == 0 {
		r.Each(f)
		return
	}
	stopped := false
	g := func(row []Value) bool {
		if !f(row) {
			stopped = true
			return false
		}
		return true
	}
	for s := lo; s < hi && !stopped; s++ {
		r.EachShard(s, g)
	}
}
