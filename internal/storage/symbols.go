// Package storage implements Carac's pluggable relational layer (paper §V-D):
// interned values, tuple relations with deduplication and incremental hash
// indexes, and the per-predicate Derived / DeltaKnown / DeltaNew database
// split that enables the semi-naive fixpoint loop, flexible JIT safe points,
// and cheap swap/clear between iterations.
//
// All tuple fields are 32-bit values, mirroring the paper's storage layout
// ("each tuple contains 2 32-bit integers"). Integer constants represent
// themselves and must be non-negative; string constants are interned to
// negative ids by a SymbolTable so the two domains can never collide.
package storage

import (
	"fmt"
	"sync"
)

// Value is a single tuple field: either a non-negative integer constant that
// represents itself, or a negative id produced by SymbolTable interning.
type Value = int32

// SymbolTable interns string constants into negative Values and resolves
// them back. The zero value is not usable; call NewSymbolTable.
//
// Interned ids start at -1 and decrease, so they never collide with integer
// constants, which are restricted to be non-negative.
//
// The table is safe for concurrent use: one table is shared by every serving
// session's catalog (so a symbol means the same Value in every epoch), which
// puts reader lookups from concurrent sessions on the same maps the single
// writer keeps interning into.
type SymbolTable struct {
	mu     sync.RWMutex
	byName map[string]Value
	names  []string
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{byName: make(map[string]Value)}
}

// Intern returns the Value for s, assigning a fresh negative id on first use.
func (t *SymbolTable) Intern(s string) Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.byName[s]; ok {
		return v
	}
	t.names = append(t.names, s)
	v := Value(-len(t.names)) // first symbol gets -1
	t.byName[s] = v
	return v
}

// Lookup returns the Value for s without interning. ok is false if s has
// never been interned.
func (t *SymbolTable) Lookup(s string) (v Value, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok = t.byName[s]
	return v, ok
}

// Name resolves an interned id back to its string. It panics if v is not an
// interned symbol id from this table.
func (t *SymbolTable) Name(v Value) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := int(-v) - 1
	if v >= 0 || i >= len(t.names) {
		panic(fmt.Sprintf("storage: value %d is not an interned symbol", v))
	}
	return t.names[i]
}

// IsSymbol reports whether v is an interned symbol id (as opposed to an
// integer constant).
func IsSymbol(v Value) bool { return v < 0 }

// Len returns the number of interned symbols.
func (t *SymbolTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Format renders v for human output: the symbol string if v is interned in
// t, the decimal integer otherwise.
func (t *SymbolTable) Format(v Value) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if IsSymbol(v) {
		i := int(-v) - 1
		if i < len(t.names) {
			return t.names[i]
		}
	}
	return fmt.Sprintf("%d", v)
}
