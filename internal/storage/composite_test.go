package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompositeIndexBasic(t *testing.T) {
	r := NewRelation("r", 3)
	r.BuildCompositeIndex([]int{0, 2})
	r.Insert([]Value{1, 9, 2})
	r.Insert([]Value{1, 8, 2})
	r.Insert([]Value{1, 9, 3})
	rows, ok := r.ProbeComposite([]int{0, 2}, []Value{1, 2})
	if !ok || len(rows) != 2 {
		t.Fatalf("probe = %v, %v", rows, ok)
	}
	rows, ok = r.ProbeComposite([]int{0, 2}, []Value{1, 3})
	if !ok || len(rows) != 1 || rows[0] != 2 {
		t.Fatalf("probe = %v, %v", rows, ok)
	}
	if _, ok := r.ProbeComposite([]int{0, 1}, []Value{1, 9}); ok {
		t.Fatal("unregistered column set answered a probe")
	}
}

func TestCompositeIndexColumnOrderInsensitive(t *testing.T) {
	r := NewRelation("r", 3)
	r.BuildCompositeIndex([]int{2, 0})
	if !r.HasCompositeIndex([]int{0, 2}) {
		t.Fatal("registration should be order-insensitive")
	}
	r.Insert([]Value{5, 0, 7})
	// Probe columns must be ascending; vals parallel.
	rows, ok := r.ProbeComposite([]int{0, 2}, []Value{5, 7})
	if !ok || len(rows) != 1 {
		t.Fatalf("probe = %v, %v", rows, ok)
	}
}

func TestCompositeIndexBackfillVsIncremental(t *testing.T) {
	inc := NewRelation("inc", 2)
	inc.BuildCompositeIndex([]int{0, 1})
	back := NewRelation("back", 2)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		tu := []Value{Value(rng.Intn(10)), Value(rng.Intn(10))}
		inc.Insert(tu)
		back.Insert(tu)
	}
	back.BuildCompositeIndex([]int{0, 1})
	for a := Value(0); a < 10; a++ {
		for b := Value(0); b < 10; b++ {
			ra, _ := inc.ProbeComposite([]int{0, 1}, []Value{a, b})
			rb, _ := back.ProbeComposite([]int{0, 1}, []Value{a, b})
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("key (%d,%d): incremental %v != backfill %v", a, b, ra, rb)
			}
		}
	}
}

func TestCompositeIndexSurvivesClearAndTruncate(t *testing.T) {
	r := NewRelation("r", 2)
	r.BuildCompositeIndex([]int{0, 1})
	r.Insert([]Value{1, 2})
	r.Clear()
	r.Insert([]Value{3, 4})
	rows, ok := r.ProbeComposite([]int{0, 1}, []Value{3, 4})
	if !ok || len(rows) != 1 {
		t.Fatalf("after Clear: %v %v", rows, ok)
	}
	r.Insert([]Value{5, 6})
	r.TruncateTo(1)
	if rows, _ := r.ProbeComposite([]int{0, 1}, []Value{5, 6}); len(rows) != 0 {
		t.Fatal("TruncateTo left stale composite entries")
	}
	if rows, _ := r.ProbeComposite([]int{0, 1}, []Value{3, 4}); len(rows) != 1 {
		t.Fatal("TruncateTo dropped surviving composite entries")
	}
}

func TestCompositeIndexPanics(t *testing.T) {
	r := NewRelation("r", 2)
	for _, bad := range [][]int{{0}, {0, 5}, {1, 1}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BuildCompositeIndex(%v) should panic", bad)
				}
			}()
			r.BuildCompositeIndex(bad)
		}()
	}
}

func TestCompositeIndexesListing(t *testing.T) {
	r := NewRelation("r", 3)
	r.BuildCompositeIndex([]int{1, 2})
	r.BuildCompositeIndex([]int{0, 1, 2})
	got := r.CompositeIndexes()
	want := [][]int{{1, 2}, {0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CompositeIndexes = %v", got)
	}
}

func TestDistinctCount(t *testing.T) {
	r := NewRelation("r", 2)
	if r.DistinctCount(0) != -1 {
		t.Fatal("unindexed column should report -1")
	}
	r.BuildIndex(0)
	for i := Value(0); i < 30; i++ {
		r.Insert([]Value{i % 5, i})
	}
	if got := r.DistinctCount(0); got != 5 {
		t.Fatalf("DistinctCount = %d, want 5", got)
	}
}

// Property: composite probe answers exactly the tuples a filter scan finds.
func TestCompositeProbeMatchesScanProperty(t *testing.T) {
	f := func(tuples [][2]int8, a, b int8) bool {
		r := NewRelation("p", 2)
		r.BuildCompositeIndex([]int{0, 1})
		for _, tp := range tuples {
			r.Insert([]Value{Value(tp[0]), Value(tp[1])})
		}
		rows, ok := r.ProbeComposite([]int{0, 1}, []Value{Value(a), Value(b)})
		if !ok {
			return false
		}
		var scan []int32
		for i := int32(0); i < int32(r.Len()); i++ {
			row := r.Row(i)
			if row[0] == Value(a) && row[1] == Value(b) {
				scan = append(scan, i)
			}
		}
		return reflect.DeepEqual(rows, scan) || (len(rows) == 0 && len(scan) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
