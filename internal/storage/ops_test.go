package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mkRel(t *testing.T, name string, arity int, tuples ...[]Value) *Relation {
	t.Helper()
	r := NewRelation(name, arity)
	for _, tu := range tuples {
		r.Insert(tu)
	}
	return r
}

func TestSelectInto(t *testing.T) {
	src := mkRel(t, "s", 2, []Value{1, 10}, []Value{2, 20}, []Value{3, 30})
	dst := NewRelation("d", 2)
	SelectInto(dst, src, func(row []Value) bool { return row[1] >= 20 })
	if dst.Len() != 2 || !dst.Contains([]Value{2, 20}) || !dst.Contains([]Value{3, 30}) {
		t.Fatalf("select result wrong: %v", dst.Snapshot())
	}
}

func TestProjectInto(t *testing.T) {
	src := mkRel(t, "s", 3, []Value{1, 2, 3}, []Value{4, 2, 6})
	dst := NewRelation("d", 2)
	ProjectInto(dst, src, []int{2, 1})
	want := [][]Value{{3, 2}, {6, 2}}
	got := dst.Snapshot()
	sortTuples(got)
	sortTuples(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("project = %v, want %v", got, want)
	}
}

func TestProjectIntoDeduplicates(t *testing.T) {
	src := mkRel(t, "s", 2, []Value{1, 7}, []Value{2, 7})
	dst := NewRelation("d", 1)
	ProjectInto(dst, src, []int{1})
	if dst.Len() != 1 {
		t.Fatalf("projection should deduplicate, len=%d", dst.Len())
	}
}

func TestUnionInto(t *testing.T) {
	a := mkRel(t, "a", 1, []Value{1}, []Value{2})
	b := mkRel(t, "b", 1, []Value{2}, []Value{3})
	dst := NewRelation("d", 1)
	UnionInto(dst, a, b)
	if dst.Len() != 3 {
		t.Fatalf("union len = %d, want 3", dst.Len())
	}
}

func TestJoinIntoBasic(t *testing.T) {
	// edge(x,y) ⋈_{y=x'} edge(x',y')
	e := mkRel(t, "e", 2, []Value{1, 2}, []Value{2, 3}, []Value{2, 4})
	dst := NewRelation("d", 4)
	JoinInto(dst, e, e, 1, 0)
	want := [][]Value{{1, 2, 2, 3}, {1, 2, 2, 4}, {2, 3, 3, 0}}
	_ = want
	if dst.Len() != 2 {
		t.Fatalf("join len = %d, want 2: %v", dst.Len(), dst.Snapshot())
	}
	if !dst.Contains([]Value{1, 2, 2, 3}) || !dst.Contains([]Value{1, 2, 2, 4}) {
		t.Fatalf("join missing rows: %v", dst.Snapshot())
	}
}

func TestJoinIntoUsesIndexWhenPresent(t *testing.T) {
	l := mkRel(t, "l", 2, []Value{1, 5}, []Value{2, 6})
	r := NewRelation("r", 2)
	r.BuildIndex(0)
	r.Insert([]Value{5, 100})
	r.Insert([]Value{6, 200})
	r.Insert([]Value{7, 300})
	dst := NewRelation("d", 4)
	JoinInto(dst, l, r, 1, 0)
	if dst.Len() != 2 {
		t.Fatalf("indexed join len = %d, want 2", dst.Len())
	}
}

func TestDiffInto(t *testing.T) {
	a := mkRel(t, "a", 1, []Value{1}, []Value{2}, []Value{3})
	b := mkRel(t, "b", 1, []Value{2})
	dst := NewRelation("d", 1)
	DiffInto(dst, a, b)
	if dst.Len() != 2 || dst.Contains([]Value{2}) {
		t.Fatalf("diff = %v", dst.Snapshot())
	}
}

func TestIteratorPullMatchesPush(t *testing.T) {
	r := NewRelation("r", 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		r.Insert([]Value{Value(rng.Intn(30)), Value(rng.Intn(30))})
	}
	var push [][]Value
	r.Each(func(row []Value) bool {
		push = append(push, append([]Value(nil), row...))
		return true
	})
	var pull [][]Value
	it := r.Iter()
	for row, ok := it.Next(); ok; row, ok = it.Next() {
		pull = append(pull, append([]Value(nil), row...))
	}
	if !reflect.DeepEqual(push, pull) {
		t.Fatal("pull-based iteration disagrees with push-based")
	}
}

func TestIteratorReset(t *testing.T) {
	r := mkRel(t, "r", 1, []Value{1}, []Value{2})
	it := r.Iter()
	it.Next()
	it.Next()
	if _, ok := it.Next(); ok {
		t.Fatal("iterator should be exhausted")
	}
	it.Reset()
	row, ok := it.Next()
	if !ok || row[0] != 1 {
		t.Fatal("Reset did not rewind")
	}
}

// Property: join is commutative up to column permutation.
func TestJoinCommutativityProperty(t *testing.T) {
	f := func(ls, rs [][2]int8) bool {
		l := NewRelation("l", 2)
		r := NewRelation("r", 2)
		for _, tp := range ls {
			l.Insert([]Value{Value(tp[0]), Value(tp[1])})
		}
		for _, tp := range rs {
			r.Insert([]Value{Value(tp[0]), Value(tp[1])})
		}
		lr := NewRelation("lr", 4)
		JoinInto(lr, l, r, 1, 0)
		rl := NewRelation("rl", 4)
		JoinInto(rl, r, l, 0, 1)
		if lr.Len() != rl.Len() {
			return false
		}
		ok := true
		lr.Each(func(row []Value) bool {
			if !rl.Contains([]Value{row[2], row[3], row[0], row[1]}) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: A ∖ B followed by union with (A ∩ B) reconstructs A.
func TestDiffUnionReconstructionProperty(t *testing.T) {
	f := func(as, bs []int8) bool {
		a := NewRelation("a", 1)
		b := NewRelation("b", 1)
		for _, v := range as {
			a.Insert([]Value{Value(v)})
		}
		for _, v := range bs {
			b.Insert([]Value{Value(v)})
		}
		diff := NewRelation("diff", 1)
		DiffInto(diff, a, b)
		inter := NewRelation("inter", 1)
		SelectInto(inter, a, func(row []Value) bool { return b.Contains(row) })
		recon := NewRelation("recon", 1)
		UnionInto(recon, diff, inter)
		return relEqual(recon, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
