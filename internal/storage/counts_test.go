package storage

import "testing"

// layouts configures one relation per storage layout so count and deletion
// semantics are pinned across all four (the same axis the shard-layout tests
// use): flat, row-id view, split dedup, physical sub-relations.
var countLayouts = []struct {
	name string
	set  func(r *Relation)
}{
	{"flat", func(*Relation) {}},
	{"view", func(r *Relation) { r.SetShardKey(4, 0) }},
	{"split", func(r *Relation) { r.SetShardKeySplit(4, 0) }},
	{"physical", func(r *Relation) { r.SetShardKeyPhysical(4, 0) }},
}

func TestCountsAcrossLayouts(t *testing.T) {
	for _, lo := range countLayouts {
		t.Run(lo.name, func(t *testing.T) {
			r := NewRelation("edge", 2)
			r.BuildIndex(0)
			r.BuildHistogram(0)
			lo.set(r)
			r.EnableCounts()
			for i := 0; i < 10; i++ {
				if !r.IncRef([]Value{Value(i), Value(i + 1)}) {
					t.Fatalf("IncRef of fresh tuple %d reported present", i)
				}
			}
			// Double-assert tuple 3: count 2, no content change.
			muts := r.Mutations()
			if r.IncRef([]Value{3, 4}) {
				t.Fatal("IncRef of present tuple reported new")
			}
			if r.Mutations() != muts {
				t.Fatal("IncRef on present tuple advanced the mutation counter")
			}
			if c := r.Count([]Value{3, 4}); c != 2 {
				t.Fatalf("Count(3,4) = %d, want 2", c)
			}
			if c := r.Count([]Value{7, 8}); c != 1 {
				t.Fatalf("Count(7,8) = %d, want 1", c)
			}
			// One DecRef: survives at count 1; second reaches zero.
			if rem, ok := r.DecRef([]Value{3, 4}); !ok || rem != 1 {
				t.Fatalf("DecRef #1 = (%d, %v), want (1, true)", rem, ok)
			}
			if rem, ok := r.DecRef([]Value{3, 4}); !ok || rem != 0 {
				t.Fatalf("DecRef #2 = (%d, %v), want (0, true)", rem, ok)
			}
			if _, ok := r.DecRef([]Value{99, 99}); ok {
				t.Fatal("DecRef of absent tuple reported present")
			}
			// Zombie row still present until the batch compaction removes it.
			if !r.Contains([]Value{3, 4}) {
				t.Fatal("zero-count row vanished before DeleteRows")
			}
			removed, _ := r.DeleteRows([][]Value{{3, 4}, {99, 99}}, 0)
			if removed != 1 {
				t.Fatalf("DeleteRows removed %d rows, want 1", removed)
			}
			if r.Contains([]Value{3, 4}) {
				t.Fatal("deleted tuple still present")
			}
			if r.Len() != 9 {
				t.Fatalf("Len = %d after delete, want 9", r.Len())
			}
			// Survivors keep identity, counts, indexes, and the histogram
			// invariant Total == Len.
			for i := 0; i < 10; i++ {
				if i == 3 {
					continue
				}
				tu := []Value{Value(i), Value(i + 1)}
				if !r.Contains(tu) {
					t.Fatalf("survivor %v lost", tu)
				}
				if c := r.Count(tu); c != 1 {
					t.Fatalf("survivor %v count %d, want 1", tu, c)
				}
			}
			if h, ok := r.HistogramOf(0); !ok || h.Total != uint64(r.Len()) {
				t.Fatalf("histogram total %d != Len %d", h.Total, r.Len())
			}
			found := 0
			r.EachProbe(0, 5, func(row []Value) bool { found++; return true })
			if found != 1 {
				t.Fatalf("probe after delete found %d rows, want 1", found)
			}
			// Re-assert the deleted tuple: back with count 1.
			if !r.IncRef([]Value{3, 4}) {
				t.Fatal("re-assert after delete reported present")
			}
			if c := r.Count([]Value{3, 4}); c != 1 {
				t.Fatalf("re-asserted count %d, want 1", c)
			}
		})
	}
}

func TestDeleteRowsBatchAccounting(t *testing.T) {
	for _, lo := range countLayouts {
		t.Run(lo.name, func(t *testing.T) {
			r := NewRelation("edge", 2)
			lo.set(r)
			for i := 0; i < 8; i++ {
				r.Insert([]Value{Value(i), Value(i)})
			}
			before := r.Mutations()
			if removed, _ := r.DeleteRows([][]Value{{100, 100}}, 0); removed != 0 {
				t.Fatalf("removed %d absent rows", removed)
			}
			if r.Mutations() != before {
				t.Fatal("no-op DeleteRows advanced the mutation counter")
			}
			removed, _ := r.DeleteRows([][]Value{{1, 1}, {5, 5}, {6, 6}}, 0)
			if removed != 3 {
				t.Fatalf("removed %d, want 3", removed)
			}
			if got := r.Mutations(); got != before+1 {
				t.Fatalf("batch delete advanced counter by %d, want 1", got-before)
			}
			if r.Len() != 5 {
				t.Fatalf("Len = %d, want 5", r.Len())
			}
		})
	}
}

func TestDeleteRowsBoundary(t *testing.T) {
	r := NewRelation("edge", 2)
	r.EnableCounts()
	for i := 0; i < 6; i++ {
		r.Insert([]Value{Value(i), Value(i)})
	}
	// Ground prefix is rows [0, 4); rows 4 and 5 play derived suffix.
	removed, below := r.DeleteRows([][]Value{{1, 1}, {5, 5}}, 4)
	if removed != 2 || below != 1 {
		t.Fatalf("DeleteRows = (%d, %d), want (2, 1)", removed, below)
	}
	if row, ok := r.RowOf([]Value{2, 2}); !ok || row != 1 {
		t.Fatalf("RowOf(2,2) = (%d, %v) after compaction, want (1, true)", row, ok)
	}
}

func TestDeleteRowsPinnedCopyOnFlip(t *testing.T) {
	r := NewRelation("edge", 2)
	for i := 0; i < 4; i++ {
		r.Insert([]Value{Value(i), Value(i)})
	}
	view := r.PinRows()
	if removed, _ := r.DeleteRows([][]Value{{0, 0}, {2, 2}}, 0); removed != 2 {
		t.Fatal("delete under pin failed")
	}
	// The pinned epoch view must still serve the pre-delete rows verbatim.
	if view.Len() != 4 {
		t.Fatalf("pinned view shrank to %d rows", view.Len())
	}
	for i := 0; i < 4; i++ {
		row := view.Row(i)
		if row[0] != Value(i) || row[1] != Value(i) {
			t.Fatalf("pinned row %d rewritten to %v", i, row)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("relation Len = %d, want 2", r.Len())
	}
}

func TestCountsSurviveLayoutTransitions(t *testing.T) {
	r := NewRelation("fact", 3) // arity 3: packed-string key shape
	r.EnableCounts()
	r.Insert([]Value{1, 2, 3})
	r.IncRef([]Value{1, 2, 3})
	r.IncRef([]Value{1, 2, 3})
	r.Insert([]Value{4, 5, 6})
	mutsBefore := r.Mutations()
	r.SetShardKeyPhysical(4, 0)
	if r.Mutations() != mutsBefore {
		t.Fatal("physical split changed the observable mutation total")
	}
	if c := r.Count([]Value{1, 2, 3}); c != 3 {
		t.Fatalf("count after physical split = %d, want 3", c)
	}
	r.SetShardKey(0, 0) // dissolve back to flat
	if c := r.Count([]Value{1, 2, 3}); c != 3 {
		t.Fatalf("count after dissolve = %d, want 3", c)
	}
	if c := r.Count([]Value{4, 5, 6}); c != 1 {
		t.Fatalf("count of single-assert tuple = %d, want 1", c)
	}
	if rem, ok := r.DecRef([]Value{1, 2, 3}); !ok || rem != 2 {
		t.Fatalf("DecRef after round trip = (%d, %v), want (2, true)", rem, ok)
	}
}

func TestTruncateKeepsCounts(t *testing.T) {
	r := NewRelation("edge", 2)
	r.EnableCounts()
	for i := 0; i < 6; i++ {
		r.Insert([]Value{Value(i), Value(i)})
	}
	r.IncRef([]Value{1, 1})
	r.TruncateTo(3)
	if c := r.Count([]Value{1, 1}); c != 2 {
		t.Fatalf("count after truncate = %d, want 2", c)
	}
	if c := r.Count([]Value{5, 5}); c != 0 {
		t.Fatalf("truncated row still counted: %d", c)
	}
	if row, ok := r.RowOf([]Value{2, 2}); !ok || row != 2 {
		t.Fatalf("RowOf after truncate = (%d, %v), want (2, true)", row, ok)
	}
	r.Clear()
	if c := r.Count([]Value{1, 1}); c != 0 {
		t.Fatalf("count survived Clear: %d", c)
	}
}
