package storage

// This file provides the generic relational operators of the relational
// layer API (paper §V-D): select, project, join, and union, in both
// push-based (callback) and pull-based (iterator) styles. The fixpoint
// executor uses specialized fused variants of these for the hot path; the
// generic forms back the baseline engines, tests, and property checks.

// Pred is a tuple predicate used by Select.
type Pred func(row []Value) bool

// SelectInto appends the tuples of src satisfying p into dst and returns dst.
func SelectInto(dst *Relation, src *Relation, p Pred) *Relation {
	src.Each(func(row []Value) bool {
		if p(row) {
			dst.Insert(row)
		}
		return true
	})
	return dst
}

// ProjectInto appends π_cols(src) into dst and returns dst. dst's arity must
// equal len(cols).
func ProjectInto(dst *Relation, src *Relation, cols []int) *Relation {
	out := make([]Value, len(cols))
	src.Each(func(row []Value) bool {
		for i, c := range cols {
			out[i] = row[c]
		}
		dst.Insert(out)
		return true
	})
	return dst
}

// UnionInto appends all tuples of each src into dst and returns dst.
func UnionInto(dst *Relation, srcs ...*Relation) *Relation {
	for _, s := range srcs {
		dst.InsertAll(s)
	}
	return dst
}

// JoinInto computes the equi-join of l and r on l.lcol = r.rcol, emitting
// the concatenation of the two rows into dst (arity l.Arity()+r.Arity()).
// It probes r's hash index on rcol when one exists, otherwise builds a
// transient one, so the cost is O(|l| + |r| + |out|).
func JoinInto(dst *Relation, l, r *Relation, lcol, rcol int) *Relation {
	out := make([]Value, l.Arity()+r.Arity())
	probe := func(v Value) []int32 {
		rows, ok := r.Probe(rcol, v)
		if ok {
			return rows
		}
		return nil
	}
	if !r.HasIndex(rcol) {
		// Transient build side.
		tmp := make(map[Value][]int32, r.Len())
		n := int32(r.Len())
		for i := int32(0); i < n; i++ {
			v := r.Row(i)[rcol]
			tmp[v] = append(tmp[v], i)
		}
		probe = func(v Value) []int32 { return tmp[v] }
	}
	l.Each(func(lrow []Value) bool {
		for _, ri := range probe(lrow[lcol]) {
			rrow := r.Row(ri)
			copy(out, lrow)
			copy(out[len(lrow):], rrow)
			dst.Insert(out)
		}
		return true
	})
	return dst
}

// DiffInto appends the tuples of a that are not in b into dst and returns
// dst. a and b must share arity.
func DiffInto(dst *Relation, a, b *Relation) *Relation {
	a.Each(func(row []Value) bool {
		if !b.Contains(row) {
			dst.Insert(row)
		}
		return true
	})
	return dst
}

// Iterator is the pull-based access path over a relation: Next returns rows
// until exhaustion. It is invalidated by concurrent inserts.
type Iterator struct {
	rel *Relation
	pos int32
	n   int32
}

// Iter returns a pull-based iterator over r's current tuples.
func (r *Relation) Iter() *Iterator {
	return &Iterator{rel: r, n: int32(r.Len())}
}

// Next returns the next row, or (nil, false) when exhausted.
func (it *Iterator) Next() ([]Value, bool) {
	if it.pos >= it.n {
		return nil, false
	}
	row := it.rel.Row(it.pos)
	it.pos++
	return row, true
}

// Reset rewinds the iterator to the first row.
func (it *Iterator) Reset() { it.pos = 0 }
