package storage

// This file implements hash-shard partitioning of relations: a registered
// shard key splits a relation's rows into a fixed number of buckets by hash
// of one column (the planned join key), maintained incrementally on every
// mutation exactly like the hash indexes. Shard partitions are views — row
// ids into the shared arena, never copies — so registering one changes
// neither the relation's content nor its mutation counter: the drift totals
// the plan cache's freshness policy observes are identical with and without
// sharding (see PredicateDB.DriftCounter).
//
// The parallel fixpoint driver uses the partitions to split one large rule
// into per-shard tasks: each task reads only its bucket of the delta
// relation, and the union of the buckets is exactly the relation (the
// property FuzzShardRouting checks), so the fan-out derives the same set of
// facts as the unsharded evaluation.

// ShardOf returns the shard bucket of value v among shards buckets. The hash
// is a 32-bit avalanche mix (murmur3 finalizer) so consecutive integer keys —
// the common case for interned symbols and dense node ids — spread evenly
// instead of striping. shards must be positive.
func ShardOf(v Value, shards int) int {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return int(x % uint32(shards))
}

// SetShardKey registers (or reconfigures) the relation's shard partition:
// shards buckets keyed by hash of column col. Registration is idempotent for
// an identical configuration; a changed configuration rebuilds the buckets
// from the current arena and advances every bucket's mutation counter past
// any previously observable value (bucket contents may have been reassigned
// wholesale, and while the partition was off ShardMutations reported the
// relation-level counter — always >= every bucket counter — so the bump
// keeps per-bucket observations monotone across arbitrary off/on cycles).
// shards < 2 removes the partition.
//
// SetShardKey always selects the view mode: a physical or split-dedup
// relation (see physshard.go) is dissolved back to the flat layout first,
// preserving content and the observable mutation total.
func (r *Relation) SetShardKey(shards, col int) {
	if r.subs != nil {
		r.dissolvePhys()
	}
	r.unsplitDedup()
	if shards < 2 {
		r.shardCount, r.shardRows = 0, nil
		return
	}
	if col < 0 || col >= r.arity {
		panic("storage: shard key column out of range")
	}
	if r.shardCount == shards && r.shardCol == col {
		return
	}
	base := r.muts + 1
	for _, m := range r.shardMuts {
		if m+1 > base {
			base = m + 1
		}
	}
	if len(r.shardMuts) != shards {
		r.shardMuts = make([]uint64, shards)
	}
	for s := range r.shardMuts {
		if r.shardMuts[s] < base {
			r.shardMuts[s] = base
		}
	}
	r.shardCount, r.shardCol = shards, col
	r.shardRows = make([][]int32, shards)
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		s := ShardOf(r.Row(row)[col], shards)
		r.shardRows[s] = append(r.shardRows[s], row)
	}
}

// ShardConfig returns the registered bucket count and key column, or (0, 0)
// when the relation is unpartitioned.
func (r *Relation) ShardConfig() (shards, col int) {
	if r.shardCount == 0 {
		return 0, 0
	}
	return r.shardCount, r.shardCol
}

// ShardLen returns the number of tuples in bucket s (the per-shard
// cardinality statistic). It returns the full length for unpartitioned
// relations so callers can treat them as a single bucket.
func (r *Relation) ShardLen(s int) int {
	if r.shardCount == 0 {
		return r.Len()
	}
	if r.subs != nil {
		return r.subs[s].Len()
	}
	return len(r.shardRows[s])
}

// EachShard calls f for every tuple of bucket s in insertion order until f
// returns false. On an unpartitioned relation it visits every tuple.
func (r *Relation) EachShard(s int, f func(row []Value) bool) {
	if r.shardCount == 0 {
		r.Each(f)
		return
	}
	if r.subs != nil {
		r.subs[s].Each(f)
		return
	}
	for _, row := range r.shardRows[s] {
		if !f(r.Row(row)) {
			return
		}
	}
}

// ShardRows returns bucket s's row ids in insertion order — the exact-bucket
// fast path for iterator-style executors (valid until the next mutation;
// callers must not mutate it, like Probe's result). It returns nil for
// unpartitioned and physically sharded relations (physical bucket rows live
// in the sub-relations — use PhysSubs).
func (r *Relation) ShardRows(s int) []int32 {
	if r.shardCount == 0 || r.subs != nil {
		return nil
	}
	return r.shardRows[s]
}

// ShardMutations returns bucket s's monotone mutation counter: it advances
// whenever a content change touches the bucket (an insert routed to it, or a
// relation-wide Clear/TruncateTo) and survives SetShardKey rebuilds that keep
// the bucket count, so equal observations bracket an unchanged bucket.
func (r *Relation) ShardMutations(s int) uint64 {
	if r.shardCount == 0 {
		return r.muts
	}
	if r.subs != nil {
		// Physical buckets own their insert counters; the parent component
		// carries the clear bumps and the monotonicity base across mode
		// transitions.
		return r.shardMuts[s] + r.subs[s].muts
	}
	return r.shardMuts[s]
}

// shardInsert routes a freshly inserted arena row into its bucket.
// Caller guarantees the relation is partitioned.
func (r *Relation) shardInsert(t []Value, row int32) {
	s := ShardOf(t[r.shardCol], r.shardCount)
	r.shardRows[s] = append(r.shardRows[s], row)
	r.shardMuts[s]++
}

// shardClear empties every bucket, advancing the counters of the buckets
// that held rows (mirroring Clear's only-if-content counter bump).
func (r *Relation) shardClear() {
	for s := range r.shardRows {
		if len(r.shardRows[s]) > 0 {
			r.shardMuts[s]++
		}
		r.shardRows[s] = r.shardRows[s][:0]
	}
}

// shardRebuild repartitions the arena prefix after TruncateTo. Every bucket's
// counter advances: truncation is a relation-wide content change and which
// buckets lost rows is not tracked.
func (r *Relation) shardRebuild() {
	for s := range r.shardRows {
		r.shardRows[s] = r.shardRows[s][:0]
		r.shardMuts[s]++
	}
	n := int32(r.Len())
	for row := int32(0); row < n; row++ {
		s := ShardOf(r.Row(row)[r.shardCol], r.shardCount)
		r.shardRows[s] = append(r.shardRows[s], row)
	}
}
