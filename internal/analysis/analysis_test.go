package analysis

import (
	"testing"

	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
)

func TestCSPABothFormulationsAgree(t *testing.T) {
	facts := datagen.CSPAGraph(150, 17)
	opt := CSPA(HandOptimized, facts)
	unopt := CSPA(Unoptimized, facts)
	r1, err := opt.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := unopt.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalFacts != r2.TotalFacts {
		t.Fatalf("formulations disagree: %d vs %d facts", r1.TotalFacts, r2.TotalFacts)
	}
	if opt.Output.Len() == 0 {
		t.Fatal("VAlias is empty — dataset too sparse to exercise the analysis")
	}
}

func TestCSPAJITRecoversUnoptimized(t *testing.T) {
	facts := datagen.CSPAGraph(200, 17)
	ref := CSPA(HandOptimized, facts)
	rres, err := ref.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	jitp := CSPA(Unoptimized, facts)
	jres, err := jitp.P.Run(core.Options{Indexed: true,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}})
	if err != nil {
		t.Fatal(err)
	}
	if rres.TotalFacts != jres.TotalFacts {
		t.Fatalf("JIT changed results: %d vs %d", rres.TotalFacts, jres.TotalFacts)
	}
}

func TestCSDAComputesNullReachability(t *testing.T) {
	facts := datagen.CSDAGraph(1000, 3)
	b := CSDA(facts)
	if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	if b.Output.Len() <= len(facts.NullEdge) {
		t.Fatalf("NullFlow (%d) did not propagate past the seeds (%d)", b.Output.Len(), len(facts.NullEdge))
	}
}

func TestAndersenPointsTo(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	for _, form := range []Formulation{HandOptimized, Unoptimized} {
		b := Andersen(form, facts)
		if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatal(err)
		}
		// Every allocated variable must at least point to its own site.
		if b.Output.Len() < len(facts.Alloc) {
			t.Fatalf("%v: |pts| = %d < |alloc| = %d", form, b.Output.Len(), len(facts.Alloc))
		}
	}
	// The two formulations agree.
	a := Andersen(HandOptimized, facts)
	u := Andersen(Unoptimized, facts)
	ra, _ := a.P.Run(core.Options{Indexed: true})
	ru, _ := u.P.Run(core.Options{Indexed: true})
	if ra.TotalFacts != ru.TotalFacts {
		t.Fatalf("formulations disagree: %d vs %d", ra.TotalFacts, ru.TotalFacts)
	}
}

func TestInvFunsFindsRoundTrip(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	for _, form := range []Formulation{HandOptimized, Unoptimized} {
		b := InvFuns(form, facts)
		if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatal(err)
		}
		if b.Output.Len() == 0 {
			t.Fatalf("%v: serialize/deserialize round trip not detected", form)
		}
		undo := b.P.Relation("undo", 2)
		if undo.Len() == 0 {
			t.Fatalf("%v: undo relation empty", form)
		}
	}
}

func TestInvFunsNineAtomRule(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	b := InvFuns(HandOptimized, facts)
	found := false
	for _, r := range b.P.AST().Rules {
		if len(r.Body) == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("the 9-atom roundtrip rule is missing")
	}
}

func TestUnoptimizedIsSlowerOnCSPA(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	facts := datagen.CSPAGraph(200, 23)
	opt := CSPA(HandOptimized, facts)
	unopt := CSPA(Unoptimized, facts)
	ro, err := opt.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := unopt.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	if ru.Duration < ro.Duration {
		t.Logf("warning: unoptimized (%v) not slower than hand-optimized (%v) at this scale", ru.Duration, ro.Duration)
	}
	t.Logf("hand-optimized: %v, unoptimized: %v (%.1fx)", ro.Duration, ru.Duration,
		float64(ru.Duration)/float64(ro.Duration))
}
