// Package analysis defines the paper's macrobenchmark rule sets (§VI-A):
// Graspan's context-sensitive pointer analysis (CSPA, Fig 1), Graspan's
// context-sensitive dataflow analysis (CSDA), Doop-style Andersen points-to,
// and the custom Inverse-Functions analysis (points-to extended with
// `inverse` facts, including a 9-atom rule).
//
// Each program is available in two formulations, as in §VI-B: HandOptimized,
// whose atom orders were chosen by tracking intermediate cardinalities (the
// best manual plan), and Unoptimized, a legal but adversarial ordering that
// front-loads cartesian products — "a naive user with bad luck in their
// order of atoms".
package analysis

import (
	"carac/internal/core"
	"carac/internal/datagen"
)

// Formulation selects the atom ordering of the rule bodies.
type Formulation uint8

const (
	// HandOptimized uses the manually tuned atom orders.
	HandOptimized Formulation = iota
	// Unoptimized uses adversarial (but legal) atom orders.
	Unoptimized
)

// String returns the §VI-B label.
func (f Formulation) String() string {
	if f == Unoptimized {
		return "unoptimized"
	}
	return "hand-optimized"
}

// Built bundles a constructed program with its principal output relation.
type Built struct {
	P      *core.Program
	Output *core.Relation
}

// CSPA builds Graspan's context-sensitive pointer analysis (paper Fig 1)
// over the given facts.
//
// Rules (paper notation):
//
//	VaFlow(v1,v2) :- MAlias(v3,v2), Assign(v1,v3).
//	VaFlow(v1,v2) :- VaFlow(v3,v2), VaFlow(v1,v3).
//	MAlias(v1,v0) :- VAlias(v2,v3), Derefr(v3,v0), Derefr(v2,v1).
//	VAlias(v1,v2) :- VaFlow(v3,v2), VaFlow(v3,v1).
//	VAlias(v1,v2) :- VaFlow(v0,v2), VaFlow(v3,v1), MAlias(v3,v0).
//	VaFlow(v2,v1) :- Assign(v2,v1).
//	VaFlow(v1,v1) :- Assign(v1,v2).
//	VaFlow(v1,v1) :- Assign(v2,v1).
//	MAlias(v1,v1) :- Assign(v2,v1).
//	MAlias(v1,v1) :- Assign(v1,v2).
//
// The Unoptimized formulation leads the 3-atom rules with their cartesian
// pair — the fifth rule's literal order is exactly §IV's worked example.
func CSPA(form Formulation, facts *datagen.CSPAFacts) *Built {
	p := core.NewProgram()
	assign := p.Relation("Assign", 2)
	deref := p.Relation("Derefr", 2)
	vaflow := p.Relation("VaFlow", 2)
	valias := p.Relation("VAlias", 2)
	malias := p.Relation("MAlias", 2)

	v0, v1, v2, v3 := core.NewVar("v0"), core.NewVar("v1"), core.NewVar("v2"), core.NewVar("v3")

	if form == HandOptimized {
		p.MustRule(vaflow.A(v1, v2), assign.A(v1, v3), malias.A(v3, v2))
		p.MustRule(vaflow.A(v1, v2), vaflow.A(v1, v3), vaflow.A(v3, v2))
		p.MustRule(malias.A(v1, v0), valias.A(v2, v3), deref.A(v3, v0), deref.A(v2, v1))
		p.MustRule(valias.A(v1, v2), vaflow.A(v3, v2), vaflow.A(v3, v1))
		p.MustRule(valias.A(v1, v2), vaflow.A(v0, v2), malias.A(v3, v0), vaflow.A(v3, v1))
	} else {
		p.MustRule(vaflow.A(v1, v2), malias.A(v3, v2), assign.A(v1, v3))
		p.MustRule(vaflow.A(v1, v2), vaflow.A(v3, v2), vaflow.A(v1, v3))
		// Derefr × Derefr cartesian product up front.
		p.MustRule(malias.A(v1, v0), deref.A(v3, v0), deref.A(v2, v1), valias.A(v2, v3))
		p.MustRule(valias.A(v1, v2), vaflow.A(v3, v2), vaflow.A(v3, v1))
		// §IV's example: VaFlow × VaFlow cartesian product.
		p.MustRule(valias.A(v1, v2), vaflow.A(v0, v2), vaflow.A(v3, v1), malias.A(v3, v0))
	}
	p.MustRule(vaflow.A(v2, v1), assign.A(v2, v1))
	p.MustRule(vaflow.A(v1, v1), assign.A(v1, v2))
	p.MustRule(vaflow.A(v1, v1), assign.A(v2, v1))
	p.MustRule(malias.A(v1, v1), assign.A(v2, v1))
	p.MustRule(malias.A(v1, v1), assign.A(v1, v2))

	for _, e := range facts.Assign {
		assign.FactTuple([]int32{e.Src, e.Dst})
	}
	for _, e := range facts.Derefr {
		deref.FactTuple([]int32{e.Src, e.Dst})
	}
	return &Built{P: p, Output: valias}
}

// CSDA builds Graspan's context-sensitive dataflow analysis: null-value
// reachability over transfer edges. Only 2-way joins arise, so the paper
// uses a single formulation (reordering only swaps build and probe sides).
func CSDA(facts *datagen.CSDAFacts) *Built {
	p := core.NewProgram()
	nullEdge := p.Relation("NullEdge", 2)
	flowEdge := p.Relation("FlowEdge", 2)
	nullFlow := p.Relation("NullFlow", 2)
	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
	p.MustRule(nullFlow.A(x, y), nullEdge.A(x, y))
	p.MustRule(nullFlow.A(x, y), nullFlow.A(x, z), flowEdge.A(z, y))
	for _, e := range facts.NullEdge {
		nullEdge.FactTuple([]int32{e.Src, e.Dst})
	}
	for _, e := range facts.FlowEdge {
		flowEdge.FactTuple([]int32{e.Src, e.Dst})
	}
	return &Built{P: p, Output: nullFlow}
}

// ptsRules installs Andersen's context- and flow-insensitive points-to
// rules (Doop-style, field-insensitive):
//
//	pts(y,o)    :- alloc(y,o).
//	pts(y,o)    :- move(y,x), pts(x,o).
//	hpts(o1,o2) :- store(x,y), pts(x,o1), pts(y,o2).   // *x = y
//	pts(y,o2)   :- load(y,x), pts(x,o1), hpts(o1,o2).  // y = *x
func ptsRules(p *core.Program, form Formulation) (pts, hpts *core.Relation) {
	alloc := p.Relation("alloc", 2)
	move := p.Relation("move", 2)
	load := p.Relation("load", 2)
	store := p.Relation("store", 2)
	pts = p.Relation("pts", 2)
	hpts = p.Relation("hpts", 2)

	x, y, o, o1, o2 := core.NewVar("x"), core.NewVar("y"), core.NewVar("o"), core.NewVar("o1"), core.NewVar("o2")
	p.MustRule(pts.A(y, o), alloc.A(y, o))
	if form == HandOptimized {
		p.MustRule(pts.A(y, o), move.A(y, x), pts.A(x, o))
		p.MustRule(hpts.A(o1, o2), store.A(x, y), pts.A(x, o1), pts.A(y, o2))
		p.MustRule(pts.A(y, o2), load.A(y, x), pts.A(x, o1), hpts.A(o1, o2))
	} else {
		p.MustRule(pts.A(y, o), pts.A(x, o), move.A(y, x))
		// pts × pts cartesian product up front.
		p.MustRule(hpts.A(o1, o2), pts.A(x, o1), pts.A(y, o2), store.A(x, y))
		// hpts × load cartesian product up front.
		p.MustRule(pts.A(y, o2), hpts.A(o1, o2), load.A(y, x), pts.A(x, o1))
	}
	return pts, hpts
}

func loadPtsFacts(p *core.Program, facts *datagen.PointsToFacts) {
	alloc := p.Relation("alloc", 2)
	move := p.Relation("move", 2)
	load := p.Relation("load", 2)
	store := p.Relation("store", 2)
	for _, e := range facts.Alloc {
		alloc.FactTuple([]int32{e.Src, e.Dst})
	}
	for _, e := range facts.Move {
		move.FactTuple([]int32{e.Src, e.Dst})
	}
	for _, e := range facts.Load {
		load.FactTuple([]int32{e.Src, e.Dst})
	}
	for _, e := range facts.Store {
		store.FactTuple([]int32{e.Src, e.Dst})
	}
}

// Andersen builds the plain points-to analysis on the given facts.
func Andersen(form Formulation, facts *datagen.PointsToFacts) *Built {
	p := core.NewProgram()
	pts, _ := ptsRules(p, form)
	loadPtsFacts(p, facts)
	return &Built{P: p, Output: pts}
}

// InvFuns builds the Inverse-Functions analysis (paper §VI-A): Andersen's
// points-to extended with call facts (ret = fn(arg)) and inverse(g, f)
// declarations, plus rules flagging wasted round-trips through adjacent
// inverse functions. The roundtrip rule has a 9-atom body, the longest join
// in the evaluation (§IV notes a 9-atom rule in this analysis).
func InvFuns(form Formulation, facts *datagen.PointsToFacts) *Built {
	p := core.NewProgram()
	pts, _ := ptsRules(p, form)
	call := p.Relation("call", 3)
	inverse := p.Relation("inverse", 2)
	vflow := p.Relation("vflow", 2)
	undo := p.Relation("undo", 2)
	roundtrip := p.Relation("roundtrip", 2)

	a := core.NewVar("a")
	r1, r2 := core.NewVar("r1"), core.NewVar("r2")
	f, g := core.NewVar("f"), core.NewVar("g")
	v3, v4, v6 := core.NewVar("v3"), core.NewVar("v4"), core.NewVar("v6")
	h1, h2 := core.NewVar("h1"), core.NewVar("h2")
	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
	m := core.NewVar("m")

	// Value flow through moves: vflow(x, y) holds when x's value reaches y.
	p.MustRule(vflow.A(x, y), move(p, y, x))
	p.MustRule(vflow.A(x, y), vflow.A(x, z), move(p, y, z))

	if form == HandOptimized {
		// Direct undo: r2 = g(r1) where r1 = f(a) and g undoes f.
		p.MustRule(undo.A(r2, a), inverse.A(g, f), call.A(r1, f, a), call.A(r2, g, r1))
		// Undo through intermediate moves: r1 flows into g's argument.
		p.MustRule(undo.A(r2, a),
			inverse.A(g, f), call.A(r1, f, a), vflow.A(r1, m), call.A(r2, g, m))
		// Round trip through moves and aliases: the 9-atom rule.
		p.MustRule(roundtrip.A(a, r2),
			inverse.A(g, f),
			call.A(r1, f, a),
			move(p, v3, r1),
			pts.A(v3, h1),
			pts.A(v4, h1),
			call.A(r2, g, v4),
			move(p, v6, r2),
			pts.A(v6, h2),
			pts.A(a, h2),
		)
	} else {
		p.MustRule(undo.A(r2, a), call.A(r1, f, a), call.A(r2, g, r1), inverse.A(g, f))
		// vflow × call cartesian product first, inverse last.
		p.MustRule(undo.A(r2, a),
			vflow.A(r1, m), call.A(r2, g, m), call.A(r1, f, a), inverse.A(g, f))
		// Adversarial: lead with a pts × pts cartesian product and leave the
		// tiny inverse relation for last.
		p.MustRule(roundtrip.A(a, r2),
			pts.A(v3, h1),
			pts.A(v6, h2),
			move(p, v3, r1),
			call.A(r1, f, a),
			pts.A(v4, h1),
			call.A(r2, g, v4),
			move(p, v6, r2),
			pts.A(a, h2),
			inverse.A(g, f),
		)
	}

	loadPtsFacts(p, facts)
	for _, c := range facts.Call {
		call.MustFact(int(c.Ret), c.Fn, int(c.Arg))
	}
	for _, iv := range facts.Inverse {
		inverse.MustFact(iv[0], iv[1])
	}
	return &Built{P: p, Output: roundtrip}
}

// move returns the move relation handle of prog (helper to keep rule bodies
// readable above).
func move(p *core.Program, dst, src *core.Var) core.Atom {
	return p.Relation("move", 2).A(dst, src)
}
