package analysis

import (
	"testing"
	"time"

	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
)

// TestYieldEscapesBadJoinOrder: with an adversarial atom order, a single
// interpreted iteration can dwarf the async compile time; the yield
// mechanism must let the compiled (reordered) unit take over mid-join
// instead of waiting out the cartesian product.
func TestYieldEscapesBadJoinOrder(t *testing.T) {
	facts := datagen.CSPAGraph(200, 17)

	run := func(async bool) (time.Duration, jit.Stats, int) {
		b := CSPA(Unoptimized, facts)
		res, err := b.P.Run(core.Options{
			Indexed: true,
			Timeout: 2 * time.Minute,
			JIT:     jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranUnionAll, Async: async},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration, res.JIT, res.TotalFacts
	}

	blockDt, _, blockFacts := run(false)
	asyncDt, asyncStats, asyncFacts := run(true)
	if blockFacts != asyncFacts {
		t.Fatalf("async changed results: %d vs %d", asyncFacts, blockFacts)
	}
	if asyncStats.Compilations == 0 {
		t.Fatal("async never compiled")
	}
	// Without the yield path the async run is orders of magnitude slower on
	// this input (it sits inside the cartesian product while compiled code
	// waits); with it, it stays within a small factor of blocking.
	if asyncDt > 20*blockDt+2*time.Second {
		t.Fatalf("async too slow: %v vs blocking %v (yield not engaging?)", asyncDt, blockDt)
	}
	t.Logf("blocking=%v async=%v (switchovers=%d cachehits=%d)",
		blockDt, asyncDt, asyncStats.Switchovers, asyncStats.CacheHits)
}
