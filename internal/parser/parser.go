package parser

import (
	"fmt"
	"strconv"

	"carac/internal/ast"
	"carac/internal/storage"
)

// Result of parsing one source unit.
type Result struct {
	Program *ast.Program
	// Facts parsed from ground clauses, grouped by predicate, already
	// inserted into the catalog's Derived databases.
	FactCount int
	// Decls lists declared predicates in source order.
	Decls []storage.PredID
}

type parser struct {
	lx      *lexer
	tok     token
	peeked  *token
	catalog *storage.Catalog
	prog    *ast.Program
	res     *Result

	// per-clause variable scope
	varIDs   map[string]ast.VarID
	varNames []string
}

// Parse parses src into catalog (declaring predicates and inserting facts)
// and returns the rules as an ast.Program.
func Parse(src string, catalog *storage.Catalog) (*Result, error) {
	p := &parser{
		lx:      newLexer(src),
		catalog: catalog,
		prog:    ast.NewProgram(catalog),
	}
	p.res = &Result{Program: p.prog}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tEOF {
		if p.tok.kind == tPunct && p.tok.text == ".decl" {
			if err := p.parseDecl(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.parseClause(); err != nil {
			return nil, err
		}
	}
	return p.res, nil
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse error at %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, text string) error {
	if p.tok.kind != kind || (text != "" && p.tok.text != text) {
		return p.errf("expected %q, got %q", text, p.tok.text)
	}
	return p.advance()
}

// .decl name(arg:type, ...)
func (p *parser) parseDecl() error {
	if err := p.advance(); err != nil { // consume .decl
		return err
	}
	if p.tok.kind != tIdent {
		return p.errf("expected predicate name after .decl")
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tPunct, "("); err != nil {
		return err
	}
	arity := 0
	for {
		if p.tok.kind != tIdent {
			return p.errf("expected parameter name")
		}
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expect(tPunct, ":"); err != nil {
			return err
		}
		if p.tok.kind != tIdent {
			return p.errf("expected parameter type")
		}
		ty := p.tok.text
		if ty != "number" && ty != "symbol" {
			return p.errf("unknown type %q (want number or symbol)", ty)
		}
		if err := p.advance(); err != nil {
			return err
		}
		arity++
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return err
	}
	id := p.catalog.Declare(name, arity)
	p.res.Decls = append(p.res.Decls, id)
	return nil
}

// clause = atom [ ":-" literal { "," literal } ] "."
func (p *parser) parseClause() error {
	p.varIDs = make(map[string]ast.VarID)
	p.varNames = p.varNames[:0]

	head, err := p.parseAtom(false)
	if err != nil {
		return err
	}
	if p.tok.kind == tPunct && p.tok.text == "." {
		// Ground fact.
		if err := p.advance(); err != nil {
			return err
		}
		return p.insertFact(head)
	}
	if err := p.expect(tPunct, ":-"); err != nil {
		return err
	}
	var body []ast.Atom
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return err
		}
		body = append(body, lit)
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if err := p.expect(tPunct, "."); err != nil {
		return err
	}
	rule := &ast.Rule{
		Head:     head,
		Body:     body,
		NumVars:  len(p.varNames),
		VarNames: append([]string(nil), p.varNames...),
	}
	if err := p.prog.AddRule(rule); err != nil {
		return fmt.Errorf("%s: %w", p.prog.FormatRule(rule), err)
	}
	return nil
}

func (p *parser) insertFact(head ast.Atom) error {
	pd := p.catalog.Pred(head.Pred)
	tuple := make([]storage.Value, len(head.Terms))
	for i, t := range head.Terms {
		if t.Kind != ast.TermConst {
			return fmt.Errorf("fact for %s has non-constant argument", pd.Name)
		}
		tuple[i] = t.Val
	}
	pd.AddFact(tuple)
	p.res.FactCount++
	return nil
}

// literal = "!" atom | atom | constraint
func (p *parser) parseLiteral() (ast.Atom, error) {
	if p.tok.kind == tPunct && p.tok.text == "!" {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		a, err := p.parseAtom(true)
		if err != nil {
			return ast.Atom{}, err
		}
		a.Kind = ast.AtomNegated
		return a, nil
	}
	// An identifier followed by "(" is an atom; otherwise it is the first
	// operand of a constraint.
	if p.tok.kind == tIdent {
		nxt, err := p.peek()
		if err != nil {
			return ast.Atom{}, err
		}
		if nxt.kind == tPunct && nxt.text == "(" {
			return p.parseAtom(true)
		}
	}
	return p.parseConstraint()
}

// atom = ident "(" term { "," term } ")"
// inBody selects whether identifiers introduce variables (bodies and rule
// heads both allow variables; facts are checked by the caller).
func (p *parser) parseAtom(inBody bool) (ast.Atom, error) {
	_ = inBody
	if p.tok.kind != tIdent {
		return ast.Atom{}, p.errf("expected predicate name, got %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	if err := p.expect(tPunct, "("); err != nil {
		return ast.Atom{}, err
	}
	var terms []ast.Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return ast.Atom{}, err
		}
		terms = append(terms, t)
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return ast.Atom{}, err
	}
	pd, ok := p.catalog.PredByName(name)
	if !ok {
		return ast.Atom{}, p.errf("undeclared predicate %q", name)
	}
	if pd.Arity != len(terms) {
		return ast.Atom{}, p.errf("predicate %q has arity %d, got %d arguments", name, pd.Arity, len(terms))
	}
	return ast.Rel(pd.ID, terms...), nil
}

func (p *parser) parseTerm() (ast.Term, error) {
	switch p.tok.kind {
	case tInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 32)
		if err != nil {
			return ast.Term{}, p.errf("integer %q out of 32-bit range", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(storage.Value(n)), nil
	case tString:
		v := p.catalog.Symbols.Intern(p.tok.text)
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(v), nil
	case tIdent:
		if p.tok.text == "_" {
			// Each wildcard is a fresh anonymous variable.
			id := ast.VarID(len(p.varNames))
			p.varNames = append(p.varNames, fmt.Sprintf("_%d", id))
			if err := p.advance(); err != nil {
				return ast.Term{}, err
			}
			return ast.V(id), nil
		}
		name := p.tok.text
		id, ok := p.varIDs[name]
		if !ok {
			id = ast.VarID(len(p.varNames))
			p.varIDs[name] = id
			p.varNames = append(p.varNames, name)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.V(id), nil
	}
	return ast.Term{}, p.errf("expected term, got %q", p.tok.text)
}

// constraint = operand relop operand | operand "=" operand arithop operand
func (p *parser) parseConstraint() (ast.Atom, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tPunct {
		return ast.Atom{}, p.errf("expected comparison operator, got %q", p.tok.text)
	}
	op := p.tok.text
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	rhs, err := p.parseTerm()
	if err != nil {
		return ast.Atom{}, err
	}

	if op == "=" && p.tok.kind == tPunct {
		switch p.tok.text {
		case "+", "-", "*", "/", "%":
			arith := p.tok.text
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			rhs2, err := p.parseTerm()
			if err != nil {
				return ast.Atom{}, err
			}
			var b ast.Builtin
			switch arith {
			case "+":
				b = ast.BAdd
			case "-":
				b = ast.BSub
			case "*":
				b = ast.BMul
			case "/":
				b = ast.BDiv
			case "%":
				b = ast.BMod
			}
			// lhs = rhs OP rhs2  ==>  builtin(rhs, rhs2, lhs)
			return ast.Bi(b, rhs, rhs2, lhs), nil
		}
	}

	var b ast.Builtin
	switch op {
	case "<":
		b = ast.BLt
	case "<=":
		b = ast.BLe
	case ">":
		b = ast.BGt
	case ">=":
		b = ast.BGe
	case "=":
		b = ast.BEq
	case "!=":
		b = ast.BNe
	default:
		return ast.Atom{}, p.errf("unknown operator %q", op)
	}
	return ast.Bi(b, lhs, rhs), nil
}
