package parser

import (
	"strings"
	"testing"

	"carac/internal/ast"
	"carac/internal/storage"
)

func parse(t *testing.T, src string) (*Result, *storage.Catalog) {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := Parse(src, cat)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return res, cat
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	cat := storage.NewCatalog()
	_, err := Parse(src, cat)
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error", src)
	}
	return err
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)

edge(1, 2).
edge(2, 3).

tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
`

func TestParseTransitiveClosure(t *testing.T) {
	res, cat := parse(t, tcSrc)
	if res.FactCount != 2 {
		t.Fatalf("FactCount = %d, want 2", res.FactCount)
	}
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(res.Program.Rules))
	}
	edge, ok := cat.PredByName("edge")
	if !ok || edge.Derived.Len() != 2 {
		t.Fatalf("edge facts = %v", edge)
	}
	got := res.Program.FormatRule(res.Program.Rules[1])
	if got != "tc(x, y) :- tc(x, z), edge(z, y)." {
		t.Fatalf("rule round-trip = %q", got)
	}
}

func TestParseStringsInterned(t *testing.T) {
	src := `
.decl inverse(f:symbol, g:symbol)
inverse("deserialize", "serialize").
`
	res, cat := parse(t, src)
	if res.FactCount != 1 {
		t.Fatalf("FactCount = %d", res.FactCount)
	}
	inv, _ := cat.PredByName("inverse")
	row := inv.Derived.Row(0)
	if cat.Symbols.Format(row[0]) != "deserialize" || cat.Symbols.Format(row[1]) != "serialize" {
		t.Fatalf("interning broken: %v", row)
	}
}

func TestParseNegation(t *testing.T) {
	src := `
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
prime(p) :- num(p), !composite(p).
`
	res, _ := parse(t, src)
	r := res.Program.Rules[0]
	if r.Body[1].Kind != ast.AtomNegated {
		t.Fatalf("negation not parsed: %+v", r.Body[1])
	}
}

func TestParseArithmeticConstraint(t *testing.T) {
	src := `
.decl n(x:number)
.decl succ(x:number, y:number)
succ(x, y) :- n(x), y = x + 1.
`
	res, _ := parse(t, src)
	r := res.Program.Rules[0]
	b := r.Body[1]
	if b.Kind != ast.AtomBuiltin || b.Builtin != ast.BAdd {
		t.Fatalf("arith constraint = %+v", b)
	}
	// y = x + 1 parses as add(x, 1, y)
	if b.Terms[0].Var != r.Body[0].Terms[0].Var {
		t.Fatal("first addend should be x")
	}
	if b.Terms[1].Kind != ast.TermConst || b.Terms[1].Val != 1 {
		t.Fatal("second addend should be const 1")
	}
}

func TestParseComparisons(t *testing.T) {
	src := `
.decl n(x:number)
.decl small(x:number)
small(x) :- n(x), x < 10, x >= 0, x != 5.
`
	res, _ := parse(t, src)
	r := res.Program.Rules[0]
	wants := []ast.Builtin{ast.BLt, ast.BGe, ast.BNe}
	for i, w := range wants {
		if got := r.Body[1+i].Builtin; got != w {
			t.Fatalf("constraint %d = %v, want %v", i, got, w)
		}
	}
}

func TestParseWildcard(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl node(x:number)
node(x) :- edge(x, _).
node(y) :- edge(_, y).
`
	res, _ := parse(t, src)
	if len(res.Program.Rules) != 2 {
		t.Fatal("rules missing")
	}
	// Two wildcards in one rule must be distinct variables.
	src2 := `
.decl t(a:number, b:number, c:number)
.decl p(a:number)
p(x) :- t(x, _, _).
`
	res2, _ := parse(t, src2)
	r := res2.Program.Rules[0]
	if r.Body[0].Terms[1].Var == r.Body[0].Terms[2].Var {
		t.Fatal("wildcards must be fresh variables")
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
# hash comment
/* block
   comment */
.decl e(x:number, y:number)
e(1, 2). // trailing
`
	res, _ := parse(t, src)
	if res.FactCount != 1 {
		t.Fatalf("FactCount = %d", res.FactCount)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`.decl`, "expected predicate name"},
		{`.decl e(x:float)`, "unknown type"},
		{`e(1,2).`, "undeclared predicate"},
		{".decl e(x:number)\ne(1,2).", "arity"},
		{".decl e(x:number)\ne(x) :- e(y).", "unsafe"},
		{`.decl e(x:number)
e("unterminated`, "unterminated string"},
		{`.decl e(x:number)
/* no close`, "unterminated block comment"},
		{".decl e(x:number)\ne(x) :-", "expected"},
	}
	for _, c := range cases {
		err := parseErr(t, c.src)
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParseFactWithVariableRejected(t *testing.T) {
	err := parseErr(t, ".decl e(x:number)\ne(x).")
	if !strings.Contains(err.Error(), "non-constant") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseEscapes(t *testing.T) {
	src := `
.decl s(x:symbol)
s("a\nb\t\"c\"").
`
	_, cat := parse(t, src)
	s, _ := cat.PredByName("s")
	row := s.Derived.Row(0)
	if cat.Symbols.Format(row[0]) != "a\nb\t\"c\"" {
		t.Fatalf("escapes wrong: %q", cat.Symbols.Format(row[0]))
	}
}

func TestParseRedeclareSameArityOK(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl e(x:number, y:number)
e(1,2).
`
	res, _ := parse(t, src)
	if res.FactCount != 1 {
		t.Fatal("redeclare broke facts")
	}
}

func TestParseLargeIntRejected(t *testing.T) {
	err := parseErr(t, ".decl e(x:number)\ne(99999999999).")
	if !strings.Contains(err.Error(), "32-bit") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseEqualityConstraint(t *testing.T) {
	src := `
.decl n(x:number)
.decl eqp(x:number, y:number)
eqp(x, y) :- n(x), y = x.
`
	res, _ := parse(t, src)
	b := res.Program.Rules[0].Body[1]
	if b.Builtin != ast.BEq {
		t.Fatalf("= constraint parsed as %v", b.Builtin)
	}
}
