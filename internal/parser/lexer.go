// Package parser implements a text frontend for Carac: a Soufflé-flavoured
// Datalog subset with declarations, facts, rules, stratified negation, and
// infix arithmetic/comparison constraints.
//
// Grammar (EBNF):
//
//	program    = { decl | clause } .
//	decl       = ".decl" ident "(" param { "," param } ")" .
//	param      = ident ":" ident .                       // type: number | symbol
//	clause     = atom [ ":-" literal { "," literal } ] "." .
//	literal    = "!" atom | atom | constraint .
//	constraint = operand relop operand
//	           | operand "=" operand arithop operand .
//	atom       = ident "(" term { "," term } ")" .
//	term       = integer | string | ident .              // ident = variable
//	relop      = "<" | "<=" | ">" | ">=" | "=" | "!=" .
//	arithop    = "+" | "-" | "*" | "/" | "%" .
//
// Line comments start with "//" or "#"; block comments are /* ... */.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tString
	tPunct // ( ) , . :- ! < <= > >= = != + - * / % .decl
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("parse error at %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '?' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || c == '?' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peekByte()

	mk := func(kind tokKind, text string) token {
		return token{kind: kind, text: text, line: startLine, col: startCol}
	}

	switch {
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(startLine, startCol, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return token{}, l.errf(startLine, startCol, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return mk(tString, sb.String()), nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
			l.advance()
		}
		return mk(tInt, l.src[start:l.pos]), nil

	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		return mk(tIdent, l.src[start:l.pos]), nil

	case c == '.':
		l.advance()
		// ".decl" etc.
		if l.pos < len(l.src) && isIdentStart(l.peekByte()) {
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
				l.advance()
			}
			return mk(tPunct, "."+l.src[start:l.pos]), nil
		}
		return mk(tPunct, "."), nil

	case c == ':':
		l.advance()
		if l.peekByte() == '-' {
			l.advance()
			return mk(tPunct, ":-"), nil
		}
		return mk(tPunct, ":"), nil

	case c == '<' || c == '>' || c == '!':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tPunct, string(c)+"="), nil
		}
		return mk(tPunct, string(c)), nil

	case strings.IndexByte("(),=+-*/%", c) >= 0:
		l.advance()
		return mk(tPunct, string(c)), nil
	}
	return token{}, l.errf(startLine, startCol, "unexpected character %q", string(c))
}
