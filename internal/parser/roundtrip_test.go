package parser

import (
	"strings"
	"testing"

	"carac/internal/storage"
)

// TestFormatParseRoundTrip: rendering a parsed rule with FormatRule and
// re-parsing it yields the same structure.
func TestFormatParseRoundTrip(t *testing.T) {
	srcs := []string{
		`
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
`,
		`
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
composite(c) :- num(a), num(b), c = a * b, num(c).
prime(p) :- num(p), !composite(p).
`,
		`
.decl f(i:number, v:number)
.decl lim(i:number)
f(j, s) :- f(i, a), j = i + 2, lim(m), j <= m, k = j - 1, f(k, b), s = a + b.
`,
	}
	for _, src := range srcs {
		cat1 := storage.NewCatalog()
		res1, err := Parse(src, cat1)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		// Re-render every rule and build a second program from it.
		var sb strings.Builder
		for _, pd := range cat1.Preds() {
			sb.WriteString(".decl " + pd.Name + "(")
			for i := 0; i < pd.Arity; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("c" + string(rune('0'+i)) + ":number")
			}
			sb.WriteString(")\n")
		}
		for _, r := range res1.Program.Rules {
			line := res1.Program.FormatRule(r)
			// FormatRule renders builtins in prefix form (e.g. "add(i, 2, j)"
			// or "<=(j, m)"); convert back to the surface infix syntax.
			line = infixify(line)
			sb.WriteString(line + "\n")
		}
		cat2 := storage.NewCatalog()
		res2, err := Parse(sb.String(), cat2)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", sb.String(), err)
		}
		if len(res2.Program.Rules) != len(res1.Program.Rules) {
			t.Fatalf("rule count changed: %d vs %d", len(res2.Program.Rules), len(res1.Program.Rules))
		}
		for i := range res1.Program.Rules {
			a := res1.Program.FormatRule(res1.Program.Rules[i])
			b := res2.Program.FormatRule(res2.Program.Rules[i])
			if a != b {
				t.Fatalf("round trip diverged:\n  %s\n  %s", a, b)
			}
		}
	}
}

// infixify converts FormatRule's prefix builtin rendering back to the
// parser's infix syntax: add(a, b, c) -> c = a + b, <=(a, b) -> a <= b, etc.
func infixify(line string) string {
	for name, op := range map[string]string{"add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%"} {
		for {
			i := strings.Index(line, name+"(")
			if i < 0 {
				break
			}
			end := strings.Index(line[i:], ")")
			args := strings.Split(line[i+len(name)+1:i+end], ", ")
			line = line[:i] + args[2] + " = " + args[0] + " " + op + " " + args[1] + line[i+end+1:]
		}
	}
	for _, op := range []string{"<=", ">=", "!=", "<", ">", "="} {
		for {
			i := strings.Index(line, op+"(")
			if i < 0 {
				break
			}
			end := strings.Index(line[i:], ")")
			args := strings.Split(line[i+len(op)+1:i+end], ", ")
			line = line[:i] + args[0] + " " + op + " " + args[1] + line[i+end+1:]
		}
	}
	return line
}
