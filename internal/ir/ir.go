// Package ir defines Carac's intermediate representation: the imperative
// IROp program tree produced by partially evaluating (Futamura-projecting)
// the semi-naive Datalog evaluator onto an input program (paper §V-B1,
// Fig 4). The tree is the logical query plan for both the Datalog-specific
// operators (DoWhile, SwapClear, the union ladder) and the relational
// operators (the fused select-project-join).
//
// IROps are deliberately mutable in exactly one place: the atom order of an
// SPJOp, which the optimizer rewrites at any stage from ahead-of-time to
// mid-execution. Everything else is frozen at lowering time.
package ir

import (
	"fmt"
	"strings"

	"carac/internal/ast"
	"carac/internal/storage"
)

// Source selects which database of a predicate an atom reads.
type Source uint8

const (
	// SrcDerived reads the full derived database (⋆). EDB facts also live
	// there.
	SrcDerived Source = iota
	// SrcDelta reads the read-only delta-known database (δ).
	SrcDelta
)

func (s Source) String() string {
	if s == SrcDelta {
		return "δ"
	}
	return "⋆"
}

// Atom is one conjunct of a subquery body with its database source resolved.
type Atom struct {
	Kind    ast.AtomKind
	Pred    storage.PredID // relational atoms
	Builtin ast.Builtin    // builtin atoms
	Terms   []ast.Term
	Src     Source
}

// IsRelational reports whether the atom reads a stored relation.
func (a Atom) IsRelational() bool { return a.Kind != ast.AtomBuiltin }

// ProjElem is one head position of a subquery projection.
type ProjElem struct {
	IsConst bool
	Const   storage.Value
	Var     ast.VarID
}

// OpKind tags IR nodes for granularity selection and diagnostics.
type OpKind uint8

const (
	KProgram OpKind = iota
	KDoWhile
	KScan
	KSwapClear
	KUnionAll // pink Union* in Fig 4: all rules of one predicate
	KUnionRule
	KSPJ
)

func (k OpKind) String() string {
	switch k {
	case KProgram:
		return "ProgramOp"
	case KDoWhile:
		return "DoWhileOp"
	case KScan:
		return "ScanOp"
	case KSwapClear:
		return "SwapClearOp"
	case KUnionAll:
		return "UnionOp*"
	case KUnionRule:
		return "UnionOp"
	case KSPJ:
		return "SPJ"
	default:
		return "?"
	}
}

// Op is an IR tree node. All program state lives in the storage catalog, so
// every node boundary is a safe point for switching between interpretation
// and compiled code (paper §V-B3).
type Op interface {
	Kind() OpKind
	Children() []Op
}

// ProgramOp is the root: the per-stratum sequences in dependency order.
type ProgramOp struct {
	Body []Op
}

func (*ProgramOp) Kind() OpKind     { return KProgram }
func (p *ProgramOp) Children() []Op { return p.Body }

// ScanOp seeds the fixpoint: it copies each predicate's Derived facts into
// its write-only DeltaNew so ground facts participate as "newly discovered"
// in the first iteration.
type ScanOp struct {
	Preds []storage.PredID
}

func (*ScanOp) Kind() OpKind     { return KScan }
func (s *ScanOp) Children() []Op { return nil }

// SwapClearOp merges DeltaNew into Derived, swaps the delta databases, and
// clears the new write side, for every listed predicate (paper §V-B1).
type SwapClearOp struct {
	Preds []storage.PredID
}

func (*SwapClearOp) Kind() OpKind     { return KSwapClear }
func (s *SwapClearOp) Children() []Op { return nil }

// DoWhileOp executes Body repeatedly until no listed predicate's DeltaKnown
// holds tuples after the body's trailing SwapClearOp — i.e. until an
// iteration discovers no new facts.
type DoWhileOp struct {
	Body  []Op
	Preds []storage.PredID
}

func (*DoWhileOp) Kind() OpKind     { return KDoWhile }
func (d *DoWhileOp) Children() []Op { return d.Body }

// UnionAllOp (Fig 4's pink Union*) evaluates every rule defining one
// predicate for the current iteration.
type UnionAllOp struct {
	Pred  storage.PredID
	Rules []*UnionRuleOp
}

func (*UnionAllOp) Kind() OpKind { return KUnionAll }
func (u *UnionAllOp) Children() []Op {
	out := make([]Op, len(u.Rules))
	for i, r := range u.Rules {
		out[i] = r
	}
	return out
}

// UnionRuleOp (Fig 4's yellow Union) evaluates one rule definition: the
// union of its delta subqueries (or a single naive subquery in prologues).
type UnionRuleOp struct {
	RuleIdx    int
	Subqueries []*SPJOp
}

func (*UnionRuleOp) Kind() OpKind { return KUnionRule }
func (u *UnionRuleOp) Children() []Op {
	out := make([]Op, len(u.Subqueries))
	for i, s := range u.Subqueries {
		out[i] = s
	}
	return out
}

// SPJOp is the fused σπ⋈ leaf: an n-way join over Atoms (in their current,
// optimizer-controlled order) projecting Head into the sink predicate's
// DeltaNew, with set difference against Derived inlined at the insert
// (paper §V-B1). DeltaIdx identifies the atom reading the delta database
// (-1 for naive/prologue subqueries). Agg, when set, routes matches through
// a grouped aggregator before sinking.
type SPJOp struct {
	RuleIdx  int
	Sink     storage.PredID
	Head     []ProjElem
	Atoms    []Atom
	NumVars  int
	DeltaIdx int // index into Atoms, -1 if none
	Agg      ast.AggSpec
	// OrderGen counts atom-order changes: optimizer.Reorder (the single
	// sanctioned order mutator) bumps it whenever it installs a new
	// permutation, letting consumers memoize order-derived artifacts (e.g.
	// plan-cache keys) without re-hashing the atoms per execution. Code that
	// permutes Atoms by other means must bump it too.
	OrderGen int
}

func (*SPJOp) Kind() OpKind     { return KSPJ }
func (s *SPJOp) Children() []Op { return nil }

// DeltaAtom returns the index of the atom currently reading SrcDelta, or -1.
// The optimizer moves atoms, so DeltaIdx is maintained by Reorder; this
// recomputes it from sources as a cross-check.
func (s *SPJOp) DeltaAtom() int {
	for i, a := range s.Atoms {
		if a.IsRelational() && a.Src == SrcDelta {
			return i
		}
	}
	return -1
}

// Walk visits op and all descendants in pre-order.
func Walk(op Op, f func(Op)) {
	f(op)
	for _, c := range op.Children() {
		Walk(c, f)
	}
}

// Count returns the number of nodes of each kind in the tree.
func Count(op Op) map[OpKind]int {
	m := make(map[OpKind]int)
	Walk(op, func(o Op) { m[o.Kind()]++ })
	return m
}

// Dump renders the tree for debugging.
func Dump(op Op, cat *storage.Catalog) string {
	var sb strings.Builder
	var rec func(o Op, depth int)
	rec = func(o Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		switch n := o.(type) {
		case *UnionAllOp:
			fmt.Fprintf(&sb, "%v into %s\n", n.Kind(), cat.Pred(n.Pred).Name)
		case *SPJOp:
			fmt.Fprintf(&sb, "SPJ -> %s :- ", cat.Pred(n.Sink).Name)
			for i, a := range n.Atoms {
				if i > 0 {
					sb.WriteString(", ")
				}
				if a.IsRelational() {
					neg := ""
					if a.Kind == ast.AtomNegated {
						neg = "!"
					}
					fmt.Fprintf(&sb, "%s%s%v", neg, cat.Pred(a.Pred).Name, a.Src)
				} else {
					fmt.Fprintf(&sb, "%v/%d", a.Builtin, len(a.Terms))
				}
			}
			sb.WriteByte('\n')
		default:
			fmt.Fprintf(&sb, "%v\n", o.Kind())
		}
		for _, c := range o.Children() {
			rec(c, depth+1)
		}
	}
	rec(op, 0)
	return sb.String()
}
