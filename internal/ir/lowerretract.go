package ir

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/storage"
)

// This file lowers a program for DRed-style retraction (delete-and-rederive,
// Gupta/Mumick/Subrahmanian): when ground facts are retracted, the driver
// (internal/interp, OverDelete/Rederive) first computes the over-approximate
// set of derived tuples that MIGHT lose support — the delta-driven closure of
// the deletions through every rule — then physically removes them and runs
// one naive rederivation round over the reduced database to resurrect tuples
// that still have an all-surviving derivation. Cascading rederivations and
// any co-batched insertions then ride the ordinary monotone warm-start
// continuation (ir.LowerWarm + SeedDelta), which is sound because after the
// removal the database is an under-approximation of the new fixpoint.
//
// The lowering itself only produces the SPJ shapes; the driver owns the loop
// structure, so — unlike Lower/LowerWarm — the output is a flat per-rule
// table, not an op tree.

// RetractRule is the retraction shape of one rule.
type RetractRule struct {
	// Head is the rule's sink predicate.
	Head storage.PredID
	// RuleIdx is the rule's index in the source program (plan-cache keying).
	RuleIdx int
	// Propagate holds one delta variant per positive relational body atom —
	// the LowerWarm shape, with SrcDelta reading the deletion delta: a head
	// tuple joining a doomed tuple at that position might lose support.
	Propagate []*SPJOp
	// Rederive is the fully naive variant (DeltaIdx -1), run over the
	// reduced database and sink-filtered to the over-deleted candidates.
	Rederive *SPJOp
}

// LowerRetract builds the retraction table for prog. Like LowerWarm it is
// sound only for monotone programs: stratified negation and aggregation are
// non-monotone under deletion (a removed tuple can create derivations), so
// those programs must take the cold recompute path — callers gate on the
// error.
func LowerRetract(prog *ast.Program) ([]RetractRule, error) {
	out := make([]RetractRule, 0, len(prog.Rules))
	for ri, r := range prog.Rules {
		if r.Agg.Kind != ast.AggNone {
			return nil, fmt.Errorf("ir: retraction lowering requires a monotone program; rule %s aggregates", prog.FormatRule(r))
		}
		rr := RetractRule{Head: r.Head.Pred, RuleIdx: ri}
		for i, a := range r.Body {
			if a.Kind == ast.AtomNegated {
				return nil, fmt.Errorf("ir: retraction lowering requires a monotone program; rule %s negates %s", prog.FormatRule(r), prog.Catalog.Pred(a.Pred).Name)
			}
			if a.Kind != ast.AtomRelation {
				continue
			}
			spj, err := lowerSubquery(prog, ri, i, nil)
			if err != nil {
				return nil, err
			}
			rr.Propagate = append(rr.Propagate, spj)
		}
		naive, err := lowerSubquery(prog, ri, -1, nil)
		if err != nil {
			return nil, err
		}
		rr.Rederive = naive
		out = append(out, rr)
	}
	return out, nil
}
