package ir

import (
	"carac/internal/ast"
	"carac/internal/storage"
)

// CloneSPJ deep-copies one subquery (atoms and terms are fresh slices, so
// reordering the clone never touches the original).
func CloneSPJ(s *SPJOp) *SPJOp {
	c := &SPJOp{
		RuleIdx:  s.RuleIdx,
		Sink:     s.Sink,
		NumVars:  s.NumVars,
		DeltaIdx: s.DeltaIdx,
		Agg:      s.Agg,
	}
	c.Head = append([]ProjElem(nil), s.Head...)
	c.Atoms = make([]Atom, len(s.Atoms))
	for i, a := range s.Atoms {
		a.Terms = append([]ast.Term(nil), a.Terms...)
		c.Atoms[i] = a
	}
	return c
}

// CloneSubtree deep-copies an IR subtree. Asynchronous compilation clones
// the subtree it was asked to compile so that the optimizer can reorder atom
// lists on the compile thread while the interpreter keeps reading the
// original (paper §V-B2: compilation happens on a separate thread while
// interpretation continues).
func CloneSubtree(op Op) Op {
	switch n := op.(type) {
	case *ProgramOp:
		c := &ProgramOp{Body: make([]Op, len(n.Body))}
		for i, ch := range n.Body {
			c.Body[i] = CloneSubtree(ch)
		}
		return c
	case *ScanOp:
		return &ScanOp{Preds: appendPreds(n.Preds)}
	case *SwapClearOp:
		return &SwapClearOp{Preds: appendPreds(n.Preds)}
	case *DoWhileOp:
		c := &DoWhileOp{Preds: appendPreds(n.Preds), Body: make([]Op, len(n.Body))}
		for i, ch := range n.Body {
			c.Body[i] = CloneSubtree(ch)
		}
		return c
	case *UnionAllOp:
		c := &UnionAllOp{Pred: n.Pred, Rules: make([]*UnionRuleOp, len(n.Rules))}
		for i, r := range n.Rules {
			c.Rules[i] = CloneSubtree(r).(*UnionRuleOp)
		}
		return c
	case *UnionRuleOp:
		c := &UnionRuleOp{RuleIdx: n.RuleIdx, Subqueries: make([]*SPJOp, len(n.Subqueries))}
		for i, s := range n.Subqueries {
			c.Subqueries[i] = CloneSPJ(s)
		}
		return c
	case *SPJOp:
		return CloneSPJ(n)
	}
	return op
}

func appendPreds(ps []storage.PredID) []storage.PredID {
	return append([]storage.PredID(nil), ps...)
}
