package ir

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/storage"
)

// LowerWarm lowers prog for an incremental (warm-start) evaluation: Derived
// is assumed to be pre-seeded with a previously computed fixpoint plus any
// newly ingested ground facts, and only the *new* rows — injected into the
// deltas by the interpreter's SeedDelta hook at each ScanOp — need to
// re-enter semi-naive evaluation.
//
// The shape differs from Lower in two ways, both forced by incrementality:
//
//   - Every rule joins against rows that may be old, so every positive
//     relational body atom gets a delta subquery — not just the recursive
//     (same-stratum) occurrences. A new edge fact must join old tc rows
//     through the edge-position delta; Lower's recursive-only variants would
//     silently miss those derivations when the fixpoint is pre-seeded.
//   - There is no naive prologue: non-recursive rules ride the same
//     delta-driven loop (their variants fire exactly once, on the seeded
//     delta), so the warm path never pays a full pass over old rows.
//
// Each stratum's ScanOp and loop cover the stratum's head predicates plus
// every positive body predicate of its rules — foreign predicates (ground
// relations, earlier strata) carry their new rows into the loop through
// their own deltas.
//
// Sound and complete only for monotone programs (no stratified negation, no
// aggregation) under additions-only deltas; callers gate on that.
func LowerWarm(prog *ast.Program) (*ProgramOp, error) {
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	root := &ProgramOp{}
	for _, s := range strata {
		inStratum := make(map[storage.PredID]bool, len(s.Preds))
		for _, p := range s.Preds {
			inStratum[p] = true
		}
		preds := append([]storage.PredID(nil), s.Preds...)
		seen := make(map[storage.PredID]bool, len(preds))
		for _, p := range preds {
			seen[p] = true
		}
		byHead := map[storage.PredID][]int{}
		for _, ri := range s.Rules {
			r := prog.Rules[ri]
			byHead[r.Head.Pred] = append(byHead[r.Head.Pred], ri)
			for _, a := range r.Body {
				if a.Kind == ast.AtomRelation && !seen[a.Pred] {
					seen[a.Pred] = true
					preds = append(preds, a.Pred)
				}
				if a.Kind == ast.AtomNegated {
					return nil, fmt.Errorf("ir: warm-start lowering requires a monotone program; rule %s negates %s", prog.FormatRule(r), prog.Catalog.Pred(a.Pred).Name)
				}
			}
			if r.Agg.Kind != ast.AggNone {
				return nil, fmt.Errorf("ir: warm-start lowering requires a monotone program; rule %s aggregates", prog.FormatRule(r))
			}
		}

		dw := &DoWhileOp{Preds: preds}
		for _, pid := range s.Preds {
			rules := byHead[pid]
			if len(rules) == 0 {
				continue
			}
			ua := &UnionAllOp{Pred: pid}
			for _, ri := range rules {
				r := prog.Rules[ri]
				ur := &UnionRuleOp{RuleIdx: ri}
				for i, a := range r.Body {
					if a.Kind != ast.AtomRelation {
						continue
					}
					spj, serr := lowerSubquery(prog, ri, i, inStratum)
					if serr != nil {
						return nil, serr
					}
					ur.Subqueries = append(ur.Subqueries, spj)
				}
				if len(ur.Subqueries) == 0 {
					// A pure-builtin body has no delta to drive it; evaluate
					// it naively (it fires identically every iteration and
					// dedups away after the first).
					spj, serr := lowerSubquery(prog, ri, -1, inStratum)
					if serr != nil {
						return nil, serr
					}
					ur.Subqueries = append(ur.Subqueries, spj)
				}
				ua.Rules = append(ua.Rules, ur)
			}
			dw.Body = append(dw.Body, ua)
		}
		dw.Body = append(dw.Body, &SwapClearOp{Preds: preds})

		root.Body = append(root.Body, &ScanOp{Preds: preds})
		root.Body = append(root.Body, &SwapClearOp{Preds: preds})
		root.Body = append(root.Body, dw)
	}
	return root, nil
}
