package ir

import (
	"strings"
	"testing"

	"carac/internal/ast"
	"carac/internal/storage"
)

// buildTC returns the transitive-closure program:
// tc(x,y) :- edge(x,y).  tc(x,y) :- tc(x,z), edge(z,y).
func buildTC(t *testing.T) (*ast.Program, storage.PredID, storage.PredID) {
	t.Helper()
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	tc := cat.Declare("tc", 2)
	p := ast.NewProgram(cat)
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(tc, ast.V(0), ast.V(1)),
		Body: []ast.Atom{ast.Rel(edge, ast.V(0), ast.V(1))}, NumVars: 2,
	})
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(tc, ast.V(0), ast.V(1)),
		Body: []ast.Atom{ast.Rel(tc, ast.V(0), ast.V(2)), ast.Rel(edge, ast.V(2), ast.V(1))}, NumVars: 3,
	})
	return p, edge, tc
}

func TestLowerTCShape(t *testing.T) {
	p, _, tc := buildTC(t)
	root, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := Count(root)
	if counts[KProgram] != 1 || counts[KScan] != 1 || counts[KDoWhile] != 1 {
		t.Fatalf("tree shape wrong: %v", counts)
	}
	// One prologue UnionAll (rule 0) + one loop UnionAll (rule 1).
	if counts[KUnionAll] != 2 || counts[KUnionRule] != 2 {
		t.Fatalf("union counts wrong: %v", counts)
	}
	// Prologue subquery naive, loop rule has exactly one delta subquery
	// (only the tc atom is recursive).
	if counts[KSPJ] != 2 {
		t.Fatalf("SPJ count = %d, want 2", counts[KSPJ])
	}
	var spjs []*SPJOp
	Walk(root, func(o Op) {
		if s, ok := o.(*SPJOp); ok {
			spjs = append(spjs, s)
		}
	})
	if spjs[0].DeltaIdx != -1 {
		t.Fatalf("prologue subquery has DeltaIdx %d, want -1", spjs[0].DeltaIdx)
	}
	if spjs[1].DeltaIdx != 0 || spjs[1].Atoms[0].Src != SrcDelta {
		t.Fatalf("loop subquery delta wrong: idx=%d src=%v", spjs[1].DeltaIdx, spjs[1].Atoms[0].Src)
	}
	if spjs[1].Sink != tc {
		t.Fatalf("sink = %d, want tc", spjs[1].Sink)
	}
}

func TestLowerDeltaSubqueryPerRecursiveAtom(t *testing.T) {
	// head :- r(x,y), r(y,z), e(z,w): two recursive occurrences of r give
	// two delta subqueries.
	cat := storage.NewCatalog()
	e := cat.Declare("e", 2)
	r := cat.Declare("r", 2)
	p := ast.NewProgram(cat)
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(r, ast.V(0), ast.V(1)),
		Body: []ast.Atom{ast.Rel(e, ast.V(0), ast.V(1))}, NumVars: 2,
	})
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(r, ast.V(0), ast.V(3)),
		Body: []ast.Atom{
			ast.Rel(r, ast.V(0), ast.V(1)),
			ast.Rel(r, ast.V(1), ast.V(2)),
			ast.Rel(e, ast.V(2), ast.V(3)),
		}, NumVars: 4,
	})
	root, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	var loopRule *UnionRuleOp
	Walk(root, func(o Op) {
		if u, ok := o.(*UnionRuleOp); ok && u.RuleIdx == 1 {
			loopRule = u
		}
	})
	if loopRule == nil || len(loopRule.Subqueries) != 2 {
		t.Fatalf("recursive rule should produce 2 delta subqueries, got %+v", loopRule)
	}
	for i, spj := range loopRule.Subqueries {
		if spj.DeltaIdx != i {
			t.Fatalf("subquery %d delta idx = %d", i, spj.DeltaIdx)
		}
		for j, a := range spj.Atoms {
			wantDelta := j == i
			if a.IsRelational() && (a.Src == SrcDelta) != wantDelta {
				t.Fatalf("subquery %d atom %d src = %v", i, j, a.Src)
			}
		}
	}
}

func TestLowerStratifiedNegationSequence(t *testing.T) {
	cat := storage.NewCatalog()
	num := cat.Declare("num", 1)
	comp := cat.Declare("composite", 1)
	prime := cat.Declare("prime", 1)
	p := ast.NewProgram(cat)
	p.MustAddRule(&ast.Rule{
		Head:    ast.Rel(comp, ast.V(2)),
		Body:    []ast.Atom{ast.Rel(num, ast.V(0)), ast.Rel(num, ast.V(1)), ast.Bi(ast.BMul, ast.V(0), ast.V(1), ast.V(2))},
		NumVars: 3,
	})
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(prime, ast.V(0)),
		Body: []ast.Atom{ast.Rel(num, ast.V(0)), ast.Neg(comp, ast.V(0))}, NumVars: 1,
	})
	root, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two strata, no loops (nothing recursive): Scan, UnionAll, SwapClear ×2.
	counts := Count(root)
	if counts[KDoWhile] != 0 {
		t.Fatalf("non-recursive program should have no DoWhile: %v", counts)
	}
	if counts[KScan] != 2 || counts[KSwapClear] != 2 {
		t.Fatalf("per-stratum ops wrong: %v", counts)
	}
	// composite's stratum must come before prime's.
	var order []storage.PredID
	Walk(root, func(o Op) {
		if u, ok := o.(*UnionAllOp); ok {
			order = append(order, u.Pred)
		}
	})
	if len(order) != 2 || order[0] != comp || order[1] != prime {
		t.Fatalf("stratum order = %v", order)
	}
}

func TestLowerNaiveShape(t *testing.T) {
	p, _, _ := buildTC(t)
	root, err := LowerNaive(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := Count(root)
	if counts[KDoWhile] != 1 {
		t.Fatalf("naive lowering should still loop: %v", counts)
	}
	// Both rules inside the loop, each a single naive subquery.
	var spjs []*SPJOp
	Walk(root, func(o Op) {
		if s, ok := o.(*SPJOp); ok {
			spjs = append(spjs, s)
		}
	})
	if len(spjs) != 2 {
		t.Fatalf("SPJs = %d", len(spjs))
	}
	for _, s := range spjs {
		if s.DeltaIdx != -1 || s.DeltaAtom() != -1 {
			t.Fatal("naive subqueries must not read deltas")
		}
	}
}

func TestJoinKeyColumns(t *testing.T) {
	p, edge, tc := buildTC(t)
	cols := JoinKeyColumns(p)
	// tc(x,z), edge(z,y): z is shared -> tc col 1 and edge col 0.
	if got := cols[tc]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("tc join cols = %v, want [1]", got)
	}
	if got := cols[edge]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("edge join cols = %v, want [0]", got)
	}
}

func TestJoinKeyColumnsConstants(t *testing.T) {
	cat := storage.NewCatalog()
	e := cat.Declare("e", 2)
	out := cat.Declare("out", 1)
	p := ast.NewProgram(cat)
	p.MustAddRule(&ast.Rule{
		Head: ast.Rel(out, ast.V(0)),
		Body: []ast.Atom{ast.Rel(e, ast.C(7), ast.V(0))}, NumVars: 1,
	})
	cols := JoinKeyColumns(p)
	if got := cols[e]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("constant filter column not detected: %v", got)
	}
}

func TestDumpRendersSources(t *testing.T) {
	p, _, _ := buildTC(t)
	root, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	s := Dump(root, p.Catalog)
	if !strings.Contains(s, "tcδ") || !strings.Contains(s, "edge⋆") {
		t.Fatalf("Dump missing source annotations:\n%s", s)
	}
	if !strings.Contains(s, "DoWhileOp") || !strings.Contains(s, "SwapClearOp") {
		t.Fatalf("Dump missing ops:\n%s", s)
	}
}
