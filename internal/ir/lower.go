package ir

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/storage"
)

// Lower partially evaluates the semi-naive evaluation strategy onto prog,
// producing the IROp program of Fig 4: per stratum, a seed ScanOp, the
// non-recursive rules evaluated once (naive prologue), a SwapClearOp, and —
// when the stratum is recursive — a DoWhileOp containing one UnionAllOp per
// predicate (each the union over its rules of the delta subqueries) followed
// by a SwapClearOp.
func Lower(prog *ast.Program) (*ProgramOp, error) {
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	root := &ProgramOp{}
	for _, s := range strata {
		ops, err := lowerStratum(prog, s)
		if err != nil {
			return nil, err
		}
		root.Body = append(root.Body, ops...)
	}
	return root, nil
}

func lowerStratum(prog *ast.Program, s ast.Stratum) ([]Op, error) {
	inStratum := make(map[storage.PredID]bool, len(s.Preds))
	for _, p := range s.Preds {
		inStratum[p] = true
	}

	// Partition the stratum's rules into prologue (non-recursive) and loop
	// (recursive) sets, preserving program order per predicate.
	prologueRules := map[storage.PredID][]int{}
	loopRules := map[storage.PredID][]int{}
	for _, ri := range s.Rules {
		r := prog.Rules[ri]
		rec := ast.RecursiveAtoms(prog, s, ri)
		if len(rec) == 0 {
			prologueRules[r.Head.Pred] = append(prologueRules[r.Head.Pred], ri)
		} else {
			loopRules[r.Head.Pred] = append(loopRules[r.Head.Pred], ri)
		}
	}

	var ops []Op
	ops = append(ops, &ScanOp{Preds: append([]storage.PredID(nil), s.Preds...)})

	for _, pid := range s.Preds {
		rules := prologueRules[pid]
		if len(rules) == 0 {
			continue
		}
		ua := &UnionAllOp{Pred: pid}
		for _, ri := range rules {
			spj, err := lowerSubquery(prog, ri, -1, inStratum)
			if err != nil {
				return nil, err
			}
			ua.Rules = append(ua.Rules, &UnionRuleOp{RuleIdx: ri, Subqueries: []*SPJOp{spj}})
		}
		ops = append(ops, ua)
	}
	ops = append(ops, &SwapClearOp{Preds: append([]storage.PredID(nil), s.Preds...)})

	hasLoop := false
	for _, pid := range s.Preds {
		if len(loopRules[pid]) > 0 {
			hasLoop = true
			break
		}
	}
	if !hasLoop {
		return ops, nil
	}

	dw := &DoWhileOp{Preds: append([]storage.PredID(nil), s.Preds...)}
	for _, pid := range s.Preds {
		rules := loopRules[pid]
		if len(rules) == 0 {
			continue
		}
		ua := &UnionAllOp{Pred: pid}
		for _, ri := range rules {
			r := prog.Rules[ri]
			ur := &UnionRuleOp{RuleIdx: ri}
			// One subquery per recursive body atom: that occurrence reads the
			// delta database, all other relational atoms read derived.
			for _, deltaPos := range ast.RecursiveAtoms(prog, s, ri) {
				spj, err := lowerSubquery(prog, ri, deltaPos, inStratum)
				if err != nil {
					return nil, err
				}
				ur.Subqueries = append(ur.Subqueries, spj)
			}
			if len(ur.Subqueries) == 0 {
				return nil, fmt.Errorf("ir: rule %s classified recursive but has no delta atoms", prog.FormatRule(r))
			}
			ua.Rules = append(ua.Rules, ur)
		}
		dw.Body = append(dw.Body, ua)
	}
	dw.Body = append(dw.Body, &SwapClearOp{Preds: append([]storage.PredID(nil), s.Preds...)})
	ops = append(ops, dw)
	return ops, nil
}

// lowerSubquery builds the SPJOp for rule ri with the body atom at deltaPos
// reading the delta database (-1 for a fully naive evaluation).
func lowerSubquery(prog *ast.Program, ri, deltaPos int, inStratum map[storage.PredID]bool) (*SPJOp, error) {
	r := prog.Rules[ri]
	spj := &SPJOp{
		RuleIdx:  ri,
		Sink:     r.Head.Pred,
		NumVars:  r.NumVars,
		DeltaIdx: deltaPos,
		Agg:      r.Agg,
	}
	for i, a := range r.Body {
		at := Atom{
			Kind:    a.Kind,
			Pred:    a.Pred,
			Builtin: a.Builtin,
			Terms:   append([]ast.Term(nil), a.Terms...),
			Src:     SrcDerived,
		}
		if i == deltaPos {
			if a.Kind != ast.AtomRelation {
				return nil, fmt.Errorf("ir: delta position %d of rule %s is not a positive relational atom", deltaPos, prog.FormatRule(r))
			}
			at.Src = SrcDelta
		}
		spj.Atoms = append(spj.Atoms, at)
	}
	for _, t := range r.Head.Terms {
		switch t.Kind {
		case ast.TermConst:
			spj.Head = append(spj.Head, ProjElem{IsConst: true, Const: t.Val})
		case ast.TermVar:
			spj.Head = append(spj.Head, ProjElem{Var: t.Var})
		}
	}
	_ = inStratum
	return spj, nil
}

// LowerNaive produces a naive-evaluation IR (no delta split): a single
// DoWhileOp evaluating every rule against the full derived database each
// iteration, per stratum. This is the strategy of the DLX baseline engine
// (Table II) and the reference oracle for differential tests.
func LowerNaive(prog *ast.Program) (*ProgramOp, error) {
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	root := &ProgramOp{}
	for _, s := range strata {
		inStratum := make(map[storage.PredID]bool, len(s.Preds))
		for _, p := range s.Preds {
			inStratum[p] = true
		}
		dw := &DoWhileOp{Preds: append([]storage.PredID(nil), s.Preds...)}
		perPred := map[storage.PredID]*UnionAllOp{}
		for _, pid := range s.Preds {
			perPred[pid] = &UnionAllOp{Pred: pid}
			dw.Body = append(dw.Body, perPred[pid])
		}
		for _, ri := range s.Rules {
			r := prog.Rules[ri]
			spj, err := lowerSubquery(prog, ri, -1, inStratum)
			if err != nil {
				return nil, err
			}
			ua := perPred[r.Head.Pred]
			ua.Rules = append(ua.Rules, &UnionRuleOp{RuleIdx: ri, Subqueries: []*SPJOp{spj}})
		}
		dw.Body = append(dw.Body, &SwapClearOp{Preds: append([]storage.PredID(nil), s.Preds...)})
		// Naive evaluation still needs the seed so the loop's exit condition
		// (empty delta) fires correctly after the first quiet iteration.
		root.Body = append(root.Body, &ScanOp{Preds: append([]storage.PredID(nil), s.Preds...)})
		root.Body = append(root.Body, &SwapClearOp{Preds: append([]storage.PredID(nil), s.Preds...)})
		root.Body = append(root.Body, dw)
	}
	return root, nil
}

// JoinKeyColumns returns, per predicate, the set of columns that appear as a
// join key or filter in any rule of the program: shared-variable positions
// and constant positions in body atoms. Carac builds one index per such
// column as rules are defined (paper §IV, Index selection).
func JoinKeyColumns(prog *ast.Program) map[storage.PredID][]int {
	cols := map[storage.PredID]map[int]bool{}
	mark := func(pid storage.PredID, col int) {
		if cols[pid] == nil {
			cols[pid] = map[int]bool{}
		}
		cols[pid][col] = true
	}
	for _, r := range prog.Rules {
		// Count variable occurrences across the whole rule body.
		occ := map[ast.VarID]int{}
		for _, a := range r.Body {
			for _, t := range a.Terms {
				if t.Kind == ast.TermVar {
					occ[t.Var]++
				}
			}
		}
		for _, a := range r.Body {
			if !a.IsRelational() {
				continue
			}
			for i, t := range a.Terms {
				switch t.Kind {
				case ast.TermConst:
					mark(a.Pred, i)
				case ast.TermVar:
					if occ[t.Var] > 1 {
						mark(a.Pred, i)
					}
				}
			}
		}
	}
	out := make(map[storage.PredID][]int, len(cols))
	for pid, set := range cols {
		for c := range set {
			out[pid] = append(out[pid], c)
		}
	}
	for _, cs := range out {
		sortInts(cs)
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// JoinKeySignatures returns, per predicate, the distinct multi-column bound
// sets ("search signatures") occurring in rule bodies: for each atom, the
// set of positions holding a constant or a variable shared with another
// atom. Signatures with at least two columns are candidates for composite
// indexes (auto-index selection, simplified from Subotić et al.).
func JoinKeySignatures(prog *ast.Program) map[storage.PredID][][]int {
	type sigSet map[string][]int
	sigs := map[storage.PredID]sigSet{}
	for _, r := range prog.Rules {
		occ := map[ast.VarID]int{}
		for _, a := range r.Body {
			for _, t := range a.Terms {
				if t.Kind == ast.TermVar {
					occ[t.Var]++
				}
			}
		}
		for _, a := range r.Body {
			if !a.IsRelational() {
				continue
			}
			var cols []int
			for i, t := range a.Terms {
				switch t.Kind {
				case ast.TermConst:
					cols = append(cols, i)
				case ast.TermVar:
					if occ[t.Var] > 1 {
						cols = append(cols, i)
					}
				}
			}
			if len(cols) < 2 {
				continue
			}
			sortInts(cols)
			key := fmt.Sprint(cols)
			if sigs[a.Pred] == nil {
				sigs[a.Pred] = sigSet{}
			}
			sigs[a.Pred][key] = cols
		}
	}
	out := map[storage.PredID][][]int{}
	for pid, ss := range sigs {
		for _, cols := range ss {
			out[pid] = append(out[pid], cols)
		}
	}
	return out
}
