package ir

import (
	"reflect"
	"testing"

	"carac/internal/ast"
	"carac/internal/storage"
)

func TestCloneSubtreeDeep(t *testing.T) {
	p, _, _ := buildTC(t)
	root, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	clone := CloneSubtree(root).(*ProgramOp)

	// Same shape.
	if !reflect.DeepEqual(Count(root), Count(clone)) {
		t.Fatalf("clone shape differs: %v vs %v", Count(root), Count(clone))
	}

	// Mutating the clone's SPJ atom order must not touch the original.
	var orig, cl []*SPJOp
	Walk(root, func(o Op) {
		if s, ok := o.(*SPJOp); ok {
			orig = append(orig, s)
		}
	})
	Walk(clone, func(o Op) {
		if s, ok := o.(*SPJOp); ok {
			cl = append(cl, s)
		}
	})
	if len(orig) != len(cl) {
		t.Fatalf("SPJ counts differ: %d vs %d", len(orig), len(cl))
	}
	for i := range cl {
		if orig[i] == cl[i] {
			t.Fatal("clone shares SPJ node with original")
		}
	}
	target := cl[1]
	target.Atoms[0], target.Atoms[1] = target.Atoms[1], target.Atoms[0]
	target.Atoms[0].Terms[0] = ast.C(99)
	if orig[1].Atoms[0].Terms[0].Kind == ast.TermConst {
		t.Fatal("clone shares term storage with original")
	}
	if orig[1].Atoms[0].Src != SrcDelta {
		t.Fatal("original delta atom moved by clone mutation")
	}
}

func TestCloneSPJMaintainsFields(t *testing.T) {
	s := &SPJOp{
		RuleIdx:  3,
		Sink:     7,
		NumVars:  4,
		DeltaIdx: 1,
		Head:     []ProjElem{{Var: 0}, {IsConst: true, Const: 5}},
		Atoms: []Atom{
			{Kind: ast.AtomRelation, Pred: 1, Terms: []ast.Term{ast.V(0)}, Src: SrcDerived},
			{Kind: ast.AtomRelation, Pred: 2, Terms: []ast.Term{ast.V(1)}, Src: SrcDelta},
		},
		Agg: ast.AggSpec{Kind: ast.AggCount, HeadPos: 1},
	}
	c := CloneSPJ(s)
	if c.RuleIdx != 3 || c.Sink != 7 || c.NumVars != 4 || c.DeltaIdx != 1 || c.Agg.Kind != ast.AggCount {
		t.Fatalf("scalar fields lost: %+v", c)
	}
	c.Head[0].Var = 9
	if s.Head[0].Var == 9 {
		t.Fatal("head shared")
	}
}

func TestCloneScanAndSwap(t *testing.T) {
	sc := &ScanOp{Preds: []storage.PredID{0, 1}}
	c := CloneSubtree(sc).(*ScanOp)
	c.Preds[0] = 42
	if sc.Preds[0] == 42 {
		t.Fatal("ScanOp preds shared")
	}
	sw := &SwapClearOp{Preds: []storage.PredID{2}}
	cs := CloneSubtree(sw).(*SwapClearOp)
	cs.Preds[0] = 42
	if sw.Preds[0] == 42 {
		t.Fatal("SwapClearOp preds shared")
	}
}
