package jit

import (
	"testing"

	"carac/internal/interp"
	"carac/internal/ir"
)

// TestYieldDeclinedFallsBackCleanly: async at Program granularity means
// subquery-level yields race against unit publication; correctness must hold
// regardless of timing.
func TestYieldDeclinedFallsBackCleanly(t *testing.T) {
	cat, root := buildChain(t, 30, true)
	ctrl := New(cat, root, Config{Backend: BackendLambda, Granularity: GranProgram, Async: true})
	defer ctrl.Close()
	in := interp.New(cat, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	checkTC(t, cat, 30)
}

// alwaysYield forces the yield path on every poll and declines at Enter —
// the interpreter must re-run every subquery and still converge.
type alwaysYield struct{}

func (alwaysYield) Enter(op ir.Op, in *interp.Interp) func() error { return nil }
func (alwaysYield) ShouldYield(op ir.Op, in *interp.Interp) bool   { return true }

func TestSpuriousYieldNeverLosesDerivations(t *testing.T) {
	cat, root := buildChain(t, 25, true)
	in := interp.New(cat, alwaysYield{})
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	checkTC(t, cat, 25)
}

// TestShouldYieldGating verifies the consume-once and miss-cache semantics.
func TestShouldYieldGating(t *testing.T) {
	cat, root := buildChain(t, 10, true)
	ctrl := New(cat, root, Config{Backend: BackendLambda, Granularity: GranDoWhile, Async: true})
	defer ctrl.Close()
	var spj *ir.SPJOp
	var dw *ir.DoWhileOp
	ir.Walk(root, func(o ir.Op) {
		if s, ok := o.(*ir.SPJOp); ok && spj == nil && s.DeltaIdx >= 0 {
			spj = s
		}
		if d, ok := o.(*ir.DoWhileOp); ok {
			dw = d
		}
	})
	in := interp.New(cat, ctrl)
	if ctrl.ShouldYield(spj, in) {
		t.Fatal("yield without any published unit")
	}
	// Publish a unit for the loop by hand, the way the compile worker does.
	ctrl.units.Store(ctrl.keyFor(dw), ctrl.countersFor(dw), ctrl.cardsFor(dw),
		&compiledUnit{run: func(*interp.Interp) error { return nil }})
	ctrl.readyGen.Add(1)
	if !ctrl.ShouldYield(spj, in) {
		t.Fatal("yield not granted for covering ready unit")
	}
	if ctrl.ShouldYield(spj, in) {
		t.Fatal("signal not consumed")
	}
	// A new publish re-arms the signal.
	ctrl.readyGen.Add(1)
	if !ctrl.ShouldYield(spj, in) {
		t.Fatal("new publish did not re-arm yield")
	}
}
