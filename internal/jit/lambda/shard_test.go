package lambda

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// shardFixture lowers the TC program, physically shards every predicate on
// column 0, seeds a mid-fixpoint state (edge ground facts derived, tc's
// DeltaKnown carrying the edge pairs), and compiles the recursive rule into
// a ShardUnit.
func shardFixture(t *testing.T, shards int) (*storage.Catalog, interp.ShardUnit) {
	t.Helper()
	cat, root := lowerSrc(t, tcSrc)
	keyCols := map[storage.PredID]int{}
	cat.ConfigureShardsPhysical(shards, keyCols)
	edge, _ := cat.PredByName("edge")
	tc, _ := cat.PredByName("tc")
	edge.BuildIndexes([]int{0})
	tc.BuildIndexes([]int{0, 1})
	tc.DeltaKnown.InsertAll(edge.Derived)

	var rule *ir.UnionRuleOp
	ir.Walk(root, func(o ir.Op) {
		if r, ok := o.(*ir.UnionRuleOp); ok && rule == nil {
			for _, s := range r.Subqueries {
				if s.DeltaAtom() >= 0 {
					rule = r
				}
			}
		}
	})
	if rule == nil {
		t.Fatal("no recursive rule found")
	}
	unit, err := Compiler{}.CompileShard(rule, cat)
	if err != nil {
		t.Fatal(err)
	}
	return cat, unit
}

func deltaNew(cat *storage.Catalog, name string) []string {
	pd, _ := cat.PredByName(name)
	var rows []string
	pd.DeltaNew.Each(func(row []storage.Value) bool {
		rows = append(rows, fmt.Sprint(row))
		return true
	})
	sort.Strings(rows)
	return rows
}

// TestShardUnitSpanCoverage: for every span decomposition of the bucket
// range, the union of the spans' derivations equals the unrestricted
// evaluation — no bucket dropped, none duplicated (DeltaNew's dedup would
// hide duplicates, so the derivation counter is compared too).
func TestShardUnitSpanCoverage(t *testing.T) {
	const shards = 4
	refCat, refUnit := shardFixture(t, shards)
	refIn := interp.New(refCat, nil)
	if err := refUnit(refIn, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := deltaNew(refCat, "tc")
	if len(want) == 0 {
		t.Fatal("reference run derived nothing — fixture too small")
	}
	for _, spans := range [][][2]int{
		{{0, 4}},                         // one full-range task
		{{0, 2}, {2, 2}},                 // two half-range tasks
		{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, // one task per bucket
		{{0, 3}, {3, 1}},                 // uneven split
	} {
		cat, unit := shardFixture(t, shards)
		in := interp.New(cat, nil)
		for _, sp := range spans {
			if err := unit(in, sp[0], sp[1], shards); err != nil {
				t.Fatal(err)
			}
		}
		got := deltaNew(cat, "tc")
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("spans %v derived %v, want %v", spans, got, want)
		}
		if in.Stats.Derivations != refIn.Stats.Derivations {
			t.Fatalf("spans %v counted %d derivations, reference %d", spans, in.Stats.Derivations, refIn.Stats.Derivations)
		}
	}
}

// TestShardUnitConcurrentSpans: invocations over disjoint spans are safe to
// run concurrently — per-invocation frames, bucket-local reads, disjoint
// ShardInsert targets. Derivations land in per-goroutine buffer relations
// (the pool's shape) and are folded afterwards.
func TestShardUnitConcurrentSpans(t *testing.T) {
	const shards = 8
	refCat, refUnit := shardFixture(t, shards)
	if err := refUnit(interp.New(refCat, nil), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := deltaNew(refCat, "tc")

	cat, unit := shardFixture(t, shards)
	tc, _ := cat.PredByName("tc")
	var wg sync.WaitGroup
	errs := make([]error, shards)
	bufs := make([]*storage.Relation, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			buf := storage.NewRelation("buf", 2)
			buf.SetShardKey(shards, tc.ShardKeyCol())
			bufs[s] = buf
			sub := interp.NewBuffered(cat, func(storage.PredID) *storage.Relation { return buf })
			errs[s] = unit(sub, s, 1, shards)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("span %d: %v", s, err)
		}
	}
	for _, buf := range bufs {
		tc.DeltaNew.InsertAll(buf)
	}
	got := deltaNew(cat, "tc")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("concurrent spans derived %v, want %v", got, want)
	}
}

// TestShardUnitLayoutAgnostic: a unit compiled under one partition layout
// stays correct when the relations are re-partitioned or dissolved — the
// layout is resolved per invocation, which is what keeps cached units valid
// across mode transitions.
func TestShardUnitLayoutAgnostic(t *testing.T) {
	refCat, refUnit := shardFixture(t, 4)
	if err := refUnit(interp.New(refCat, nil), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := deltaNew(refCat, "tc")

	cat, unit := shardFixture(t, 4)
	// Dissolve the physical partition entirely; the unit must fall back to
	// the flat read surface (and the per-row hash filter when restricted).
	cat.ConfigureShards(0, nil)
	in := interp.New(cat, nil)
	for s := 0; s < 4; s++ {
		if err := unit(in, s, 1, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := deltaNew(cat, "tc"); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dissolved layout derived %v, want %v", got, want)
	}
}

// TestShardCompileRejectsAggregation: aggregation rules cannot be evaluated
// per span (partial groups); CompileShard must refuse so the controller
// caches a failure marker and the tasks stay interpreted.
func TestShardCompileRejectsAggregation(t *testing.T) {
	cat := storage.NewCatalog()
	sink := cat.Declare("deg", 2)
	edge := cat.Declare("edge", 2)
	spj := &ir.SPJOp{
		Sink:     sink,
		Head:     []ir.ProjElem{{Var: 0}, {Var: 2}},
		NumVars:  3,
		DeltaIdx: -1,
		Agg:      ast.AggSpec{Kind: ast.AggCount, HeadPos: 1},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: edge, Terms: []ast.Term{ast.V(0), ast.V(1)}},
		},
	}
	if _, err := (Compiler{}).CompileShard(spj, cat); err == nil {
		t.Fatal("aggregation subquery accepted for shard compilation")
	}
}
