// Span-parameterized compilation over the physical bucket store: a
// ShardUnit is the compiled body of one rule's parallel task, invoked by
// the fixpoint driver's pool workers with the same contiguous bucket spans
// chooseFanout hands the interpreted tasks. Unlike the sequential units of
// CompilePlan — whose scratch buffers are allocated at compile time because
// they run on the single interpreter goroutine — shard units thread every
// piece of mutable state through a per-invocation frame, so distinct
// workers can run the same unit over disjoint spans concurrently.
//
// The compiled read surface is bucket-local: physically sharded relations
// (storage.SetShardKeyPhysical) are iterated through their PhysSubs
// sub-relations — per-bucket arenas, per-bucket hash indexes, and, for a
// probe on the shard key column, routing to exactly one bucket — while the
// delta step's span restriction narrows the iteration to the task's bucket
// range instead of hashing every row. Derivations flow through
// interp.Interp.DerivationSink: under the parallel pool that is the
// worker's private buffer relation — bucket-partitioned to mirror the sink
// (view-mode bucket lists maintained by Insert), private to one worker, and
// drained by the merge barrier as one race-free ShardInsert task per
// (predicate, bucket); standalone invocations fall back to the classic
// DeltaNew sink.
package lambda

import (
	"fmt"
	"sync"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// CompileShard compiles a rule subtree (UnionRuleOp, or a single SPJOp)
// into a span-parameterized interp.ShardUnit. Atom orders and probe
// selections freeze at compile time, exactly like CompileSPJ; the bucket
// restriction and the storage layout are resolved per invocation, so one
// unit stays valid across SwapClear's relation exchanges, ClearRetain, and
// partition-mode transitions. Aggregation rules are rejected: a
// bucket-restricted evaluation would emit per-span partial groups.
func (c Compiler) CompileShard(op ir.Op, cat *storage.Catalog) (interp.ShardUnit, error) {
	switch n := op.(type) {
	case *ir.UnionRuleOp:
		units := make([]interp.ShardUnit, len(n.Subqueries))
		for i, s := range n.Subqueries {
			u, err := c.CompileShard(s, cat)
			if err != nil {
				return nil, err
			}
			units[i] = u
		}
		return func(in *interp.Interp, shard, span, total int) error {
			for _, u := range units {
				if err := u(in, shard, span, total); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ir.SPJOp:
		return compileShardSPJ(n, cat)
	}
	return nil, fmt.Errorf("lambda: cannot shard-compile %T", op)
}

// sframe is the per-invocation register file of a shard unit. Compiled step
// chains close over immutable descriptors only; everything a concurrent
// invocation mutates lives here. Frames recycle through the unit's pool.
type sframe struct {
	in   *interp.Interp
	bind []storage.Value
	buf  []storage.Value // emit/negation/builtin tuple scratch
	vals []storage.Value // composite probe key scratch

	// Task restriction, installed by the unit entry point: admit only delta
	// rows of buckets [shard, shard+span) of a total-way partition. span 0
	// means unrestricted. keyCol is the delta predicate's shard key column,
	// resolved per invocation for the row-hash fallback.
	shard, span, total int
	keyCol             int
}

// restricted reports whether the frame carries an active span restriction.
func (f *sframe) restricted() bool { return f.span > 0 && f.total > 1 }

// admits applies the per-row hash fallback of the delta restriction (used
// when the relation's live partition does not mirror the task layout, or
// when a probe routes through an index that is not bucket-partitioned).
func (f *sframe) admits(row []storage.Value) bool {
	s := storage.ShardOf(row[f.keyCol], f.total)
	return s >= f.shard && s < f.shard+f.span
}

// sstep is one combinator of a shard unit's step chain.
type sstep func(f *sframe)

// compileShardSPJ freezes one subquery into a frame-threaded combinator
// chain with its delta read span-parameterized.
func compileShardSPJ(spj *ir.SPJOp, cat *storage.Catalog) (interp.ShardUnit, error) {
	if spj.Agg.Kind != ast.AggNone {
		return nil, fmt.Errorf("lambda: aggregation subquery is not shard-compilable (per-span partial groups)")
	}
	plan, err := interp.BuildPlan(spj, cat)
	if err != nil {
		return nil, err
	}
	// The restriction applies to the subquery's delta read: the first
	// relational step sourcing SrcDelta (semi-naive lowering gives each
	// subquery at most one) — mirroring the interpreter's applyShard.
	deltaStep := -1
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if st.Src != ir.SrcDelta {
			continue
		}
		if st.Kind == interp.StepScan || st.Kind == interp.StepProbe || st.Kind == interp.StepProbeN {
			deltaStep = i
			break
		}
	}
	chain := compileShardEmit(plan)
	for i := len(plan.Steps) - 1; i >= 0; i-- {
		chain = compileShardStep(&plan.Steps[i], chain, i == 0, i == deltaStep)
	}
	hasDelta := deltaStep >= 0
	var deltaPred storage.PredID
	if hasDelta {
		deltaPred = plan.Steps[deltaStep].Pred
	}
	numVars := plan.NumVars
	pool := &sync.Pool{New: func() any {
		return &sframe{
			bind: make([]storage.Value, numVars),
			buf:  make([]storage.Value, 0, 16),
			vals: make([]storage.Value, 0, 8),
		}
	}}
	return func(in *interp.Interp, shard, span, total int) error {
		restricted := span > 0 && total > 1
		if restricted && !hasDelta && shard != 0 {
			// Whole-relation subqueries are not span-divisible; the first
			// task runs them alone so the fan-out neither duplicates nor
			// drops them (the interpreter's shardSkip rule).
			return nil
		}
		if restricted && hasDelta {
			// Empty-span fast-out, mirroring the interpreter's shardSkip:
			// when the delta relation's partition matches the task layout,
			// an O(span) bucket-length test skips the whole chain — without
			// it a skewed partition pays the unit's outer scans on every
			// empty task. Uncounted in SPJRuns, like the interpreted skip.
			rel := in.Cat.Pred(deltaPred).DeltaKnown
			if sc, _ := rel.ShardConfig(); sc == total {
				empty := true
				for s := shard; s < shard+span; s++ {
					if rel.ShardLen(s) > 0 {
						empty = false
						break
					}
				}
				if empty {
					return nil
				}
			}
		}
		in.Stats.SPJRuns++
		f := pool.Get().(*sframe)
		f.in = in
		for i := range f.bind {
			f.bind[i] = 0
		}
		if restricted {
			f.shard, f.span, f.total = shard, span, total
			f.keyCol = in.Cat.Pred(deltaPred).ShardKeyCol()
		} else {
			f.shard, f.span, f.total = 0, 0, 0
		}
		chain(f)
		f.in = nil
		pool.Put(f)
		if in.Cancelled() {
			return interp.ErrCancelled
		}
		return nil
	}, nil
}

// compileShardStep selects the frame-threaded combinator for one step.
// delta marks the subquery's restricted delta read.
func compileShardStep(st *interp.Step, next sstep, outermost, delta bool) sstep {
	switch st.Kind {
	case interp.StepScan, interp.StepProbe, interp.StepProbeN:
		return compileShardRelStep(st, next, outermost, delta)

	case interp.StepNegCheck:
		pred, src := st.Pred, st.Src
		tmpl := st.Tmpl
		return func(f *sframe) {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			f.buf = f.buf[:0]
			for _, tm := range tmpl {
				f.buf = append(f.buf, resolveTmpl(tm, f.bind))
			}
			if !rel.Contains(f.buf) {
				next(f)
			}
		}

	case interp.StepBuiltin:
		b := st.Builtin
		args := st.Args
		out := st.Out
		outVar := st.OutVar
		if out < 0 {
			return func(f *sframe) {
				f.buf = f.buf[:0]
				for _, a := range args {
					f.buf = append(f.buf, resolveTmpl(a, f.bind))
				}
				if eval.Check(b, f.buf) {
					next(f)
				}
			}
		}
		return func(f *sframe) {
			f.buf = f.buf[:0]
			for i, a := range args {
				if i == out {
					f.buf = append(f.buf, 0)
					continue
				}
				f.buf = append(f.buf, resolveTmpl(a, f.bind))
			}
			if v, ok := eval.Solve(b, f.buf, out); ok {
				f.bind[outVar] = v
				next(f)
			}
		}
	}
	return next
}

// compileShardRelStep compiles a relational step over the bucket-local read
// surface: physical relations iterate their PhysSubs sub-relations (bucket
// indexes, key-column probe routing), view-partitioned relations serve span
// scans from their exact bucket lists, and mismatched layouts fall back to
// the per-row hash filter — the same admission decisions Plan.Execute makes,
// frozen into combinators.
func compileShardRelStep(st *interp.Step, next sstep, outermost, delta bool) sstep {
	pred, src := st.Pred, st.Src
	checks := st.Checks
	binds := st.Binds
	kind := st.Kind
	probeCol := st.ProbeCol
	probeKey := st.ProbeKey
	probeCols := st.ProbeCols
	probeKeys := st.ProbeKeys

	// match applies the step's residual checks and binds, then descends.
	// filter routes restricted rows through the frame's hash admission.
	match := func(f *sframe, row []storage.Value, filter bool) {
		if filter && !f.admits(row) {
			return
		}
		for _, ck := range checks {
			switch ck.Mode {
			case interp.CheckConst:
				if row[ck.Col] != ck.Const {
					return
				}
			case interp.CheckVar:
				if row[ck.Col] != f.bind[ck.Var] {
					return
				}
			case interp.CheckSameRow:
				if row[ck.Col] != row[ck.Other] {
					return
				}
			}
		}
		for _, b := range binds {
			f.bind[b.Var] = row[b.Col]
		}
		next(f)
	}

	// span resolves the admitted bucket range over a partitioned relation
	// and whether rows must additionally pass the hash filter.
	span := func(f *sframe, rel *storage.Relation, buckets int) (lo, hi int, filter bool) {
		lo, hi = 0, buckets
		if !delta || !f.restricted() {
			return lo, hi, false
		}
		if sc, col := rel.ShardConfig(); sc == f.total && col == f.keyCol {
			return f.shard, f.shard + f.span, false
		}
		return lo, hi, true
	}

	switch kind {
	case interp.StepProbe:
		return func(f *sframe) {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			k := resolveTmpl(probeKey, f.bind)
			if subs := rel.PhysSubs(); subs != nil {
				lo, hi, filter := span(f, rel, len(subs))
				// A probe on the shard key column routes to exactly one
				// bucket's index; a bucket outside the task's span holds
				// nothing this task may emit, hence the intersection.
				plo, phi := rel.ProbeSpan(probeCol, k)
				rel.EachShardRangeProbe(max(lo, plo), min(hi, phi), probeCol, k, func(row []storage.Value) bool {
					match(f, row, filter)
					return true
				})
				return
			}
			// Flat or view-partitioned: the global index is not bucket-
			// partitioned, so a restricted step re-checks membership per row.
			filter := delta && f.restricted()
			rel.EachProbe(probeCol, k, func(row []storage.Value) bool {
				match(f, row, filter)
				return true
			})
		}

	case interp.StepProbeN:
		return func(f *sframe) {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			// Stack discipline on the shared key scratch: this step's keys
			// live past the descent into inner steps (the probe visits run
			// per outer row), so inner ProbeN steps append after this
			// segment and the segment is popped when the iteration finishes.
			base := len(f.vals)
			for _, k := range probeKeys {
				f.vals = append(f.vals, resolveTmpl(k, f.bind))
			}
			defer func() { f.vals = f.vals[:base] }()
			vals := f.vals[base : base+len(probeKeys)]
			if subs := rel.PhysSubs(); subs != nil {
				lo, hi, filter := span(f, rel, len(subs))
				// A composite probe covering the shard key column routes to
				// one bucket, like the single-column case.
				plo, phi := rel.ProbeSpanComposite(probeCols, vals)
				rel.EachShardRangeProbeComposite(max(lo, plo), min(hi, phi), probeCols, vals, func(row []storage.Value) bool {
					match(f, row, filter)
					return true
				})
				return
			}
			filter := delta && f.restricted()
			rel.EachProbeComposite(probeCols, vals, func(row []storage.Value) bool {
				match(f, row, filter)
				return true
			})
		}
	}

	// StepScan. The outermost loop polls cancellation per row so runaway
	// products abort (benchmark DNF timeouts), like the sequential backend.
	return func(f *sframe) {
		rel := interp.SourceRel(f.in.Cat, pred, src)
		scan := func(row []storage.Value, filter bool) bool {
			if outermost && f.in.Cancelled() {
				return false
			}
			match(f, row, filter)
			return true
		}
		if subs := rel.PhysSubs(); subs != nil {
			lo, hi, filter := span(f, rel, len(subs))
			for s := lo; s < hi; s++ {
				stopped := false
				subs[s].Each(func(row []storage.Value) bool {
					if !scan(row, filter) {
						stopped = true
						return false
					}
					return true
				})
				if stopped {
					return
				}
			}
			return
		}
		if delta && f.restricted() {
			if sc, col := rel.ShardConfig(); sc == f.total && col == f.keyCol {
				// View partition mirroring the task layout: the exact bucket
				// lists serve the span without a per-row hash.
				rel.EachShardRange(f.shard, f.shard+f.span, func(row []storage.Value) bool {
					return scan(row, false)
				})
				return
			}
			rel.Each(func(row []storage.Value) bool {
				return scan(row, true)
			})
			return
		}
		rel.Each(func(row []storage.Value) bool {
			return scan(row, false)
		})
	}
}

// compileShardEmit compiles the head projection and sink write. Under the
// parallel pool the frame's interpreter exposes a worker buffer
// (DerivationSink): the emit applies the set difference against the
// iteration-frozen Derived (bucket-local under the split dedup) and inserts
// the survivor — safe because each worker owns its buffers outright. The
// buffer's view partition mirrors the sink's layout, so the merge barrier
// can later drain bucket b of every worker's buffer into DeltaNew's bucket
// b as concurrent race-free ShardInsert tasks. Without a buffer
// (standalone execution) it is the classic counted DeltaNew sink.
func compileShardEmit(plan *interp.Plan) sstep {
	head := plan.Head
	sinkPred := plan.Sink
	return func(f *sframe) {
		f.buf = f.buf[:0]
		for _, h := range head {
			if h.IsConst {
				f.buf = append(f.buf, h.Const)
			} else {
				f.buf = append(f.buf, f.bind[h.Var])
			}
		}
		pd := f.in.Cat.Pred(sinkPred)
		if buf := f.in.DerivationSink(sinkPred); buf != nil {
			if !pd.Derived.Contains(f.buf) {
				buf.Insert(f.buf)
			}
			return
		}
		if !pd.Derived.Contains(f.buf) && pd.DeltaNew.Insert(f.buf) {
			f.in.Stats.Derivations++
		}
	}
}
