// Package lambda implements Carac's Lambda compilation target (paper §V-C3):
// at runtime it stitches together higher-order functions that were compiled
// ahead of time (the step combinators below), producing an executable with
// no tree-traversal or per-run planning overhead. Like the paper's backend
// it cannot generate arbitrary code — only compositions of the predefined
// combinators — which keeps compilation nearly free while staying type-safe.
package lambda

import (
	"fmt"
	"sync"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// Unit is a compiled executable subtree.
type Unit = func(in *interp.Interp) error

// Compiler compiles IR subtrees into closure chains. The zero value is ready
// to use.
type Compiler struct{}

// Name identifies the backend.
func (Compiler) Name() string { return "lambda" }

// Compile builds a Unit for op. The atom orders and probe selections of
// every SPJ beneath op are frozen at compile time. When snippet is true only
// op's own control logic is compiled; children are executed by splicing
// interpreter continuations (safe points between children are preserved).
func (c Compiler) Compile(op ir.Op, cat *storage.Catalog, snippet bool) (Unit, error) {
	if snippet {
		return c.compileSnippet(op, cat)
	}
	return c.compileFull(op, cat)
}

func (c Compiler) compileFull(op ir.Op, cat *storage.Catalog) (Unit, error) {
	switch n := op.(type) {
	case *ir.ProgramOp:
		return c.compileSeq(n.Body, cat)

	case *ir.ScanOp:
		preds := n.Preds
		return func(in *interp.Interp) error {
			for _, pid := range preds {
				p := in.Cat.Pred(pid)
				p.DeltaNew.InsertAll(p.Derived)
			}
			return nil
		}, nil

	case *ir.SwapClearOp:
		preds := n.Preds
		return func(in *interp.Interp) error {
			for _, pid := range preds {
				in.Cat.Pred(pid).SwapClear()
			}
			return nil
		}, nil

	case *ir.DoWhileOp:
		body, err := c.compileSeq(n.Body, cat)
		if err != nil {
			return nil, err
		}
		preds := n.Preds
		return func(in *interp.Interp) error {
			for {
				if in.Cancelled() {
					return interp.ErrCancelled
				}
				if err := body(in); err != nil {
					return err
				}
				in.Stats.Iterations++
				if interp.DeltasEmpty(in.Cat, preds) {
					return nil
				}
			}
		}, nil

	case *ir.UnionAllOp:
		units := make([]Unit, len(n.Rules))
		for i, r := range n.Rules {
			u, err := c.compileFull(r, cat)
			if err != nil {
				return nil, err
			}
			units[i] = u
		}
		return seqUnit(units), nil

	case *ir.UnionRuleOp:
		units := make([]Unit, len(n.Subqueries))
		for i, s := range n.Subqueries {
			u, err := c.compileFull(s, cat)
			if err != nil {
				return nil, err
			}
			units[i] = u
		}
		return seqUnit(units), nil

	case *ir.SPJOp:
		return c.CompileSPJ(n, cat)
	}
	return nil, fmt.Errorf("lambda: cannot compile %T", op)
}

// compileSnippet compiles only op's own control structure; every child is a
// continuation back into the interpreter.
func (c Compiler) compileSnippet(op ir.Op, cat *storage.Catalog) (Unit, error) {
	cont := func(child ir.Op) Unit {
		return func(in *interp.Interp) error { return in.Exec(child) }
	}
	switch n := op.(type) {
	case *ir.ProgramOp:
		units := make([]Unit, len(n.Body))
		for i, ch := range n.Body {
			units[i] = cont(ch)
		}
		return seqUnit(units), nil
	case *ir.DoWhileOp:
		units := make([]Unit, len(n.Body))
		for i, ch := range n.Body {
			units[i] = cont(ch)
		}
		body := seqUnit(units)
		preds := n.Preds
		return func(in *interp.Interp) error {
			for {
				if in.Cancelled() {
					return interp.ErrCancelled
				}
				if err := body(in); err != nil {
					return err
				}
				in.Stats.Iterations++
				if interp.DeltasEmpty(in.Cat, preds) {
					return nil
				}
			}
		}, nil
	case *ir.UnionAllOp:
		units := make([]Unit, len(n.Rules))
		for i, ch := range n.Rules {
			units[i] = cont(ch)
		}
		return seqUnit(units), nil
	case *ir.UnionRuleOp:
		units := make([]Unit, len(n.Subqueries))
		for i, ch := range n.Subqueries {
			units[i] = cont(ch)
		}
		return seqUnit(units), nil
	default:
		// Leaves have no children; snippet equals full.
		return c.compileFull(op, cat)
	}
}

func (c Compiler) compileSeq(ops []ir.Op, cat *storage.Catalog) (Unit, error) {
	units := make([]Unit, len(ops))
	for i, o := range ops {
		u, err := c.compileFull(o, cat)
		if err != nil {
			return nil, err
		}
		units[i] = u
	}
	return seqUnit(units), nil
}

func seqUnit(units []Unit) Unit {
	return func(in *interp.Interp) error {
		for _, u := range units {
			if err := u(in); err != nil {
				return err
			}
		}
		return nil
	}
}

// matchFn consumes the variable bindings after all steps matched.
type matchFn func(in *interp.Interp, bind []storage.Value)

// stepFn is one precompiled step combinator: it reads/extends bind and calls
// into the next combinator for every match.
type stepFn func(in *interp.Interp, bind []storage.Value)

// CompileSPJ freezes the subquery's current atom order into a closure chain.
// Exported so the quotes backend can splice subquery bodies.
func (c Compiler) CompileSPJ(spj *ir.SPJOp, cat *storage.Catalog) (Unit, error) {
	plan, err := interp.BuildPlan(spj, cat)
	if err != nil {
		return nil, err
	}
	return CompilePlan(plan), nil
}

// chainInst is one privately-stitched instance of a unit's combinator
// chain: the step closures own their scratch buffers, so distinct instances
// can run concurrently. Instances recycle through the unit's pool.
type chainInst struct {
	chain stepFn
	bind  []storage.Value
}

// CompilePlan stitches the plan's steps into combinators. Units are cached
// in the shared store and may be invoked concurrently by engines serving
// different sessions, so each concurrent execution draws its own stitched
// chain — scratch buffers and all — from a pool, the same frame discipline
// shard units use.
func CompilePlan(plan *interp.Plan) Unit {
	numVars := plan.NumVars
	agg := plan.Agg
	sinkPred := plan.Sink
	if agg.Kind == ast.AggNone {
		pool := &sync.Pool{New: func() any {
			chain := compileEmit(plan)
			for i := len(plan.Steps) - 1; i >= 0; i-- {
				chain = compileStep(&plan.Steps[i], chain, i == 0)
			}
			return &chainInst{chain: chain, bind: make([]storage.Value, numVars)}
		}}
		return func(in *interp.Interp) error {
			in.Stats.SPJRuns++
			ci := pool.Get().(*chainInst)
			for i := range ci.bind {
				ci.bind[i] = 0
			}
			ci.chain(in, ci.bind)
			pool.Put(ci)
			return nil
		}
	}
	// Aggregation: accumulate matches, then sink groups.
	headLen := len(plan.Head)
	head := plan.Head
	return func(in *interp.Interp) error {
		in.Stats.SPJRuns++
		a := eval.NewAggregator(agg.Kind, headLen, agg.HeadPos)
		bind := make([]storage.Value, numVars)
		tmp := make([]storage.Value, headLen)
		collect := func(in *interp.Interp, b []storage.Value) {
			for hi, h := range head {
				if h.IsConst {
					tmp[hi] = h.Const
				} else {
					tmp[hi] = b[h.Var]
				}
			}
			var v storage.Value
			if agg.Kind != ast.AggCount {
				v = b[agg.OverVar]
			}
			a.Add(tmp, v)
		}
		// Rebuild the chain with the collecting sink.
		cchain := stepFn(collect)
		for i := len(plan.Steps) - 1; i >= 0; i-- {
			cchain = compileStep(&plan.Steps[i], cchain, i == 0)
		}
		cchain(in, bind)
		sink := in.Cat.Pred(sinkPred)
		a.Emit(func(t []storage.Value) {
			if !sink.Derived.Contains(t) && sink.DeltaNew.Insert(t) {
				in.Stats.Derivations++
			}
		})
		return nil
	}
}

func compileEmit(plan *interp.Plan) stepFn {
	head := plan.Head
	sinkPred := plan.Sink
	// Scratch is private to one chain instance (chains never re-enter
	// themselves), so buffers can be allocated at stitch time.
	tuple := make([]storage.Value, len(head))
	return func(in *interp.Interp, bind []storage.Value) {
		for hi, h := range head {
			if h.IsConst {
				tuple[hi] = h.Const
			} else {
				tuple[hi] = bind[h.Var]
			}
		}
		sink := in.Cat.Pred(sinkPred)
		if !sink.Derived.Contains(tuple) && sink.DeltaNew.Insert(tuple) {
			in.Stats.Derivations++
		}
	}
}

// compileStep selects a precompiled combinator for one step and binds it to
// the continuation — the paper's "stitching" of higher-order functions.
// The outermost relational step polls cancellation once per row.
func compileStep(st *interp.Step, next stepFn, outermost bool) stepFn {
	switch st.Kind {
	case interp.StepScan, interp.StepProbe, interp.StepProbeN:
		return compileRelStep(st, next, outermost)
	case interp.StepNegCheck:
		pred, src := st.Pred, st.Src
		tmpl := st.Tmpl
		tuple := make([]storage.Value, len(tmpl))
		return func(in *interp.Interp, bind []storage.Value) {
			rel := interp.SourceRel(in.Cat, pred, src)
			for i, tm := range tmpl {
				tuple[i] = resolveTmpl(tm, bind)
			}
			if !rel.Contains(tuple) {
				next(in, bind)
			}
		}
	case interp.StepBuiltin:
		b := st.Builtin
		args := st.Args
		out := st.Out
		outVar := st.OutVar
		vals := make([]storage.Value, len(args))
		if out < 0 {
			return func(in *interp.Interp, bind []storage.Value) {
				for i, a := range args {
					vals[i] = resolveTmpl(a, bind)
				}
				if eval.Check(b, vals) {
					next(in, bind)
				}
			}
		}
		return func(in *interp.Interp, bind []storage.Value) {
			for i, a := range args {
				if i != out {
					vals[i] = resolveTmpl(a, bind)
				}
			}
			if v, ok := eval.Solve(b, vals, out); ok {
				bind[outVar] = v
				next(in, bind)
			}
		}
	}
	return next
}

func compileRelStep(st *interp.Step, next stepFn, outermost bool) stepFn {
	pred, src := st.Pred, st.Src
	checks := st.Checks
	binds := st.Binds
	match := func(in *interp.Interp, bind []storage.Value, row []storage.Value) {
		for _, ck := range checks {
			switch ck.Mode {
			case interp.CheckConst:
				if row[ck.Col] != ck.Const {
					return
				}
			case interp.CheckVar:
				if row[ck.Col] != bind[ck.Var] {
					return
				}
			case interp.CheckSameRow:
				if row[ck.Col] != row[ck.Other] {
					return
				}
			}
		}
		for _, b := range binds {
			bind[b.Var] = row[b.Col]
		}
		next(in, bind)
	}
	if st.Kind == interp.StepProbe {
		col := st.ProbeCol
		key := st.ProbeKey
		return func(in *interp.Interp, bind []storage.Value) {
			rel := interp.SourceRel(in.Cat, pred, src)
			k := resolveTmpl(key, bind)
			// EachProbe owns the access-path choice: the global index on a
			// flat relation, per-bucket indexes (routed to one bucket for a
			// shard-key probe) on a physical one, filtered scan on a miss.
			rel.EachProbe(col, k, func(row []storage.Value) bool {
				match(in, bind, row)
				return true
			})
		}
	}
	if st.Kind == interp.StepProbeN {
		cols := st.ProbeCols
		keys := st.ProbeKeys
		vals := make([]storage.Value, len(keys))
		return func(in *interp.Interp, bind []storage.Value) {
			rel := interp.SourceRel(in.Cat, pred, src)
			for ki, k := range keys {
				vals[ki] = resolveTmpl(k, bind)
			}
			rel.EachProbeComposite(cols, vals, func(row []storage.Value) bool {
				match(in, bind, row)
				return true
			})
		}
	}
	if outermost {
		return func(in *interp.Interp, bind []storage.Value) {
			rel := interp.SourceRel(in.Cat, pred, src)
			rel.Each(func(row []storage.Value) bool {
				if in.Cancelled() {
					return false
				}
				match(in, bind, row)
				return true
			})
		}
	}
	return func(in *interp.Interp, bind []storage.Value) {
		rel := interp.SourceRel(in.Cat, pred, src)
		rel.Each(func(row []storage.Value) bool {
			match(in, bind, row)
			return true
		})
	}
}

func resolveTmpl(t interp.TmplElem, bind []storage.Value) storage.Value {
	if t.IsConst {
		return t.Const
	}
	return bind[t.Var]
}
