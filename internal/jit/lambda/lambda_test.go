package lambda

import (
	"testing"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

func lowerSrc(t *testing.T, src string) (*storage.Catalog, *ir.ProgramOp) {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	return cat, root
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3). edge(3,4).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`

func TestLambdaFullCompile(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	unit, err := Compiler{}.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(cat, nil)
	if err := unit(in); err != nil {
		t.Fatal(err)
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 6 {
		t.Fatalf("|tc| = %d, want 6", tc.Derived.Len())
	}
	if in.Stats.SPJRuns == 0 || in.Stats.Derivations != 6 {
		t.Fatalf("stats wrong: %+v", in.Stats)
	}
}

func TestLambdaSnippetUsesInterpreterForChildren(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	var dw *ir.DoWhileOp
	ir.Walk(root, func(o ir.Op) {
		if d, ok := o.(*ir.DoWhileOp); ok {
			dw = d
		}
	})
	unit, err := Compiler{}.Compile(dw, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	// Run prologue interpreted, then the snippet-compiled loop.
	pre := interp.New(cat, nil)
	for _, op := range root.Body {
		if op == ir.Op(dw) {
			break
		}
		if err := pre.Run(op); err != nil {
			t.Fatal(err)
		}
	}
	probe := &probeCtrl{}
	in := interp.New(cat, probe)
	if err := unit(in); err != nil {
		t.Fatal(err)
	}
	if probe.seen == 0 {
		t.Fatal("snippet children did not reach the interpreter")
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 6 {
		t.Fatalf("|tc| = %d, want 6", tc.Derived.Len())
	}
}

type probeCtrl struct{ seen int }

func (p *probeCtrl) Enter(op ir.Op, in *interp.Interp) func() error {
	p.seen++
	return nil
}

func TestLambdaIndexedProbeChain(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	edge, _ := cat.PredByName("edge")
	tc, _ := cat.PredByName("tc")
	edge.BuildIndexes([]int{0})
	tc.BuildIndexes([]int{1})
	unit, err := Compiler{}.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	if tc.Derived.Len() != 6 {
		t.Fatalf("|tc| = %d, want 6", tc.Derived.Len())
	}
}

func TestLambdaFrozenOrderSurvivesCatalogChanges(t *testing.T) {
	// A compiled unit re-executed after facts change must still be correct
	// (plans resolve relations at run time).
	cat, root := lowerSrc(t, tcSrc)
	unit, err := Compiler{}.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	cat.ResetFacts()
	edge, _ := cat.PredByName("edge")
	for i := 0; i < 10; i++ {
		edge.AddFact([]storage.Value{storage.Value(i), storage.Value(i + 1)})
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 55 {
		t.Fatalf("|tc| = %d, want 55", tc.Derived.Len())
	}
}

func TestLambdaPrimes(t *testing.T) {
	src := `
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
num(2). num(3). num(4). num(5). num(6). num(7). num(8). num(9). num(10). num(11). num(12).
composite(c) :- num(a), num(b), c = a * b, num(c).
prime(p) :- num(p), !composite(p).
`
	cat, root := lowerSrc(t, src)
	unit, err := Compiler{}.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	p, _ := cat.PredByName("prime")
	want := []storage.Value{2, 3, 5, 7, 11}
	if p.Derived.Len() != len(want) {
		t.Fatalf("primes = %v", p.Derived.Snapshot())
	}
}
