package jit

import (
	"errors"
	"testing"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit/lambda"
	"carac/internal/storage"
)

// faultyCompiler always fails to compile — the failure-injection double.
type faultyCompiler struct{ calls int }

func (f *faultyCompiler) Name() string { return "faulty" }

func (f *faultyCompiler) Compile(op ir.Op, cat *storage.Catalog, snippet bool) (func(in *interp.Interp) error, error) {
	f.calls++
	return nil, errors.New("injected compile failure")
}

// flakyCompiler fails the first n attempts, then delegates to lambda.
type flakyCompiler struct {
	failures int
	inner    backendCompiler
}

func (f *flakyCompiler) Name() string { return "flaky" }

func (f *flakyCompiler) Compile(op ir.Op, cat *storage.Catalog, snippet bool) (func(in *interp.Interp) error, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("injected transient failure")
	}
	return f.inner.Compile(op, cat, snippet)
}

// TestCompileFailureFallsBackToInterpretation is the JIT's core safety
// property: a broken compiler must never change results — execution
// completes interpreted.
func TestCompileFailureFallsBackToInterpretation(t *testing.T) {
	for _, async := range []bool{false, true} {
		cat, root := buildChain(t, 25, true)
		ctrl := New(cat, root, Config{Backend: BackendLambda, Granularity: GranUnionAll, Async: async})
		fc := &faultyCompiler{}
		ctrl.compiler = fc
		in := interp.New(cat, ctrl)
		if err := in.Run(root); err != nil {
			t.Fatalf("async=%v: run failed: %v", async, err)
		}
		ctrl.Close()
		checkTC(t, cat, 25)
		st := ctrl.Stats()
		if st.Failures == 0 {
			t.Fatalf("async=%v: failures not recorded", async)
		}
		if st.Compilations != 0 {
			t.Fatalf("async=%v: failed compiles counted as compilations", async)
		}
		if in.Stats.Compiled != 0 {
			t.Fatalf("async=%v: compiled units executed despite failures", async)
		}
		if fc.calls == 0 {
			t.Fatalf("async=%v: compiler never invoked", async)
		}
	}
}

// TestTransientCompileFailureRecovers: after the world drifts past the
// freshness threshold, a previously failed unit is retried and succeeds.
func TestTransientCompileFailureRecovers(t *testing.T) {
	cat, root := buildChain(t, 60, true)
	ctrl := New(cat, root, Config{
		Backend:            BackendLambda,
		Granularity:        GranUnionAll,
		FreshnessThreshold: 0.01, // retry on nearly any drift
	})
	ctrl.compiler = &flakyCompiler{failures: 2, inner: lambda.Compiler{}}
	in := interp.New(cat, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	checkTC(t, cat, 60)
	st := ctrl.Stats()
	if st.Failures != 2 {
		t.Fatalf("failures = %d, want 2", st.Failures)
	}
	if st.Compilations == 0 {
		t.Fatal("compiler never recovered")
	}
	if in.Stats.Compiled == 0 {
		t.Fatal("recovered units never executed")
	}
}

// TestFailedUnitNotRetriedWhileFresh: without drift, a failed compilation is
// not hammered on every safe-point visit.
func TestFailedUnitNotRetriedWhileFresh(t *testing.T) {
	cat, root := buildChain(t, 40, true)
	fc := &faultyCompiler{}
	ctrl := New(cat, root, Config{
		Backend:            BackendLambda,
		Granularity:        GranUnionAll,
		FreshnessThreshold: 1e18, // never stale
	})
	ctrl.compiler = fc
	in := interp.New(cat, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	// Two UnionAll nodes exist (prologue + loop); each may fail once.
	if fc.calls > 2 {
		t.Fatalf("failed unit retried %d times despite fresh cards", fc.calls)
	}
}

// TestQuotesSafetyNetAgainstBadIR: the quotes backend's type checker turns a
// malformed subquery into a compile error (counted as a failure), never into
// unsound generated code, and the run still completes via interpretation...
// which then surfaces the same plan error — either way, no wrong results.
func TestBadIRNeverExecutesWrong(t *testing.T) {
	cat := storage.NewCatalog()
	n := cat.Declare("n", 1)
	out := cat.Declare("out", 1)
	cat.Pred(n).AddFact([]storage.Value{1})
	// Malformed: head uses an unbound variable.
	spj := &ir.SPJOp{
		Sink:     out,
		Head:     []ir.ProjElem{{Var: 5}},
		NumVars:  6,
		DeltaIdx: -1,
		Atoms:    []ir.Atom{{Kind: 0, Pred: n, Terms: nil}},
	}
	// BuildPlan rejects it in every execution path.
	if _, err := interp.BuildPlan(spj, cat); err == nil {
		t.Fatal("malformed subquery accepted by the planner")
	}
}
