// Package bytecode implements Carac's Bytecode compilation target (paper
// §V-C2): IROp subtrees are compiled directly into instructions for a
// compact register-based virtual machine and executed as a flat program —
// no tree traversal, no per-run planning, and (deliberately, like the JVM
// bytecode backend it stands in for) no validation pass: the emitter is
// trusted and a malformed program mis-executes at runtime rather than being
// rejected at compile time. Unlike the Quotes target, compiled bytecode
// cannot splice back into the interpreter mid-node; the unit of reversal is
// throwing the whole program away and regenerating.
//
// Each subquery's nested-loop join is flattened into "levels": every
// relational atom owns an iterator register, and a failed check jumps back
// to the owning level's NEXT instruction.
package bytecode

import (
	"errors"
	"fmt"
	"sync"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// Unit is a compiled executable subtree.
type Unit = func(in *interp.Interp) error

// Opcode enumerates VM instructions.
type Opcode uint8

const (
	OpHalt       Opcode = iota
	OpSeed              // A = preds pool idx: Derived -> DeltaNew
	OpSwapClear         // A = preds pool idx
	OpLoopBack          // A = target, B = preds pool idx: jump A while any delta nonempty
	OpSPJBegin          // statistics marker
	OpInitScan          // A = level, B = rels pool idx
	OpInitProbe         // A = level, B = rels pool idx, C = probes pool idx
	OpInitProbeN        // A = level, B = rels pool idx, C = nprobes pool idx
	OpNext              // A = level, C = fail target
	OpCheckConst        // A = level, B = col, C = fail target, D = constant
	OpCheckVar          // A = level, B = col, C = fail target, D = var
	OpCheckSame         // A = level, B = col, C = fail target, D = other col
	OpBind              // A = level, B = col, D = var
	OpNegCheck          // A = tmpls pool idx, B = rels pool idx, C = fail target
	OpBuiltin           // A = builtins pool idx, C = fail target
	OpEmit              // A = heads pool idx
	OpJmp               // A = target
	OpCallPlan          // A = plans pool idx (aggregation subqueries)
)

// Instr is one VM instruction; operand meaning depends on the opcode and no
// type information is carried.
type Instr struct {
	Op         Opcode
	A, B, C, D int32
}

type relRef struct {
	pred storage.PredID
	src  ir.Source
}

type probeSpec struct {
	col int32
	key interp.TmplElem
}

type probeNSpec struct {
	cols []int
	keys []interp.TmplElem
}

type builtinSpec struct {
	b      ast.Builtin
	args   []interp.TmplElem
	out    int32 // -1 = pure check
	outVar ast.VarID
}

type headSpec struct {
	tmpl []interp.TmplElem
	sink storage.PredID
}

// Program is a compiled VM program with its constant pools. The code and
// pools are immutable after compilation; every register the VM mutates
// lives in a per-invocation runState, because cached programs may run
// concurrently on engines serving different sessions.
type Program struct {
	Code     []Instr
	NumVars  int
	NumLevel int

	rels     []relRef
	preds    [][]storage.PredID
	probes   []probeSpec
	nprobes  []probeNSpec
	tmpls    [][]interp.TmplElem
	builtins []builtinSpec
	heads    []headSpec
	plans    []*interp.Plan

	pool sync.Pool // of *runState
}

// runState is the register file of one Run: variable bindings, per-level
// iterators, tuple scratch, and the composite-probe key scratch (one slice
// per ProbeN site). States recycle through the Program's pool.
type runState struct {
	bind  []storage.Value
	iters []iterState
	buf   []storage.Value
	nvals [][]storage.Value
}

func (p *Program) getState() *runState {
	if st, ok := p.pool.Get().(*runState); ok {
		return st
	}
	st := &runState{
		bind:  make([]storage.Value, p.NumVars),
		iters: make([]iterState, p.NumLevel),
		buf:   make([]storage.Value, 0, 16),
		nvals: make([][]storage.Value, len(p.nprobes)),
	}
	for i := range p.nprobes {
		st.nvals[i] = make([]storage.Value, len(p.nprobes[i].keys))
	}
	return st
}

// iterSeg is one contiguous slice of an iterator's input: a row-id list
// into rel (probe result or materialized filter), or all of rel when rows is
// nil. A level's input is a sequence of segments — one for a flat relation,
// one per bucket of a physically sharded relation, whose per-bucket row ids
// are meaningless to the parent (global Row lookups would walk the bucket
// lengths per row).
type iterSeg struct {
	rel  *storage.Relation
	rows []int32
	n    int // row count, frozen at init (relations are iteration-frozen)
}

type iterState struct {
	segs []iterSeg // reused across inits
	seg  int
	pos  int
	row  []storage.Value
	mat  []int32 // degraded-path row materialization, owned per level
}

// reset prepares the iterator for a fresh init.
func (it *iterState) reset() {
	it.segs = it.segs[:0]
	it.mat = it.mat[:0]
	it.seg, it.pos = 0, 0
}

// addScan appends rel's scan segments: one per non-empty bucket for a
// physically sharded relation, a single whole-relation segment otherwise.
func (it *iterState) addScan(rel *storage.Relation) {
	if subs := rel.PhysSubs(); subs != nil {
		for _, sub := range subs {
			if n := sub.Len(); n > 0 {
				it.segs = append(it.segs, iterSeg{rel: sub, n: n})
			}
		}
		return
	}
	it.segs = append(it.segs, iterSeg{rel: rel, n: rel.Len()})
}

// addRows appends a probe-result segment (empty lists are skipped).
func (it *iterState) addRows(rel *storage.Relation, rows []int32) {
	if len(rows) > 0 {
		it.segs = append(it.segs, iterSeg{rel: rel, rows: rows, n: len(rows)})
	}
}

// materialize appends a segment of rel's row ids passing keep — the
// degraded path when an expected index is missing at runtime (the VM has no
// validation pass to catch it earlier).
func (it *iterState) materialize(rel *storage.Relation, keep func(row []storage.Value) bool) {
	start := len(it.mat)
	n := int32(rel.Len())
	for i := int32(0); i < n; i++ {
		if keep(rel.Row(i)) {
			it.mat = append(it.mat, i)
		}
	}
	if len(it.mat) > start {
		rows := it.mat[start:len(it.mat):len(it.mat)]
		it.segs = append(it.segs, iterSeg{rel: rel, rows: rows, n: len(rows)})
	}
}

// next advances to the next row, reporting false when exhausted.
func (it *iterState) next() bool {
	for it.seg < len(it.segs) {
		seg := &it.segs[it.seg]
		if it.pos < seg.n {
			if seg.rows != nil {
				it.row = seg.rel.Row(seg.rows[it.pos])
			} else {
				it.row = seg.rel.Row(int32(it.pos))
			}
			it.pos++
			return true
		}
		it.seg++
		it.pos = 0
	}
	return false
}

// Run executes the program to completion.
func (p *Program) Run(in *interp.Interp) error {
	st := p.getState()
	defer p.pool.Put(st)
	bind := st.bind
	iters := st.iters
	code := p.Code
	cat := in.Cat

	pc := 0
	for {
		ins := &code[pc]
		switch ins.Op {
		case OpHalt:
			return nil

		case OpSeed:
			for _, pid := range p.preds[ins.A] {
				pd := cat.Pred(pid)
				pd.DeltaNew.InsertAll(pd.Derived)
			}
			pc++

		case OpSwapClear:
			for _, pid := range p.preds[ins.A] {
				cat.Pred(pid).SwapClear()
			}
			pc++

		case OpLoopBack:
			if in.Cancelled() {
				return interp.ErrCancelled
			}
			in.Stats.Iterations++
			if interp.DeltasEmpty(cat, p.preds[ins.B]) {
				pc++
			} else {
				pc = int(ins.A)
			}

		case OpSPJBegin:
			in.Stats.SPJRuns++
			pc++

		case OpInitScan:
			r := p.rels[ins.B]
			it := &iters[ins.A]
			it.reset()
			it.addScan(interp.SourceRel(cat, r.pred, r.src))
			pc++

		case OpInitProbeN:
			r := p.rels[ins.B]
			sp := &p.nprobes[ins.C]
			vals := st.nvals[ins.C]
			it := &iters[ins.A]
			it.reset()
			rel := interp.SourceRel(cat, r.pred, r.src)
			for ki, k := range sp.keys {
				vals[ki] = resolveTmpl(k, bind)
			}
			covers := func(row []storage.Value) bool {
				for ci, c := range sp.cols {
					if row[c] != vals[ci] {
						return false
					}
				}
				return true
			}
			if subs := rel.PhysSubs(); subs != nil {
				// Bucket-local composite probes; a composite covering the
				// shard key column routes to exactly one bucket.
				lo, hi := rel.ProbeSpanComposite(sp.cols, vals)
				for s := lo; s < hi; s++ {
					if rows, ok := subs[s].ProbeComposite(sp.cols, vals); ok {
						it.addRows(subs[s], rows)
					} else {
						it.materialize(subs[s], covers)
					}
				}
			} else if rows, ok := rel.ProbeComposite(sp.cols, vals); ok {
				it.addRows(rel, rows)
			} else {
				it.materialize(rel, covers)
			}
			pc++

		case OpInitProbe:
			r := p.rels[ins.B]
			sp := &p.probes[ins.C]
			it := &iters[ins.A]
			it.reset()
			rel := interp.SourceRel(cat, r.pred, r.src)
			key := resolveTmpl(sp.key, bind)
			col := int(sp.col)
			if subs := rel.PhysSubs(); subs != nil {
				// Bucket-local probes through each bucket's own index; a
				// probe on the shard key column touches exactly one bucket.
				lo, hi := rel.ProbeSpan(col, key)
				for s := lo; s < hi; s++ {
					if rows, ok := subs[s].Probe(col, key); ok {
						it.addRows(subs[s], rows)
					} else {
						it.materialize(subs[s], func(row []storage.Value) bool { return row[col] == key })
					}
				}
			} else if rows, ok := rel.Probe(col, key); ok {
				it.addRows(rel, rows)
			} else {
				// Index missing at runtime: degrade to a filtered scan by
				// pre-materializing matching row ids (no validation pass
				// exists to catch this earlier).
				it.materialize(rel, func(row []storage.Value) bool { return row[col] == key })
			}
			pc++

		case OpNext:
			it := &iters[ins.A]
			if ins.A == 0 && in.Cancelled() {
				return interp.ErrCancelled
			}
			if it.next() {
				pc++
			} else {
				pc = int(ins.C)
			}

		case OpCheckConst:
			if iters[ins.A].row[ins.B] != ins.D {
				pc = int(ins.C)
			} else {
				pc++
			}

		case OpCheckVar:
			if iters[ins.A].row[ins.B] != bind[ins.D] {
				pc = int(ins.C)
			} else {
				pc++
			}

		case OpCheckSame:
			row := iters[ins.A].row
			if row[ins.B] != row[ins.D] {
				pc = int(ins.C)
			} else {
				pc++
			}

		case OpBind:
			bind[ins.D] = iters[ins.A].row[ins.B]
			pc++

		case OpNegCheck:
			tmpl := p.tmpls[ins.A]
			r := p.rels[ins.B]
			rel := interp.SourceRel(cat, r.pred, r.src)
			st.buf = st.buf[:0]
			for _, tm := range tmpl {
				st.buf = append(st.buf, resolveTmpl(tm, bind))
			}
			if rel.Contains(st.buf) {
				pc = int(ins.C)
			} else {
				pc++
			}

		case OpBuiltin:
			sp := &p.builtins[ins.A]
			if ok := execBuiltin(sp, bind, &st.buf); ok {
				pc++
			} else {
				pc = int(ins.C)
			}

		case OpEmit:
			h := &p.heads[ins.A]
			st.buf = st.buf[:0]
			for _, tm := range h.tmpl {
				st.buf = append(st.buf, resolveTmpl(tm, bind))
			}
			sink := cat.Pred(h.sink)
			if !sink.Derived.Contains(st.buf) && sink.DeltaNew.Insert(st.buf) {
				in.Stats.Derivations++
			}
			pc++

		case OpJmp:
			pc = int(ins.A)

		case OpCallPlan:
			in.Stats.SPJRuns++
			in.Stats.Derivations += interp.RunPlan(p.plans[ins.A], cat)
			pc++

		default:
			return fmt.Errorf("bytecode: bad opcode %d at pc=%d", ins.Op, pc)
		}
	}
}

func execBuiltin(sp *builtinSpec, bind []storage.Value, scratch *[]storage.Value) bool {
	vals := (*scratch)[:0]
	for i, a := range sp.args {
		if int32(i) == sp.out {
			vals = append(vals, 0)
			continue
		}
		vals = append(vals, resolveTmpl(a, bind))
	}
	*scratch = vals
	if sp.out < 0 {
		return eval.Check(sp.b, vals)
	}
	v, ok := eval.Solve(sp.b, vals, int(sp.out))
	if !ok {
		return false
	}
	bind[sp.outVar] = v
	return true
}

func resolveTmpl(t interp.TmplElem, bind []storage.Value) storage.Value {
	if t.IsConst {
		return t.Const
	}
	return bind[t.Var]
}

// Compiler emits VM programs from IR subtrees.
type Compiler struct{}

// Name identifies the backend.
func (Compiler) Name() string { return "bytecode" }

// ErrSnippetUnsupported mirrors the paper: bytecode cannot splice
// continuations back into the interpreter; only full-subtree compilation is
// available.
var ErrSnippetUnsupported = errors.New("bytecode: snippet compilation not supported")

// Compile flattens op into a VM program and returns a Unit running it.
func (c Compiler) Compile(op ir.Op, cat *storage.Catalog, snippet bool) (Unit, error) {
	if snippet {
		return nil, ErrSnippetUnsupported
	}
	e := &emitter{cat: cat, prog: &Program{}}
	if err := e.emitOp(op); err != nil {
		return nil, err
	}
	e.emit(Instr{Op: OpHalt})
	prog := e.prog
	prog.NumVars = e.maxVars
	prog.NumLevel = e.maxLevel
	return prog.Run, nil
}

// CompileProgram exposes the raw program for tests and disassembly.
func (c Compiler) CompileProgram(op ir.Op, cat *storage.Catalog) (*Program, error) {
	e := &emitter{cat: cat, prog: &Program{}}
	if err := e.emitOp(op); err != nil {
		return nil, err
	}
	e.emit(Instr{Op: OpHalt})
	e.prog.NumVars = e.maxVars
	e.prog.NumLevel = e.maxLevel
	return e.prog, nil
}

type emitter struct {
	cat      *storage.Catalog
	prog     *Program
	maxVars  int
	maxLevel int
}

func (e *emitter) emit(i Instr) int32 {
	e.prog.Code = append(e.prog.Code, i)
	return int32(len(e.prog.Code) - 1)
}

func (e *emitter) here() int32 { return int32(len(e.prog.Code)) }

func (e *emitter) addPreds(ps []storage.PredID) int32 {
	e.prog.preds = append(e.prog.preds, ps)
	return int32(len(e.prog.preds) - 1)
}

func (e *emitter) addRel(r relRef) int32 {
	e.prog.rels = append(e.prog.rels, r)
	return int32(len(e.prog.rels) - 1)
}

func (e *emitter) emitOp(op ir.Op) error {
	switch n := op.(type) {
	case *ir.ProgramOp:
		for _, ch := range n.Body {
			if err := e.emitOp(ch); err != nil {
				return err
			}
		}
		return nil
	case *ir.ScanOp:
		e.emit(Instr{Op: OpSeed, A: e.addPreds(n.Preds)})
		return nil
	case *ir.SwapClearOp:
		e.emit(Instr{Op: OpSwapClear, A: e.addPreds(n.Preds)})
		return nil
	case *ir.DoWhileOp:
		start := e.here()
		for _, ch := range n.Body {
			if err := e.emitOp(ch); err != nil {
				return err
			}
		}
		e.emit(Instr{Op: OpLoopBack, A: start, B: e.addPreds(n.Preds)})
		return nil
	case *ir.UnionAllOp:
		for _, r := range n.Rules {
			if err := e.emitOp(r); err != nil {
				return err
			}
		}
		return nil
	case *ir.UnionRuleOp:
		for _, s := range n.Subqueries {
			if err := e.emitOp(s); err != nil {
				return err
			}
		}
		return nil
	case *ir.SPJOp:
		return e.emitSPJ(n)
	}
	return fmt.Errorf("bytecode: cannot compile %T", op)
}

// emitSPJ flattens one subquery. Layout:
//
//	SPJBEGIN
//	(prelude guards, fail -> END)
//	INIT L0; N0: NEXT L0 (fail -> END); checks/binds; guards (fail -> N0)
//	INIT L1; N1: NEXT L1 (fail -> N0); ...
//	EMIT; JMP N_last (or END when no relational levels)
//	END:
func (e *emitter) emitSPJ(spj *ir.SPJOp) error {
	if spj.NumVars > e.maxVars {
		e.maxVars = spj.NumVars
	}
	plan, err := interp.BuildPlan(spj, e.cat)
	if err != nil {
		return err
	}
	e.emit(Instr{Op: OpSPJBegin})

	if plan.Agg.Kind != ast.AggNone {
		// Aggregation routes through the generic plan path.
		e.prog.plans = append(e.prog.plans, plan)
		// Replace the SPJBegin marker (RunPlan counts its own run).
		e.prog.Code[len(e.prog.Code)-1] = Instr{Op: OpCallPlan, A: int32(len(e.prog.plans) - 1)}
		return nil
	}

	var fixups []int32 // instructions whose C must become END
	var jmpEnds []int32
	level := int32(-1)
	nextPC := []int32{} // per level: address of its NEXT instruction

	curFail := func() int32 {
		if level < 0 {
			return -1 // END, patched later
		}
		return nextPC[level]
	}

	for si := range plan.Steps {
		st := &plan.Steps[si]
		switch st.Kind {
		case interp.StepScan, interp.StepProbe, interp.StepProbeN:
			level++
			if int(level)+1 > e.maxLevel {
				e.maxLevel = int(level) + 1
			}
			rel := e.addRel(relRef{pred: st.Pred, src: st.Src})
			switch st.Kind {
			case interp.StepProbe:
				e.prog.probes = append(e.prog.probes, probeSpec{col: int32(st.ProbeCol), key: st.ProbeKey})
				e.emit(Instr{Op: OpInitProbe, A: level, B: rel, C: int32(len(e.prog.probes) - 1)})
			case interp.StepProbeN:
				e.prog.nprobes = append(e.prog.nprobes, probeNSpec{
					cols: st.ProbeCols, keys: st.ProbeKeys,
				})
				e.emit(Instr{Op: OpInitProbeN, A: level, B: rel, C: int32(len(e.prog.nprobes) - 1)})
			default:
				e.emit(Instr{Op: OpInitScan, A: level, B: rel})
			}
			// fail target of this NEXT: previous level's NEXT or END.
			var prevFail int32 = -1
			if level > 0 {
				prevFail = nextPC[level-1]
			}
			np := e.emit(Instr{Op: OpNext, A: level, C: prevFail})
			if prevFail < 0 {
				fixups = append(fixups, np)
			}
			nextPC = append(nextPC, np)
			for _, ck := range st.Checks {
				switch ck.Mode {
				case interp.CheckConst:
					e.emit(Instr{Op: OpCheckConst, A: level, B: int32(ck.Col), C: np, D: ck.Const})
				case interp.CheckVar:
					e.emit(Instr{Op: OpCheckVar, A: level, B: int32(ck.Col), C: np, D: int32(ck.Var)})
				case interp.CheckSameRow:
					e.emit(Instr{Op: OpCheckSame, A: level, B: int32(ck.Col), C: np, D: int32(ck.Other)})
				}
			}
			for _, b := range st.Binds {
				e.emit(Instr{Op: OpBind, A: level, B: int32(b.Col), D: int32(b.Var)})
			}

		case interp.StepNegCheck:
			e.prog.tmpls = append(e.prog.tmpls, st.Tmpl)
			rel := e.addRel(relRef{pred: st.Pred, src: st.Src})
			fail := curFail()
			ip := e.emit(Instr{Op: OpNegCheck, A: int32(len(e.prog.tmpls) - 1), B: rel, C: fail})
			if fail < 0 {
				fixups = append(fixups, ip)
			}

		case interp.StepBuiltin:
			e.prog.builtins = append(e.prog.builtins, builtinSpec{
				b: st.Builtin, args: st.Args, out: int32(st.Out), outVar: st.OutVar,
			})
			fail := curFail()
			ip := e.emit(Instr{Op: OpBuiltin, A: int32(len(e.prog.builtins) - 1), C: fail})
			if fail < 0 {
				fixups = append(fixups, ip)
			}
		}
	}

	// Emit + loop back into the innermost level.
	headTmpl := make([]interp.TmplElem, len(plan.Head))
	for i, h := range plan.Head {
		headTmpl[i] = interp.TmplElem{IsConst: h.IsConst, Const: h.Const, Var: h.Var}
	}
	e.prog.heads = append(e.prog.heads, headSpec{tmpl: headTmpl, sink: plan.Sink})
	e.emit(Instr{Op: OpEmit, A: int32(len(e.prog.heads) - 1)})
	if level >= 0 {
		e.emit(Instr{Op: OpJmp, A: nextPC[level]})
	} else {
		jmpEnds = append(jmpEnds, e.emit(Instr{Op: OpJmp, A: -1}))
	}

	end := e.here()
	for _, ip := range fixups {
		e.prog.Code[ip].C = end
	}
	for _, ip := range jmpEnds {
		e.prog.Code[ip].A = end
	}
	return nil
}
