package bytecode

import (
	"reflect"
	"testing"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// fullProgram populates every constant pool, including an aggregation plan
// riding the chained interp codec, so the round trip covers the entire
// artifact a disk-warm restart must reconstruct.
func fullProgram() *Program {
	return &Program{
		Code: []Instr{
			{Op: OpInitScan, A: 0, B: 1, C: -1, D: 2},
			{Op: OpEmit, A: 0, B: 3},
		},
		NumVars:  4,
		NumLevel: 2,
		rels:     []relRef{{pred: 1, src: ir.SrcDelta}, {pred: 2, src: ir.SrcDerived}},
		preds:    [][]storage.PredID{{1, 2}, nil, {7}},
		probes:   []probeSpec{{col: 1, key: interp.TmplElem{Var: 2}}},
		nprobes: []probeNSpec{{
			cols: []int{0, 2},
			keys: []interp.TmplElem{{Var: 0}, {IsConst: true, Const: 5}},
		}},
		tmpls: [][]interp.TmplElem{{{Var: 1}, {IsConst: true, Const: -3}}},
		builtins: []builtinSpec{{
			b:    ast.BLt,
			args: []interp.TmplElem{{Var: 0}, {IsConst: true, Const: 9}},
			out:  -1, outVar: 0,
		}},
		heads: []headSpec{{tmpl: []interp.TmplElem{{Var: 3}}, sink: 7}},
		plans: []*interp.Plan{
			{Sink: 7, NumVars: 2, Head: []ir.ProjElem{{Var: 0}},
				Agg: ast.AggSpec{Kind: ast.AggMin, HeadPos: 0, OverVar: 1}},
			{Sink: 8, NumVars: 1, Head: []ir.ProjElem{{IsConst: true, Const: 4}}},
		},
	}
}

func TestProgramCodecRoundTrip(t *testing.T) {
	want := fullProgram()
	got, err := DecodeProgram(EncodeProgram(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The sync.Pool is per-process scratch, zero on both sides, so whole-
	// struct DeepEqual compares exactly the serialized state.
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestProgramCodecTruncation: every proper prefix must error, never panic or
// silently yield a partial program.
func TestProgramCodecTruncation(t *testing.T) {
	b := EncodeProgram(fullProgram())
	for n := 0; n < len(b); n++ {
		if _, err := DecodeProgram(b[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(b))
		}
	}
}
