package bytecode

import (
	"testing"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

func compileAndRun(t *testing.T, src string, facts func(cat *storage.Catalog)) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	if facts != nil {
		facts(cat)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := Compiler{}.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(cat, nil)
	if err := unit(in); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestVMTransitiveClosure(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3). edge(3,4). edge(4,5).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`
	cat := compileAndRun(t, src, nil)
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 10 {
		t.Fatalf("|tc| = %d, want 10", tc.Derived.Len())
	}
}

func TestVMWithIndexesProbes(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	edge, _ := cat.PredByName("edge")
	for i := 0; i < 50; i++ {
		edge.AddFact([]storage.Value{storage.Value(i), storage.Value(i + 1)})
	}
	for pid, cols := range ir.JoinKeyColumns(res.Program) {
		cat.Pred(pid).BuildIndexes(cols)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compiler{}.CompileProgram(root, cat)
	if err != nil {
		t.Fatal(err)
	}
	hasProbe := false
	for _, ins := range prog.Code {
		if ins.Op == OpInitProbe {
			hasProbe = true
		}
	}
	if !hasProbe {
		t.Fatal("indexed program should emit OpInitProbe")
	}
	in := interp.New(cat, nil)
	if err := prog.Run(in); err != nil {
		t.Fatal(err)
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 50*51/2 {
		t.Fatalf("|tc| = %d", tc.Derived.Len())
	}
}

func TestVMNegationAndBuiltins(t *testing.T) {
	src := `
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
num(2). num(3). num(4). num(5). num(6). num(7). num(8). num(9). num(10).
composite(c) :- num(a), num(b), c = a * b, num(c).
prime(p) :- num(p), !composite(p).
`
	cat := compileAndRun(t, src, nil)
	p, _ := cat.PredByName("prime")
	for _, v := range []storage.Value{2, 3, 5, 7} {
		if !p.Derived.Contains([]storage.Value{v}) {
			t.Fatalf("missing prime %d: %v", v, p.Derived.Snapshot())
		}
	}
	if p.Derived.Contains([]storage.Value{9}) {
		t.Fatal("9 is not prime")
	}
}

func mkCountRule(t *testing.T, e, outd storage.PredID) *ast.Rule {
	t.Helper()
	return &ast.Rule{
		Head:    ast.Rel(outd, ast.V(0), ast.V(2)),
		Body:    []ast.Atom{ast.Rel(e, ast.V(0), ast.V(1))},
		Agg:     ast.AggSpec{Kind: ast.AggCount, HeadPos: 1},
		NumVars: 3,
	}
}

func TestVMAggregationViaCallPlan(t *testing.T) {
	cat := storage.NewCatalog()
	src := `
.decl e(x:number, y:number)
.decl outd(x:number, d:number)
e(1,2). e(1,3). e(2,3).
`
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregation rules only exist via the DSL; build one by hand.
	prog := res.Program
	ep, _ := cat.PredByName("e")
	outd, _ := cat.PredByName("outd")
	prog.MustAddRule(mkCountRule(t, ep.ID, outd.ID))
	root, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compiler{}.CompileProgram(root, cat)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ins := range p.Code {
		if ins.Op == OpCallPlan {
			found = true
		}
	}
	if !found {
		t.Fatal("aggregation should compile to OpCallPlan")
	}
	in := interp.New(cat, nil)
	if err := p.Run(in); err != nil {
		t.Fatal(err)
	}
	if !outdContains(cat, 1, 2) || !outdContains(cat, 2, 1) {
		t.Fatalf("outd wrong: %v", cat.Pred(outd.ID).Derived.Snapshot())
	}
}

func outdContains(cat *storage.Catalog, a, b storage.Value) bool {
	p, _ := cat.PredByName("outd")
	return p.Derived.Contains([]storage.Value{a, b})
}

func TestVMSnippetRejected(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := (Compiler{}).Compile(&ir.ProgramOp{}, cat, true); err != ErrSnippetUnsupported {
		t.Fatalf("snippet compile error = %v", err)
	}
}

func TestVMEmptyBodyRule(t *testing.T) {
	src := `
.decl p(x:number)
.decl q(x:number)
p(1).
q(x) :- p(x), x >= 1.
`
	cat := compileAndRun(t, src, nil)
	q, _ := cat.PredByName("q")
	if !q.Derived.Contains([]storage.Value{1}) {
		t.Fatal("q(1) missing")
	}
}

func TestVMBadOpcodeError(t *testing.T) {
	p := &Program{Code: []Instr{{Op: Opcode(200)}}}
	in := interp.New(storage.NewCatalog(), nil)
	if err := p.Run(in); err == nil {
		t.Fatal("bad opcode must error")
	}
}
