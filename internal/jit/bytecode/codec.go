// Program ↔ bytes round trip for the persistent cache. A compiled Program is
// a flat instruction list plus constant pools — predicates, template
// elements, probe specs, head sinks, and the aggregation-plan pool — with no
// pointers into live storage (the VM resolves relations through the
// executing interpreter's catalog at run time), so the whole artifact
// serializes field by field. The sync.Pool of runStates is per-process
// scratch and is not encoded; a decoded Program lazily repopulates it on
// first Run exactly like a freshly compiled one.
package bytecode

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
	"carac/internal/wire"
)

// CodecVersion tags the layout below (instruction word shape + pool order);
// bump on any change so stale cache files invalidate instead of misdecoding.
const CodecVersion = 1

func appendTmplElem(b []byte, t interp.TmplElem) []byte {
	flag := uint8(0)
	if t.IsConst {
		flag = 1
	}
	b = wire.AppendU8(b, flag)
	b = wire.AppendI32(b, int32(t.Const))
	return wire.AppendI32(b, int32(t.Var))
}

func readTmplElem(r *wire.Reader) interp.TmplElem {
	var t interp.TmplElem
	t.IsConst = r.U8() != 0
	t.Const = storage.Value(r.I32())
	t.Var = ast.VarID(r.I32())
	return t
}

func appendTmplSlice(b []byte, ts []interp.TmplElem) []byte {
	b = wire.AppendInt(b, len(ts))
	for _, t := range ts {
		b = appendTmplElem(b, t)
	}
	return b
}

func readTmplSlice(r *wire.Reader) []interp.TmplElem {
	n := r.Count(9)
	if n <= 0 {
		return nil
	}
	ts := make([]interp.TmplElem, n)
	for i := range ts {
		ts[i] = readTmplElem(r)
	}
	return ts
}

// EncodeProgram serializes p. The output embeds every pool in declaration
// order; aggregation plans ride the interp plan codec.
func EncodeProgram(p *Program) []byte {
	b := wire.AppendInt(nil, len(p.Code))
	for _, in := range p.Code {
		b = wire.AppendU8(b, uint8(in.Op))
		b = wire.AppendI32(b, in.A)
		b = wire.AppendI32(b, in.B)
		b = wire.AppendI32(b, in.C)
		b = wire.AppendI32(b, in.D)
	}
	b = wire.AppendInt(b, p.NumVars)
	b = wire.AppendInt(b, p.NumLevel)
	b = wire.AppendInt(b, len(p.rels))
	for _, rr := range p.rels {
		b = wire.AppendI32(b, int32(rr.pred))
		b = wire.AppendU8(b, uint8(rr.src))
	}
	b = wire.AppendInt(b, len(p.preds))
	for _, ps := range p.preds {
		b = wire.AppendInt(b, len(ps))
		for _, pd := range ps {
			b = wire.AppendI32(b, int32(pd))
		}
	}
	b = wire.AppendInt(b, len(p.probes))
	for _, pr := range p.probes {
		b = wire.AppendI32(b, pr.col)
		b = appendTmplElem(b, pr.key)
	}
	b = wire.AppendInt(b, len(p.nprobes))
	for _, np := range p.nprobes {
		b = wire.AppendInt(b, len(np.cols))
		for _, c := range np.cols {
			b = wire.AppendInt(b, c)
		}
		b = appendTmplSlice(b, np.keys)
	}
	b = wire.AppendInt(b, len(p.tmpls))
	for _, t := range p.tmpls {
		b = appendTmplSlice(b, t)
	}
	b = wire.AppendInt(b, len(p.builtins))
	for _, bs := range p.builtins {
		b = wire.AppendU8(b, uint8(bs.b))
		b = appendTmplSlice(b, bs.args)
		b = wire.AppendI32(b, bs.out)
		b = wire.AppendI32(b, int32(bs.outVar))
	}
	b = wire.AppendInt(b, len(p.heads))
	for _, hs := range p.heads {
		b = appendTmplSlice(b, hs.tmpl)
		b = wire.AppendI32(b, int32(hs.sink))
	}
	b = wire.AppendInt(b, len(p.plans))
	for _, pl := range p.plans {
		b = interp.AppendPlan(b, pl)
	}
	return b
}

// DecodeProgram reconstructs a Program from EncodeProgram output. Any
// truncation or garbage surfaces as an error (the persistence layer treats
// it as a cache miss); the decoded program is ready to Run. Aggregation
// plans in the pool keep the builder's probe choices — the VM's OpCallPlan
// path and Plan.Execute both degrade missing indexes to filtered scans at
// run time, and callers holding a catalog can additionally
// interp.RevalidatePlan them.
func DecodeProgram(b []byte) (*Program, error) {
	r := wire.NewReader(b)
	p := &Program{}
	if n := r.Count(17); n > 0 {
		p.Code = make([]Instr, n)
		for i := range p.Code {
			in := &p.Code[i]
			in.Op = Opcode(r.U8())
			in.A = r.I32()
			in.B = r.I32()
			in.C = r.I32()
			in.D = r.I32()
		}
	}
	p.NumVars = r.Int()
	p.NumLevel = r.Int()
	if n := r.Count(5); n > 0 {
		p.rels = make([]relRef, n)
		for i := range p.rels {
			p.rels[i].pred = storage.PredID(r.I32())
			p.rels[i].src = ir.Source(r.U8())
		}
	}
	if n := r.Count(4); n > 0 {
		p.preds = make([][]storage.PredID, n)
		for i := range p.preds {
			if m := r.Count(4); m > 0 {
				ps := make([]storage.PredID, m)
				for j := range ps {
					ps[j] = storage.PredID(r.I32())
				}
				p.preds[i] = ps
			}
		}
	}
	if n := r.Count(13); n > 0 {
		p.probes = make([]probeSpec, n)
		for i := range p.probes {
			p.probes[i].col = r.I32()
			p.probes[i].key = readTmplElem(r)
		}
	}
	if n := r.Count(8); n > 0 {
		p.nprobes = make([]probeNSpec, n)
		for i := range p.nprobes {
			if m := r.Count(4); m > 0 {
				cols := make([]int, m)
				for j := range cols {
					cols[j] = r.Int()
				}
				p.nprobes[i].cols = cols
			}
			p.nprobes[i].keys = readTmplSlice(r)
		}
	}
	if n := r.Count(4); n > 0 {
		p.tmpls = make([][]interp.TmplElem, n)
		for i := range p.tmpls {
			p.tmpls[i] = readTmplSlice(r)
		}
	}
	if n := r.Count(13); n > 0 {
		p.builtins = make([]builtinSpec, n)
		for i := range p.builtins {
			bs := &p.builtins[i]
			bs.b = ast.Builtin(r.U8())
			bs.args = readTmplSlice(r)
			bs.out = r.I32()
			bs.outVar = ast.VarID(r.I32())
		}
	}
	if n := r.Count(8); n > 0 {
		p.heads = make([]headSpec, n)
		for i := range p.heads {
			p.heads[i].tmpl = readTmplSlice(r)
			p.heads[i].sink = storage.PredID(r.I32())
		}
	}
	nplans := r.Count(1)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bytecode decode: %w", err)
	}
	if nplans > 0 {
		p.plans = make([]*interp.Plan, nplans)
		rest := r.Rest()
		for i := range p.plans {
			pl, tail, err := interp.DecodePlan(rest)
			if err != nil {
				return nil, fmt.Errorf("bytecode decode: plan %d: %w", i, err)
			}
			p.plans[i] = pl
			rest = tail
		}
	}
	return p, nil
}
