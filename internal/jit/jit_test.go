package jit

import (
	"fmt"
	"testing"
	"time"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

const tcSrc = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`

// buildChain returns catalog+IR for a TC program over a chain of n nodes.
func buildChain(t testing.TB, n int, indexed bool) (*storage.Catalog, *ir.ProgramOp) {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(tcSrc, cat)
	if err != nil {
		t.Fatal(err)
	}
	edge, _ := cat.PredByName("edge")
	for i := 0; i < n; i++ {
		edge.AddFact([]storage.Value{storage.Value(i), storage.Value(i + 1)})
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if indexed {
		for pid, cols := range ir.JoinKeyColumns(res.Program) {
			cat.Pred(pid).BuildIndexes(cols)
		}
	}
	return cat, root
}

func wantTC(n int) int { return n * (n + 1) / 2 }

func runJIT(t testing.TB, cfg Config, n int, indexed bool) (*storage.Catalog, Stats, interp.Stats) {
	t.Helper()
	cat, root := buildChain(t, n, indexed)
	ctrl := New(cat, root, cfg)
	defer ctrl.Close()
	in := interp.New(cat, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	return cat, ctrl.Stats(), in.Stats
}

func checkTC(t testing.TB, cat *storage.Catalog, n int) {
	t.Helper()
	tc, _ := cat.PredByName("tc")
	if got, want := tc.Derived.Len(), wantTC(n); got != want {
		t.Fatalf("|tc| = %d, want %d", got, want)
	}
}

func allConfigs() []Config {
	var cfgs []Config
	for _, b := range []Backend{BackendIRGen, BackendLambda, BackendBytecode, BackendQuotes} {
		for _, g := range []Granularity{GranProgram, GranDoWhile, GranUnionAll, GranUnionRule, GranSPJ} {
			for _, async := range []bool{false, true} {
				cfgs = append(cfgs, Config{Backend: b, Granularity: g, Async: async})
			}
		}
	}
	// Snippet variants for the targets that support them.
	for _, b := range []Backend{BackendLambda, BackendQuotes} {
		for _, g := range []Granularity{GranDoWhile, GranUnionAll, GranUnionRule} {
			cfgs = append(cfgs, Config{Backend: b, Granularity: g, Snippet: true})
		}
	}
	return cfgs
}

// TestAllConfigsSameResults is the core JIT correctness property: every
// backend × granularity × async × snippet combination computes exactly the
// fixpoint the pure interpreter computes.
func TestAllConfigsSameResults(t *testing.T) {
	const n = 30
	for _, indexed := range []bool{false, true} {
		for _, cfg := range allConfigs() {
			name := fmt.Sprintf("%v/%v/async=%v/snippet=%v/indexed=%v",
				cfg.Backend, cfg.Granularity, cfg.Async, cfg.Snippet, indexed)
			cfg := cfg
			t.Run(name, func(t *testing.T) {
				cat, _, _ := runJIT(t, cfg, n, indexed)
				checkTC(t, cat, n)
			})
		}
	}
}

func TestBlockingCompilationHappens(t *testing.T) {
	for _, b := range []Backend{BackendLambda, BackendBytecode, BackendQuotes} {
		_, js, is := runJIT(t, Config{Backend: b, Granularity: GranDoWhile}, 20, true)
		if js.Compilations == 0 {
			t.Errorf("%v: no compilations recorded", b)
		}
		if is.Compiled == 0 {
			t.Errorf("%v: compiled units never executed", b)
		}
		if js.Failures != 0 {
			t.Errorf("%v: %d compile failures", b, js.Failures)
		}
	}
}

func TestIRGenReordersWithoutCompiling(t *testing.T) {
	cat := storage.NewCatalog()
	src := `
.decl e(x:number, y:number)
.decl big(x:number, y:number)
.decl p(x:number, y:number)
p(x,y) :- e(x,y).
p(x,w) :- p(x,z), big(z,q), e(q,w).
`
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := cat.PredByName("e")
	big, _ := cat.PredByName("big")
	for i := 0; i < 5; i++ {
		e.AddFact([]storage.Value{storage.Value(i), storage.Value(i + 1)})
	}
	for i := 0; i < 500; i++ {
		big.AddFact([]storage.Value{storage.Value(i % 7), storage.Value(i % 11)})
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(cat, root, Config{Backend: BackendIRGen, Granularity: GranSPJ})
	defer ctrl.Close()
	in := interp.New(cat, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Stats()
	if st.Reorders == 0 {
		t.Fatal("irgen never reordered")
	}
	if st.Compilations != 0 {
		t.Fatal("irgen must not invoke a compiler")
	}
	if in.Stats.Compiled != 0 {
		t.Fatal("irgen execution must stay interpreted")
	}
}

func TestFreshnessGateLimitsRecompiles(t *testing.T) {
	// With an infinite threshold, exactly one compilation must happen even
	// at the lowest granularity.
	_, js, _ := runJIT(t, Config{
		Backend:            BackendLambda,
		Granularity:        GranSPJ,
		FreshnessThreshold: 1e18,
	}, 40, true)
	// One unit per SPJ (two SPJs in TC), compiled once each.
	if js.Compilations > 2 {
		t.Fatalf("compilations = %d, want <= 2 with infinite freshness threshold", js.Compilations)
	}
	if js.CacheHits == 0 {
		t.Fatal("expected cache hits across iterations")
	}

	// With a zero-ish threshold every delta change forces recompilation.
	_, js2, _ := runJIT(t, Config{
		Backend:            BackendLambda,
		Granularity:        GranSPJ,
		FreshnessThreshold: 1e-12,
	}, 40, true)
	if js2.Compilations <= js.Compilations {
		t.Fatalf("tight threshold should recompile more: %d vs %d", js2.Compilations, js.Compilations)
	}
	if js2.StaleDrops == 0 {
		t.Fatal("expected stale drops with tight threshold")
	}
}

func TestAsyncCompilationEventuallyUsedOrHarmless(t *testing.T) {
	// Large enough input that the loop runs many iterations: async compiles
	// should complete and be picked up via cache hits or switchover.
	cfg := Config{Backend: BackendLambda, Granularity: GranUnionAll, Async: true}
	cat, js, _ := runJIT(t, cfg, 120, true)
	checkTC(t, cat, 120)
	if js.Compilations == 0 {
		t.Fatal("async worker never compiled")
	}
}

func TestAsyncNeverBlocksOnSlowCompiler(t *testing.T) {
	// A compiler stalled by a large simulated latency must not stall
	// execution: interpretation finishes the whole query first.
	cfg := Config{
		Backend:        BackendQuotes,
		Granularity:    GranDoWhile,
		Async:          true,
		CompileLatency: 200 * time.Millisecond,
	}
	start := time.Now()
	cat, _, is := runJIT(t, cfg, 25, true)
	checkTC(t, cat, 25)
	_ = is
	// Close waits for the worker, so total time includes the sleep; the
	// point is correctness, not wall-clock, but it must not take N*latency.
	if time.Since(start) > 3*time.Second {
		t.Fatal("async run appears to have serialized on the compiler")
	}
}

func TestSwitchoverMidLoop(t *testing.T) {
	// DoWhile granularity + async: the DoWhile unit compiles while its first
	// iterations are interpreted; a later safe point switches into it.
	cfg := Config{Backend: BackendLambda, Granularity: GranDoWhile, Async: true}
	cat, js, _ := runJIT(t, cfg, 200, true)
	checkTC(t, cat, 200)
	// Switchover is timing-dependent but with 200 iterations the single
	// compilation practically always lands mid-loop.
	if js.Compilations == 0 {
		t.Fatal("no compilation")
	}
	t.Logf("switchovers=%d cachehits=%d", js.Switchovers, js.CacheHits)
}

func TestCompileLatencyAccounted(t *testing.T) {
	cfg := Config{Backend: BackendLambda, Granularity: GranProgram, CompileLatency: 50 * time.Millisecond}
	_, js, _ := runJIT(t, cfg, 10, false)
	if js.CompileTime < 50*time.Millisecond {
		t.Fatalf("CompileTime = %v, want >= 50ms", js.CompileTime)
	}
}

func TestParseBackendAndGranularity(t *testing.T) {
	for s, want := range map[string]Backend{
		"off": BackendOff, "irgen": BackendIRGen, "lambda": BackendLambda,
		"bytecode": BackendBytecode, "quotes": BackendQuotes,
	} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseBackend("llvm"); err == nil {
		t.Error("unknown backend accepted")
	}
	for s, want := range map[string]Granularity{
		"program": GranProgram, "dowhile": GranDoWhile, "unionall": GranUnionAll,
		"union": GranUnionRule, "spj": GranSPJ,
	} {
		got, err := ParseGranularity(s)
		if err != nil || got != want {
			t.Errorf("ParseGranularity(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseGranularity("molecule"); err == nil {
		t.Error("unknown granularity accepted")
	}
}

func TestControllerCloseIdempotent(t *testing.T) {
	cat, root := buildChain(t, 5, false)
	ctrl := New(cat, root, Config{Backend: BackendLambda, Granularity: GranSPJ, Async: true})
	ctrl.Close()
	ctrl.Close()
}

func TestStringers(t *testing.T) {
	if BackendQuotes.String() != "quotes" || GranUnionAll.String() != "UnionOp*" {
		t.Fatal("stringers wrong")
	}
}
