// Package jit implements Carac's just-in-time optimizing compiler (paper
// §V-B2/§V-B3): a Controller that sits on the interpreter's safe points and
// decides, per IROp node of the configured granularity, whether to reuse a
// compiled unit, compile (blocking or asynchronously on a separate compile
// goroutine), deoptimize back to interpretation, or — for the IRGenerator
// target — simply regenerate the IR in place with freshly reordered atoms.
//
// The compilation targets (paper §V-C) plug in behind one interface:
// quotes (staged typed expression trees, safe and expressive, costly),
// bytecode (flat VM programs, cheap and unchecked), lambda (stitched
// precompiled closures), and irgen (IR rewriting, no codegen at all).
//
// A "freshness" test gates recompilation: a unit is reused while the live
// cardinalities of the relations it joins have not drifted beyond a relative
// threshold since it was compiled.
//
// The Controller additionally implements interp.ShardCompiler: under the
// parallel sharded driver (core.Options.Shards with a JIT attached) each
// iteration's bucket-span tasks run span-parameterized compiled units over
// the physically sharded delta store — bucket-local scans and probes, with
// derivations buffered per worker and folded by the parallel merge barrier
// (one race-free ShardInsert task per bucket) — so attaching a JIT no
// longer forfeits the sharded execution machinery.
package jit

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit/bytecode"
	"carac/internal/jit/lambda"
	"carac/internal/jit/quotes"
	"carac/internal/optimizer"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Backend selects the compilation target.
type Backend uint8

const (
	// BackendOff disables the JIT entirely (pure interpretation).
	BackendOff Backend = iota
	// BackendIRGen regenerates IR atom orders in place and keeps
	// interpreting — the cheapest target (paper §V-C4).
	BackendIRGen
	// BackendLambda stitches precompiled closures (paper §V-C3).
	BackendLambda
	// BackendBytecode emits flat VM programs (paper §V-C2).
	BackendBytecode
	// BackendQuotes stages typed expression trees with a validation pass
	// (paper §V-C1). The only target supporting snippet compilation
	// alongside lambda.
	BackendQuotes
)

// String returns the backend's name.
func (b Backend) String() string {
	switch b {
	case BackendOff:
		return "off"
	case BackendIRGen:
		return "irgen"
	case BackendLambda:
		return "lambda"
	case BackendBytecode:
		return "bytecode"
	case BackendQuotes:
		return "quotes"
	default:
		return "?"
	}
}

// Granularity is the IROp height at which compilation triggers (paper Fig 4
// / §V-B2): higher nodes compile less often over larger code with staler
// statistics.
type Granularity uint8

const (
	// GranProgram compiles the whole program once.
	GranProgram Granularity = iota
	// GranDoWhile compiles each stratum loop.
	GranDoWhile
	// GranUnionAll compiles per relation per iteration (pink Union*).
	GranUnionAll
	// GranUnionRule compiles per rule definition per iteration (yellow Union).
	GranUnionRule
	// GranSPJ compiles per n-way join — the freshest statistics and the most
	// compilations.
	GranSPJ
)

// String returns the granularity's Fig 4 name.
func (g Granularity) String() string {
	switch g {
	case GranProgram:
		return "ProgramOp"
	case GranDoWhile:
		return "DoWhileOp"
	case GranUnionAll:
		return "UnionOp*"
	case GranUnionRule:
		return "UnionOp"
	case GranSPJ:
		return "SPJ"
	default:
		return "?"
	}
}

// OpKind maps the granularity to the IR node kind it matches.
func (g Granularity) OpKind() ir.OpKind {
	switch g {
	case GranProgram:
		return ir.KProgram
	case GranDoWhile:
		return ir.KDoWhile
	case GranUnionAll:
		return ir.KUnionAll
	case GranUnionRule:
		return ir.KUnionRule
	default:
		return ir.KSPJ
	}
}

// Config tunes the JIT.
type Config struct {
	Backend     Backend
	Granularity Granularity
	// Async compiles on a separate goroutine while interpretation continues;
	// otherwise compilation blocks at the safe point.
	Async bool
	// Snippet compiles only the node's own control structure and splices
	// interpreter continuations for children (quotes and lambda targets).
	Snippet bool
	// FreshnessThreshold is the maximum relative cardinality drift tolerated
	// before a compiled unit is considered stale. <= 0 picks the default 0.5.
	FreshnessThreshold float64
	// Optimizer configures join reordering.
	Optimizer optimizer.Options
	// CompileLatency adds a simulated fixed cost to every compiler
	// invocation, emulating heavyweight external compilers (used only by the
	// baseline-engine comparison; 0 for all Carac measurements).
	CompileLatency time.Duration
}

// Stats reports JIT activity.
type Stats struct {
	Compilations int64
	CompileTime  time.Duration
	CacheHits    int64
	StaleDrops   int64
	Reorders     int64
	Switchovers  int64
	Failures     int64
}

// compiledUnit is the cached artifact of one compilation: the runnable
// thunk, or a failure marker kept so a broken subquery is not re-fed to the
// compiler on every safe-point visit while its statistics stay fresh. The
// cardinality fingerprint lives on the plan-store entry, not here. For the
// bytecode backend, prog retains the raw program so the persistent cache can
// serialize the artifact; the staged backends leave it nil and persist as
// recompile hints.
type compiledUnit struct {
	run    func(in *interp.Interp) error
	prog   *bytecode.Program
	failed bool
}

// compiledShardUnit is the cached artifact of one span-parameterized task
// compilation (interp.ShardUnit), with the same failure-marker convention.
type compiledShardUnit struct {
	run    interp.ShardUnit
	failed bool
}

// shardUnitTag prefixes the KeyForOp fingerprint of span-parameterized task
// units, followed by the shard layout (bucket count, little-endian), so they
// never collide with sequential units' backend/snippet tags and a run at a
// different Shards count resolves to fresh keys instead of a unit whose
// spans were sized for another partition. 0xfd is outside the Backend range.
const shardUnitTag = 0xfd

// inflight guards one unit key against duplicate compile requests: set by
// the interpreter goroutine when a request is queued, cleared by whichever
// goroutine finishes the compile.
type inflight struct {
	compiling atomic.Bool
}

type compileReq struct {
	fl       *inflight
	key      plancache.Key
	clone    ir.Op
	cards    []int
	counters []uint64
	stats    stats.Source
	// shard marks a span-parameterized task-unit request: the clone is a
	// rule subtree compiled via the shard backend and published into the
	// shard-unit view instead of the sequential one.
	shard bool
}

type backendCompiler interface {
	Name() string
	Compile(op ir.Op, cat *storage.Catalog, snippet bool) (func(in *interp.Interp) error, error)
}

// shardBackend is the span-parameterized compilation surface: CompileShard
// produces an interp.ShardUnit whose invocations are restricted to bucket
// spans and safe to run concurrently from pool workers. The lambda target
// implements it natively; the bytecode and quotes targets fall back to the
// lambda combinator substrate for task bodies (their sequential artifacts —
// a non-reentrant VM program, pooled frames — would need per-invocation
// state to run on workers), keeping their own codegen for sequential units.
type shardBackend interface {
	CompileShard(op ir.Op, cat *storage.Catalog) (interp.ShardUnit, error)
}

// Controller implements interp.Controller. Create with New, attach to an
// interpreter, and Close when the run finishes.
type Controller struct {
	cfg      Config
	cat      *storage.Catalog
	granKind ir.OpKind
	compiler backendCompiler
	// policy is the uniform drift-gated freshness policy (shared with the
	// interpreter's plan cache): a unit is reused while the cardinalities it
	// was compiled against have not drifted beyond the threshold.
	policy plancache.Policy

	// units is the compiled-unit view of the plan store: entries are keyed
	// by structural subtree fingerprint (plancache.KeyForOp) instead of op
	// identity, banded by cardinality regime, and gated by the same Policy
	// the interpreter's plan cache uses — the separate per-op freshness
	// mechanism collapses into the shared one. With NewShared the view
	// windows the Program-lifetime store, so a later Run resolves to this
	// run's units without recompiling.
	units *plancache.Cache[*compiledUnit]
	// sunits is the span-parameterized task-unit view over the same store
	// and key class: entries are keyed by rule-subtree fingerprint tagged
	// with the shard layout, so warm reruns at one layout reuse task units
	// while a re-partitioned run compiles fresh ones.
	sunits *plancache.Cache[*compiledShardUnit]
	// shardComp compiles task units (nil for backends with no compiler).
	shardComp shardBackend
	// keys memoizes each op's structural unit key for this run (op identity
	// is stable within one run's IR tree); shardKeys is the task-unit
	// analogue (the shard layout is fixed for one run).
	keys      map[ir.Op]plancache.Key
	shardKeys map[ir.Op]plancache.Key
	// pending tracks in-flight compilations per unit key. Only the
	// interpreter goroutine mutates the map; the async worker clears flags
	// through the pointers carried in compile requests.
	pending map[plancache.Key]*inflight

	parents map[ir.Op]ir.Op

	// irgen freshness state: cardinalities at last reorder per subquery.
	reorderCards map[*ir.SPJOp][]int

	inUnit int // depth inside compiled-unit execution (single goroutine)

	// readyGen is bumped by the async worker whenever a new unit is
	// published, so the interpreter can yield out of a long-running subquery
	// and switch over immediately (interp.Yielder).
	readyGen atomic.Int64
	// consumedGen / yieldMiss* cache signal handling on the interpreter
	// goroutine, avoiding per-row ancestor walks.
	consumedGen  int64
	yieldMissOp  ir.Op
	yieldMissGen int64

	reqs   chan compileReq
	wg     sync.WaitGroup
	closed bool

	mu    sync.Mutex // guards stats (worker and interp goroutines)
	stats Stats
}

// New builds a controller for one run of root over a private unit store.
// The parent index enables mid-stream switchover into asynchronously
// compiled ancestors.
func New(cat *storage.Catalog, root ir.Op, cfg Config) *Controller {
	return NewShared(cat, root, cfg, nil)
}

// NewShared is New over an external plan store: compiled units land in (and
// are served from) store's unit view, so a store that outlives this run —
// the Program-lifetime store under core.Options.SharedPlans — hands a later
// Run this run's units without recompiling. A nil store selects a private
// per-run one.
func NewShared(cat *storage.Catalog, root ir.Op, cfg Config, store *plancache.Store) *Controller {
	if cfg.FreshnessThreshold <= 0 {
		cfg.FreshnessThreshold = 0.5
	}
	if store == nil {
		store = plancache.NewStore(0)
	}
	pol := plancache.Policy{Threshold: cfg.FreshnessThreshold}
	c := &Controller{
		cfg:      cfg,
		cat:      cat,
		granKind: cfg.Granularity.OpKind(),
		policy:   pol,
		// CrossBand keeps the original unit semantics under the banded key
		// space: a band hop serves any policy-fresh unit (band return
		// without recompiling) rather than forcing one compile per band.
		units:        plancache.View[*compiledUnit](store, plancache.ViewConfig{Class: plancache.ClassUnits, Policy: pol, CrossBand: true}),
		sunits:       plancache.View[*compiledShardUnit](store, plancache.ViewConfig{Class: plancache.ClassUnits, Policy: pol, CrossBand: true}),
		keys:         make(map[ir.Op]plancache.Key),
		shardKeys:    make(map[ir.Op]plancache.Key),
		pending:      make(map[plancache.Key]*inflight),
		parents:      make(map[ir.Op]ir.Op),
		reorderCards: make(map[*ir.SPJOp][]int),
	}
	indexParents(root, nil, c.parents)
	switch cfg.Backend {
	case BackendLambda:
		c.compiler = lambda.Compiler{}
	case BackendBytecode:
		c.compiler = bytecode.Compiler{}
	case BackendQuotes:
		c.compiler = quotes.NewCompiler()
	}
	if c.compiler != nil {
		if sb, ok := c.compiler.(shardBackend); ok {
			c.shardComp = sb
		} else {
			// Task bodies from the lambda combinator substrate (see
			// shardBackend); sequential units keep the configured target.
			c.shardComp = lambda.Compiler{}
		}
	}
	if cfg.Async && c.compiler != nil {
		c.reqs = make(chan compileReq, 64)
		c.wg.Add(1)
		go c.worker()
	}
	return c
}

func indexParents(op ir.Op, parent ir.Op, idx map[ir.Op]ir.Op) {
	if parent != nil {
		idx[op] = parent
	}
	for _, ch := range op.Children() {
		indexParents(ch, op, idx)
	}
}

// Close shuts the compile worker down. Safe to call once per controller.
func (c *Controller) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.reqs != nil {
		close(c.reqs)
		c.wg.Wait()
	}
}

// Stats returns a snapshot of JIT activity.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// UnitStats returns the unit view's plan-store counters (cumulative for the
// store backing this controller — per-run when the store is private).
func (c *Controller) UnitStats() plancache.Stats { return c.units.Stats() }

// keyFor memoizes the op's structural unit key. Backend and snippet mode
// prefix the signature: units produced differently must never collide, even
// inside one shared store serving runs with different JIT configurations.
func (c *Controller) keyFor(op ir.Op) plancache.Key {
	if k, ok := c.keys[op]; ok {
		return k
	}
	snippet := byte(0)
	if c.cfg.Snippet {
		snippet = 1
	}
	k := plancache.KeyForOp(op, byte(c.cfg.Backend), snippet)
	c.keys[op] = k
	return k
}

// countersFor snapshots the drift counters of every relation read by
// subqueries beneath op — the exactness pre-test paired with cardsFor.
func (c *Controller) countersFor(op ir.Op) []uint64 {
	var out []uint64
	ir.Walk(op, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			out = stats.AppendCounterVector(out, spj, c.cat)
		}
	})
	return out
}

// inflightFor returns the key's compile guard, creating it on first use
// (interpreter goroutine only).
func (c *Controller) inflightFor(k plancache.Key) *inflight {
	fl := c.pending[k]
	if fl == nil {
		fl = &inflight{}
		c.pending[k] = fl
	}
	return fl
}

func (c *Controller) bump(f func(s *Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Enter is the safe-point hook (interp.Controller).
func (c *Controller) Enter(op ir.Op, in *interp.Interp) func() error {
	if c.cfg.Backend == BackendOff || c.inUnit > 0 {
		return nil
	}
	// Mid-stream switchover: if an ancestor's asynchronous compilation
	// finished, call into the compiled code "at the exact spot the
	// interpreter left off" (paper §V-B2). Fixpoint monotonicity makes the
	// ancestor unit safe to run from the current storage state.
	if c.cfg.Async && c.compiler != nil {
		if th := c.ancestorSwitch(op, in); th != nil {
			return th
		}
	}
	if op.Kind() != c.granKind {
		return nil
	}

	if c.cfg.Backend == BackendIRGen {
		c.regenerate(op)
		return nil
	}
	if c.compiler == nil {
		return nil
	}

	key := c.keyFor(op)
	fl := c.inflightFor(key)
	if fl.compiling.Load() {
		// Async compile in flight: keep interpreting. Checked before the
		// cardinality walks and the store lookup so the safe-point hot path
		// stays a map read plus an atomic load while the worker runs (and
		// the wait does not register as unit-view misses).
		return nil
	}
	cards := c.cardsFor(op)
	counters := c.countersFor(op)
	// Unit lookup through the shared store: a hit is the old freshness pass
	// (any policy-fresh band, CrossBand) — including units stored by an
	// earlier Run of the same Program when the store is shared; a stale
	// return is the old deoptimize-and-regenerate cue; failed entries are
	// remembered so a broken subquery is retried only once its statistics
	// drift enough that a different (possibly legal) plan would result.
	if cu, ok, stale := c.units.Lookup(key, counters, cards); ok {
		if cu.failed {
			return nil
		}
		c.bump(func(s *Stats) { s.CacheHits++ })
		return c.wrap(cu, in)
	} else if stale {
		c.bump(func(s *Stats) { s.StaleDrops++ })
	}
	req := c.buildReq(fl, key, op, cards, counters)
	if c.cfg.Async {
		fl.compiling.Store(true)
		select {
		case c.reqs <- req:
		default:
			fl.compiling.Store(false) // queue full: try again next visit
		}
		return nil
	}
	if cu := c.runCompile(req); cu != nil && !cu.failed {
		return c.wrap(cu, in)
	}
	return nil
}

func (c *Controller) wrap(cu *compiledUnit, in *interp.Interp) func() error {
	return func() error {
		c.inUnit++
		defer func() { c.inUnit-- }()
		return cu.run(in)
	}
}

func (c *Controller) ancestorSwitch(op ir.Op, in *interp.Interp) func() error {
	for p := c.parents[op]; p != nil; p = c.parents[p] {
		if p.Kind() != c.granKind {
			continue
		}
		key := c.keyFor(p)
		if !c.units.Contains(key) {
			continue // no unit yet: skip the cardinality walk
		}
		cu, ok := c.units.Peek(key, c.cardsFor(p))
		if !ok || cu.failed {
			continue
		}
		c.bump(func(s *Stats) { s.Switchovers++ })
		return c.wrap(cu, in)
	}
	return nil
}

// regenerate is the IRGenerator target: reorder every subquery beneath op in
// place (freshness-gated) and let interpretation continue on the new IR.
func (c *Controller) regenerate(op ir.Op) {
	live := stats.Catalog{Cat: c.cat}
	ir.Walk(op, func(o ir.Op) {
		spj, ok := o.(*ir.SPJOp)
		if !ok {
			return
		}
		cards := stats.CardVector(spj, live)
		if last, seen := c.reorderCards[spj]; seen {
			if c.policy.Fresh(last, cards) {
				return
			}
		}
		c.reorderCards[spj] = cards
		changed, err := optimizer.Reorder(spj, live, c.cfg.Optimizer)
		if err != nil {
			return // keep the existing legal order
		}
		if changed {
			c.bump(func(s *Stats) { s.Reorders++ })
			// Record the vector in the new atom order so future drift
			// comparisons are apples-to-apples.
			c.reorderCards[spj] = stats.CardVector(spj, live)
		}
	})
}

// cardsFor snapshots the cardinality vector of every subquery beneath op in
// traversal order — the freshness fingerprint.
func (c *Controller) cardsFor(op ir.Op) []int {
	live := stats.Catalog{Cat: c.cat}
	var cards []int
	ir.Walk(op, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			cards = append(cards, stats.CardVector(spj, live)...)
		}
	})
	return cards
}

// buildReq snapshots everything compilation needs so the worker never
// touches live mutable state: a deep clone of the subtree, the cardinality
// and counter fingerprints the published unit will be keyed under, and a
// frozen statistics source.
func (c *Controller) buildReq(fl *inflight, key plancache.Key, op ir.Op, cards []int, counters []uint64) compileReq {
	return compileReq{
		fl:       fl,
		key:      key,
		clone:    ir.CloneSubtree(op),
		cards:    cards,
		counters: counters,
		stats:    c.snapshotStats(op),
	}
}

func (c *Controller) snapshotStats(op ir.Op) stats.Source {
	return stats.Freeze(op, stats.Catalog{Cat: c.cat})
}

func (c *Controller) worker() {
	defer c.wg.Done()
	for req := range c.reqs {
		if req.shard {
			c.runShardCompile(req)
		} else {
			c.runCompile(req)
		}
	}
}

// reorderClone reorders every subquery of the cloned subtree with the
// request's frozen statistics, returning the first planning error.
func (c *Controller) reorderClone(req compileReq) error {
	var firstErr error
	ir.Walk(req.clone, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			if _, err := optimizer.Reorder(spj, req.stats, c.cfg.Optimizer); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// accountCompile records one compilation outcome and releases the in-flight
// guard.
func (c *Controller) accountCompile(req compileReq, failed bool, dt time.Duration) {
	c.bump(func(s *Stats) {
		if failed {
			s.Failures++
		} else {
			s.Compilations++
		}
		s.CompileTime += dt
	})
	req.fl.compiling.Store(false)
}

// runCompile reorders the cloned subtree with the frozen statistics and
// hands it to the backend, publishing the result (success or failure marker)
// into the shared unit store under the request's cardinality band.
func (c *Controller) runCompile(req compileReq) *compiledUnit {
	t0 := time.Now()
	if c.cfg.CompileLatency > 0 {
		time.Sleep(c.cfg.CompileLatency)
	}
	firstErr := c.reorderClone(req)
	var run func(in *interp.Interp) error
	var prog *bytecode.Program
	if firstErr == nil {
		if c.cfg.Backend == BackendBytecode {
			// Snippet splicing needs a target that can defer control back to
			// the interpreter; bytecode cannot (paper §V-C2), so it always
			// compiles the full subtree — through the raw-program path, so
			// the flat artifact is retained for the persistent cache.
			prog, firstErr = bytecode.Compiler{}.CompileProgram(req.clone, c.cat)
			if firstErr == nil {
				run = prog.Run
			}
		} else {
			run, firstErr = c.compiler.Compile(req.clone, c.cat, c.cfg.Snippet)
		}
	}
	dt := time.Since(t0)
	cu := &compiledUnit{run: run, prog: prog, failed: firstErr != nil}
	c.units.Store(req.key, req.counters, req.cards, cu)
	c.accountCompile(req, cu.failed, dt)
	if c.cfg.Async && !cu.failed {
		c.readyGen.Add(1)
	}
	return cu
}

// runShardCompile is runCompile for span-parameterized task units: the
// reordered rule clone goes through the shard backend and the artifact (or
// failure marker — e.g. an aggregation rule, which stays interpreted) lands
// in the task-unit view. No ready signal: the driver re-resolves at every
// iteration's fan-out point anyway.
func (c *Controller) runShardCompile(req compileReq) *compiledShardUnit {
	t0 := time.Now()
	if c.cfg.CompileLatency > 0 {
		time.Sleep(c.cfg.CompileLatency)
	}
	firstErr := c.reorderClone(req)
	var run interp.ShardUnit
	if firstErr == nil {
		run, firstErr = c.shardComp.CompileShard(req.clone, c.cat)
	}
	dt := time.Since(t0)
	cu := &compiledShardUnit{run: run, failed: firstErr != nil}
	c.sunits.Store(req.key, req.counters, req.cards, cu)
	c.accountCompile(req, cu.failed, dt)
	return cu
}

// shardKeyFor memoizes the rule's task-unit key: the subtree fingerprint
// under the shard tag plus the run's partition layout. KeyForOp itself is
// unchanged — the same fingerprint scheme sequential units use — so task
// units stored by one run resolve in the next (warm reruns recompile 0)
// while a different Shards count lands on fresh keys.
func (c *Controller) shardKeyFor(rule *ir.UnionRuleOp, layout int) plancache.Key {
	if k, ok := c.shardKeys[rule]; ok {
		return k
	}
	k := plancache.KeyForOp(rule, shardUnitTag, byte(layout), byte(layout>>8))
	c.shardKeys[rule] = k
	return k
}

// ResolveShardUnit implements interp.ShardCompiler: at each iteration's
// sequential fan-out point the parallel driver asks for a compiled task body
// per rule. A policy-fresh unit (any band, CrossBand — including one stored
// by an earlier Run over a shared store) is returned for the pool workers to
// invoke with their bucket spans; a miss triggers compilation — blocking
// here, or queued to the async worker with interpretation covering the
// meantime — and a failure marker keeps unsupported rules (aggregations)
// interpreted without re-feeding the compiler every iteration. For the
// IRGenerator target it regenerates the rule's atom orders in place and
// always declines, keeping that backend's tasks interpreted over fresh IR.
func (c *Controller) ResolveShardUnit(rule *ir.UnionRuleOp, in *interp.Interp) interp.ShardUnit {
	if c.cfg.Backend == BackendOff {
		return nil
	}
	if c.cfg.Backend == BackendIRGen {
		c.regenerate(rule)
		return nil
	}
	if c.shardComp == nil {
		return nil
	}
	key := c.shardKeyFor(rule, in.Shards)
	fl := c.inflightFor(key)
	if fl.compiling.Load() {
		return nil // async compile in flight: tasks stay interpreted
	}
	cards := c.cardsFor(rule)
	counters := c.countersFor(rule)
	if cu, ok, stale := c.sunits.Lookup(key, counters, cards); ok {
		if cu.failed {
			return nil
		}
		c.bump(func(s *Stats) { s.CacheHits++ })
		return cu.run
	} else if stale {
		c.bump(func(s *Stats) { s.StaleDrops++ })
	}
	req := c.buildReq(fl, key, rule, cards, counters)
	req.shard = true
	if c.cfg.Async {
		fl.compiling.Store(true)
		select {
		case c.reqs <- req:
		default:
			fl.compiling.Store(false) // queue full: try again next iteration
		}
		return nil
	}
	if cu := c.runShardCompile(req); cu != nil && !cu.failed {
		return cu.run
	}
	return nil
}

// ShouldYield implements interp.Yielder: the interpreter polls it from
// inside subquery loops and abandons the join when an asynchronously
// compiled unit covering the current position is ready and fresh.
func (c *Controller) ShouldYield(op ir.Op, in *interp.Interp) bool {
	if !c.cfg.Async || c.inUnit > 0 {
		return false
	}
	g := c.readyGen.Load()
	if g == c.consumedGen {
		return false // no unconsumed publish
	}
	if op == c.yieldMissOp && g == c.yieldMissGen {
		return false // this subquery already checked this signal
	}
	if !c.hasReadyAncestor(op) {
		c.yieldMissOp, c.yieldMissGen = op, g
		return false
	}
	// Consume the signal; the unit itself stays published for Enter.
	c.consumedGen = g
	return true
}

func (c *Controller) hasReadyAncestor(op ir.Op) bool {
	for p := op; p != nil; p = c.parents[p] {
		if p.Kind() != c.granKind {
			continue
		}
		key := c.keyFor(p)
		if !c.units.Contains(key) {
			continue
		}
		if cu, ok := c.units.Peek(key, c.cardsFor(p)); ok && !cu.failed {
			return true
		}
	}
	return false
}

var (
	_ interp.Controller    = (*Controller)(nil)
	_ interp.ShardCompiler = (*Controller)(nil)
	_ shardBackend         = lambda.Compiler{}
)

// ParseBackend converts a backend name to its enum, for CLI use.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "off", "interp", "":
		return BackendOff, nil
	case "irgen":
		return BackendIRGen, nil
	case "lambda":
		return BackendLambda, nil
	case "bytecode":
		return BackendBytecode, nil
	case "quotes":
		return BackendQuotes, nil
	}
	return 0, fmt.Errorf("jit: unknown backend %q", s)
}

// ParseGranularity converts a granularity name to its enum, for CLI use.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "program":
		return GranProgram, nil
	case "dowhile", "loop":
		return GranDoWhile, nil
	case "unionall", "union*":
		return GranUnionAll, nil
	case "union", "unionrule":
		return GranUnionRule, nil
	case "spj", "join", "":
		return GranSPJ, nil
	}
	return 0, fmt.Errorf("jit: unknown granularity %q", s)
}
