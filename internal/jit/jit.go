// Package jit implements Carac's just-in-time optimizing compiler (paper
// §V-B2/§V-B3): a Controller that sits on the interpreter's safe points and
// decides, per IROp node of the configured granularity, whether to reuse a
// compiled unit, compile (blocking or asynchronously on a separate compile
// goroutine), deoptimize back to interpretation, or — for the IRGenerator
// target — simply regenerate the IR in place with freshly reordered atoms.
//
// The compilation targets (paper §V-C) plug in behind one interface:
// quotes (staged typed expression trees, safe and expressive, costly),
// bytecode (flat VM programs, cheap and unchecked), lambda (stitched
// precompiled closures), and irgen (IR rewriting, no codegen at all).
//
// A "freshness" test gates recompilation: a unit is reused while the live
// cardinalities of the relations it joins have not drifted beyond a relative
// threshold since it was compiled.
package jit

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit/bytecode"
	"carac/internal/jit/lambda"
	"carac/internal/jit/quotes"
	"carac/internal/optimizer"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Backend selects the compilation target.
type Backend uint8

const (
	// BackendOff disables the JIT entirely (pure interpretation).
	BackendOff Backend = iota
	// BackendIRGen regenerates IR atom orders in place and keeps
	// interpreting — the cheapest target (paper §V-C4).
	BackendIRGen
	// BackendLambda stitches precompiled closures (paper §V-C3).
	BackendLambda
	// BackendBytecode emits flat VM programs (paper §V-C2).
	BackendBytecode
	// BackendQuotes stages typed expression trees with a validation pass
	// (paper §V-C1). The only target supporting snippet compilation
	// alongside lambda.
	BackendQuotes
)

// String returns the backend's name.
func (b Backend) String() string {
	switch b {
	case BackendOff:
		return "off"
	case BackendIRGen:
		return "irgen"
	case BackendLambda:
		return "lambda"
	case BackendBytecode:
		return "bytecode"
	case BackendQuotes:
		return "quotes"
	default:
		return "?"
	}
}

// Granularity is the IROp height at which compilation triggers (paper Fig 4
// / §V-B2): higher nodes compile less often over larger code with staler
// statistics.
type Granularity uint8

const (
	// GranProgram compiles the whole program once.
	GranProgram Granularity = iota
	// GranDoWhile compiles each stratum loop.
	GranDoWhile
	// GranUnionAll compiles per relation per iteration (pink Union*).
	GranUnionAll
	// GranUnionRule compiles per rule definition per iteration (yellow Union).
	GranUnionRule
	// GranSPJ compiles per n-way join — the freshest statistics and the most
	// compilations.
	GranSPJ
)

// String returns the granularity's Fig 4 name.
func (g Granularity) String() string {
	switch g {
	case GranProgram:
		return "ProgramOp"
	case GranDoWhile:
		return "DoWhileOp"
	case GranUnionAll:
		return "UnionOp*"
	case GranUnionRule:
		return "UnionOp"
	case GranSPJ:
		return "SPJ"
	default:
		return "?"
	}
}

// OpKind maps the granularity to the IR node kind it matches.
func (g Granularity) OpKind() ir.OpKind {
	switch g {
	case GranProgram:
		return ir.KProgram
	case GranDoWhile:
		return ir.KDoWhile
	case GranUnionAll:
		return ir.KUnionAll
	case GranUnionRule:
		return ir.KUnionRule
	default:
		return ir.KSPJ
	}
}

// Config tunes the JIT.
type Config struct {
	Backend     Backend
	Granularity Granularity
	// Async compiles on a separate goroutine while interpretation continues;
	// otherwise compilation blocks at the safe point.
	Async bool
	// Snippet compiles only the node's own control structure and splices
	// interpreter continuations for children (quotes and lambda targets).
	Snippet bool
	// FreshnessThreshold is the maximum relative cardinality drift tolerated
	// before a compiled unit is considered stale. <= 0 picks the default 0.5.
	FreshnessThreshold float64
	// Optimizer configures join reordering.
	Optimizer optimizer.Options
	// CompileLatency adds a simulated fixed cost to every compiler
	// invocation, emulating heavyweight external compilers (used only by the
	// baseline-engine comparison; 0 for all Carac measurements).
	CompileLatency time.Duration
}

// Stats reports JIT activity.
type Stats struct {
	Compilations int64
	CompileTime  time.Duration
	CacheHits    int64
	StaleDrops   int64
	Reorders     int64
	Switchovers  int64
	Failures     int64
}

type compiledUnit struct {
	run    func(in *interp.Interp) error
	cards  []int
	failed bool
}

type unit struct {
	compiled  atomic.Pointer[compiledUnit]
	compiling atomic.Bool
}

type compileReq struct {
	u     *unit
	clone ir.Op
	cards []int
	stats stats.Source
}

type backendCompiler interface {
	Name() string
	Compile(op ir.Op, cat *storage.Catalog, snippet bool) (func(in *interp.Interp) error, error)
}

// Controller implements interp.Controller. Create with New, attach to an
// interpreter, and Close when the run finishes.
type Controller struct {
	cfg      Config
	cat      *storage.Catalog
	granKind ir.OpKind
	compiler backendCompiler
	// policy is the uniform drift-gated freshness policy (shared with the
	// interpreter's plan cache): a unit is reused while the cardinalities it
	// was compiled against have not drifted beyond the threshold.
	policy plancache.Policy

	units   map[ir.Op]*unit
	parents map[ir.Op]ir.Op

	// irgen freshness state: cardinalities at last reorder per subquery.
	reorderCards map[*ir.SPJOp][]int

	inUnit int // depth inside compiled-unit execution (single goroutine)

	// readyGen is bumped by the async worker whenever a new unit is
	// published, so the interpreter can yield out of a long-running subquery
	// and switch over immediately (interp.Yielder).
	readyGen atomic.Int64
	// consumedGen / yieldMiss* cache signal handling on the interpreter
	// goroutine, avoiding per-row ancestor walks.
	consumedGen  int64
	yieldMissOp  ir.Op
	yieldMissGen int64

	reqs   chan compileReq
	wg     sync.WaitGroup
	closed bool

	mu    sync.Mutex // guards stats (worker and interp goroutines)
	stats Stats
}

// New builds a controller for one run of root. The parent index enables
// mid-stream switchover into asynchronously compiled ancestors.
func New(cat *storage.Catalog, root ir.Op, cfg Config) *Controller {
	if cfg.FreshnessThreshold <= 0 {
		cfg.FreshnessThreshold = 0.5
	}
	c := &Controller{
		cfg:          cfg,
		cat:          cat,
		granKind:     cfg.Granularity.OpKind(),
		policy:       plancache.Policy{Threshold: cfg.FreshnessThreshold},
		units:        make(map[ir.Op]*unit),
		parents:      make(map[ir.Op]ir.Op),
		reorderCards: make(map[*ir.SPJOp][]int),
	}
	indexParents(root, nil, c.parents)
	switch cfg.Backend {
	case BackendLambda:
		c.compiler = lambda.Compiler{}
	case BackendBytecode:
		c.compiler = bytecode.Compiler{}
	case BackendQuotes:
		c.compiler = quotes.NewCompiler()
	}
	if cfg.Async && c.compiler != nil {
		c.reqs = make(chan compileReq, 64)
		c.wg.Add(1)
		go c.worker()
	}
	return c
}

func indexParents(op ir.Op, parent ir.Op, idx map[ir.Op]ir.Op) {
	if parent != nil {
		idx[op] = parent
	}
	for _, ch := range op.Children() {
		indexParents(ch, op, idx)
	}
}

// Close shuts the compile worker down. Safe to call once per controller.
func (c *Controller) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.reqs != nil {
		close(c.reqs)
		c.wg.Wait()
	}
}

// Stats returns a snapshot of JIT activity.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Controller) bump(f func(s *Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Enter is the safe-point hook (interp.Controller).
func (c *Controller) Enter(op ir.Op, in *interp.Interp) func() error {
	if c.cfg.Backend == BackendOff || c.inUnit > 0 {
		return nil
	}
	// Mid-stream switchover: if an ancestor's asynchronous compilation
	// finished, call into the compiled code "at the exact spot the
	// interpreter left off" (paper §V-B2). Fixpoint monotonicity makes the
	// ancestor unit safe to run from the current storage state.
	if c.cfg.Async && c.compiler != nil {
		if th := c.ancestorSwitch(op, in); th != nil {
			return th
		}
	}
	if op.Kind() != c.granKind {
		return nil
	}

	if c.cfg.Backend == BackendIRGen {
		c.regenerate(op)
		return nil
	}
	if c.compiler == nil {
		return nil
	}

	u := c.units[op]
	if u == nil {
		u = &unit{}
		c.units[op] = u
	}
	if cu := u.compiled.Load(); cu != nil {
		if cu.failed {
			// A failed compile is retried only when the world has drifted
			// enough that a different (possibly legal) plan would result.
			if c.policy.Fresh(cu.cards, c.cardsFor(op)) {
				return nil
			}
			u.compiled.Store(nil)
		} else if c.policy.Fresh(cu.cards, c.cardsFor(op)) {
			c.bump(func(s *Stats) { s.CacheHits++ })
			return c.wrap(cu, in)
		} else {
			// Stale: deoptimize (drop the unit, fall back to the
			// interpreter) and regenerate.
			c.bump(func(s *Stats) { s.StaleDrops++ })
			u.compiled.Store(nil)
		}
	}
	if u.compiling.Load() {
		return nil // async compile in flight; keep interpreting
	}
	req := c.buildReq(u, op)
	if c.cfg.Async {
		u.compiling.Store(true)
		select {
		case c.reqs <- req:
		default:
			u.compiling.Store(false) // queue full: try again next visit
		}
		return nil
	}
	c.runCompile(req)
	if cu := u.compiled.Load(); cu != nil && !cu.failed {
		return c.wrap(cu, in)
	}
	return nil
}

func (c *Controller) wrap(cu *compiledUnit, in *interp.Interp) func() error {
	return func() error {
		c.inUnit++
		defer func() { c.inUnit-- }()
		return cu.run(in)
	}
}

func (c *Controller) ancestorSwitch(op ir.Op, in *interp.Interp) func() error {
	for p := c.parents[op]; p != nil; p = c.parents[p] {
		if p.Kind() != c.granKind {
			continue
		}
		u := c.units[p]
		if u == nil {
			continue
		}
		cu := u.compiled.Load()
		if cu == nil || cu.failed {
			continue
		}
		if !c.policy.Fresh(cu.cards, c.cardsFor(p)) {
			continue
		}
		c.bump(func(s *Stats) { s.Switchovers++ })
		return c.wrap(cu, in)
	}
	return nil
}

// regenerate is the IRGenerator target: reorder every subquery beneath op in
// place (freshness-gated) and let interpretation continue on the new IR.
func (c *Controller) regenerate(op ir.Op) {
	live := stats.Catalog{Cat: c.cat}
	ir.Walk(op, func(o ir.Op) {
		spj, ok := o.(*ir.SPJOp)
		if !ok {
			return
		}
		cards := stats.CardVector(spj, live)
		if last, seen := c.reorderCards[spj]; seen {
			if c.policy.Fresh(last, cards) {
				return
			}
		}
		c.reorderCards[spj] = cards
		changed, err := optimizer.Reorder(spj, live, c.cfg.Optimizer)
		if err != nil {
			return // keep the existing legal order
		}
		if changed {
			c.bump(func(s *Stats) { s.Reorders++ })
			// Record the vector in the new atom order so future drift
			// comparisons are apples-to-apples.
			c.reorderCards[spj] = stats.CardVector(spj, live)
		}
	})
}

// cardsFor snapshots the cardinality vector of every subquery beneath op in
// traversal order — the freshness fingerprint.
func (c *Controller) cardsFor(op ir.Op) []int {
	live := stats.Catalog{Cat: c.cat}
	var cards []int
	ir.Walk(op, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			cards = append(cards, stats.CardVector(spj, live)...)
		}
	})
	return cards
}

// buildReq snapshots everything compilation needs so the worker never
// touches live mutable state: a deep clone of the subtree and a frozen
// cardinality map.
func (c *Controller) buildReq(u *unit, op ir.Op) compileReq {
	return compileReq{
		u:     u,
		clone: ir.CloneSubtree(op),
		cards: c.cardsFor(op),
		stats: c.snapshotStats(op),
	}
}

func (c *Controller) snapshotStats(op ir.Op) stats.Source {
	return stats.Freeze(op, stats.Catalog{Cat: c.cat})
}

func (c *Controller) worker() {
	defer c.wg.Done()
	for req := range c.reqs {
		c.runCompile(req)
	}
}

// runCompile reorders the cloned subtree with the frozen statistics and
// hands it to the backend, publishing the result atomically.
func (c *Controller) runCompile(req compileReq) {
	t0 := time.Now()
	if c.cfg.CompileLatency > 0 {
		time.Sleep(c.cfg.CompileLatency)
	}
	var firstErr error
	ir.Walk(req.clone, func(o ir.Op) {
		if spj, ok := o.(*ir.SPJOp); ok {
			if _, err := optimizer.Reorder(spj, req.stats, c.cfg.Optimizer); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	var run func(in *interp.Interp) error
	if firstErr == nil {
		// Snippet splicing needs a target that can defer control back to the
		// interpreter; bytecode cannot (paper §V-C2), so it always compiles
		// the full subtree.
		snippet := c.cfg.Snippet && c.cfg.Backend != BackendBytecode
		run, firstErr = c.compiler.Compile(req.clone, c.cat, snippet)
	}
	dt := time.Since(t0)
	if firstErr != nil {
		req.u.compiled.Store(&compiledUnit{failed: true, cards: req.cards})
		c.bump(func(s *Stats) {
			s.Failures++
			s.CompileTime += dt
		})
		req.u.compiling.Store(false)
		return
	}
	req.u.compiled.Store(&compiledUnit{run: run, cards: req.cards})
	c.bump(func(s *Stats) {
		s.Compilations++
		s.CompileTime += dt
	})
	req.u.compiling.Store(false)
	if c.cfg.Async {
		c.readyGen.Add(1)
	}
}

// ShouldYield implements interp.Yielder: the interpreter polls it from
// inside subquery loops and abandons the join when an asynchronously
// compiled unit covering the current position is ready and fresh.
func (c *Controller) ShouldYield(op ir.Op, in *interp.Interp) bool {
	if !c.cfg.Async || c.inUnit > 0 {
		return false
	}
	g := c.readyGen.Load()
	if g == c.consumedGen {
		return false // no unconsumed publish
	}
	if op == c.yieldMissOp && g == c.yieldMissGen {
		return false // this subquery already checked this signal
	}
	if !c.hasReadyAncestor(op) {
		c.yieldMissOp, c.yieldMissGen = op, g
		return false
	}
	// Consume the signal; the unit itself stays published for Enter.
	c.consumedGen = g
	return true
}

func (c *Controller) hasReadyAncestor(op ir.Op) bool {
	for p := op; p != nil; p = c.parents[p] {
		if p.Kind() != c.granKind {
			continue
		}
		u := c.units[p]
		if u == nil {
			continue
		}
		cu := u.compiled.Load()
		if cu == nil || cu.failed {
			continue
		}
		if c.policy.Fresh(cu.cards, c.cardsFor(p)) {
			return true
		}
	}
	return false
}

var _ interp.Controller = (*Controller)(nil)

// ParseBackend converts a backend name to its enum, for CLI use.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "off", "interp", "":
		return BackendOff, nil
	case "irgen":
		return BackendIRGen, nil
	case "lambda":
		return BackendLambda, nil
	case "bytecode":
		return BackendBytecode, nil
	case "quotes":
		return BackendQuotes, nil
	}
	return 0, fmt.Errorf("jit: unknown backend %q", s)
}

// ParseGranularity converts a granularity name to its enum, for CLI use.
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "program":
		return GranProgram, nil
	case "dowhile", "loop":
		return GranDoWhile, nil
	case "unionall", "union*":
		return GranUnionAll, nil
	case "union", "unionrule":
		return GranUnionRule, nil
	case "spj", "join", "":
		return GranSPJ, nil
	}
	return 0, fmt.Errorf("jit: unknown granularity %q", s)
}
