package quotes

import (
	"fmt"

	"carac/internal/storage"
)

// env tracks what is in scope while checking a quote: which row levels are
// bound (and the arity of the relation backing each) and which rule
// variables have been assigned.
type env struct {
	cat        *storage.Catalog
	levelArity map[int]int
	vars       map[int32]bool
}

func (e *env) clone() *env {
	c := &env{cat: e.cat, levelArity: make(map[int]int, len(e.levelArity)), vars: make(map[int32]bool, len(e.vars))}
	for k, v := range e.levelArity {
		c.levelArity[k] = v
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	return c
}

// typecheck validates expr in env, enforcing the staging guarantees:
// expressions are well-typed, row/column references are in scope and within
// arity, variables are read only after being bound, emitted tuples match
// the sink's arity, and builtins receive the right argument counts. A quote
// that fails this pass is never lowered — the package's analog of "it is not
// possible to generate code at runtime that is unsound".
func typecheck(expr Expr, e *env) error {
	switch n := expr.(type) {
	case ConstE:
		return nil
	case ColRef:
		arity, ok := e.levelArity[n.Level]
		if !ok {
			return &TypeError{"ColRef", fmt.Sprintf("row level %d not in scope", n.Level)}
		}
		if n.Col < 0 || n.Col >= arity {
			return &TypeError{"ColRef", fmt.Sprintf("column %d out of range for arity %d", n.Col, arity)}
		}
		return nil
	case VarRef:
		if !e.vars[int32(n.Var)] {
			return &TypeError{"VarRef", fmt.Sprintf("variable v%d read before bound", n.Var)}
		}
		return nil

	case EqE:
		return checkAll("EqE", e, TVal, n.L, n.R)
	case NotContainsE:
		pd := e.cat.Pred(n.Rel.Pred)
		if len(n.Elems) != pd.Arity {
			return &TypeError{"NotContainsE", fmt.Sprintf("%d elems for %s/%d", len(n.Elems), pd.Name, pd.Arity)}
		}
		return checkAll("NotContainsE", e, TVal, n.Elems...)
	case BuiltinCheckE:
		if len(n.Args) != n.B.Arity() {
			return &TypeError{"BuiltinCheckE", fmt.Sprintf("builtin %v wants %d args, got %d", n.B, n.B.Arity(), len(n.Args))}
		}
		return checkAll("BuiltinCheckE", e, TVal, n.Args...)

	case SeqE:
		for _, s := range n.Body {
			if s.Type() != TUnit {
				return &TypeError{"SeqE", fmt.Sprintf("statement has type %v, want Unit", s.Type())}
			}
			if err := typecheck(s, e); err != nil {
				return err
			}
		}
		return nil

	case ForEachE:
		if _, dup := e.levelArity[n.Level]; dup {
			return &TypeError{"ForEachE", fmt.Sprintf("row level %d already in scope", n.Level)}
		}
		inner := e.clone()
		inner.levelArity[n.Level] = e.cat.Pred(n.Rel.Pred).Arity
		return typecheck(n.Body, inner)

	case ProbeE:
		pd := e.cat.Pred(n.Rel.Pred)
		if n.Col < 0 || n.Col >= pd.Arity {
			return &TypeError{"ProbeE", fmt.Sprintf("probe column %d out of range for %s/%d", n.Col, pd.Name, pd.Arity)}
		}
		if n.Key.Type() != TVal {
			return &TypeError{"ProbeE", "probe key must be a value"}
		}
		if err := typecheck(n.Key, e); err != nil {
			return err
		}
		if _, dup := e.levelArity[n.Level]; dup {
			return &TypeError{"ProbeE", fmt.Sprintf("row level %d already in scope", n.Level)}
		}
		inner := e.clone()
		inner.levelArity[n.Level] = pd.Arity
		return typecheck(n.Body, inner)

	case ProbeNE:
		pd := e.cat.Pred(n.Rel.Pred)
		if len(n.Cols) != len(n.Keys) || len(n.Cols) < 2 {
			return &TypeError{"ProbeNE", fmt.Sprintf("%d columns vs %d keys", len(n.Cols), len(n.Keys))}
		}
		for _, c := range n.Cols {
			if c < 0 || c >= pd.Arity {
				return &TypeError{"ProbeNE", fmt.Sprintf("probe column %d out of range for %s/%d", c, pd.Name, pd.Arity)}
			}
		}
		for _, k := range n.Keys {
			if k.Type() != TVal {
				return &TypeError{"ProbeNE", "probe keys must be values"}
			}
			if err := typecheck(k, e); err != nil {
				return err
			}
		}
		if _, dup := e.levelArity[n.Level]; dup {
			return &TypeError{"ProbeNE", fmt.Sprintf("row level %d already in scope", n.Level)}
		}
		inner := e.clone()
		inner.levelArity[n.Level] = pd.Arity
		return typecheck(n.Body, inner)

	case IfE:
		if n.Cond.Type() != TBool {
			return &TypeError{"IfE", fmt.Sprintf("condition has type %v", n.Cond.Type())}
		}
		if err := typecheck(n.Cond, e); err != nil {
			return err
		}
		return typecheck(n.Then, e)

	case BindE:
		if n.Val.Type() != TVal {
			return &TypeError{"BindE", "bound expression must be a value"}
		}
		if err := typecheck(n.Val, e); err != nil {
			return err
		}
		inner := e.clone()
		inner.vars[int32(n.Var)] = true
		return typecheck(n.Body, inner)

	case SolveE:
		if len(n.Args) != n.B.Arity() {
			return &TypeError{"SolveE", fmt.Sprintf("builtin %v wants %d args, got %d", n.B, n.B.Arity(), len(n.Args))}
		}
		if n.Out < 0 || n.Out >= len(n.Args) {
			return &TypeError{"SolveE", fmt.Sprintf("output index %d out of range", n.Out)}
		}
		for i, a := range n.Args {
			if i == n.Out {
				continue
			}
			if a.Type() != TVal {
				return &TypeError{"SolveE", "inputs must be values"}
			}
			if err := typecheck(a, e); err != nil {
				return err
			}
		}
		inner := e.clone()
		inner.vars[int32(n.Var)] = true
		return typecheck(n.Body, inner)

	case EmitE:
		pd := e.cat.Pred(n.Sink)
		if len(n.Elems) != pd.Arity {
			return &TypeError{"EmitE", fmt.Sprintf("%d elems for sink %s/%d", len(n.Elems), pd.Name, pd.Arity)}
		}
		return checkAll("EmitE", e, TVal, n.Elems...)

	case SeedE, SwapClearE, StatE, SpliceInterpE, CallPlanE:
		return nil

	case LoopE:
		return typecheck(n.Body, e)
	}
	return &TypeError{fmt.Sprintf("%T", expr), "unknown expression"}
}

func checkAll(node string, e *env, want Type, exprs ...Expr) error {
	for _, x := range exprs {
		if x.Type() != want {
			return &TypeError{node, fmt.Sprintf("operand has type %v, want %v", x.Type(), want)}
		}
		if err := typecheck(x, e); err != nil {
			return err
		}
	}
	return nil
}
