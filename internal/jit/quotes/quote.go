package quotes

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

func checkBuiltin(b ast.Builtin, vals []storage.Value) bool { return eval.Check(b, vals) }

func solveBuiltin(b ast.Builtin, vals []storage.Value, out int) (storage.Value, bool) {
	return eval.Solve(b, vals, out)
}

// Quote constructs the staged expression (stage 1) for an IROp subtree. With
// snippet set, children of the quoted node become SpliceInterpE
// continuations instead of being staged recursively. It also returns the
// register-file sizes the lowered code needs.
func Quote(op ir.Op, cat *storage.Catalog, snippet bool) (q Expr, maxVars, maxLevels int, err error) {
	b := &quoter{cat: cat}
	if snippet {
		q, err = b.quoteSnippet(op)
	} else {
		q, err = b.quoteFull(op)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	return q, b.maxVars, b.maxLevels, nil
}

type quoter struct {
	cat       *storage.Catalog
	maxVars   int
	maxLevels int
}

func (b *quoter) quoteFull(op ir.Op) (Expr, error) {
	switch n := op.(type) {
	case *ir.ProgramOp:
		return b.quoteSeq(n.Body)
	case *ir.ScanOp:
		return SeedE{Preds: n.Preds}, nil
	case *ir.SwapClearOp:
		return SwapClearE{Preds: n.Preds}, nil
	case *ir.DoWhileOp:
		body, err := b.quoteSeq(n.Body)
		if err != nil {
			return nil, err
		}
		return LoopE{Preds: n.Preds, Body: body}, nil
	case *ir.UnionAllOp:
		ops := make([]ir.Op, len(n.Rules))
		for i, r := range n.Rules {
			ops[i] = r
		}
		return b.quoteSeq(ops)
	case *ir.UnionRuleOp:
		ops := make([]ir.Op, len(n.Subqueries))
		for i, s := range n.Subqueries {
			ops[i] = s
		}
		return b.quoteSeq(ops)
	case *ir.SPJOp:
		return b.quoteSPJ(n)
	}
	return nil, fmt.Errorf("quotes: cannot quote %T", op)
}

func (b *quoter) quoteSnippet(op ir.Op) (Expr, error) {
	splice := func(children []ir.Op) Expr {
		body := make([]Expr, len(children))
		for i, c := range children {
			body[i] = SpliceInterpE{Child: c}
		}
		return SeqE{Body: body}
	}
	switch n := op.(type) {
	case *ir.ProgramOp:
		return splice(n.Body), nil
	case *ir.DoWhileOp:
		return LoopE{Preds: n.Preds, Body: splice(n.Body)}, nil
	case *ir.UnionAllOp:
		return splice(n.Children()), nil
	case *ir.UnionRuleOp:
		return splice(n.Children()), nil
	default:
		// Leaves have no children to splice.
		return b.quoteFull(op)
	}
}

func (b *quoter) quoteSeq(ops []ir.Op) (Expr, error) {
	body := make([]Expr, len(ops))
	for i, o := range ops {
		q, err := b.quoteFull(o)
		if err != nil {
			return nil, err
		}
		body[i] = q
	}
	return SeqE{Body: body}, nil
}

// quoteSPJ stages one subquery from its access plan, freezing the current
// atom order into the quote.
func (b *quoter) quoteSPJ(spj *ir.SPJOp) (Expr, error) {
	if spj.Agg.Kind != ast.AggNone {
		return CallPlanE{SPJ: spj}, nil
	}
	plan, err := interp.BuildPlan(spj, b.cat)
	if err != nil {
		return nil, err
	}
	if spj.NumVars > b.maxVars {
		b.maxVars = spj.NumVars
	}

	// Assign a row level to each relational step.
	levels := make([]int, len(plan.Steps))
	nLevels := 0
	for i := range plan.Steps {
		switch plan.Steps[i].Kind {
		case interp.StepScan, interp.StepProbe, interp.StepProbeN:
			levels[i] = nLevels
			nLevels++
		}
	}
	if nLevels > b.maxLevels {
		b.maxLevels = nLevels
	}

	tmplExpr := func(t interp.TmplElem) Expr {
		if t.IsConst {
			return ConstE{V: t.Const}
		}
		return VarRef{Var: t.Var}
	}

	// Build from the inside out.
	elems := make([]Expr, len(plan.Head))
	for i, h := range plan.Head {
		if h.IsConst {
			elems[i] = ConstE{V: h.Const}
		} else {
			elems[i] = VarRef{Var: h.Var}
		}
	}
	var inner Expr = EmitE{Sink: plan.Sink, Elems: elems}

	for i := len(plan.Steps) - 1; i >= 0; i-- {
		st := &plan.Steps[i]
		switch st.Kind {
		case interp.StepScan, interp.StepProbe, interp.StepProbeN:
			level := levels[i]
			// Binds wrap inner, then checks guard the binds.
			for bi := len(st.Binds) - 1; bi >= 0; bi-- {
				bd := st.Binds[bi]
				inner = BindE{Var: bd.Var, Val: ColRef{Level: level, Col: bd.Col}, Body: inner}
			}
			for ci := len(st.Checks) - 1; ci >= 0; ci-- {
				ck := st.Checks[ci]
				var cond Expr
				switch ck.Mode {
				case interp.CheckConst:
					cond = EqE{L: ColRef{Level: level, Col: ck.Col}, R: ConstE{V: ck.Const}}
				case interp.CheckVar:
					cond = EqE{L: ColRef{Level: level, Col: ck.Col}, R: VarRef{Var: ck.Var}}
				case interp.CheckSameRow:
					cond = EqE{L: ColRef{Level: level, Col: ck.Col}, R: ColRef{Level: level, Col: ck.Other}}
				}
				inner = IfE{Cond: cond, Then: inner}
			}
			rel := RelRef{Pred: st.Pred, Src: st.Src}
			switch st.Kind {
			case interp.StepProbe:
				inner = ProbeE{Rel: rel, Col: st.ProbeCol, Key: tmplExpr(st.ProbeKey), Level: level, Body: inner}
			case interp.StepProbeN:
				keys := make([]Expr, len(st.ProbeKeys))
				for ki, k := range st.ProbeKeys {
					keys[ki] = tmplExpr(k)
				}
				inner = ProbeNE{Rel: rel, Cols: st.ProbeCols, Keys: keys, Level: level, Body: inner}
			default:
				inner = ForEachE{Rel: rel, Level: level, Body: inner}
			}

		case interp.StepNegCheck:
			es := make([]Expr, len(st.Tmpl))
			for ti, tm := range st.Tmpl {
				es[ti] = tmplExpr(tm)
			}
			inner = IfE{Cond: NotContainsE{Rel: RelRef{Pred: st.Pred, Src: st.Src}, Elems: es}, Then: inner}

		case interp.StepBuiltin:
			args := make([]Expr, len(st.Args))
			for ai, a := range st.Args {
				if ai == st.Out {
					args[ai] = ConstE{V: 0} // placeholder for the solved slot
					continue
				}
				args[ai] = tmplExpr(a)
			}
			if st.Out < 0 {
				inner = IfE{Cond: BuiltinCheckE{B: st.Builtin, Args: args}, Then: inner}
			} else {
				inner = SolveE{B: st.Builtin, Args: args, Out: st.Out, Var: st.OutVar, Body: inner}
			}
		}
	}
	return SeqE{Body: []Expr{StatE{Kind: StatSPJ}, inner}}, nil
}
