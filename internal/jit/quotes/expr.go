// Package quotes implements Carac's Quotes & Splices compilation target
// (paper §V-C1), substituting Go-native staged programming for Scala's
// Multi-Stage Programming: at runtime the backend *quotes* an IROp subtree
// into a typed expression tree, *type-checks* it (the validation pass that
// makes unsound generated code unrepresentable — the safety property MSP
// provides), and *splices* it by lowering to executable closures. Snippet
// mode splices interpreter continuations into the generated code so control
// flow can return to the interpreter between children, enabling continuous
// re-optimization and deoptimization.
//
// The three explicit stages (quote construction, type checking, lowering)
// make this the most expensive backend to invoke — mirroring the paper's
// trade-off of safety and expressiveness against compilation overhead — and
// the Compiler distinguishes cold starts (fresh instance, bootstrap
// self-check) from warm reuse, as measured in the paper's Fig 5.
package quotes

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
)

// Type is the type of a staged expression.
type Type uint8

const (
	// TUnit is the type of statements.
	TUnit Type = iota
	// TVal is a single storage value.
	TVal
	// TBool is a condition.
	TBool
)

func (t Type) String() string {
	switch t {
	case TUnit:
		return "Unit"
	case TVal:
		return "Val"
	case TBool:
		return "Bool"
	default:
		return "?"
	}
}

// Expr is a staged expression — the quote. Building an Expr delays
// evaluation to a later stage; Compiler.Splice type-checks and lowers it.
type Expr interface {
	Type() Type
}

// RelRef names a relation by predicate and source, resolved at execution.
type RelRef struct {
	Pred storage.PredID
	Src  ir.Source
}

// --- value expressions -------------------------------------------------

// ConstE is a literal value.
type ConstE struct{ V storage.Value }

// ColRef reads column Col of the row bound at nesting Level.
type ColRef struct {
	Level int
	Col   int
}

// VarRef reads a bound rule variable.
type VarRef struct{ Var ast.VarID }

func (ConstE) Type() Type { return TVal }
func (ColRef) Type() Type { return TVal }
func (VarRef) Type() Type { return TVal }

// --- conditions ---------------------------------------------------------

// EqE compares two values.
type EqE struct{ L, R Expr }

// NotContainsE holds when the tuple built from Elems is absent from Rel.
type NotContainsE struct {
	Rel   RelRef
	Elems []Expr
}

// BuiltinCheckE evaluates a fully bound builtin as a condition.
type BuiltinCheckE struct {
	B    ast.Builtin
	Args []Expr
}

func (EqE) Type() Type           { return TBool }
func (NotContainsE) Type() Type  { return TBool }
func (BuiltinCheckE) Type() Type { return TBool }

// --- statements ----------------------------------------------------------

// SeqE executes statements in order.
type SeqE struct{ Body []Expr }

// ForEachE iterates all rows of Rel, binding the row at Level for Body.
type ForEachE struct {
	Rel   RelRef
	Level int
	Body  Expr
}

// ProbeE iterates the rows of Rel whose column Col equals Key.
type ProbeE struct {
	Rel   RelRef
	Col   int
	Key   Expr
	Level int
	Body  Expr
}

// ProbeNE iterates the rows of Rel whose columns Cols equal Keys (composite
// index probe).
type ProbeNE struct {
	Rel   RelRef
	Cols  []int
	Keys  []Expr
	Level int
	Body  Expr
}

// IfE runs Then when Cond holds.
type IfE struct {
	Cond Expr
	Then Expr
}

// BindE assigns a rule variable from a value, in scope for Body.
type BindE struct {
	Var  ast.VarID
	Val  Expr
	Body Expr
}

// SolveE solves builtin B's single unknown (index Out of Args), binding Var
// for Body; no match, no execution.
type SolveE struct {
	B    ast.Builtin
	Args []Expr
	Out  int
	Var  ast.VarID
	Body Expr
}

// EmitE projects Elems into Sink's DeltaNew with set difference against
// Derived inlined.
type EmitE struct {
	Sink  storage.PredID
	Elems []Expr
}

// SeedE copies Derived into DeltaNew for each predicate.
type SeedE struct{ Preds []storage.PredID }

// SwapClearE merges, swaps and clears the delta databases.
type SwapClearE struct{ Preds []storage.PredID }

// LoopE repeats Body until every predicate's DeltaKnown is empty.
type LoopE struct {
	Preds []storage.PredID
	Body  Expr
}

// StatE bumps an interpreter statistic (used for SPJ run accounting).
type StatE struct{ Kind StatKind }

// StatKind selects the counter StatE bumps.
type StatKind uint8

const (
	// StatSPJ counts one subquery execution.
	StatSPJ StatKind = iota
)

// SpliceInterpE is the continuation splice: generated code calls back into
// the interpreter to execute Child (snippet compilation, paper §V-B3).
type SpliceInterpE struct{ Child ir.Op }

// CallPlanE routes one subquery through the generic plan executor
// (aggregation subqueries).
type CallPlanE struct{ SPJ *ir.SPJOp }

func (SeqE) Type() Type          { return TUnit }
func (ForEachE) Type() Type      { return TUnit }
func (ProbeE) Type() Type        { return TUnit }
func (ProbeNE) Type() Type       { return TUnit }
func (IfE) Type() Type           { return TUnit }
func (BindE) Type() Type         { return TUnit }
func (SolveE) Type() Type        { return TUnit }
func (EmitE) Type() Type         { return TUnit }
func (SeedE) Type() Type         { return TUnit }
func (SwapClearE) Type() Type    { return TUnit }
func (LoopE) Type() Type         { return TUnit }
func (StatE) Type() Type         { return TUnit }
func (SpliceInterpE) Type() Type { return TUnit }
func (CallPlanE) Type() Type     { return TUnit }

// TypeError reports a staging violation found by the type checker.
type TypeError struct {
	Node string
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("quotes: type error in %s: %s", e.Node, e.Msg)
}
