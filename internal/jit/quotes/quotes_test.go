package quotes

import (
	"strings"
	"testing"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

func lowerSrc(t *testing.T, src string) (*storage.Catalog, *ir.ProgramOp) {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	return cat, root
}

const tcSrc = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3). edge(3,4).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`

func TestQuoteCompileRun(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	c := NewCompiler()
	unit, err := c.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Warmed() {
		t.Fatal("compiler should be warm after first compile")
	}
	in := interp.New(cat, nil)
	if err := unit(in); err != nil {
		t.Fatal(err)
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 6 {
		t.Fatalf("|tc| = %d, want 6", tc.Derived.Len())
	}
	if in.Stats.SPJRuns == 0 {
		t.Fatal("StatE did not record SPJ runs")
	}
}

func TestSnippetSplicesContinuations(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	// Find the DoWhile and snippet-compile it: children must be executed via
	// the interpreter (counted by a probe controller).
	var dw *ir.DoWhileOp
	ir.Walk(root, func(o ir.Op) {
		if d, ok := o.(*ir.DoWhileOp); ok {
			dw = d
		}
	})
	if dw == nil {
		t.Fatal("no DoWhile in TC program")
	}
	c := NewCompiler()
	unit, err := c.Compile(dw, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	probe := &probeCtrl{}
	in := interp.New(cat, probe)

	// Manually run prologue (seed + first rules + swap) then the snippet.
	pre := interp.New(cat, nil)
	for _, op := range root.Body {
		if op == ir.Op(dw) {
			break
		}
		if err := pre.Run(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := unit(in); err != nil {
		t.Fatal(err)
	}
	if probe.seen == 0 {
		t.Fatal("snippet unit did not splice back into the interpreter")
	}
	tc, _ := cat.PredByName("tc")
	if tc.Derived.Len() != 6 {
		t.Fatalf("|tc| = %d, want 6", tc.Derived.Len())
	}
}

type probeCtrl struct{ seen int }

func (p *probeCtrl) Enter(op ir.Op, in *interp.Interp) func() error {
	p.seen++
	return nil
}

func TestTypeCheckerRejectsUnsoundQuotes(t *testing.T) {
	cat := storage.NewCatalog()
	p := cat.Declare("p", 2)
	q := cat.Declare("q", 1)
	cases := []struct {
		name string
		q    Expr
		want string
	}{
		{"unbound var", EmitE{Sink: q, Elems: []Expr{VarRef{Var: 3}}}, "read before bound"},
		{"arity mismatch", EmitE{Sink: p, Elems: []Expr{ConstE{V: 1}}}, "elems for sink"},
		{"col out of range", ForEachE{Rel: RelRef{Pred: q}, Level: 0,
			Body: BindE{Var: 0, Val: ColRef{Level: 0, Col: 5}, Body: EmitE{Sink: q, Elems: []Expr{VarRef{Var: 0}}}}}, "out of range"},
		{"level not in scope", BindE{Var: 0, Val: ColRef{Level: 2, Col: 0}, Body: SeqE{}}, "not in scope"},
		{"duplicate level", ForEachE{Rel: RelRef{Pred: q}, Level: 0,
			Body: ForEachE{Rel: RelRef{Pred: q}, Level: 0, Body: SeqE{}}}, "already in scope"},
		{"builtin arity", IfE{Cond: BuiltinCheckE{B: ast.BAdd, Args: []Expr{ConstE{V: 1}}}, Then: SeqE{}}, "wants 3 args"},
		{"non-bool cond", IfE{Cond: ConstE{V: 1}, Then: SeqE{}}, "condition has type"},
		{"non-unit stmt", SeqE{Body: []Expr{ConstE{V: 1}}}, "want Unit"},
		{"negcheck arity", IfE{Cond: NotContainsE{Rel: RelRef{Pred: p}, Elems: []Expr{ConstE{V: 1}}}, Then: SeqE{}}, "elems for"},
	}
	c := NewCompiler()
	for _, tc := range cases {
		_, err := c.Splice(tc.q, cat, 8, 4)
		if err == nil {
			t.Errorf("%s: unsound quote accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestColdBootstrapSelfCheck(t *testing.T) {
	c := NewCompiler()
	if c.Warmed() {
		t.Fatal("fresh compiler should be cold")
	}
	cat, root := lowerSrc(t, tcSrc)
	if _, err := c.Compile(root, cat, false); err != nil {
		t.Fatal(err)
	}
	if !c.Warmed() {
		t.Fatal("bootstrap did not warm the compiler")
	}
}

func TestQuoteBuiltinsAndNegation(t *testing.T) {
	src := `
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
num(2). num(3). num(4). num(5). num(6). num(7). num(8). num(9).
composite(c) :- num(a), num(b), c = a * b, num(c).
prime(p) :- num(p), !composite(p).
`
	cat, root := lowerSrc(t, src)
	unit, err := NewCompiler().Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	p, _ := cat.PredByName("prime")
	if p.Derived.Len() != 4 { // 2 3 5 7
		t.Fatalf("primes = %v", p.Derived.Snapshot())
	}
}

func TestSpliceReusesFrames(t *testing.T) {
	cat, root := lowerSrc(t, tcSrc)
	c := NewCompiler()
	unit, err := c.Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(cat, nil)
	for i := 0; i < 3; i++ {
		cat.ResetFacts()
		edge, _ := cat.PredByName("edge")
		edge.AddFact([]storage.Value{1, 2})
		edge.AddFact([]storage.Value{2, 3})
		if err := unit(in); err != nil {
			t.Fatal(err)
		}
		tc, _ := cat.PredByName("tc")
		if tc.Derived.Len() != 3 {
			t.Fatalf("run %d: |tc| = %d, want 3", i, tc.Derived.Len())
		}
	}
}

func TestQuoteAggregationFallsBackToCallPlan(t *testing.T) {
	cat := storage.NewCatalog()
	e := cat.Declare("e", 2)
	outd := cat.Declare("outd", 2)
	prog := ast.NewProgram(cat)
	prog.MustAddRule(&ast.Rule{
		Head:    ast.Rel(outd, ast.V(0), ast.V(2)),
		Body:    []ast.Atom{ast.Rel(e, ast.V(0), ast.V(1))},
		Agg:     ast.AggSpec{Kind: ast.AggCount, HeadPos: 1},
		NumVars: 3,
	})
	cat.Pred(e).AddFact([]storage.Value{1, 2})
	cat.Pred(e).AddFact([]storage.Value{1, 3})
	root, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewCompiler().Compile(root, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := unit(interp.New(cat, nil)); err != nil {
		t.Fatal(err)
	}
	if !cat.Pred(outd).Derived.Contains([]storage.Value{1, 2}) {
		t.Fatalf("outd = %v", cat.Pred(outd).Derived.Snapshot())
	}
}
