package quotes

import (
	"fmt"
	"sync"

	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/storage"
)

// Unit is a compiled executable subtree.
type Unit = func(in *interp.Interp) error

// Compiler quotes, type-checks, and lowers IROp subtrees. A fresh Compiler
// is "cold": its first Splice bootstraps internal state (frame pool plus a
// self-check compilation of a canonical quote). Reusing a Compiler is "warm"
// — the distinction Fig 5 measures. Spliced units are cached in the shared
// store and may be invoked concurrently by engines serving different
// sessions, so the frame pool is a sync.Pool.
type Compiler struct {
	warmed bool
	frames sync.Pool // of *frame
}

// NewCompiler returns a cold compiler instance.
func NewCompiler() *Compiler { return &Compiler{} }

// Name identifies the backend.
func (*Compiler) Name() string { return "quotes" }

// Warmed reports whether the bootstrap self-check has run.
func (c *Compiler) Warmed() bool { return c.warmed }

// frame is the runtime register file of lowered code. buf is transient
// tuple scratch (truncated to zero by each user); vals is composite-probe
// key scratch with stack discipline, because probe keys live past the
// descent into inner levels.
type frame struct {
	in   *interp.Interp
	rows [][]storage.Value
	bind []storage.Value
	buf  []storage.Value
	vals []storage.Value
}

type exec func(f *frame) error

// Compile quotes op (stage 1), type-checks the quote (stage 2), and lowers
// it to an executable (stage 3). When snippet is true, only op's own control
// structure is staged and each child becomes a continuation splice back into
// the interpreter.
func (c *Compiler) Compile(op ir.Op, cat *storage.Catalog, snippet bool) (Unit, error) {
	if !c.warmed {
		if err := c.bootstrap(cat); err != nil {
			return nil, fmt.Errorf("quotes: bootstrap failed: %w", err)
		}
	}
	q, maxVars, maxLevels, err := Quote(op, cat, snippet)
	if err != nil {
		return nil, err
	}
	return c.Splice(q, cat, maxVars, maxLevels)
}

// Splice type-checks and lowers a quote into an executable unit.
func (c *Compiler) Splice(q Expr, cat *storage.Catalog, numVars, numLevels int) (Unit, error) {
	if err := typecheck(q, &env{cat: cat, levelArity: map[int]int{}, vars: map[int32]bool{}}); err != nil {
		return nil, err
	}
	body, err := c.lower(q, cat)
	if err != nil {
		return nil, err
	}
	return func(in *interp.Interp) error {
		f := c.getFrame(numVars, numLevels)
		f.in = in
		err := body(f)
		c.putFrame(f)
		return err
	}, nil
}

func (c *Compiler) getFrame(numVars, numLevels int) *frame {
	if f, ok := c.frames.Get().(*frame); ok {
		if cap(f.bind) < numVars {
			f.bind = make([]storage.Value, numVars)
		}
		f.bind = f.bind[:cap(f.bind)]
		for i := range f.bind {
			f.bind[i] = 0
		}
		if cap(f.rows) < numLevels {
			f.rows = make([][]storage.Value, numLevels)
		}
		f.rows = f.rows[:cap(f.rows)]
		f.vals = f.vals[:0]
		return f
	}
	return &frame{
		rows: make([][]storage.Value, numLevels),
		bind: make([]storage.Value, numVars),
		buf:  make([]storage.Value, 0, 16),
		vals: make([]storage.Value, 0, 8),
	}
}

func (c *Compiler) putFrame(f *frame) {
	f.in = nil
	c.frames.Put(f)
}

// bootstrap runs the compiler over a canonical self-check quote: an
// intentionally ill-typed quote that must be rejected, then a well-typed one
// that must lower and run. This is the cold-start cost a fresh compiler
// instance pays (Fig 5's cold bars).
func (c *Compiler) bootstrap(cat *storage.Catalog) error {
	scratch := storage.NewCatalog()
	p := scratch.Declare("__quotes_selfcheck", 1)
	bad := EmitE{Sink: p, Elems: []Expr{VarRef{Var: 0}}} // v0 unbound: must fail
	if err := typecheck(bad, &env{cat: scratch, levelArity: map[int]int{}, vars: map[int32]bool{}}); err == nil {
		return fmt.Errorf("self-check: unsound quote was accepted")
	}
	good := SeqE{Body: []Expr{
		BindE{Var: 0, Val: ConstE{V: 1}, Body: EmitE{Sink: p, Elems: []Expr{VarRef{Var: 0}}}},
	}}
	unit, err := c.spliceRaw(good, scratch, 1, 0)
	if err != nil {
		return err
	}
	in := interp.New(scratch, nil)
	if err := unit(in); err != nil {
		return err
	}
	if scratch.Pred(p).DeltaNew.Len() != 1 {
		return fmt.Errorf("self-check: canonical quote mis-executed")
	}
	c.warmed = true
	return nil
}

func (c *Compiler) spliceRaw(q Expr, cat *storage.Catalog, numVars, numLevels int) (Unit, error) {
	if err := typecheck(q, &env{cat: cat, levelArity: map[int]int{}, vars: map[int32]bool{}}); err != nil {
		return nil, err
	}
	body, err := c.lower(q, cat)
	if err != nil {
		return nil, err
	}
	return func(in *interp.Interp) error {
		f := c.getFrame(numVars, numLevels)
		f.in = in
		err := body(f)
		c.putFrame(f)
		return err
	}, nil
}

// lower translates a type-checked quote into closures.
func (c *Compiler) lower(expr Expr, cat *storage.Catalog) (exec, error) {
	switch n := expr.(type) {
	case SeqE:
		parts := make([]exec, len(n.Body))
		for i, s := range n.Body {
			x, err := c.lower(s, cat)
			if err != nil {
				return nil, err
			}
			parts[i] = x
		}
		return func(f *frame) error {
			for _, p := range parts {
				if err := p(f); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case ForEachE:
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		pred, src, level := n.Rel.Pred, n.Rel.Src, n.Level
		if level == 0 {
			// Outermost loop of a subquery: poll cancellation per row so
			// runaway cartesian products can be aborted.
			return func(f *frame) error {
				rel := interp.SourceRel(f.in.Cat, pred, src)
				var ferr error
				rel.Each(func(row []storage.Value) bool {
					if f.in.Cancelled() {
						ferr = interp.ErrCancelled
						return false
					}
					f.rows[level] = row
					ferr = body(f)
					return ferr == nil
				})
				return ferr
			}, nil
		}
		return func(f *frame) error {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			var ferr error
			rel.Each(func(row []storage.Value) bool {
				f.rows[level] = row
				ferr = body(f)
				return ferr == nil
			})
			return ferr
		}, nil

	case ProbeE:
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		key, err := c.lowerVal(n.Key)
		if err != nil {
			return nil, err
		}
		pred, src, level, col := n.Rel.Pred, n.Rel.Src, n.Level, n.Col
		return func(f *frame) error {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			k := key(f)
			// EachProbe owns the access-path choice, including the
			// bucket-local indexes of a physically sharded relation.
			var ferr error
			rel.EachProbe(col, k, func(row []storage.Value) bool {
				f.rows[level] = row
				ferr = body(f)
				return ferr == nil
			})
			return ferr
		}, nil

	case ProbeNE:
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		keys := make([]func(f *frame) storage.Value, len(n.Keys))
		for i, k := range n.Keys {
			kv, err := c.lowerVal(k)
			if err != nil {
				return nil, err
			}
			keys[i] = kv
		}
		pred, src, level, cols := n.Rel.Pred, n.Rel.Src, n.Level, n.Cols
		return func(f *frame) error {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			// Stack discipline on the frame's key scratch: the keys live
			// past the descent into body (probe visits run per outer row),
			// so nested ProbeNE levels append after this segment.
			base := len(f.vals)
			for _, k := range keys {
				f.vals = append(f.vals, k(f))
			}
			vals := f.vals[base : base+len(keys)]
			defer func() { f.vals = f.vals[:base] }()
			var ferr error
			rel.EachProbeComposite(cols, vals, func(row []storage.Value) bool {
				f.rows[level] = row
				ferr = body(f)
				return ferr == nil
			})
			return ferr
		}, nil

	case IfE:
		cond, err := c.lowerCond(n.Cond, cat)
		if err != nil {
			return nil, err
		}
		then, err := c.lower(n.Then, cat)
		if err != nil {
			return nil, err
		}
		return func(f *frame) error {
			if cond(f) {
				return then(f)
			}
			return nil
		}, nil

	case BindE:
		val, err := c.lowerVal(n.Val)
		if err != nil {
			return nil, err
		}
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		v := n.Var
		return func(f *frame) error {
			f.bind[v] = val(f)
			return body(f)
		}, nil

	case SolveE:
		args := make([]func(f *frame) storage.Value, len(n.Args))
		for i, a := range n.Args {
			if i == n.Out {
				continue
			}
			av, err := c.lowerVal(a)
			if err != nil {
				return nil, err
			}
			args[i] = av
		}
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		b, out, v := n.B, n.Out, n.Var
		return func(f *frame) error {
			f.buf = f.buf[:0]
			for i, a := range args {
				if i == out {
					f.buf = append(f.buf, 0)
					continue
				}
				f.buf = append(f.buf, a(f))
			}
			val, ok := solveBuiltin(b, f.buf, out)
			if !ok {
				return nil
			}
			f.bind[v] = val
			return body(f)
		}, nil

	case EmitE:
		elems := make([]func(f *frame) storage.Value, len(n.Elems))
		for i, el := range n.Elems {
			ev, err := c.lowerVal(el)
			if err != nil {
				return nil, err
			}
			elems[i] = ev
		}
		sink := n.Sink
		return func(f *frame) error {
			f.buf = f.buf[:0]
			for _, ev := range elems {
				f.buf = append(f.buf, ev(f))
			}
			pd := f.in.Cat.Pred(sink)
			if !pd.Derived.Contains(f.buf) && pd.DeltaNew.Insert(f.buf) {
				f.in.Stats.Derivations++
			}
			return nil
		}, nil

	case SeedE:
		preds := n.Preds
		return func(f *frame) error {
			for _, pid := range preds {
				pd := f.in.Cat.Pred(pid)
				pd.DeltaNew.InsertAll(pd.Derived)
			}
			return nil
		}, nil

	case SwapClearE:
		preds := n.Preds
		return func(f *frame) error {
			for _, pid := range preds {
				f.in.Cat.Pred(pid).SwapClear()
			}
			return nil
		}, nil

	case LoopE:
		body, err := c.lower(n.Body, cat)
		if err != nil {
			return nil, err
		}
		preds := n.Preds
		return func(f *frame) error {
			for {
				if f.in.Cancelled() {
					return interp.ErrCancelled
				}
				if err := body(f); err != nil {
					return err
				}
				f.in.Stats.Iterations++
				if interp.DeltasEmpty(f.in.Cat, preds) {
					return nil
				}
			}
		}, nil

	case StatE:
		return func(f *frame) error {
			f.in.Stats.SPJRuns++
			return nil
		}, nil

	case SpliceInterpE:
		child := n.Child
		return func(f *frame) error {
			return f.in.Exec(child)
		}, nil

	case CallPlanE:
		spj := n.SPJ
		return func(f *frame) error {
			plan, err := interp.BuildPlan(spj, f.in.Cat)
			if err != nil {
				return err
			}
			f.in.Stats.SPJRuns++
			f.in.Stats.Derivations += interp.RunPlan(plan, f.in.Cat)
			return nil
		}, nil
	}
	return nil, fmt.Errorf("quotes: cannot lower %T", expr)
}

func (c *Compiler) lowerVal(expr Expr) (func(f *frame) storage.Value, error) {
	switch n := expr.(type) {
	case ConstE:
		v := n.V
		return func(*frame) storage.Value { return v }, nil
	case ColRef:
		level, col := n.Level, n.Col
		return func(f *frame) storage.Value { return f.rows[level][col] }, nil
	case VarRef:
		v := n.Var
		return func(f *frame) storage.Value { return f.bind[v] }, nil
	}
	return nil, fmt.Errorf("quotes: %T is not a value expression", expr)
}

func (c *Compiler) lowerCond(expr Expr, cat *storage.Catalog) (func(f *frame) bool, error) {
	switch n := expr.(type) {
	case EqE:
		l, err := c.lowerVal(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.lowerVal(n.R)
		if err != nil {
			return nil, err
		}
		return func(f *frame) bool { return l(f) == r(f) }, nil

	case NotContainsE:
		elems := make([]func(f *frame) storage.Value, len(n.Elems))
		for i, el := range n.Elems {
			ev, err := c.lowerVal(el)
			if err != nil {
				return nil, err
			}
			elems[i] = ev
		}
		pred, src := n.Rel.Pred, n.Rel.Src
		return func(f *frame) bool {
			rel := interp.SourceRel(f.in.Cat, pred, src)
			f.buf = f.buf[:0]
			for _, ev := range elems {
				f.buf = append(f.buf, ev(f))
			}
			return !rel.Contains(f.buf)
		}, nil

	case BuiltinCheckE:
		args := make([]func(f *frame) storage.Value, len(n.Args))
		for i, a := range n.Args {
			av, err := c.lowerVal(a)
			if err != nil {
				return nil, err
			}
			args[i] = av
		}
		b := n.B
		return func(f *frame) bool {
			f.buf = f.buf[:0]
			for _, a := range args {
				f.buf = append(f.buf, a(f))
			}
			return checkBuiltin(b, f.buf)
		}, nil
	}
	return nil, fmt.Errorf("quotes: %T is not a condition", expr)
}
