package jit

import (
	"carac/internal/jit/bytecode"
	"carac/internal/plancache"
)

// UnitCodec is the persistence codec for the shared store's unit class.
// Bytecode units serialize their flat program; lambda and quotes units (and
// span-parameterized shard units, which always ride the lambda substrate)
// persist as recompile hints — the entry's existence and freshness vectors
// survive the restart, the artifact is rebuilt on first use. Failure markers
// are process-local and never persisted: the next process should retry the
// compile against its own world.
func UnitCodec() plancache.EntryCodec {
	return plancache.EntryCodec{
		Encode: func(v any) ([]byte, bool) {
			switch cu := v.(type) {
			case *compiledUnit:
				if cu.failed {
					return nil, false
				}
				if cu.prog != nil {
					return bytecode.EncodeProgram(cu.prog), true
				}
				return nil, true
			case *compiledShardUnit:
				if cu.failed {
					return nil, false
				}
				return nil, true
			}
			return nil, false
		},
		Decode: func(payload []byte) (any, error) {
			prog, err := bytecode.DecodeProgram(payload)
			if err != nil {
				return nil, err
			}
			return &compiledUnit{run: prog.Run, prog: prog}, nil
		},
	}
}
