package engines

import (
	"testing"
	"time"

	"carac/internal/analysis"
	"carac/internal/datagen"
)

func TestSouffleModesAgreeOnResults(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	var factCounts []int
	for _, mode := range []SouffleMode{SouffleInterp, SouffleCompile, SouffleAutoTune} {
		b := analysis.InvFuns(analysis.HandOptimized, facts)
		rep, err := RunSouffle(b, mode, time.Millisecond, time.Minute)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.DNF {
			t.Fatalf("%v: unexpected DNF", mode)
		}
		factCounts = append(factCounts, rep.TotalFacts)
	}
	if factCounts[0] != factCounts[1] || factCounts[1] != factCounts[2] {
		t.Fatalf("modes disagree: %v", factCounts)
	}
}

func TestSouffleCompileIncludesLatency(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	b := analysis.InvFuns(analysis.HandOptimized, facts)
	lat := 120 * time.Millisecond
	rep, err := RunSouffle(b, SouffleCompile, lat, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration < lat {
		t.Fatalf("compiled duration %v should include the %v compile latency", rep.Duration, lat)
	}
}

func TestSouffleAutoTuneReportsProfileSeparately(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	b := analysis.InvFuns(analysis.HandOptimized, facts)
	rep, err := RunSouffle(b, SouffleAutoTune, time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileTime <= 0 {
		t.Fatal("profile time not reported")
	}
}

func TestDLXNaiveAgrees(t *testing.T) {
	facts := datagen.CSDAGraph(500, 3)
	ref := analysis.CSDA(facts)
	refRep, err := RunSouffle(ref, SouffleInterp, time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b := analysis.CSDA(facts)
	rep, err := RunDLX(b, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DNF {
		t.Fatal("unexpected DNF")
	}
	if rep.TotalFacts != refRep.TotalFacts {
		t.Fatalf("DLX disagrees: %d vs %d", rep.TotalFacts, refRep.TotalFacts)
	}
}

func TestDNFOnTimeout(t *testing.T) {
	facts := datagen.CSPAGraph(2500, 9)
	b := analysis.CSPA(analysis.Unoptimized, facts)
	rep, err := RunDLX(b, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DNF {
		t.Skip("machine fast enough to finish; DNF path not exercised at this scale")
	}
}

func TestModeString(t *testing.T) {
	if SouffleAutoTune.String() != "Souffle-AutoTuned" || SouffleInterp.String() != "Souffle-Interpreter" {
		t.Fatal("mode names wrong")
	}
}

func TestCaracShardedAndAdaptiveAgree(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	ref, err := RunCaracSharded(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := RunCaracAdaptive(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ref.DNF || ad.DNF {
		t.Fatal("unexpected DNF")
	}
	if ref.TotalFacts != ad.TotalFacts {
		t.Fatalf("adaptive fan-out disagrees: %d vs %d facts", ad.TotalFacts, ref.TotalFacts)
	}
}

func TestCaracWarmAgrees(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	ref, err := RunCaracSharded(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCaracWarm(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ref.DNF || warm.DNF {
		t.Fatal("unexpected DNF")
	}
	if warm.TotalFacts != ref.TotalFacts {
		t.Fatalf("warm rerun disagrees: %d vs %d facts", warm.TotalFacts, ref.TotalFacts)
	}
}

func TestCaracServeAgrees(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	ref, err := RunCaracSharded(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, jit := range []bool{false, true} {
		rep, err := RunCaracServe(analysis.InvFuns(analysis.HandOptimized, facts), ServeConfig{
			Clients:          3,
			QueriesPerClient: 2,
			Workers:          4,
			UseJIT:           jit,
			Repeat:           1,
			Timeout:          time.Minute,
		})
		if err != nil {
			t.Fatalf("jit=%v: %v", jit, err)
		}
		if rep.Queries != 6 {
			t.Fatalf("jit=%v: completed %d queries, want 6", jit, rep.Queries)
		}
		if rep.TotalFacts != ref.TotalFacts {
			t.Fatalf("jit=%v: serving sessions derive %d facts, oracle %d", jit, rep.TotalFacts, ref.TotalFacts)
		}
		if rep.QPS <= 0 {
			t.Fatalf("jit=%v: QPS not computed: %v", jit, rep.QPS)
		}
		if rep.CrossRunHits == 0 {
			t.Fatalf("jit=%v: serving sessions never reused the warmed store", jit)
		}
	}
}

// TestCaracServeMaterialized drives the serving harness with materialized
// epochs and a mixed hot/cold ratio: the answers still match the sequential
// oracle, exactly one fixpoint materializes, and both the repeat queries and
// the fresh-session queries answer from it (memo hits).
func TestCaracServeMaterialized(t *testing.T) {
	facts := datagen.SListLib(1, 5)
	ref, err := RunCaracSharded(analysis.InvFuns(analysis.HandOptimized, facts), 4, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCaracServe(analysis.InvFuns(analysis.HandOptimized, facts), ServeConfig{
		Clients:          3,
		QueriesPerClient: 4,
		Workers:          4,
		Materialize:      true,
		Repeat:           0.5,
		Timeout:          time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 12 {
		t.Fatalf("completed %d queries, want 12", rep.Queries)
	}
	if rep.TotalFacts != ref.TotalFacts {
		t.Fatalf("materialized sessions derive %d facts, oracle %d", rep.TotalFacts, ref.TotalFacts)
	}
	if rep.MaterializedEpochs != 1 {
		t.Fatalf("materialized %d epochs, want 1", rep.MaterializedEpochs)
	}
	if rep.MemoHits != int64(rep.Queries)-1 {
		t.Fatalf("memo hits = %d, want %d (every query but the derivation)", rep.MemoHits, rep.Queries-1)
	}
}

func TestCaracServePaced(t *testing.T) {
	facts := datagen.SListLib(1, 4)
	rep, err := RunCaracServe(analysis.InvFuns(analysis.HandOptimized, facts), ServeConfig{
		Clients:          2,
		QueriesPerClient: 3,
		TargetQPS:        50,
		Workers:          2,
		Repeat:           1,
		Timeout:          time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 6 {
		t.Fatalf("completed %d queries, want 6", rep.Queries)
	}
	// 3 queries at 50 QPS pace: the 2nd and 3rd each wait ~20ms behind the
	// first tick, so the drive cannot finish faster than the pacing allows.
	if rep.Duration < 40*time.Millisecond {
		t.Fatalf("paced drive finished in %v, pacing not applied", rep.Duration)
	}
}
