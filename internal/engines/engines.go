// Package engines implements the baseline Datalog engines of the paper's
// state-of-the-art comparison (Table II), rebuilt over the same storage
// substrate so the comparison isolates *strategy*, not implementation
// effort:
//
//   - Soufflé-like AOT engine in three modes: Interpreter (tree-walking with
//     the program's as-written join orders), Compiler (whole-program
//     compilation to closures plus a simulated external-compiler latency,
//     standing in for Soufflé's dominant C++ compile cost), and Auto-Tuned
//     (a real offline profiling run whose observed cardinalities fix the
//     join orders before compilation — Soufflé's profile-guided optimizer;
//     profiling time is reported separately, as the paper excludes it).
//   - DLX-like commercial baseline: naive (non-semi-naive) interpreted
//     evaluation, the role the anonymized engine plays in Table II (slow,
//     DNF on the largest workload).
//
// See DESIGN.md §2 for why these substitutions preserve Table II's shape.
package engines

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/stats"
)

// SouffleMode selects the baseline AOT engine's mode.
type SouffleMode uint8

const (
	// SouffleInterp is the interpreter mode (no codegen, as-written orders).
	SouffleInterp SouffleMode = iota
	// SouffleCompile compiles the whole program once (includes the simulated
	// external-compiler latency in Duration, like Soufflé's C++ compile).
	SouffleCompile
	// SouffleAutoTune profiles first, then compiles with profile-guided
	// join orders. Profile time is reported separately.
	SouffleAutoTune
)

// String names the mode as in Table II.
func (m SouffleMode) String() string {
	switch m {
	case SouffleCompile:
		return "Souffle-Compiler"
	case SouffleAutoTune:
		return "Souffle-AutoTuned"
	default:
		return "Souffle-Interpreter"
	}
}

// Report is one baseline measurement.
type Report struct {
	// Duration is the end-to-end execution time (including compile cost for
	// the compiled modes, matching the paper's accounting).
	Duration time.Duration
	// ProfileTime is the auto-tune profiling phase, excluded from Duration
	// ("does not include the time spent generating the profiling
	// information", §VI-D).
	ProfileTime time.Duration
	// DNF marks a run that hit its timeout.
	DNF bool
	// TotalFacts is the derived-tuple count (validation that all engines
	// agree).
	TotalFacts int
	// Steals and SkewIters report the skew-aware fan-out's engagement
	// (cursor-path bucket claims and skewed iterations; nonzero only under
	// RunCaracSkew on a skewed workload with Workers >= 2).
	Steals    int64
	SkewIters int64
}

// DefaultCompileLatency approximates the one-time external C++ compile cost
// the Soufflé compiler modes pay; Table II's InvFuns row is dominated by it.
// Scaled down from the paper's ~20 s to suit the reduced dataset scales.
const DefaultCompileLatency = 1500 * time.Millisecond

// RunSouffle executes the built program under the given mode. cxxLatency <= 0
// picks DefaultCompileLatency for the compiled modes.
func RunSouffle(b *analysis.Built, mode SouffleMode, cxxLatency, timeout time.Duration) (*Report, error) {
	if cxxLatency <= 0 {
		cxxLatency = DefaultCompileLatency
	}
	switch mode {
	case SouffleInterp:
		res, err := b.P.Run(core.Options{Indexed: true, PlanCache: true, Timeout: timeout})
		return report(res, 0, err)

	case SouffleCompile:
		res, err := b.P.Run(core.Options{
			Indexed:   true,
			PlanCache: true,
			Timeout:   timeout,
			JIT: jit.Config{
				Backend:            jit.BackendLambda,
				Granularity:        jit.GranProgram,
				FreshnessThreshold: 1e18, // AOT: compile exactly once
				CompileLatency:     cxxLatency,
			},
		})
		return report(res, 0, err)

	case SouffleAutoTune:
		// Offline profiling pass: run to fixpoint, observe cardinalities.
		t0 := time.Now()
		prof, err := b.P.Run(core.Options{Indexed: true, PlanCache: true, Timeout: timeout})
		profileTime := time.Since(t0)
		if err != nil {
			if errors.Is(err, interp.ErrCancelled) {
				return &Report{DNF: true, ProfileTime: profileTime}, nil
			}
			return nil, err
		}
		profile := stats.CaptureProfile(b.P.Catalog(), prof.Interp.Iterations)
		res, err := b.P.Run(core.Options{
			Indexed:   true,
			PlanCache: true,
			Timeout:   timeout,
			AOTStats:  profile,
			JIT: jit.Config{
				Backend:            jit.BackendLambda,
				Granularity:        jit.GranProgram,
				FreshnessThreshold: 1e18,
				CompileLatency:     cxxLatency,
			},
		})
		rep, err := report(res, profileTime, err)
		return rep, err
	}
	return nil, errors.New("engines: unknown Soufflé mode")
}

// RunCaracSharded executes the built program under Carac's sharded parallel
// configuration: the semi-naive fixpoint with every relation hash-partitioned
// into shards buckets, single rules split across workers, and the drift-gated
// plan cache on — the production-scale configuration the baseline comparison
// measures Carac at beyond the paper's single-threaded numbers.
func RunCaracSharded(b *analysis.Built, shards, workers int, timeout time.Duration) (*Report, error) {
	res, err := b.P.Run(core.Options{
		Indexed:        true,
		PlanCache:      true,
		ParallelUnions: true,
		Shards:         shards,
		Workers:        workers,
		Timeout:        timeout,
	})
	return report(res, 0, err)
}

// RunCaracAdaptive is RunCaracSharded with the adaptive fan-out driver: the
// parallelism degree is re-decided every iteration from live delta
// statistics, small-delta tail iterations run on the sequential fast path,
// and the merge barrier folds worker buffers one concurrent task per
// bucket — the configuration that adds the execution-strategy half of
// adaptive re-optimization to the plan half the cache provides.
func RunCaracAdaptive(b *analysis.Built, shards, workers int, timeout time.Duration) (*Report, error) {
	res, err := b.P.Run(core.Options{
		Indexed:        true,
		PlanCache:      true,
		ParallelUnions: true,
		Shards:         shards,
		Workers:        workers,
		AdaptiveFanout: true,
		Timeout:        timeout,
	})
	return report(res, 0, err)
}

// RunCaracAdaptiveJIT is RunCaracAdaptive with a JIT attached: the adaptive
// driver's bucket-span tasks execute span-parameterized compiled units over
// the physically sharded delta store (bucket-local reads, race-free
// per-bucket buffer writes, parallel merge), while small-delta tail
// iterations run compiled sequentially — the fan-out × compilation
// interaction the paper's adaptive claim is about, measured end to end.
func RunCaracAdaptiveJIT(b *analysis.Built, shards, workers int, timeout time.Duration) (*Report, error) {
	res, err := b.P.Run(core.Options{
		Indexed:        true,
		PlanCache:      true,
		ParallelUnions: true,
		Shards:         shards,
		Workers:        workers,
		AdaptiveFanout: true,
		JIT:            jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ},
		Timeout:        timeout,
	})
	return report(res, 0, err)
}

// RunCaracSkew is RunCaracAdaptive with the skew-aware machinery on:
// per-column histograms feed the optimizer's join-size estimates, and
// iterations whose delta concentrates in a few hot buckets switch from
// static contiguous bucket spans to work-stealing per-bucket claims
// (Report.Steals / SkewIters expose the engagement) — the configuration
// Table II's skewed-graph row measures.
func RunCaracSkew(b *analysis.Built, shards, workers int, timeout time.Duration) (*Report, error) {
	res, err := b.P.Run(core.Options{
		Indexed:        true,
		PlanCache:      true,
		ParallelUnions: true,
		Shards:         shards,
		Workers:        workers,
		AdaptiveFanout: true,
		Histograms:     true,
		StealThreshold: interp.DefaultStealThreshold,
		Timeout:        timeout,
	})
	return report(res, 0, err)
}

// RunCaracWarm measures the steady-state cost the Program-lifetime plan
// store exists for: one run populates the store (plans, compiled-unit slots,
// drift state — the long-lived-service shape between incremental fact
// batches), and Duration reports the second run, which starts warm via
// core.Options.SharedPlans instead of paying the cold-start re-planning tax
// per execution.
func RunCaracWarm(b *analysis.Built, shards, workers int, timeout time.Duration) (*Report, error) {
	opts := core.Options{
		Indexed:        true,
		SharedPlans:    true,
		ParallelUnions: true,
		Shards:         shards,
		Workers:        workers,
		Timeout:        timeout,
	}
	if _, err := b.P.Run(opts); err != nil {
		if errors.Is(err, interp.ErrCancelled) {
			return &Report{DNF: true}, nil
		}
		return nil, err
	}
	res, err := b.P.Run(opts)
	return report(res, 0, err)
}

// ColdStartReport measures the process-restart cost the persistent cache
// removes. Cold is the first-query latency of a fresh Program opening an
// empty cache directory: it pays full planning (and compilation, with a JIT)
// and flushes the artifacts on the way out. Warm is the first-query latency
// of a second fresh Program — a simulated restarted process — opening the
// same directory, where every plan and every bytecode unit should come from
// disk.
type ColdStartReport struct {
	Cold, Warm                     time.Duration
	ColdPlanBuilds, WarmPlanBuilds int64
	ColdCompiles, WarmCompiles     int64
	// DiskHits counts the entries the warm Program restored from disk.
	DiskHits   int64
	TotalFacts int
}

// RunCaracColdStart runs the two-Program restart simulation. build must
// return a freshly constructed Built over identical facts on every call —
// each Program stands in for one process lifetime; sharing one Built would
// measure the in-memory store, not the disk. useJIT attaches the bytecode
// backend (the serializable one) at SPJ granularity.
func RunCaracColdStart(build func() *analysis.Built, cacheDir string, useJIT bool, timeout time.Duration) (*ColdStartReport, error) {
	opts := core.Options{
		Indexed:  true,
		CacheDir: cacheDir,
		Timeout:  timeout,
	}
	if useJIT {
		opts.JIT = jit.Config{Backend: jit.BackendBytecode, Granularity: jit.GranSPJ}
	}
	cold := build()
	res1, err := cold.P.Run(opts)
	if err != nil {
		return nil, err
	}
	warm := build()
	res2, err := warm.P.Run(opts)
	if err != nil {
		return nil, err
	}
	ds, _ := warm.P.DiskStats()
	return &ColdStartReport{
		Cold:           res1.Duration,
		Warm:           res2.Duration,
		ColdPlanBuilds: res1.Interp.PlanBuilds,
		WarmPlanBuilds: res2.Interp.PlanBuilds,
		ColdCompiles:   res1.JIT.Compilations,
		WarmCompiles:   res2.JIT.Compilations,
		DiskHits:       ds.Hits,
		TotalFacts:     res2.TotalFacts,
	}, nil
}

// ServeConfig parameterizes the serving load driver: Clients concurrent
// sessions, each issuing QueriesPerClient fixpoint queries, optionally paced
// to TargetQPS per client (<= 0 runs at maximum throughput). UseJIT attaches
// the lambda backend; Workers bounds the server's shared worker pool.
type ServeConfig struct {
	Clients          int
	QueriesPerClient int
	TargetQPS        float64
	Workers          int
	UseJIT           bool
	// Materialize turns on materialized-epoch serving: the fixpoint is
	// computed once per epoch (single-flight across sessions) and every
	// later query answers from the pinned materialization.
	Materialize bool
	// Repeat is the hot-query ratio per client, in [0,1] (resolved in
	// tenths): that fraction of a client's queries repeat on its persistent
	// session; the rest each open a fresh session for the query. 1 is the
	// all-repeat legacy drive, 0 a repeat-free one.
	Repeat  float64
	Timeout time.Duration
}

// ServeReport is one serving-load measurement.
type ServeReport struct {
	// Clients and Queries describe the drive (Queries = completed queries
	// across all sessions).
	Clients int
	Queries int
	// Duration is the wall-clock time of the whole drive (sessions open
	// through last query done); QPS is Queries / Duration.
	Duration time.Duration
	QPS      float64
	// TotalFacts is the per-query derived-tuple count, equal across every
	// session and query by snapshot isolation (validated by the driver).
	TotalFacts int
	// CrossRunHits counts plan- and unit-store hits that crossed an epoch
	// boundary (warm-start reuse by the serving sessions).
	CrossRunHits int64
	// MemoHits and MaterializedEpochs mirror the server's materialization
	// counters (zero when Materialize is off): queries answered without a
	// fixpoint derivation, and epochs whose fixpoint was computed and pinned.
	MemoHits           int64
	MaterializedEpochs int64
}

// RunCaracServe measures concurrent query serving over one Program: a warm
// Run populates the Program-lifetime plan store, the program is put into
// serving mode, and cfg.Clients sessions — each pinned to the published
// epoch, all sharing the store and the server's worker pool — issue
// fixpoint queries concurrently. Every query must derive the same fact
// count (snapshot isolation makes the sessions bit-equal); the report's
// headline is queries per second.
func RunCaracServe(b *analysis.Built, cfg ServeConfig) (*ServeReport, error) {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.QueriesPerClient < 1 {
		cfg.QueriesPerClient = 1
	}
	opts := core.Options{
		Indexed:     true,
		SharedPlans: true,
		Materialize: cfg.Materialize,
		Workers:     cfg.Workers,
		Timeout:     cfg.Timeout,
	}
	hot := int(cfg.Repeat*10 + 0.5)
	if hot < 0 {
		hot = 0
	}
	if hot > 10 {
		hot = 10
	}
	if cfg.UseJIT {
		opts.JIT = jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
	}
	// Warm start: serving is the steady state the plan store exists for.
	if _, err := b.P.Run(opts); err != nil {
		if errors.Is(err, interp.ErrCancelled) {
			return &ServeReport{Clients: cfg.Clients}, nil
		}
		return nil, err
	}
	srv, err := b.P.Serve(opts)
	if err != nil {
		return nil, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		queries  int
		facts    = -1
	)
	interval := time.Duration(0)
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.TargetQPS)
	}
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer sess.Close()
			next := time.Now()
			for q := 0; q < cfg.QueriesPerClient; q++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				// Hot queries repeat on the persistent session; the rest
				// model distinct clients arriving — a fresh session per
				// query, interleaved deterministically by position.
				qs := sess
				if q%10 >= hot {
					fresh, err := srv.Session()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					qs = fresh
				}
				res, err := qs.Query()
				if qs != sess {
					qs.Close()
				}
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				case facts == -1:
					facts = res.TotalFacts
				case facts != res.TotalFacts:
					if firstErr == nil {
						firstErr = fmt.Errorf("engines: serving sessions diverged: %d facts vs %d", res.TotalFacts, facts)
					}
					mu.Unlock()
					return
				}
				queries++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	dt := time.Since(t0)
	if firstErr != nil {
		if errors.Is(firstErr, interp.ErrCancelled) {
			return &ServeReport{Clients: cfg.Clients, Queries: queries, Duration: dt}, nil
		}
		return nil, firstErr
	}
	st := srv.Stats()
	rep := &ServeReport{
		Clients:            cfg.Clients,
		Queries:            queries,
		Duration:           dt,
		TotalFacts:         facts,
		CrossRunHits:       srv.PlanStats().CrossRunHits + srv.UnitStats().CrossRunHits,
		MemoHits:           st.MemoHits,
		MaterializedEpochs: st.MaterializedEpochs,
	}
	if dt > 0 {
		rep.QPS = float64(queries) / dt.Seconds()
	}
	return rep, nil
}

// RunDLX executes the built program the way the anonymized commercial
// baseline does in Table II: naive evaluation, interpreted, as-written
// orders (indexes on).
func RunDLX(b *analysis.Built, timeout time.Duration) (*Report, error) {
	res, err := b.P.Run(core.Options{Indexed: true, Naive: true, PlanCache: true, Timeout: timeout})
	return report(res, 0, err)
}

func report(res *core.Result, profile time.Duration, err error) (*Report, error) {
	if err != nil {
		if errors.Is(err, interp.ErrCancelled) {
			return &Report{DNF: true, ProfileTime: profile}, nil
		}
		return nil, err
	}
	return &Report{
		Duration:    res.Duration,
		ProfileTime: profile,
		TotalFacts:  res.TotalFacts,
		Steals:      res.Interp.Steals,
		SkewIters:   res.Interp.SkewIters,
	}, nil
}
