package optimizer

import (
	"math"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
)

// fakeHist extends fakeStats with per-(pred, src, col) histograms.
type fakeHist struct {
	fakeStats
	h map[[3]int32]storage.Histogram
}

func (f fakeHist) Histogram(pred storage.PredID, src ir.Source, col int) (storage.Histogram, bool) {
	hg, ok := f.h[[3]int32{int32(pred), int32(src), int32(col)}]
	return hg, ok
}

// histJoinCase builds a(x,y) ⋈ b(y,z) where the cardinality sort provably
// picks the worse order: card(a)=50 < card(b)=100, so the pure sort scans a
// first — but b's join column only overlaps a's in one bucket holding 5% of
// b's rows, so scanning b first touches ~5 rows where a-first touches all 50.
func histJoinCase() (*ir.SPJOp, storage.PredID, storage.PredID, fakeHist) {
	cat := storage.NewCatalog()
	a := cat.Declare("a", 2)
	b := cat.Declare("b", 2)
	spj := &ir.SPJOp{
		NumVars: 3,
		Head:    []ir.ProjElem{{Var: 0}, {Var: 2}},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: a, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
			{Kind: ast.AtomRelation, Pred: b, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	fh := fakeHist{fakeStats: fakeStats{}, h: map[[3]int32]storage.Histogram{}}
	set(fh.fakeStats, a, ir.SrcDerived, 50)
	set(fh.fakeStats, b, ir.SrcDerived, 100)
	// a's join column concentrates in bucket 0; b's join column holds 5 rows
	// there and 95 elsewhere. Overlap(a→b) = 1.0, Overlap(b→a) = 0.05.
	var ha, hb storage.Histogram
	ha.Counts[0], ha.Total = 50, 50
	hb.Counts[0], hb.Counts[1], hb.Total = 5, 95, 100
	fh.h[[3]int32{int32(a), int32(ir.SrcDerived), 1}] = ha
	fh.h[[3]int32{int32(b), int32(ir.SrcDerived), 0}] = hb
	return spj, a, b, fh
}

// TestHistogramWeightsChangeOrdering pins the tentpole's optimizer half: on
// the same statistics, the cardinality sort keeps the smaller relation first
// while the histogram-overlap estimate reverses the order — and the recorded
// join-size estimate reflects the overlap discount.
func TestHistogramWeightsChangeOrdering(t *testing.T) {
	spj, a, b, fh := histJoinCase()

	opts := DefaultOptions()
	// weight(a) = 50 * 0.5 = 25, weight(b) = 100 * 0.5 = 50: a stays first.
	if changed, err := Reorder(spj, fh, opts); err != nil || changed {
		t.Fatalf("cardinality sort: changed=%v err=%v, want unchanged", changed, err)
	}
	if spj.Atoms[0].Pred != a {
		t.Fatalf("cardinality sort moved %v first", spj.Atoms[0].Pred)
	}

	opts.UseHistograms = true
	// weight(a) = 50 * 1.0 = 50, weight(b) = 100 * 0.05 = 5: b moves first.
	if wa := Weight(spj, 0, fh, opts); math.Abs(wa-50) > 1e-9 {
		t.Fatalf("weight(a) = %v, want 50", wa)
	}
	if wb := Weight(spj, 1, fh, opts); math.Abs(wb-5) > 1e-9 {
		t.Fatalf("weight(b) = %v, want 5", wb)
	}
	if est := EstimateRows(spj, fh, opts); math.Abs(est-250) > 1e-6 {
		t.Fatalf("EstimateRows = %v, want 250", est)
	}
	changed, err := Reorder(spj, fh, opts)
	if err != nil || !changed {
		t.Fatalf("histogram sort: changed=%v err=%v, want a reorder", changed, err)
	}
	if spj.Atoms[0].Pred != b {
		t.Fatalf("histogram sort kept %v first, want b", spj.Atoms[0].Pred)
	}

	// Missing histograms fall back to the constant factor: no reorder back
	// and forth on partial data.
	bare := fakeHist{fakeStats: fh.fakeStats, h: map[[3]int32]storage.Histogram{}}
	spj2, _, _, _ := histJoinCase()
	if changed, err := Reorder(spj2, bare, opts); err != nil || changed {
		t.Fatalf("missing histograms: changed=%v err=%v, want cardinality behaviour", changed, err)
	}
}
