package optimizer

import (
	"math"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
)

// fakeDistinct extends fakeStats with distinct counts.
type fakeDistinct struct {
	fakeStats
	d map[[3]int32]int
}

func (f fakeDistinct) Distinct(pred storage.PredID, src ir.Source, col int) int {
	if v, ok := f.d[[3]int32{int32(pred), int32(src), int32(col)}]; ok {
		return v
	}
	return -1
}

func TestWeightWithDistinctStats(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.Declare("r", 2)
	s := cat.Declare("s", 2)
	spj := &ir.SPJOp{
		NumVars: 3,
		Head:    []ir.ProjElem{{Var: 0}},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: r, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
			{Kind: ast.AtomRelation, Pred: s, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	fd := fakeDistinct{fakeStats: fakeStats{}, d: map[[3]int32]int{}}
	set(fd.fakeStats, r, ir.SrcDerived, 1000)
	set(fd.fakeStats, s, ir.SrcDerived, 1000)
	// r's join column (1) has 100 distinct values; s's join column (0) only 2.
	fd.d[[3]int32{int32(r), int32(ir.SrcDerived), 1}] = 100
	fd.d[[3]int32{int32(s), int32(ir.SrcDerived), 0}] = 2

	opts := DefaultOptions()
	opts.UseDistinctStats = true
	// weight(r) = 1000/100 = 10; weight(s) = 1000/2 = 500.
	if w := Weight(spj, 0, fd, opts); math.Abs(w-10) > 1e-9 {
		t.Fatalf("weight(r) = %v, want 10", w)
	}
	if w := Weight(spj, 1, fd, opts); math.Abs(w-500) > 1e-9 {
		t.Fatalf("weight(s) = %v, want 500", w)
	}

	// Unobserved columns fall back to the constant factor.
	fd2 := fakeDistinct{fakeStats: fd.fakeStats, d: map[[3]int32]int{}}
	if w := Weight(spj, 0, fd2, opts); math.Abs(w-500) > 1e-9 {
		t.Fatalf("fallback weight = %v, want 500 (1000 * 0.5)", w)
	}

	// Flag off: constant factor even when distinct data exists.
	opts.UseDistinctStats = false
	if w := Weight(spj, 0, fd, opts); math.Abs(w-500) > 1e-9 {
		t.Fatalf("flag-off weight = %v, want 500", w)
	}
}

func TestDistinctStatsChangeOrdering(t *testing.T) {
	// Same cardinalities, but distinct counts make s far more selective, so
	// it should come first under distinct stats and tie (stable, original
	// order) otherwise.
	cat := storage.NewCatalog()
	r := cat.Declare("r", 2)
	s := cat.Declare("s", 2)
	mk := func() *ir.SPJOp {
		return &ir.SPJOp{
			NumVars: 3,
			Head:    []ir.ProjElem{{Var: 0}},
			Atoms: []ir.Atom{
				{Kind: ast.AtomRelation, Pred: r, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
				{Kind: ast.AtomRelation, Pred: s, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
			},
			DeltaIdx: -1,
		}
	}
	fd := fakeDistinct{fakeStats: fakeStats{}, d: map[[3]int32]int{}}
	set(fd.fakeStats, r, ir.SrcDerived, 1000)
	set(fd.fakeStats, s, ir.SrcDerived, 1000)
	fd.d[[3]int32{int32(r), int32(ir.SrcDerived), 1}] = 2
	fd.d[[3]int32{int32(s), int32(ir.SrcDerived), 0}] = 900

	opts := DefaultOptions()
	opts.UseDistinctStats = true
	spj := mk()
	changed, err := Reorder(spj, fd, opts)
	if err != nil {
		t.Fatal(err)
	}
	// weight(r)=500, weight(s)=1000/900≈1.1 -> s first.
	if !changed || spj.Atoms[0].Pred != s {
		t.Fatalf("distinct stats did not promote the selective atom: %+v", spj.Atoms)
	}

	plain := mk()
	changed, err = Reorder(plain, fd.fakeStats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("constant selectivity should tie and keep order: %+v", plain.Atoms)
	}
}
