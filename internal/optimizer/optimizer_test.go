package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/stats"
	"carac/internal/storage"
)

func runIR(cat *storage.Catalog, root ir.Op) error {
	return interp.New(cat, nil).Run(root)
}

// fakeStats maps (pred, src) to a fixed cardinality.
type fakeStats map[[2]int32]int

func (f fakeStats) Card(pred storage.PredID, src ir.Source) int {
	return f[[2]int32{int32(pred), int32(src)}]
}

func set(f fakeStats, pred storage.PredID, src ir.Source, n int) {
	f[[2]int32{int32(pred), int32(src)}] = n
}

// paperVAliasSubquery builds the §IV worked example: the VAlias rule
// VAlias(v1,v2) :- VaFlow(v0,v2), VaFlow(v3,v1), MAlias(v3,v0)
// as the delta subquery where the first VaFlow occurrence reads δ.
// Variables: v1=0 v2=1 v0=2 v3=3.
func paperVAliasSubquery() (*ir.SPJOp, storage.PredID, storage.PredID, *storage.Catalog) {
	cat := storage.NewCatalog()
	vaflow := cat.Declare("VaFlow", 2)
	malias := cat.Declare("MAlias", 2)
	valias := cat.Declare("VAlias", 2)
	spj := &ir.SPJOp{
		Sink:    valias,
		Head:    []ir.ProjElem{{Var: 0}, {Var: 1}},
		NumVars: 4,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: vaflow, Terms: []ast.Term{ast.V(2), ast.V(1)}, Src: ir.SrcDelta},
			{Kind: ast.AtomRelation, Pred: vaflow, Terms: []ast.Term{ast.V(3), ast.V(0)}, Src: ir.SrcDerived},
			{Kind: ast.AtomRelation, Pred: malias, Terms: []ast.Term{ast.V(3), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: 0,
	}
	return spj, vaflow, malias, cat
}

// TestPaperWorkedExampleIteration1 reproduces §IV's first-iteration
// cardinalities (|VaFlowδ|=541096, |VaFlow⋆|=903752, |MAlias⋆|=541096): the
// chosen order must not start with the cartesian pair VaFlowδ × VaFlow⋆.
func TestPaperWorkedExampleIteration1(t *testing.T) {
	spj, vaflow, malias, _ := paperVAliasSubquery()
	stats := fakeStats{}
	set(stats, vaflow, ir.SrcDelta, 541096)
	set(stats, vaflow, ir.SrcDerived, 903752)
	set(stats, malias, ir.SrcDerived, 541096)

	changed, err := Reorder(spj, stats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("expected a reorder")
	}
	// First two atoms must share a variable (no cartesian product up front).
	a0, a1 := spj.Atoms[0], spj.Atoms[1]
	share := false
	for _, t0 := range a0.Terms {
		for _, t1 := range a1.Terms {
			if t0.Kind == ast.TermVar && t1.Kind == ast.TermVar && t0.Var == t1.Var {
				share = true
			}
		}
	}
	if !share {
		t.Fatalf("first two atoms form a cartesian product: %v then %v", a0, a1)
	}
	// The big VaFlow⋆ (903752, one join key) must come last under the sort.
	last := spj.Atoms[2]
	if !(last.Pred == vaflow && last.Src == ir.SrcDerived) {
		t.Fatalf("largest relation not last: %+v", spj.Atoms)
	}
	if spj.DeltaIdx < 0 || spj.Atoms[spj.DeltaIdx].Src != ir.SrcDelta {
		t.Fatalf("DeltaIdx not maintained: %d", spj.DeltaIdx)
	}
}

// TestPaperWorkedExampleIteration7 reproduces the 7th-iteration
// cardinalities (|VaFlowδ|=0, |VaFlow⋆|=1362950, |MAlias⋆|=79514436): the
// empty delta must be joined first so the subquery short-circuits.
func TestPaperWorkedExampleIteration7(t *testing.T) {
	spj, vaflow, malias, _ := paperVAliasSubquery()
	stats := fakeStats{}
	set(stats, vaflow, ir.SrcDelta, 0)
	set(stats, vaflow, ir.SrcDerived, 1362950)
	set(stats, malias, ir.SrcDerived, 79514436)

	if _, err := Reorder(spj, stats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if spj.Atoms[0].Src != ir.SrcDelta {
		t.Fatalf("empty delta should be first, got %+v", spj.Atoms[0])
	}
}

func TestWeightConstraintDiscount(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.Declare("r", 2)
	s := cat.Declare("s", 2)
	spj := &ir.SPJOp{
		NumVars: 3,
		Head:    []ir.ProjElem{{Var: 0}},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: r, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
			{Kind: ast.AtomRelation, Pred: s, Terms: []ast.Term{ast.V(1), ast.C(7)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	stats := fakeStats{}
	set(stats, r, ir.SrcDerived, 100)
	set(stats, s, ir.SrcDerived, 100)
	opts := DefaultOptions()
	// r has one shared var (v1): 100 * 0.5 = 50.
	if w := Weight(spj, 0, stats, opts); math.Abs(w-50) > 1e-9 {
		t.Fatalf("weight(r) = %v, want 50", w)
	}
	// s has one shared var + one const: 100 * 0.25 = 25.
	if w := Weight(spj, 1, stats, opts); math.Abs(w-25) > 1e-9 {
		t.Fatalf("weight(s) = %v, want 25", w)
	}
}

func TestWeightRepeatedVar(t *testing.T) {
	cat := storage.NewCatalog()
	r := cat.Declare("r", 2)
	spj := &ir.SPJOp{
		NumVars: 1,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: r, Terms: []ast.Term{ast.V(0), ast.V(0)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	stats := fakeStats{}
	set(stats, r, ir.SrcDerived, 100)
	// v0 repeated intra-atom: one constraint -> 50.
	if w := Weight(spj, 0, stats, DefaultOptions()); math.Abs(w-50) > 1e-9 {
		t.Fatalf("weight = %v, want 50", w)
	}
}

func TestReorderKeepsGuardsLegal(t *testing.T) {
	// out(y) :- big(x), y = x + 1, small(y)? -> builtin needs x bound; after
	// sorting small first the builtin must still run after big.
	cat := storage.NewCatalog()
	big := cat.Declare("big", 1)
	small := cat.Declare("small", 1)
	out := cat.Declare("out", 1)
	spj := &ir.SPJOp{
		Sink:    out,
		Head:    []ir.ProjElem{{Var: 1}},
		NumVars: 2,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: big, Terms: []ast.Term{ast.V(0)}, Src: ir.SrcDerived},
			{Kind: ast.AtomBuiltin, Builtin: ast.BAdd, Terms: []ast.Term{ast.V(0), ast.C(1), ast.V(1)}},
			{Kind: ast.AtomRelation, Pred: small, Terms: []ast.Term{ast.V(1)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	stats := fakeStats{}
	set(stats, big, ir.SrcDerived, 1000000)
	set(stats, small, ir.SrcDerived, 1)
	if _, err := Reorder(spj, stats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Verify legality: builtin inputs bound when reached.
	bound := map[ast.VarID]bool{}
	for _, a := range spj.Atoms {
		switch a.Kind {
		case ast.AtomRelation:
			for _, tm := range a.Terms {
				if tm.Kind == ast.TermVar {
					bound[tm.Var] = true
				}
			}
		case ast.AtomBuiltin:
			outs, ok := ast.BuiltinBindable(ast.Atom{Kind: a.Kind, Builtin: a.Builtin, Terms: a.Terms},
				func(v ast.VarID) bool { return bound[v] })
			if !ok {
				t.Fatalf("builtin reached with unbound inputs in order %+v", spj.Atoms)
			}
			for _, o := range outs {
				if tm := a.Terms[o]; tm.Kind == ast.TermVar {
					bound[tm.Var] = true
				}
			}
		}
	}
}

func TestReorderNegationStaysAfterBindings(t *testing.T) {
	cat := storage.NewCatalog()
	num := cat.Declare("num", 1)
	comp := cat.Declare("composite", 1)
	prime := cat.Declare("prime", 1)
	spj := &ir.SPJOp{
		Sink:    prime,
		Head:    []ir.ProjElem{{Var: 0}},
		NumVars: 1,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: num, Terms: []ast.Term{ast.V(0)}, Src: ir.SrcDerived},
			{Kind: ast.AtomNegated, Pred: comp, Terms: []ast.Term{ast.V(0)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	stats := fakeStats{}
	set(stats, num, ir.SrcDerived, 10)
	if _, err := Reorder(spj, stats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if spj.Atoms[0].Kind != ast.AtomRelation || spj.Atoms[1].Kind != ast.AtomNegated {
		t.Fatalf("negation moved before its bindings: %+v", spj.Atoms)
	}
}

func TestGreedyAvoidsCartesianProduct(t *testing.T) {
	// Chain r(a,b), s(b,c), t(c,d) with misleading cardinalities: sort puts
	// t first then r (cartesian!), greedy follows the chain.
	cat := storage.NewCatalog()
	r := cat.Declare("r", 2)
	s := cat.Declare("s", 2)
	tt := cat.Declare("t", 2)
	mk := func() *ir.SPJOp {
		return &ir.SPJOp{
			NumVars: 4,
			Head:    []ir.ProjElem{{Var: 0}, {Var: 3}},
			Atoms: []ir.Atom{
				{Kind: ast.AtomRelation, Pred: r, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
				{Kind: ast.AtomRelation, Pred: s, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
				{Kind: ast.AtomRelation, Pred: tt, Terms: []ast.Term{ast.V(2), ast.V(3)}, Src: ir.SrcDerived},
			},
			DeltaIdx: -1,
		}
	}
	stats := fakeStats{}
	set(stats, r, ir.SrcDerived, 10)
	set(stats, s, ir.SrcDerived, 1000)
	set(stats, tt, ir.SrcDerived, 20)

	greedy := mk()
	opts := DefaultOptions()
	opts.Algo = AlgoGreedy
	if _, err := Reorder(greedy, stats, opts); err != nil {
		t.Fatal(err)
	}
	// Greedy: r(10) first, then s (shares v1), then t.
	if greedy.Atoms[0].Pred != r || greedy.Atoms[1].Pred != s || greedy.Atoms[2].Pred != tt {
		t.Fatalf("greedy order = %+v", greedy.Atoms)
	}
}

func TestReorderStableOnTies(t *testing.T) {
	// Equal weights: stable sort must keep the original order (so presorted
	// offline orders survive online re-sorting, §VI-C).
	cat := storage.NewCatalog()
	a := cat.Declare("a", 2)
	b := cat.Declare("b", 2)
	spj := &ir.SPJOp{
		NumVars: 3,
		Head:    []ir.ProjElem{{Var: 0}},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: a, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDerived},
			{Kind: ast.AtomRelation, Pred: b, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: -1,
	}
	stats := fakeStats{}
	set(stats, a, ir.SrcDerived, 100)
	set(stats, b, ir.SrcDerived, 100)
	changed, err := Reorder(spj, stats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("tie should not reorder, got %+v", spj.Atoms)
	}
}

func TestCardVectorAndDrift(t *testing.T) {
	spj, vaflow, malias, _ := paperVAliasSubquery()
	fs := fakeStats{}
	set(fs, vaflow, ir.SrcDelta, 100)
	set(fs, vaflow, ir.SrcDerived, 200)
	set(fs, malias, ir.SrcDerived, 300)
	v1 := stats.CardVector(spj, fs)
	if len(v1) != 3 || v1[0] != 100 || v1[1] != 200 || v1[2] != 300 {
		t.Fatalf("CardVector = %v", v1)
	}
	set(fs, vaflow, ir.SrcDelta, 150)
	v2 := stats.CardVector(spj, fs)
	if d := stats.Drift(v1, v2); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("Drift = %v, want 0.5", d)
	}
	if d := stats.Drift(v1, v1); d != 0 {
		t.Fatalf("self drift = %v", d)
	}
	if d := stats.Drift([]int{1}, []int{1, 2}); !math.IsInf(d, 1) {
		t.Fatalf("shape-change drift = %v, want +Inf", d)
	}
	// Zero-cardinality baseline uses denominator 1.
	if d := stats.Drift([]int{0}, []int{5}); math.Abs(d-5) > 1e-9 {
		t.Fatalf("zero-base drift = %v, want 5", d)
	}
}

func TestReorderEndToEndCorrectness(t *testing.T) {
	// Random graphs: reordering every subquery must never change results.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(8)
		src := ".decl e(x:number, y:number)\n.decl p(x:number, y:number)\n"
		for i := 0; i < n*2; i++ {
			src += "e(" + itoa(rng.Intn(n)) + "," + itoa(rng.Intn(n)) + ").\n"
		}
		src += "p(x,y) :- e(x,y).\np(x,w) :- p(x,y), p(y,z), e(z,w).\n"

		run := func(reorder bool, algo Algo) int {
			cat := storage.NewCatalog()
			res, err := parser.Parse(src, cat)
			if err != nil {
				t.Fatal(err)
			}
			root, err := ir.Lower(res.Program)
			if err != nil {
				t.Fatal(err)
			}
			if reorder {
				st := stats.Catalog{Cat: cat}
				opts := DefaultOptions()
				opts.Algo = algo
				ir.Walk(root, func(o ir.Op) {
					if spj, ok := o.(*ir.SPJOp); ok {
						if _, err := Reorder(spj, st, opts); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
			if err := runIR(cat, root); err != nil {
				t.Fatal(err)
			}
			p, _ := cat.PredByName("p")
			return p.Derived.Len()
		}
		base := run(false, AlgoSort)
		if got := run(true, AlgoSort); got != base {
			t.Fatalf("trial %d: sort reorder changed results %d != %d", trial, got, base)
		}
		if got := run(true, AlgoGreedy); got != base {
			t.Fatalf("trial %d: greedy reorder changed results %d != %d", trial, got, base)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestExplainMentionsWeights(t *testing.T) {
	spj, vaflow, malias, cat := paperVAliasSubquery()
	stats := fakeStats{}
	set(stats, vaflow, ir.SrcDelta, 10)
	set(stats, vaflow, ir.SrcDerived, 20)
	set(stats, malias, ir.SrcDerived, 30)
	s := Explain(spj, cat, stats, DefaultOptions())
	if s == "" {
		t.Fatal("empty explanation")
	}
}
