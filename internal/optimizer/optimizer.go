// Package optimizer implements Carac's runtime join-order optimization
// (paper §IV): given the live cardinalities of the concrete relation
// instances a subquery is about to join, it reorders the subquery's atoms so
// that cheap, highly constrained relations come first, avoiding intermediate
// cardinality blow-ups without any multi-iteration cardinality estimation.
//
// Three inputs feed the decision, exactly as in the paper: input relation
// cardinality (read at optimization time), index selection (indexes exist on
// every join/filter column), and a constant selectivity reduction factor per
// additional constraint, assuming condition independence.
//
// Two algorithms are provided: AlgoSort — the paper's lightweight stable
// sort of atoms by weight (Timsort in Carac; Go's stable sort here, which is
// likewise near-linear on presorted input, the property §VI-C relies on for
// combining offline and online sorting) — and AlgoGreedy, a bound-aware
// greedy variant used by the ablation benchmarks.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Algo selects the reordering algorithm.
type Algo uint8

const (
	// AlgoSort is the paper's algorithm: stable-sort atoms by
	// cardinality × selectivity^constraints.
	AlgoSort Algo = iota
	// AlgoGreedy picks atoms one at a time, discounting constraints that are
	// bound by already-placed atoms and penalizing cartesian products; the
	// ablation comparator.
	AlgoGreedy
)

func (a Algo) String() string {
	if a == AlgoGreedy {
		return "greedy"
	}
	return "sort"
}

// Options tunes the optimizer.
type Options struct {
	// Selectivity is the constant reduction factor applied per additional
	// constraint (paper §IV). Must be in (0, 1].
	Selectivity float64
	// Algo selects sort (default, paper) or greedy ordering.
	Algo Algo
	// CrossPenalty multiplies the effective cost of a greedy candidate that
	// shares no bound variable (cartesian product). Ignored by AlgoSort.
	CrossPenalty float64
	// UseDistinctStats replaces the constant selectivity factor with
	// 1/distinct(column) wherever the stats source can observe distinct
	// counts (index cardinalities) — the "more detailed statistics"
	// alternative §IV mentions. Columns without observations fall back to
	// the constant factor.
	UseDistinctStats bool
	// UseHistograms replaces the constant join-key selectivity with the
	// measured histogram overlap of the two join columns wherever the stats
	// source supplies histograms (stats.HistogramSource): an atom whose
	// join-key values barely land in the partner column's populated buckets
	// is cheap to scan first regardless of its raw cardinality — the skew
	// and domain-disjointness signal a cardinality sort cannot see. Columns
	// without histograms fall back to the distinct/constant factor.
	UseHistograms bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{Selectivity: 0.5, Algo: AlgoSort, CrossPenalty: 1e6}
}

func (o Options) withDefaults() Options {
	if o.Selectivity <= 0 || o.Selectivity > 1 {
		o.Selectivity = 0.5
	}
	if o.CrossPenalty <= 1 {
		o.CrossPenalty = 1e6
	}
	return o
}

// Reorder mutates spj.Atoms into the chosen order, maintains spj.DeltaIdx,
// and reports whether the order changed. Guard atoms (builtins, negation)
// are re-placed at the earliest position where their bindings are available,
// so the resulting order is always legal; if no legal placement exists the
// original order is restored and an error returned (cannot happen for rules
// that passed ast.CheckRule).
func Reorder(spj *ir.SPJOp, st stats.Source, opts Options) (changed bool, err error) {
	opts = opts.withDefaults()
	orig := append([]ir.Atom(nil), spj.Atoms...)
	origDelta := spj.DeltaIdx

	var relIdx, guardIdx []int
	for i, a := range spj.Atoms {
		if a.Kind == ast.AtomRelation {
			relIdx = append(relIdx, i)
		} else {
			guardIdx = append(guardIdx, i)
		}
	}
	if len(relIdx) <= 1 && len(guardIdx) == 0 {
		return false, nil
	}

	var order []int
	switch opts.Algo {
	case AlgoGreedy:
		order = greedyOrder(spj, relIdx, st, opts)
	default:
		order = sortOrder(spj, relIdx, st, opts)
	}

	perm, ok := placeGuards(spj, order, guardIdx)
	if !ok {
		return false, fmt.Errorf("optimizer: no legal guard placement for subquery of rule %d", spj.RuleIdx)
	}

	same := true
	for i, p := range perm {
		if p != i {
			same = false
			break
		}
	}
	if same {
		return false, nil
	}
	newAtoms := make([]ir.Atom, len(perm))
	newDelta := -1
	for ni, oi := range perm {
		newAtoms[ni] = orig[oi]
		if oi == origDelta {
			newDelta = ni
		}
	}
	spj.Atoms = newAtoms
	spj.DeltaIdx = newDelta
	spj.OrderGen++
	return true, nil
}

// Weight computes the sort key of one relational atom: live cardinality
// multiplied by a reduction per additional constraint, where a constraint is
// a constant term, an intra-atom repeated variable, or a variable shared
// with another atom of the body (a join key). The reduction is the constant
// Selectivity factor, or 1/distinct(column) when UseDistinctStats is set and
// the stats source observes the column; for join-key columns with
// UseHistograms set the reduction is the measured histogram overlap against
// the sharing atom's matching column (the estimated fraction of this atom's
// rows that can find any join partner) — the weight then approximates the
// atom's join-output contribution rather than its raw size.
func Weight(spj *ir.SPJOp, atomIdx int, st stats.Source, opts Options) float64 {
	opts = opts.withDefaults()
	a := spj.Atoms[atomIdx]
	card := float64(st.Card(a.Pred, a.Src))
	ds, haveDS := st.(stats.DistinctSource)
	useDS := opts.UseDistinctStats && haveDS
	hs, haveHS := st.(stats.HistogramSource)
	useHS := opts.UseHistograms && haveHS

	factor := func(col int) float64 {
		if useDS {
			if d := ds.Distinct(a.Pred, a.Src, col); d > 0 {
				return 1 / float64(d)
			}
		}
		return opts.Selectivity
	}
	w := card
	seen := map[ast.VarID]bool{}
	for col, t := range a.Terms {
		switch t.Kind {
		case ast.TermConst:
			w *= factor(col)
		case ast.TermVar:
			if seen[t.Var] {
				w *= factor(col) // repeated within the atom
				continue
			}
			seen[t.Var] = true
			pj, pcol, shared := sharedPartner(spj, atomIdx, t.Var)
			if !shared {
				continue
			}
			if useHS && pj >= 0 {
				if sel, ok := overlapSelectivity(hs, a, col, spj.Atoms[pj], pcol); ok {
					w *= sel
					continue
				}
			}
			w *= factor(col)
		}
	}
	return w
}

// sharedPartner reports whether variable v of atom atomIdx occurs in any
// other atom of the body, and identifies the first *relational* sharing atom
// and its matching column (part = -1 when v is shared only with guards) —
// the partner whose column histogram the overlap estimate reads.
func sharedPartner(spj *ir.SPJOp, atomIdx int, v ast.VarID) (part, partCol int, shared bool) {
	part = -1
	for j, b := range spj.Atoms {
		if j == atomIdx {
			continue
		}
		for c, t := range b.Terms {
			if t.Kind == ast.TermVar && t.Var == v {
				shared = true
				if part < 0 && b.Kind == ast.AtomRelation {
					part, partCol = j, c
				}
			}
		}
	}
	return
}

// overlapSelectivity reads both join columns' histograms and returns the
// fraction of atom a's rows whose join-key bucket is populated in the
// partner column — ok=false (fall back to the constant/distinct factor) when
// either histogram is unavailable or a's is empty (an empty input carries no
// distribution signal; its cardinality term already makes it cheapest).
func overlapSelectivity(hs stats.HistogramSource, a ir.Atom, col int, partner ir.Atom, partnerCol int) (float64, bool) {
	own, ok := hs.Histogram(a.Pred, a.Src, col)
	if !ok || own.Total == 0 {
		return 0, false
	}
	other, ok := hs.Histogram(partner.Pred, partner.Src, partnerCol)
	if !ok {
		return 0, false
	}
	return own.Overlap(other), true
}

// EstimateRows estimates the subquery's join-output cardinality as the
// product of its relational atoms' weights — each weight is the atom's
// cardinality discounted per join/filter constraint (under UseHistograms,
// join-key constraints use the measured overlap), so the product is the
// standard independence estimate of the join size. The interpreter records
// it on the access plan (Plan.EstRows) at build time; rebinds copy the plan
// struct, so the estimate travels with shared-plan reuse.
func EstimateRows(spj *ir.SPJOp, st stats.Source, opts Options) float64 {
	est := 1.0
	rel := false
	for i, a := range spj.Atoms {
		if a.Kind != ast.AtomRelation {
			continue
		}
		est *= Weight(spj, i, st, opts)
		rel = true
	}
	if !rel {
		return 0
	}
	return est
}

// sortOrder is the paper's algorithm: a stable sort of the relational atoms
// by weight. Stability preserves the input order among ties, so presorted
// (e.g. offline-optimized) inputs are kept and the sort is near-linear.
func sortOrder(spj *ir.SPJOp, relIdx []int, st stats.Source, opts Options) []int {
	order := append([]int(nil), relIdx...)
	weights := make(map[int]float64, len(relIdx))
	for _, i := range relIdx {
		weights[i] = Weight(spj, i, st, opts)
	}
	sort.SliceStable(order, func(x, y int) bool {
		return weights[order[x]] < weights[order[y]]
	})
	return order
}

// greedyOrder places relational atoms one at a time: each step picks the
// candidate with the lowest effective cost given the variables bound so far
// (constraints on bound variables earn the selectivity discount; candidates
// sharing no bound variable pay the cartesian-product penalty).
func greedyOrder(spj *ir.SPJOp, relIdx []int, st stats.Source, opts Options) []int {
	remaining := append([]int(nil), relIdx...)
	bound := map[ast.VarID]bool{}
	var order []int
	for len(remaining) > 0 {
		bestPos, bestCost := -1, math.Inf(1)
		for pos, i := range remaining {
			a := spj.Atoms[i]
			card := float64(st.Card(a.Pred, a.Src))
			k := 0
			shares := false
			seen := map[ast.VarID]bool{}
			for _, t := range a.Terms {
				switch t.Kind {
				case ast.TermConst:
					k++
				case ast.TermVar:
					if seen[t.Var] {
						k++
						continue
					}
					seen[t.Var] = true
					if bound[t.Var] {
						k++
						shares = true
					}
				}
			}
			cost := card * math.Pow(opts.Selectivity, float64(k))
			if len(order) > 0 && !shares {
				cost *= opts.CrossPenalty
			}
			if cost < bestCost {
				bestCost, bestPos = cost, pos
			}
		}
		i := remaining[bestPos]
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		order = append(order, i)
		for _, t := range spj.Atoms[i].Terms {
			if t.Kind == ast.TermVar {
				bound[t.Var] = true
			}
		}
	}
	return order
}

// placeGuards interleaves guard atoms (builtins, negations) into the
// relational order at the earliest position where they are evaluable,
// returning the full permutation over the original atom indices.
func placeGuards(spj *ir.SPJOp, relOrder []int, guardIdx []int) ([]int, bool) {
	bound := make([]bool, spj.NumVars)
	pending := append([]int(nil), guardIdx...)
	var perm []int

	evaluable := func(i int) bool {
		a := spj.Atoms[i]
		if a.Kind == ast.AtomNegated {
			for _, t := range a.Terms {
				if t.Kind == ast.TermVar && !bound[t.Var] {
					return false
				}
			}
			return true
		}
		_, ok := ast.BuiltinBindable(ast.Atom{Kind: a.Kind, Builtin: a.Builtin, Terms: a.Terms},
			func(v ast.VarID) bool { return bound[v] })
		return ok
	}
	bindGuard := func(i int) {
		a := spj.Atoms[i]
		if a.Kind != ast.AtomBuiltin {
			return
		}
		outs, ok := ast.BuiltinBindable(ast.Atom{Kind: a.Kind, Builtin: a.Builtin, Terms: a.Terms},
			func(v ast.VarID) bool { return bound[v] })
		if !ok {
			return
		}
		for _, o := range outs {
			if t := a.Terms[o]; t.Kind == ast.TermVar {
				bound[t.Var] = true
			}
		}
	}
	flush := func() {
		for progress := true; progress; {
			progress = false
			for pi := 0; pi < len(pending); pi++ {
				if evaluable(pending[pi]) {
					bindGuard(pending[pi])
					perm = append(perm, pending[pi])
					pending = append(pending[:pi], pending[pi+1:]...)
					progress = true
					pi--
				}
			}
		}
	}

	flush() // const-only guards can run before any relation
	for _, ri := range relOrder {
		perm = append(perm, ri)
		for _, t := range spj.Atoms[ri].Terms {
			if t.Kind == ast.TermVar {
				bound[t.Var] = true
			}
		}
		flush()
	}
	if len(pending) > 0 {
		return nil, false
	}
	return perm, true
}

// Explain renders the order decision for diagnostics: atom names with their
// weights under stats.
func Explain(spj *ir.SPJOp, cat *storage.Catalog, st stats.Source, opts Options) string {
	var sb strings.Builder
	for i, a := range spj.Atoms {
		if i > 0 {
			sb.WriteString(", ")
		}
		if a.Kind == ast.AtomRelation {
			fmt.Fprintf(&sb, "%s%v(w=%.1f)", cat.Pred(a.Pred).Name, a.Src, Weight(spj, i, st, opts))
		} else if a.Kind == ast.AtomNegated {
			fmt.Fprintf(&sb, "!%s", cat.Pred(a.Pred).Name)
		} else {
			fmt.Fprintf(&sb, "%v", a.Builtin)
		}
	}
	return sb.String()
}
