// Package bench provides the measurement discipline shared by the benchmark
// harness (cmd/caracbench) and the root testing.B benchmarks: warmup
// iterations followed by repeated timed runs with the median reported —
// mirroring the paper's JMH setup (-wi 3 -i 3) on the Go toolchain — plus
// text rendering for the paper-style tables.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"carac/internal/interp"
)

// Runner produces one measurable execution. Build constructs fresh state
// (programs are rebuilt per measurement so index registration and rule
// formulations do not leak between configurations); Run executes it and
// returns the measured duration.
type Runner struct {
	Name  string
	Build func() (Run, error)
}

// Run is one prepared execution.
type Run func() (time.Duration, error)

// Options tunes Measure.
type Options struct {
	Warmups int           // unmeasured runs (default 1)
	Reps    int           // measured runs, median reported (default 3)
	Timeout time.Duration // 0 = none; timeouts yield DNF
}

// Measurement is the outcome of Measure.
type Measurement struct {
	Name   string
	Median time.Duration
	All    []time.Duration
	DNF    bool
	Err    error
}

// Seconds returns the median in seconds (for table rendering).
func (m Measurement) Seconds() float64 { return m.Median.Seconds() }

// Measure executes the runner under opts.
func Measure(r Runner, opts Options) Measurement {
	if opts.Warmups < 0 {
		opts.Warmups = 0
	}
	if opts.Reps < 1 {
		opts.Reps = 3
	}
	out := Measurement{Name: r.Name}
	total := opts.Warmups + opts.Reps
	for i := 0; i < total; i++ {
		run, err := r.Build()
		if err != nil {
			out.Err = err
			return out
		}
		dt, err := run()
		if err != nil {
			if errors.Is(err, interp.ErrCancelled) {
				out.DNF = true
				return out
			}
			out.Err = err
			return out
		}
		if i >= opts.Warmups {
			out.All = append(out.All, dt)
		}
	}
	sorted := append([]time.Duration(nil), out.All...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out.Median = sorted[len(sorted)/2]
	return out
}

// Speedup returns base/opt, the paper's "speedup over baseline" metric.
func Speedup(base, opt Measurement) float64 {
	if base.DNF || opt.DNF || opt.Median <= 0 {
		return 0
	}
	return float64(base.Median) / float64(opt.Median)
}

// Cell renders a measurement for a table: seconds with 4 significant
// digits, or DNF/ERR.
func Cell(m Measurement) string {
	if m.Err != nil {
		return "ERR"
	}
	if m.DNF {
		return "DNF"
	}
	return FormatSeconds(m.Median)
}

// FormatSeconds renders a duration in seconds with sensible precision.
func FormatSeconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// FormatSpeedup renders a speedup factor the way the paper's figures label
// bars (e.g. "5321x", "6.2x", "0.45x").
func FormatSpeedup(f float64) string {
	switch {
	case f == 0:
		return "-"
	case f >= 100:
		return fmt.Sprintf("%.0fx", f)
	case f >= 10:
		return fmt.Sprintf("%.1fx", f)
	default:
		return fmt.Sprintf("%.2fx", f)
	}
}

// Table renders rows with aligned columns to w.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}
