package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"carac/internal/interp"
)

func constRunner(name string, d time.Duration) Runner {
	return Runner{
		Name:  name,
		Build: func() (Run, error) { return func() (time.Duration, error) { return d, nil }, nil },
	}
}

func TestMeasureMedian(t *testing.T) {
	i := 0
	durations := []time.Duration{5, 1, 3, 100, 2} // warmup takes the first
	r := Runner{Name: "m", Build: func() (Run, error) {
		return func() (time.Duration, error) {
			d := durations[i%len(durations)]
			i++
			return d, nil
		}, nil
	}}
	m := Measure(r, Options{Warmups: 1, Reps: 4})
	if len(m.All) != 4 {
		t.Fatalf("reps = %d", len(m.All))
	}
	if m.Median != 3 {
		t.Fatalf("median = %d, want 3", m.Median)
	}
}

func TestMeasureDNF(t *testing.T) {
	r := Runner{Name: "dnf", Build: func() (Run, error) {
		return func() (time.Duration, error) { return 0, interp.ErrCancelled }, nil
	}}
	m := Measure(r, Options{Reps: 2})
	if !m.DNF || m.Err != nil {
		t.Fatalf("m = %+v", m)
	}
	if Cell(m) != "DNF" {
		t.Fatalf("Cell = %q", Cell(m))
	}
}

func TestMeasureError(t *testing.T) {
	r := Runner{Name: "err", Build: func() (Run, error) {
		return nil, errors.New("boom")
	}}
	m := Measure(r, Options{})
	if m.Err == nil || Cell(m) != "ERR" {
		t.Fatalf("m = %+v", m)
	}
}

func TestSpeedup(t *testing.T) {
	base := Measurement{Median: 100 * time.Millisecond}
	opt := Measurement{Median: 10 * time.Millisecond}
	if s := Speedup(base, opt); s < 9.99 || s > 10.01 {
		t.Fatalf("speedup = %v", s)
	}
	if Speedup(base, Measurement{DNF: true}) != 0 {
		t.Fatal("DNF speedup should be 0")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatSeconds(1234 * time.Millisecond); got != "1.23" {
		t.Fatalf("FormatSeconds = %q", got)
	}
	if got := FormatSeconds(500 * time.Microsecond); got != "0.0005" {
		t.Fatalf("FormatSeconds = %q", got)
	}
	if got := FormatSpeedup(5321.4); got != "5321x" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(0.45); got != "0.45x" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(0); got != "-" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := &Table{Header: []string{"Benchmark", "Time"}}
	tb.Add("Ackermann", "0.21")
	tb.Add("CSPA_20k", "19777.1")
	tb.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Benchmark") || !strings.Contains(lines[3], "19777.1") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestMeasureUsesWarmup(t *testing.T) {
	m := Measure(constRunner("c", time.Millisecond), Options{Warmups: 2, Reps: 3})
	if len(m.All) != 3 {
		t.Fatalf("measured reps = %d, want 3", len(m.All))
	}
}
