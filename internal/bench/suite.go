// Experiment suite: one entry per table/figure of the paper's evaluation
// (§VI), shared by cmd/caracbench and the root testing.B benchmarks. Each
// experiment builds fresh programs per measurement so that rule
// formulations and index registrations never leak between configurations.
package bench

import (
	"fmt"
	"io"
	"time"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/engines"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/jit/bytecode"
	"carac/internal/jit/lambda"
	"carac/internal/jit/quotes"
	"carac/internal/optimizer"
	"carac/internal/workloads"
)

// Scale selects dataset sizes. The paper's full httpd dataset corresponds to
// ScaleFull; smaller scales keep the adversarial ("unoptimized") cells
// finishable on modest machines — the paper itself reports 19777 s for
// unoptimized CSPA_20k.
type Scale int

const (
	// ScaleSmall is for smoke runs and CI.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for the harness.
	ScaleMedium
	// ScaleFull approaches the paper's CSPA_20k setting.
	ScaleFull
)

// ParseScale converts a CLI string.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium", "":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want small|medium|full)", s)
}

// Sizes holds the concrete dataset parameters for a scale.
type Sizes struct {
	CSPAName string
	CSPA     int
	CSDA     int
	SListLib int
	FibN     int
	AckM     int
	AckN     int
	PrimesN  int
	Seed     int64
}

// SizesFor returns the dataset parameters of a scale. The CSPA closure grows
// superlinearly in input edges (hand-optimized n=400 derives ~54k facts;
// unoptimized is 10-30x slower and climbing), so the input counts are far
// below the paper's 20k-tuple httpd sample while still exhibiting the same
// blow-up; EXPERIMENTS.md records the mapping.
func SizesFor(s Scale) Sizes {
	switch s {
	case ScaleSmall:
		return Sizes{CSPAName: "CSPA_150", CSPA: 150, CSDA: 2000, SListLib: 1, FibN: 15, AckM: 2, AckN: 8, PrimesN: 60, Seed: 42}
	case ScaleFull:
		return Sizes{CSPAName: "CSPA_600", CSPA: 600, CSDA: 50000, SListLib: 8, FibN: 25, AckM: 3, AckN: 10, PrimesN: 250, Seed: 42}
	default:
		return Sizes{CSPAName: "CSPA_300", CSPA: 300, CSDA: 10000, SListLib: 3, FibN: 20, AckM: 2, AckN: 10, PrimesN: 120, Seed: 42}
	}
}

// Workload is one benchmark program in the registry.
type Workload struct {
	Name  string
	Micro bool
	// SingleForm marks workloads without an unoptimized formulation (CSDA:
	// only 2-way joins, §VI-B).
	SingleForm bool
	Build      func(form analysis.Formulation) *analysis.Built
}

// Suite carries the configured experiment environment.
type Suite struct {
	Sizes   Sizes
	Opts    Options
	Verbose io.Writer // nil = quiet progress
}

// NewSuite builds a suite for the scale with measurement options.
func NewSuite(scale Scale, opts Options) *Suite {
	return &Suite{Sizes: SizesFor(scale), Opts: opts}
}

func (s *Suite) progress(format string, args ...any) {
	if s.Verbose != nil {
		fmt.Fprintf(s.Verbose, format+"\n", args...)
	}
}

// Macro returns the macrobenchmark registry (Figs 6/8, Tables I/II).
func (s *Suite) Macro() []Workload {
	sz := s.Sizes
	cspaFacts := datagen.CSPAGraph(sz.CSPA, sz.Seed)
	csdaFacts := datagen.CSDAGraph(sz.CSDA, sz.Seed)
	ptsFacts := datagen.SListLib(sz.SListLib, sz.Seed)
	return []Workload{
		{Name: "Andersen", Build: func(f analysis.Formulation) *analysis.Built { return analysis.Andersen(f, ptsFacts) }},
		{Name: "InvFuns", Build: func(f analysis.Formulation) *analysis.Built { return analysis.InvFuns(f, ptsFacts) }},
		{Name: sz.CSPAName, Build: func(f analysis.Formulation) *analysis.Built { return analysis.CSPA(f, cspaFacts) }},
		{Name: "CSDA", SingleForm: true, Build: func(analysis.Formulation) *analysis.Built { return analysis.CSDA(csdaFacts) }},
	}
}

// Micro returns the microbenchmark registry (Figs 7/9/10, Table I).
func (s *Suite) Micro() []Workload {
	sz := s.Sizes
	return []Workload{
		{Name: "Ackermann", Micro: true, Build: func(f analysis.Formulation) *analysis.Built { return workloads.Ackermann(f, sz.AckM, sz.AckN) }},
		{Name: "Fibonacci", Micro: true, Build: func(f analysis.Formulation) *analysis.Built { return workloads.Fibonacci(f, sz.FibN) }},
		{Name: "Primes", Micro: true, Build: func(f analysis.Formulation) *analysis.Built { return workloads.Primes(f, sz.PrimesN) }},
	}
}

// JITConfig is one bar of Figs 6-9.
type JITConfig struct {
	Name string
	Cfg  jit.Config
}

// JITConfigs returns the six JIT bars of Figs 6-9: IRGenerator (pushed fully
// to runtime at σπ⋈ granularity), Lambda blocking, Bytecode async+blocking,
// Quotes async+blocking (codegen targets at Union* granularity).
func JITConfigs() []JITConfig {
	mk := func(b jit.Backend, g jit.Granularity, async bool) jit.Config {
		return jit.Config{Backend: b, Granularity: g, Async: async}
	}
	return []JITConfig{
		{"JIT IRGenerator", mk(jit.BackendIRGen, jit.GranSPJ, false)},
		{"JIT Lambda Blocking", mk(jit.BackendLambda, jit.GranUnionAll, false)},
		{"JIT Bytecode Async", mk(jit.BackendBytecode, jit.GranUnionAll, true)},
		{"JIT Bytecode Blocking", mk(jit.BackendBytecode, jit.GranUnionAll, false)},
		{"JIT Quotes Async", mk(jit.BackendQuotes, jit.GranUnionAll, true)},
		{"JIT Quotes Blocking", mk(jit.BackendQuotes, jit.GranUnionAll, false)},
	}
}

// measureRun wraps a program build into a Runner.
func (s *Suite) runner(name string, build func() *analysis.Built, opts core.Options) Runner {
	if s.Opts.Timeout > 0 {
		opts.Timeout = s.Opts.Timeout
	}
	return Runner{
		Name: name,
		Build: func() (Run, error) {
			b := build()
			return func() (time.Duration, error) {
				res, err := b.P.Run(opts)
				if err != nil {
					return 0, err
				}
				return res.Duration, nil
			}, nil
		},
	}
}

// Table1 reproduces Table I: average execution time (s) of interpreted
// queries, {unindexed, indexed} × {unoptimized, hand-optimized}. CSDA and
// CSPA run indexed only, as in the paper.
func (s *Suite) Table1() *Table {
	t := &Table{Header: []string{"Benchmark", "Unindexed/Unopt", "Unindexed/Opt", "Indexed/Unopt", "Indexed/Opt"}}
	all := append(s.Micro(), s.Macro()...)
	for _, w := range all {
		s.progress("table1: %s", w.Name)
		indexedOnly := w.Name == "CSDA" || w.Name == s.Sizes.CSPAName
		row := []string{w.Name}
		for _, cell := range []struct {
			indexed bool
			form    analysis.Formulation
		}{
			{false, analysis.Unoptimized},
			{false, analysis.HandOptimized},
			{true, analysis.Unoptimized},
			{true, analysis.HandOptimized},
		} {
			if indexedOnly && !cell.indexed {
				row = append(row, "-")
				continue
			}
			form := cell.form
			if w.SingleForm {
				form = analysis.HandOptimized
			}
			m := Measure(s.runner(w.Name, func() *analysis.Built { return w.Build(form) },
				core.Options{Indexed: cell.indexed}), s.Opts)
			row = append(row, Cell(m))
		}
		t.Add(row...)
	}
	return t
}

// speedupFigure runs the Fig 6-9 layout: per workload, the interpreted
// baseline in `baseForm` vs hand-optimized (Fig 6/7 only) and the six JIT
// configs applied to inputs in `inputForm`; speedups are relative to the
// interpreted `baseForm` run, split by indexed/unindexed.
func (s *Suite) speedupFigure(ws []Workload, inputForm analysis.Formulation, withHandOpt bool) *Table {
	header := []string{"Benchmark", "Indexed"}
	if withHandOpt {
		header = append(header, "Hand-Optimized")
	}
	for _, jc := range JITConfigs() {
		header = append(header, jc.Name)
	}
	t := &Table{Header: header}

	for _, w := range ws {
		for _, indexed := range []bool{false, true} {
			// The paper runs CSDA and CSPA indexed-only "due to the large
			// runtime" (§VI-B / Table I).
			if !indexed && (w.Name == "CSDA" || w.Name == s.Sizes.CSPAName) {
				continue
			}
			s.progress("fig: %s indexed=%v", w.Name, indexed)
			baseForm := inputForm
			if w.SingleForm {
				baseForm = analysis.HandOptimized
			}
			base := Measure(s.runner(w.Name, func() *analysis.Built { return w.Build(baseForm) },
				core.Options{Indexed: indexed}), s.Opts)
			row := []string{w.Name, fmt.Sprint(indexed)}
			if withHandOpt {
				hand := Measure(s.runner(w.Name, func() *analysis.Built { return w.Build(analysis.HandOptimized) },
					core.Options{Indexed: indexed}), s.Opts)
				row = append(row, FormatSpeedup(Speedup(base, hand)))
			}
			for _, jc := range JITConfigs() {
				form := baseForm
				m := Measure(s.runner(w.Name+"/"+jc.Name, func() *analysis.Built { return w.Build(form) },
					core.Options{Indexed: indexed, JIT: jc.Cfg}), s.Opts)
				row = append(row, FormatSpeedup(Speedup(base, m)))
			}
			t.Add(row...)
		}
	}
	return t
}

// Fig6 reproduces Figure 6: macrobenchmark speedups over the unoptimized
// interpreted input.
func (s *Suite) Fig6() *Table {
	var ws []Workload
	for _, w := range s.Macro() {
		if w.Name != "CSDA" { // Fig 6 shows Andersen, InvFuns, CSPA
			ws = append(ws, w)
		}
	}
	return s.speedupFigure(ws, analysis.Unoptimized, true)
}

// Fig7 reproduces Figure 7: microbenchmark speedups over unoptimized.
func (s *Suite) Fig7() *Table {
	return s.speedupFigure(s.Micro(), analysis.Unoptimized, true)
}

// Fig8 reproduces Figure 8: macrobenchmarks (incl. CSDA) JIT-optimized
// starting from the hand-optimized inputs, relative to hand-optimized
// interpretation.
func (s *Suite) Fig8() *Table {
	return s.speedupFigure(s.Macro(), analysis.HandOptimized, false)
}

// Fig9 reproduces Figure 9: microbenchmarks vs hand-optimized.
func (s *Suite) Fig9() *Table {
	return s.speedupFigure(s.Micro(), analysis.HandOptimized, false)
}

// Fig10 reproduces Figure 10: ahead-of-time ("macro" staging) vs online
// optimization on the microbenchmarks, speedup over unoptimized
// interpretation. Configurations follow §VI-C.
func (s *Suite) Fig10() *Table {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"JIT-lambda", core.Options{JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}}},
		{"Facts+rules macro (online)", core.Options{AOT: core.AOTFactsAndRules, JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		{"Rules macro (online)", core.Options{AOT: core.AOTRulesOnly, JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		{"Facts+rules macro", core.Options{AOT: core.AOTFactsAndRules}},
		{"Rules macro", core.Options{AOT: core.AOTRulesOnly}},
	}
	header := []string{"Benchmark"}
	for _, c := range configs {
		header = append(header, c.name)
	}
	t := &Table{Header: header}
	for _, w := range s.Micro() {
		s.progress("fig10: %s", w.Name)
		base := Measure(s.runner(w.Name, func() *analysis.Built { return w.Build(analysis.Unoptimized) },
			core.Options{}), s.Opts)
		row := []string{w.Name}
		for _, c := range configs {
			opts := c.opts
			m := Measure(s.runner(w.Name+"/"+c.name, func() *analysis.Built { return w.Build(analysis.Unoptimized) },
				opts), s.Opts)
			row = append(row, FormatSpeedup(Speedup(base, m)))
		}
		t.Add(row...)
	}
	return t
}

// Table2 reproduces Table II: DLX, Soufflé (interpreter/compiler/
// auto-tuned), and Carac JIT on InvFuns, CSDA, CSPA. Carac runs the
// hand-written queries in full mode, synchronously, at σπ⋈ granularity
// (paper §VI-D); the Soufflé compiled modes include the simulated external
// compile latency.
func (s *Suite) Table2(cxxLatency time.Duration) *Table {
	t := &Table{Header: []string{"Benchmark", "DLX", "Souffle-Interp", "Souffle-Compile", "Souffle-AutoTuned", "Carac-JIT"}}
	var table2 []Workload
	for _, w := range s.Macro() {
		if w.Name == "Andersen" {
			continue
		}
		table2 = append(table2, w)
	}
	for _, w := range table2 {
		s.progress("table2: %s", w.Name)
		row := []string{w.Name}
		form := analysis.HandOptimized

		engCell := func(run func(b *analysis.Built) (*engines.Report, error)) string {
			var meas Measurement
			meas = Measure(Runner{Name: w.Name, Build: func() (Run, error) {
				b := w.Build(form)
				return func() (time.Duration, error) {
					rep, err := run(b)
					if err != nil {
						return 0, err
					}
					if rep.DNF {
						return 0, interp.ErrCancelled
					}
					return rep.Duration, nil
				}, nil
			}}, s.Opts)
			return Cell(meas)
		}
		row = append(row, engCell(func(b *analysis.Built) (*engines.Report, error) {
			return engines.RunDLX(b, s.Opts.Timeout)
		}))
		for _, mode := range []engines.SouffleMode{engines.SouffleInterp, engines.SouffleCompile, engines.SouffleAutoTune} {
			mode := mode
			row = append(row, engCell(func(b *analysis.Built) (*engines.Report, error) {
				return engines.RunSouffle(b, mode, cxxLatency, s.Opts.Timeout)
			}))
		}
		m := Measure(s.runner(w.Name+"/carac", func() *analysis.Built { return w.Build(form) },
			core.Options{Indexed: true, JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}}), s.Opts)
		row = append(row, Cell(m))
		t.Add(row...)
	}
	return t
}

// Fig5 reproduces Figure 5: code-generation time per granularity for the
// staged (quotes) target, full vs snippet, warm vs cold, plus the cheaper
// targets for context. Times are compile-only (no execution).
func (s *Suite) Fig5() *Table {
	b := analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(s.Sizes.CSPA/2+100, s.Sizes.Seed))
	root, err := ir.Lower(b.P.AST())
	if err != nil {
		panic(err)
	}
	cat := b.P.Catalog()

	// Representative node per granularity.
	nodes := map[string]ir.Op{}
	ir.Walk(root, func(o ir.Op) {
		switch o.Kind() {
		case ir.KProgram, ir.KDoWhile, ir.KUnionAll, ir.KUnionRule, ir.KSPJ, ir.KScan, ir.KSwapClear:
			key := o.Kind().String()
			if _, seen := nodes[key]; !seen {
				nodes[key] = o
			}
		}
	})
	order := []string{"ProgramOp", "DoWhileOp", "UnionOp*", "UnionOp", "SPJ", "ScanOp", "SwapClearOp"}

	timeCompile := func(f func() error) time.Duration {
		reps := s.Opts.Reps
		if reps < 3 {
			reps = 3
		}
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0
			}
			if dt := time.Since(t0); dt < best {
				best = dt
			}
		}
		return best
	}

	t := &Table{Header: []string{"Granularity", "Quotes cold/full", "Quotes warm/full", "Quotes cold/snip", "Quotes warm/snip", "Bytecode", "Lambda"}}
	warm := quotes.NewCompiler()
	if _, err := warm.Compile(root, cat, false); err != nil {
		panic(err)
	}
	for _, name := range order {
		op, ok := nodes[name]
		if !ok {
			continue
		}
		s.progress("fig5: %s", name)
		row := []string{name}
		for _, variant := range []struct {
			cold    bool
			snippet bool
		}{{true, false}, {false, false}, {true, true}, {false, true}} {
			v := variant
			dt := timeCompile(func() error {
				c := warm
				if v.cold {
					c = quotes.NewCompiler()
				}
				_, err := c.Compile(op, cat, v.snippet)
				return err
			})
			row = append(row, dt.String())
		}
		dtB := timeCompile(func() error {
			_, err := (bytecode.Compiler{}).Compile(op, cat, false)
			return err
		})
		row = append(row, dtB.String())
		dtL := timeCompile(func() error {
			_, err := (lambda.Compiler{}).Compile(op, cat, false)
			return err
		})
		row = append(row, dtL.String())
		t.Add(row...)
	}
	return t
}

// Ablation runs the design-choice sweeps DESIGN.md calls out: sort vs greedy
// ordering, freshness-threshold sweep, and the granularity ladder, all on
// the unoptimized CSPA workload.
func (s *Suite) Ablation() *Table {
	facts := datagen.CSPAGraph(s.Sizes.CSPA, s.Sizes.Seed)
	build := func() *analysis.Built { return analysis.CSPA(analysis.Unoptimized, facts) }
	t := &Table{Header: []string{"Variant", "Time(s)", "Note"}}

	base := Measure(s.runner("interp", build, core.Options{Indexed: true}), s.Opts)
	t.Add("interpreted unoptimized", Cell(base), "baseline")

	sortOpt := Measure(s.runner("sort", build, core.Options{Indexed: true,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}), s.Opts)
	t.Add("irgen + sort ordering", Cell(sortOpt), "paper algorithm")

	greedy := Measure(s.runner("greedy", build, core.Options{Indexed: true,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ,
			Optimizer: optimizer.Options{Algo: optimizer.AlgoGreedy, Selectivity: 0.5}}}), s.Opts)
	t.Add("irgen + greedy ordering", Cell(greedy), "bound-aware ablation")

	for _, th := range []float64{0.01, 0.5, 4} {
		th := th
		m := Measure(s.runner(fmt.Sprintf("fresh-%v", th), build, core.Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranUnionAll, FreshnessThreshold: th}}), s.Opts)
		t.Add(fmt.Sprintf("lambda freshness=%v", th), Cell(m), "recompile gate")
	}

	for _, g := range []jit.Granularity{jit.GranProgram, jit.GranDoWhile, jit.GranUnionAll, jit.GranUnionRule, jit.GranSPJ} {
		g := g
		m := Measure(s.runner("gran", build, core.Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendLambda, Granularity: g}}), s.Opts)
		t.Add(fmt.Sprintf("lambda granularity=%v", g), Cell(m), "ladder")
	}

	distinct := Measure(s.runner("distinct", build, core.Options{Indexed: true,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ,
			Optimizer: optimizer.Options{UseDistinctStats: true, Selectivity: 0.5}}}), s.Opts)
	t.Add("irgen + distinct-count stats", Cell(distinct), "vs constant selectivity")

	composite := Measure(s.runner("composite", build, core.Options{Indexed: true, CompositeIndexes: true,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}), s.Opts)
	t.Add("irgen + composite indexes", Cell(composite), "auto-index selection")

	pull := Measure(s.runner("pull", build, core.Options{Indexed: true, Executor: interp.ExecPull,
		JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}), s.Opts)
	t.Add("irgen + pull executor", Cell(pull), "iterator vs push engine")

	par := Measure(s.runner("parallel", build, core.Options{Indexed: true, ParallelUnions: true}), s.Opts)
	t.Add("interp + parallel unions", Cell(par), "Union* fan-out")
	return t
}
