package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallSuite() *Suite {
	return NewSuite(ScaleSmall, Options{Warmups: 0, Reps: 1, Timeout: 60 * time.Second})
}

func render(t *testing.T, tb *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tb.Write(&buf)
	return buf.String()
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"small": ScaleSmall, "medium": ScaleMedium, "full": ScaleFull, "": ScaleMedium} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("cosmic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSizesMonotone(t *testing.T) {
	s, m, f := SizesFor(ScaleSmall), SizesFor(ScaleMedium), SizesFor(ScaleFull)
	if !(s.CSPA < m.CSPA && m.CSPA < f.CSPA) {
		t.Fatalf("CSPA sizes not monotone: %d %d %d", s.CSPA, m.CSPA, f.CSPA)
	}
	if !(s.CSDA < m.CSDA && m.CSDA < f.CSDA) {
		t.Fatal("CSDA sizes not monotone")
	}
}

func TestWorkloadRegistries(t *testing.T) {
	s := smallSuite()
	macro := s.Macro()
	if len(macro) != 4 {
		t.Fatalf("macro workloads = %d, want 4", len(macro))
	}
	micro := s.Micro()
	if len(micro) != 3 {
		t.Fatalf("micro workloads = %d, want 3", len(micro))
	}
	for _, w := range append(macro, micro...) {
		b := w.Build(0)
		if b == nil || b.P == nil || b.Output == nil {
			t.Fatalf("workload %s did not build", w.Name)
		}
	}
}

func TestJITConfigsMatchPaperLegend(t *testing.T) {
	names := []string{}
	for _, jc := range JITConfigs() {
		names = append(names, jc.Name)
	}
	want := []string{"JIT IRGenerator", "JIT Lambda Blocking", "JIT Bytecode Async",
		"JIT Bytecode Blocking", "JIT Quotes Async", "JIT Quotes Blocking"}
	if strings.Join(names, "|") != strings.Join(want, "|") {
		t.Fatalf("configs = %v", names)
	}
}

func TestFig5Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("measures compilation")
	}
	out := render(t, smallSuite().Fig5())
	for _, gran := range []string{"ProgramOp", "DoWhileOp", "UnionOp*", "UnionOp", "SPJ"} {
		if !strings.Contains(out, gran) {
			t.Fatalf("Fig5 missing granularity %s:\n%s", gran, out)
		}
	}
}

func TestFig10Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("measures execution")
	}
	out := render(t, smallSuite().Fig10())
	for _, b := range []string{"Ackermann", "Fibonacci", "Primes", "JIT-lambda"} {
		if !strings.Contains(out, b) {
			t.Fatalf("Fig10 missing %s:\n%s", b, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("measures execution")
	}
	out := render(t, smallSuite().Table2(time.Millisecond))
	for _, col := range []string{"DLX", "Souffle-Interp", "Souffle-Compile", "Souffle-AutoTuned", "Carac-JIT", "InvFuns", "CSDA"} {
		if !strings.Contains(out, col) {
			t.Fatalf("Table2 missing %s:\n%s", col, out)
		}
	}
	if strings.Contains(out, "ERR") {
		t.Fatalf("Table2 contains errors:\n%s", out)
	}
}
