package core

import (
	"fmt"
	"testing"

	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/optimizer"
	"carac/internal/storage"
)

// buildKitchenSink exercises every language feature at once: symbols,
// recursion through two mutually dependent relations, stratified negation,
// arithmetic builtins, and aggregation on top.
func buildKitchenSink(t testing.TB) *Program {
	t.Helper()
	p := NewProgram()
	flight := p.Relation("flight", 3) // from, to, cost
	reach := p.Relation("reach", 3)   // from, to, totalcost
	city := p.Relation("city", 1)
	unreachable := p.Relation("unreachable", 2)
	reachCount := p.Relation("reachCount", 2)
	cheapest := p.Relation("cheapest", 2)

	a, b, c := NewVar("a"), NewVar("b"), NewVar("c")
	k1, k2, k3 := NewVar("k1"), NewVar("k2"), NewVar("k3")
	n := NewVar("n")

	p.MustRule(reach.A(a, b, k1), flight.A(a, b, k1))
	// reach(a,c,k3) :- reach(a,b,k1), flight(b,c,k2), k3 = k1+k2, k3 <= 500.
	p.MustRule(reach.A(a, c, k3),
		reach.A(a, b, k1), flight.A(b, c, k2), Add(k1, k2, k3), Le(k3, 500))
	// unreachable(a,b) :- city(a), city(b), a != b, !reach(a,b,_): needs a
	// projection helper since negation is over full tuples.
	connected := p.Relation("connected", 2)
	p.MustRule(connected.A(a, b), reach.A(a, b, k1))
	p.MustRule(unreachable.A(a, b), city.A(a), city.A(b), Ne(a, b), Not(connected.A(a, b)))
	// Aggregations over the closure.
	p.MustAggRule(reachCount.A(a, n), 1, Count, nil, connected.A(a, b))
	p.MustAggRule(cheapest.A(a, n), 1, Min, k1, reach.A(a, b, k1))

	cities := []string{"GVA", "ZRH", "BSL", "LUG", "BRN"}
	for _, cty := range cities {
		city.MustFact(cty)
	}
	flights := []struct {
		f, t string
		c    int
	}{
		{"GVA", "ZRH", 100}, {"ZRH", "BSL", 50}, {"BSL", "GVA", 80},
		{"ZRH", "LUG", 120}, {"LUG", "ZRH", 120}, {"GVA", "BSL", 200},
	}
	for _, fl := range flights {
		flight.MustFact(fl.f, fl.t, fl.c)
	}
	// BRN has no flights: unreachable from everywhere.
	return p
}

func snapshotAll(p *Program) map[string][][]storage.Value {
	out := map[string][][]storage.Value{}
	for _, pd := range p.Catalog().Preds() {
		out[pd.Name] = pd.Derived.Snapshot()
	}
	return out
}

func sameResults(t *testing.T, name string, want map[string][][]storage.Value, p *Program) {
	t.Helper()
	for _, pd := range p.Catalog().Preds() {
		w := want[pd.Name]
		if pd.Derived.Len() != len(w) {
			t.Fatalf("%s: pred %s has %d tuples, want %d", name, pd.Name, pd.Derived.Len(), len(w))
		}
		for _, tu := range w {
			if !pd.Derived.Contains(tu) {
				t.Fatalf("%s: pred %s missing tuple %v", name, pd.Name, tu)
			}
		}
	}
}

// TestKitchenSinkAllConfigurations is the broadest differential test: every
// execution configuration must produce the same fixpoint on a program using
// symbols, recursion, builtins, stratified negation, and aggregation.
func TestKitchenSinkAllConfigurations(t *testing.T) {
	ref := buildKitchenSink(t)
	if _, err := ref.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	want := snapshotAll(ref)

	// Sanity on the reference itself.
	unreach := ref.Relation("unreachable", 2)
	if !unreach.Contains("GVA", "BRN") || unreach.Contains("GVA", "ZRH") {
		t.Fatalf("reference results wrong: %v", unreach)
	}
	cheapest := ref.Relation("cheapest", 2)
	if !cheapest.Contains("GVA", 100) {
		t.Fatal("cheapest(GVA) != 100")
	}

	type cfg struct {
		name string
		opts Options
	}
	var cfgs []cfg
	cfgs = append(cfgs,
		cfg{"naive", Options{Naive: true}},
		cfg{"indexed", Options{Indexed: true}},
		cfg{"composite", Options{Indexed: true, CompositeIndexes: true}},
		cfg{"pull", Options{Indexed: true, Executor: interp.ExecPull}},
		cfg{"parallel", Options{Indexed: true, ParallelUnions: true}},
		cfg{"parallel-pull", Options{Indexed: true, ParallelUnions: true, Executor: interp.ExecPull}},
		cfg{"parallel-2workers", Options{Indexed: true, ParallelUnions: true, Workers: 2}},
		cfg{"plancache", Options{Indexed: true, PlanCache: true}},
		cfg{"plancache-adaptive", Options{Indexed: true, AdaptivePlans: true}},
		cfg{"plancache-parallel", Options{Indexed: true, PlanCache: true, ParallelUnions: true}},
		cfg{"plancache-parallel-adaptive", Options{Indexed: true, AdaptivePlans: true, ParallelUnions: true}},
		cfg{"plancache-jit-irgen", Options{Indexed: true, PlanCache: true,
			JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ}}},
		cfg{"aot-rules", Options{Indexed: true, AOT: AOTRulesOnly}},
		cfg{"aot-facts", Options{Indexed: true, AOT: AOTFactsAndRules}},
		cfg{"aliases", Options{Indexed: true, EliminateAliases: true}},
	)
	for _, be := range []jit.Backend{jit.BackendIRGen, jit.BackendLambda, jit.BackendBytecode, jit.BackendQuotes} {
		for _, g := range []jit.Granularity{jit.GranDoWhile, jit.GranUnionAll, jit.GranSPJ} {
			for _, async := range []bool{false, true} {
				cfgs = append(cfgs, cfg{
					fmt.Sprintf("jit-%v-%v-async%v", be, g, async),
					Options{Indexed: true, JIT: jit.Config{Backend: be, Granularity: g, Async: async}},
				})
			}
		}
	}
	cfgs = append(cfgs,
		cfg{"jit-quotes-snippet", Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendQuotes, Granularity: jit.GranUnionAll, Snippet: true}}},
		cfg{"jit-lambda-snippet", Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranDoWhile, Snippet: true}}},
		cfg{"jit-greedy", Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ,
				Optimizer: optimizer.Options{Algo: optimizer.AlgoGreedy, Selectivity: 0.5}}}},
		cfg{"jit-distinct", Options{Indexed: true,
			JIT: jit.Config{Backend: jit.BackendIRGen, Granularity: jit.GranSPJ,
				Optimizer: optimizer.Options{UseDistinctStats: true, Selectivity: 0.5}}}},
	)

	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := buildKitchenSink(t)
			if _, err := p.Run(c.opts); err != nil {
				t.Fatal(err)
			}
			sameResults(t, c.name, want, p)
		})
	}
}

// TestIncrementalEqualsFromScratch: adding facts between runs converges to
// the same fixpoint as loading everything up front (monotonicity).
func TestIncrementalEqualsFromScratch(t *testing.T) {
	scratch := buildKitchenSink(t)
	flight := scratch.Relation("flight", 3)
	flight.MustFact("BRN", "ZRH", 90)
	if _, err := scratch.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	want := snapshotAll(scratch)

	incr := buildKitchenSink(t)
	if _, err := incr.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	incr.Relation("flight", 3).MustFact("BRN", "ZRH", 90)
	if _, err := incr.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "incremental", want, incr)
}
