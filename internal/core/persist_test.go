// Persistent-cache integration tests: the cold Run → flush → fresh Program
// + load → warm Run round trip, across the differential matrix's warm-rerun
// mode, plus the corruption and LRU-eviction contracts at the engine level.
// Lives in package core_test to drive the engine through the real workload
// builders, and reuses the differential harness's exec modes and snapshot
// comparators.
package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/workloads"
)

var persistBuilds = []struct {
	name  string
	build func() *analysis.Built
}{
	{"TransitiveClosure", func() *analysis.Built { return workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42) }},
	{"CSPA", func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(80, 42)) }},
}

// TestPersistColdWarmRoundTrip is the acceptance pin: a disk-warm restart
// builds 0 plans — and, on the bytecode backend, recompiles 0 units — on TC
// and CSPA, with byte-equal result sets, in every execution mode of the
// differential matrix. Each cell simulates a process restart with two fresh
// Programs over identical facts sharing one cache directory.
func TestPersistColdWarmRoundTrip(t *testing.T) {
	for _, w := range persistBuilds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			for _, em := range execModes {
				for _, backend := range []jit.Backend{jit.BackendOff, jit.BackendBytecode} {
					opts := core.Options{Indexed: true}
					em.set(&opts)
					if backend != jit.BackendOff {
						opts.JIT = jit.Config{Backend: backend, Granularity: jit.GranSPJ}
					}
					config := fmt.Sprintf("%s/jit=%v", em.name, backend)
					opts.CacheDir = t.TempDir()

					cold := w.build()
					res1, err := cold.P.Run(opts)
					if err != nil {
						t.Fatalf("%s cold: %v", config, err)
					}
					want := snapshotAll(cold.P)
					if res1.Interp.PlanBuilds == 0 && res1.JIT.Compilations == 0 {
						t.Fatalf("%s: cold run built nothing — nothing to persist (%+v)", config, res1.Interp)
					}

					warm := w.build()
					res2, err := warm.P.Run(opts)
					if err != nil {
						t.Fatalf("%s warm: %v", config, err)
					}
					if !reflect.DeepEqual(want, snapshotAll(warm.P)) {
						diffSnapshots(t, config, want, snapshotAll(warm.P))
						t.Fatalf("%s: disk-warm result diverged", config)
					}
					if res2.Interp.PlanBuilds != 0 {
						t.Errorf("%s: disk-warm restart built %d plans, want 0", config, res2.Interp.PlanBuilds)
					}
					// Sequential/parallel bytecode units come back as real
					// artifacts. Sharded modes additionally compile
					// span-parameterized task units, which ride the lambda
					// substrate and persist as recompile hints — those may
					// recompile; sequential cells must not.
					if backend == jit.BackendBytecode && opts.Shards == 0 && res2.JIT.Compilations != 0 {
						t.Errorf("%s: disk-warm restart recompiled %d bytecode units, want 0", config, res2.JIT.Compilations)
					}
					ds, ok := warm.P.DiskStats()
					if !ok || ds.Hits == 0 {
						t.Errorf("%s: warm Program loaded nothing from disk (%+v, ok=%v)", config, ds, ok)
					}
					if ds.Invalidations != 0 {
						t.Errorf("%s: clean directory reported invalidations: %+v", config, ds)
					}
					// Under the bytecode JIT at SPJ granularity, compiled
					// units intercept every subquery, so the cross-run signal
					// lives on the unit view; interpreted cells show it on
					// the plan view.
					if backend == jit.BackendOff && res2.Plans.CrossRunHits == 0 {
						t.Errorf("%s: disk-loaded plans served no cross-run hits: %+v", config, res2.Plans)
					}
					if backend == jit.BackendBytecode && res2.Units.CrossRunHits == 0 {
						t.Errorf("%s: disk-loaded units served no cross-run hits: %+v", config, res2.Units)
					}
				}
			}
		})
	}
}

// TestPersistCorruptedDirectory mangles the flushed cache files and requires
// the warm Program to fall back to a full cold build — identical results,
// counted invalidations, no error — and its own flush to repair the
// directory for a third Program.
func TestPersistCorruptedDirectory(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Indexed: true, CacheDir: dir,
		JIT: jit.Config{Backend: jit.BackendBytecode, Granularity: jit.GranSPJ}}

	cold := workloads.TransitiveClosure(analysis.HandOptimized, 60, 150, 7)
	if _, err := cold.P.Run(opts); err != nil {
		t.Fatalf("cold: %v", err)
	}
	want := snapshotAll(cold.P)

	files, err := os.ReadDir(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files after cold run: %v", err)
	}
	for i, f := range files {
		path := filepath.Join(dir, f.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncate
			b = b[:len(b)/3]
		case 1: // bit flip mid-payload
			if len(b) > 0 {
				b[len(b)/2] ^= 0x10
			}
		case 2: // garbage of the same length
			for j := range b {
				b[j] = byte(j)
			}
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := workloads.TransitiveClosure(analysis.HandOptimized, 60, 150, 7)
	res, err := warm.P.Run(opts)
	if err != nil {
		t.Fatalf("warm over corrupt dir must not error: %v", err)
	}
	if !reflect.DeepEqual(want, snapshotAll(warm.P)) {
		t.Fatal("corrupt-cache fallback diverged from baseline")
	}
	ds, _ := warm.P.DiskStats()
	if ds.Invalidations == 0 {
		t.Fatalf("corrupt files not counted: %+v", ds)
	}
	if ds.Hits != 0 {
		t.Fatalf("corrupt files served %d entries: %+v", ds.Hits, ds)
	}
	// Under the bytecode JIT the fallback cold work shows up as unit
	// compilations, not plan builds (compiled units intercept the SPJs).
	if res.JIT.Compilations == 0 {
		t.Fatal("fallback run should have cold-compiled its units")
	}

	// The fallback run's flush overwrote the corpses: a third Program is
	// fully disk-warm again.
	repaired := workloads.TransitiveClosure(analysis.HandOptimized, 60, 150, 7)
	res3, err := repaired.P.Run(opts)
	if err != nil {
		t.Fatalf("repaired: %v", err)
	}
	ds3, _ := repaired.P.DiskStats()
	if ds3.Invalidations != 0 || ds3.Hits == 0 {
		t.Fatalf("flush did not repair the directory: %+v", ds3)
	}
	if res3.Interp.PlanBuilds != 0 || res3.JIT.Compilations != 0 {
		t.Fatalf("repaired restart not warm: %d builds, %d compiles", res3.Interp.PlanBuilds, res3.JIT.Compilations)
	}
}

// TestPersistEvictionSurvivesOnDisk runs a mid-sized Program against a
// cache directory, then opens it with a pathologically small PlanStoreLimit
// — load-time injection plus run-time stores evict entries — and finally
// opens it a third time at the default limit. Flush never deletes files, so
// the disk retains the full key set; the tiny run's churn may overwrite some
// entries with later-iteration band state, so the contract here is "much
// warmer than cold", not zero builds (the strict evicted-then-reloaded
// round trip is pinned at the plancache level).
func TestPersistEvictionSurvivesOnDisk(t *testing.T) {
	dir := t.TempDir()
	build := func() *analysis.Built {
		return analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(60, 11))
	}
	base := core.Options{Indexed: true, CacheDir: dir}

	cold := build()
	res1, err := cold.P.Run(base)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	want := snapshotAll(cold.P)
	if res1.Interp.PlanBuilds == 0 {
		t.Fatal("cold run built no plans — nothing to evict")
	}

	tiny := build()
	tinyOpts := base
	tinyOpts.PlanStoreLimit = 16 // one entry per lock shard
	if _, err := tiny.P.Run(tinyOpts); err != nil {
		t.Fatalf("tiny: %v", err)
	}
	if !reflect.DeepEqual(want, snapshotAll(tiny.P)) {
		t.Fatal("tiny-store run diverged")
	}
	if tiny.P.PlanStore().Stats().Evictions == 0 {
		t.Skip("workload too small to overflow the tiny store") // defensive; CSPA(60) overflows 16 entries
	}

	warm := build()
	res, err := warm.P.Run(base)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	ds, _ := warm.P.DiskStats()
	if ds.Hits == 0 {
		t.Fatalf("post-eviction restart loaded nothing from disk: %+v", ds)
	}
	if res.Interp.PlanBuilds >= res1.Interp.PlanBuilds {
		t.Fatalf("disk retained nothing across the eviction churn: %d builds vs %d cold",
			res.Interp.PlanBuilds, res1.Interp.PlanBuilds)
	}
	if !reflect.DeepEqual(want, snapshotAll(warm.P)) {
		t.Fatal("post-eviction warm run diverged")
	}
}

// TestPersistProfileSnapshot checks the stats profile rides along: a warm
// Program exposes the world its plans were built against.
func TestPersistProfileSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Indexed: true, CacheDir: dir}
	cold := workloads.TransitiveClosure(analysis.HandOptimized, 40, 90, 3)
	if _, err := cold.P.Run(opts); err != nil {
		t.Fatal(err)
	}
	if cold.P.CachedProfile() != nil {
		t.Fatal("cold Program should have loaded no profile")
	}
	tcLen := cold.Output.Len()

	warm := workloads.TransitiveClosure(analysis.HandOptimized, 40, 90, 3)
	if _, err := warm.P.Run(opts); err != nil {
		t.Fatal(err)
	}
	prof := warm.P.CachedProfile()
	if prof == nil {
		t.Fatal("warm Program exposes no cached profile")
	}
	pd, ok := warm.P.Catalog().PredByName("tc")
	if !ok {
		t.Fatal("no tc predicate")
	}
	if got := prof.Card(pd.ID, ir.SrcDerived); got != tcLen {
		t.Fatalf("profile cardinality of tc = %d, want post-fixpoint %d", got, tcLen)
	}
}

// TestPersistServeFlushOnPublish pins the serve-mode wiring: a server over a
// cache directory flushes on publish, and a restarted server (or Program)
// starts disk-warm from what sessions built.
func TestPersistServeFlushOnPublish(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Indexed: true, CacheDir: dir}

	built := workloads.TransitiveClosure(analysis.HandOptimized, 60, 150, 7)
	srv, err := built.P.Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(); err != nil {
		t.Fatalf("query: %v", err)
	}
	sess.Close()
	srv.Publish() // flush point: persists what the session built
	if ds, ok := srv.DiskStats(); !ok || ds.Flushes == 0 {
		ds, _ := srv.DiskStats()
		t.Fatalf("publish did not flush: %+v", ds)
	}

	restarted := workloads.TransitiveClosure(analysis.HandOptimized, 60, 150, 7)
	res, err := restarted.P.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interp.PlanBuilds != 0 {
		t.Fatalf("restart after serve flush built %d plans, want 0", res.Interp.PlanBuilds)
	}
}
