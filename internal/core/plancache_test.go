package core

import (
	"math/rand"
	"runtime"
	"testing"

	"carac/internal/interp"
)

// buildRandomGraph returns a graph-reachability program over a random edge
// set — the workload the parallel executor and plan cache are validated on.
func buildRandomGraph(t testing.TB, nodes, edges int, seed int64) (*Program, *Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProgram()
	edge := p.Relation("edge", 2)
	reach := p.Relation("reach", 2)
	x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
	p.MustRule(reach.A(x, y), edge.A(x, y))
	p.MustRule(reach.A(x, y), reach.A(x, z), edge.A(z, y))
	for i := 0; i < edges; i++ {
		edge.MustFact(rng.Intn(nodes), rng.Intn(nodes))
	}
	return p, reach
}

func snapshotRel(r *Relation) map[[2]int32]bool {
	out := make(map[[2]int32]bool, r.Len())
	r.Each(func(t []int32) bool {
		out[[2]int32{t[0], t[1]}] = true
		return true
	})
	return out
}

// TestPlanCacheMatchesColdPlanning is the cache-correctness property test:
// across random graphs, every plan-cache configuration (plain, adaptive,
// parallel, pull) must derive exactly the same facts as cold per-execution
// planning, while actually reusing plans across fixpoint iterations.
func TestPlanCacheMatchesColdPlanning(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		nodes := 8 + int(trial)*4
		cold, coldReach := buildRandomGraph(t, nodes, nodes*3, trial)
		coldRes, err := cold.Run(Options{Indexed: true})
		if err != nil {
			t.Fatal(err)
		}
		want := snapshotRel(coldReach)

		cfgs := []struct {
			name string
			opts Options
			// wantReuse: the default drift threshold guarantees reuse across
			// iterations; a 1% threshold may legitimately re-plan every time.
			wantReuse bool
		}{
			{"plancache", Options{Indexed: true, PlanCache: true}, true},
			{"adaptive", Options{Indexed: true, AdaptivePlans: true}, true},
			{"tight-drift", Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 0.01}, false},
			{"parallel", Options{Indexed: true, PlanCache: true, ParallelUnions: true}, true},
			{"parallel-adaptive", Options{Indexed: true, AdaptivePlans: true, ParallelUnions: true}, true},
			{"pull", Options{Indexed: true, PlanCache: true, Executor: interp.ExecPull}, true},
		}
		for _, c := range cfgs {
			p, reach := buildRandomGraph(t, nodes, nodes*3, trial)
			res, err := p.Run(c.opts)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			got := snapshotRel(reach)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: |reach| = %d, want %d", trial, c.name, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d %s: missing fact %v", trial, c.name, k)
				}
			}
			if res.TotalFacts != coldRes.TotalFacts {
				t.Fatalf("trial %d %s: total facts %d != %d", trial, c.name, res.TotalFacts, coldRes.TotalFacts)
			}
			if c.wantReuse && res.Interp.PlanReuses == 0 {
				t.Fatalf("trial %d %s: plan cache never reused a plan (%+v)", trial, c.name, res.Plans)
			}
			if c.wantReuse && res.Plans.Hits == 0 {
				t.Fatalf("trial %d %s: cache reported no hits (%+v)", trial, c.name, res.Plans)
			}
		}
	}
}

// TestDriftTriggersReoptimization forces cardinality skew — the derived
// relation grows from empty to hundreds of tuples across iterations — and
// asserts the drift gate actually fires: stale/band evictions happen and the
// adaptive hook re-optimizes join orders mid-fixpoint.
func TestDriftTriggersReoptimization(t *testing.T) {
	p, tc := buildTC(t, 60) // long chain: |tc| grows superlinearly across iterations
	res, err := p.Run(Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 60*61/2 {
		t.Fatalf("|tc| = %d, want %d", tc.Len(), 60*61/2)
	}
	if res.Plans.BandMisses+res.Plans.StaleDrops == 0 {
		t.Fatalf("forced skew produced no drift evictions: %+v", res.Plans)
	}
	if res.Interp.Reopts == 0 {
		t.Fatalf("drift never triggered re-optimization: %+v", res.Interp)
	}
	if res.Interp.PlanReuses == 0 {
		t.Fatalf("no plan reuse despite repeated iterations: %+v", res.Interp)
	}

	// Same skew with a loose gate: far fewer rebuilds, same results.
	p2, tc2 := buildTC(t, 60)
	res2, err := p2.Run(Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if tc2.Len() != tc.Len() {
		t.Fatalf("drift threshold changed results: %d vs %d", tc2.Len(), tc.Len())
	}
	if res2.Interp.PlanBuilds >= res.Interp.PlanBuilds {
		t.Fatalf("loose gate should re-plan less: %d >= %d", res2.Interp.PlanBuilds, res.Interp.PlanBuilds)
	}
}

// TestParallelWorkerPool exercises the bounded pool at several widths on the
// graph-reachability workload (run under -race in CI) and checks the
// sequential fallback agrees.
func TestParallelWorkerPool(t *testing.T) {
	seq, seqReach := buildRandomGraph(t, 40, 120, 99)
	seqRes, err := seq.Run(Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotRel(seqReach)

	for _, workers := range []int{0, 1, 2, 3, runtime.GOMAXPROCS(0) * 2} {
		p, reach := buildRandomGraph(t, 40, 120, 99)
		res, err := p.Run(Options{Indexed: true, ParallelUnions: true, Workers: workers, PlanCache: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := snapshotRel(reach)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: |reach| = %d, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workers=%d: missing fact %v", workers, k)
			}
		}
		if res.Interp.Derivations != seqRes.Interp.Derivations {
			t.Fatalf("workers=%d: derivations %d != sequential %d", workers, res.Interp.Derivations, seqRes.Interp.Derivations)
		}
		if res.Interp.Iterations != seqRes.Interp.Iterations {
			t.Fatalf("workers=%d: iterations %d != sequential %d", workers, res.Interp.Iterations, seqRes.Interp.Iterations)
		}
	}
}

// TestParallelRaceStress drives the worker pool with many equally heavy
// recursive rules deriving the same head predicate (each over its own edge
// relation, so no rule finishes early), keeping several workers concurrently
// probing the same frozen Derived relation (Contains on the shared sink) and
// the shared plan cache for whole iterations. CI runs it under -race; the
// larger CSPA benchmark matrix (also under -race in CI) is the primary
// stressor — it reproduced the shared pack-scratch race an earlier Contains
// implementation had.
func TestParallelRaceStress(t *testing.T) {
	build := func() (*Program, *Relation) {
		p := NewProgram()
		reach := p.Relation("reach", 2)
		x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
		rng := rand.New(rand.NewSource(7))
		const n = 300
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6"} {
			e := p.Relation(name, 2)
			p.MustRule(reach.A(x, y), e.A(x, y))
			p.MustRule(reach.A(x, y), reach.A(x, z), e.A(z, y))
			p.MustRule(reach.A(x, y), e.A(z, x), reach.A(z, y))
			for i := 0; i < 500; i++ {
				e.MustFact(rng.Intn(n), rng.Intn(n))
			}
		}
		return p, reach
	}
	seq, seqReach := build()
	if _, err := seq.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	par, parReach := build()
	if _, err := par.Run(Options{Indexed: true, ParallelUnions: true, PlanCache: true}); err != nil {
		t.Fatal(err)
	}
	if seqReach.Len() != parReach.Len() {
		t.Fatalf("parallel stress diverged: %d vs %d facts", parReach.Len(), seqReach.Len())
	}
}

// TestParallelAggregates: per-worker buffering must not disturb grouped
// aggregation results.
func TestParallelAggregates(t *testing.T) {
	build := func() (*Program, *Relation) {
		p := NewProgram()
		edge := p.Relation("edge", 2)
		reach := p.Relation("reach", 2)
		deg := p.Relation("deg", 2)
		x, y, z, n := NewVar("x"), NewVar("y"), NewVar("z"), NewVar("n")
		p.MustRule(reach.A(x, y), edge.A(x, y))
		p.MustRule(reach.A(x, y), reach.A(x, z), edge.A(z, y))
		p.MustAggRule(deg.A(x, n), 1, Count, nil, reach.A(x, y))
		for i := 0; i < 15; i++ {
			edge.MustFact(i, i+1)
		}
		return p, deg
	}
	p1, deg1 := build()
	if _, err := p1.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	p2, deg2 := build()
	if _, err := p2.Run(Options{Indexed: true, ParallelUnions: true, PlanCache: true}); err != nil {
		t.Fatal(err)
	}
	if deg1.Len() != deg2.Len() {
		t.Fatalf("parallel aggregation diverged: %d vs %d groups", deg1.Len(), deg2.Len())
	}
	s1, s2 := snapshotRel(deg1), snapshotRel(deg2)
	for k := range s1 {
		if !s2[k] {
			t.Fatalf("parallel aggregation missing group %v", k)
		}
	}
}
