package core

import (
	"math/rand"
	"runtime"
	"testing"

	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/plancache"
)

// buildRandomGraph returns a graph-reachability program over a random edge
// set — the workload the parallel executor and plan cache are validated on.
func buildRandomGraph(t testing.TB, nodes, edges int, seed int64) (*Program, *Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProgram()
	edge := p.Relation("edge", 2)
	reach := p.Relation("reach", 2)
	x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
	p.MustRule(reach.A(x, y), edge.A(x, y))
	p.MustRule(reach.A(x, y), reach.A(x, z), edge.A(z, y))
	for i := 0; i < edges; i++ {
		edge.MustFact(rng.Intn(nodes), rng.Intn(nodes))
	}
	return p, reach
}

func snapshotRel(r *Relation) map[[2]int32]bool {
	out := make(map[[2]int32]bool, r.Len())
	r.Each(func(t []int32) bool {
		out[[2]int32{t[0], t[1]}] = true
		return true
	})
	return out
}

// TestPlanCacheMatchesColdPlanning is the cache-correctness property test:
// across random graphs, every plan-cache configuration (plain, adaptive,
// parallel, pull) must derive exactly the same facts as cold per-execution
// planning, while actually reusing plans across fixpoint iterations.
func TestPlanCacheMatchesColdPlanning(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		nodes := 8 + int(trial)*4
		cold, coldReach := buildRandomGraph(t, nodes, nodes*3, trial)
		coldRes, err := cold.Run(Options{Indexed: true})
		if err != nil {
			t.Fatal(err)
		}
		want := snapshotRel(coldReach)

		cfgs := []struct {
			name string
			opts Options
			// wantReuse: the default drift threshold guarantees reuse across
			// iterations; a 1% threshold may legitimately re-plan every time.
			wantReuse bool
		}{
			{"plancache", Options{Indexed: true, PlanCache: true}, true},
			{"adaptive", Options{Indexed: true, AdaptivePlans: true}, true},
			{"tight-drift", Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 0.01}, false},
			{"parallel", Options{Indexed: true, PlanCache: true, ParallelUnions: true}, true},
			{"parallel-adaptive", Options{Indexed: true, AdaptivePlans: true, ParallelUnions: true}, true},
			{"pull", Options{Indexed: true, PlanCache: true, Executor: interp.ExecPull}, true},
		}
		for _, c := range cfgs {
			p, reach := buildRandomGraph(t, nodes, nodes*3, trial)
			res, err := p.Run(c.opts)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			got := snapshotRel(reach)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: |reach| = %d, want %d", trial, c.name, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d %s: missing fact %v", trial, c.name, k)
				}
			}
			if res.TotalFacts != coldRes.TotalFacts {
				t.Fatalf("trial %d %s: total facts %d != %d", trial, c.name, res.TotalFacts, coldRes.TotalFacts)
			}
			if c.wantReuse && res.Interp.PlanReuses == 0 {
				t.Fatalf("trial %d %s: plan cache never reused a plan (%+v)", trial, c.name, res.Plans)
			}
			if c.wantReuse && res.Plans.Hits == 0 {
				t.Fatalf("trial %d %s: cache reported no hits (%+v)", trial, c.name, res.Plans)
			}
		}
	}
}

// TestDriftTriggersReoptimization forces cardinality skew — the derived
// relation grows from empty to hundreds of tuples across iterations — and
// asserts the drift gate actually fires: stale/band evictions happen and the
// adaptive hook re-optimizes join orders mid-fixpoint.
func TestDriftTriggersReoptimization(t *testing.T) {
	p, tc := buildTC(t, 60) // long chain: |tc| grows superlinearly across iterations
	res, err := p.Run(Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 60*61/2 {
		t.Fatalf("|tc| = %d, want %d", tc.Len(), 60*61/2)
	}
	if res.Plans.BandMisses+res.Plans.StaleDrops == 0 {
		t.Fatalf("forced skew produced no drift evictions: %+v", res.Plans)
	}
	if res.Interp.Reopts == 0 {
		t.Fatalf("drift never triggered re-optimization: %+v", res.Interp)
	}
	if res.Interp.PlanReuses == 0 {
		t.Fatalf("no plan reuse despite repeated iterations: %+v", res.Interp)
	}

	// Same skew with a loose gate: far fewer rebuilds, same results.
	p2, tc2 := buildTC(t, 60)
	res2, err := p2.Run(Options{Indexed: true, AdaptivePlans: true, PlanCacheDrift: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if tc2.Len() != tc.Len() {
		t.Fatalf("drift threshold changed results: %d vs %d", tc2.Len(), tc.Len())
	}
	if res2.Interp.PlanBuilds >= res.Interp.PlanBuilds {
		t.Fatalf("loose gate should re-plan less: %d >= %d", res2.Interp.PlanBuilds, res.Interp.PlanBuilds)
	}
}

// TestParallelWorkerPool exercises the bounded pool at several widths on the
// graph-reachability workload (run under -race in CI) and checks the
// sequential fallback agrees.
func TestParallelWorkerPool(t *testing.T) {
	seq, seqReach := buildRandomGraph(t, 40, 120, 99)
	seqRes, err := seq.Run(Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotRel(seqReach)

	for _, workers := range []int{0, 1, 2, 3, runtime.GOMAXPROCS(0) * 2} {
		p, reach := buildRandomGraph(t, 40, 120, 99)
		res, err := p.Run(Options{Indexed: true, ParallelUnions: true, Workers: workers, PlanCache: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := snapshotRel(reach)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: |reach| = %d, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workers=%d: missing fact %v", workers, k)
			}
		}
		if res.Interp.Derivations != seqRes.Interp.Derivations {
			t.Fatalf("workers=%d: derivations %d != sequential %d", workers, res.Interp.Derivations, seqRes.Interp.Derivations)
		}
		if res.Interp.Iterations != seqRes.Interp.Iterations {
			t.Fatalf("workers=%d: iterations %d != sequential %d", workers, res.Interp.Iterations, seqRes.Interp.Iterations)
		}
	}
}

// TestParallelRaceStress drives the worker pool with many equally heavy
// recursive rules deriving the same head predicate (each over its own edge
// relation, so no rule finishes early), keeping several workers concurrently
// probing the same frozen Derived relation (Contains on the shared sink) and
// the shared plan cache for whole iterations. CI runs it under -race; the
// larger CSPA benchmark matrix (also under -race in CI) is the primary
// stressor — it reproduced the shared pack-scratch race an earlier Contains
// implementation had.
func TestParallelRaceStress(t *testing.T) {
	build := func() (*Program, *Relation) {
		p := NewProgram()
		reach := p.Relation("reach", 2)
		x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
		rng := rand.New(rand.NewSource(7))
		const n = 300
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6"} {
			e := p.Relation(name, 2)
			p.MustRule(reach.A(x, y), e.A(x, y))
			p.MustRule(reach.A(x, y), reach.A(x, z), e.A(z, y))
			p.MustRule(reach.A(x, y), e.A(z, x), reach.A(z, y))
			for i := 0; i < 500; i++ {
				e.MustFact(rng.Intn(n), rng.Intn(n))
			}
		}
		return p, reach
	}
	seq, seqReach := build()
	if _, err := seq.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	par, parReach := build()
	if _, err := par.Run(Options{Indexed: true, ParallelUnions: true, PlanCache: true}); err != nil {
		t.Fatal(err)
	}
	if seqReach.Len() != parReach.Len() {
		t.Fatalf("parallel stress diverged: %d vs %d facts", parReach.Len(), seqReach.Len())
	}
}

// TestParallelAggregates: per-worker buffering must not disturb grouped
// aggregation results.
func TestParallelAggregates(t *testing.T) {
	build := func() (*Program, *Relation) {
		p := NewProgram()
		edge := p.Relation("edge", 2)
		reach := p.Relation("reach", 2)
		deg := p.Relation("deg", 2)
		x, y, z, n := NewVar("x"), NewVar("y"), NewVar("z"), NewVar("n")
		p.MustRule(reach.A(x, y), edge.A(x, y))
		p.MustRule(reach.A(x, y), reach.A(x, z), edge.A(z, y))
		p.MustAggRule(deg.A(x, n), 1, Count, nil, reach.A(x, y))
		for i := 0; i < 15; i++ {
			edge.MustFact(i, i+1)
		}
		return p, deg
	}
	p1, deg1 := build()
	if _, err := p1.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	p2, deg2 := build()
	if _, err := p2.Run(Options{Indexed: true, ParallelUnions: true, PlanCache: true}); err != nil {
		t.Fatal(err)
	}
	if deg1.Len() != deg2.Len() {
		t.Fatalf("parallel aggregation diverged: %d vs %d groups", deg1.Len(), deg2.Len())
	}
	s1, s2 := snapshotRel(deg1), snapshotRel(deg2)
	for k := range s1 {
		if !s2[k] {
			t.Fatalf("parallel aggregation missing group %v", k)
		}
	}
}

// TestSharedPlansWarmRerun is the tentpole's core property: with the plan
// cache keyed into the Program-lifetime store, a second Run of the same
// Program performs strictly fewer plan constructions than the first — the
// cold-start re-planning tax the drift gate exists to avoid is paid once per
// Program, not once per Run — while deriving identical results.
func TestSharedPlansWarmRerun(t *testing.T) {
	cold, coldReach := buildRandomGraph(t, 24, 72, 5)
	if _, err := cold.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	want := snapshotRel(coldReach)

	p, reach := buildRandomGraph(t, 24, 72, 5)
	opts := Options{Indexed: true, SharedPlans: true}
	res1, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotRel(reach)
	if len(got) != len(want) {
		t.Fatalf("|reach| = %d, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing fact %v", k)
		}
	}
	if res1.Interp.PlanBuilds == 0 {
		t.Fatalf("first run built no plans: %+v", res1.Interp)
	}
	if res2.Interp.PlanBuilds >= res1.Interp.PlanBuilds {
		t.Fatalf("warm rerun did not reduce plan builds: %d >= %d", res2.Interp.PlanBuilds, res1.Interp.PlanBuilds)
	}
	if res1.Plans.CrossRunHits != 0 {
		t.Fatalf("first run reported cross-run hits: %+v", res1.Plans)
	}
	if res2.Plans.CrossRunHits == 0 {
		t.Fatalf("warm rerun served no cross-run hits: %+v", res2.Plans)
	}
	// Incremental fact batch: the store stays warm through the baseline
	// rewind too.
	edge := p.Relation("edge", 2)
	edge.MustFact(0, 23)
	res3, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Plans.CrossRunHits == 0 {
		t.Fatalf("incremental batch started cold: %+v", res3.Plans)
	}
}

// TestStructuralPlanSharing pins the fingerprint keying: N structurally
// identical recursive rules (the CSPA shape — same rule template over
// distinct edge relations) must share plan-cache entries, so the store holds
// strictly fewer plan keys than the program has rules, while results match
// the cold sequential baseline.
func TestStructuralPlanSharing(t *testing.T) {
	build := func() (*Program, *Relation, int) {
		p := NewProgram()
		reach := p.Relation("reach", 2)
		x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
		rng := rand.New(rand.NewSource(3))
		rules := 0
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5"} {
			e := p.Relation(name, 2)
			p.MustRule(reach.A(x, y), e.A(x, y))
			p.MustRule(reach.A(x, y), reach.A(x, z), e.A(z, y))
			rules += 2
			for i := 0; i < 60; i++ {
				e.MustFact(rng.Intn(40), rng.Intn(40))
			}
		}
		return p, reach, rules
	}
	seq, seqReach, _ := build()
	if _, err := seq.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	p, reach, rules := build()
	res, err := p.Run(Options{Indexed: true, SharedPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	if reach.Len() != seqReach.Len() {
		t.Fatalf("shared plans changed results: %d vs %d facts", reach.Len(), seqReach.Len())
	}
	if res.Interp.PlanReuses == 0 {
		t.Fatalf("no plan reuse: %+v", res.Interp)
	}
	keys := p.PlanStore().Keys(plancache.ClassPlans)
	if keys == 0 || keys >= rules {
		t.Fatalf("structural sharing failed: %d plan keys for %d rules", keys, rules)
	}
	// The five structurally identical recursive rules must have produced
	// strictly fewer plan builds than five independent caches would: the
	// first rule's plan serves its siblings via rebinding.
	if res.Interp.PlanBuilds >= res.Interp.SPJRuns {
		t.Fatalf("plan builds %d not amortized over %d subquery runs", res.Interp.PlanBuilds, res.Interp.SPJRuns)
	}
}

// TestSharedUnitsWarmRerun: with a JIT backend over the shared store, a
// second Run resolves its compiled units from the store instead of
// recompiling — unit reuse (and cross-run unit reuse) is visible in
// Result.Units and recompiles do not grow.
func TestSharedUnitsWarmRerun(t *testing.T) {
	p, tc := buildTC(t, 40)
	opts := Options{
		Indexed:     true,
		SharedPlans: true,
		JIT:         jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ, FreshnessThreshold: 1e18},
	}
	res1, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 40*41/2 {
		t.Fatalf("|tc| = %d, want %d", tc.Len(), 40*41/2)
	}
	if res1.JIT.Compilations == 0 {
		t.Fatalf("first run compiled nothing: %+v", res1.JIT)
	}
	if res2.JIT.Compilations != 0 {
		t.Fatalf("warm rerun recompiled %d units despite the shared store", res2.JIT.Compilations)
	}
	if res2.Units.Hits == 0 || res2.Units.CrossRunHits == 0 {
		t.Fatalf("warm rerun shows no unit reuse: %+v", res2.Units)
	}
}

// TestUnitBandReturnReuses: under the banded unit store with cross-band
// freshness, re-entering a previously compiled cardinality regime reuses
// the stored unit — unit reuse observed, recompiles no higher than the old
// one-unit-per-op design would produce (one per SPJ here).
func TestUnitBandReturnReuses(t *testing.T) {
	p, _ := buildTC(t, 50)
	opts := Options{
		Indexed: true,
		JIT:     jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ, FreshnessThreshold: 1e18},
	}
	res, err := p.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Units.Hits == 0 {
		t.Fatalf("no unit reuse recorded: %+v", res.Units)
	}
	if res.JIT.Compilations > 2 {
		t.Fatalf("band partitioning inflated compilations: %d > 2", res.JIT.Compilations)
	}
}

// TestSharedPlansMixedConfigs: one Program's store serves runs under
// DIFFERENT execution configurations — sequential, parallel, sharded, pull,
// JIT — without poisoning results: cached plans carry no per-run state
// (shard restrictions live on per-execution copies, executors share the
// Plan shape, unit keys are backend-tagged), so every mixed run must still
// derive the cold baseline's facts.
func TestSharedPlansMixedConfigs(t *testing.T) {
	cold, coldReach := buildRandomGraph(t, 30, 90, 21)
	if _, err := cold.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	want := snapshotRel(coldReach)

	p, reach := buildRandomGraph(t, 30, 90, 21)
	runs := []Options{
		{Indexed: true, SharedPlans: true},
		{Indexed: true, SharedPlans: true, ParallelUnions: true, Workers: 2},
		{Indexed: true, SharedPlans: true, Shards: 4, Workers: 2},
		{Indexed: true, SharedPlans: true, Executor: interp.ExecPull},
		{Indexed: true, SharedPlans: true, JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}},
		{Indexed: true, SharedPlans: true, AdaptivePlans: true},
	}
	for i, opts := range runs {
		if _, err := p.Run(opts); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := snapshotRel(reach)
		if len(got) != len(want) {
			t.Fatalf("run %d: |reach| = %d, want %d", i, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("run %d: missing fact %v", i, k)
			}
		}
	}
}
