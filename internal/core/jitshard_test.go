// Tests for the shard-native JIT: with a Controller attached and Shards > 1
// the run must keep the physically sharded delta store and the parallel
// merge barrier (the pre-PR-5 engine silently degraded to the row-id view
// and a sequential loop), span-parameterized compiled units must execute the
// bucket tasks, the unit cache must survive warm reruns at one shard layout
// while never serving a unit across layouts, and all of it must hold under
// -race (the CI core job runs this package with the race detector).
package core_test

import (
	"fmt"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
	"carac/internal/workloads"
)

var lambdaSPJ = jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}

func runJITTC(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	res, err := built.P.Run(opts)
	if err != nil {
		t.Fatalf("%+v: %v", opts, err)
	}
	if pd, ok := built.P.Catalog().PredByName("tc"); ok && opts.Shards > 1 {
		if !pd.Physical() {
			t.Fatalf("%+v: sharded run did not use the physical backing store", opts)
		}
	}
	return res
}

// TestJITShardedUsesPhysicalStore is the acceptance pin: a sharded run with
// a Controller attached uses the physically sharded delta store end to end —
// the merge barrier fans out (Stats.MergeTasks > 0), the pool's tasks
// execute compiled units (Stats.Compiled > 0 via ShardUnits, Compilations
// recorded), and the result set and iteration schedule match the sequential
// oracle exactly.
func TestJITShardedUsesPhysicalStore(t *testing.T) {
	seq := runJITTC(t, core.Options{Indexed: true})
	res := runJITTC(t, core.Options{
		Indexed: true, Shards: 4, Workers: 4, PlanCache: true,
		FanoutThreshold: 1, // every buffered merge runs bucketed
		JIT:             lambdaSPJ,
	})
	if res.TotalFacts != seq.TotalFacts {
		t.Fatalf("sharded+JIT derived %d facts, sequential %d", res.TotalFacts, seq.TotalFacts)
	}
	if res.Interp.Iterations != seq.Interp.Iterations {
		t.Fatalf("sharded+JIT ran %d iterations, sequential %d", res.Interp.Iterations, seq.Interp.Iterations)
	}
	if res.Interp.MergeTasks == 0 {
		t.Fatal("merge barrier never ran bucketed: the physical delta store is not engaged")
	}
	if res.JIT.Compilations == 0 {
		t.Fatalf("no task units compiled: %+v", res.JIT)
	}
	if res.Interp.Compiled == 0 {
		t.Fatal("compiled task units never executed — tasks all fell back to interpretation")
	}
	if res.JIT.Failures != 0 {
		t.Fatalf("%d task-unit compile failures", res.JIT.Failures)
	}
}

// TestJITShardedAdaptiveFanout: the adaptive driver's two regimes compose
// with compilation — fanned-out iterations run compiled bucket tasks and
// bucketed merges, tail iterations take the sequential fast path — without
// changing the derived fixpoint.
func TestJITShardedAdaptiveFanout(t *testing.T) {
	seq := runJITTC(t, core.Options{Indexed: true})
	res := runJITTC(t, core.Options{
		Indexed: true, Shards: 4, Workers: 4,
		// High enough that this workload's tail iterations dip under it
		// (TC(80,200) tails at ~15 delta tuples), low enough that the early
		// iterations still fan out.
		AdaptiveFanout: true, FanoutThreshold: 64,
		JIT: lambdaSPJ,
	})
	if res.TotalFacts != seq.TotalFacts {
		t.Fatalf("adaptive sharded+JIT derived %d facts, sequential %d", res.TotalFacts, seq.TotalFacts)
	}
	if res.Interp.MergeTasks == 0 {
		t.Fatal("adaptive sharded+JIT never merged bucketed")
	}
	if res.Interp.SeqIters == 0 {
		t.Fatal("adaptive sharded+JIT never took the sequential fast path on the tail")
	}
	if res.Interp.Compiled == 0 {
		t.Fatal("no compiled execution under the adaptive driver")
	}
}

// TestJITDegeneratePoolStillCompiles: a sharded JIT run whose pool
// degenerates to one worker evaluates rules in place — but must keep
// consulting the controller's safe points, so rule-granularity compiled
// units still execute exactly as they did under the pre-shard-native
// sequential loop (regression: the in-place path once bypassed Enter).
func TestJITDegeneratePoolStillCompiles(t *testing.T) {
	seq := runJITTC(t, core.Options{Indexed: true})
	res := runJITTC(t, core.Options{
		Indexed: true, Shards: 4, Workers: 1,
		JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranUnionRule},
	})
	if res.TotalFacts != seq.TotalFacts {
		t.Fatalf("degenerate pool derived %d facts, sequential %d", res.TotalFacts, seq.TotalFacts)
	}
	if res.JIT.Compilations == 0 {
		t.Fatalf("degenerate pool compiled nothing: %+v", res.JIT)
	}
	if res.Interp.Compiled == 0 {
		t.Fatal("degenerate pool never executed compiled units — Enter bypassed on the in-place path")
	}
}

// TestJITShardedWarmRerun: task units live in the Program-lifetime store
// under layout-tagged subtree fingerprints, so a warm rerun at the same
// shard layout recompiles 0 units and serves cross-run hits — the same
// guarantee the sequential unit view gives, now over the physical store.
func TestJITShardedWarmRerun(t *testing.T) {
	built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	opts := core.Options{
		Indexed: true, SharedPlans: true, Shards: 4, Workers: 4,
		JIT: lambdaSPJ,
	}
	res1, err := built.P.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.JIT.Compilations == 0 {
		t.Fatalf("first run compiled nothing: %+v", res1.JIT)
	}
	res2, err := built.P.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.JIT.Compilations != 0 {
		t.Fatalf("warm rerun recompiled %d units at an unchanged shard layout", res2.JIT.Compilations)
	}
	if res2.Units.CrossRunHits == 0 {
		t.Fatalf("warm rerun served no cross-run unit hits: %+v", res2.Units)
	}
	if res2.TotalFacts != res1.TotalFacts {
		t.Fatalf("warm rerun changed the result: %d vs %d facts", res2.TotalFacts, res1.TotalFacts)
	}
}

// TestJITShardedWarmRerunCSPA is the warm-rerun acceptance on the many-rule
// CSPA shape: dozens of structurally similar rules, every one of whose task
// units must resolve from the store on the second run.
func TestJITShardedWarmRerunCSPA(t *testing.T) {
	built := analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(80, 42))
	opts := core.Options{
		Indexed: true, SharedPlans: true, Shards: 4, Workers: 4,
		JIT: lambdaSPJ,
	}
	res1, err := built.P.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.JIT.Compilations == 0 {
		t.Fatalf("first CSPA run compiled nothing: %+v", res1.JIT)
	}
	res2, err := built.P.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.JIT.Compilations != 0 {
		t.Fatalf("CSPA warm rerun recompiled %d units", res2.JIT.Compilations)
	}
	if res2.TotalFacts != res1.TotalFacts {
		t.Fatalf("CSPA warm rerun changed the result: %d vs %d facts", res2.TotalFacts, res1.TotalFacts)
	}
}

// TestJITShardLayoutChangeRecompiles: a span-parameterized unit compiled for
// one Shards count must never be served to a run partitioned differently —
// the layout is part of the unit fingerprint — while returning to a
// previously seen layout is warm again.
func TestJITShardLayoutChangeRecompiles(t *testing.T) {
	built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	at := func(shards int) core.Options {
		return core.Options{
			Indexed: true, SharedPlans: true, Shards: shards, Workers: 4,
			JIT: lambdaSPJ,
		}
	}
	res4, err := built.P.Run(at(4))
	if err != nil {
		t.Fatal(err)
	}
	if res4.JIT.Compilations == 0 {
		t.Fatalf("cold 4-shard run compiled nothing: %+v", res4.JIT)
	}
	res8, err := built.P.Run(at(8))
	if err != nil {
		t.Fatal(err)
	}
	if res8.JIT.Compilations == 0 {
		t.Fatal("re-partitioned run served stale span-parameterized units instead of recompiling")
	}
	if res8.TotalFacts != res4.TotalFacts {
		t.Fatalf("layout change altered the result: %d vs %d facts", res8.TotalFacts, res4.TotalFacts)
	}
	back4, err := built.P.Run(at(4))
	if err != nil {
		t.Fatal(err)
	}
	if back4.JIT.Compilations != 0 {
		t.Fatalf("returning to the 4-shard layout recompiled %d units", back4.JIT.Compilations)
	}
	if back4.TotalFacts != res4.TotalFacts {
		t.Fatalf("layout return altered the result: %d vs %d facts", back4.TotalFacts, res4.TotalFacts)
	}
}

// TestJITShardMergeStress hammers concurrent compiled bucket tasks and
// per-bucket merges through the full engine with a threshold of 1, so every
// iteration — including one-tuple tails — fans out, runs ShardUnit bodies on
// the pool, and merges bucketed; repeated Programs and reruns stress the
// partition-mode transitions underneath. Run under -race by the CI core job.
func TestJITShardMergeStress(t *testing.T) {
	seq := runJITTC(t, core.Options{Indexed: true})
	for round := 0; round < 3; round++ {
		built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
		for rerun := 0; rerun < 2; rerun++ {
			res, err := built.P.Run(core.Options{
				Indexed: true, Shards: 8, Workers: 8, SharedPlans: true,
				AdaptiveFanout: true, FanoutThreshold: 1,
				JIT: lambdaSPJ,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalFacts != seq.TotalFacts {
				t.Fatalf("round %d rerun %d: %d facts, want %d", round, rerun, res.TotalFacts, seq.TotalFacts)
			}
			if res.Interp.Derivations != seq.Interp.Derivations {
				t.Fatalf("round %d rerun %d: %d derivations, want %d", round, rerun, res.Interp.Derivations, seq.Interp.Derivations)
			}
		}
	}
}

// TestJITShardedAsyncAndBackends sweeps the remaining physical×JIT cells the
// main differential matrix does not enumerate: every compiling backend —
// including bytecode and quotes, whose sequential codegen rides the lambda
// task substrate — plus async compilation, against the sequential oracle.
func TestJITShardedAsyncAndBackends(t *testing.T) {
	seq := runJITTC(t, core.Options{Indexed: true})
	for _, b := range []jit.Backend{jit.BackendIRGen, jit.BackendLambda, jit.BackendBytecode, jit.BackendQuotes} {
		for _, async := range []bool{false, true} {
			name := fmt.Sprintf("%v/async=%v", b, async)
			res := runJITTC(t, core.Options{
				Indexed: true, Shards: 4, Workers: 4, FanoutThreshold: 1,
				JIT: jit.Config{Backend: b, Granularity: jit.GranSPJ, Async: async},
			})
			if res.TotalFacts != seq.TotalFacts {
				t.Errorf("%s: %d facts, sequential %d", name, res.TotalFacts, seq.TotalFacts)
			}
			if res.Interp.MergeTasks == 0 {
				t.Errorf("%s: merge never ran bucketed", name)
			}
		}
	}
}

// FuzzJITShardRouting drives the fan-out's bucket routing through the JIT
// path: arbitrary edge lists evaluate transitive closure sharded with
// compiled bucket-span tasks and must reproduce the sequential fixpoint —
// the core-level extension of storage.FuzzShardRouting's partition-exactness
// property to compiled readers. Run the short-fuzz CI job with:
// go test -fuzz=FuzzJITShardRouting -fuzztime=20s ./internal/core/
func FuzzJITShardRouting(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 2, 3, 3, 4, 4, 1})
	f.Add(uint8(7), []byte{0, 0, 1, 0, 200, 200, 5, 9})
	f.Add(uint8(2), []byte{9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3})
	f.Fuzz(func(t *testing.T, nshards uint8, data []byte) {
		shards := 2 + int(nshards)%7
		if len(data) > 64 {
			data = data[:64]
		}
		build := func() *core.Program {
			p := core.NewProgram()
			edge := p.Relation("edge", 2)
			tc := p.Relation("tc", 2)
			x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
			p.MustRule(tc.A(x, y), edge.A(x, y))
			p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
			for i := 0; i+1 < len(data); i += 2 {
				edge.MustFact(int(data[i])%32, int(data[i+1])%32)
			}
			return p
		}
		sp := build()
		sres, err := sp.Run(core.Options{Indexed: true})
		if err != nil {
			t.Fatal(err)
		}
		jp := build()
		jres, err := jp.Run(core.Options{
			Indexed: true, Shards: shards, Workers: 4, FanoutThreshold: 1,
			JIT: lambdaSPJ,
		})
		if err != nil {
			t.Fatal(err)
		}
		if jres.TotalFacts != sres.TotalFacts {
			t.Fatalf("shards=%d: %d facts, sequential %d", shards, jres.TotalFacts, sres.TotalFacts)
		}
		want := snapshotAll(sp)
		got := snapshotAll(jp)
		for name, rows := range want {
			g := got[name]
			if len(g) != len(rows) {
				t.Fatalf("shards=%d: relation %s has %d tuples, sequential %d", shards, name, len(g), len(rows))
			}
			for i := range rows {
				if g[i] != rows[i] {
					t.Fatalf("shards=%d: relation %s row %d = %s, sequential %s", shards, name, i, g[i], rows[i])
				}
			}
		}
	})
}
