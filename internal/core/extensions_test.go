package core

import (
	"testing"

	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/optimizer"
)

// buildMultiKey returns a program whose recursive rule joins on two columns
// simultaneously, so composite indexes actually engage:
// path(a,b,c) :- step(a,b,c).  path(a,b,c2) :- path(a,b,c), step(b,c,c2)? —
// simpler: grid reachability keyed by (row, col).
func buildMultiKey(t testing.TB) (*Program, *Relation) {
	t.Helper()
	p := NewProgram()
	step := p.Relation("step", 4) // (r1,c1) -> (r2,c2)
	reach := p.Relation("reach", 2)
	start := p.Relation("start", 2)
	r1, c1, r2, c2 := NewVar("r1"), NewVar("c1"), NewVar("r2"), NewVar("c2")
	p.MustRule(reach.A(r1, c1), start.A(r1, c1))
	p.MustRule(reach.A(r2, c2), reach.A(r1, c1), step.A(r1, c1, r2, c2))
	start.MustFact(0, 0)
	const n = 12
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if r+1 < n {
				step.MustFact(r, c, r+1, c)
			}
			if c+1 < n {
				step.MustFact(r, c, r, c+1)
			}
		}
	}
	return p, reach
}

func TestCompositeIndexesSameResults(t *testing.T) {
	p1, out1 := buildMultiKey(t)
	if _, err := p1.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	p2, out2 := buildMultiKey(t)
	res, err := p2.Run(Options{Indexed: true, CompositeIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != out2.Len() {
		t.Fatalf("composite indexes changed results: %d vs %d", out1.Len(), out2.Len())
	}
	if out2.Len() != 12*12 {
		t.Fatalf("|reach| = %d, want 144", out2.Len())
	}
	_ = res
	// The composite index must actually be registered on the step relation.
	step, _ := p2.Catalog().PredByName("step")
	if len(step.Derived.CompositeIndexes()) == 0 {
		t.Fatal("no composite index registered despite multi-column signature")
	}
}

func TestCompositeIndexesAcrossBackends(t *testing.T) {
	for _, b := range []jit.Backend{jit.BackendIRGen, jit.BackendLambda, jit.BackendBytecode, jit.BackendQuotes} {
		p, out := buildMultiKey(t)
		if _, err := p.Run(Options{Indexed: true, CompositeIndexes: true,
			JIT: jit.Config{Backend: b, Granularity: jit.GranUnionAll}}); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if out.Len() != 144 {
			t.Fatalf("%v: |reach| = %d, want 144", b, out.Len())
		}
	}
}

func TestPullExecutorViaOptions(t *testing.T) {
	p1, o1 := buildTC(t, 12)
	if _, err := p1.Run(Options{Indexed: true, Executor: interp.ExecPull}); err != nil {
		t.Fatal(err)
	}
	if o1.Len() != 78 {
		t.Fatalf("pull executor |tc| = %d, want 78", o1.Len())
	}
}

func TestParallelUnionsViaOptions(t *testing.T) {
	p1, o1 := buildTC(t, 20)
	if _, err := p1.Run(Options{Indexed: true, ParallelUnions: true}); err != nil {
		t.Fatal(err)
	}
	if o1.Len() != 210 {
		t.Fatalf("parallel |tc| = %d, want 210", o1.Len())
	}
}

func TestIncrementalFactsBetweenRuns(t *testing.T) {
	p, tc := buildTC(t, 5)
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 15 {
		t.Fatalf("|tc| = %d, want 15", tc.Len())
	}
	// Extend the chain after the first run: 5 -> 6.
	edge := p.Relation("edge", 2)
	edge.MustFact(5, 6)
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 21 {
		t.Fatalf("after incremental fact: |tc| = %d, want 21", tc.Len())
	}
	// And again, repeatedly, with an indexed run in between.
	edge.MustFact(6, 7)
	edge.MustFact(7, 8)
	if _, err := p.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 36 {
		t.Fatalf("after second batch: |tc| = %d, want 36", tc.Len())
	}
	// Reruns without new facts stay stable.
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 36 {
		t.Fatalf("rerun drifted: |tc| = %d", tc.Len())
	}
}

func TestIncrementalFactDuplicateDoesNotInflateBaseline(t *testing.T) {
	p, tc := buildTC(t, 4)
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	edge := p.Relation("edge", 2)
	edge.MustFact(0, 1) // duplicate of an existing ground fact
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 10 {
		t.Fatalf("|tc| = %d, want 10", tc.Len())
	}
}

func TestDistinctStatsOptimizer(t *testing.T) {
	p, out := buildMultiKey(t)
	res, err := p.Run(Options{Indexed: true,
		JIT: jit.Config{
			Backend:     jit.BackendIRGen,
			Granularity: jit.GranSPJ,
			Optimizer:   optimizer.Options{UseDistinctStats: true, Selectivity: 0.5},
		}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 144 {
		t.Fatalf("|reach| = %d, want 144", out.Len())
	}
	_ = res
}

func TestExecutorsAgreeOnAnalysisWorkload(t *testing.T) {
	mk := func(executor interp.Executor, parallel bool) int {
		p, out := buildMultiKey(t)
		if _, err := p.Run(Options{Indexed: true, Executor: executor, ParallelUnions: parallel}); err != nil {
			t.Fatal(err)
		}
		return out.Len()
	}
	push := mk(interp.ExecPush, false)
	if pull := mk(interp.ExecPull, false); pull != push {
		t.Fatalf("pull %d != push %d", pull, push)
	}
	if par := mk(interp.ExecPush, true); par != push {
		t.Fatalf("parallel %d != sequential %d", par, push)
	}
}
