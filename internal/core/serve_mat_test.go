// Materialized-epoch serving tests: single-flight deduplication of the
// per-epoch fixpoint (N concurrent sessions, one derivation), epoch-flip
// invalidation, the semi-naive warm start from the previous epoch's
// materialization, and the mixed differential matrix (memo hits,
// materialized lookups, and cold/warm derivations across an Ingest/Publish
// boundary) — all vs the sequential oracle, designed to run under -race.
package core_test

import (
	"fmt"
	"sync"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
	"carac/internal/workloads"
)

// TestServeSingleFlightMemo is the memoization pin: 8 sessions issue the
// identical query concurrently on one epoch, exactly one fixpoint derivation
// runs (the single-flight winner), every other query answers from the memo,
// and all answers are byte-equal to the sequential oracle. After an
// Ingest+Publish the memo is invalid for the new epoch: a fresh session's
// query recomputes exactly once more, while a session pinned to the old
// epoch keeps answering from the old materialization.
func TestServeSingleFlightMemo(t *testing.T) {
	oracle := workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 29)
	if _, err := oracle.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := relationRows(oracle.Output)
	wantTotal := oracle.P.Catalog().TotalDerived()

	b := workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 29)
	srv, err := b.P.Serve(core.Options{Indexed: true, Materialize: true})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	const clients = 8
	sessions := make([]*core.Session, clients)
	for i := range sessions {
		if sessions[i], err = srv.Session(); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		defer sessions[i].Close()
	}

	// Barrier start: all 8 queries in flight together, racing for the
	// single-flight leadership.
	start := make(chan struct{})
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *core.Session) {
			defer wg.Done()
			<-start
			res, err := sess.Query()
			if err != nil {
				errCh <- fmt.Errorf("session %d: %v", i, err)
				return
			}
			if res.TotalFacts != wantTotal {
				errCh <- fmt.Errorf("session %d: %d total facts, oracle %d", i, res.TotalFacts, wantTotal)
				return
			}
			if got := sessionRows(sess, b.Output); !equalRows(got, want) {
				errCh <- fmt.Errorf("session %d: %d output rows, oracle %d", i, len(got), len(want))
			}
		}(i, sess)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Derivations != 1 {
		t.Errorf("derivations = %d, want exactly 1 (single flight)", st.Derivations)
	}
	if st.MemoHits != clients-1 {
		t.Errorf("memo hits = %d, want %d", st.MemoHits, clients-1)
	}
	if st.MaterializedEpochs != 1 {
		t.Errorf("materialized epochs = %d, want 1", st.MaterializedEpochs)
	}
	if !srv.Epoch().Materialized() {
		t.Errorf("epoch not marked materialized after derivation")
	}
	if srv.Epoch().MaterializedStats() == nil {
		t.Errorf("materialized epoch carries no post-fixpoint statistics snapshot")
	}

	// Re-query on a pinned session: still a memo hit, not a derivation.
	if _, err := sessions[0].Query(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Derivations; got != 1 {
		t.Errorf("re-query derived again: %d derivations", got)
	}

	// Epoch flip invalidates: the new epoch's first query must recompute.
	edge := b.P.Relation("edge", 2)
	srv.Ingest(func() { edge.MustFact(900, 0) })
	srv.Publish()
	if srv.Epoch().Materialized() {
		t.Fatalf("fresh epoch must not be materialized before its first query")
	}
	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res2, err := s2.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalFacts <= wantTotal {
		t.Errorf("new epoch ignored the ingested fact: %d total facts, old epoch %d", res2.TotalFacts, wantTotal)
	}
	if got := srv.Stats().Derivations; got != 2 {
		t.Errorf("derivations after publish = %d, want 2", got)
	}
	// The old session keeps its pinned epoch's materialization.
	if _, err := sessions[1].Query(); err != nil {
		t.Fatal(err)
	}
	if got := sessions[1].Len(b.Output); got != len(want) {
		t.Errorf("pinned session drifted after publish: %d rows, want %d", got, len(want))
	}
}

// TestServeMaterializedWarmStart pins the warm start's correctness: the
// second epoch's materialization is seeded from the first epoch's fixpoint
// plus the ingested delta (WarmStarts counts it), and its rows are identical
// to a from-scratch oracle over the full fact set — including derivations
// that join *old* fixpoint rows with *new* ground facts, which a
// recursive-only delta lowering would miss.
func TestServeMaterializedWarmStart(t *testing.T) {
	b := workloads.TransitiveClosure(analysis.HandOptimized, 50, 100, 31)
	srv, err := b.P.Serve(core.Options{Indexed: true, Materialize: true})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	s1, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := s1.Query(); err != nil {
		t.Fatal(err)
	}

	// The delta: a chain through fresh nodes attached to node 0, so new tc
	// rows require joining old tc(x, 0) rows against new edge facts.
	edge := b.P.Relation("edge", 2)
	srv.Ingest(func() {
		edge.MustFact(0, 700)
		edge.MustFact(700, 701)
		edge.MustFact(701, 702)
	})
	srv.Publish()

	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Query(); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.WarmStarts != 1 {
		t.Errorf("warm starts = %d, want 1", st.WarmStarts)
	}
	if st.MaterializedEpochs != 2 {
		t.Errorf("materialized epochs = %d, want 2", st.MaterializedEpochs)
	}

	// Oracle: the same workload rebuilt from scratch with the delta included
	// as ground facts.
	oracle := workloads.TransitiveClosure(analysis.HandOptimized, 50, 100, 31)
	oe := oracle.P.Relation("edge", 2)
	oe.MustFact(0, 700)
	oe.MustFact(700, 701)
	oe.MustFact(701, 702)
	if _, err := oracle.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := relationRows(oracle.Output)
	if got := sessionRows(s2, b.Output); !equalRows(got, want) {
		t.Fatalf("warm-started fixpoint diverges from oracle: %d rows, want %d", len(got), len(want))
	}
}

// TestServeMaterializedMatrix is the concurrent-session differential matrix
// for materialized serving: TC and CSPA, across the interpreter and all
// three JIT backends, four sessions per cell. Each cell mixes every answer
// path across an Ingest/Publish boundary — a cold single-flight derivation
// racing three waiters on epoch 1, a session opened after materialization
// (seeded lookup), then a publish and a warm (or cold, for non-monotone
// programs) derivation plus memo hits on epoch 2 — and every answer must
// equal the sequential oracle for its epoch's fact set.
func TestServeMaterializedMatrix(t *testing.T) {
	builds := []struct {
		name  string
		build func() *analysis.Built
		delta func(b *analysis.Built)
	}{
		{
			"TC",
			func() *analysis.Built { return workloads.TransitiveClosure(analysis.HandOptimized, 50, 100, 37) },
			func(b *analysis.Built) {
				e := b.P.Relation("edge", 2)
				e.MustFact(0, 800)
				e.MustFact(800, 801)
			},
		},
		{
			"CSPA",
			func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(100, 41)) },
			func(b *analysis.Built) {
				a := b.P.Relation("Assign", 2)
				a.MustFact(0, 90)
				a.MustFact(90, 91)
			},
		},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"interp", core.Options{Indexed: true, Materialize: true}},
		{"jit", core.Options{Indexed: true, Materialize: true,
			JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}}},
		{"bytecode", core.Options{Indexed: true, Materialize: true,
			JIT: jit.Config{Backend: jit.BackendBytecode, Granularity: jit.GranSPJ}}},
		{"quotes", core.Options{Indexed: true, Materialize: true,
			JIT: jit.Config{Backend: jit.BackendQuotes, Granularity: jit.GranSPJ}}},
	}

	for _, wl := range builds {
		// Oracles for both epochs' fact sets.
		o1 := wl.build()
		if _, err := o1.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatalf("%s epoch-1 oracle: %v", wl.name, err)
		}
		want1 := relationRows(o1.Output)
		o2 := wl.build()
		wl.delta(o2)
		if _, err := o2.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatalf("%s epoch-2 oracle: %v", wl.name, err)
		}
		want2 := relationRows(o2.Output)

		for _, cfg := range configs {
			t.Run(wl.name+"/"+cfg.name, func(t *testing.T) {
				b := wl.build()
				srv, err := b.P.Serve(cfg.opts)
				if err != nil {
					t.Fatalf("serve: %v", err)
				}

				// Epoch 1: four concurrent sessions — one cold derivation,
				// three single-flight waiters.
				var wg sync.WaitGroup
				errCh := make(chan error, 8)
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sess, err := srv.Session()
						if err != nil {
							errCh <- fmt.Errorf("session %d: %v", i, err)
							return
						}
						defer sess.Close()
						if _, err := sess.Query(); err != nil {
							errCh <- fmt.Errorf("session %d: %v", i, err)
							return
						}
						if got := sessionRows(sess, b.Output); !equalRows(got, want1) {
							errCh <- fmt.Errorf("session %d: %d rows, oracle %d", i, len(got), len(want1))
						}
					}(i)
				}
				wg.Wait()

				// A session opened after materialization: seeded with the
				// pinned fixpoint, its query is a pure lookup.
				late, err := srv.Session()
				if err != nil {
					t.Fatal(err)
				}
				defer late.Close()
				if _, err := late.Query(); err != nil {
					t.Fatal(err)
				}
				if got := sessionRows(late, b.Output); !equalRows(got, want1) {
					t.Errorf("post-materialization session: %d rows, oracle %d", len(got), len(want1))
				}
				if d := srv.Stats().Derivations; d != 1 {
					t.Errorf("epoch 1 derivations = %d, want 1", d)
				}

				// Epoch 2: ingest the delta, publish, and query concurrently
				// again — one warm/cold derivation plus memo hits, while a
				// pinned epoch-1 session keeps its old answer.
				srv.Ingest(func() { wl.delta(b) })
				srv.Publish()
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sess, err := srv.Session()
						if err != nil {
							errCh <- fmt.Errorf("epoch-2 session %d: %v", i, err)
							return
						}
						defer sess.Close()
						if _, err := sess.Query(); err != nil {
							errCh <- fmt.Errorf("epoch-2 session %d: %v", i, err)
							return
						}
						if got := sessionRows(sess, b.Output); !equalRows(got, want2) {
							errCh <- fmt.Errorf("epoch-2 session %d: %d rows, oracle %d", i, len(got), len(want2))
						}
					}(i)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Error(err)
				}
				if _, err := late.Query(); err != nil {
					t.Fatal(err)
				}
				if got := sessionRows(late, b.Output); !equalRows(got, want1) {
					t.Errorf("pinned epoch-1 session drifted after publish: %d rows, want %d", len(got), len(want1))
				}
				st := srv.Stats()
				if st.Derivations != 2 {
					t.Errorf("total derivations = %d, want 2 (one per epoch)", st.Derivations)
				}
				if st.MemoHits < 6 {
					t.Errorf("memo hits = %d, want >= 6", st.MemoHits)
				}
				if st.MaterializedEpochs != 2 {
					t.Errorf("materialized epochs = %d, want 2", st.MaterializedEpochs)
				}
			})
		}
	}
}
