// Differential test harness: every workload runs under the full engine
// option matrix — {sequential, parallel, sharded} execution × {plan cache
// on/off} × {adaptive re-optimization on/off} × {JIT on/off} — and every
// configuration must derive exactly the result set of the sequential
// baseline. Datalog evaluation is confluent, so ANY divergence (a dropped
// delta bucket, a duplicated merge, a stale cached plan, a racy counter) is
// a bug this harness pins to one configuration.
//
// It lives in package core_test so it can drive the engine through the real
// workload builders (internal/workloads imports core).
package core_test

import (
	"fmt"
	"sort"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/storage"
	"carac/internal/workloads"
)

// execMode is the execution-strategy axis of the matrix.
type execMode struct {
	name string
	set  func(*core.Options)
}

var execModes = []execMode{
	{"sequential", func(*core.Options) {}},
	{"parallel", func(o *core.Options) { o.ParallelUnions = true }},
	{"sharded", func(o *core.Options) { o.Shards = 4 }},
	// Low threshold so the toy workloads exercise BOTH adaptive regimes:
	// bucketed fan-out plus parallel merge on the big early iterations,
	// sequential fast path on the tail.
	{"adaptive", func(o *core.Options) { o.Shards = 4; o.AdaptiveFanout = true; o.FanoutThreshold = 8 }},
	// Explicit pool sizes so the task fan-out, the bucketed merge and — in
	// the ×JIT cells — span-parameterized compiled units over the physical
	// delta store all engage regardless of the host's core count (the
	// Workers-less modes degrade to in-place evaluation on 1-CPU runners).
	{"sharded-pool", func(o *core.Options) { o.Shards = 4; o.Workers = 4 }},
	{"adaptive-pool", func(o *core.Options) {
		o.Shards = 4
		o.Workers = 4
		o.AdaptiveFanout = true
		o.FanoutThreshold = 2
	}},
	// Work-stealing cells: a threshold barely above 1 flips nearly every
	// fanned-out iteration to per-bucket claims, and Histograms exercises the
	// incremental maintenance paths under the drift-increment assertion (the
	// histogram invariant says maintenance never perturbs drift totals).
	{"sharded-steal", func(o *core.Options) {
		o.Shards = 4
		o.Workers = 4
		o.StealThreshold = 1.01
		o.Histograms = true
	}},
	{"adaptive-steal", func(o *core.Options) {
		o.Shards = 4
		o.Workers = 4
		o.AdaptiveFanout = true
		o.FanoutThreshold = 2
		o.StealThreshold = 1.01
		o.Histograms = true
	}},
}

// snapshotAll captures every predicate's derived set as sorted row strings,
// keyed by relation name — the canonical result-set fingerprint two runs are
// compared by.
func snapshotAll(p *core.Program) map[string][]string {
	out := make(map[string][]string)
	for _, pd := range p.Catalog().Preds() {
		rows := make([]string, 0, pd.Derived.Len())
		pd.Derived.Each(func(t []storage.Value) bool {
			rows = append(rows, fmt.Sprint(t))
			return true
		})
		sort.Strings(rows)
		out[pd.Name] = rows
	}
	return out
}

func diffSnapshots(t *testing.T, config string, want, got map[string][]string) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Errorf("%s: relation %s has %d tuples, baseline %d", config, name, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s: relation %s row %d = %s, baseline %s", config, name, i, g[i], w[i])
				break
			}
		}
	}
}

// driftTotals captures every predicate's monotone drift counter. Counters
// accumulate across Runs of one Program, so configurations are compared by
// per-run increment: after the first (baseline-capturing) run, every rerun
// applies an identical storage mutation sequence — same per-iteration delta
// sets, same clears, same swaps — so the increments must be byte-identical
// across the whole option matrix, physical sharding included. A divergence
// means an execution mode silently changed the freshness signal the plan
// cache gates on.
func driftTotals(p *core.Program) map[string]uint64 {
	out := make(map[string]uint64)
	for _, pd := range p.Catalog().Preds() {
		out[pd.Name] = pd.DriftCounter()
	}
	return out
}

func diffDriftIncrements(t *testing.T, config string, base, before, after map[string]uint64) {
	t.Helper()
	for name, want := range base {
		if got := after[name] - before[name]; got != want {
			t.Errorf("%s: predicate %s drift increment %d, baseline %d", config, name, got, want)
		}
	}
}

// TestDifferentialMatrix runs each workload once sequentially (the baseline)
// and then under every other cell of the option matrix, asserting identical
// sorted result sets.
func TestDifferentialMatrix(t *testing.T) {
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{"Fibonacci", func() *analysis.Built { return workloads.Fibonacci(analysis.HandOptimized, 15) }},
		{"FibonacciUnopt", func() *analysis.Built { return workloads.Fibonacci(analysis.Unoptimized, 12) }},
		{"Ackermann", func() *analysis.Built { return workloads.Ackermann(analysis.HandOptimized, 2, 3) }},
		{"Primes", func() *analysis.Built { return workloads.Primes(analysis.HandOptimized, 60) }},
		{"TransitiveClosure", func() *analysis.Built { return workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42) }},
		{"TransitiveClosureUnopt", func() *analysis.Built { return workloads.TransitiveClosure(analysis.Unoptimized, 60, 150, 7) }},
	}
	for _, w := range builds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			built := w.build()
			if _, err := built.P.Run(core.Options{Indexed: true}); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			baseline := snapshotAll(built.P)
			if n := len(baseline[built.Output.Name()]); n == 0 {
				t.Fatalf("baseline derived no %s tuples — workload too small to differentiate", built.Output.Name())
			}
			// Second sequential run: its drift increment is the rerun
			// fingerprint every matrix cell must reproduce (the first run
			// starts from a never-run Program and is not comparable).
			preBase := driftTotals(built.P)
			if _, err := built.P.Run(core.Options{Indexed: true}); err != nil {
				t.Fatalf("baseline rerun: %v", err)
			}
			baseDrift := driftTotals(built.P)
			for name, before := range preBase {
				baseDrift[name] -= before
			}
			diffSnapshots(t, "sequential-rerun", baseline, snapshotAll(built.P))
			for _, em := range execModes {
				for _, plancache := range []bool{false, true} {
					for _, adaptive := range []bool{false, true} {
						for _, useJIT := range []bool{false, true} {
							opts := core.Options{Indexed: true, PlanCache: plancache, AdaptivePlans: adaptive}
							em.set(&opts)
							if useJIT {
								opts.JIT = jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
							}
							config := fmt.Sprintf("%s/plancache=%v/adaptive=%v/jit=%v", em.name, plancache, adaptive, useJIT)
							before := driftTotals(built.P)
							if _, err := built.P.Run(opts); err != nil {
								t.Fatalf("%s: %v", config, err)
							}
							diffSnapshots(t, config, baseline, snapshotAll(built.P))
							diffDriftIncrements(t, config, baseDrift, before, driftTotals(built.P))
						}
					}
				}
			}
		})
	}
}

// TestShardFanoutEngages pins that Shards > 1 actually multiplies the
// scheduled subquery executions of a single-rule workload (each task covers
// one delta bucket) instead of silently degrading to rule-granular
// parallelism — while deriving the identical result set. This is the
// mechanical half of the BenchmarkShardedSpeedup acceptance story, testable
// on any machine regardless of core count.
func TestShardFanoutEngages(t *testing.T) {
	seq := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	rs, err := seq.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	sh := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	rh, err := sh.P.Run(core.Options{Indexed: true, Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rh.Interp.SPJRuns <= rs.Interp.SPJRuns {
		t.Fatalf("sharded run did not fan out: %d <= %d SPJ runs", rh.Interp.SPJRuns, rs.Interp.SPJRuns)
	}
	if rh.TotalFacts != rs.TotalFacts {
		t.Fatalf("sharded fan-out changed the result: %d facts vs %d", rh.TotalFacts, rs.TotalFacts)
	}
	// The hash must spread a realistic delta across buckets: after the run,
	// tc's Derived partition (same layout the deltas used) may not collapse
	// into one bucket.
	pd, _ := sh.P.Catalog().PredByName("tc")
	nonEmpty := 0
	for s := 0; s < 4; s++ {
		if pd.Derived.ShardLen(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("all %d tc tuples hashed into %d bucket(s)", pd.Derived.Len(), nonEmpty)
	}
}

// TestDifferentialIncremental re-checks the matrix's parallel and sharded
// cells after an incremental fact batch: facts added between runs rewind the
// catalog to the ground baseline and repartition on insert, exactly the
// cheap mid-stream re-partitioning adaptive systems depend on.
func TestDifferentialIncremental(t *testing.T) {
	built := workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 11)
	if _, err := built.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	// Incremental batch: a fresh hub node fanning out, skewing one bucket.
	edge := built.P.Relation("edge", 2)
	for i := 0; i < 25; i++ {
		edge.MustFact(59, i)
	}
	if _, err := built.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("baseline after batch: %v", err)
	}
	baseline := snapshotAll(built.P)
	lambdaSPJ := jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
	for _, opts := range []core.Options{
		{Indexed: true, ParallelUnions: true, PlanCache: true},
		{Indexed: true, Shards: 4, PlanCache: true},
		{Indexed: true, Shards: 8, AdaptivePlans: true, Workers: 2},
		{Indexed: true, Shards: 4, Workers: 2, Executor: interp.ExecPull},
		{Indexed: true, Shards: 3, Workers: 2, Executor: interp.ExecPull, PlanCache: true},
		{Indexed: true, Shards: 4, Workers: 2, AdaptiveFanout: true, FanoutThreshold: 4},
		{Indexed: true, Shards: 8, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 1, Executor: interp.ExecPull},
		// Physical × JIT cells: compiled bucket-span units over a partition
		// skewed by the incremental hub batch.
		{Indexed: true, Shards: 4, Workers: 4, PlanCache: true, JIT: lambdaSPJ},
		{Indexed: true, Shards: 8, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 4, JIT: lambdaSPJ},
	} {
		config := fmt.Sprintf("shards=%d/parallel=%v/exec=%v/jit=%v",
			opts.Shards, opts.ParallelUnions, opts.Executor, opts.JIT.Backend)
		if _, err := built.P.Run(opts); err != nil {
			t.Fatalf("%s: %v", config, err)
		}
		diffSnapshots(t, config, baseline, snapshotAll(built.P))
	}
}

// TestDifferentialWarmRerun is the harness's warm-rerun mode: every
// execution-mode × JIT cell runs TWICE on the same Program with SharedPlans
// on — the second run starts from the Program-lifetime plan store the first
// one populated. Both runs must derive exactly the sequential baseline's
// result set, and the second must show a nonzero cross-run hit rate (plan
// view, unit view, or both): artifacts genuinely survive the Run boundary in
// every configuration, not just the sequential one.
func TestDifferentialWarmRerun(t *testing.T) {
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{"Fibonacci", func() *analysis.Built { return workloads.Fibonacci(analysis.HandOptimized, 15) }},
		{"TransitiveClosure", func() *analysis.Built { return workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42) }},
	}
	for _, w := range builds {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			base := w.build()
			if _, err := base.P.Run(core.Options{Indexed: true}); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			baseline := snapshotAll(base.P)
			for _, em := range execModes {
				for _, useJIT := range []bool{false, true} {
					opts := core.Options{Indexed: true, SharedPlans: true}
					em.set(&opts)
					if useJIT {
						opts.JIT = jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
					}
					config := fmt.Sprintf("%s/jit=%v", em.name, useJIT)
					built := w.build()
					res1, err := built.P.Run(opts)
					if err != nil {
						t.Fatalf("%s run 1: %v", config, err)
					}
					diffSnapshots(t, config+"/run1", baseline, snapshotAll(built.P))
					res2, err := built.P.Run(opts)
					if err != nil {
						t.Fatalf("%s run 2: %v", config, err)
					}
					diffSnapshots(t, config+"/run2", baseline, snapshotAll(built.P))
					if res1.Plans.CrossRunHits+res1.Units.CrossRunHits != 0 {
						t.Errorf("%s: first run claims cross-run hits (%+v / %+v)", config, res1.Plans, res1.Units)
					}
					if res2.Plans.CrossRunHits+res2.Units.CrossRunHits == 0 {
						t.Errorf("%s: warm rerun served no cross-run hits (plans %+v, units %+v)",
							config, res2.Plans, res2.Units)
					}
				}
			}
		})
	}
}
