// Delete-oracle differential harness: insert/delete batch sequences applied
// through the streaming API (Program.Apply — counting + DRed incremental
// maintenance with a cold-recompute fallback) must leave the fixpoint
// byte-equal to a recompute-from-scratch oracle over the net surviving
// facts, across the execution-mode × JIT matrix. The oracle is the
// definition of deletion correctness; any divergence — an under-deleted
// zombie, an over-deleted tuple the rederivation round missed, a count
// mishandled by a layout transition — is pinned to one configuration and
// one batch.
package core_test

import (
	"fmt"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/jit"
	"carac/internal/storage"
	"carac/internal/workloads"
)

// streamOp is one operation of a transaction step: assert or retract tuple t
// in base relation rel.
type streamOp struct {
	rel string
	t   [2]int32
	del bool
}

func ins(rel string, a, b int32) streamOp { return streamOp{rel: rel, t: [2]int32{a, b}} }
func del(rel string, a, b int32) streamOp { return streamOp{rel: rel, t: [2]int32{a, b}, del: true} }

// streamScenario is one workload of the delete-oracle matrix: a rules-only
// program builder (the same builder serves the incremental program and every
// oracle rebuild) plus a deterministic batch sequence.
type streamScenario struct {
	name  string
	build func() *core.Program
	steps [][]streamOp
}

// tcRules builds the transitive-closure rules with no facts.
func tcRules() *core.Program {
	return workloads.TransitiveClosure(analysis.HandOptimized, 1, 0, 0).P
}

// cspaRules builds the CSPA rules (all five recursive rules plus the
// reflexive base rules) with no facts.
func cspaRules() *core.Program {
	return analysis.CSPA(analysis.HandOptimized, &datagen.CSPAFacts{}).P
}

// tcScenario: a chain 0→1→…→7 with chords that give some closure tuples a
// second derivation, so deletions exercise both true retraction (tuples that
// die for good) and DRed rederivation with cascades (tc(0,2) comes back from
// the chord 0→2 in the naive round; tc(0,3…) only via the seeded
// continuation).
func tcScenario() streamScenario {
	step0 := []streamOp{ins("edge", 0, 2), ins("edge", 2, 4)}
	for i := int32(0); i < 7; i++ {
		step0 = append(step0, ins("edge", i, i+1))
	}
	// Assert edge(3,4) a second time: one retraction must NOT remove it.
	step0 = append(step0, ins("edge", 3, 4))
	return streamScenario{
		name:  "TransitiveClosure",
		build: tcRules,
		steps: [][]streamOp{
			step0,
			// edge(1,2) dies; 0 still reaches 2 via the chord. edge(3,4)
			// loses one of two assertions and must survive. A co-batched
			// insertion rides the same continuation.
			{del("edge", 1, 2), del("edge", 3, 4), ins("edge", 7, 0)},
			// Second retraction of edge(3,4) kills it; 2→4 chord keeps the
			// tail reachable. Deleting a never-asserted edge is a no-op.
			{del("edge", 3, 4), del("edge", 5, 6), del("edge", 9, 9)},
			// Delete and re-insert the same tuple in one batch: net present.
			{del("edge", 0, 2), ins("edge", 0, 2), ins("edge", 4, 6)},
		},
	}
}

// cspaScenario: a small generated graph plus two hand-planted Assign edges
// sharing a source, so retracting one leaves the reflexive VaFlow/MAlias
// facts of that source with a surviving derivation — a guaranteed
// rederivation even if the generated graph has no redundancy.
func cspaScenario() streamScenario {
	facts := datagen.CSPAGraph(20, 7)
	var step0 []streamOp
	for _, e := range facts.Assign {
		step0 = append(step0, ins("Assign", e.Src, e.Dst))
	}
	for _, e := range facts.Derefr {
		step0 = append(step0, ins("Derefr", e.Src, e.Dst))
	}
	step0 = append(step0, ins("Assign", 100, 101), ins("Assign", 100, 102))
	return streamScenario{
		name:  "CSPA",
		build: cspaRules,
		steps: [][]streamOp{
			step0,
			{del("Assign", 100, 101), ins("Derefr", 100, 101)},
			{del("Assign", facts.Assign[0].Src, facts.Assign[0].Dst), del("Derefr", 100, 101)},
			{ins("Assign", 100, 101), del("Assign", 100, 102)},
		},
	}
}

// oracleSnapshots replays the batch sequence against a net-assertion
// multiset and recomputes every step's fixpoint from scratch with the
// sequential baseline engine.
func oracleSnapshots(t *testing.T, sc streamScenario) []map[string][]string {
	t.Helper()
	net := make(map[string]map[[2]int32]int)
	out := make([]map[string][]string, len(sc.steps))
	for si, step := range sc.steps {
		// Deletions apply before insertions — Tx semantics.
		for _, op := range step {
			if !op.del {
				continue
			}
			if m := net[op.rel]; m[op.t] > 0 {
				m[op.t]--
			}
		}
		for _, op := range step {
			if op.del {
				continue
			}
			m := net[op.rel]
			if m == nil {
				m = make(map[[2]int32]int)
				net[op.rel] = m
			}
			m[op.t]++
		}
		p := sc.build()
		for rel, m := range net {
			r := p.Relation(rel, 2)
			for tu, c := range m {
				if c > 0 {
					r.FactTuple([]storage.Value{tu[0], tu[1]})
				}
			}
		}
		if _, err := p.Run(core.Options{}); err != nil {
			t.Fatalf("%s oracle step %d: %v", sc.name, si, err)
		}
		out[si] = snapshotAll(p)
	}
	return out
}

func toTx(t *testing.T, p *core.Program, step []streamOp) *core.Tx {
	t.Helper()
	tx := p.NewTx()
	for _, op := range step {
		r := p.Relation(op.rel, 2)
		if op.del {
			tx.DeleteTuple(r, []storage.Value{op.t[0], op.t[1]})
		} else {
			tx.InsertTuple(r, []storage.Value{op.t[0], op.t[1]})
		}
	}
	return tx
}

// TestDeleteOracleMatrix is the acceptance matrix: every execution mode,
// with and without the JIT, applies each scenario's batch sequence
// incrementally and must match the recompute oracle byte-for-byte after
// every batch. The first batch is the cold bootstrap; every later batch —
// deletions included — must take the incremental path, with the DRed
// counters proving retraction and rederivation actually happened.
func TestDeleteOracleMatrix(t *testing.T) {
	for _, sc := range []streamScenario{tcScenario(), cspaScenario()} {
		want := oracleSnapshots(t, sc)
		for _, mode := range execModes {
			for _, withJIT := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/jit=%v", sc.name, mode.name, withJIT)
				t.Run(name, func(t *testing.T) {
					opts := core.Options{}
					mode.set(&opts)
					if withJIT {
						opts.JIT = jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}
					}
					p := sc.build()
					var retracted, rederived int64
					for si, step := range sc.steps {
						res, err := p.Apply(toTx(t, p, step), opts)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						if si == 0 && !res.Cold {
							t.Fatalf("bootstrap batch claimed the incremental path")
						}
						if si > 0 && res.Cold {
							t.Fatalf("step %d fell back to cold recompute on a monotone program", si)
						}
						diffSnapshots(t, fmt.Sprintf("%s step %d", name, si), want[si], snapshotAll(p))
						retracted += res.Interp.Retracted
						rederived += res.Interp.Rederived
					}
					if retracted == 0 {
						t.Error("no batch reported Stats.Retracted > 0")
					}
					if rederived == 0 {
						t.Error("no batch reported Stats.Rederived > 0")
					}
				})
			}
		}
	}
}

// TestApplyColdFallbacks pins the demotions: Naive mode and non-monotone
// programs (negation) must refuse the incremental path and still match the
// oracle through recompute.
func TestApplyColdFallbacks(t *testing.T) {
	t.Run("naive", func(t *testing.T) {
		sc := tcScenario()
		want := oracleSnapshots(t, sc)
		p := sc.build()
		for si, step := range sc.steps {
			res, err := p.Apply(toTx(t, p, step), core.Options{Naive: true})
			if err != nil {
				t.Fatalf("step %d: %v", si, err)
			}
			if !res.Cold {
				t.Fatalf("step %d: Naive mode took the incremental path", si)
			}
			diffSnapshots(t, fmt.Sprintf("naive step %d", si), want[si], snapshotAll(p))
		}
	})
	t.Run("negation", func(t *testing.T) {
		// unreach(x,y) :- node(x), node(y), !tc(x,y) — stratified negation:
		// deletions can CREATE derivations, exactly what DRed's monotone
		// premise excludes.
		build := func() *core.Program {
			p := core.NewProgram()
			node := p.Relation("node", 1)
			edge := p.Relation("edge", 2)
			tc := p.Relation("tc", 2)
			unreach := p.Relation("unreach", 2)
			x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
			p.MustRule(tc.A(x, y), edge.A(x, y))
			p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
			p.MustRule(unreach.A(x, y), node.A(x), node.A(y), core.Not(tc.A(x, y)))
			return p
		}
		p := build()
		node := p.Relation("node", 1)
		edge := p.Relation("edge", 2)
		tx := p.NewTx()
		for i := 0; i < 4; i++ {
			tx.InsertTuple(node, []storage.Value{storage.Value(i)})
		}
		tx.InsertTuple(edge, []storage.Value{0, 1})
		tx.InsertTuple(edge, []storage.Value{1, 2})
		if _, err := p.Apply(tx, core.Options{}); err != nil {
			t.Fatal(err)
		}
		// Deleting edge(1,2) must CREATE unreach(0,2)/unreach(1,2) — only a
		// recompute can do that.
		tx2 := p.NewTx()
		tx2.DeleteTuple(edge, []storage.Value{1, 2})
		res, err := p.Apply(tx2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Fatal("negation program took the incremental path")
		}
		unreach := p.Relation("unreach", 2)
		if !unreach.Contains(0, 2) || !unreach.Contains(1, 2) {
			t.Fatal("deletion did not create the negation-dependent tuples")
		}
	})
}

// TestApplyCountingSemantics pins the counting core on the public API: a
// doubly asserted fact survives one retraction, retracting a derived-only
// tuple is a no-op, and asserting an already-derived tuple keeps it alive
// after its original support is retracted (ground promotion).
func TestApplyCountingSemantics(t *testing.T) {
	p := tcRules()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)

	tx := p.NewTx()
	tx.InsertTuple(edge, []storage.Value{1, 2})
	tx.InsertTuple(edge, []storage.Value{1, 2}) // count 2
	tx.InsertTuple(edge, []storage.Value{2, 3})
	if _, err := p.Apply(tx, core.Options{}); err != nil {
		t.Fatal(err)
	}

	tx = p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{1, 2}) // count 2 → 1: survives
	tx.DeleteTuple(tc, []storage.Value{1, 3})   // derived-only: no-op
	tx.DeleteTuple(edge, []storage.Value{8, 9}) // absent: no-op
	res, err := p.Apply(tx, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold {
		t.Fatal("counting batch fell back to cold recompute")
	}
	if res.Retracted != 0 {
		t.Fatalf("count-gated batch physically removed %d rows", res.Retracted)
	}
	if !edge.Contains(1, 2) || !tc.Contains(1, 3) {
		t.Fatal("doubly asserted fact (or its closure) lost after one retraction")
	}

	// Promote the derived tuple tc(1,3) to a ground fact, then retract its
	// derivation: the assertion must keep it alive.
	tx = p.NewTx()
	tx.InsertTuple(tc, []storage.Value{1, 3})
	if _, err := p.Apply(tx, core.Options{}); err != nil {
		t.Fatal(err)
	}
	tx = p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{1, 2})
	if _, err := p.Apply(tx, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if edge.Contains(1, 2) {
		t.Fatal("edge(1,2) survived its final retraction")
	}
	if !tc.Contains(1, 3) {
		t.Fatal("ground-promoted tc(1,3) vanished with its old derivation")
	}
	if tc.Contains(1, 2) {
		t.Fatal("tc(1,2) not retracted")
	}
	// And retracting the assertion finally kills it.
	tx = p.NewTx()
	tx.DeleteTuple(tc, []storage.Value{1, 3})
	if _, err := p.Apply(tx, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if tc.Contains(1, 3) {
		t.Fatal("tc(1,3) survived retraction of its last assertion")
	}
}

// TestApplyInteropWithRun pins the handoff in both directions: a Run after
// incremental Applys sees exactly the net ground facts (the arena-prefix
// invariant Apply maintains is what Run's baseline rewind consumes), and an
// Apply after that Run resumes incrementally.
func TestApplyInteropWithRun(t *testing.T) {
	sc := tcScenario()
	want := oracleSnapshots(t, sc)
	p := sc.build()
	for si, step := range sc.steps {
		if _, err := p.Apply(toTx(t, p, step), core.Options{}); err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
	}
	if _, err := p.Run(core.Options{}); err != nil {
		t.Fatal(err)
	}
	diffSnapshots(t, "run-after-apply", want[len(want)-1], snapshotAll(p))

	edge := p.Relation("edge", 2)
	tx := p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{6, 7})
	res, err := p.Apply(tx, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold {
		t.Fatal("Apply after Run fell back to cold recompute")
	}
	if res.Retracted == 0 {
		t.Fatal("retraction of a live edge removed nothing")
	}
	tc := p.Relation("tc", 2)
	if tc.Contains(6, 7) {
		t.Fatal("tc(6,7) survived retraction of its only support")
	}
}

// FuzzRetraction cross-checks random batch sequences against the recompute
// oracle on the TC rules: edges over a small node domain keep collision —
// and therefore rederivation — frequent. The corpus seeds cover the three
// interesting regimes (sparse, dense, delete-heavy).
func FuzzRetraction(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(42), uint8(5))
	f.Add(uint64(0xdeadbeef), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, nBatches uint8) {
		batches := int(nBatches%6) + 2
		s := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		next := func() uint64 {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		p := tcRules()
		edge := p.Relation("edge", 2)
		net := make(map[[2]int32]int)
		for b := 0; b < batches; b++ {
			tx := p.NewTx()
			nOps := int(next()%12) + 1
			type op struct {
				t   [2]int32
				del bool
			}
			var ops []op
			for i := 0; i < nOps; i++ {
				a, c := int32(next()%8), int32(next()%8)
				if a == c {
					continue
				}
				ops = append(ops, op{t: [2]int32{a, c}, del: next()%3 == 0})
			}
			for _, o := range ops { // deletions first: Tx semantics
				if o.del {
					tx.DeleteTuple(edge, []storage.Value{o.t[0], o.t[1]})
					if net[o.t] > 0 {
						net[o.t]--
					}
				}
			}
			for _, o := range ops {
				if !o.del {
					tx.InsertTuple(edge, []storage.Value{o.t[0], o.t[1]})
					net[o.t]++
				}
			}
			if _, err := p.Apply(tx, core.Options{Shards: 2, Workers: 2}); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
			oracle := tcRules()
			oEdge := oracle.Relation("edge", 2)
			for tu, c := range net {
				if c > 0 {
					oEdge.FactTuple([]storage.Value{tu[0], tu[1]})
				}
			}
			if _, err := oracle.Run(core.Options{}); err != nil {
				t.Fatalf("oracle batch %d: %v", b, err)
			}
			diffSnapshots(t, fmt.Sprintf("seed %d batch %d", seed, b), snapshotAll(oracle), snapshotAll(p))
		}
	})
}
