package core

import (
	"time"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/optimizer"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// execEngine is one assembled execution context over a catalog: registered
// access artifacts, AOT-staged IR, an optional JIT controller, and a
// configured interpreter. Program.Run builds a fresh engine per call over
// the Program's own catalog; serving sessions build one engine per session
// over their private epoch-seeded catalog and reuse it across queries — the
// compiled units and cached plans it produces are catalog-independent
// (resolved through the interpreter's catalog at invocation time), so both
// shapes share one Program-lifetime plan store.
type execEngine struct {
	cat   *storage.Catalog
	root  *ir.ProgramOp
	opts  Options
	store *plancache.Store
	ctrl  *jit.Controller
	in    *interp.Interp
	plans *plancache.Cache[*interp.Plan]
}

// registerArtifacts applies the permanent per-relation registrations opts
// asks for — hash indexes, composite indexes, histograms — to cat.
func registerArtifacts(cat *storage.Catalog, prog *ast.Program, opts Options) {
	if opts.Indexed {
		for pid, cols := range ir.JoinKeyColumns(prog) {
			cat.Pred(pid).BuildIndexes(cols)
		}
		if opts.CompositeIndexes {
			for pid, sets := range ir.JoinKeySignatures(prog) {
				cat.Pred(pid).BuildCompositeIndexes(sets)
			}
		}
	}
	// Histogram registration is permanent like index registration, and must
	// precede shard configuration: ConfigureShardsPhysical propagates
	// registered columns into the per-bucket sub-relations, which is what
	// makes the per-shard histogram variants readable.
	if opts.Histograms {
		for pid, cols := range ir.JoinKeyColumns(prog) {
			cat.Pred(pid).BuildHistograms(cols)
		}
	}
}

// newExecEngine assembles an engine over cat for the lowered program root.
// store is the shared plan store (nil for per-run caches); aotSrc is the
// statistics source AOTFactsAndRules orders against — the live catalog for
// Run, the pinned epoch's snapshot for serving sessions, so session plans
// are staged against boundary-consistent statistics.
func newExecEngine(cat *storage.Catalog, prog *ast.Program, root *ir.ProgramOp, opts Options, store *plancache.Store, aotSrc stats.Source) (*execEngine, error) {
	registerArtifacts(cat, prog, opts)

	// Ahead-of-time ("macro") staging: freeze initial orders before timing.
	if opts.AOT != AOTNone || opts.AOTStats != nil {
		var src stats.Source = stats.Unit{}
		if opts.AOT == AOTFactsAndRules {
			src = aotSrc
		}
		if opts.AOTStats != nil {
			src = opts.AOTStats
		}
		var aotErr error
		ir.Walk(root, func(o ir.Op) {
			if spj, ok := o.(*ir.SPJOp); ok {
				if _, rerr := optimizer.Reorder(spj, src, opts.JIT.Optimizer); rerr != nil && aotErr == nil {
					aotErr = rerr
				}
			}
		})
		if aotErr != nil {
			return nil, aotErr
		}
	}

	var ctrl *jit.Controller
	var ictrl interp.Controller
	if opts.JIT.Backend != jit.BackendOff {
		if store != nil {
			ctrl = jit.NewShared(cat, root, opts.JIT, store)
		} else {
			ctrl = jit.New(cat, root, opts.JIT)
		}
		ictrl = ctrl
	}
	in := interp.New(cat, ictrl)
	in.Executor = opts.Executor
	in.Parallel = opts.ParallelUnions
	in.Workers = opts.Workers
	in.AdaptiveFanout = opts.AdaptiveFanout
	in.FanoutThreshold = opts.FanoutThreshold
	in.StealThreshold = opts.StealThreshold
	if opts.Histograms {
		live := stats.Catalog{Cat: cat}
		oopts := opts.JIT.Optimizer
		in.Estimate = func(spj *ir.SPJOp) float64 {
			return optimizer.EstimateRows(spj, live, oopts)
		}
	}
	shards := opts.Shards
	if opts.AdaptiveFanout && shards <= 1 {
		shards = 8
	}
	if shards > 1 {
		// Partition every predicate on its planned join key (first join
		// column; column 0 for predicates never joined on) so the sharded
		// fan-out serves each task's delta slice from an exact bucket list.
		keyCols := make(map[storage.PredID]int)
		for pid, cols := range ir.JoinKeyColumns(prog) {
			if len(cols) > 0 {
				keyCols[pid] = cols[0]
			}
		}
		// Physical backing store for every sharded run: the merge barrier
		// runs bucketed, Derived membership probes are bucket-local, and the
		// compiled backends read the same bucket-local surface (PhysSubs) —
		// with a JIT attached the pool's tasks execute span-parameterized
		// compiled units, so sharding and compilation compose.
		cat.ConfigureShardsPhysical(shards, keyCols)
		in.Parallel = true
		in.Shards = shards
	} else {
		// Drop stale partitions so repeated Runs of one Program stay
		// independent of an earlier sharded configuration.
		cat.ConfigureShards(0, nil)
	}
	var plans *plancache.Cache[*interp.Plan]
	if opts.PlanCache || opts.AdaptivePlans || opts.SharedPlans {
		pol := plancache.Policy{Threshold: opts.PlanCacheDrift}
		if store != nil {
			plans = plancache.View[*interp.Plan](store, plancache.ViewConfig{Class: plancache.ClassPlans, Policy: pol})
		} else {
			plans = plancache.New[*interp.Plan](pol)
		}
		in.Plans = plans
		if opts.AdaptivePlans {
			live := stats.Catalog{Cat: cat}
			oopts := opts.JIT.Optimizer
			in.Reopt = func(spj *ir.SPJOp) bool {
				changed, err := optimizer.Reorder(spj, live, oopts)
				return err == nil && changed
			}
		}
	}
	return &execEngine{cat: cat, root: root, opts: opts, store: store, ctrl: ctrl, in: in, plans: plans}, nil
}

// query runs the engine's program to fixpoint once and assembles the
// Result. oneShot marks a Run-owned engine: its controller is closed before
// the JIT statistics are read, so asynchronous compiles finish counting.
// Session-owned engines keep the controller alive across queries and report
// the per-query delta of its counters instead.
//
// Under SharedPlans the Plans/Units deltas subtract the store's counters at
// query start; with concurrent sessions active the window may include
// neighbors' store activity (the counters are store-cumulative and
// monotone), so per-query attribution is approximate there — exact totals
// live on the store's ClassStats.
func (e *execEngine) query(timeout time.Duration, oneShot bool) (*Result, error) {
	var planBase, unitBase plancache.Stats
	if e.store != nil {
		planBase = e.store.ClassStats(plancache.ClassPlans)
		unitBase = e.store.ClassStats(plancache.ClassUnits)
	}
	var jitBase jit.Stats
	if e.ctrl != nil && !oneShot {
		jitBase = e.ctrl.Stats()
	}
	e.in.ResetCancel()
	if timeout > 0 {
		timer := time.AfterFunc(timeout, e.in.Cancel)
		defer timer.Stop()
	}

	t0 := time.Now()
	if err := e.in.Run(e.root); err != nil {
		return nil, err
	}
	dt := time.Since(t0)

	res := &Result{
		Duration:   dt,
		Interp:     e.in.TakeStats(),
		TotalFacts: e.cat.TotalDerived(),
	}
	if e.plans != nil {
		res.Plans = e.plans.Stats()
		if e.store != nil {
			res.Plans = res.Plans.Sub(planBase)
		}
	}
	if e.ctrl != nil {
		if oneShot {
			e.ctrl.Close()
			res.JIT = e.ctrl.Stats()
		} else {
			res.JIT = subJIT(e.ctrl.Stats(), jitBase)
		}
		if e.store != nil {
			res.Units = e.store.ClassStats(plancache.ClassUnits).Sub(unitBase)
		} else {
			res.Units = e.ctrl.UnitStats()
		}
	}
	return res, nil
}

// setSeedDelta installs (fn non-nil) or clears the interpreter's warm-start
// delta seeding hook for the engine's next query: with it set, each ScanOp
// asks fn for the rows that must re-enter semi-naive evaluation instead of
// pushing the whole pre-seeded Derived database through the first iteration.
// The serving layer pairs it with an ir.LowerWarm root when materializing an
// epoch from the previous epoch's fixpoint.
func (e *execEngine) setSeedDelta(fn func(storage.PredID, *storage.Relation) bool) {
	e.in.SeedDelta = fn
}

// close releases the engine's controller (idempotent).
func (e *execEngine) close() {
	if e.ctrl != nil {
		e.ctrl.Close()
	}
}

// subJIT returns the field-wise difference a - b of two JIT counter
// snapshots (the per-query window of a session-lived controller).
func subJIT(a, b jit.Stats) jit.Stats {
	return jit.Stats{
		Compilations: a.Compilations - b.Compilations,
		CompileTime:  a.CompileTime - b.CompileTime,
		CacheHits:    a.CacheHits - b.CacheHits,
		StaleDrops:   a.StaleDrops - b.StaleDrops,
		Reorders:     a.Reorders - b.Reorders,
		Switchovers:  a.Switchovers - b.Switchovers,
		Failures:     a.Failures - b.Failures,
	}
}
