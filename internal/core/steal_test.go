// Tests for skew-aware execution: histogram statistics feeding the
// optimizer, skew detection flipping fanned-out iterations to work-stealing
// bucket claims, and the stolen-bucket evaluation reproducing the sequential
// fixpoint exactly. These are the 1-CPU acceptance pins — mechanism tests
// with explicit Workers, not wall-clock measurements.
package core_test

import (
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/workloads"
)

// TestStealEngages is the tentpole acceptance pin: on the skewed-graph
// workload with Workers >= 2, skew is detected (SkewIters > 0), stealing
// spans are issued (Steals > 0 — cursor-path claims beyond the remembered
// affinity), and the derived result set is identical to the sequential
// oracle's.
func TestStealEngages(t *testing.T) {
	seq := workloads.SkewedGraph(analysis.HandOptimized, 100, 150, 3, 42)
	sres, err := seq.P.Run(core.Options{Indexed: true})
	if err != nil {
		t.Fatal(err)
	}
	baseline := snapshotAll(seq.P)

	built := workloads.SkewedGraph(analysis.HandOptimized, 100, 150, 3, 42)
	res, err := built.P.Run(core.Options{
		Indexed: true, Shards: 8, Workers: 4,
		AdaptiveFanout: true, FanoutThreshold: 1,
		Histograms:     true,
		StealThreshold: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interp.SkewIters == 0 {
		t.Fatal("skewed workload never detected as skewed (SkewIters = 0)")
	}
	if res.Interp.Steals == 0 {
		t.Fatal("no cursor-path bucket claims recorded (Steals = 0)")
	}
	if res.Interp.EstimatedRows == 0 {
		t.Fatal("histograms on but no join-size estimates recorded")
	}
	if res.TotalFacts != sres.TotalFacts {
		t.Fatalf("stealing run derived %d facts, sequential %d", res.TotalFacts, sres.TotalFacts)
	}
	diffSnapshots(t, "steal", baseline, snapshotAll(built.P))
}

// TestStealComposesWithJIT: a stealing iteration's single-bucket claims run
// through the same span-parameterized ShardUnit interface as static spans,
// so compiled units execute stolen buckets too — result set and compiled
// execution both pinned.
func TestStealComposesWithJIT(t *testing.T) {
	seq := workloads.SkewedGraph(analysis.HandOptimized, 100, 150, 3, 42)
	if _, err := seq.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	baseline := snapshotAll(seq.P)

	built := workloads.SkewedGraph(analysis.HandOptimized, 100, 150, 3, 42)
	res, err := built.P.Run(core.Options{
		Indexed: true, Shards: 8, Workers: 4, PlanCache: true,
		AdaptiveFanout: true, FanoutThreshold: 1,
		Histograms:     true,
		StealThreshold: 1.2,
		JIT:            lambdaSPJ,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interp.SkewIters == 0 {
		t.Fatal("JIT run never detected skew")
	}
	if res.Interp.Compiled == 0 {
		t.Fatal("no compiled execution under stealing — stolen buckets fell back to interpretation")
	}
	diffSnapshots(t, "steal+jit", baseline, snapshotAll(built.P))
}

// TestStealAffinityAcrossIterations: with stealing engaged over consecutive
// iterations, affinity-pass claims (remembered assignments, not counted as
// Steals) must appear — i.e. Steals stays below the total number of claimed
// buckets across skewed iterations. A lower bound on the mechanism: the
// first skewed iteration claims every bucket through the cursor, so Steals
// is nonzero, but affinity re-claims keep it from growing one-for-one.
func TestStealAffinityAcrossIterations(t *testing.T) {
	built := workloads.SkewedGraph(analysis.HandOptimized, 150, 250, 3, 7)
	res, err := built.P.Run(core.Options{
		Indexed: true, Shards: 8, Workers: 2,
		AdaptiveFanout: true, FanoutThreshold: 1,
		StealThreshold: 1.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interp.SkewIters < 2 {
		t.Skipf("workload only produced %d skewed iterations; affinity needs 2+", res.Interp.SkewIters)
	}
	if res.Interp.Steals == 0 {
		t.Fatal("no steals across skewed iterations")
	}
}

// FuzzStealRouting mirrors FuzzJITShardRouting for the stealing path:
// arbitrary edge lists evaluate transitive closure with a steal threshold
// low enough to flip every fanned-out iteration to per-bucket claims, and
// must reproduce the sequential fixpoint. Run the short-fuzz CI job with:
// go test -fuzz=FuzzStealRouting -fuzztime=20s ./internal/core/
func FuzzStealRouting(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 2, 3, 3, 4, 4, 1})
	f.Add(uint8(7), []byte{0, 0, 1, 0, 200, 200, 5, 9})
	f.Add(uint8(2), []byte{9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3})
	f.Fuzz(func(t *testing.T, nshards uint8, data []byte) {
		shards := 2 + int(nshards)%7
		if len(data) > 64 {
			data = data[:64]
		}
		build := func() *core.Program {
			p := core.NewProgram()
			edge := p.Relation("edge", 2)
			tc := p.Relation("tc", 2)
			x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
			p.MustRule(tc.A(x, y), edge.A(x, y))
			p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
			for i := 0; i+1 < len(data); i += 2 {
				edge.MustFact(int(data[i])%32, int(data[i+1])%32)
			}
			return p
		}
		sp := build()
		sres, err := sp.Run(core.Options{Indexed: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, useJIT := range []bool{false, true} {
			jp := build()
			opts := core.Options{
				Indexed: true, Shards: shards, Workers: 4, FanoutThreshold: 1,
				Histograms:     true,
				StealThreshold: 1.01,
			}
			if useJIT {
				opts.JIT = lambdaSPJ
			}
			jres, err := jp.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if jres.TotalFacts != sres.TotalFacts {
				t.Fatalf("shards=%d jit=%v: %d facts, sequential %d", shards, useJIT, jres.TotalFacts, sres.TotalFacts)
			}
			want := snapshotAll(sp)
			got := snapshotAll(jp)
			for name, rows := range want {
				g := got[name]
				if len(g) != len(rows) {
					t.Fatalf("shards=%d jit=%v: relation %s has %d tuples, sequential %d", shards, useJIT, name, len(g), len(rows))
				}
				for i := range rows {
					if g[i] != rows[i] {
						t.Fatalf("shards=%d jit=%v: relation %s row %d = %s, sequential %s", shards, useJIT, name, i, g[i], rows[i])
					}
				}
			}
		}
	})
}
