package core

// Streaming ingestion: Program.Apply takes a batched transaction of fact
// insertions and deletions and brings the derived fixpoint up to date —
// incrementally when it can, from scratch when it must.
//
// The incremental path is counting + DRed (delete-and-rederive,
// Gupta/Mumick/Subrahmanian). Ground facts carry per-row assertion counts
// (storage.EnableCounts): a deletion only becomes real when a count reaches
// zero, so redundant assertions never trigger derived work at all. The facts
// that do disappear seed the over-delete closure (interp.OverDelete over
// ir.LowerRetract shapes, evaluated against the OLD database), the candidate
// rows are removed in one batched compaction per relation
// (storage.DeleteRows), one naive rederivation round resurrects candidates
// that still hold (interp.Rederive), and a single monotone warm-start
// continuation (ir.LowerWarm + SeedDelta) carries both cascading
// rederivations and the transaction's insertions to the new fixpoint. This
// is sound because after removal the database under-approximates the new
// fixpoint and every removed-but-still-derivable or newly inserted tuple is
// in the seeded deltas.
//
// The incremental path requires a standing fixpoint and a monotone program.
// Everything else — first Apply, stratified negation or aggregation, Naive
// mode, a failed prior run — takes the cold path: rewind to the ground
// baseline, apply the transaction to the ground facts (still count-gated),
// and rerun the full derivation. Both paths leave the Program in the exact
// state a fresh Run over the post-transaction facts would produce — the
// property the differential harness pins.

import (
	"fmt"
	"sort"
	"time"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Tx is a batched transaction of fact insertions and deletions against one
// Program. Build it with NewTx, fill it with Insert/Delete, and hand it to
// Program.Apply (or Server.IngestTx). A Tx is a pair of multisets, not a
// sequence: deletions apply before insertions, so deleting and inserting the
// same tuple in one Tx leaves it asserted. Deleting a fact that was never
// asserted (including tuples that are only derived) is a no-op.
type Tx struct {
	p    *Program
	ins  map[storage.PredID][][]storage.Value
	dels map[storage.PredID][][]storage.Value
	// insOrder/delOrder keep first-touch predicate order so application is
	// deterministic regardless of map iteration.
	insOrder []storage.PredID
	delOrder []storage.PredID
	nIns     int
	nDel     int
}

// NewTx returns an empty transaction against p.
func (p *Program) NewTx() *Tx {
	return &Tx{
		p:    p,
		ins:  make(map[storage.PredID][][]storage.Value),
		dels: make(map[storage.PredID][][]storage.Value),
	}
}

// Insert adds one fact assertion (arguments as in Relation.Fact) to the
// transaction.
func (t *Tx) Insert(r *Relation, args ...any) error {
	tuple, err := r.encode(args)
	if err != nil {
		return err
	}
	t.InsertTuple(r, tuple)
	return nil
}

// Delete adds one fact retraction (arguments as in Relation.Fact) to the
// transaction.
func (t *Tx) Delete(r *Relation, args ...any) error {
	tuple, err := r.encode(args)
	if err != nil {
		return err
	}
	t.DeleteTuple(r, tuple)
	return nil
}

// InsertTuple adds a pre-encoded assertion (fast path for loaders).
func (t *Tx) InsertTuple(r *Relation, tuple []storage.Value) {
	if _, ok := t.ins[r.id]; !ok {
		t.insOrder = append(t.insOrder, r.id)
	}
	t.ins[r.id] = append(t.ins[r.id], tuple)
	t.nIns++
}

// DeleteTuple adds a pre-encoded retraction (fast path for loaders).
func (t *Tx) DeleteTuple(r *Relation, tuple []storage.Value) {
	if _, ok := t.dels[r.id]; !ok {
		t.delOrder = append(t.delOrder, r.id)
	}
	t.dels[r.id] = append(t.dels[r.id], tuple)
	t.nDel++
}

// HasDeletes reports whether the transaction retracts anything.
func (t *Tx) HasDeletes() bool { return t.nDel > 0 }

// Size returns the number of operations in the transaction.
func (t *Tx) Size() int { return t.nIns + t.nDel }

// ApplyResult reports one transaction's application.
type ApplyResult struct {
	// Result is the derivation (or continuation) outcome; its Interp stats
	// include Retracted/Rederived for the incremental path.
	*Result
	// Latency is the end-to-end wall time of Apply.
	Latency time.Duration
	// Inserted counts assertions applied; Deleted counts retractions whose
	// assertion count reached zero (redundant retractions are no-ops).
	Inserted int
	Deleted  int
	// Retracted counts rows physically removed across all relations — the
	// zero-count ground facts plus over-deleted derived rows that were not
	// rederived. Rederived counts candidates resurrected by the DRed round.
	Retracted int
	Rederived int
	// Cold reports that the transaction was applied by full recomputation
	// (no standing fixpoint, non-monotone program, or Naive mode) rather
	// than the incremental counting/DRed path.
	Cold bool
}

// Apply applies tx and brings the fixpoint up to date under opts, preferring
// the incremental counting/DRed path and falling back to a cold recompute
// (ApplyResult.Cold). Serializes with Run and Serve on the Program's run
// mutex; the transaction itself is applied atomically with respect to them.
func (p *Program) Apply(tx *Tx, opts Options) (*ApplyResult, error) {
	if tx == nil || tx.p != p {
		return nil, fmt.Errorf("core: Apply of a transaction built for a different Program")
	}
	start := time.Now()
	if opts.Histograms {
		opts.JIT.Optimizer.UseHistograms = true
	}
	if opts.CacheDir != "" {
		opts.SharedPlans = true
	}
	prog, root, err := p.lowered(opts)
	if err != nil {
		return nil, err
	}

	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.enableCountsLocked()

	// The incremental path needs a standing fixpoint to maintain and
	// retraction/continuation lowerings, which exist only for monotone
	// programs. LowerWarm/LowerRetract errors are demotions, not failures —
	// the cold path below handles every program Run can.
	res := &ApplyResult{}
	if p.frozen && !p.baselineClean && p.haveFixpoint && !opts.Naive && monotoneProgram(prog) {
		warmRoot, werr := ir.LowerWarm(prog)
		rules, rerr := ir.LowerRetract(prog)
		if werr == nil && rerr == nil {
			r, err := p.applyWarmLocked(tx, prog, warmRoot, rules, opts, res)
			if err != nil {
				return nil, err
			}
			res.Result = r
			res.Latency = time.Since(start)
			return res, nil
		}
	}

	// Cold path: rewind to the ground baseline, apply the transaction to the
	// ground facts (count-gated, one DeleteRows compaction per relation),
	// and derive from scratch.
	res.Cold = true
	p.ensureFrozenLocked()
	p.ensureBaseline()
	for _, pid := range tx.delOrder {
		pd := p.cat.Pred(pid)
		var dead [][]storage.Value
		for _, t := range tx.dels[pid] {
			if rem, ok := pd.Derived.DecRef(t); ok {
				res.Deleted++
				if rem == 0 {
					dead = append(dead, t)
				}
			}
		}
		removed, below := pd.Derived.DeleteRows(dead, p.baseLens[pid])
		p.baseLens[pid] -= below
		res.Retracted += removed
	}
	for _, pid := range tx.insOrder {
		pd := p.cat.Pred(pid)
		for _, t := range tx.ins[pid] {
			if pd.Derived.IncRef(t) {
				p.baseLens[pid]++
			}
			res.Inserted++
		}
	}
	r, err := p.runLocked(prog, root, opts)
	if err != nil {
		return nil, err
	}
	r.Interp.Retracted += int64(res.Retracted)
	res.Result = r
	res.Latency = time.Since(start)
	return res, nil
}

// applyWarmLocked is the incremental path. Derived currently holds a full
// fixpoint; afterwards it holds the fixpoint of the post-transaction facts.
func (p *Program) applyWarmLocked(tx *Tx, prog *ast.Program, warmRoot *ir.ProgramOp, rules []ir.RetractRule, opts Options, res *ApplyResult) (*Result, error) {
	// Epoch discipline matches Run: each applied transaction is a boundary.
	p.cat.AdvanceEpoch()
	var store *plancache.Store
	if opts.SharedPlans {
		store = p.sharedStore(opts)
		store.BumpGeneration()
	}
	eng, err := newExecEngine(p.cat, prog, warmRoot, opts, store, stats.Catalog{Cat: p.cat})
	if err != nil {
		return nil, err
	}
	defer eng.close()
	p.ensurePersistLocked(opts)

	// From here on Derived is mutated away from the old fixpoint; only a
	// completed continuation restores the invariant.
	p.haveFixpoint = false

	// 1. Count-gated retraction: only assertions that reach count zero seed
	// the over-delete. Non-ground tuples (absent, or present only as derived
	// rows beyond the ground watermark) are no-ops by definition.
	seeds := make(map[storage.PredID][][]storage.Value)
	for _, pid := range tx.delOrder {
		pd := p.cat.Pred(pid)
		for _, t := range tx.dels[pid] {
			row, ok := pd.Derived.RowOf(t)
			if !ok || int(row) >= p.baseLens[pid] {
				continue
			}
			rem, ok := pd.Derived.DecRef(t)
			if !ok {
				continue
			}
			res.Deleted++
			if rem == 0 {
				seeds[pid] = append(seeds[pid], t)
			}
		}
	}

	// 2. Over-delete closure against the old database. Ground facts whose
	// count is still positive are self-supporting: never candidates.
	doomed := eng.in.OverDelete(rules, seeds, func(pid storage.PredID, t []storage.Value) bool {
		pd := p.cat.Pred(pid)
		row, ok := pd.Derived.RowOf(t)
		return ok && int(row) < p.baseLens[pid] && pd.Derived.Count(t) > 0
	})

	// 3. Physical removal, one batched compaction per relation, shrinking
	// the ground watermark by the prefix rows that died.
	pids := make([]storage.PredID, 0, len(doomed))
	for pid := range doomed {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		removed, below := p.cat.Pred(pid).Derived.DeleteRows(doomed[pid], p.baseLens[pid])
		p.baseLens[pid] -= below
		res.Retracted += removed
		eng.in.Stats.Retracted += int64(removed)
	}

	// 4. Rederivation round over the reduced database: candidates that still
	// have an all-surviving one-step derivation come back (as derived rows —
	// their ground assertions, if any, are gone).
	seedRows := make(map[storage.PredID][][]storage.Value)
	for pid, ts := range eng.in.Rederive(rules, doomed) {
		pd := p.cat.Pred(pid)
		for _, t := range ts {
			pd.Derived.Insert(t)
			res.Rederived++
		}
		seedRows[pid] = append(seedRows[pid], ts...)
	}

	// 5. Insertions: splice new assertions into the ground prefix
	// (promoting already-derived tuples), keeping the arena prefix
	// invariant the cold path's rewind depends on.
	for _, pid := range tx.insOrder {
		batch := tx.ins[pid]
		added, promoted := p.cat.Pred(pid).Derived.AssertAt(batch, p.baseLens[pid])
		p.baseLens[pid] += len(added) + promoted
		res.Inserted += len(batch)
		seedRows[pid] = append(seedRows[pid], added...)
	}

	// 6. One monotone continuation: the rederived and newly inserted rows
	// seed the deltas; semi-naive evaluation carries cascading
	// rederivations and insertion consequences to the new fixpoint.
	eng.setSeedDelta(func(pid storage.PredID, dst *storage.Relation) bool {
		for _, t := range seedRows[pid] {
			dst.Insert(t)
		}
		return true
	})
	r, err := eng.query(opts.Timeout, true)
	if err != nil {
		return nil, err
	}
	p.haveFixpoint = true
	p.flushPersistLocked(store, stats.CaptureSnapshot(p.cat))
	return r, nil
}

// enableCountsLocked flips every Derived relation to counted mode
// (idempotent; counts survive layout transitions and compactions).
func (p *Program) enableCountsLocked() {
	if p.countsReady {
		return
	}
	for _, pd := range p.cat.Preds() {
		pd.Derived.EnableCounts()
	}
	p.countsReady = true
}

// ensureFrozenLocked freezes the rule set and captures the ground baseline
// if no Run has done so yet — Apply may legally be a Program's first
// derivation.
func (p *Program) ensureFrozenLocked() {
	if p.frozen {
		return
	}
	p.frozen = true
	p.baseLens = make([]int, p.cat.NumPreds())
	for i, pd := range p.cat.Preds() {
		p.baseLens[i] = pd.Derived.Len()
	}
	p.baselineClean = true
}
