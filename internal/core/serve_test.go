// Serving-layer tests: the concurrent-session differential mode (N sessions
// over one Program must each equal the sequential oracle, interpreted and
// JIT-compiled, under -race), the epoch/generation protocol pins, and the
// single-Run race regressions the serving work flushed out.
package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/datagen"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/storage"
	"carac/internal/workloads"
)

// sessionRows snapshots a session's derived rows for one relation as sorted
// strings, comparable against a sequential oracle's relationRows.
func sessionRows(sess *core.Session, r *core.Relation) []string {
	rows := make([]string, 0, sess.Len(r))
	sess.Each(r, func(t []storage.Value) bool {
		rows = append(rows, fmt.Sprint(t))
		return true
	})
	sort.Strings(rows)
	return rows
}

func relationRows(r *core.Relation) []string {
	rows := make([]string, 0, r.Len())
	r.Each(func(t []storage.Value) bool {
		rows = append(rows, fmt.Sprint(t))
		return true
	})
	sort.Strings(rows)
	return rows
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentRunGuard is the -race regression for the run mutex:
// concurrent Run invocations on one Program used to race on the
// frozen/baseLens/baselineClean baseline capture and silently corrupt the
// ground-fact baseline. With the guard they serialize; every Run (including
// a final sequential one) must produce the oracle result.
func TestConcurrentRunGuard(t *testing.T) {
	oracle := workloads.TransitiveClosure(analysis.HandOptimized, 40, 80, 7)
	if _, err := oracle.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	want := relationRows(oracle.Output)

	b := workloads.TransitiveClosure(analysis.HandOptimized, 40, 80, 7)
	const goroutines, runs = 4, 3
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("final run: %v", err)
	}
	if got := relationRows(b.Output); !equalRows(got, want) {
		t.Fatalf("baseline corrupted by concurrent runs: %d rows, oracle %d", len(got), len(want))
	}
}

// TestServeConcurrentSessionsDifferential is the concurrent-session
// differential mode: N sessions over one served Program, each running the
// fixpoint twice, must all equal the sequential oracle — for TC and CSPA,
// interpreted and JIT-compiled. The serving Program is warmed by a plain Run
// first, so session plan hits cross the epoch boundary (CrossRunHits > 0).
func TestServeConcurrentSessionsDifferential(t *testing.T) {
	builds := []struct {
		name  string
		build func() *analysis.Built
	}{
		{"TC", func() *analysis.Built { return workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 11) }},
		{"CSPA", func() *analysis.Built { return analysis.CSPA(analysis.HandOptimized, datagen.CSPAGraph(120, 17)) }},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"interp", core.Options{Indexed: true, SharedPlans: true}},
		{"jit", core.Options{Indexed: true, SharedPlans: true,
			JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranSPJ}}},
		// The remaining backends pin compiled-unit re-entrancy: cached units
		// are shared through the store, so two sessions may execute one unit
		// concurrently — every backend's scratch must be invocation-private.
		{"bytecode", core.Options{Indexed: true, SharedPlans: true,
			JIT: jit.Config{Backend: jit.BackendBytecode, Granularity: jit.GranSPJ}}},
		{"quotes", core.Options{Indexed: true, SharedPlans: true,
			JIT: jit.Config{Backend: jit.BackendQuotes, Granularity: jit.GranSPJ}}},
	}
	const sessions, queries = 4, 2

	for _, wl := range builds {
		oracle := wl.build()
		if _, err := oracle.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatalf("%s oracle: %v", wl.name, err)
		}
		want := relationRows(oracle.Output)

		for _, cfg := range configs {
			t.Run(wl.name+"/"+cfg.name, func(t *testing.T) {
				b := wl.build()
				// Warm run: populates the shared store, so serving sessions
				// reuse its plans across the epoch boundary.
				if _, err := b.P.Run(cfg.opts); err != nil {
					t.Fatalf("warm run: %v", err)
				}
				srv, err := b.P.Serve(cfg.opts)
				if err != nil {
					t.Fatalf("serve: %v", err)
				}
				var wg sync.WaitGroup
				errCh := make(chan error, sessions*queries)
				for i := 0; i < sessions; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sess, err := srv.Session()
						if err != nil {
							errCh <- fmt.Errorf("session %d: %v", i, err)
							return
						}
						defer sess.Close()
						for q := 0; q < queries; q++ {
							res, err := sess.Query()
							if err != nil {
								errCh <- fmt.Errorf("session %d query %d: %v", i, q, err)
								return
							}
							if res.TotalFacts != oracle.P.Catalog().TotalDerived() {
								errCh <- fmt.Errorf("session %d query %d: %d total facts, oracle %d",
									i, q, res.TotalFacts, oracle.P.Catalog().TotalDerived())
								return
							}
							if got := sessionRows(sess, b.Output); !equalRows(got, want) {
								errCh <- fmt.Errorf("session %d query %d: %d output rows, oracle %d",
									i, q, len(got), len(want))
								return
							}
						}
					}(i)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Error(err)
				}
				// Warm-store reuse across the epoch boundary: interpreted
				// configs hit warm plans; JIT configs may serve compiled
				// units instead of consulting the plan view, so count both
				// artifact classes.
				if hits := srv.PlanStats().CrossRunHits + srv.UnitStats().CrossRunHits; hits == 0 {
					t.Errorf("expected cross-run plan/unit hits from warmed store, got 0")
				}
			})
		}
	}
}

// TestServeEpochGeneration pins the per-epoch (not per-query) generation
// semantics: two sessions querying inside one epoch must not bump the
// plan-store generation — the double-bump misattributed same-epoch reuse as
// CrossRunHits — while Ingest+Publish advances it exactly once.
func TestServeEpochGeneration(t *testing.T) {
	b := workloads.TransitiveClosure(analysis.HandOptimized, 40, 80, 13)
	opts := core.Options{Indexed: true, SharedPlans: true}
	if _, err := b.P.Run(opts); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	store := b.P.PlanStore()
	srv, err := b.P.Serve(opts)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	gen0 := store.Generation()
	epoch0 := b.P.Catalog().Epoch()

	s1, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	r1, err := s1.Query()
	if err != nil {
		t.Fatal(err)
	}
	if g := store.Generation(); g != gen0 {
		t.Fatalf("session query bumped store generation: %d -> %d", gen0, g)
	}
	r2, err := s2.Query()
	if err != nil {
		t.Fatal(err)
	}
	if g := store.Generation(); g != gen0 {
		t.Fatalf("second session's query bumped store generation: %d -> %d", gen0, g)
	}
	if r1.TotalFacts != r2.TotalFacts {
		t.Fatalf("sessions on one epoch disagree: %d vs %d facts", r1.TotalFacts, r2.TotalFacts)
	}
	if hits := srv.PlanStats().CrossRunHits; hits == 0 {
		t.Errorf("expected cross-run hits on the warmed store, got 0")
	}
	baseline := s1.Len(b.Output)

	// The epoch flip is the only generation boundary: ingest + publish bumps
	// both counters exactly once.
	edge := b.P.Relation("edge", 2)
	srv.Ingest(func() {
		edge.MustFact(500, 0) // a fresh source node: guaranteed new tc rows
	})
	if g := store.Generation(); g != gen0 {
		t.Fatalf("ingest alone must not bump the generation: %d -> %d", gen0, g)
	}
	e2 := srv.Publish()
	if g := store.Generation(); g != gen0+1 {
		t.Fatalf("publish must bump the generation once: %d -> %d", gen0, g)
	}
	if got := b.P.Catalog().Epoch(); got != epoch0+1 {
		t.Fatalf("publish must advance the catalog epoch once: %d -> %d", epoch0, got)
	}
	if e2.Generation() != epoch0+1 {
		t.Fatalf("epoch generation %d, want %d", e2.Generation(), epoch0+1)
	}

	// Snapshot isolation: the old session keeps its pinned epoch's answer;
	// a new session sees the ingested fact.
	if _, err := s1.Query(); err != nil {
		t.Fatal(err)
	}
	if got := s1.Len(b.Output); got != baseline {
		t.Fatalf("pinned session saw the new epoch: %d rows, want %d", got, baseline)
	}
	s3, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.Query(); err != nil {
		t.Fatal(err)
	}
	if got := s3.Len(b.Output); got <= baseline {
		t.Fatalf("new session must see the ingested fact: %d rows, baseline %d", got, baseline)
	}
}

// TestServeStatsSnapshotInvariant pins the snapshot-before-rewind fix: an
// epoch's statistics are deep copies taken at the boundary, so later
// ingestion and the baseline rewind (which truncates and rebuilds the very
// histograms and cardinalities live readers would observe mid-flight) leave
// them bit-identical.
func TestServeStatsSnapshotInvariant(t *testing.T) {
	b := workloads.TransitiveClosure(analysis.HandOptimized, 40, 80, 17)
	opts := core.Options{Indexed: true, Histograms: true}
	srv, err := b.P.Serve(opts)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	epoch := srv.Epoch()
	edgeID := b.P.Relation("edge", 2).ID()

	card0 := epoch.Stats().Card(edgeID, ir.SrcDerived)
	if card0 == 0 {
		t.Fatalf("epoch snapshot has no edge cardinality")
	}
	hist0, ok := epoch.Stats().Histogram(edgeID, ir.SrcDerived, 0)
	if !ok || hist0.Total == 0 {
		t.Fatalf("epoch snapshot has no edge histogram (ok=%v total=%d)", ok, hist0.Total)
	}
	dist0 := epoch.Stats().Distinct(edgeID, ir.SrcDerived, 0)

	// Mutate the live catalog hard: run a fixpoint (derives rows on top of
	// the pinned baseline), ingest a skewed burst, and publish — the publish
	// path rewinds to baseline, truncating and rebuilding live histograms.
	if _, err := b.P.Run(opts); err != nil {
		t.Fatalf("run: %v", err)
	}
	edge := b.P.Relation("edge", 2)
	srv.Ingest(func() {
		for i := 0; i < 100; i++ {
			edge.MustFact(7, 1000+i)
		}
	})
	srv.Publish()

	live, _ := b.P.Catalog().Pred(edgeID).Derived.HistogramOf(0)
	if live.Total == hist0.Total {
		t.Fatalf("test vacuous: live histogram did not change (total %d)", live.Total)
	}
	if got := epoch.Stats().Card(edgeID, ir.SrcDerived); got != card0 {
		t.Errorf("epoch cardinality drifted: %d -> %d", card0, got)
	}
	if got := epoch.Stats().Distinct(edgeID, ir.SrcDerived, 0); got != dist0 {
		t.Errorf("epoch distinct count drifted: %d -> %d", dist0, got)
	}
	got, ok := epoch.Stats().Histogram(edgeID, ir.SrcDerived, 0)
	if !ok || got != hist0 {
		t.Errorf("epoch histogram drifted (ok=%v): %+v -> %+v", ok, hist0.Counts[:4], got.Counts[:4])
	}

	// And the new epoch's snapshot reflects the published state: baseline
	// ground facts plus the burst, no derived rows.
	e2 := srv.Epoch()
	if c := e2.Stats().Card(edgeID, ir.SrcDerived); c != card0+100 {
		t.Errorf("new epoch edge cardinality %d, want %d", c, card0+100)
	}
	h2, ok := e2.Stats().Histogram(edgeID, ir.SrcDerived, 0)
	if !ok || h2.Total != uint64(card0+100) {
		t.Errorf("new epoch histogram total %d, want %d", h2.Total, card0+100)
	}
}

// TestServeSharded exercises sessions under the sharded parallel
// configuration (private physically sharded catalogs, pooled workers), the
// layout production serving would run.
func TestServeSharded(t *testing.T) {
	oracle := workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 19)
	if _, err := oracle.P.Run(core.Options{Indexed: true}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := relationRows(oracle.Output)

	b := workloads.TransitiveClosure(analysis.HandOptimized, 60, 120, 19)
	srv, err := b.P.Serve(core.Options{
		Indexed: true, ParallelUnions: true, Shards: 8, Workers: 4, AdaptiveFanout: true,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				errCh <- err
				return
			}
			defer sess.Close()
			if _, err := sess.Query(); err != nil {
				errCh <- err
				return
			}
			if got := sessionRows(sess, b.Output); !equalRows(got, want) {
				errCh <- fmt.Errorf("session %d: %d rows, oracle %d", i, len(got), len(want))
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestServeEpochRowsPinned pins the storage contract end to end: the epoch's
// row views survive ingestion bursts and baseline rewinds on the serving
// catalog (copy-on-flip), byte for byte.
func TestServeEpochRowsPinned(t *testing.T) {
	b := workloads.TransitiveClosure(analysis.HandOptimized, 30, 60, 23)
	srv, err := b.P.Serve(core.Options{Indexed: true})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	edge := b.P.Relation("edge", 2)
	epoch := srv.Epoch()
	rows := epoch.Rows(edge.ID())
	before := make([]string, 0, rows.Len())
	rows.Each(func(t []storage.Value) bool {
		before = append(before, fmt.Sprint(t))
		return true
	})

	// Derive (direct run), ingest, publish twice — each publish rewinds the
	// arena the epoch pinned.
	for round := 0; round < 2; round++ {
		if _, err := b.P.Run(core.Options{Indexed: true}); err != nil {
			t.Fatalf("run %d: %v", round, err)
		}
		srv.Ingest(func() {
			for i := 0; i < 50; i++ {
				edge.MustFact(2000+50*round+i, 1)
			}
		})
		srv.Publish()
	}

	after := make([]string, 0, rows.Len())
	rows.Each(func(t []storage.Value) bool {
		after = append(after, fmt.Sprint(t))
		return true
	})
	if !equalRows(before, after) {
		t.Fatalf("pinned epoch rows changed: %d -> %d rows", len(before), len(after))
	}
	if live := edge.Len(); live == rows.Len() {
		t.Fatalf("test vacuous: live relation did not grow past the pin (%d rows)", live)
	}
}
