// Tests for the parallel merge barrier and the adaptive fan-out driver:
// determinism of the derivation counters across every execution strategy, a
// mechanical pin that the bucketed merge and the sequential fast path each
// engage exactly when the statistics say so, and a -race stress run that
// hammers concurrent per-bucket merges through the full engine.
package core_test

import (
	"testing"

	"carac/internal/analysis"
	"carac/internal/core"
	"carac/internal/interp"
	"carac/internal/workloads"
)

func runTC(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
	res, err := built.P.Run(opts)
	if err != nil {
		t.Fatalf("%+v: %v", opts, err)
	}
	return res
}

// TestMergeDerivationsDeterminism pins that Derivations — counted per-bucket
// and summed under the parallel merge — equals the sequential count under
// every execution strategy and across repeated adaptive runs (scheduling
// must not leak into the counters: per-bucket dedup is content-based).
func TestMergeDerivationsDeterminism(t *testing.T) {
	seq := runTC(t, core.Options{Indexed: true})
	configs := []struct {
		name string
		opts core.Options
	}{
		{"parallel", core.Options{Indexed: true, ParallelUnions: true, Workers: 4}},
		{"sharded", core.Options{Indexed: true, Shards: 4, Workers: 4}},
		{"sharded8", core.Options{Indexed: true, Shards: 8, Workers: 2}},
		{"adaptive", core.Options{Indexed: true, Shards: 4, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 8}},
		{"adaptive-again", core.Options{Indexed: true, Shards: 4, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 8}},
		{"adaptive-pull", core.Options{Indexed: true, Shards: 4, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 8, Executor: interp.ExecPull}},
	}
	for _, c := range configs {
		res := runTC(t, c.opts)
		if res.Interp.Derivations != seq.Interp.Derivations {
			t.Errorf("%s: %d derivations, sequential %d", c.name, res.Interp.Derivations, seq.Interp.Derivations)
		}
		if res.TotalFacts != seq.TotalFacts {
			t.Errorf("%s: %d facts, sequential %d", c.name, res.TotalFacts, seq.TotalFacts)
		}
		if res.Interp.Iterations != seq.Interp.Iterations {
			t.Errorf("%s: %d iterations, sequential %d", c.name, res.Interp.Iterations, seq.Interp.Iterations)
		}
	}
}

// TestAdaptiveFanoutEngages is the mechanical acceptance pin for the
// adaptive driver, testable on any machine regardless of core count:
// (a) with a tiny threshold every iteration fans out and the merge runs
// bucketed (MergeTasks advance, no sequential iterations); (b) with a huge
// threshold every iteration takes the sequential fast path — zero merge
// tasks, zero parallelism tax, and exactly the sequential SPJ schedule.
func TestAdaptiveFanoutEngages(t *testing.T) {
	seq := runTC(t, core.Options{Indexed: true})

	fanned := runTC(t, core.Options{Indexed: true, Shards: 4, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 1})
	if fanned.Interp.SeqIters != 0 {
		t.Errorf("threshold=1: %d sequential iterations, want 0", fanned.Interp.SeqIters)
	}
	if fanned.Interp.MergeTasks == 0 {
		t.Error("threshold=1: merge never ran bucketed")
	}
	if fanned.Interp.SPJRuns <= seq.Interp.SPJRuns {
		t.Errorf("threshold=1: fan-out did not engage (%d <= %d SPJ runs)", fanned.Interp.SPJRuns, seq.Interp.SPJRuns)
	}
	if fanned.TotalFacts != seq.TotalFacts {
		t.Errorf("threshold=1: %d facts, sequential %d", fanned.TotalFacts, seq.TotalFacts)
	}

	tail := runTC(t, core.Options{Indexed: true, Shards: 4, Workers: 4, AdaptiveFanout: true, FanoutThreshold: 1 << 30})
	if tail.Interp.SeqIters != tail.Interp.Iterations {
		t.Errorf("huge threshold: %d/%d iterations sequential, want all", tail.Interp.SeqIters, tail.Interp.Iterations)
	}
	if tail.Interp.MergeTasks != 0 {
		t.Errorf("huge threshold: %d merge tasks, want 0", tail.Interp.MergeTasks)
	}
	if tail.Interp.SPJRuns != seq.Interp.SPJRuns {
		t.Errorf("huge threshold: %d SPJ runs, sequential schedule has %d", tail.Interp.SPJRuns, seq.Interp.SPJRuns)
	}
	if tail.TotalFacts != seq.TotalFacts {
		t.Errorf("huge threshold: %d facts, sequential %d", tail.TotalFacts, seq.TotalFacts)
	}
}

// TestParallelMergeStress hammers concurrent per-bucket merges through the
// full engine: many workers, more buckets than workers, and a threshold of
// 1 so every iteration — including one-tuple tails — goes through task
// fan-out and bucketed merge. Run under -race by the CI core job.
func TestParallelMergeStress(t *testing.T) {
	seq := runTC(t, core.Options{Indexed: true})
	for round := 0; round < 3; round++ {
		built := workloads.TransitiveClosure(analysis.HandOptimized, 80, 200, 42)
		// Repeated runs of one Program rewind to the ground baseline and
		// re-partition, stressing mode transitions along with the merges.
		for rerun := 0; rerun < 2; rerun++ {
			res, err := built.P.Run(core.Options{Indexed: true, Shards: 8, Workers: 8, AdaptiveFanout: true, FanoutThreshold: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalFacts != seq.TotalFacts {
				t.Fatalf("round %d rerun %d: %d facts, want %d", round, rerun, res.TotalFacts, seq.TotalFacts)
			}
			if res.Interp.Derivations != seq.Interp.Derivations {
				t.Fatalf("round %d rerun %d: %d derivations, want %d", round, rerun, res.Interp.Derivations, seq.Interp.Derivations)
			}
		}
	}
}
