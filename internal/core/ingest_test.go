// Streaming-ingestion serving tests: Server.IngestTx applies batched
// insert/delete transactions to the ground state between epochs. The pins:
// a deletion-bearing epoch must refuse the materialization warm start even
// for a monotone program (warm seeding can only add, deletions shrink),
// published epochs keep serving their pinned rows verbatim across later
// deletion compactions (copy-on-flip), and a post-delete Publish invalidates
// the per-epoch query memo so no session ever answers from a stale fixpoint.
package core_test

import (
	"testing"

	"carac/internal/core"
	"carac/internal/storage"
)

// ingestGraph builds the TC rules over an explicit graph: a chain
// 0→1→2→3→4 plus the chord 0→2, so deleting edge(1,2) retracts tc(1,2)
// for good while tc(0,2…4) must survive through the chord.
func ingestGraph(t *testing.T) (*core.Program, *core.Relation, *core.Relation) {
	t.Helper()
	p := tcRules()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)
	for i := 0; i < 4; i++ {
		edge.MustFact(i, i+1)
	}
	edge.MustFact(0, 2)
	return p, edge, tc
}

// TestIngestTxDeletionPinsColdPath is the warm-start gate regression: an
// additions-only window warm-starts the next epoch's materialization, a
// deletion-bearing window must derive cold — and still agree with the
// recompute oracle.
func TestIngestTxDeletionPinsColdPath(t *testing.T) {
	p, edge, tc := ingestGraph(t)
	srv, err := p.Serve(core.Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := s1.Query(); err != nil {
		t.Fatal(err)
	}

	// Control: an insert-only transaction keeps the warm start eligible.
	tx := p.NewTx()
	tx.InsertTuple(edge, []storage.Value{4, 5})
	if _, err := srv.IngestTx(tx); err != nil {
		t.Fatal(err)
	}
	srv.Publish()
	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Query(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.WarmStarts != 1 {
		t.Fatalf("insert-only window: warm starts = %d, want 1", st.WarmStarts)
	}
	if !s2.Contains(tc, 0, 5) {
		t.Fatal("ingested edge did not extend the closure")
	}

	// The deletion-bearing window must pin the cold path.
	tx = p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{1, 2})
	res, err := srv.IngestTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retracted != 1 {
		t.Fatalf("retracted %d rows, want 1", res.Retracted)
	}
	srv.Publish()
	s3, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.Query(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.WarmStarts != 1 {
		t.Fatalf("deletion-bearing window warm-started (warm starts = %d, want still 1)", st.WarmStarts)
	}
	if st.MaterializedEpochs != 3 {
		t.Fatalf("materialized epochs = %d, want 3", st.MaterializedEpochs)
	}
	if st.IngestBatches != 2 || st.RowsRetracted != 1 || st.IngestedRows != 1 {
		t.Fatalf("ingest stats = %+v", st)
	}

	// Oracle agreement for the post-delete epoch: tc(1,2) is gone, the
	// chord keeps 0's reachability intact.
	if s3.Contains(tc, 1, 2) || s3.Contains(tc, 1, 4) {
		t.Fatal("closure rows of the deleted edge survived")
	}
	for _, dst := range []int{2, 3, 4, 5} {
		if !s3.Contains(tc, 0, dst) {
			t.Fatalf("tc(0,%d) lost despite the surviving chord", dst)
		}
	}
}

// TestIngestTxPinnedEpochsAndMemo: sessions on an already-published epoch
// keep serving the exact pre-delete rows (the deletion compaction flips the
// shared arenas copy-on-write), while the post-delete Publish flips the memo
// key so new sessions re-derive instead of answering from the stale
// materialization.
func TestIngestTxPinnedEpochsAndMemo(t *testing.T) {
	p, edge, tc := ingestGraph(t)
	srv, err := p.Serve(core.Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := s1.Query(); err != nil {
		t.Fatal(err)
	}
	memoBefore := srv.Stats().MemoHits

	tx := p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{1, 2})
	if _, err := srv.IngestTx(tx); err != nil {
		t.Fatal(err)
	}

	// The pinned epoch is untouched by the compaction: both the raw epoch
	// rows and the session's materialized answers still hold edge(1,2).
	ground := s1.Epoch().Rows(edge.ID())
	found := false
	for i := 0; i < ground.Len(); i++ {
		r := ground.Row(i)
		if r[0] == 1 && r[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("pinned epoch lost a ground row to the deletion compaction")
	}
	if !s1.Contains(tc, 1, 2) {
		t.Fatal("pinned session lost a materialized row to the deletion compaction")
	}

	srv.Publish()
	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Query(); err != nil {
		t.Fatal(err)
	}
	if s2.Contains(tc, 1, 2) {
		t.Fatal("post-delete epoch answered from a stale materialization")
	}
	// Re-querying the OLD session is a memo/materialization hit and still
	// answers pre-delete.
	if _, err := s1.Query(); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().MemoHits <= memoBefore {
		t.Fatal("pinned session's re-query was not served from its materialization")
	}
	if !s1.Contains(tc, 1, 2) {
		t.Fatal("pinned session's re-query observed the deletion")
	}
}

// TestIngestTxCountingSemantics: assertion counts gate physical deletion on
// the serving path exactly as on Apply — a doubly asserted fact survives one
// retraction and the batch reports Deleted but not Retracted.
func TestIngestTxCountingSemantics(t *testing.T) {
	p, edge, tc := ingestGraph(t)
	srv, err := p.Serve(core.Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := p.NewTx()
	tx.InsertTuple(edge, []storage.Value{0, 1}) // second assertion
	if _, err := srv.IngestTx(tx); err != nil {
		t.Fatal(err)
	}
	tx = p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{0, 1})
	res, err := srv.IngestTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Retracted != 0 {
		t.Fatalf("count-gated retraction = %+v, want Deleted 1, Retracted 0", res)
	}
	srv.Publish()
	s, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Query(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(tc, 0, 1) {
		t.Fatal("doubly asserted edge vanished after one retraction")
	}
	// The second retraction is real.
	tx = p.NewTx()
	tx.DeleteTuple(edge, []storage.Value{0, 1})
	if res, err = srv.IngestTx(tx); err != nil {
		t.Fatal(err)
	}
	if res.Retracted != 1 {
		t.Fatalf("final retraction removed %d rows, want 1", res.Retracted)
	}
	srv.Publish()
	s2, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Query(); err != nil {
		t.Fatal(err)
	}
	if s2.Contains(tc, 0, 1) {
		t.Fatal("edge(0,1) closure row survived its final retraction")
	}
	if !s2.Contains(tc, 0, 2) {
		t.Fatal("tc(0,2) lost despite the surviving chord 0→2")
	}
}
