// Package core is Carac's public engine API: a deep embedding of Datalog
// into Go (paper §V-A) with stratified negation, aggregation, and arithmetic
// builtins, wired to the semi-naive fixpoint executor, the runtime
// join-order optimizer, and the JIT with its four compilation targets.
//
// Typical use:
//
//	p := core.NewProgram()
//	edge := p.Relation("edge", 2)
//	tc := p.Relation("tc", 2)
//	x, y, z := core.NewVar("x"), core.NewVar("y"), core.NewVar("z")
//	p.MustRule(tc.A(x, y), edge.A(x, y))
//	p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
//	edge.MustFact(1, 2)
//	res, err := p.Run(core.Options{JIT: jit.Config{Backend: jit.BackendLambda}})
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"carac/internal/ast"
	"carac/internal/interp"
	"carac/internal/ir"
	"carac/internal/jit"
	"carac/internal/parser"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Var is a Datalog variable for the embedded DSL. Identity is pointer-based:
// two NewVar("x") calls create distinct variables.
type Var struct{ name string }

// NewVar creates a fresh variable with a diagnostic name.
func NewVar(name string) *Var { return &Var{name: name} }

// Program owns a catalog of relations, the rule set, and execution.
//
// Concurrency contract: the Program is single-writer, many-reader. Rule and
// fact construction (Rule, Fact, LoadSource) belongs to one goroutine at a
// time with no Run in flight. Run itself is guarded by an internal mutex, so
// concurrent Run calls serialize instead of corrupting the ground-fact
// baseline — but they still share one catalog, so the supported way to
// evaluate concurrently is Serve: sessions opened on a Server each pin an
// immutable epoch snapshot and execute on private catalogs, any number in
// parallel, while fact ingestion (the single writer) builds the next epoch
// behind the same mutex. See doc.go §Serving for the epoch lifecycle.
//
// Post-Run mutation contract: the rule set freezes at the first Run — rules
// and parsed source may only be added before it (create a new Program for a
// different rule set). Facts may keep being added between runs (incremental
// batches rewind derived state to the ground-fact baseline), and repeated
// Runs are always legal. Under Options.SharedPlans the Program additionally
// owns a plan store that carries access plans, compiled JIT units, and
// their drift state across those runs — and across serving sessions.
type Program struct {
	cat      *storage.Catalog
	prog     *ast.Program
	baseLens []int // ground-fact baseline per predicate, captured on first Run
	frozen   bool
	// runMu serializes everything that owns the shared catalog's mutable
	// state: Run, fact ingestion after the first Run, and the serving
	// layer's epoch publication. Readers never take it — sessions read only
	// their pinned epoch and their private catalogs.
	runMu sync.Mutex
	// baselineClean is true when Derived holds exactly the ground facts
	// (i.e. derived rows have been truncated away after the last Run),
	// enabling incremental fact addition between runs.
	baselineClean bool
	// haveFixpoint is true while Derived holds a complete fixpoint for the
	// current ground facts — the precondition for Apply's incremental
	// (counting + DRed) path. Cleared whenever derived state is rewound or a
	// run fails mid-derivation.
	haveFixpoint bool
	// countsReady is true once every Derived relation is in counted mode
	// (per-row assertion multiplicities, storage.EnableCounts) — flipped by
	// the first Apply or IngestTx and sticky from then on.
	countsReady bool
	// planStore is the program-lifetime artifact store (Options.SharedPlans):
	// one shard-locked key space backing both the interpreter's plan view
	// and the JIT's compiled-unit view, created at the first shared Run and
	// kept for the Program's life so later runs and incremental fact batches
	// start warm. Drift counters are storage-resident and monotone, so the
	// freshness state the store gates on carries across runs by construction.
	planStore *plancache.Store
	// persist binds planStore to Options.CacheDir: created (and loaded) by
	// the first Run or Serve that names a cache directory, flushed after
	// every successful shared Run and on each serve epoch publication. See
	// persist.go.
	persist *plancache.Persister
}

// PlanStore returns the program-lifetime plan store, creating it (with
// plancache.DefaultStoreLimit) on first use. Runs consult it only when
// Options.SharedPlans is set.
func (p *Program) PlanStore() *plancache.Store {
	if p.planStore == nil {
		p.planStore = plancache.NewStore(plancache.DefaultStoreLimit)
	}
	return p.planStore
}

// sharedStore resolves the Program store for a SharedPlans run, honoring the
// configured LRU bound on first creation.
func (p *Program) sharedStore(opts Options) *plancache.Store {
	if p.planStore == nil {
		limit := opts.PlanStoreLimit
		if limit == 0 {
			limit = plancache.DefaultStoreLimit
		}
		p.planStore = plancache.NewStore(limit)
	}
	return p.planStore
}

// ensureBaseline rewinds all predicates to their ground-fact baseline so a
// new fact can be appended to the arena prefix (facts may be added
// incrementally between runs, paper §V-A).
func (p *Program) ensureBaseline() {
	if !p.frozen || p.baselineClean {
		return
	}
	for i, pd := range p.cat.Preds() {
		pd.Derived.TruncateTo(p.baseLens[i])
		pd.DeltaKnown.Clear()
		pd.DeltaNew.Clear()
	}
	p.baselineClean = true
	p.haveFixpoint = false // the fixpoint's derived rows are gone
}

func (p *Program) addFact(id storage.PredID, tuple []storage.Value) {
	if p.frozen {
		p.ensureBaseline()
		if p.cat.Pred(id).AddFact(tuple) {
			p.baseLens[id]++
		}
		return
	}
	p.cat.Pred(id).AddFact(tuple)
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	cat := storage.NewCatalog()
	return &Program{cat: cat, prog: ast.NewProgram(cat)}
}

// Catalog exposes the underlying storage catalog (read-mostly; used by
// benchmarks and the baseline engines).
func (p *Program) Catalog() *storage.Catalog { return p.cat }

// AST exposes the rule program (used by baseline engines and tooling).
func (p *Program) AST() *ast.Program { return p.prog }

// Relation declares (or returns the existing) relation name/arity.
func (p *Program) Relation(name string, arity int) *Relation {
	id := p.cat.Declare(name, arity)
	return &Relation{p: p, id: id, arity: arity, name: name}
}

// Relation is a handle for declaring facts, building atoms, and reading
// results.
type Relation struct {
	p     *Program
	id    storage.PredID
	arity int
	name  string
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// ID returns the dense predicate id.
func (r *Relation) ID() storage.PredID { return r.id }

// Atom is a DSL literal: a relational atom, its negation, or a builtin.
type Atom struct {
	kind    ast.AtomKind
	pred    storage.PredID
	builtin ast.Builtin
	terms   []any
}

// A builds a positive atom over r. Arguments may be *Var, int (non-negative,
// 32-bit), or string (interned as a symbol).
func (r *Relation) A(args ...any) Atom {
	if len(args) != r.arity {
		panic(fmt.Sprintf("core: %s/%d used with %d arguments", r.name, r.arity, len(args)))
	}
	return Atom{kind: ast.AtomRelation, pred: r.id, terms: args}
}

// Not negates a positive relational atom.
func Not(a Atom) Atom {
	if a.kind != ast.AtomRelation {
		panic("core: Not applies to positive relational atoms")
	}
	a.kind = ast.AtomNegated
	return a
}

func builtinAtom(b ast.Builtin, args ...any) Atom {
	return Atom{kind: ast.AtomBuiltin, builtin: b, terms: args}
}

// Add constrains a+b=c; any single unknown is solved.
func Add(a, b, c any) Atom { return builtinAtom(ast.BAdd, a, b, c) }

// Sub constrains a-b=c over naturals.
func Sub(a, b, c any) Atom { return builtinAtom(ast.BSub, a, b, c) }

// Mul constrains a*b=c.
func Mul(a, b, c any) Atom { return builtinAtom(ast.BMul, a, b, c) }

// Div constrains a/b=c (truncated).
func Div(a, b, c any) Atom { return builtinAtom(ast.BDiv, a, b, c) }

// Mod constrains a%b=c.
func Mod(a, b, c any) Atom { return builtinAtom(ast.BMod, a, b, c) }

// Eq constrains a=b (either side may be solved from the other).
func Eq(a, b any) Atom { return builtinAtom(ast.BEq, a, b) }

// Ne filters a≠b.
func Ne(a, b any) Atom { return builtinAtom(ast.BNe, a, b) }

// Lt filters a<b.
func Lt(a, b any) Atom { return builtinAtom(ast.BLt, a, b) }

// Le filters a<=b.
func Le(a, b any) Atom { return builtinAtom(ast.BLe, a, b) }

// Gt filters a>b.
func Gt(a, b any) Atom { return builtinAtom(ast.BGt, a, b) }

// Ge filters a>=b.
func Ge(a, b any) Atom { return builtinAtom(ast.BGe, a, b) }

// Aggregation kinds re-exported for rule construction.
const (
	Count = ast.AggCount
	Sum   = ast.AggSum
	Min   = ast.AggMin
	Max   = ast.AggMax
)

// Rule adds head :- body. Variables are scoped to the rule.
func (p *Program) Rule(head Atom, body ...Atom) error {
	return p.rule(head, ast.AggSpec{}, body)
}

// MustRule is Rule that panics on error.
func (p *Program) MustRule(head Atom, body ...Atom) {
	if err := p.Rule(head, body...); err != nil {
		panic(err)
	}
}

// AggRule adds an aggregation rule: the head variable at headPos receives
// kind aggregated over the body variable `over` (ignored for Count), grouped
// by the remaining head variables.
func (p *Program) AggRule(head Atom, headPos int, kind ast.AggKind, over *Var, body ...Atom) error {
	spec := ast.AggSpec{Kind: kind, HeadPos: headPos}
	return p.rule(head, spec, body, over)
}

// MustAggRule is AggRule that panics on error.
func (p *Program) MustAggRule(head Atom, headPos int, kind ast.AggKind, over *Var, body ...Atom) {
	if err := p.AggRule(head, headPos, kind, over, body...); err != nil {
		panic(err)
	}
}

func (p *Program) rule(head Atom, spec ast.AggSpec, body []Atom, over ...*Var) error {
	if p.frozen {
		return fmt.Errorf("core: cannot add rules after Run — the rule set froze at the first Run (facts may still be added between runs; create a new Program for a different rule set)")
	}
	vars := map[*Var]ast.VarID{}
	var names []string
	conv := func(a Atom) (ast.Atom, error) {
		out := ast.Atom{Kind: a.kind, Pred: a.pred, Builtin: a.builtin}
		for _, t := range a.terms {
			switch v := t.(type) {
			case *Var:
				id, ok := vars[v]
				if !ok {
					id = ast.VarID(len(names))
					vars[v] = id
					names = append(names, v.name)
				}
				out.Terms = append(out.Terms, ast.V(id))
			case int:
				if v < 0 || v > math.MaxInt32 {
					return ast.Atom{}, fmt.Errorf("core: integer constant %d out of the non-negative 32-bit domain", v)
				}
				out.Terms = append(out.Terms, ast.C(storage.Value(v)))
			case string:
				out.Terms = append(out.Terms, ast.C(p.cat.Symbols.Intern(v)))
			default:
				return ast.Atom{}, fmt.Errorf("core: unsupported term type %T (want *Var, int, or string)", t)
			}
		}
		return out, nil
	}
	h, err := conv(head)
	if err != nil {
		return err
	}
	r := &ast.Rule{Head: h, Agg: spec}
	for _, a := range body {
		ba, err := conv(a)
		if err != nil {
			return err
		}
		r.Body = append(r.Body, ba)
	}
	if spec.Kind != ast.AggNone && spec.Kind != ast.AggCount {
		if len(over) == 0 || over[0] == nil {
			return fmt.Errorf("core: %v aggregation needs an over-variable", spec.Kind)
		}
		id, ok := vars[over[0]]
		if !ok {
			return fmt.Errorf("core: aggregation variable %s does not occur in the rule", over[0].name)
		}
		r.Agg.OverVar = id
	}
	r.NumVars = len(names)
	r.VarNames = names
	return p.prog.AddRule(r)
}

// Fact inserts a ground fact. Arguments as in Relation.A, minus variables.
func (r *Relation) Fact(args ...any) error {
	tuple, err := r.encode(args)
	if err != nil {
		return err
	}
	r.p.addFact(r.id, tuple)
	return nil
}

// encode converts Fact-style arguments to a stored tuple (shared with the
// transaction builder in stream.go).
func (r *Relation) encode(args []any) ([]storage.Value, error) {
	if len(args) != r.arity {
		return nil, fmt.Errorf("core: %s/%d fact with %d arguments", r.name, r.arity, len(args))
	}
	tuple := make([]storage.Value, r.arity)
	for i, a := range args {
		switch v := a.(type) {
		case int:
			if v < 0 || v > math.MaxInt32 {
				return nil, fmt.Errorf("core: integer constant %d out of the non-negative 32-bit domain", v)
			}
			tuple[i] = storage.Value(v)
		case storage.Value:
			tuple[i] = v
		case string:
			tuple[i] = r.p.cat.Symbols.Intern(v)
		default:
			return nil, fmt.Errorf("core: unsupported fact value %T", a)
		}
	}
	return tuple, nil
}

// MustFact is Fact that panics on error.
func (r *Relation) MustFact(args ...any) {
	if err := r.Fact(args...); err != nil {
		panic(err)
	}
}

// FactTuple inserts a pre-encoded tuple (fast path for dataset loaders).
func (r *Relation) FactTuple(t []storage.Value) { r.p.addFact(r.id, t) }

// Len returns the number of derived tuples (after a Run).
func (r *Relation) Len() int { return r.p.cat.Pred(r.id).Derived.Len() }

// Each visits every derived tuple.
func (r *Relation) Each(f func(t []storage.Value) bool) {
	r.p.cat.Pred(r.id).Derived.Each(f)
}

// Contains reports whether the derived relation holds the tuple (arguments
// as in Fact).
func (r *Relation) Contains(args ...any) bool {
	tuple := make([]storage.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			tuple[i] = storage.Value(v)
		case storage.Value:
			tuple[i] = v
		case string:
			sv, ok := r.p.cat.Symbols.Lookup(v)
			if !ok {
				return false
			}
			tuple[i] = sv
		default:
			return false
		}
	}
	return r.p.cat.Pred(r.id).Derived.Contains(tuple)
}

// AOTStage selects how much information the ahead-of-time ("macro", §VI-C)
// optimization may use when freezing the initial join orders before timed
// execution begins.
type AOTStage uint8

const (
	// AOTNone leaves rule-author atom orders untouched.
	AOTNone AOTStage = iota
	// AOTRulesOnly reorders using the selectivity heuristic alone (rule
	// schema known, fact cardinalities not).
	AOTRulesOnly
	// AOTFactsAndRules reorders using the loaded facts' cardinalities.
	AOTFactsAndRules
)

// Options configures one Run.
type Options struct {
	// JIT configures runtime optimization; a zero value (BackendOff) runs
	// the pure interpreter.
	JIT jit.Config
	// Indexed builds hash indexes on every join/filter column before
	// execution (paper §IV, Index selection). Registration is permanent for
	// the Program's lifetime.
	Indexed bool
	// CompositeIndexes additionally registers one composite index per
	// multi-column search signature occurring in rule bodies (the auto-
	// index-selection direction §IV cites). Implies nothing without Indexed.
	CompositeIndexes bool
	// AOT applies the join-order sort ahead of time, before the timed run.
	AOT AOTStage
	// AOTStats overrides the statistics source for AOT reordering (e.g. a
	// profile captured by a previous run, as in Soufflé's auto-tuner).
	// Non-nil implies AOT even when AOT is AOTNone.
	AOTStats stats.Source
	// Naive evaluates without the semi-naive delta split (baseline engines).
	Naive bool
	// EliminateAliases runs the static alias-removal rewrite (§V-A).
	EliminateAliases bool
	// Timeout aborts the run after the given duration; Run then returns
	// interp.ErrCancelled (benchmarks report the configuration as DNF).
	// Zero means no limit.
	Timeout time.Duration
	// Executor selects push- (default) or pull-based leaf-join execution
	// (paper §V-D: the relational layer is pluggable).
	Executor interp.Executor
	// ParallelUnions evaluates each iteration's independent rules
	// concurrently on a bounded worker pool with per-worker delta buffers
	// merged at iteration barriers — the parallelization the Known/New delta
	// split enables (§V-D). With a JIT backend attached the pool's tasks run
	// span-parameterized compiled units where the controller has one ready
	// and interpret otherwise; false is the sequential fallback.
	ParallelUnions bool
	// Workers bounds the parallel pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Shards partitions every predicate's relations into this many hash
	// buckets keyed by the predicate's planned join column, and fans each
	// rule of a parallel iteration out as one task per bucket of its delta
	// relation. Rule-granular parallelism is bounded by rule count; with
	// Shards > 1 a single huge recursive rule (the transitive-closure shape)
	// also saturates the worker pool — parallelism bounded by data size.
	// Implies ParallelUnions; <= 1 disables sharding.
	//
	// The partition always uses the physically sharded backing store
	// (per-bucket slabs and indexes on the delta pair, bucket-local dedup on
	// Derived), which additionally parallelizes the iteration merge barrier:
	// worker delta buffers fold into DeltaNew as one concurrent task per
	// bucket instead of serially. Compiled backends read the same
	// bucket-local surface (storage.Relation.PhysSubs) and the pool's tasks
	// run span-parameterized compiled units when a JIT is attached, so
	// sharded + JIT runs keep both the physical store and the parallel
	// merge instead of degrading to the row-id view.
	Shards int
	// AdaptiveFanout re-decides the parallel fan-out every fixpoint
	// iteration from live per-shard delta statistics instead of always
	// fanning out to Shards tasks: iterations whose total delta is under
	// FanoutThreshold run on a zero-overhead sequential path (no task
	// spawn, no buffer merge — the small-delta tail every recursive query
	// ends in), and larger iterations size the task count to the delta
	// volume and worker count, handing each task a contiguous bucket span.
	// Implies ParallelUnions and, when Shards is unset, an 8-way partition.
	AdaptiveFanout bool
	// FanoutThreshold is the sequential-fast-path delta bound for
	// AdaptiveFanout (and the minimum buffered volume for a parallel
	// merge); <= 0 selects the interpreter default (256).
	FanoutThreshold int
	// Histograms maintains per-column value-distribution histograms on every
	// planned join column (incrementally, inside the storage mutation paths,
	// like cardinalities and distinct counts) and switches the optimizer's
	// atom ordering from the pure cardinality sort to an estimated
	// join-output size using the measured histogram overlap of join-column
	// pairs. The estimate is recorded on each built plan
	// (interp.Plan.EstRows) and totalled in Result.Interp.EstimatedRows.
	Histograms bool
	// StealThreshold enables skew-aware work stealing in the sharded
	// parallel fan-out: when the hottest delta bucket exceeds this multiple
	// of the mean occupied bucket, the iteration switches from static
	// contiguous bucket spans to per-bucket claims off a shared cursor, with
	// bucket-to-worker affinity carried across iterations. <= 0 (the
	// default) disables stealing; interp.DefaultStealThreshold (3.0) is the
	// recommended ratio.
	StealThreshold float64
	// PlanCache caches compiled access plans across subquery executions,
	// keyed by (rule, atom order, cardinality band) and served while
	// observed cardinality drift stays under PlanCacheDrift — re-planning
	// every subquery every iteration (the seed behaviour) becomes a cache
	// lookup. Shared by the interpreter, the parallel workers, and (via the
	// same drift policy) the JIT freshness test.
	PlanCache bool
	// PlanCacheDrift is the relative drift threshold gating plan reuse;
	// <= 0 selects the default 0.5.
	PlanCacheDrift float64
	// AdaptivePlans re-optimizes a subquery's join order with live
	// statistics whenever the plan cache reports a drift-driven miss — the
	// paper's adaptive re-optimization policy running entirely inside the
	// interpreter, no JIT attached. Implies PlanCache.
	AdaptivePlans bool
	// SharedPlans keys this run's plan cache — and, with a JIT backend, its
	// compiled-unit cache — into the Program-lifetime plan store instead of
	// per-Run caches: repeated runs and incremental fact batches start warm
	// (cross-run hits reported in Result.Plans/Units), N structurally
	// identical rules share one plan entry, and re-entering a previously
	// compiled cardinality band reuses the stored unit instead of
	// recompiling. Implies PlanCache.
	SharedPlans bool
	// PlanStoreLimit bounds the shared store's entry count (approximate LRU
	// eviction); 0 selects plancache.DefaultStoreLimit, < 0 is unbounded.
	// Read only when the store is first created.
	PlanStoreLimit int
	// Materialize enables materialized-epoch serving (Program.Serve only;
	// Run ignores it): the first query on each published epoch runs the
	// fixpoint once (single-flight across sessions), its derived rows are
	// pinned into the epoch and its post-fixpoint statistics captured, and
	// every later query on that epoch — and every session opened after —
	// answers by lookup instead of re-deriving. Ingest/Publish invalidates
	// by epoch flip; for monotone programs the next epoch's materialization
	// warm-starts from the previous fixpoint plus the ingested delta. See
	// doc.go §Serving.
	Materialize bool
	// CacheDir names a directory for the persistent, content-addressed plan
	// + compiled-unit cache (doc.go §Persistent cache): plans, bytecode
	// compiled units, and the profile-statistics snapshot they were built
	// against are flushed there after every successful Run (and on every
	// serve epoch publication) and loaded back when a fresh Program's first
	// Run opens the same directory, so a restarted process skips cold
	// planning and compilation. Implies SharedPlans. The first CacheDir a
	// Program sees wins for its lifetime; invalid or version-mismatched
	// cache files load as silent misses.
	CacheDir string
}

// Result reports one Run's outcome.
type Result struct {
	Duration time.Duration
	Interp   interp.Stats
	JIT      jit.Stats
	// Plans reports this run's plan-cache activity when Options.PlanCache
	// (or SharedPlans) was set; under SharedPlans it is the per-run delta of
	// the Program store's plan view, with CrossRunHits counting reuse of
	// plans built by earlier runs.
	Plans plancache.Stats
	// Units reports this run's compiled-unit cache activity when a JIT
	// backend ran: Hits are unit reuses, CrossRunHits (under SharedPlans)
	// units resolved from earlier runs without recompiling.
	Units plancache.Stats
	// TotalFacts is the number of derived tuples across all relations.
	TotalFacts int
}

// Run executes the program to fixpoint under opts. Repeated Runs are
// independent: derived state is reset to the ground-fact baseline captured
// at the first Run. Concurrent Run calls serialize on the Program's run
// mutex — they share one catalog, so only one may own it at a time; for
// genuinely concurrent evaluation open snapshot sessions via Serve.
func (p *Program) Run(opts Options) (*Result, error) {
	// Histogram-aware ordering applies everywhere a join order is decided:
	// AOT staging, drift-driven re-optimization, and the JIT's compile-side
	// reorder all read the same optimizer options. Sources without histogram
	// data (Unit, Frozen) simply keep the constant-selectivity fallback.
	if opts.Histograms {
		opts.JIT.Optimizer.UseHistograms = true
	}
	// The persistent cache extends the Program-lifetime store; a per-Run
	// cache has nothing meaningful to persist.
	if opts.CacheDir != "" {
		opts.SharedPlans = true
	}
	prog, root, err := p.lowered(opts)
	if err != nil {
		return nil, err
	}

	p.runMu.Lock()
	defer p.runMu.Unlock()
	return p.runLocked(prog, root, opts)
}

// runLocked is the body of Run under runMu — also the cold-recompute path of
// Apply (stream.go), which applies a transaction's ground mutations to the
// baseline first and then derives from scratch.
func (p *Program) runLocked(prog *ast.Program, root *ir.ProgramOp, opts Options) (*Result, error) {
	p.captureBaselineLocked()

	// Each Run is its own epoch boundary. The plan-store generation advances
	// with the catalog epoch — not with query execution — so hits on entries
	// surviving from an earlier boundary read as cross-run reuse. Serving
	// sessions share one boundary per published epoch instead (serve.go):
	// queries inside an epoch never bump, so two sessions on one epoch
	// cannot double-bump and misattribute CrossRunHits.
	p.cat.AdvanceEpoch()
	var store *plancache.Store
	if opts.SharedPlans {
		store = p.sharedStore(opts)
		store.BumpGeneration()
	}

	eng, err := newExecEngine(p.cat, prog, root, opts, store, stats.Catalog{Cat: p.cat})
	if err != nil {
		return nil, err
	}
	defer eng.close()
	// Load-on-open: the engine just registered indexes on the catalog, so
	// plans decoded from disk revalidate their probe choices against the
	// live registrations before entering the store.
	p.ensurePersistLocked(opts)
	res, err := eng.query(opts.Timeout, true)
	if err == nil {
		p.haveFixpoint = true
		// Flush-on-close: persist what this run built (and re-persist what
		// it inherited) together with the statistics profile it ran under.
		p.flushPersistLocked(store, stats.CaptureSnapshot(p.cat))
	}
	return res, err
}

// lowered applies the static rewrites and lowers the rule program to IR.
func (p *Program) lowered(opts Options) (*ast.Program, *ir.ProgramOp, error) {
	prog := p.prog
	if opts.EliminateAliases {
		clone := ast.NewProgram(p.cat)
		for _, r := range prog.Rules {
			clone.Rules = append(clone.Rules, r.Clone())
		}
		clone.EliminateAliases()
		prog = clone
	}
	root, err := lowerRoot(prog, opts)
	if err != nil {
		return nil, nil, err
	}
	return prog, root, nil
}

// captureBaselineLocked freezes the rule set and records the ground-fact
// baseline at the first run, and rewinds derived state to that baseline on
// later ones. Callers hold runMu — this is the state the run mutex exists
// to protect (unguarded concurrent Runs raced here and silently corrupted
// the baseline lengths).
func (p *Program) captureBaselineLocked() {
	if !p.frozen {
		p.frozen = true
		p.baseLens = make([]int, p.cat.NumPreds())
		for i, pd := range p.cat.Preds() {
			p.baseLens[i] = pd.Derived.Len()
		}
	} else {
		p.ensureBaseline()
	}
	p.baselineClean = false // the run below derives new rows
	p.haveFixpoint = false  // until that run completes
}

// LoadSource parses Soufflé-flavoured Datalog text into the program:
// declarations, facts, and rules (see the parser package for the grammar).
func (p *Program) LoadSource(src string) error {
	if p.frozen {
		return fmt.Errorf("core: cannot load source after Run — the rule set froze at the first Run (facts may still be added between runs; create a new Program for a different rule set)")
	}
	res, err := parser.Parse(src, p.cat)
	if err != nil {
		return err
	}
	p.prog.Rules = append(p.prog.Rules, res.Program.Rules...)
	return nil
}

// Format renders a stored value for output (symbol name or integer).
func (p *Program) Format(v storage.Value) string { return p.cat.Symbols.Format(v) }
