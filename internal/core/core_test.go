package core

import (
	"fmt"
	"strings"
	"testing"

	"carac/internal/jit"
	"carac/internal/storage"
)

func buildTC(t testing.TB, n int) (*Program, *Relation) {
	t.Helper()
	p := NewProgram()
	edge := p.Relation("edge", 2)
	tc := p.Relation("tc", 2)
	x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
	p.MustRule(tc.A(x, y), edge.A(x, y))
	p.MustRule(tc.A(x, y), tc.A(x, z), edge.A(z, y))
	for i := 0; i < n; i++ {
		edge.MustFact(i, i+1)
	}
	return p, tc
}

func TestDSLTransitiveClosure(t *testing.T) {
	p, tc := buildTC(t, 10)
	res, err := p.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 55 {
		t.Fatalf("|tc| = %d, want 55", tc.Len())
	}
	if !tc.Contains(0, 10) || tc.Contains(10, 0) {
		t.Fatal("closure contents wrong")
	}
	if res.Duration <= 0 || res.Interp.Iterations == 0 {
		t.Fatalf("result stats missing: %+v", res)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	p, tc := buildTC(t, 8)
	for i := 0; i < 3; i++ {
		if _, err := p.Run(Options{}); err != nil {
			t.Fatal(err)
		}
		if tc.Len() != 36 {
			t.Fatalf("run %d: |tc| = %d, want 36", i, tc.Len())
		}
	}
	// Indexed rerun gives the same answer.
	if _, err := p.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 36 {
		t.Fatalf("indexed rerun: |tc| = %d", tc.Len())
	}
}

func TestAllExecutionConfigsAgree(t *testing.T) {
	type cfg struct {
		name string
		opts Options
	}
	var cfgs []cfg
	cfgs = append(cfgs,
		cfg{"interp", Options{}},
		cfg{"interp-indexed", Options{Indexed: true}},
		cfg{"naive", Options{Naive: true}},
		cfg{"aot-rules", Options{AOT: AOTRulesOnly}},
		cfg{"aot-facts", Options{AOT: AOTFactsAndRules}},
	)
	for _, b := range []jit.Backend{jit.BackendIRGen, jit.BackendLambda, jit.BackendBytecode, jit.BackendQuotes} {
		for _, g := range []jit.Granularity{jit.GranDoWhile, jit.GranUnionAll, jit.GranSPJ} {
			cfgs = append(cfgs, cfg{
				fmt.Sprintf("jit-%v-%v", b, g),
				Options{Indexed: true, JIT: jit.Config{Backend: b, Granularity: g}},
			})
		}
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tc := buildTC(t, 12)
			if _, err := p.Run(c.opts); err != nil {
				t.Fatal(err)
			}
			if tc.Len() != 78 {
				t.Fatalf("|tc| = %d, want 78", tc.Len())
			}
		})
	}
}

func TestSymbolsInDSL(t *testing.T) {
	p := NewProgram()
	inv := p.Relation("inverse", 2)
	call := p.Relation("call", 2)
	wasted := p.Relation("wasted", 2)
	f, g := NewVar("f"), NewVar("g")
	p.MustRule(wasted.A(f, g), call.A(f, g), inv.A(g, f))
	inv.MustFact("deserialize", "serialize")
	call.MustFact("serialize", "deserialize")
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if !wasted.Contains("serialize", "deserialize") {
		t.Fatal("symbolic join failed")
	}
	var got []string
	wasted.Each(func(tu []storage.Value) bool {
		got = append(got, p.Format(tu[0])+"/"+p.Format(tu[1]))
		return true
	})
	if len(got) != 1 || got[0] != "serialize/deserialize" {
		t.Fatalf("formatted = %v", got)
	}
}

func TestAggRuleDSL(t *testing.T) {
	p := NewProgram()
	e := p.Relation("e", 2)
	outdeg := p.Relation("outdeg", 2)
	total := p.Relation("total", 2)
	x, y, n := NewVar("x"), NewVar("y"), NewVar("n")
	p.MustAggRule(outdeg.A(x, n), 1, Count, nil, e.A(x, y))
	w := NewVar("w")
	p.MustAggRule(total.A(x, n), 1, Sum, w, outdeg.A(x, w))
	e.MustFact(1, 2)
	e.MustFact(1, 3)
	e.MustFact(2, 3)
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if !outdeg.Contains(1, 2) || !outdeg.Contains(2, 1) {
		t.Fatal("count aggregation wrong")
	}
	if !total.Contains(1, 2) {
		t.Fatal("sum aggregation wrong")
	}
}

func TestNegationDSL(t *testing.T) {
	p := NewProgram()
	num := p.Relation("num", 1)
	comp := p.Relation("composite", 1)
	prime := p.Relation("prime", 1)
	a, b, c, q := NewVar("a"), NewVar("b"), NewVar("c"), NewVar("q")
	p.MustRule(comp.A(c), num.A(a), num.A(b), Mul(a, b, c), num.A(c))
	p.MustRule(prime.A(q), num.A(q), Not(comp.A(q)))
	for i := 2; i <= 30; i++ {
		num.MustFact(i)
	}
	if _, err := p.Run(Options{Indexed: true}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29} {
		if !prime.Contains(v) {
			t.Fatalf("missing prime %d", v)
		}
	}
	if prime.Len() != 10 {
		t.Fatalf("|prime| = %d, want 10", prime.Len())
	}
}

func TestAOTStagesProduceSameResults(t *testing.T) {
	for _, aot := range []AOTStage{AOTNone, AOTRulesOnly, AOTFactsAndRules} {
		p, tc := buildTC(t, 15)
		if _, err := p.Run(Options{AOT: aot, Indexed: true}); err != nil {
			t.Fatal(err)
		}
		if tc.Len() != 120 {
			t.Fatalf("AOT %d: |tc| = %d, want 120", aot, tc.Len())
		}
	}
}

func TestEliminateAliasesOption(t *testing.T) {
	p := NewProgram()
	edge := p.Relation("edge", 2)
	e2 := p.Relation("e2", 2)
	tc := p.Relation("tc", 2)
	x, y, z := NewVar("x"), NewVar("y"), NewVar("z")
	p.MustRule(e2.A(x, y), edge.A(x, y))
	p.MustRule(tc.A(x, y), e2.A(x, y))
	p.MustRule(tc.A(x, y), tc.A(x, z), e2.A(z, y))
	for i := 0; i < 6; i++ {
		edge.MustFact(i, i+1)
	}
	res, err := p.Run(Options{EliminateAliases: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if tc.Len() != 21 {
		t.Fatalf("|tc| = %d, want 21", tc.Len())
	}
}

func TestErrorsSurface(t *testing.T) {
	p := NewProgram()
	e := p.Relation("e", 2)
	out := p.Relation("out", 1)
	x, w := NewVar("x"), NewVar("w")
	if err := p.Rule(out.A(w), e.A(x, x)); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe rule error = %v", err)
	}
	if err := p.Rule(out.A(x), Atom{kind: 0, pred: e.id, terms: []any{3.14, x}}); err == nil {
		t.Fatal("float term accepted")
	}
	if err := e.Fact(1); err == nil {
		t.Fatal("arity-mismatched fact accepted")
	}
	if err := e.Fact(-5, 1); err == nil {
		t.Fatal("negative fact value accepted")
	}
}

func TestFrozenAfterRun(t *testing.T) {
	p, _ := buildTC(t, 3)
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	out := p.Relation("out", 1)
	x, y := NewVar("x"), NewVar("y")
	e := p.Relation("edge", 2)
	if err := p.Rule(out.A(x), e.A(x, y)); err == nil {
		t.Fatal("rule added after Run")
	}
	if err := p.LoadSource(".decl q(x:number)"); err == nil {
		t.Fatal("source loaded after Run")
	}
}

func TestLoadSourceIntoDSLProgram(t *testing.T) {
	p := NewProgram()
	if err := p.LoadSource(`
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	tc := p.Relation("tc", 2)
	if tc.Len() != 3 {
		t.Fatalf("|tc| = %d, want 3", tc.Len())
	}
}

func TestJITStatsInResult(t *testing.T) {
	p, _ := buildTC(t, 30)
	res, err := p.Run(Options{Indexed: true, JIT: jit.Config{Backend: jit.BackendLambda, Granularity: jit.GranDoWhile}})
	if err != nil {
		t.Fatal(err)
	}
	if res.JIT.Compilations == 0 {
		t.Fatalf("JIT stats missing: %+v", res.JIT)
	}
}
