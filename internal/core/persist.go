// Persistent-cache wiring: Options.CacheDir binds the Program-lifetime plan
// store to an on-disk, content-addressed cache directory (doc.go §Persistent
// cache). The persister is created on the first Run (or Serve) that names a
// directory — after index registration, so loaded plans revalidate their
// probe choices against the live catalog — loads once for the Program's
// life, and flushes after every successful shared Run and on every serve
// epoch publication.
package core

import (
	"fmt"

	"carac/internal/interp"
	"carac/internal/jit"
	"carac/internal/jit/bytecode"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// engineVersion mirrors the root package's Version constant (doc.go), which
// core cannot import without a cycle through the root test files. Bump both
// together.
const engineVersion = "0.1.0"

// cacheTag versions every byte layout a cache file depends on: engine
// version plus the plan, bytecode-program, and snapshot codec layouts. Any
// mismatch invalidates the whole directory — files written under another tag
// load as silent misses and are overwritten on the next flush.
func cacheTag() string {
	return fmt.Sprintf("carac-%s plan%d unit%d snap%d",
		engineVersion, interp.PlanCodecVersion, bytecode.CodecVersion, stats.SnapshotCodecVersion)
}

// planCodec persists ClassPlans entries in symbolic form (atom order,
// EstRows, probe access-path choices). Decode revalidates each relational
// step against cat's index registrations — the same demote/re-select walk
// bindPlan performs on a cross-predicate rebind — so a restarted process
// with different physical layout degrades probes to filtered scans instead
// of trusting the old one.
func planCodec(cat *storage.Catalog) plancache.EntryCodec {
	return plancache.EntryCodec{
		Encode: func(v any) ([]byte, bool) {
			pl, ok := v.(*interp.Plan)
			if !ok {
				return nil, false
			}
			return interp.AppendPlan(nil, pl), true
		},
		Decode: func(payload []byte) (any, error) {
			pl, _, err := interp.DecodePlan(payload)
			if err != nil {
				return nil, err
			}
			interp.RevalidatePlan(pl, cat)
			return pl, nil
		},
	}
}

// ensurePersistLocked creates the persister and performs the one-time load
// into the shared store. Callers hold runMu and have registered artifacts
// (indexes) on the Program catalog. The first CacheDir a Program sees wins
// for its lifetime.
func (p *Program) ensurePersistLocked(opts Options) {
	if opts.CacheDir == "" || p.persist != nil {
		return
	}
	codecs := map[plancache.Class]plancache.EntryCodec{
		plancache.ClassPlans: planCodec(p.cat),
		plancache.ClassUnits: jit.UnitCodec(),
	}
	p.persist = plancache.NewPersister(opts.CacheDir, cacheTag(), codecs)
	p.persist.Load(p.sharedStore(opts))
}

// flushPersistLocked writes the store and profile snapshot to disk. Disk
// failures are advisory — they must never fail a query or a publish.
func (p *Program) flushPersistLocked(store *plancache.Store, snap *stats.Snapshot) {
	if p.persist == nil || store == nil {
		return
	}
	_ = p.persist.Flush(store, snap)
}

// DiskStats reports the persistent cache's traffic; ok is false when no
// CacheDir has been configured.
func (p *Program) DiskStats() (plancache.DiskStats, bool) {
	if p.persist == nil {
		return plancache.DiskStats{}, false
	}
	return p.persist.Stats(), true
}

// CachedProfile returns the statistics snapshot loaded from the cache
// directory (the world the persisted plans were built against), or nil.
// Callers can hand it to Options.JIT.Optimizer sources or inspect it to
// re-optimize incrementally instead of from zero.
func (p *Program) CachedProfile() *stats.Snapshot {
	if p.persist == nil {
		return nil
	}
	return p.persist.Profile()
}
