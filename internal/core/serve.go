package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// This file is the serving layer: concurrent, snapshot-isolated query
// sessions over one Program. The design is reader/writer epochs (in the
// spirit of cloud-native snapshot isolation over a mutating store):
//
//   - An Epoch is an immutable snapshot of the Program's ground-fact state —
//     pinned row views of every Derived relation plus a deep statistics
//     snapshot — taken at a publication boundary.
//   - A Session pins the current epoch and evaluates on a private catalog
//     seeded from it, through the same execution pipeline Run uses
//     (interpreter, optimizer, JIT). Sessions share the Program-lifetime
//     plan store: access plans and compiled units are keyed structurally and
//     resolve relations through the executing interpreter's catalog at
//     invocation time, so one session's artifacts serve every other.
//   - Fact ingestion stays single-writer (Server.Ingest, under the
//     Program's run mutex) and becomes visible atomically: Publish rewinds
//     to the ground baseline through the existing delta machinery, advances
//     the catalog epoch and plan-store generation once, pins fresh row
//     views, captures the statistics snapshot, and flips the epoch pointer.
//     Sessions opened before the flip keep reading their pinned epoch —
//     storage-level copy-on-flip keeps those row views intact even as the
//     writer's rewind re-appends over the truncated region.
//
// Intra-query parallelism and inter-session concurrency share one bounded
// worker pool: each query takes what is free (at least one token), so an
// idle server gives a single query the full fan-out while a loaded one
// degrades gracefully to one worker per query.

// Epoch is one published snapshot of a serving Program's ground-fact state.
// It is immutable: later ingestion and publication cannot change what its
// rows or statistics report.
type Epoch struct {
	gen     uint64
	names   []string
	arities []int
	rows    []storage.EpochRows
	stats   *stats.Snapshot
	refs    atomic.Int64
}

// Generation returns the catalog epoch generation this snapshot was
// published at.
func (e *Epoch) Generation() uint64 { return e.gen }

// Stats returns the epoch's deep statistics snapshot (cardinalities,
// distinct counts, histograms — all boundary-consistent).
func (e *Epoch) Stats() *stats.Snapshot { return e.stats }

// Rows returns the pinned ground rows of predicate id.
func (e *Epoch) Rows(id storage.PredID) storage.EpochRows { return e.rows[id] }

// Sessions returns the number of sessions currently pinning this epoch
// (diagnostic; epochs need no explicit reclamation).
func (e *Epoch) Sessions() int64 { return e.refs.Load() }

// workerPool is the server's shared worker-token pool. acquire blocks until
// at least one token is free and then grants up to want of them, so a query
// on an idle server gets its full fan-out while a loaded server converges to
// one worker per concurrent query — total execution goroutines stay bounded
// by the pool size regardless of session count.
type workerPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	wp := &workerPool{free: n}
	wp.cond = sync.NewCond(&wp.mu)
	return wp
}

func (wp *workerPool) acquire(want int) int {
	if want < 1 {
		want = 1
	}
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for wp.free < 1 {
		wp.cond.Wait()
	}
	n := want
	if n > wp.free {
		n = wp.free
	}
	wp.free -= n
	return n
}

func (wp *workerPool) release(n int) {
	wp.mu.Lock()
	wp.free += n
	wp.mu.Unlock()
	wp.cond.Broadcast()
}

// Server serves concurrent snapshot-isolated sessions over one Program. See
// Program.Serve.
type Server struct {
	p    *Program
	opts Options
	prog *ast.Program // rewritten rule program, read-only, shared by sessions
	pool *workerPool
	// mu serializes the write side — Ingest and Publish — on top of the
	// Program's run mutex (which direct Run calls also take).
	mu    sync.Mutex
	epoch atomic.Pointer[Epoch]
}

// Serve freezes the Program's rule set, publishes its current facts as the
// first epoch, and returns a Server from which any number of goroutines may
// open query sessions. Serving forces SharedPlans: the Program-lifetime plan
// store is the medium through which sessions share plans and compiled units
// (including any built by Runs before serving — those hits read as cross-run
// reuse).
//
// The Program stays usable as the ingestion side: add facts via
// Server.Ingest and make them visible with Publish. Direct Run calls remain
// legal between publications (they serialize on the same mutex), but the
// epoch sessions see only advances at Publish.
func (p *Program) Serve(opts Options) (*Server, error) {
	opts.SharedPlans = true
	if opts.Histograms {
		opts.JIT.Optimizer.UseHistograms = true
	}
	prog, _, err := p.lowered(opts) // validate lowering before accepting sessions
	if err != nil {
		return nil, err
	}

	p.runMu.Lock()
	defer p.runMu.Unlock()
	if !p.frozen {
		p.frozen = true
		p.baseLens = make([]int, p.cat.NumPreds())
		for i, pd := range p.cat.Preds() {
			p.baseLens[i] = pd.Derived.Len()
		}
		p.baselineClean = true // nothing has been derived yet
	}
	// Register the access artifacts on the Program catalog too, so epoch
	// statistics snapshots carry distinct counts and histograms for the
	// session planners.
	registerArtifacts(p.cat, prog, opts)

	s := &Server{
		p:    p,
		opts: opts,
		prog: prog,
		pool: newWorkerPool(effectiveWorkers(opts)),
	}
	s.publishLocked()
	return s, nil
}

// effectiveWorkers resolves the server's worker-pool size from opts.
func effectiveWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// queryWants returns how many pool tokens one query asks for: the full
// fan-out for parallel configurations, one for sequential ones.
func queryWants(opts Options) int {
	if opts.ParallelUnions || opts.AdaptiveFanout || opts.Shards > 1 {
		return effectiveWorkers(opts)
	}
	return 1
}

// publishLocked takes the epoch snapshot and flips the pointer. Callers hold
// both s.mu (or are inside Serve) and p.runMu.
func (s *Server) publishLocked() *Epoch {
	p := s.p
	// Rewind any derived rows (e.g. from a direct Run between publications)
	// so the epoch pins exactly the ground-fact state. Pinned views from the
	// previous epoch survive this: the truncation flips the arenas to fresh
	// slabs instead of rewriting the pinned ones in place.
	p.ensureBaseline()
	// One generation bump per published epoch (serving always shares the
	// store): queries never bump, so plan hits inside an epoch read as
	// same-generation reuse and hits on entries from before the boundary as
	// cross-run reuse — however many sessions overlap.
	gen := p.cat.AdvanceEpoch()
	p.sharedStore(s.opts).BumpGeneration()
	n := p.cat.NumPreds()
	e := &Epoch{
		gen:     gen,
		names:   make([]string, n),
		arities: make([]int, n),
		rows:    make([]storage.EpochRows, n),
	}
	for i, pd := range p.cat.Preds() {
		e.names[i] = pd.Name
		e.arities[i] = pd.Arity
		e.rows[i] = pd.Derived.PinRows()
	}
	// The statistics snapshot is taken here, at the boundary and before any
	// later baseline rewind can truncate the relations the counters
	// describe — a session's planner must never observe a half-rewound
	// cardinality or histogram.
	e.stats = stats.CaptureSnapshot(p.cat)
	s.epoch.Store(e)
	return e
}

// Epoch returns the currently published epoch.
func (s *Server) Epoch() *Epoch { return s.epoch.Load() }

// Ingest runs fn — fact insertions through the Program's relation handles —
// as the single writer, mutually excluded against other ingestion, Publish,
// and direct Run calls. The new facts stay invisible to sessions until the
// next Publish.
func (s *Server) Ingest(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.runMu.Lock()
	defer s.p.runMu.Unlock()
	fn()
}

// Publish makes everything ingested so far visible atomically: it builds the
// next epoch (baseline rewind through the delta machinery, one epoch/
// generation bump, pinned rows, statistics snapshot) and flips the epoch
// pointer. Sessions opened before the flip keep their pinned epoch; sessions
// opened after see the new one.
func (s *Server) Publish() *Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.runMu.Lock()
	defer s.p.runMu.Unlock()
	return s.publishLocked()
}

// Session is one client's snapshot-isolated query context: a private catalog
// seeded from the pinned epoch, evaluated by a session-lived engine
// (interpreter, optional JIT controller) over the server's shared worker
// pool and plan store. A Session is owned by one goroutine at a time —
// concurrency comes from opening one session per client, any number of
// which query in parallel.
type Session struct {
	srv      *Server
	epoch    *Epoch
	cat      *storage.Catalog
	eng      *execEngine
	baseLens []int
	ran      bool
	closed   bool
}

// Session opens a session pinned to the currently published epoch.
func (s *Server) Session() (*Session, error) {
	e := s.epoch.Load()
	e.refs.Add(1)

	// Private catalog with the epoch's schema (identical dense PredIDs, by
	// declaration order) and ground rows; the symbol table is shared with
	// the Program (it is append-only and thread-safe), so values mean the
	// same strings in every session and epoch.
	cat := storage.NewCatalog()
	cat.Symbols = s.p.cat.Symbols
	baseLens := make([]int, len(e.names))
	for i, name := range e.names {
		id := cat.Declare(name, e.arities[i])
		pd := cat.Pred(id)
		e.rows[i].Each(func(row []storage.Value) bool {
			pd.Derived.Insert(row)
			return true
		})
		baseLens[i] = pd.Derived.Len()
	}

	root, err := lowerRoot(s.prog, s.opts)
	if err != nil {
		e.refs.Add(-1)
		return nil, err
	}
	eng, err := newExecEngine(cat, s.prog, root, s.opts, s.p.sharedStore(s.opts), e.stats)
	if err != nil {
		e.refs.Add(-1)
		return nil, err
	}
	return &Session{srv: s, epoch: e, cat: cat, eng: eng, baseLens: baseLens}, nil
}

// lowerRoot lowers a rewritten rule program to a fresh IR tree (each session
// owns its IR: join orders on it are re-optimized in place).
func lowerRoot(prog *ast.Program, opts Options) (*ir.ProgramOp, error) {
	if opts.Naive {
		return ir.LowerNaive(prog)
	}
	return ir.Lower(prog)
}

// Epoch returns the epoch this session is pinned to.
func (sess *Session) Epoch() *Epoch { return sess.epoch }

// Catalog exposes the session's private catalog (result reading; do not
// mutate).
func (sess *Session) Catalog() *storage.Catalog { return sess.cat }

// Query evaluates the program to fixpoint against the session's pinned
// epoch and returns the per-query Result. Repeated queries are independent:
// derived state rewinds to the epoch's ground rows between them.
func (sess *Session) Query() (*Result, error) {
	if sess.closed {
		return nil, fmt.Errorf("core: query on closed session")
	}
	if sess.ran {
		for i, pd := range sess.cat.Preds() {
			pd.Derived.TruncateTo(sess.baseLens[i])
			pd.DeltaKnown.Clear()
			pd.DeltaNew.Clear()
		}
	}
	sess.ran = true

	granted := sess.srv.pool.acquire(queryWants(sess.srv.opts))
	defer sess.srv.pool.release(granted)
	sess.eng.in.Workers = granted
	return sess.eng.query(sess.srv.opts.Timeout, false)
}

// Len returns the session's derived tuple count for the relation (after a
// Query).
func (sess *Session) Len(r *Relation) int {
	return sess.cat.Pred(r.id).Derived.Len()
}

// Each visits the session's derived tuples for the relation.
func (sess *Session) Each(r *Relation, f func(t []storage.Value) bool) {
	sess.cat.Pred(r.id).Derived.Each(f)
}

// Contains reports whether the session's derived relation holds the tuple
// (arguments as in Relation.Fact).
func (sess *Session) Contains(r *Relation, args ...any) bool {
	tuple := make([]storage.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			if v < 0 || v > math.MaxInt32 {
				return false
			}
			tuple[i] = storage.Value(v)
		case storage.Value:
			tuple[i] = v
		case string:
			sv, ok := sess.cat.Symbols.Lookup(v)
			if !ok {
				return false
			}
			tuple[i] = sv
		default:
			return false
		}
	}
	return sess.cat.Pred(r.id).Derived.Contains(tuple)
}

// Close releases the session's engine (JIT controller) and its epoch pin.
// Idempotent.
func (sess *Session) Close() {
	if sess.closed {
		return
	}
	sess.closed = true
	sess.eng.close()
	sess.epoch.refs.Add(-1)
}

// PlanStats returns the shared store's cumulative plan-class counters — the
// exact cross-session totals (per-query Result deltas are approximate under
// concurrency).
func (s *Server) PlanStats() plancache.Stats {
	return s.p.sharedStore(s.opts).ClassStats(plancache.ClassPlans)
}

// UnitStats returns the shared store's cumulative compiled-unit counters.
func (s *Server) UnitStats() plancache.Stats {
	return s.p.sharedStore(s.opts).ClassStats(plancache.ClassUnits)
}
