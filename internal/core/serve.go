package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/stats"
	"carac/internal/storage"
)

// This file is the serving layer: concurrent, snapshot-isolated query
// sessions over one Program. The design is reader/writer epochs (in the
// spirit of cloud-native snapshot isolation over a mutating store):
//
//   - An Epoch is an immutable snapshot of the Program's ground-fact state —
//     pinned row views of every Derived relation plus a deep statistics
//     snapshot — taken at a publication boundary.
//   - A Session pins the current epoch and evaluates on a private catalog
//     seeded from it, through the same execution pipeline Run uses
//     (interpreter, optimizer, JIT). Sessions share the Program-lifetime
//     plan store: access plans and compiled units are keyed structurally and
//     resolve relations through the executing interpreter's catalog at
//     invocation time, so one session's artifacts serve every other.
//   - Fact ingestion stays single-writer (Server.Ingest, under the
//     Program's run mutex) and becomes visible atomically: Publish rewinds
//     to the ground baseline through the existing delta machinery, advances
//     the catalog epoch and plan-store generation once, pins fresh row
//     views, captures the statistics snapshot, and flips the epoch pointer.
//     Sessions opened before the flip keep reading their pinned epoch —
//     storage-level copy-on-flip keeps those row views intact even as the
//     writer's rewind re-appends over the truncated region.
//
// Intra-query parallelism and inter-session concurrency share one bounded
// worker pool: each query takes what is free (at least one token), so an
// idle server gives a single query the full fan-out while a loaded one
// degrades gracefully to one worker per query.

// Epoch is one published snapshot of a serving Program's ground-fact state.
// It is immutable in what it asserts: later ingestion and publication cannot
// change what its rows or statistics report. Under Options.Materialize an
// epoch additionally carries the program's *derived* fixpoint once the first
// query computes it (mat, set exactly once), so every later query on the
// epoch answers by lookup.
type Epoch struct {
	gen     uint64
	names   []string
	arities []int
	rows    []storage.EpochRows
	stats   *stats.Snapshot
	refs    atomic.Int64

	// prevLens holds the previous epoch's ground-row count per predicate
	// (ground arenas are append-only across epochs, so rows beyond it are
	// exactly the facts ingested since), and prevMat its materialization if
	// one was computed — the warm-start inputs for this epoch's own
	// materialization. Nil/absent on the first epoch.
	prevLens []int
	prevMat  *epochMat
	// deletions marks an epoch whose ingestion window retracted facts
	// (Server.IngestTx). Warm-starting from the previous fixpoint is unsound
	// then even for monotone programs — a deletion can only shrink the
	// fixpoint, which seeded re-derivation cannot express — so such an epoch
	// always derives cold. prevLens/prevMat stay nil as a belt, this flag is
	// the braces (and the regression tests' observable).
	deletions bool
	// mat is the epoch's materialized fixpoint, published once by the
	// single-flight winner of the first query (Options.Materialize).
	mat atomic.Pointer[epochMat]
}

// epochMat is one epoch's materialized derived state: the post-fixpoint
// Derived rows of every predicate (pinned zero-copy from the computing
// session's catalog — the ground rows occupy each relation's prefix), the
// post-fixpoint statistics snapshot stamped with the epoch generation, and
// the oracle fact count every memo-served query reports.
type epochMat struct {
	rows  []storage.EpochRows
	stats *stats.Snapshot
	total int
	warm  bool // built by warm-starting from the previous epoch's fixpoint
}

// Materialized reports whether the epoch's derived fixpoint has been
// computed and pinned (always false when the server does not materialize).
func (e *Epoch) Materialized() bool { return e.mat.Load() != nil }

// MaterializedStats returns the post-fixpoint statistics snapshot of a
// materialized epoch, or nil before materialization.
func (e *Epoch) MaterializedStats() *stats.Snapshot {
	if m := e.mat.Load(); m != nil {
		return m.stats
	}
	return nil
}

// Generation returns the catalog epoch generation this snapshot was
// published at.
func (e *Epoch) Generation() uint64 { return e.gen }

// Stats returns the epoch's deep statistics snapshot (cardinalities,
// distinct counts, histograms — all boundary-consistent).
func (e *Epoch) Stats() *stats.Snapshot { return e.stats }

// Rows returns the pinned ground rows of predicate id.
func (e *Epoch) Rows(id storage.PredID) storage.EpochRows { return e.rows[id] }

// Sessions returns the number of sessions currently pinning this epoch
// (diagnostic; epochs need no explicit reclamation).
func (e *Epoch) Sessions() int64 { return e.refs.Load() }

// workerPool is the server's shared worker-token pool. acquire blocks until
// at least one token is free and then grants up to want of them, so a query
// on an idle server gets its full fan-out while a loaded server converges to
// one worker per concurrent query — total execution goroutines stay bounded
// by the pool size regardless of session count.
type workerPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	wp := &workerPool{free: n}
	wp.cond = sync.NewCond(&wp.mu)
	return wp
}

func (wp *workerPool) acquire(want int) int {
	if want < 1 {
		want = 1
	}
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for wp.free < 1 {
		wp.cond.Wait()
	}
	n := want
	if n > wp.free {
		n = wp.free
	}
	wp.free -= n
	return n
}

func (wp *workerPool) release(n int) {
	wp.mu.Lock()
	wp.free += n
	wp.mu.Unlock()
	wp.cond.Broadcast()
}

// ServeStats counts the serving layer's materialization activity
// (Options.Materialize; all zero otherwise).
type ServeStats struct {
	// MemoHits counts queries answered without running the fixpoint: from
	// the per-epoch query memo, from a single-flight neighbor's in-flight
	// derivation, or from the pinned materialization a session was seeded
	// with at open.
	MemoHits int64
	// MaterializedEpochs counts epochs whose derived fixpoint was computed
	// and pinned; WarmStarts of them were seeded semi-naively from the
	// previous epoch's fixpoint plus the ingested delta instead of deriving
	// from scratch.
	MaterializedEpochs int64
	WarmStarts         int64
	// Derivations counts fixpoint runs performed by serving sessions —
	// single-flight winners and retries after a failed leader.
	Derivations int64
	// Streaming-ingestion counters (Server.IngestTx; zero when only the
	// insert-only Ingest path is used). IngestBatches counts transactions
	// applied, IngestedRows assertion insertions, RowsRetracted ground rows
	// physically removed (count-gated, so redundant retractions don't
	// count), and IngestLatency the cumulative wall time spent applying.
	IngestBatches int64
	IngestedRows  int64
	RowsRetracted int64
	IngestLatency time.Duration
}

// matFlight is one in-flight materialization: the single-flight winner
// derives, everyone else blocks on done and adopts mat (or retries on err).
type matFlight struct {
	done chan struct{}
	mat  *epochMat
	err  error
}

// Server serves concurrent snapshot-isolated sessions over one Program. See
// Program.Serve.
type Server struct {
	p    *Program
	opts Options
	prog *ast.Program // rewritten rule program, read-only, shared by sessions
	pool *workerPool
	// mu serializes the write side — Ingest and Publish — on top of the
	// Program's run mutex (which direct Run calls also take).
	mu    sync.Mutex
	epoch atomic.Pointer[Epoch]

	// Materialized-epoch serving state (Options.Materialize). memoKey is the
	// structural fingerprint of the lowered query program; per-epoch memo
	// entries live in the shared plan store's memo class under
	// plancache.KeyAt(memoKey, epoch generation), so Ingest/Publish
	// invalidates by key flip rather than eviction. warmOK gates the
	// warm-start path on program monotonicity.
	memoKey  plancache.Key
	memo     *plancache.Cache[*epochMat]
	warmOK   bool
	flightMu sync.Mutex
	flights  map[plancache.Key]*matFlight

	memoHits    atomic.Int64
	matEpochs   atomic.Int64
	warmStarts  atomic.Int64
	derivations atomic.Int64

	ingestBatches   atomic.Int64
	ingestedRows    atomic.Int64
	ingestRetracted atomic.Int64
	ingestNanos     atomic.Int64
	// pendingDeletes records that the open ingestion window retracted facts;
	// consumed by the next publishLocked (guarded by s.mu + p.runMu).
	pendingDeletes bool
}

// Stats returns the server's cumulative serving counters.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		MemoHits:           s.memoHits.Load(),
		MaterializedEpochs: s.matEpochs.Load(),
		WarmStarts:         s.warmStarts.Load(),
		Derivations:        s.derivations.Load(),
		IngestBatches:      s.ingestBatches.Load(),
		IngestedRows:       s.ingestedRows.Load(),
		RowsRetracted:      s.ingestRetracted.Load(),
		IngestLatency:      time.Duration(s.ingestNanos.Load()),
	}
}

// monotoneProgram reports whether every rule is positive and aggregate-free
// — the soundness condition for warm-starting a fixpoint from a previous
// epoch's materialization under additions-only ingestion.
func monotoneProgram(prog *ast.Program) bool {
	for _, r := range prog.Rules {
		if r.Agg.Kind != ast.AggNone {
			return false
		}
		for _, a := range r.Body {
			if a.Kind == ast.AtomNegated {
				return false
			}
		}
	}
	return true
}

// Serve freezes the Program's rule set, publishes its current facts as the
// first epoch, and returns a Server from which any number of goroutines may
// open query sessions. Serving forces SharedPlans: the Program-lifetime plan
// store is the medium through which sessions share plans and compiled units
// (including any built by Runs before serving — those hits read as cross-run
// reuse).
//
// The Program stays usable as the ingestion side: add facts via
// Server.Ingest and make them visible with Publish. Direct Run calls remain
// legal between publications (they serialize on the same mutex), but the
// epoch sessions see only advances at Publish.
func (p *Program) Serve(opts Options) (*Server, error) {
	opts.SharedPlans = true
	if opts.Histograms {
		opts.JIT.Optimizer.UseHistograms = true
	}
	prog, root, err := p.lowered(opts) // validate lowering before accepting sessions
	if err != nil {
		return nil, err
	}
	if opts.Materialize {
		// The warm-start lowering must also be valid up front: a later
		// publish would otherwise surface the error on some unlucky query.
		if monotoneProgram(prog) && !opts.Naive {
			if _, werr := ir.LowerWarm(prog); werr != nil {
				return nil, werr
			}
		}
	}

	p.runMu.Lock()
	defer p.runMu.Unlock()
	if !p.frozen {
		p.frozen = true
		p.baseLens = make([]int, p.cat.NumPreds())
		for i, pd := range p.cat.Preds() {
			p.baseLens[i] = pd.Derived.Len()
		}
		p.baselineClean = true // nothing has been derived yet
	}
	// Register the access artifacts on the Program catalog too, so epoch
	// statistics snapshots carry distinct counts and histograms for the
	// session planners.
	registerArtifacts(p.cat, prog, opts)
	// Load the persistent cache (if configured) now that indexes exist to
	// revalidate loaded plans against; the first publish below flushes it
	// back, so even an idle server refreshes the directory's version tag.
	p.ensurePersistLocked(opts)

	s := &Server{
		p:    p,
		opts: opts,
		prog: prog,
		pool: newWorkerPool(effectiveWorkers(opts)),
	}
	if opts.Materialize {
		s.memoKey = plancache.KeyForOp(root)
		s.memo = plancache.View[*epochMat](p.sharedStore(opts), plancache.ViewConfig{Class: plancache.ClassMemos})
		s.warmOK = monotoneProgram(prog) && !opts.Naive
		s.flights = make(map[plancache.Key]*matFlight)
	}
	s.publishLocked()
	return s, nil
}

// effectiveWorkers resolves the server's worker-pool size from opts.
func effectiveWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// queryWants returns how many pool tokens one query asks for: the full
// fan-out for parallel configurations, one for sequential ones.
func queryWants(opts Options) int {
	if opts.ParallelUnions || opts.AdaptiveFanout || opts.Shards > 1 {
		return effectiveWorkers(opts)
	}
	return 1
}

// publishLocked takes the epoch snapshot and flips the pointer. Callers hold
// both s.mu (or are inside Serve) and p.runMu.
func (s *Server) publishLocked() *Epoch {
	p := s.p
	old := s.epoch.Load() // nil on the first publish
	// Rewind any derived rows (e.g. from a direct Run between publications)
	// so the epoch pins exactly the ground-fact state. Pinned views from the
	// previous epoch survive this: the truncation flips the arenas to fresh
	// slabs instead of rewriting the pinned ones in place.
	p.ensureBaseline()
	// One generation bump per published epoch (serving always shares the
	// store): queries never bump, so plan hits inside an epoch read as
	// same-generation reuse and hits on entries from before the boundary as
	// cross-run reuse — however many sessions overlap.
	gen := p.cat.AdvanceEpoch()
	p.sharedStore(s.opts).BumpGeneration()
	n := p.cat.NumPreds()
	e := &Epoch{
		gen:     gen,
		names:   make([]string, n),
		arities: make([]int, n),
		rows:    make([]storage.EpochRows, n),
	}
	for i, pd := range p.cat.Preds() {
		e.names[i] = pd.Name
		e.arities[i] = pd.Arity
		e.rows[i] = pd.Derived.PinRows()
	}
	// The statistics snapshot is taken here, at the boundary and before any
	// later baseline rewind can truncate the relations the counters
	// describe — a session's planner must never observe a half-rewound
	// cardinality or histogram.
	e.stats = stats.CaptureSnapshot(p.cat)
	// Flush-on-publish: persist everything sessions built during the closing
	// epoch, with the new boundary's statistics as the profile snapshot, so
	// a restart after any publication starts disk-warm.
	p.flushPersistLocked(p.sharedStore(s.opts), e.stats)
	if s.pendingDeletes {
		// A retraction-bearing window breaks the append-only premise below:
		// the previous epoch's ground lengths no longer delimit a pure
		// addition delta, so this epoch must derive cold even for monotone
		// programs. The flag is window-scoped — the NEXT epoch's delta is
		// again additions-over-this-epoch (or flagged anew).
		e.deletions = true
		s.pendingDeletes = false
	} else if old != nil && len(old.rows) == n {
		// Ground arenas are append-only across epochs (facts are only ever
		// added; the baseline rewind truncates derived suffixes only), so the
		// previous epoch's ground lengths delimit the ingested delta inside
		// this epoch's pinned rows — the warm-start seed. The previous
		// materialization, if any, rides along as the fixpoint to extend.
		e.prevLens = make([]int, n)
		for i := range old.rows {
			e.prevLens[i] = old.rows[i].Len()
		}
		e.prevMat = old.mat.Load()
	}
	s.epoch.Store(e)
	return e
}

// Epoch returns the currently published epoch.
func (s *Server) Epoch() *Epoch { return s.epoch.Load() }

// Ingest runs fn — fact insertions through the Program's relation handles —
// as the single writer, mutually excluded against other ingestion, Publish,
// and direct Run calls. The new facts stay invisible to sessions until the
// next Publish.
func (s *Server) Ingest(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.runMu.Lock()
	defer s.p.runMu.Unlock()
	fn()
}

// IngestResult reports one streamed transaction's application.
type IngestResult struct {
	// Latency is the wall time spent applying the batch.
	Latency time.Duration
	// Inserted counts assertions applied, Deleted retractions that matched
	// an asserted fact, and Retracted the ground rows physically removed —
	// assertions whose count reached zero (counting semantics: a fact
	// asserted twice survives one deletion).
	Inserted  int
	Deleted   int
	Retracted int
}

// IngestTx applies a batched transaction of fact insertions and deletions to
// the server's ground state as the single writer. Ground facts carry
// assertion counts (enabled on first use): redundant assertions fold into a
// count, and a retraction removes the row only when its count reaches zero —
// one batched compaction per relation. Pinned epochs are untouched: the
// compaction flips shared arenas copy-on-write, so sessions on any published
// epoch keep serving the exact rows they pinned. Changes become visible at
// the next Publish; a batch that retracted rows marks that epoch
// deletion-bearing, pinning its materialization to the cold path (warm
// seeding from the previous fixpoint is unsound under deletions).
func (s *Server) IngestTx(tx *Tx) (IngestResult, error) {
	var res IngestResult
	if tx == nil || tx.p != s.p {
		return res, fmt.Errorf("core: IngestTx of a transaction built for a different Program")
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.p
	p.runMu.Lock()
	defer p.runMu.Unlock()
	// Rewind to the ground baseline (no-op between publishes unless a direct
	// Run intervened) so counts and the prefix invariant address only ground
	// rows, then flip every relation to counted mode once.
	p.ensureBaseline()
	p.enableCountsLocked()
	for _, pid := range tx.delOrder {
		pd := p.cat.Pred(pid)
		var dead [][]storage.Value
		for _, t := range tx.dels[pid] {
			if rem, ok := pd.Derived.DecRef(t); ok {
				res.Deleted++
				if rem == 0 {
					dead = append(dead, t)
				}
			}
		}
		removed, below := pd.Derived.DeleteRows(dead, p.baseLens[pid])
		p.baseLens[pid] -= below
		res.Retracted += removed
	}
	for _, pid := range tx.insOrder {
		pd := p.cat.Pred(pid)
		for _, t := range tx.ins[pid] {
			if pd.Derived.IncRef(t) {
				p.baseLens[pid]++
			}
			res.Inserted++
		}
	}
	if res.Retracted > 0 {
		s.pendingDeletes = true
	}
	res.Latency = time.Since(start)
	s.ingestBatches.Add(1)
	s.ingestedRows.Add(int64(res.Inserted))
	s.ingestRetracted.Add(int64(res.Retracted))
	s.ingestNanos.Add(int64(res.Latency))
	return res, nil
}

// Publish makes everything ingested so far visible atomically: it builds the
// next epoch (baseline rewind through the delta machinery, one epoch/
// generation bump, pinned rows, statistics snapshot) and flips the epoch
// pointer. Sessions opened before the flip keep their pinned epoch; sessions
// opened after see the new one.
func (s *Server) Publish() *Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.runMu.Lock()
	defer s.p.runMu.Unlock()
	return s.publishLocked()
}

// Session is one client's snapshot-isolated query context: a private catalog
// seeded from the pinned epoch, evaluated by a session-lived engine
// (interpreter, optional JIT controller) over the server's shared worker
// pool and plan store. A Session is owned by one goroutine at a time —
// concurrency comes from opening one session per client, any number of
// which query in parallel.
type Session struct {
	srv      *Server
	epoch    *Epoch
	cat      *storage.Catalog
	eng      *execEngine
	weng     *execEngine // lazily built warm-start engine (ir.LowerWarm root)
	baseLens []int
	ran      bool
	closed   bool
	// mat is the epoch materialization this session's catalog holds the
	// fixpoint of (seeded at open on an already-materialized epoch, adopted
	// on a memo hit, or pinned by this session's own derivation); queries
	// while it is set are pure lookups.
	mat *epochMat
}

// Session opens a session pinned to the currently published epoch. On a
// materialized epoch the private catalog is seeded with the pinned fixpoint
// rather than the ground rows, so every query the session issues is a
// lookup.
func (s *Server) Session() (*Session, error) {
	e := s.epoch.Load()
	e.refs.Add(1)

	var mat *epochMat
	if s.opts.Materialize {
		mat = e.mat.Load()
	}

	// Private catalog with the epoch's schema (identical dense PredIDs, by
	// declaration order) and ground rows; the symbol table is shared with
	// the Program (it is append-only and thread-safe), so values mean the
	// same strings in every session and epoch.
	cat := storage.NewCatalog()
	cat.Symbols = s.p.cat.Symbols
	baseLens := make([]int, len(e.names))
	for i, name := range e.names {
		id := cat.Declare(name, e.arities[i])
		pd := cat.Pred(id)
		src := e.rows[i]
		if mat != nil {
			src = mat.rows[i] // fixpoint rows; the ground rows are their prefix
		}
		src.Each(func(row []storage.Value) bool {
			pd.Derived.Insert(row)
			return true
		})
		baseLens[i] = e.rows[i].Len()
	}

	root, err := lowerRoot(s.prog, s.opts)
	if err != nil {
		e.refs.Add(-1)
		return nil, err
	}
	eng, err := newExecEngine(cat, s.prog, root, s.opts, s.p.sharedStore(s.opts), e.stats)
	if err != nil {
		e.refs.Add(-1)
		return nil, err
	}
	return &Session{srv: s, epoch: e, cat: cat, eng: eng, baseLens: baseLens, mat: mat}, nil
}

// lowerRoot lowers a rewritten rule program to a fresh IR tree (each session
// owns its IR: join orders on it are re-optimized in place).
func lowerRoot(prog *ast.Program, opts Options) (*ir.ProgramOp, error) {
	if opts.Naive {
		return ir.LowerNaive(prog)
	}
	return ir.Lower(prog)
}

// Epoch returns the epoch this session is pinned to.
func (sess *Session) Epoch() *Epoch { return sess.epoch }

// Catalog exposes the session's private catalog (result reading; do not
// mutate).
func (sess *Session) Catalog() *storage.Catalog { return sess.cat }

// Query evaluates the program to fixpoint against the session's pinned
// epoch and returns the per-query Result. Repeated queries are independent:
// derived state rewinds to the epoch's ground rows between them. Under
// Options.Materialize the fixpoint is computed at most once per epoch across
// all sessions — later queries answer from the pinned materialization.
func (sess *Session) Query() (*Result, error) {
	if sess.closed {
		return nil, fmt.Errorf("core: query on closed session")
	}
	if sess.srv.opts.Materialize {
		return sess.queryMaterialized()
	}
	if sess.ran {
		sess.rewind()
	}
	sess.ran = true

	granted := sess.srv.pool.acquire(queryWants(sess.srv.opts))
	defer sess.srv.pool.release(granted)
	sess.eng.in.Workers = granted
	return sess.eng.query(sess.srv.opts.Timeout, false)
}

// rewind restores the session catalog to the epoch's ground rows.
func (sess *Session) rewind() {
	for i, pd := range sess.cat.Preds() {
		pd.Derived.TruncateTo(sess.baseLens[i])
		pd.DeltaKnown.Clear()
		pd.DeltaNew.Clear()
	}
}

// queryMaterialized answers a query on a materialize-enabled server. In
// order of preference: the session already holds the fixpoint (lookup); the
// epoch or the shared memo has it (adopt + lookup); a neighbor is deriving
// it right now (wait + adopt); nobody is (derive as the single-flight
// winner, pin, publish).
func (sess *Session) queryMaterialized() (*Result, error) {
	t0 := time.Now()
	srv, e := sess.srv, sess.epoch
	if sess.mat != nil {
		srv.memoHits.Add(1)
		return &Result{Duration: time.Since(t0), TotalFacts: sess.mat.total}, nil
	}
	key := plancache.KeyAt(srv.memoKey, e.gen)
	if m := e.mat.Load(); m != nil {
		srv.memoHits.Add(1)
		sess.adoptMat(m)
		return &Result{Duration: time.Since(t0), TotalFacts: m.total}, nil
	}
	if m, ok, _ := srv.memo.Lookup(key, nil, nil); ok && m != nil {
		srv.memoHits.Add(1)
		sess.adoptMat(m)
		return &Result{Duration: time.Since(t0), TotalFacts: m.total}, nil
	}
	for {
		srv.flightMu.Lock()
		if f, ok := srv.flights[key]; ok {
			// A neighbor session is deriving this epoch's fixpoint; wait for
			// it rather than duplicating the work.
			srv.flightMu.Unlock()
			<-f.done
			if f.err != nil {
				continue // leader failed; contend for leadership ourselves
			}
			srv.memoHits.Add(1)
			sess.adoptMat(f.mat)
			return &Result{Duration: time.Since(t0), TotalFacts: f.mat.total}, nil
		}
		f := &matFlight{done: make(chan struct{})}
		srv.flights[key] = f
		srv.flightMu.Unlock()

		res, m, err := sess.derive()
		if err == nil {
			srv.memo.Store(key, nil, nil, m)
			if e.mat.CompareAndSwap(nil, m) {
				srv.matEpochs.Add(1)
				if m.warm {
					srv.warmStarts.Add(1)
				}
			}
			sess.mat = m
			f.mat = m
		}
		f.err = err
		srv.flightMu.Lock()
		delete(srv.flights, key)
		srv.flightMu.Unlock()
		close(f.done)
		return res, err
	}
}

// derive runs the fixpoint on the session's catalog and pins the result as
// this epoch's materialization. When the previous epoch's fixpoint is
// available and the program is monotone, it warm-starts: the catalog is
// pre-seeded with the old fixpoint and only the ingested ground delta (plus
// rows each stratum newly derives) re-enters semi-naive evaluation, through
// the ir.LowerWarm root and the interpreter's SeedDelta hook.
func (sess *Session) derive() (*Result, *epochMat, error) {
	srv, e := sess.srv, sess.epoch
	if sess.ran {
		sess.rewind()
	}
	sess.ran = true
	srv.derivations.Add(1)

	eng := sess.eng
	warm := false
	// A deletion-bearing epoch pins the cold path: the previous fixpoint may
	// over-approximate this epoch's, and seeding can only add. The
	// deletions flag would be redundant with nil prevLens — both are kept so
	// a regression in either guard still fails closed.
	if srv.warmOK && e.prevMat != nil && e.prevLens != nil && !e.deletions {
		weng, werr := sess.warmEngine()
		if werr != nil {
			return nil, nil, werr
		}
		eng = weng
		warm = true
		// Pre-seed the catalog with the previous fixpoint (its ground prefix
		// overlaps this epoch's ground rows; Insert dedups) and record each
		// predicate's watermark: rows beyond it at a stratum's ScanOp are new
		// since the previous epoch — derived by an earlier stratum of this
		// very run — and must re-enter evaluation alongside the ground delta.
		wm := make([]int, sess.cat.NumPreds())
		for i, pr := range e.prevMat.rows {
			pd := sess.cat.Pred(storage.PredID(i))
			pr.Each(func(row []storage.Value) bool {
				pd.Derived.Insert(row)
				return true
			})
		}
		for i, pd := range sess.cat.Preds() {
			wm[i] = pd.Derived.Len()
		}
		eng.setSeedDelta(func(pid storage.PredID, dst *storage.Relation) bool {
			g := e.rows[pid]
			for j := e.prevLens[pid]; j < g.Len(); j++ {
				dst.Insert(g.Row(j))
			}
			der := sess.cat.Pred(pid).Derived
			for j := wm[pid]; j < der.Len(); j++ {
				dst.Insert(der.Row(int32(j)))
			}
			return true
		})
		defer eng.setSeedDelta(nil)
	}

	granted := srv.pool.acquire(queryWants(srv.opts))
	defer srv.pool.release(granted)
	eng.in.Workers = granted
	res, err := eng.query(srv.opts.Timeout, false)
	if err != nil {
		return nil, nil, err
	}

	n := sess.cat.NumPreds()
	m := &epochMat{rows: make([]storage.EpochRows, n), warm: warm}
	for i, pd := range sess.cat.Preds() {
		m.rows[i] = pd.Derived.PinRows()
		m.total += m.rows[i].Len()
	}
	m.stats = stats.CaptureSnapshotAt(sess.cat, e.gen)
	return res, m, nil
}

// adoptMat loads a materialization computed elsewhere into this session's
// catalog, so Len/Each/Contains read the fixpoint exactly as if the session
// had derived it.
func (sess *Session) adoptMat(m *epochMat) {
	if sess.ran {
		sess.rewind()
	}
	sess.ran = true
	for i, pd := range sess.cat.Preds() {
		m.rows[i].Each(func(row []storage.Value) bool {
			pd.Derived.Insert(row)
			return true
		})
	}
	sess.mat = m
}

// warmEngine lazily assembles the session's warm-start engine: the same
// catalog and shared plan store, but an ir.LowerWarm root (a delta variant
// per positive body atom, no naive prologue) staged against the previous
// materialization's post-fixpoint statistics.
func (sess *Session) warmEngine() (*execEngine, error) {
	if sess.weng != nil {
		return sess.weng, nil
	}
	root, err := ir.LowerWarm(sess.srv.prog)
	if err != nil {
		return nil, err
	}
	weng, err := newExecEngine(sess.cat, sess.srv.prog, root, sess.srv.opts, sess.srv.p.sharedStore(sess.srv.opts), sess.epoch.prevMat.stats)
	if err != nil {
		return nil, err
	}
	sess.weng = weng
	return weng, nil
}

// Len returns the session's derived tuple count for the relation (after a
// Query).
func (sess *Session) Len(r *Relation) int {
	return sess.cat.Pred(r.id).Derived.Len()
}

// Each visits the session's derived tuples for the relation.
func (sess *Session) Each(r *Relation, f func(t []storage.Value) bool) {
	sess.cat.Pred(r.id).Derived.Each(f)
}

// Contains reports whether the session's derived relation holds the tuple
// (arguments as in Relation.Fact).
func (sess *Session) Contains(r *Relation, args ...any) bool {
	tuple := make([]storage.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			if v < 0 || v > math.MaxInt32 {
				return false
			}
			tuple[i] = storage.Value(v)
		case storage.Value:
			tuple[i] = v
		case string:
			sv, ok := sess.cat.Symbols.Lookup(v)
			if !ok {
				return false
			}
			tuple[i] = sv
		default:
			return false
		}
	}
	return sess.cat.Pred(r.id).Derived.Contains(tuple)
}

// Close releases the session's engine (JIT controller) and its epoch pin.
// Idempotent.
func (sess *Session) Close() {
	if sess.closed {
		return
	}
	sess.closed = true
	sess.eng.close()
	if sess.weng != nil {
		sess.weng.close()
	}
	sess.epoch.refs.Add(-1)
}

// PlanStats returns the shared store's cumulative plan-class counters — the
// exact cross-session totals (per-query Result deltas are approximate under
// concurrency).
func (s *Server) PlanStats() plancache.Stats {
	return s.p.sharedStore(s.opts).ClassStats(plancache.ClassPlans)
}

// UnitStats returns the shared store's cumulative compiled-unit counters.
func (s *Server) UnitStats() plancache.Stats {
	return s.p.sharedStore(s.opts).ClassStats(plancache.ClassUnits)
}

// MemoStats returns the shared store's cumulative memo-class counters
// (materialized-epoch lookups that went through the plan store).
func (s *Server) MemoStats() plancache.Stats {
	return s.p.sharedStore(s.opts).ClassStats(plancache.ClassMemos)
}

// DiskStats returns the persistent cache's traffic counters; ok is false
// when the server was started without Options.CacheDir.
func (s *Server) DiskStats() (plancache.DiskStats, bool) { return s.p.DiskStats() }
