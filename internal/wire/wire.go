// Package wire holds the little-endian append/read primitives shared by the
// persistent-cache codecs (interp plan, bytecode program, stats snapshot,
// plancache container). Encoders append to a caller-owned []byte; decoders go
// through Reader, which carries a sticky error so callers can chain reads and
// check once. All multi-byte values are little-endian; signed 32-bit values
// round-trip through a uint32 cast so negatives (interned symbols, -1
// sentinels) survive.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is the sticky error Reader reports when the buffer runs out or
// a length prefix exceeds the remaining bytes. Corrupt cache files surface as
// exactly this (or a codec's own validation error) and are treated as misses.
var ErrTruncated = errors.New("wire: truncated or corrupt buffer")

func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func AppendI32(b []byte, v int32) []byte { return AppendU32(b, uint32(v)) }

// AppendInt encodes a Go int that is known to fit int32 (column indexes,
// counts, -1 sentinels).
func AppendInt(b []byte, v int) []byte { return AppendU32(b, uint32(int32(v))) }

func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendBytes writes a u32 length prefix followed by the bytes.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendU32(b, uint32(len(p)))
	return append(b, p...)
}

func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// Reader decodes a buffer written with the Append helpers. After the first
// failed read every subsequent read returns the zero value and Err() reports
// ErrTruncated; decoders check Err() once at the end.
type Reader struct {
	b   []byte
	err error
}

func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
	r.b = nil
}

func (r *Reader) Err() error { return r.err }

// Len reports the remaining undecoded bytes.
func (r *Reader) Len() int { return len(r.b) }

// Rest returns the remaining bytes without consuming them.
func (r *Reader) Rest() []byte { return r.b }

// Skip advances past n bytes.
func (r *Reader) Skip(n int) {
	if n < 0 || n > len(r.b) {
		r.fail()
		return
	}
	r.b = r.b[n:]
}

func (r *Reader) U8() uint8 {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *Reader) U32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *Reader) U64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *Reader) I32() int32 { return int32(r.U32()) }

func (r *Reader) Int() int { return int(int32(r.U32())) }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a u32 length prefix and returns that many bytes (aliasing the
// underlying buffer; callers copy if they retain).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *Reader) String() string { return string(r.Bytes()) }

// Count reads a u32 element count and validates it against the remaining
// buffer assuming each element occupies at least elemSize bytes, so garbage
// length prefixes cannot force huge allocations. Returns -1 on failure.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil || n < 0 || elemSize < 1 || n > len(r.b)/elemSize {
		r.fail()
		return -1
	}
	return n
}
