// Persistent, content-addressed cache: the on-disk extension of the
// Program-lifetime store. Structural fingerprints are already
// content-addressed, so each (class, key) pair maps to exactly one file in
// the cache directory — named by the SHA-256 of the fingerprint signature —
// holding every band entry of that key plus the bucket's quantization state.
// The profile-statistics snapshot the entries were built against rides along
// in its own file, so a restarted process can re-optimize incrementally
// instead of from zero.
//
// Robustness contract: a cache file is advisory. Truncated, garbage, or
// version-mismatched files load as silent misses (counted in
// DiskStats.Invalidations) and are overwritten on the next flush — never an
// error, never a partial entry. Writes go through a temp file in the same
// directory plus os.Rename, so a reader or a concurrently flushing second
// process only ever observes a complete old file or a complete new one.
// Flush never deletes files: an entry the in-memory LRU evicted survives on
// disk and reloads on the next open. Directory hygiene happens at Load
// instead: files that fail validation are removed (they could never load
// again — the next flush would just orphan them under a new tag), and
// temp files old enough that no live flusher can still own them are swept.
package plancache

import (
	"crypto/sha256"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"carac/internal/stats"
	"carac/internal/wire"
)

// persistFormatVersion tags the container layout below; bump on any change.
// Payload layouts are additionally guarded by the tag string callers build
// from the engine version and per-codec versions.
const persistFormatVersion = 1

const (
	entryExt    = ".cce" // cache container entry
	profileName = "profile.ccs"
)

var (
	entryMagic   = [4]byte{'C', 'R', 'P', 'C'}
	profileMagic = [4]byte{'C', 'R', 'P', 'S'}
)

// Entry is one band entry of the store in exportable form: its class and
// fingerprint key, the bucket's band-quantization shift, and the freshness
// vectors (build-time cardinalities, last-seen drift counters) the lookup
// gate needs to decide whether the live world still matches.
type Entry struct {
	Class    Class
	Key      Key
	Widen    uint8
	Counters []uint64
	Cards    []int
	Val      any
}

// Export snapshots every entry of the given classes. Shards are locked one
// at a time, so Export is safe against concurrent lookups and stores and
// never blocks the whole store.
func (s *Store) Export(classes ...Class) []Entry {
	want := [numClasses]bool{}
	for _, c := range classes {
		if int(c) < int(numClasses) {
			want[c] = true
		}
	}
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for vk, bucket := range sh.buckets {
			if !want[vk.class] {
				continue
			}
			for _, e := range bucket.bands {
				out = append(out, Entry{
					Class:    vk.class,
					Key:      vk.key,
					Widen:    bucket.widen,
					Counters: append([]uint64(nil), e.counters...),
					Cards:    append([]int(nil), e.cards...),
					Val:      e.val,
				})
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Inject inserts a loaded entry. The entry's generation is set to zero —
// strictly before any generation a live run can observe — so its first hit
// counts as a cross-run hit, same as an entry surviving from a previous Run.
// An already-occupied band (the process built its own entry first) wins over
// the disk copy; Inject reports whether the entry was installed. Statistics
// counters are untouched: disk traffic is accounted in DiskStats, not in the
// store's hit/miss ledger.
func (s *Store) Inject(e Entry) bool {
	vk := viewKey{class: e.Class, key: e.Key}
	sh := s.shardFor(vk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.buckets[vk]
	if bucket == nil {
		bucket = &keyBucket{bands: make(map[string]*entry), widen: e.Widen}
		sh.buckets[vk] = bucket
	}
	band := bandSig(e.Cards, bucket.widen)
	if bucket.bands[band] != nil {
		return false
	}
	ne := &entry{
		val:      e.Val,
		cards:    append([]int(nil), e.Cards...),
		counters: append([]uint64(nil), e.Counters...),
		gen:      0,
		vk:       vk,
		band:     band,
	}
	bucket.bands[band] = ne
	sh.pushFront(ne)
	sh.entries++
	if lim := s.perShard; lim > 0 {
		for sh.entries > lim && sh.tail != nil && sh.tail != ne {
			victim := sh.tail
			sh.stats[victim.vk.class].Evictions++
			sh.evict(victim)
		}
	}
	return true
}

// EntryCodec translates one class's cached values to and from persistable
// payloads. Encode reports persist=false to skip an entry entirely (e.g. a
// failed-compile marker); persist=true with a nil payload records a
// "recompile hint" — the entry existed, but its artifact is not serializable
// (lambda/quotes units), so a restarted process knows to recompile rather
// than finding a false artifact. Decode errors are treated as invalid files,
// never surfaced to the caller.
type EntryCodec struct {
	Encode func(v any) (payload []byte, persist bool)
	Decode func(payload []byte) (any, error)
}

// DiskStats counts the persistence layer's traffic, surfaced next to the
// in-memory store statistics: Hits = entries restored from disk at load,
// Misses = recompile hints seen at load (the entry must be rebuilt),
// Invalidations = files or payloads rejected (wrong magic, version or tag
// mismatch, truncation, checksum or decode failure), Flushes = entries
// written to disk, Swept = files Load removed from the directory (rejected
// entry/profile files plus aged-out temp files from crashed flushes).
type DiskStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Flushes       int64
	Swept         int64
}

// Persister binds a Store to a cache directory under a version tag. Callers
// build the tag from the engine version plus every payload-codec version, so
// any layout change invalidates the whole directory at once.
type Persister struct {
	dir    string
	tag    string
	codecs map[Class]EntryCodec

	mu      sync.Mutex
	stats   DiskStats
	profile *stats.Snapshot
}

// NewPersister creates a persister for dir (created on first flush if
// missing). codecs maps each persistable class to its payload codec; classes
// without a codec are neither flushed nor loaded.
func NewPersister(dir, tag string, codecs map[Class]EntryCodec) *Persister {
	return &Persister{dir: dir, tag: tag, codecs: codecs}
}

// Stats returns a copy of the disk-traffic counters.
func (p *Persister) Stats() DiskStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Profile returns the statistics snapshot loaded from the cache directory,
// or nil if none was present or it failed validation. It describes the
// world the persisted plans were built against.
func (p *Persister) Profile() *stats.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profile
}

func entryFileName(class Class, key Key) string {
	sum := sha256.Sum256([]byte(key.Sig))
	return fmt.Sprintf("c%d-%x%s", class, sum, entryExt)
}

// tmpOrphanAge is how old a flush temp file must be before Load treats it
// as an orphan of a crashed process and sweeps it. A live flusher holds its
// temp file for milliseconds, so an hour leaves no realistic race with a
// concurrent process sharing the directory.
const tmpOrphanAge = time.Hour

// Load reads every valid cache file in the directory into the store. It
// never fails: a missing directory is an empty cache, and every unreadable
// or invalid file is a silent miss counted in Invalidations. Load also
// garbage-collects the directory: entry and profile files that fail
// validation (wrong magic, version or tag mismatch, truncation, checksum or
// decode failure) are removed — they could never load again, and the next
// flush would not necessarily overwrite them — as are temp files from
// crashed flushes once they are older than tmpOrphanAge. Removals are
// counted in DiskStats.Swept.
func (p *Persister) Load(s *Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(p.dir, name)
		if strings.HasPrefix(name, ".tmp-") {
			if fi, err := de.Info(); err == nil && time.Since(fi.ModTime()) >= tmpOrphanAge {
				p.sweepLocked(path)
			}
			continue
		}
		if name == profileName {
			if p.loadProfileLocked(path) {
				p.sweepLocked(path)
			}
			continue
		}
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		if p.loadEntryFileLocked(s, path) {
			p.sweepLocked(path)
		}
	}
}

func (p *Persister) sweepLocked(path string) {
	if os.Remove(path) == nil {
		p.stats.Swept++
	}
}

// checkEnvelope validates length, trailing CRC-32, magic, format version,
// and tag, returning the inner payload reader positioned after the header.
func (p *Persister) checkEnvelope(b []byte, magic [4]byte) (*wire.Reader, bool) {
	if len(b) < len(magic)+8 {
		return nil, false
	}
	body, sum := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != wire.NewReader(sum).U32() {
		return nil, false
	}
	if string(body[:4]) != string(magic[:]) {
		return nil, false
	}
	r := wire.NewReader(body[4:])
	if r.U32() != persistFormatVersion {
		return nil, false
	}
	if r.String() != p.tag {
		return nil, false
	}
	return r, r.Err() == nil
}

// loadEntryFileLocked reads one entry file into the store and reports
// whether the file is permanently invalid and should be removed. Transient
// conditions — a read error, or a class this process has no codec for —
// count as invalidations but keep the file.
func (p *Persister) loadEntryFileLocked(s *Store, path string) (drop bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		p.stats.Invalidations++
		return false
	}
	r, ok := p.checkEnvelope(b, entryMagic)
	if !ok {
		p.stats.Invalidations++
		return true
	}
	class := Class(r.U8())
	codec, hasCodec := p.codecs[class]
	sig := r.String()
	widen := r.U8()
	n := r.Count(1)
	if r.Err() != nil || n < 0 {
		p.stats.Invalidations++
		return true
	}
	if !hasCodec {
		p.stats.Invalidations++
		return false
	}
	var hits, misses int64
	for i := 0; i < n; i++ {
		hasArtifact := r.U8() != 0
		var counters []uint64
		if m := r.Count(8); m > 0 {
			counters = make([]uint64, m)
			for j := range counters {
				counters[j] = r.U64()
			}
		}
		var cards []int
		if m := r.Count(8); m > 0 {
			cards = make([]int, m)
			for j := range cards {
				cards[j] = int(int64(r.U64()))
			}
		}
		payload := r.Bytes()
		if r.Err() != nil {
			p.stats.Invalidations++
			return true
		}
		if !hasArtifact {
			// Recompile hint: the previous process had this entry on a
			// non-serializable backend. Nothing to install.
			misses++
			continue
		}
		val, err := codec.Decode(payload)
		if err != nil {
			p.stats.Invalidations++
			return true
		}
		if s.Inject(Entry{Class: class, Key: Key{Sig: sig}, Widen: widen, Counters: counters, Cards: cards, Val: val}) {
			hits++
		}
	}
	p.stats.Hits += hits
	p.stats.Misses += misses
	return false
}

// loadProfileLocked reads the profile snapshot and reports whether the file
// failed validation and should be removed.
func (p *Persister) loadProfileLocked(path string) (drop bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		p.stats.Invalidations++
		return false
	}
	r, ok := p.checkEnvelope(b, profileMagic)
	if !ok {
		p.stats.Invalidations++
		return true
	}
	snap, err := stats.DecodeSnapshot(r.Rest())
	if err != nil {
		p.stats.Invalidations++
		return true
	}
	p.profile = snap
	return false
}

// writeAtomic writes b to name in the cache directory via a same-directory
// temp file and rename, so concurrent flushers (two processes sharing one
// cache dir) race only over which complete file wins.
func (p *Persister) writeAtomic(name string, b []byte) error {
	f, err := os.CreateTemp(p.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(b); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(p.dir, name))
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

func (p *Persister) envelope(magic [4]byte) []byte {
	b := append([]byte(nil), magic[:]...)
	b = wire.AppendU32(b, persistFormatVersion)
	return wire.AppendString(b, p.tag)
}

func seal(b []byte) []byte { return wire.AppendU32(b, crc32.ChecksumIEEE(b)) }

// Flush writes every persistable entry of the store's codec-bearing classes
// to the cache directory, one file per (class, key), plus the profile
// snapshot when non-nil. Existing files are replaced atomically; files for
// keys no longer in the store are left in place (the in-memory LRU forgets,
// the disk does not). The returned error reports only directory-level
// failures; callers treat it as advisory.
func (p *Persister) Flush(s *Store, snap *stats.Snapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return err
	}
	classes := make([]Class, 0, len(p.codecs))
	for c := range p.codecs {
		classes = append(classes, c)
	}
	type group struct {
		widen   uint8
		entries []Entry
	}
	groups := make(map[viewKey]*group)
	for _, e := range s.Export(classes...) {
		vk := viewKey{class: e.Class, key: e.Key}
		g := groups[vk]
		if g == nil {
			g = &group{widen: e.Widen}
			groups[vk] = g
		}
		g.entries = append(g.entries, e)
	}
	var firstErr error
	for vk, g := range groups {
		codec := p.codecs[vk.class]
		b := p.envelope(entryMagic)
		b = wire.AppendU8(b, uint8(vk.class))
		b = wire.AppendString(b, vk.key.Sig)
		b = wire.AppendU8(b, g.widen)
		countAt := len(b)
		b = wire.AppendU32(b, 0)
		written := 0
		for _, e := range g.entries {
			payload, persist := codec.Encode(e.Val)
			if !persist {
				continue
			}
			hasArtifact := uint8(0)
			if payload != nil {
				hasArtifact = 1
			}
			b = wire.AppendU8(b, hasArtifact)
			b = wire.AppendInt(b, len(e.Counters))
			for _, c := range e.Counters {
				b = wire.AppendU64(b, c)
			}
			b = wire.AppendInt(b, len(e.Cards))
			for _, c := range e.Cards {
				b = wire.AppendU64(b, uint64(int64(c)))
			}
			b = wire.AppendBytes(b, payload)
			written++
		}
		if written == 0 {
			continue
		}
		copy(b[countAt:], wire.AppendU32(nil, uint32(written)))
		if err := p.writeAtomic(entryFileName(vk.class, vk.key), seal(b)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.stats.Flushes += int64(written)
	}
	if snap != nil {
		b := stats.AppendSnapshot(p.envelope(profileMagic), snap)
		if err := p.writeAtomic(profileName, seal(b)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
