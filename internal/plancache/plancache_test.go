package plancache

import (
	"fmt"
	"sync"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/storage"
)

func TestBand(t *testing.T) {
	cases := []struct{ card, band int }{
		{0, 0}, {-3, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := Band(c.card); got != c.band {
			t.Fatalf("Band(%d) = %d, want %d", c.card, got, c.band)
		}
	}
	if BandSig([]int{0, 1, 4}) != string([]byte{0, 1, 3}) {
		t.Fatalf("BandSig = %q", BandSig([]int{0, 1, 4}))
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}
	if !p.Fresh([]int{100}, []int{150}) {
		t.Fatal("drift 0.5 should be fresh under the default threshold")
	}
	if p.Fresh([]int{100}, []int{151}) {
		t.Fatal("drift > 0.5 should be stale under the default threshold")
	}
	tight := Policy{Threshold: 0.01}
	if tight.Fresh([]int{100}, []int{110}) {
		t.Fatal("drift 0.1 should be stale under threshold 0.01")
	}
}

// tcSPJ builds the recursive transitive-closure subquery shape over the
// given sink/delta/edge predicate ids: sink(x,y) :- deltaδ(x,z), edge(z,y).
func tcSPJ(rule int, sink, delta, edge storage.PredID) *ir.SPJOp {
	return &ir.SPJOp{
		RuleIdx: rule,
		Sink:    delta,
		NumVars: 3,
		Head:    []ir.ProjElem{{Var: 0}, {Var: 1}},
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: sink, Terms: []ast.Term{ast.V(0), ast.V(2)}, Src: ir.SrcDelta},
			{Kind: ast.AtomRelation, Pred: edge, Terms: []ast.Term{ast.V(2), ast.V(1)}, Src: ir.SrcDerived},
		},
		DeltaIdx: 0,
	}
}

func TestKeyForDistinguishesOrders(t *testing.T) {
	spj := &ir.SPJOp{
		RuleIdx: 3,
		NumVars: 3,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: 1, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDelta},
			{Kind: ast.AtomRelation, Pred: 1, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: 0,
	}
	k1 := KeyFor(spj)
	spj.Atoms[0], spj.Atoms[1] = spj.Atoms[1], spj.Atoms[0]
	k2 := KeyFor(spj)
	if k1 == k2 {
		t.Fatal("swapping atoms (same pred, different terms) must change the key")
	}
}

// TestKeyForStructuralSharing pins the fingerprint's invariances: rules that
// differ only by rule index and predicate renaming share one key, while any
// structural difference — the predicate equality pattern, a term pattern, a
// source — splits them.
func TestKeyForStructuralSharing(t *testing.T) {
	a := tcSPJ(0, 10, 10, 11)
	b := tcSPJ(7, 20, 20, 21) // renamed predicates, different rule: same shape
	if KeyFor(a) != KeyFor(b) {
		t.Fatal("structurally identical rules must share one key")
	}

	// Different predicate equality pattern: delta atom reads a predicate
	// distinct from the sink.
	c := tcSPJ(0, 10, 12, 11)
	if KeyFor(a) == KeyFor(c) {
		t.Fatal("different predicate equality patterns must not share a key")
	}

	// Different term pattern.
	d := tcSPJ(0, 10, 10, 11)
	d.Atoms[1].Terms = []ast.Term{ast.V(1), ast.V(2)}
	if KeyFor(a) == KeyFor(d) {
		t.Fatal("different variable patterns must not share a key")
	}

	// Different source assignment.
	e := tcSPJ(0, 10, 10, 11)
	e.Atoms[0].Src = ir.SrcDerived
	if KeyFor(a) == KeyFor(e) {
		t.Fatal("different delta sources must not share a key")
	}

	// Different constants.
	f := tcSPJ(0, 10, 10, 11)
	f.Atoms[1].Terms = []ast.Term{ast.V(2), ast.C(5)}
	g := tcSPJ(0, 10, 10, 11)
	g.Atoms[1].Terms = []ast.Term{ast.V(2), ast.C(6)}
	if KeyFor(f) == KeyFor(g) {
		t.Fatal("different constants must not share a key")
	}
}

// TestKeyForOpConcretePreds pins the unit-key contract: op fingerprints keep
// concrete predicate identity (a renamed-predicate clone gets its own key),
// are stable across re-builds of the same tree, and honor tag prefixes.
func TestKeyForOpConcretePreds(t *testing.T) {
	build := func(sink, delta, edge storage.PredID) ir.Op {
		return &ir.UnionRuleOp{Subqueries: []*ir.SPJOp{tcSPJ(0, sink, delta, edge)}}
	}
	if KeyForOp(build(10, 10, 11)) != KeyForOp(build(10, 10, 11)) {
		t.Fatal("identical subtrees must share one unit key across rebuilds")
	}
	if KeyForOp(build(10, 10, 11)) == KeyForOp(build(20, 20, 21)) {
		t.Fatal("unit keys must keep concrete predicate identity")
	}
	if KeyForOp(build(10, 10, 11), 1) == KeyForOp(build(10, 10, 11), 2) {
		t.Fatal("unit keys must honor tag prefixes")
	}
}

func TestCacheLifecycle(t *testing.T) {
	c := New[string](Policy{})
	k := Key{Sig: "sig"}

	// Cold miss.
	if _, ok, stale := c.Lookup(k, []uint64{1}, []int{10}); ok || stale {
		t.Fatalf("cold lookup: ok=%v stale=%v", ok, stale)
	}
	c.Store(k, []uint64{1}, []int{10}, "plan-a")

	// Fast hit: identical counters skip the drift test.
	v, ok, _ := c.Lookup(k, []uint64{1}, []int{10})
	if !ok || v != "plan-a" {
		t.Fatalf("fast hit failed: %v %v", v, ok)
	}
	// Drift hit: counters moved but cards within threshold and band.
	v, ok, _ = c.Lookup(k, []uint64{2}, []int{14})
	if !ok || v != "plan-a" {
		t.Fatalf("in-band drift hit failed: %v %v", v, ok)
	}
	// Band miss: cards jumped to another power-of-two band.
	if _, ok, stale := c.Lookup(k, []uint64{3}, []int{160}); ok || !stale {
		t.Fatalf("band change should be a stale miss, ok=%v stale=%v", ok, stale)
	}
	c.Store(k, []uint64{3}, []int{160}, "plan-b")
	// Returning to the original band reuses the plan built for it.
	v, ok, _ = c.Lookup(k, []uint64{4}, []int{11})
	if !ok || v != "plan-a" {
		t.Fatalf("band return should reuse plan-a: %v %v", v, ok)
	}

	st := c.Stats()
	if st.Hits != 3 || st.FastHits != 1 || st.ColdMisses != 1 || st.BandMisses != 1 || st.Stores != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0.5 || st.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Keys() != 1 {
		t.Fatalf("Keys = %d, want 1", c.Keys())
	}
}

func TestCacheStaleDrop(t *testing.T) {
	c := New[int](Policy{Threshold: 0.1})
	k := Key{Sig: "x"}
	c.Store(k, []uint64{1}, []int{1000}, 42)
	// Same band (1024-band? 1000 -> band 10; 1300 -> band 11) — choose values
	// in one band: 1000 and 1023 share band 10, drift 0.023 <= 0.1 -> hit.
	if _, ok, _ := c.Lookup(k, []uint64{2}, []int{1023}); !ok {
		t.Fatal("in-band small drift should hit")
	}
	// 700 is band 10 too (512..1023)? 700 -> bits.Len(700)=10. Drift 0.3 > 0.1.
	if _, ok, stale := c.Lookup(k, []uint64{3}, []int{700}); ok || !stale {
		t.Fatalf("over-threshold drift should drop: ok=%v stale=%v", ok, stale)
	}
	if st := c.Stats(); st.StaleDrops != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Entry was evicted: next lookup in that band is a band miss (bucket
	// still known).
	if _, ok, stale := c.Lookup(k, []uint64{4}, []int{700}); ok || !stale {
		t.Fatal("evicted entry should stay gone")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New[int](Policy{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Sig: fmt.Sprintf("r%d-s%d", i%5, i%3)}
				counters := []uint64{uint64(i)}
				cards := []int{i % 50}
				if _, ok, _ := c.Lookup(k, counters, cards); !ok {
					c.Store(k, counters, cards, g*1000+i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("nothing cached")
	}
}

func TestBandHysteresisWidens(t *testing.T) {
	c := New[int](Policy{})
	k := Key{Sig: "climb"}
	// A climbing cardinality regime: every lookup lands one band above the
	// previous store, the CSPA early-iteration shape.
	cards := []int{1, 2, 4, 8}
	for i, card := range cards {
		_, ok, _ := c.Lookup(k, []uint64{uint64(i)}, []int{card})
		if ok {
			t.Fatalf("lookup %d (card %d) unexpectedly hit", i, card)
		}
		c.Store(k, []uint64{uint64(i)}, []int{card}, card)
	}
	st := c.Stats()
	if st.BandMisses != int64(len(cards)-1) {
		t.Fatalf("band misses = %d, want %d", st.BandMisses, len(cards)-1)
	}
	if st.Widens != 1 {
		t.Fatalf("widens = %d, want 1 after %d consecutive hops", st.Widens, HysteresisHops)
	}
	// Post-widening, 12 shares the merged band of the entry stored at 8
	// (native bands 4 and the widened gate admit drift 0.5): a hit where
	// the un-widened cache would have band-hopped again.
	if v, ok, _ := c.Lookup(k, []uint64{9}, []int{12}); !ok || v != 8 {
		t.Fatalf("widened band should serve the climbing regime: ok=%v v=%d", ok, v)
	}
}

func TestBandHysteresisResetsOnHit(t *testing.T) {
	c := New[int](Policy{})
	k := Key{Sig: "stable"}
	// Two hops, then an exact in-band hit, then two more hops: never three
	// consecutive, so the quantization must stay native.
	seq := []struct {
		card int
		hit  bool
	}{
		{1, false}, {2, false}, {4, false}, {4, true}, {16, false}, {64, false},
	}
	for i, s := range seq {
		_, ok, _ := c.Lookup(k, []uint64{uint64(i)}, []int{s.card})
		if ok != s.hit {
			t.Fatalf("step %d (card %d): hit=%v, want %v", i, s.card, ok, s.hit)
		}
		if !ok {
			c.Store(k, []uint64{uint64(i)}, []int{s.card}, s.card)
		}
	}
	if st := c.Stats(); st.Widens != 0 {
		t.Fatalf("widens = %d, want 0 (hops never consecutive)", st.Widens)
	}
}

// TestStoreViewsIsolateClasses: two views over one store with the same
// structural key must never serve each other's artifacts, while sharing one
// entry count.
func TestStoreViewsIsolateClasses(t *testing.T) {
	s := NewStore(0)
	plans := View[string](s, ViewConfig{Class: ClassPlans, Policy: Policy{}})
	units := View[int](s, ViewConfig{Class: ClassUnits, Policy: Policy{}})
	k := Key{Sig: "shared-sig"}
	plans.Store(k, []uint64{1}, []int{10}, "a-plan")
	if _, ok, _ := units.Lookup(k, []uint64{1}, []int{10}); ok {
		t.Fatal("unit view served a plan-class entry")
	}
	units.Store(k, []uint64{1}, []int{10}, 99)
	if v, ok, _ := plans.Lookup(k, []uint64{1}, []int{10}); !ok || v != "a-plan" {
		t.Fatalf("plan view lost its entry: %v %v", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("store Len = %d, want 2", s.Len())
	}
	ps, us := s.ClassStats(ClassPlans), s.ClassStats(ClassUnits)
	if ps.Stores != 1 || us.Stores != 1 || us.ColdMisses != 1 {
		t.Fatalf("per-class stats mixed up: plans=%+v units=%+v", ps, us)
	}
}

// TestStoreLRUBound: with a bound configured, the store evicts
// least-recently-used entries instead of growing without limit, and the
// freshly stored entry always survives.
func TestStoreLRUBound(t *testing.T) {
	const limit = LockShards // 1 entry per lock shard
	s := NewStore(limit)
	c := View[int](s, ViewConfig{Class: ClassPlans, Policy: Policy{}})
	for i := 0; i < 40*limit; i++ {
		k := Key{Sig: fmt.Sprintf("k%d", i)}
		c.Store(k, []uint64{uint64(i)}, []int{10}, i)
		if _, ok, _ := c.Lookup(k, []uint64{uint64(i)}, []int{10}); !ok {
			t.Fatalf("entry %d evicted immediately after its own store", i)
		}
	}
	if got := s.Len(); got > limit {
		t.Fatalf("store grew to %d entries, bound %d", got, limit)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded despite the bound: %+v", st)
	}
}

// TestCrossBandView: the unit-view semantics — a band hop serves any
// policy-fresh entry instead of forcing a rebuild, and a strict policy still
// misses.
func TestCrossBandView(t *testing.T) {
	s := NewStore(0)
	loose := View[int](s, ViewConfig{Class: ClassUnits, Policy: Policy{Threshold: 1e18}, CrossBand: true})
	k := Key{Sig: "unit"}
	loose.Store(k, []uint64{1}, []int{10}, 7)
	// 160 is several bands above 10; cross-band with a loose gate serves it.
	if v, ok, _ := loose.Lookup(k, []uint64{2}, []int{160}); !ok || v != 7 {
		t.Fatalf("cross-band hit failed: v=%d ok=%v", v, ok)
	}
	if v, ok := loose.Peek(k, []int{320}); !ok || v != 7 {
		t.Fatalf("cross-band peek failed: v=%d ok=%v", v, ok)
	}
	strict := View[int](s, ViewConfig{Class: ClassUnits, Policy: Policy{Threshold: 0.1}, CrossBand: true})
	if _, ok, stale := strict.Lookup(k, []uint64{3}, []int{160}); ok || !stale {
		t.Fatalf("strict cross-band must miss: ok=%v stale=%v", ok, stale)
	}
	if !loose.Contains(k) || loose.Contains(Key{Sig: "absent"}) {
		t.Fatal("Contains wrong")
	}
}

// TestCrossRunGeneration: hits on entries stored before a BumpGeneration
// count as cross-run hits; same-generation hits do not.
func TestCrossRunGeneration(t *testing.T) {
	s := NewStore(0)
	c := View[int](s, ViewConfig{Class: ClassPlans, Policy: Policy{}})
	k := Key{Sig: "warm"}
	c.Store(k, []uint64{1}, []int{10}, 1)
	if _, ok, _ := c.Lookup(k, []uint64{1}, []int{10}); !ok {
		t.Fatal("same-run hit failed")
	}
	if st := c.Stats(); st.CrossRunHits != 0 {
		t.Fatalf("same-generation hit counted as cross-run: %+v", st)
	}
	s.BumpGeneration()
	if _, ok, _ := c.Lookup(k, []uint64{2}, []int{11}); !ok {
		t.Fatal("cross-run hit failed")
	}
	if st := c.Stats(); st.CrossRunHits != 1 {
		t.Fatalf("cross-run hit not counted: %+v", st)
	}
	// Re-storing under the new generation resets the provenance.
	c.Store(k, []uint64{3}, []int{10}, 2)
	if _, ok, _ := c.Lookup(k, []uint64{3}, []int{10}); !ok {
		t.Fatal("post-store hit failed")
	}
	if st := c.Stats(); st.CrossRunHits != 1 {
		t.Fatalf("fresh-generation entry counted as cross-run: %+v", st)
	}
}

// TestPeekHasNoSideEffects: Peek must leave statistics, hysteresis, and
// entries untouched.
func TestPeekHasNoSideEffects(t *testing.T) {
	c := New[int](Policy{})
	k := Key{Sig: "peek"}
	c.Store(k, []uint64{1}, []int{10}, 5)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		if v, ok := c.Peek(k, []int{10}); !ok || v != 5 {
			t.Fatalf("peek failed: v=%d ok=%v", v, ok)
		}
		if _, ok := c.Peek(k, []int{1 << 20}); ok {
			t.Fatal("peek served a stale band without cross-band")
		}
	}
	if after := c.Stats(); after != before {
		t.Fatalf("peek mutated stats: %+v -> %+v", before, after)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Hits: 10, FastHits: 4, CrossRunHits: 2, ColdMisses: 3, BandMisses: 2, StaleDrops: 1, Stores: 6, Widens: 1, Evictions: 5}
	b := Stats{Hits: 4, FastHits: 1, CrossRunHits: 1, ColdMisses: 2, BandMisses: 1, StaleDrops: 0, Stores: 3, Widens: 0, Evictions: 2}
	d := a.Sub(b)
	want := Stats{Hits: 6, FastHits: 3, CrossRunHits: 1, ColdMisses: 1, BandMisses: 1, StaleDrops: 1, Stores: 3, Widens: 1, Evictions: 3}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
}
