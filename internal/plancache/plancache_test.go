package plancache

import (
	"fmt"
	"sync"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
)

func TestBand(t *testing.T) {
	cases := []struct{ card, band int }{
		{0, 0}, {-3, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := Band(c.card); got != c.band {
			t.Fatalf("Band(%d) = %d, want %d", c.card, got, c.band)
		}
	}
	if BandSig([]int{0, 1, 4}) != string([]byte{0, 1, 3}) {
		t.Fatalf("BandSig = %q", BandSig([]int{0, 1, 4}))
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}
	if !p.Fresh([]int{100}, []int{150}) {
		t.Fatal("drift 0.5 should be fresh under the default threshold")
	}
	if p.Fresh([]int{100}, []int{151}) {
		t.Fatal("drift > 0.5 should be stale under the default threshold")
	}
	tight := Policy{Threshold: 0.01}
	if tight.Fresh([]int{100}, []int{110}) {
		t.Fatal("drift 0.1 should be stale under threshold 0.01")
	}
}

func TestKeyForDistinguishesOrders(t *testing.T) {
	spj := &ir.SPJOp{
		RuleIdx: 3,
		NumVars: 3,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: 1, Terms: []ast.Term{ast.V(0), ast.V(1)}, Src: ir.SrcDelta},
			{Kind: ast.AtomRelation, Pred: 1, Terms: []ast.Term{ast.V(1), ast.V(2)}, Src: ir.SrcDerived},
		},
		DeltaIdx: 0,
	}
	k1 := KeyFor(spj)
	spj.Atoms[0], spj.Atoms[1] = spj.Atoms[1], spj.Atoms[0]
	k2 := KeyFor(spj)
	if k1 == k2 {
		t.Fatal("swapping atoms (same pred, different terms) must change the key")
	}
	if k1.Rule != 3 || k2.Rule != 3 {
		t.Fatalf("rule component lost: %+v %+v", k1, k2)
	}
}

func TestCacheLifecycle(t *testing.T) {
	c := New[string](Policy{})
	k := Key{Rule: 1, Sig: "sig"}

	// Cold miss.
	if _, ok, stale := c.Lookup(k, []uint64{1}, []int{10}); ok || stale {
		t.Fatalf("cold lookup: ok=%v stale=%v", ok, stale)
	}
	c.Store(k, []uint64{1}, []int{10}, "plan-a")

	// Fast hit: identical counters skip the drift test.
	v, ok, _ := c.Lookup(k, []uint64{1}, []int{10})
	if !ok || v != "plan-a" {
		t.Fatalf("fast hit failed: %v %v", v, ok)
	}
	// Drift hit: counters moved but cards within threshold and band.
	v, ok, _ = c.Lookup(k, []uint64{2}, []int{14})
	if !ok || v != "plan-a" {
		t.Fatalf("in-band drift hit failed: %v %v", v, ok)
	}
	// Band miss: cards jumped to another power-of-two band.
	if _, ok, stale := c.Lookup(k, []uint64{3}, []int{160}); ok || !stale {
		t.Fatalf("band change should be a stale miss, ok=%v stale=%v", ok, stale)
	}
	c.Store(k, []uint64{3}, []int{160}, "plan-b")
	// Returning to the original band reuses the plan built for it.
	v, ok, _ = c.Lookup(k, []uint64{4}, []int{11})
	if !ok || v != "plan-a" {
		t.Fatalf("band return should reuse plan-a: %v %v", v, ok)
	}

	st := c.Stats()
	if st.Hits != 3 || st.FastHits != 1 || st.ColdMisses != 1 || st.BandMisses != 1 || st.Stores != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0.5 || st.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheStaleDrop(t *testing.T) {
	c := New[int](Policy{Threshold: 0.1})
	k := Key{Rule: 0, Sig: "x"}
	c.Store(k, []uint64{1}, []int{1000}, 42)
	// Same band (1024-band? 1000 -> band 10; 1300 -> band 11) — choose values
	// in one band: 1000 and 1023 share band 10, drift 0.023 <= 0.1 -> hit.
	if _, ok, _ := c.Lookup(k, []uint64{2}, []int{1023}); !ok {
		t.Fatal("in-band small drift should hit")
	}
	// 700 is band 10 too (512..1023)? 700 -> bits.Len(700)=10. Drift 0.3 > 0.1.
	if _, ok, stale := c.Lookup(k, []uint64{3}, []int{700}); ok || !stale {
		t.Fatalf("over-threshold drift should drop: ok=%v stale=%v", ok, stale)
	}
	if st := c.Stats(); st.StaleDrops != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Entry was evicted: next lookup in that band is a band miss (bucket
	// still known).
	if _, ok, stale := c.Lookup(k, []uint64{4}, []int{700}); ok || !stale {
		t.Fatal("evicted entry should stay gone")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New[int](Policy{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Rule: i % 5, Sig: fmt.Sprintf("s%d", i%3)}
				counters := []uint64{uint64(i)}
				cards := []int{i % 50}
				if _, ok, _ := c.Lookup(k, counters, cards); !ok {
					c.Store(k, counters, cards, g*1000+i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("nothing cached")
	}
}

func TestBandHysteresisWidens(t *testing.T) {
	c := New[int](Policy{})
	k := Key{Rule: 1, Sig: "climb"}
	// A climbing cardinality regime: every lookup lands one band above the
	// previous store, the CSPA early-iteration shape.
	cards := []int{1, 2, 4, 8}
	for i, card := range cards {
		_, ok, _ := c.Lookup(k, []uint64{uint64(i)}, []int{card})
		if ok {
			t.Fatalf("lookup %d (card %d) unexpectedly hit", i, card)
		}
		c.Store(k, []uint64{uint64(i)}, []int{card}, card)
	}
	st := c.Stats()
	if st.BandMisses != int64(len(cards)-1) {
		t.Fatalf("band misses = %d, want %d", st.BandMisses, len(cards)-1)
	}
	if st.Widens != 1 {
		t.Fatalf("widens = %d, want 1 after %d consecutive hops", st.Widens, HysteresisHops)
	}
	// Post-widening, 12 shares the merged band of the entry stored at 8
	// (native bands 4 and the widened gate admit drift 0.5): a hit where
	// the un-widened cache would have band-hopped again.
	if v, ok, _ := c.Lookup(k, []uint64{9}, []int{12}); !ok || v != 8 {
		t.Fatalf("widened band should serve the climbing regime: ok=%v v=%d", ok, v)
	}
}

func TestBandHysteresisResetsOnHit(t *testing.T) {
	c := New[int](Policy{})
	k := Key{Rule: 2, Sig: "stable"}
	// Two hops, then an exact in-band hit, then two more hops: never three
	// consecutive, so the quantization must stay native.
	seq := []struct {
		card int
		hit  bool
	}{
		{1, false}, {2, false}, {4, false}, {4, true}, {16, false}, {64, false},
	}
	for i, s := range seq {
		_, ok, _ := c.Lookup(k, []uint64{uint64(i)}, []int{s.card})
		if ok != s.hit {
			t.Fatalf("step %d (card %d): hit=%v, want %v", i, s.card, ok, s.hit)
		}
		if !ok {
			c.Store(k, []uint64{uint64(i)}, []int{s.card}, s.card)
		}
	}
	if st := c.Stats(); st.Widens != 0 {
		t.Fatalf("widens = %d, want 0 (hops never consecutive)", st.Widens)
	}
}
