// Package plancache implements drift-gated caching of compiled query
// artifacts — interpreter access plans and JIT compilation units — behind
// one uniform adaptive-re-optimization policy.
//
// The paper's JIT reuses a compiled unit while the live cardinalities of the
// relations it joins "have not drifted beyond a relative threshold since it
// was compiled" (§V-B2). This package generalizes that one-off freshness
// test: an artifact is cached under a key of (rule, atom-order signature,
// cardinality band) and served while observed drift stays under the policy
// threshold; once drift exceeds it the entry is dropped, which is the
// caller's cue to re-optimize the join order with live statistics before
// rebuilding. Cardinality bands (powers of two) partition the entries so
// that returning to a previously seen cardinality regime re-uses the plan
// built for it rather than oscillating one shared entry.
//
// The cache is safe for concurrent use by the parallel rule executor's
// workers and is internally segmented into LockShards independently locked
// shards keyed by the cache-key hash, so pool workers do not funnel through
// a single mutex; cached artifacts themselves must be immutable (callers
// copy before attaching per-execution state).
package plancache

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/stats"
)

// Policy is the uniform adaptive-re-optimization policy: an artifact built
// against cardinality vector old stays fresh while Drift(old, cur) is at
// most Threshold. A non-positive Threshold selects the default 0.5, the
// paper's freshness-sweep sweet spot (§VI-E).
type Policy struct {
	Threshold float64
}

// DefaultThreshold is the relative drift tolerated by the zero Policy.
const DefaultThreshold = 0.5

// threshold resolves the configured or default threshold.
func (p Policy) threshold() float64 {
	if p.Threshold <= 0 {
		return DefaultThreshold
	}
	return p.Threshold
}

// Fresh reports whether an artifact built at cardinalities old may be reused
// at cardinalities cur.
func (p Policy) Fresh(old, cur []int) bool {
	return stats.Drift(old, cur) <= p.threshold()
}

// Band quantizes a cardinality into its power-of-two band: 0 for empty,
// otherwise 1+floor(log2(card)). Cardinalities within one band differ by at
// most 2x, the scale at which join-order decisions actually flip.
func Band(card int) int {
	if card <= 0 {
		return 0
	}
	return bits.Len(uint(card))
}

// BandSig packs the band of every cardinality into a compact string key.
func BandSig(cards []int) string { return bandSig(cards, 0) }

// bandSig is BandSig under a hysteresis widening: shifting the band right
// merges adjacent bands pairwise, so widen steps of a key's quantization
// double the cardinality range one entry serves.
func bandSig(cards []int, widen uint8) string {
	b := make([]byte, len(cards))
	for i, c := range cards {
		b[i] = byte(Band(c) >> widen)
	}
	return string(b)
}

// HysteresisHops is the number of consecutive band-hop misses on one key
// after which that key's band quantization widens one step. Early fixpoint
// iterations roughly double delta cardinalities every pass (the CSPA
// shape), landing every lookup in a fresh band and re-planning each time;
// after HysteresisHops such hops the key has demonstrated the regime is
// climbing, and wider bands let one plan ride the climb.
const HysteresisHops = 3

// maxBandWiden caps the per-key widening (bands up to 2^maxBandWiden
// native bands wide), so a pathological key cannot collapse every regime
// into one entry.
const maxBandWiden = 4

// Key identifies one cacheable artifact: the rule it evaluates plus a
// structural signature of its subquery body (atom kinds, predicates,
// sources, builtins, and terms, in the current join order). Reordering the
// atoms changes the signature, so re-optimized orders occupy fresh entries.
type Key struct {
	Rule int
	Sig  string
}

// KeyFor derives the cache key of an SPJ subquery in its current atom order.
func KeyFor(spj *ir.SPJOp) Key {
	var b []byte
	var n [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(n[:], v)
		b = append(b, n[:]...)
	}
	for _, a := range spj.Atoms {
		b = append(b, byte(a.Kind), byte(a.Src), byte(a.Builtin))
		put(uint32(a.Pred))
		for _, t := range a.Terms {
			b = append(b, byte(t.Kind))
			if t.Kind == ast.TermConst {
				put(uint32(t.Val))
			} else {
				put(uint32(t.Var))
			}
		}
		b = append(b, 0xff)
	}
	return Key{Rule: spj.RuleIdx, Sig: string(b)}
}

// Stats counts cache activity.
type Stats struct {
	// Hits served a cached artifact (FastHits of them via the drift-counter
	// pre-test, without computing cardinality drift).
	Hits     int64
	FastHits int64
	// ColdMisses found no entry for a never-seen key; BandMisses found
	// entries for the key but none in the current cardinality band — the
	// regime changed, a re-optimization cue.
	ColdMisses int64
	BandMisses int64
	// StaleDrops evicted an in-band entry whose drift exceeded the policy
	// threshold — the direct analogue of the JIT's freshness failure.
	StaleDrops int64
	Stores     int64
	// Widens counts band-hysteresis steps: a key that band-hopped
	// HysteresisHops consecutive times had its quantization widened.
	Widens int64
}

// HitRate returns served hits over total lookups, 0 when no lookups ran.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.ColdMisses + s.BandMisses + s.StaleDrops
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry[T any] struct {
	val      T
	cards    []int
	counters []uint64
}

// keyBucket holds one key's per-band entries plus its hysteresis state.
type keyBucket[T any] struct {
	bands map[string]*entry[T] // band signature (under widen) -> entry
	hops  int                  // consecutive band-hop misses
	widen uint8                // current band-quantization shift
}

// widenBands advances the key's quantization one step and re-keys the
// existing entries under the coarser signature (old signature bytes shift
// right with the bands; colliding entries keep an arbitrary survivor — they
// now describe the same merged band).
func (b *keyBucket[T]) widenBands() {
	b.widen++
	b.hops = 0
	if len(b.bands) == 0 {
		return
	}
	rekeyed := make(map[string]*entry[T], len(b.bands))
	for sig, e := range b.bands {
		raw := []byte(sig)
		for i := range raw {
			raw[i] >>= 1
		}
		rekeyed[string(raw)] = e
	}
	b.bands = rekeyed
}

// LockShards is the fixed number of independently locked cache segments.
// Keys hash uniformly across segments, so with a worker pool of size W the
// probability of two workers colliding on one lock is ~W/LockShards per
// lookup — small enough that the pool no longer funnels through a single
// mutex as worker counts grow.
const LockShards = 16

// cacheShard is one independently locked segment of the cache: its own
// bucket map and its own activity counters (aggregated on read, so the hot
// path never touches a shared statistics lock either).
type cacheShard[T any] struct {
	mu      sync.Mutex
	buckets map[Key]*keyBucket[T]
	stats   Stats
}

// Cache is a drift-gated artifact cache, segmented into LockShards
// independently locked shards keyed by hash of the cache key. The zero value
// is not usable; construct with New.
type Cache[T any] struct {
	pol    Policy
	shards [LockShards]cacheShard[T]
}

// New builds an empty cache under the given policy.
func New[T any](pol Policy) *Cache[T] {
	c := &Cache[T]{pol: pol}
	for i := range c.shards {
		c.shards[i].buckets = make(map[Key]*keyBucket[T])
	}
	return c
}

// shardFor routes a key to its lock shard: FNV-1a over the structural
// signature folded with the rule index. The same key always lands on the
// same shard, so per-key operations remain linearizable.
func (c *Cache[T]) shardFor(k Key) *cacheShard[T] {
	h := uint32(2166136261)
	for i := 0; i < len(k.Sig); i++ {
		h ^= uint32(k.Sig[i])
		h *= 16777619
	}
	h ^= uint32(k.Rule)
	h *= 16777619
	return &c.shards[h%LockShards]
}

// Policy returns the cache's freshness policy.
func (c *Cache[T]) Policy() Policy { return c.pol }

// Lookup fetches the artifact cached under k for the current cardinalities.
// counters is the drift-counter vector of the relations the artifact reads:
// when it matches the stored vector the artifact is exact (nothing mutated)
// and drift computation is skipped entirely. stale reports a drift-driven
// miss — the key was known but its cardinality regime moved (band change or
// in-band drift beyond the threshold) — which is the caller's cue to
// re-optimize the join order before rebuilding.
func (c *Cache[T]) Lookup(k Key, counters []uint64, cards []int) (val T, ok bool, stale bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.buckets[k]
	if bucket == nil {
		sh.stats.ColdMisses++
		return val, false, false
	}
	band := bandSig(cards, bucket.widen)
	e := bucket.bands[band]
	if e == nil {
		// Band hop: the key is known but its cardinality regime moved. After
		// HysteresisHops consecutive hops the key has demonstrated a
		// climbing regime (early fixpoint iterations double deltas every
		// pass) — widen its quantization one step so the next plan stored
		// serves the whole wider band instead of being re-planned per band.
		sh.stats.BandMisses++
		bucket.hops++
		if bucket.hops >= HysteresisHops && bucket.widen < maxBandWiden {
			bucket.widenBands()
			sh.stats.Widens++
		}
		return val, false, true
	}
	if stats.CountersEqual(e.counters, counters) {
		bucket.hops = 0
		sh.stats.Hits++
		sh.stats.FastHits++
		return e.val, true, false
	}
	if c.fresh(e, cards, bucket.widen) {
		// Drift stays anchored to the build-time cardinalities (like the
		// JIT's per-compilation fingerprint); only the counter vector is
		// refreshed so the next unchanged-world lookup takes the fast path.
		e.counters = append(e.counters[:0], counters...)
		bucket.hops = 0
		sh.stats.Hits++
		return e.val, true, false
	}
	delete(bucket.bands, band)
	bucket.hops = 0
	sh.stats.StaleDrops++
	return val, false, true
}

// fresh applies the drift gate, opened up to the width a hysteresis-widened
// band actually spans: a band merged from 2^widen native bands covers a
// 2^(widen+1)x cardinality range, so an entry must be allowed that much
// relative drift or widening would just convert band misses into stale
// drops and save nothing. The un-widened gate is the plain policy.
func (c *Cache[T]) fresh(e *entry[T], cards []int, widen uint8) bool {
	if widen == 0 {
		return c.pol.Fresh(e.cards, cards)
	}
	thr := c.pol.threshold()
	if span := float64(uint(1)<<(widen+1) - 1); span > thr {
		thr = span
	}
	return stats.Drift(e.cards, cards) <= thr
}

// Store caches v under k for the band of cards (under the key's current
// hysteresis widening).
func (c *Cache[T]) Store(k Key, counters []uint64, cards []int, v T) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.buckets[k]
	if bucket == nil {
		bucket = &keyBucket[T]{bands: make(map[string]*entry[T])}
		sh.buckets[k] = bucket
	}
	bucket.bands[bandSig(cards, bucket.widen)] = &entry[T]{
		val:      v,
		cards:    append([]int(nil), cards...),
		counters: append([]uint64(nil), counters...),
	}
	sh.stats.Stores++
}

// Len returns the number of cached entries across all keys and bands.
func (c *Cache[T]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, b := range sh.buckets {
			n += len(b.bands)
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates the activity counters across all lock shards.
func (c *Cache[T]) Stats() Stats {
	var out Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.FastHits += sh.stats.FastHits
		out.ColdMisses += sh.stats.ColdMisses
		out.BandMisses += sh.stats.BandMisses
		out.StaleDrops += sh.stats.StaleDrops
		out.Stores += sh.stats.Stores
		out.Widens += sh.stats.Widens
		sh.mu.Unlock()
	}
	return out
}
