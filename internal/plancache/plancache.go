// Package plancache implements drift-gated caching of compiled query
// artifacts — interpreter access plans and JIT compilation units — behind
// one uniform adaptive-re-optimization policy.
//
// The paper's JIT reuses a compiled unit while the live cardinalities of the
// relations it joins "have not drifted beyond a relative threshold since it
// was compiled" (§V-B2). This package generalizes that one-off freshness
// test: an artifact is cached under a *structural fingerprint* of the code it
// evaluates plus a cardinality band, and served while observed drift stays
// under the policy threshold; once drift exceeds it the entry is dropped,
// which is the caller's cue to re-optimize the join order with live
// statistics before rebuilding. Cardinality bands (powers of two) partition
// the entries so that returning to a previously seen cardinality regime
// re-uses the artifact built for it rather than oscillating one shared entry.
//
// Artifacts live in a Store — one shard-locked key space that outlives any
// single execution (core hangs it off the Program) — accessed through typed
// Cache views: the interpreter's plan view and the JIT's compiled-unit view
// are windows onto the same store, in separate key classes, so both reuse
// mechanisms share one LRU bound, one statistics surface, and one freshness
// Policy. Keys are structural, not identity-based: interpreter-plan keys
// (KeyFor) are invariant under predicate renaming and variable naming, so N
// structurally identical rules share one entry; compiled-unit keys (KeyForOp)
// fingerprint the IR subtree with concrete predicates, so re-lowering the
// same program in a later Run resolves to the same units without recompiling.
//
// The store is safe for concurrent use by the parallel rule executor's
// workers and is internally segmented into LockShards independently locked
// shards keyed by the cache-key hash, so pool workers do not funnel through
// a single mutex; cached artifacts themselves must be immutable (callers
// copy before attaching per-execution state).
package plancache

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/stats"
	"carac/internal/storage"
)

// Policy is the uniform adaptive-re-optimization policy: an artifact built
// against cardinality vector old stays fresh while Drift(old, cur) is at
// most Threshold. A non-positive Threshold selects the default 0.5, the
// paper's freshness-sweep sweet spot (§VI-E).
type Policy struct {
	Threshold float64
}

// DefaultThreshold is the relative drift tolerated by the zero Policy.
const DefaultThreshold = 0.5

// threshold resolves the configured or default threshold.
func (p Policy) threshold() float64 {
	if p.Threshold <= 0 {
		return DefaultThreshold
	}
	return p.Threshold
}

// Fresh reports whether an artifact built at cardinalities old may be reused
// at cardinalities cur.
func (p Policy) Fresh(old, cur []int) bool {
	return stats.Drift(old, cur) <= p.threshold()
}

// Band quantizes a cardinality into its power-of-two band: 0 for empty,
// otherwise 1+floor(log2(card)). Cardinalities within one band differ by at
// most 2x, the scale at which join-order decisions actually flip.
func Band(card int) int {
	if card <= 0 {
		return 0
	}
	return bits.Len(uint(card))
}

// BandSig packs the band of every cardinality into a compact string key.
func BandSig(cards []int) string { return bandSig(cards, 0) }

// bandSig is BandSig under a hysteresis widening: shifting the band right
// merges adjacent bands pairwise, so widen steps of a key's quantization
// double the cardinality range one entry serves.
func bandSig(cards []int, widen uint8) string {
	b := make([]byte, len(cards))
	for i, c := range cards {
		b[i] = byte(Band(c) >> widen)
	}
	return string(b)
}

// HysteresisHops is the number of consecutive band-hop misses on one key
// after which that key's band quantization widens one step. Early fixpoint
// iterations roughly double delta cardinalities every pass (the CSPA
// shape), landing every lookup in a fresh band and re-planning each time;
// after HysteresisHops such hops the key has demonstrated the regime is
// climbing, and wider bands let one plan ride the climb.
const HysteresisHops = 3

// maxBandWiden caps the per-key widening (bands up to 2^maxBandWiden
// native bands wide), so a pathological key cannot collapse every regime
// into one entry.
const maxBandWiden = 4

// Key identifies one cacheable artifact within its class: a canonical
// structural fingerprint of the code the artifact evaluates. Reordering a
// subquery's atoms changes the fingerprint, so re-optimized orders occupy
// fresh entries; renaming predicates or variables does not (KeyFor), so
// structurally identical rules resolve to one entry.
type Key struct {
	Sig string
}

// fp accumulates a structural fingerprint. With canonical predicate
// numbering (preds non-nil) each distinct predicate maps to a dense index in
// first-occurrence order, capturing the equality pattern across atoms while
// discarding predicate identity.
type fp struct {
	b     []byte
	preds map[storage.PredID]uint32
}

func (f *fp) put32(v uint32) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], v)
	f.b = append(f.b, n[:]...)
}

func (f *fp) pred(p storage.PredID) uint32 {
	if f.preds == nil {
		return uint32(p)
	}
	id, ok := f.preds[p]
	if !ok {
		id = uint32(len(f.preds))
		f.preds[p] = id
	}
	return id
}

// spj appends the subquery's structural fingerprint: sink, variable count,
// aggregation spec, head projection, and every atom's kind/source/builtin,
// predicate (canonical or concrete), and term pattern in the current atom
// order. Variable IDs are rule-local dense indices already, so hashing them
// raw is invariant under variable *naming* while keeping cached artifacts
// (whose steps reference those IDs) directly executable for any subquery
// sharing the fingerprint.
func (f *fp) spj(spj *ir.SPJOp) {
	f.put32(f.pred(spj.Sink))
	f.put32(uint32(spj.NumVars))
	f.b = append(f.b, byte(spj.Agg.Kind))
	f.put32(uint32(spj.Agg.HeadPos))
	f.put32(uint32(spj.Agg.OverVar))
	for _, h := range spj.Head {
		if h.IsConst {
			f.b = append(f.b, 'c')
			f.put32(uint32(h.Const))
		} else {
			f.b = append(f.b, 'v')
			f.put32(uint32(h.Var))
		}
	}
	f.b = append(f.b, 0xfe)
	for _, a := range spj.Atoms {
		f.b = append(f.b, byte(a.Kind), byte(a.Src), byte(a.Builtin))
		if a.IsRelational() {
			f.put32(f.pred(a.Pred))
		}
		for _, t := range a.Terms {
			f.b = append(f.b, byte(t.Kind))
			if t.Kind == ast.TermConst {
				f.put32(uint32(t.Val))
			} else {
				f.put32(uint32(t.Var))
			}
		}
		f.b = append(f.b, 0xff)
	}
}

func (f *fp) preds32(ps []storage.PredID) {
	f.put32(uint32(len(ps)))
	for _, p := range ps {
		f.put32(uint32(p))
	}
}

// KeyFor derives the canonical structural cache key of an SPJ subquery in
// its current atom order. Predicates are numbered by first occurrence (sink
// first), so rules that differ only by predicate renaming — the CSPA shape,
// N structurally identical recursive rules over distinct relations — share
// one key; callers serving a shared artifact rebind its concrete predicates
// to the requesting subquery.
func KeyFor(spj *ir.SPJOp) Key {
	f := fp{preds: make(map[storage.PredID]uint32, 4)}
	f.spj(spj)
	return Key{Sig: string(f.b)}
}

// KeyForOp fingerprints an IR subtree with *concrete* predicate identity —
// compiled units hard-code the predicates they read and sink into, so unit
// keys must distinguish them. Unlike ir.Op pointer identity (the pre-store
// unit-map key), the fingerprint is stable across re-lowerings of the same
// program, which is what lets a later Run of one Program resolve to the
// units an earlier Run compiled. tag bytes (e.g. backend and snippet mode)
// prefix the signature so differently produced units never collide.
func KeyForOp(op ir.Op, tag ...byte) Key {
	var f fp
	f.b = append(f.b, tag...)
	ir.Walk(op, func(o ir.Op) {
		f.b = append(f.b, byte(o.Kind()))
		switch n := o.(type) {
		case *ir.ProgramOp:
			f.put32(uint32(len(n.Body)))
		case *ir.DoWhileOp:
			f.put32(uint32(len(n.Body)))
			f.preds32(n.Preds)
		case *ir.ScanOp:
			f.preds32(n.Preds)
		case *ir.SwapClearOp:
			f.preds32(n.Preds)
		case *ir.UnionAllOp:
			f.put32(uint32(n.Pred))
			f.put32(uint32(len(n.Rules)))
		case *ir.UnionRuleOp:
			f.put32(uint32(len(n.Subqueries)))
		case *ir.SPJOp:
			f.spj(n)
		}
	})
	return Key{Sig: string(f.b)}
}

// KeyAt qualifies a structural key with an epoch generation: the memo-class
// key shape, (structural query fingerprint, epoch id). Two epochs of one
// program never share a memo entry, which is exactly the invalidation the
// serving layer wants from Ingest/Publish.
func KeyAt(k Key, epoch uint64) Key {
	var f fp
	f.b = append(f.b, k.Sig...)
	f.put32(uint32(epoch >> 32))
	f.put32(uint32(epoch))
	return Key{Sig: string(f.b)}
}

// Class partitions the store's key space between artifact kinds, so an
// interpreter plan and a compiled unit with coincidentally equal signatures
// can never serve each other.
type Class uint8

const (
	// ClassPlans is the interpreter access-plan view.
	ClassPlans Class = iota
	// ClassUnits is the JIT compiled-unit view.
	ClassUnits
	// ClassMemos is the serving layer's query-result memo view: entries are
	// per-epoch materializations keyed by KeyAt(query fingerprint, epoch
	// generation). An epoch flip changes the key, so invalidation is
	// structural — stale epochs' entries simply stop being addressed and
	// age out through the store's LRU bound.
	ClassMemos
	numClasses
)

// Stats counts cache activity.
type Stats struct {
	// Hits served a cached artifact (FastHits of them via the drift-counter
	// pre-test, without computing cardinality drift).
	Hits     int64
	FastHits int64
	// CrossRunHits is the subset of Hits served by an entry stored under an
	// earlier store generation — with the Program-lifetime store, an entry
	// built by a previous Run (core bumps the generation per Run).
	CrossRunHits int64
	// ColdMisses found no entry for a never-seen key; BandMisses found
	// entries for the key but none in the current cardinality band — the
	// regime changed, a re-optimization cue.
	ColdMisses int64
	BandMisses int64
	// StaleDrops evicted an in-band entry whose drift exceeded the policy
	// threshold — the direct analogue of the JIT's freshness failure.
	StaleDrops int64
	Stores     int64
	// Widens counts band-hysteresis steps: a key that band-hopped
	// HysteresisHops consecutive times had its quantization widened.
	Widens int64
	// Evictions counts entries dropped by the store's LRU bound.
	Evictions int64
}

// HitRate returns served hits over total lookups, 0 when no lookups ran.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.ColdMisses + s.BandMisses + s.StaleDrops
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the field-wise difference s - o: the activity between two
// snapshots of one long-lived store (per-Run deltas under SharedPlans).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:         s.Hits - o.Hits,
		FastHits:     s.FastHits - o.FastHits,
		CrossRunHits: s.CrossRunHits - o.CrossRunHits,
		ColdMisses:   s.ColdMisses - o.ColdMisses,
		BandMisses:   s.BandMisses - o.BandMisses,
		StaleDrops:   s.StaleDrops - o.StaleDrops,
		Stores:       s.Stores - o.Stores,
		Widens:       s.Widens - o.Widens,
		Evictions:    s.Evictions - o.Evictions,
	}
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.FastHits += o.FastHits
	s.CrossRunHits += o.CrossRunHits
	s.ColdMisses += o.ColdMisses
	s.BandMisses += o.BandMisses
	s.StaleDrops += o.StaleDrops
	s.Stores += o.Stores
	s.Widens += o.Widens
	s.Evictions += o.Evictions
}

// viewKey is the store-internal key: a class-tagged structural fingerprint.
type viewKey struct {
	class Class
	key   Key
}

// entry is one cached artifact with the back-pointers eviction needs and
// its position in the owning shard's LRU list.
type entry struct {
	val      any
	cards    []int
	counters []uint64
	gen      uint64
	vk       viewKey
	band     string
	prev     *entry
	next     *entry
}

// keyBucket holds one key's per-band entries plus its hysteresis state.
type keyBucket struct {
	bands map[string]*entry // band signature (under widen) -> entry
	hops  int               // consecutive band-hop misses
	widen uint8             // current band-quantization shift
}

// LockShards is the fixed number of independently locked store segments.
// Keys hash uniformly across segments, so with a worker pool of size W the
// probability of two workers colliding on one lock is ~W/LockShards per
// lookup — small enough that the pool no longer funnels through a single
// mutex as worker counts grow.
const LockShards = 16

// storeShard is one independently locked segment of the store: its own
// bucket map, per-class activity counters (aggregated on read, so the hot
// path never touches a shared statistics lock either), and an intrusive LRU
// list over its entries (head = most recently used).
type storeShard struct {
	mu      sync.Mutex
	buckets map[viewKey]*keyBucket
	stats   [numClasses]Stats
	entries int
	head    *entry
	tail    *entry
}

// unlink removes e from the shard's LRU list.
func (sh *storeShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront links e at the most-recently-used end.
func (sh *storeShard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// touch marks e as most recently used.
func (sh *storeShard) touch(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// drop unlinks e and decrements the entry count (the caller owns the bands
// map bookkeeping).
func (sh *storeShard) drop(e *entry) {
	sh.unlink(e)
	sh.entries--
}

// evict removes e from its bucket and the LRU list, deleting the bucket when
// its last band goes (so cold keys do not pin hysteresis state forever).
func (sh *storeShard) evict(e *entry) {
	if b := sh.buckets[e.vk]; b != nil {
		delete(b.bands, e.band)
		if len(b.bands) == 0 {
			delete(sh.buckets, e.vk)
		}
	}
	sh.drop(e)
}

// widenBucket advances the key's quantization one step and re-keys the
// existing entries under the coarser signature (old signature bytes shift
// right with the bands; colliding entries keep an arbitrary survivor — they
// now describe the same merged band, and the loser leaves the LRU list).
func (sh *storeShard) widenBucket(b *keyBucket) {
	b.widen++
	b.hops = 0
	if len(b.bands) == 0 {
		return
	}
	rekeyed := make(map[string]*entry, len(b.bands))
	for sig, e := range b.bands {
		raw := []byte(sig)
		for i := range raw {
			raw[i] >>= 1
		}
		ns := string(raw)
		if old, clash := rekeyed[ns]; clash {
			sh.drop(old)
		}
		e.band = ns
		rekeyed[ns] = e
	}
	b.bands = rekeyed
}

// DefaultStoreLimit is the entry bound of the Program-lifetime store when
// the caller does not configure one: generous next to real workloads (tens
// of rules × a handful of bands each) while keeping a pathological band
// explosion from growing without bound across a long-lived Program.
const DefaultStoreLimit = 4096

// Store owns one shard-locked key space shared by all typed Cache views.
// Unlike the per-Run caches it replaces, a Store is built to outlive
// executions: core hangs one off the Program (Program.PlanStore), bumps its
// generation per Run, and both the interpreter's plan view and the JIT's
// unit view read and write it, so repeated runs and incremental fact batches
// start warm. Construct with NewStore; the zero value is not usable.
type Store struct {
	perShard int // LRU entry bound per lock shard; 0 = unbounded
	gen      atomic.Uint64
	shards   [LockShards]storeShard
}

// NewStore builds an empty store. limit bounds the total entry count with
// approximate (per-lock-shard) LRU eviction; <= 0 is unbounded.
func NewStore(limit int) *Store {
	s := &Store{}
	if limit > 0 {
		s.perShard = (limit + LockShards - 1) / LockShards
	}
	s.gen.Store(1)
	for i := range s.shards {
		s.shards[i].buckets = make(map[viewKey]*keyBucket)
	}
	return s
}

// BumpGeneration starts a new store generation. Hits on entries stored under
// an earlier generation count as CrossRunHits; core bumps once per Run so
// the counter reads as "artifacts reused across executions".
func (s *Store) BumpGeneration() { s.gen.Add(1) }

// Generation returns the current store generation.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// shardFor routes a key to its lock shard: FNV-1a over the structural
// signature folded with the class. The same key always lands on the same
// shard, so per-key operations remain linearizable.
func (s *Store) shardFor(vk viewKey) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(vk.key.Sig); i++ {
		h ^= uint32(vk.key.Sig[i])
		h *= 16777619
	}
	h ^= uint32(vk.class)
	h *= 16777619
	return &s.shards[h%LockShards]
}

// Stats aggregates activity across all classes and lock shards.
func (s *Store) Stats() Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c := range sh.stats {
			out.add(sh.stats[c])
		}
		sh.mu.Unlock()
	}
	return out
}

// ClassStats aggregates one class's activity across all lock shards.
func (s *Store) ClassStats(c Class) Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.add(sh.stats[c])
		sh.mu.Unlock()
	}
	return out
}

// Len returns the number of cached entries across all classes, keys, and
// bands.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.entries
		sh.mu.Unlock()
	}
	return n
}

// Keys returns the number of distinct structural keys cached for a class —
// the entry-sharing measure: on a workload of N structurally identical
// rules it stays below N.
func (s *Store) Keys(c Class) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for vk := range sh.buckets {
			if vk.class == c {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// ViewConfig configures one typed view over a Store.
type ViewConfig struct {
	// Class selects the view's key space.
	Class Class
	// Policy is the drift gate artifacts are served under.
	Policy Policy
	// CrossBand serves a policy-fresh entry from ANY cardinality band when
	// the current band holds none. Interpreter plans keep it off (a band hop
	// is a re-optimization cue); the JIT unit view turns it on, reproducing
	// the original freshness-only unit test — without it, a loose threshold
	// would still recompile per band, and a failed compile would be retried
	// the moment cardinalities crossed a power of two.
	CrossBand bool
}

// Cache is a typed, drift-gated view over a Store's key space for one
// artifact class. Views are cheap handles: any number may be built over one
// store, and all of them see (and bound, and account) the same entries.
// The zero value is not usable; construct with View or New.
type Cache[T any] struct {
	store     *Store
	class     Class
	pol       Policy
	crossBand bool
}

// View builds a typed view over store.
func View[T any](store *Store, cfg ViewConfig) *Cache[T] {
	return &Cache[T]{store: store, class: cfg.Class, pol: cfg.Policy, crossBand: cfg.CrossBand}
}

// New builds a self-contained cache: a plan-class view over a fresh
// unbounded private store (the per-Run configuration).
func New[T any](pol Policy) *Cache[T] {
	return View[T](NewStore(0), ViewConfig{Class: ClassPlans, Policy: pol})
}

// Policy returns the view's freshness policy.
func (c *Cache[T]) Policy() Policy { return c.pol }

// Lookup fetches the artifact cached under k for the current cardinalities.
// counters is the drift-counter vector of the relations the artifact reads:
// when it matches the stored vector the artifact is exact (nothing mutated)
// and drift computation is skipped entirely. stale reports a drift-driven
// miss — the key was known but its cardinality regime moved (band change or
// in-band drift beyond the threshold) — which is the caller's cue to
// re-optimize the join order before rebuilding.
func (c *Cache[T]) Lookup(k Key, counters []uint64, cards []int) (val T, ok bool, stale bool) {
	vk := viewKey{class: c.class, key: k}
	sh := c.store.shardFor(vk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := &sh.stats[c.class]
	bucket := sh.buckets[vk]
	if bucket == nil {
		st.ColdMisses++
		return val, false, false
	}
	e := bucket.bands[bandSig(cards, bucket.widen)]
	crossServe := false
	if e == nil && c.crossBand {
		if ce := c.freshest(bucket, cards); ce != nil {
			e, crossServe = ce, true
		}
	}
	if e == nil {
		// Band hop: the key is known but its cardinality regime moved. After
		// HysteresisHops consecutive hops the key has demonstrated a
		// climbing regime (early fixpoint iterations double deltas every
		// pass) — widen its quantization one step so the next plan stored
		// serves the whole wider band instead of being re-planned per band.
		st.BandMisses++
		bucket.hops++
		if bucket.hops >= HysteresisHops && bucket.widen < maxBandWiden {
			sh.widenBucket(bucket)
			st.Widens++
		}
		return val, false, true
	}
	v, isT := e.val.(T)
	if !isT {
		// A foreign-typed value can only mean two views share a class with
		// different T — treat as absent rather than corrupting the caller.
		st.ColdMisses++
		return val, false, false
	}
	if stats.CountersEqual(e.counters, counters) {
		bucket.hops = 0
		st.Hits++
		st.FastHits++
		if e.gen != c.store.gen.Load() {
			st.CrossRunHits++
		}
		sh.touch(e)
		return v, true, false
	}
	if crossServe || c.fresh(e, cards, bucket.widen) {
		// Drift stays anchored to the build-time cardinalities (like the
		// JIT's per-compilation fingerprint); only the counter vector is
		// refreshed so the next unchanged-world lookup takes the fast path.
		e.counters = append(e.counters[:0], counters...)
		bucket.hops = 0
		st.Hits++
		if e.gen != c.store.gen.Load() {
			st.CrossRunHits++
		}
		sh.touch(e)
		return v, true, false
	}
	delete(bucket.bands, e.band)
	sh.drop(e)
	bucket.hops = 0
	st.StaleDrops++
	return val, false, true
}

// freshest returns the bucket entry with minimal policy-fresh drift from
// cards, or nil. Ties break on the band signature so concurrent callers see
// one deterministic choice.
func (c *Cache[T]) freshest(b *keyBucket, cards []int) *entry {
	thr := c.pol.threshold()
	var best *entry
	bestD := math.Inf(1)
	for _, e := range b.bands {
		d := stats.Drift(e.cards, cards)
		if d > thr {
			continue
		}
		if best == nil || d < bestD || (d == bestD && e.band < best.band) {
			best, bestD = e, d
		}
	}
	return best
}

// fresh applies the drift gate, opened up to the width a hysteresis-widened
// band actually spans: a band merged from 2^widen native bands covers a
// 2^(widen+1)x cardinality range, so an entry must be allowed that much
// relative drift or widening would just convert band misses into stale
// drops and save nothing. The un-widened gate is the plain policy.
func (c *Cache[T]) fresh(e *entry, cards []int, widen uint8) bool {
	if widen == 0 {
		return c.pol.Fresh(e.cards, cards)
	}
	thr := c.pol.threshold()
	if span := float64(uint(1)<<(widen+1) - 1); span > thr {
		thr = span
	}
	return stats.Drift(e.cards, cards) <= thr
}

// Peek reports (without mutating statistics, hysteresis, or LRU order)
// whether a policy-fresh artifact is cached under k for cards — the JIT's
// switchover probes poll this from hot paths where Lookup's side effects
// would skew accounting.
func (c *Cache[T]) Peek(k Key, cards []int) (val T, ok bool) {
	vk := viewKey{class: c.class, key: k}
	sh := c.store.shardFor(vk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.buckets[vk]
	if bucket == nil {
		return val, false
	}
	e := bucket.bands[bandSig(cards, bucket.widen)]
	if e == nil || !c.fresh(e, cards, bucket.widen) {
		if !c.crossBand {
			return val, false
		}
		if e = c.freshest(bucket, cards); e == nil {
			return val, false
		}
	}
	v, isT := e.val.(T)
	return v, isT
}

// Contains reports whether any entry (of any band, any freshness) is cached
// under k — the cheap existence pre-test before computing a cardinality
// vector for Peek.
func (c *Cache[T]) Contains(k Key) bool {
	vk := viewKey{class: c.class, key: k}
	sh := c.store.shardFor(vk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.buckets[vk]
	return b != nil && len(b.bands) > 0
}

// Store caches v under k for the band of cards (under the key's current
// hysteresis widening), evicting least-recently-used entries when the
// store's LRU bound is exceeded.
func (c *Cache[T]) Store(k Key, counters []uint64, cards []int, v T) {
	vk := viewKey{class: c.class, key: k}
	sh := c.store.shardFor(vk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats[c.class].Stores++
	bucket := sh.buckets[vk]
	if bucket == nil {
		bucket = &keyBucket{bands: make(map[string]*entry)}
		sh.buckets[vk] = bucket
	}
	band := bandSig(cards, bucket.widen)
	gen := c.store.gen.Load()
	if e := bucket.bands[band]; e != nil {
		e.val = v
		e.cards = append(e.cards[:0], cards...)
		e.counters = append(e.counters[:0], counters...)
		e.gen = gen
		sh.touch(e)
		return
	}
	e := &entry{
		val:      v,
		cards:    append([]int(nil), cards...),
		counters: append([]uint64(nil), counters...),
		gen:      gen,
		vk:       vk,
		band:     band,
	}
	bucket.bands[band] = e
	sh.pushFront(e)
	sh.entries++
	if lim := c.store.perShard; lim > 0 {
		for sh.entries > lim && sh.tail != nil && sh.tail != e {
			victim := sh.tail
			sh.stats[victim.vk.class].Evictions++
			sh.evict(victim)
		}
	}
}

// Len returns the number of cached entries across this view's keys and
// bands.
func (c *Cache[T]) Len() int {
	n := 0
	for i := range c.store.shards {
		sh := &c.store.shards[i]
		sh.mu.Lock()
		for vk, b := range sh.buckets {
			if vk.class == c.class {
				n += len(b.bands)
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Keys returns the number of distinct structural keys in this view.
func (c *Cache[T]) Keys() int { return c.store.Keys(c.class) }

// Stats aggregates this view's class counters across all lock shards.
func (c *Cache[T]) Stats() Stats { return c.store.ClassStats(c.class) }
