package plancache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"carac/internal/stats"
)

// strCodec persists string values verbatim; the value "hint" becomes a
// recompile hint (persisted without an artifact), and values prefixed
// "skip:" are not persisted at all — the failure-marker convention.
func strCodec() EntryCodec {
	return EntryCodec{
		Encode: func(v any) ([]byte, bool) {
			s, ok := v.(string)
			if !ok || strings.HasPrefix(s, "skip:") {
				return nil, false
			}
			if s == "hint" {
				return nil, true
			}
			return []byte(s), true
		},
		Decode: func(p []byte) (any, error) { return string(p), nil },
	}
}

func testCodecs() map[Class]EntryCodec {
	return map[Class]EntryCodec{ClassPlans: strCodec(), ClassUnits: strCodec()}
}

func planView(s *Store) *Cache[string] {
	return View[string](s, ViewConfig{Class: ClassPlans})
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(0)
	v1 := planView(s1)
	cards := []int{16, 4}
	counters := []uint64{7, 9}
	v1.Store(Key{Sig: "alpha"}, counters, cards, "plan-alpha")
	v1.Store(Key{Sig: "beta"}, counters, []int{1024, 2}, "plan-beta")
	snap := &stats.Snapshot{CapturedEpoch: 3}

	p1 := NewPersister(dir, "tag-1", testCodecs())
	if err := p1.Flush(s1, snap); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := p1.Stats(); st.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2: %+v", st.Flushes, st)
	}

	s2 := NewStore(0)
	p2 := NewPersister(dir, "tag-1", testCodecs())
	p2.Load(s2)
	st := p2.Stats()
	if st.Hits != 2 || st.Invalidations != 0 || st.Misses != 0 {
		t.Fatalf("load stats %+v, want 2 hits", st)
	}
	if prof := p2.Profile(); prof == nil || prof.CapturedEpoch != 3 {
		t.Fatalf("profile snapshot not restored: %+v", prof)
	}
	// Identical freshness vectors must hit on the fast (counters-equal)
	// path; the entry must read as cross-run (generation predates this
	// store's first).
	got, ok, _ := planView(s2).Lookup(Key{Sig: "alpha"}, counters, cards)
	if !ok || got != "plan-alpha" {
		t.Fatalf("lookup after load: ok=%v val=%q", ok, got)
	}
	cs := s2.ClassStats(ClassPlans)
	if cs.CrossRunHits != 1 {
		t.Fatalf("loaded entry did not count as cross-run: %+v", cs)
	}
	// Drifted-but-fresh counters (cards within policy) must also hit.
	if _, ok, _ := planView(s2).Lookup(Key{Sig: "alpha"}, []uint64{8, 10}, cards); !ok {
		t.Fatal("drift-gate lookup after load missed")
	}
}

func TestPersistHintsLoadAsMisses(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(0)
	v1 := planView(s1)
	v1.Store(Key{Sig: "real"}, []uint64{1}, []int{8}, "artifact")
	v1.Store(Key{Sig: "lambda-unit"}, []uint64{1}, []int{8}, "hint")
	v1.Store(Key{Sig: "failed"}, []uint64{1}, []int{8}, "skip:failure-marker")
	p1 := NewPersister(dir, "t", testCodecs())
	if err := p1.Flush(s1, nil); err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2 (hint persists, failure marker does not)", st.Flushes)
	}

	s2 := NewStore(0)
	p2 := NewPersister(dir, "t", testCodecs())
	p2.Load(s2)
	st := p2.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 0 {
		t.Fatalf("load stats %+v, want 1 hit + 1 hint miss", st)
	}
	if _, ok, _ := planView(s2).Lookup(Key{Sig: "lambda-unit"}, []uint64{1}, []int{8}); ok {
		t.Fatal("hint entry must not be served as an artifact")
	}
	if _, ok, _ := planView(s2).Lookup(Key{Sig: "failed"}, []uint64{1}, []int{8}); ok {
		t.Fatal("failure marker must not be persisted")
	}
}

// TestPersistCorruptionIsSilentMiss mangles every cache file a different way
// — truncation, garbage, bit flip, wrong magic, wrong version tag — and
// requires each to load as a counted invalidation with zero entries
// installed, then get overwritten by the next flush.
func TestPersistCorruptionIsSilentMiss(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func([]byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte(strings.Repeat("x", len(b))) }},
		{"bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"badmagic", func(b []byte) []byte { b[0] = 'X'; return b }},
	}
	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s1 := NewStore(0)
			planView(s1).Store(Key{Sig: "k"}, []uint64{1}, []int{8}, "v")
			p1 := NewPersister(dir, "t", testCodecs())
			if err := p1.Flush(s1, &stats.Snapshot{CapturedEpoch: 1}); err != nil {
				t.Fatal(err)
			}
			files, err := os.ReadDir(dir)
			if err != nil || len(files) == 0 {
				t.Fatalf("no cache files written: %v", err)
			}
			for _, f := range files {
				path := filepath.Join(dir, f.Name())
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, c.mut(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			s2 := NewStore(0)
			p2 := NewPersister(dir, "t", testCodecs())
			p2.Load(s2)
			st := p2.Stats()
			if st.Hits != 0 || st.Invalidations == 0 {
				t.Fatalf("corrupt files must be silent misses: %+v", st)
			}
			if p2.Profile() != nil {
				t.Fatal("corrupt profile must not decode")
			}
			if s2.Len() != 0 {
				t.Fatalf("corrupt load installed %d entries", s2.Len())
			}
			// The cold path rebuilds; the next flush overwrites the corpse.
			planView(s2).Store(Key{Sig: "k"}, []uint64{2}, []int{8}, "v2")
			if err := p2.Flush(s2, &stats.Snapshot{CapturedEpoch: 2}); err != nil {
				t.Fatal(err)
			}
			s3 := NewStore(0)
			p3 := NewPersister(dir, "t", testCodecs())
			p3.Load(s3)
			if st := p3.Stats(); st.Hits != 1 || st.Invalidations != 0 {
				t.Fatalf("re-flush did not repair the directory: %+v", st)
			}
			if got, ok, _ := planView(s3).Lookup(Key{Sig: "k"}, []uint64{2}, []int{8}); !ok || got != "v2" {
				t.Fatalf("repaired entry: ok=%v val=%q", ok, got)
			}
		})
	}
}

// TestPersistVersionMismatch writes under one tag and loads under another:
// every file (entries and profile) must invalidate, and a flush under the
// new tag must repair the directory in place.
func TestPersistVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(0)
	planView(s1).Store(Key{Sig: "k"}, []uint64{1}, []int{4}, "old-layout")
	old := NewPersister(dir, "engine-0.0.9", testCodecs())
	if err := old.Flush(s1, &stats.Snapshot{}); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0)
	neu := NewPersister(dir, "engine-0.1.0", testCodecs())
	neu.Load(s2)
	if st := neu.Stats(); st.Hits != 0 || st.Invalidations != 2 {
		t.Fatalf("version mismatch stats %+v, want 2 invalidations (entry + profile)", st)
	}
	planView(s2).Store(Key{Sig: "k"}, []uint64{1}, []int{4}, "new-layout")
	if err := neu.Flush(s2, nil); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(0)
	p3 := NewPersister(dir, "engine-0.1.0", testCodecs())
	p3.Load(s3)
	if got, ok, _ := planView(s3).Lookup(Key{Sig: "k"}, []uint64{1}, []int{4}); !ok || got != "new-layout" {
		t.Fatalf("tag-repaired entry: ok=%v val=%q", ok, got)
	}
}

// TestPersistEvictedThenReloaded pins the disk-outlives-LRU contract: a
// flushed entry whose in-memory copy is later evicted (and which a
// subsequent flush therefore does NOT contain) still reloads from its
// surviving file in the next process.
func TestPersistEvictedThenReloaded(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(0)
	planView(s1).Store(Key{Sig: "precious"}, []uint64{1}, []int{8}, "kept-on-disk")
	p1 := NewPersister(dir, "t", testCodecs())
	if err := p1.Flush(s1, nil); err != nil {
		t.Fatal(err)
	}

	// A tiny second store: loading and then storing fresh keys evicts the
	// loaded entry, and the follow-up flush writes only the survivors.
	s2 := NewStore(LockShards) // one entry per lock shard
	p2 := NewPersister(dir, "t", testCodecs())
	p2.Load(s2)
	v2 := planView(s2)
	for i := 0; i < 8*LockShards; i++ {
		v2.Store(Key{Sig: fmt.Sprintf("filler-%d", i)}, []uint64{1}, []int{8}, "f")
	}
	if _, ok, _ := v2.Lookup(Key{Sig: "precious"}, []uint64{1}, []int{8}); ok {
		t.Fatal("filler stores should have evicted the loaded entry")
	}
	if s2.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if err := p2.Flush(s2, nil); err != nil {
		t.Fatal(err)
	}

	s3 := NewStore(0)
	p3 := NewPersister(dir, "t", testCodecs())
	p3.Load(s3)
	got, ok, _ := planView(s3).Lookup(Key{Sig: "precious"}, []uint64{1}, []int{8})
	if !ok || got != "kept-on-disk" {
		t.Fatalf("evicted entry lost from disk: ok=%v val=%q", ok, got)
	}
}

// TestPersistConcurrentFlush has several goroutines flushing overlapping
// stores into one directory (the two-processes-one-cache-dir scenario; run
// under -race in CI). Whatever interleaving wins, every file must remain a
// complete, valid entry — atomic rename permits no torn state.
func TestPersistConcurrentFlush(t *testing.T) {
	dir := t.TempDir()
	const flushers = 4
	var wg sync.WaitGroup
	for g := 0; g < flushers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewStore(0)
			v := planView(s)
			for i := 0; i < 16; i++ {
				v.Store(Key{Sig: fmt.Sprintf("shared-%d", i)}, []uint64{uint64(g)}, []int{8}, fmt.Sprintf("from-%d", g))
			}
			p := NewPersister(dir, "t", testCodecs())
			for r := 0; r < 8; r++ {
				if err := p.Flush(s, &stats.Snapshot{CapturedEpoch: uint64(g)}); err != nil {
					t.Errorf("flusher %d: %v", g, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := NewStore(0)
	p := NewPersister(dir, "t", testCodecs())
	p.Load(s)
	st := p.Stats()
	if st.Invalidations != 0 {
		t.Fatalf("concurrent flushes tore %d files: %+v", st.Invalidations, st)
	}
	if st.Hits != 16 {
		t.Fatalf("loaded %d entries, want 16", st.Hits)
	}
	for i := 0; i < 16; i++ {
		if _, ok := planView(s).Peek(Key{Sig: fmt.Sprintf("shared-%d", i)}, []int{8}); !ok {
			t.Fatalf("entry shared-%d unreadable after concurrent flush", i)
		}
	}
	// No temp-file debris left behind.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasPrefix(f.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", f.Name())
		}
	}
}

// TestLoadSweepsPollutedDirectory: Load garbage-collects a polluted cache
// directory — aged temp-file orphans from crashed flushes and permanently
// invalid entry files (garbage bytes, stale version tags) — while keeping
// valid entries, fresh temp files a concurrent flusher may still own, and
// foreign files it does not understand.
func TestLoadSweepsPollutedDirectory(t *testing.T) {
	dir := t.TempDir()
	s1 := NewStore(0)
	planView(s1).Store(Key{Sig: "good"}, []uint64{1}, []int{8}, "keep-me")
	p1 := NewPersister(dir, "tag", testCodecs())
	if err := p1.Flush(s1, &stats.Snapshot{CapturedEpoch: 1}); err != nil {
		t.Fatal(err)
	}

	// Pollution 1: an entry flushed under a stale version tag — the classic
	// leftover after an engine upgrade changes the layout.
	sStale := NewStore(0)
	planView(sStale).Store(Key{Sig: "stale"}, []uint64{1}, []int{8}, "old-world")
	pStale := NewPersister(dir, "old-tag", testCodecs())
	if err := pStale.Flush(sStale, nil); err != nil {
		t.Fatal(err)
	}
	// Pollution 2: an aged temp file from a crashed flush.
	orphan := filepath.Join(dir, ".tmp-crashed123")
	if err := os.WriteFile(orphan, []byte("partial flush"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpOrphanAge)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	// Not pollution: a fresh temp file (a live flusher could own it) and a
	// file the cache never wrote.
	fresh := filepath.Join(dir, ".tmp-live456")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Pollution 3: garbage bytes under the entry extension.
	garbage := filepath.Join(dir, "c0-deadbeef"+entryExt)
	if err := os.WriteFile(garbage, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0)
	p2 := NewPersister(dir, "tag", testCodecs())
	p2.Load(s2)
	st := p2.Stats()
	if st.Hits != 1 || st.Invalidations != 2 {
		t.Fatalf("load stats %+v, want 1 hit + 2 invalidations (garbage, stale tag)", st)
	}
	if st.Swept != 3 {
		t.Fatalf("swept %d files, want 3 (aged orphan, garbage, stale tag)", st.Swept)
	}
	if got, ok, _ := planView(s2).Lookup(Key{Sig: "good"}, []uint64{1}, []int{8}); !ok || got != "keep-me" {
		t.Fatalf("valid entry lost to the sweep: ok=%v val=%q", ok, got)
	}
	for _, gone := range []string{orphan, garbage} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("%s survived the sweep (err=%v)", filepath.Base(gone), err)
		}
	}
	for _, kept := range []string{fresh, foreign} {
		if _, err := os.Stat(kept); err != nil {
			t.Fatalf("%s should have been left alone: %v", filepath.Base(kept), err)
		}
	}

	// The directory self-healed: a second load sees only valid state.
	s3 := NewStore(0)
	p3 := NewPersister(dir, "tag", testCodecs())
	p3.Load(s3)
	if st := p3.Stats(); st.Hits != 1 || st.Invalidations != 0 || st.Swept != 0 {
		t.Fatalf("reload after sweep %+v, want a clean 1-hit load", st)
	}
	if prof := p3.Profile(); prof == nil || prof.CapturedEpoch != 1 {
		t.Fatalf("profile lost during sweep: %+v", prof)
	}
}

// TestExportInject round-trips entries through the in-memory half of the
// persistence path, including the band-quantization (widen) state.
func TestExportInject(t *testing.T) {
	s1 := NewStore(0)
	v1 := planView(s1)
	v1.Store(Key{Sig: "a"}, []uint64{1}, []int{4, 4}, "va")
	v1.Store(Key{Sig: "a"}, []uint64{2}, []int{512, 4}, "va-big") // second band, same key
	v1.Store(Key{Sig: "b"}, []uint64{3}, []int{16}, "vb")
	ents := s1.Export(ClassPlans)
	if len(ents) != 3 {
		t.Fatalf("exported %d entries, want 3", len(ents))
	}

	s2 := NewStore(0)
	for _, e := range ents {
		if !s2.Inject(e) {
			t.Fatalf("inject %q rejected", e.Key.Sig)
		}
	}
	// Re-injecting the same band must be refused (live entry wins).
	if s2.Inject(ents[0]) {
		t.Fatal("duplicate inject accepted")
	}
	if got, ok, _ := planView(s2).Lookup(Key{Sig: "a"}, []uint64{1}, []int{4, 4}); !ok || got != "va" {
		t.Fatalf("band 1: ok=%v val=%q", ok, got)
	}
	if got, ok, _ := planView(s2).Lookup(Key{Sig: "a"}, []uint64{2}, []int{512, 4}); !ok || got != "va-big" {
		t.Fatalf("band 2: ok=%v val=%q", ok, got)
	}
	if s2.Len() != 3 {
		t.Fatalf("store len %d, want 3", s2.Len())
	}
}
