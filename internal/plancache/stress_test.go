package plancache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedCacheConcurrentStress hammers the lock-sharded cache from
// GOMAXPROCS goroutines with the full mix of outcomes the parallel rule
// executor produces — fast hits (unchanged counters), drift hits, cold
// misses, band hops (cardinality regime changes), and drift-driven stale
// drops — and then cross-checks the aggregated statistics against the
// ground-truth operation counts. Run under -race (the CI race step covers
// this package) it is the regression net for the per-shard locking.
func TestShardedCacheConcurrentStress(t *testing.T) {
	c := New[int](Policy{})
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const (
		iters = 4000
		nkeys = 48 // spans (and collides within) the LockShards segments
	)
	keys := make([]Key, nkeys)
	for i := range keys {
		keys[i] = Key{Sig: fmt.Sprintf("sig-%d", i)}
	}

	var lookups, stores atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < iters; i++ {
				k := keys[next()%nkeys]
				// Phase-shifted cardinalities: within a phase counters and
				// cards repeat (fast hits); across phases cards drift inside
				// the band (drift hits), hop bands (band misses), or blow
				// past the threshold in-band (stale drops).
				phase := i / 500
				var cards [2]int
				var counters [2]uint64
				switch next() % 4 {
				case 0: // unchanged world: exact counter match
					cards = [2]int{100, 200}
					counters = [2]uint64{uint64(phase), uint64(phase)}
				case 1: // small in-band drift with fresh counters
					cards = [2]int{100 + int(next()%40), 200}
					counters = [2]uint64{next(), next()}
				case 2: // band hop: doubled cardinality regime
					cards = [2]int{100 << (phase%3 + 1), 200}
					counters = [2]uint64{next(), next()}
				case 3: // in-band blowup past the 0.5 drift threshold
					cards = [2]int{100, 200 + int(next()%200)}
					counters = [2]uint64{next(), next()}
				}
				lookups.Add(1)
				if _, ok, _ := c.Lookup(k, counters[:], cards[:]); !ok {
					stores.Add(1)
					c.Store(k, counters[:], cards[:], int(next()))
				}
			}
		}()
	}
	wg.Wait()

	s := c.Stats()
	gotLookups := s.Hits + s.ColdMisses + s.BandMisses + s.StaleDrops
	if gotLookups != lookups.Load() {
		t.Fatalf("stats lost lookups under contention: %d accounted, %d performed", gotLookups, lookups.Load())
	}
	if s.Stores != stores.Load() {
		t.Fatalf("stats lost stores under contention: %d accounted, %d performed", s.Stores, stores.Load())
	}
	if s.FastHits > s.Hits {
		t.Fatalf("fast hits %d exceed hits %d", s.FastHits, s.Hits)
	}
	// The mix must actually have exercised every outcome, or the stress is
	// not covering the code paths it claims to.
	if s.Hits == 0 || s.ColdMisses == 0 || s.BandMisses == 0 || s.StaleDrops == 0 {
		t.Fatalf("stress mix degenerate: %+v", s)
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after stress")
	}
}

// TestShardForStability pins that key routing is deterministic and spreads
// across segments: the same key always lands on one shard, and distinct keys
// cover a healthy fraction of the LockShards segments.
func TestShardForStability(t *testing.T) {
	s := NewStore(0)
	seen := map[*storeShard]bool{}
	for i := 0; i < 256; i++ {
		vk := viewKey{class: ClassPlans, key: Key{Sig: fmt.Sprintf("s%d", i)}}
		a, b := s.shardFor(vk), s.shardFor(vk)
		if a != b {
			t.Fatalf("key %v routed to two shards", vk)
		}
		seen[a] = true
	}
	if len(seen) < LockShards/2 {
		t.Fatalf("256 keys hit only %d of %d lock shards", len(seen), LockShards)
	}
}
