package interp

import (
	"sync/atomic"
	"testing"

	"carac/internal/ir"
	"carac/internal/storage"
)

// fanoutFixture builds a physically 8-way-sharded single-predicate catalog
// with delta rows landing in exactly the buckets of the given key values, and
// an Interp plus loop node ready for chooseFanout.
func fanoutFixture(t *testing.T, shards int, keys []storage.Value) (*Interp, *ir.DoWhileOp) {
	t.Helper()
	cat := storage.NewCatalog()
	id := cat.Declare("p", 2)
	cat.ConfigureShardsPhysical(shards, map[storage.PredID]int{id: 0})
	pd := cat.Pred(id)
	for i, k := range keys {
		pd.DeltaKnown.Insert([]storage.Value{k, storage.Value(i)})
	}
	in := New(cat, nil)
	in.Parallel = true
	in.Shards = shards
	return in, &ir.DoWhileOp{Preds: []storage.PredID{id}}
}

// bucketKey finds a key value hashing into the wanted shard bucket.
func bucketKey(t *testing.T, shards, want int) storage.Value {
	t.Helper()
	for v := storage.Value(0); v < 1<<16; v++ {
		if storage.ShardOf(v, shards) == want {
			return v
		}
	}
	t.Fatalf("no key found for bucket %d/%d", want, shards)
	return 0
}

// TestFanoutClampsToOccupiedBuckets pins the static fan-out fix: with eight
// buckets but only two occupied, the non-adaptive path used to emit eight
// spans per rule — six of them empty but still paying task dispatch. The
// task count must clamp to the occupied bucket count (and never below one).
func TestFanoutClampsToOccupiedBuckets(t *testing.T) {
	const shards = 8
	keys := []storage.Value{bucketKey(t, shards, 2), bucketKey(t, shards, 5)}
	in, loop := fanoutFixture(t, shards, keys)
	dec := in.chooseFanout(loop)
	if dec.sequential || dec.steal {
		t.Fatalf("static path picked sequential=%v steal=%v", dec.sequential, dec.steal)
	}
	if dec.tasks != 2 {
		t.Fatalf("tasks = %d, want 2 (occupied buckets)", dec.tasks)
	}

	// Empty delta: one unrestricted task, not zero.
	in2, loop2 := fanoutFixture(t, shards, nil)
	if dec := in2.chooseFanout(loop2); dec.tasks != 1 {
		t.Fatalf("empty-delta tasks = %d, want 1", dec.tasks)
	}
}

// TestChooseFanoutSkewDetection pins the skew formula and its guards: a delta
// whose hottest bucket exceeds StealThreshold times the mean occupied bucket
// flips the decision to work-stealing claims with min(workers, occupied)
// participation tasks; a balanced delta, a lone hot bucket (nothing to
// steal), or a single worker leave stealing off.
func TestChooseFanoutSkewDetection(t *testing.T) {
	const shards = 8
	hot := bucketKey(t, shards, 3)
	cold := bucketKey(t, shards, 6)
	// 9 rows in bucket 3, 1 in bucket 6: maxc/mean = 9/5 = 1.8.
	keys := make([]storage.Value, 0, 10)
	for i := 0; i < 9; i++ {
		keys = append(keys, hot) // same key: vary col 1 to defeat dedup
	}
	keys = append(keys, cold)
	mk := func(workers int, threshold float64) (*Interp, *ir.DoWhileOp) {
		cat := storage.NewCatalog()
		id := cat.Declare("p", 2)
		cat.ConfigureShardsPhysical(shards, map[storage.PredID]int{id: 0})
		pd := cat.Pred(id)
		for i, k := range keys {
			pd.DeltaKnown.Insert([]storage.Value{k, storage.Value(i)})
		}
		in := New(cat, nil)
		in.Parallel = true
		in.Shards = shards
		in.Workers = workers
		in.StealThreshold = threshold
		return in, &ir.DoWhileOp{Preds: []storage.PredID{id}}
	}

	in, loop := mk(4, 1.5)
	dec := in.chooseFanout(loop)
	if !dec.steal {
		t.Fatal("skewed delta (ratio 1.8 >= 1.5) did not engage stealing")
	}
	if dec.parts != 2 {
		t.Fatalf("parts = %d, want min(workers=4, occupied=2) = 2", dec.parts)
	}
	if !in.stealOcc[0] {
		t.Fatal("stealOcc[0] must be forced occupied (bucket-0 task contract)")
	}
	if !in.stealOcc[3] || !in.stealOcc[6] {
		t.Fatal("occupied buckets missing from the steal snapshot")
	}

	// Ratio below threshold: static spans.
	if in, loop := mk(4, 2.0); in.chooseFanout(loop).steal {
		t.Fatal("ratio 1.8 < threshold 2.0 engaged stealing")
	}
	// Stealing disabled by default.
	if in, loop := mk(4, 0); in.chooseFanout(loop).steal {
		t.Fatal("StealThreshold 0 engaged stealing")
	}
	// One worker: nothing to balance.
	if in, loop := mk(1, 1.5); in.chooseFanout(loop).steal {
		t.Fatal("single worker engaged stealing")
	}
}

// TestStealClaimsExactlyOnce drives runStealTask from concurrent workers over
// a shared claim table and asserts every occupied bucket runs exactly once —
// the CAS contract the correctness of a stealing iteration rests on. Uses
// the compiled-unit hook as the probe so no rule machinery is needed.
func TestStealClaimsExactlyOnce(t *testing.T) {
	const shards = 16
	keys := make([]storage.Value, 0, 24)
	for b := 0; b < shards; b += 2 { // occupy even buckets
		k := bucketKey(t, shards, b)
		for i := 0; i < 3; i++ {
			keys = append(keys, k)
		}
	}
	in, _ := fanoutFixture(t, shards, keys)
	in.Workers = 4
	in.StealThreshold = 0.1 // any occupancy counts as skew
	loop := &ir.DoWhileOp{Preds: []storage.PredID{in.Cat.Preds()[0].ID}}
	dec := in.chooseFanout(loop)
	if !dec.steal {
		t.Fatal("fixture did not engage stealing")
	}

	var hits [shards]int32
	rule := &ir.UnionRuleOp{}
	task := shardTask{rule: rule, steal: &stealState{claims: make([]atomic.Int32, shards)}}
	in.ensureWorkers(4)
	unit := ShardUnit(func(sub *Interp, shard, span, nshards int) error {
		if span != 1 || nshards != shards {
			t.Errorf("span=%d nshards=%d, want 1/%d", span, nshards, shards)
		}
		hits[shard]++
		return nil
	})
	task.unit = unit
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			done <- in.runStealTask(in.workers[w], w, task, shards)
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatalf("worker error: %v", err)
		}
	}
	for b := 0; b < shards; b++ {
		want := int32(0)
		if in.stealOcc[b] {
			want = 1
		}
		if hits[b] != want {
			t.Fatalf("bucket %d ran %d times, want %d", b, hits[b], want)
		}
	}
}
