package interp

import (
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/plancache"
	"carac/internal/storage"
)

// tcShapeSPJ builds the recursive TC body shape over the given delta/edge
// predicates: sink(x,y) :- delta(x,z), e(z,y).
func tcShapeSPJ(sink, delta, e storage.PredID) *ir.SPJOp {
	return &ir.SPJOp{
		Sink:    sink,
		Head:    []ir.ProjElem{{Var: 0}, {Var: 2}},
		NumVars: 3,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: delta, Src: ir.SrcDelta, Terms: []ast.Term{ast.V(0), ast.V(1)}},
			{Kind: ast.AtomRelation, Pred: e, Src: ir.SrcDerived, Terms: []ast.Term{ast.V(1), ast.V(2)}},
		},
		DeltaIdx: 0,
	}
}

// TestBindPlanUpgradesScanToProbe: a shared plan built against a predicate
// with no usable index keeps a scan step; rebinding it to a structurally
// identical sibling whose predicate HAS an index on the checked column must
// upgrade the step to a probe instead of inheriting the builder's weaker
// access path — and must leave the cached plan itself untouched.
func TestBindPlanUpgradesScanToProbe(t *testing.T) {
	cat := storage.NewCatalog()
	sink1 := cat.Declare("tc1", 2)
	d1 := cat.Declare("d1", 2)
	e1 := cat.Declare("e1", 2) // no indexes: the builder gets a scan
	sink2 := cat.Declare("tc2", 2)
	d2 := cat.Declare("d2", 2)
	e2 := cat.Declare("e2", 2)
	cat.Pred(e2).BuildIndexes([]int{0}) // the sibling is better indexed

	spj1 := tcShapeSPJ(sink1, d1, e1)
	spj2 := tcShapeSPJ(sink2, d2, e2)
	if k1, k2 := plancache.KeyFor(spj1), plancache.KeyFor(spj2); k1 != k2 {
		t.Fatal("fixture rules are not structurally identical")
	}

	built, err := BuildPlan(spj1, cat)
	if err != nil {
		t.Fatal(err)
	}
	if built.Steps[1].Kind != StepScan {
		t.Fatalf("builder step = %v, want scan (no index on e1)", built.Steps[1].Kind)
	}
	checksBefore := len(built.Steps[1].Checks)

	in := New(cat, nil)
	bound, ok := in.bindPlan(built, spj2)
	if !ok {
		t.Fatal("structurally identical rule failed to rebind")
	}
	st := &bound.Steps[1]
	if st.Kind != StepProbe {
		t.Fatalf("rebound step = %v, want probe (e2 has an index on column 0)", st.Kind)
	}
	if st.ProbeCol != 0 {
		t.Fatalf("rebound probe column = %d, want 0", st.ProbeCol)
	}
	if st.Pred != e2 {
		t.Fatalf("rebound step predicate = %v, want e2", st.Pred)
	}
	// The consumed equality check moved into the probe key.
	if len(st.Checks) != checksBefore-1 {
		t.Fatalf("rebound checks = %d, want %d", len(st.Checks), checksBefore-1)
	}
	// Cached artifact stays immutable: builder's plan still scans with its
	// original checks.
	if built.Steps[1].Kind != StepScan || len(built.Steps[1].Checks) != checksBefore {
		t.Fatalf("rebind mutated the cached plan: %+v", built.Steps[1])
	}
}

// revShapeSPJ builds sink(x,y) :- delta(x,y), e(y,x) — the second atom
// carries equality checks on BOTH columns, so different index registrations
// select different probe columns.
func revShapeSPJ(sink, delta, e storage.PredID) *ir.SPJOp {
	return &ir.SPJOp{
		Sink:    sink,
		Head:    []ir.ProjElem{{Var: 0}, {Var: 1}},
		NumVars: 2,
		Atoms: []ir.Atom{
			{Kind: ast.AtomRelation, Pred: delta, Src: ir.SrcDelta, Terms: []ast.Term{ast.V(0), ast.V(1)}},
			{Kind: ast.AtomRelation, Pred: e, Src: ir.SrcDerived, Terms: []ast.Term{ast.V(1), ast.V(0)}},
		},
		DeltaIdx: 0,
	}
}

// TestBindPlanIncompatibleIndexes: structurally identical siblings whose
// predicates carry DISJOINT index registrations must each bind a valid
// access path from the one shared entry — the unbindable probe demotes to a
// scan and re-selects against the target's indexes — instead of ping-ponging
// the entry through rebuild/re-store cycles that nullify the cache.
func TestBindPlanIncompatibleIndexes(t *testing.T) {
	cat := storage.NewCatalog()
	sink1 := cat.Declare("s1", 2)
	d1 := cat.Declare("d1", 2)
	e1 := cat.Declare("e1", 2)
	sink2 := cat.Declare("s2", 2)
	d2 := cat.Declare("d2", 2)
	e2 := cat.Declare("e2", 2)
	cat.Pred(e1).BuildIndexes([]int{0})
	cat.Pred(e2).BuildIndexes([]int{1})
	for i := storage.Value(0); i < 5; i++ {
		cat.Pred(d1).DeltaKnown.Insert([]storage.Value{i, i + 1})
		cat.Pred(d2).DeltaKnown.Insert([]storage.Value{i, i + 1})
		cat.Pred(e1).Derived.Insert([]storage.Value{i + 1, i})
		cat.Pred(e2).Derived.Insert([]storage.Value{i + 1, i})
	}
	spj1 := revShapeSPJ(sink1, d1, e1)
	spj2 := revShapeSPJ(sink2, d2, e2)

	built, err := BuildPlan(spj1, cat)
	if err != nil {
		t.Fatal(err)
	}
	if built.Steps[1].Kind != StepProbe || built.Steps[1].ProbeCol != 0 {
		t.Fatalf("builder step = %+v, want probe on col 0", built.Steps[1])
	}
	in := New(cat, nil)
	bound, ok := in.bindPlan(built, spj2)
	if !ok {
		t.Fatal("incompatible-index sibling failed to bind")
	}
	if st := &bound.Steps[1]; st.Kind != StepProbe || st.ProbeCol != 1 {
		t.Fatalf("rebound step = %+v, want probe re-selected on col 1", st)
	}
	if built.Steps[1].Kind != StepProbe || built.Steps[1].ProbeCol != 0 {
		t.Fatalf("rebind mutated the cached plan: %+v", built.Steps[1])
	}

	// End to end: one build serves both siblings repeatedly — no thrash.
	in.Plans = plancache.New[*Plan](plancache.Policy{})
	for round := 0; round < 3; round++ {
		if err := in.execSPJ(spj1); err != nil {
			t.Fatal(err)
		}
		if err := in.execSPJ(spj2); err != nil {
			t.Fatal(err)
		}
	}
	if in.Stats.PlanBuilds != 1 {
		t.Fatalf("%d plan builds across 6 executions of 2 siblings, want 1 (entry thrash)", in.Stats.PlanBuilds)
	}
	if in.Stats.PlanReuses != 5 {
		t.Fatalf("%d plan reuses, want 5: %+v", in.Stats.PlanReuses, in.Stats)
	}
	if n1, n2 := cat.Pred(sink1).DeltaNew.Len(), cat.Pred(sink2).DeltaNew.Len(); n1 == 0 || n1 != n2 {
		t.Fatalf("siblings derived %d vs %d tuples", n1, n2)
	}
}

// TestBindPlanUpgradeEndToEnd: through the plan cache, the upgraded sibling
// actually executes with the probe — derived results match the scan path.
func TestBindPlanUpgradeEndToEnd(t *testing.T) {
	cat := storage.NewCatalog()
	sink1 := cat.Declare("tc1", 2)
	d1 := cat.Declare("d1", 2)
	e1 := cat.Declare("e1", 2)
	sink2 := cat.Declare("tc2", 2)
	d2 := cat.Declare("d2", 2)
	e2 := cat.Declare("e2", 2)
	cat.Pred(e2).BuildIndexes([]int{0})
	for i := storage.Value(0); i < 6; i++ {
		cat.Pred(d1).DeltaKnown.Insert([]storage.Value{i, i + 1})
		cat.Pred(d2).DeltaKnown.Insert([]storage.Value{i, i + 1})
		cat.Pred(e1).Derived.Insert([]storage.Value{i + 1, i + 2})
		cat.Pred(e2).Derived.Insert([]storage.Value{i + 1, i + 2})
	}

	in := New(cat, nil)
	in.Plans = plancache.New[*Plan](plancache.Policy{})
	if err := in.execSPJ(tcShapeSPJ(sink1, d1, e1)); err != nil {
		t.Fatal(err)
	}
	if err := in.execSPJ(tcShapeSPJ(sink2, d2, e2)); err != nil {
		t.Fatal(err)
	}
	if in.Stats.PlanReuses == 0 {
		t.Fatalf("sibling did not reuse the shared plan: %+v", in.Stats)
	}
	n1 := cat.Pred(sink1).DeltaNew.Len()
	n2 := cat.Pred(sink2).DeltaNew.Len()
	if n1 == 0 || n1 != n2 {
		t.Fatalf("upgraded sibling derived %d tuples, scan path %d", n2, n1)
	}
}
