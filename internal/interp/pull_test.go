package interp

import (
	"math/rand"
	"testing"

	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

// runSrcExec mirrors runSrc with an executor and parallelism choice.
func runSrcExec(t *testing.T, src string, ex Executor, parallel bool) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for pid, cols := range ir.JoinKeyColumns(res.Program) {
		cat.Pred(pid).BuildIndexes(cols)
	}
	in := New(cat, nil)
	in.Executor = ex
	in.Parallel = parallel
	if err := in.Run(root); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cat
}

func catalogsEqual(t *testing.T, a, b *storage.Catalog) {
	t.Helper()
	for _, p := range a.Preds() {
		bp, ok := b.PredByName(p.Name)
		if !ok {
			t.Fatalf("predicate %s missing", p.Name)
		}
		if p.Derived.Len() != bp.Derived.Len() {
			t.Fatalf("pred %s: %d vs %d tuples", p.Name, p.Derived.Len(), bp.Derived.Len())
		}
		p.Derived.Each(func(row []storage.Value) bool {
			if !bp.Derived.Contains(row) {
				t.Fatalf("pred %s: tuple %v missing", p.Name, row)
			}
			return true
		})
	}
}

func TestPullEqualsPush(t *testing.T) {
	for _, src := range []string{tcChain, primesSrc, fibSrc} {
		push := runSrcExec(t, src, ExecPush, false)
		pull := runSrcExec(t, src, ExecPull, false)
		catalogsEqual(t, push, pull)
	}
}

func TestPullEqualsPushRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(8)
		src := ".decl e(x:number, y:number)\n.decl p(x:number, y:number)\n"
		for i := 0; i < n*3; i++ {
			src += "e(" + itoa(rng.Intn(n)) + "," + itoa(rng.Intn(n)) + ").\n"
		}
		src += "p(x,y) :- e(x,y).\np(x,w) :- p(x,y), p(y,z), e(z,w).\n"
		catalogsEqual(t, runSrcExec(t, src, ExecPush, false), runSrcExec(t, src, ExecPull, false))
	}
}

func TestParallelUnionsEqualSequential(t *testing.T) {
	// Mutual recursion gives multiple UnionAllOps per iteration to fan out.
	src := `
.decl n(x:number)
.decl even(x:number)
.decl odd(x:number)
.decl both(x:number, y:number)
n(40).
even(0).
odd(y) :- even(x), y = x + 1, n(m), y <= m.
even(y) :- odd(x), y = x + 1, n(m), y <= m.
both(x, y) :- even(x), odd(y), y = x + 1.
`
	seq := runSrcExec(t, src, ExecPush, false)
	par := runSrcExec(t, src, ExecPush, true)
	catalogsEqual(t, seq, par)

	parPull := runSrcExec(t, src, ExecPull, true)
	catalogsEqual(t, seq, parPull)
}

func TestParallelCSPAShape(t *testing.T) {
	src := `
.decl Assign(a:number, b:number)
.decl VaFlow(a:number, b:number)
.decl VAlias(a:number, b:number)
VaFlow(x, y) :- Assign(x, y).
VaFlow(x, y) :- VaFlow(x, z), VaFlow(z, y).
VAlias(x, y) :- VaFlow(z, x), VaFlow(z, y).
`
	full := src
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		full += "Assign(" + itoa(rng.Intn(20)) + "," + itoa(rng.Intn(20)) + ").\n"
	}
	catalogsEqual(t, runSrcExec(t, full, ExecPush, false), runSrcExec(t, full, ExecPush, true))
}

func TestPullExecutorEmptyBody(t *testing.T) {
	cat := storage.NewCatalog()
	out := cat.Declare("out", 1)
	plan := &Plan{
		Head:    []ir.ProjElem{{IsConst: true, Const: 7}},
		Sink:    out,
		NumVars: 0,
	}
	if n := RunPlanPull(plan, cat); n != 1 {
		t.Fatalf("derived = %d, want 1", n)
	}
	if !cat.Pred(out).DeltaNew.Contains([]storage.Value{7}) {
		t.Fatal("constant head not emitted")
	}
}

func TestExecutorString(t *testing.T) {
	if ExecPush.String() != "push" || ExecPull.String() != "pull" {
		t.Fatal("executor names wrong")
	}
}

func TestPullCancellation(t *testing.T) {
	src := tcChain
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	in := New(cat, nil)
	in.Executor = ExecPull
	in.Cancel()
	if err := in.Run(root); err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}
