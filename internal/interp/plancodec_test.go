package interp

import (
	"reflect"
	"testing"

	"carac/internal/ast"
	"carac/internal/ir"
)

// fullPlan exercises every symbolic field the codec carries, including the
// negative sentinel Out = -1 (builtin-as-filter) and an aggregation spec.
func fullPlan() *Plan {
	return &Plan{
		Steps: []Step{
			{
				Kind: StepProbe, Pred: 3, Src: ir.SrcDelta,
				ProbeCol: 1, ProbeKey: TmplElem{Var: 2},
				Checks: []ColCheck{
					{Col: 0, Mode: CheckConst, Const: 41},
					{Col: 2, Mode: CheckVar, Var: 1},
					{Col: 3, Mode: CheckSameRow, Other: 0},
				},
				Binds: []ColBind{{Col: 0, Var: 0}, {Col: 2, Var: 1}},
			},
			{
				Kind: StepProbeN, Pred: 5, Src: ir.SrcDerived,
				ProbeCols: []int{0, 2},
				ProbeKeys: []TmplElem{{Var: 0}, {IsConst: true, Const: 7}},
				Binds:     []ColBind{{Col: 1, Var: 3}},
			},
			{
				Kind: StepNegCheck, Pred: 1, Src: ir.SrcDerived,
				Tmpl: []TmplElem{{Var: 0}, {IsConst: true, Const: -9}},
			},
			{
				Kind: StepBuiltin, Builtin: ast.BLt,
				Args: []TmplElem{{Var: 0}, {IsConst: true, Const: 100}},
				Out:  -1, OutVar: 0,
			},
		},
		Head:    []ir.ProjElem{{Var: 3}, {IsConst: true, Const: 12}},
		Sink:    9,
		NumVars: 4,
		Agg:     ast.AggSpec{Kind: ast.AggMin, HeadPos: 1, OverVar: 3},
		EstRows: 123.5,
	}
}

func TestPlanCodecRoundTrip(t *testing.T) {
	want := fullPlan()
	b := AppendPlan(nil, want)
	got, rest, err := DecodePlan(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestPlanCodecChained pins the rest-returning contract the bytecode
// program codec relies on: two plans appended back to back decode in
// sequence from the shared buffer.
func TestPlanCodecChained(t *testing.T) {
	p1 := fullPlan()
	p2 := &Plan{Sink: 2, NumVars: 1, Head: []ir.ProjElem{{Var: 0}}}
	b := AppendPlan(AppendPlan(nil, p1), p2)
	got1, rest, err := DecodePlan(b)
	if err != nil {
		t.Fatal(err)
	}
	got2, rest, err := DecodePlan(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(p1, got1) || !reflect.DeepEqual(p2, got2) {
		t.Fatal("chained round trip diverged")
	}
}

// TestPlanCodecTruncation: every proper prefix must decode to an error or a
// structurally valid plan — never panic, never fabricate trailing state from
// a short buffer silently succeeding at full length.
func TestPlanCodecTruncation(t *testing.T) {
	b := AppendPlan(nil, fullPlan())
	for n := 0; n < len(b); n++ {
		if _, _, err := DecodePlan(b[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(b))
		}
	}
}
