package interp

import (
	"carac/internal/eval"
	"carac/internal/storage"
)

// This file implements the pull-based (Volcano-style iterator) execution
// engine for access plans. The paper's relational layer is pluggable and
// "has been integrated with a typical push-based and a pull-based engine"
// (§V-D); the push-based executor (Plan.Execute) is the default, and this
// iterator model is selectable via the engine options. Both must produce
// identical results — a differential test enforces it.

// pullNode is one operator of the iterator tree: Next advances to the next
// match of steps[0..i] and reports whether one exists.
type pullNode interface {
	// Open (re)initializes the node for the current upstream bindings.
	Open()
	// Next advances; false means exhausted.
	Next() bool
}

// relPull iterates a relational step (scan or probe) under the current
// bindings, applying checks and binds.
type relPull struct {
	st   *Step
	cat  *storage.Catalog
	bind []storage.Value

	// Shard restriction for the plan's delta step (see Plan.Shard*):
	// shardCount > 1 admits only rows of bucket shard — served from the
	// exact bucket list when the relation's partition matches the task
	// layout (hashFilter off), enforced per row otherwise.
	shard       int
	shardCount  int
	shardKeyCol int
	hashFilter  bool

	rel  *storage.Relation
	rows []int32 // probe rows; nil = scan
	pos  int
	n    int
}

func (r *relPull) Open() {
	r.rel = SourceRel(r.cat, r.st.Pred, r.st.Src)
	r.pos = 0
	r.hashFilter = r.shardCount > 1
	switch r.st.Kind {
	case StepProbe:
		key := r.st.ProbeKey.resolve(r.bind)
		rows, ok := r.rel.Probe(r.st.ProbeCol, key)
		if ok {
			r.rows = rows
			r.n = len(rows)
			return
		}
		// No index at runtime: materialize matching rows (degraded path).
		r.rows = r.rows[:0]
		total := int32(r.rel.Len())
		for i := int32(0); i < total; i++ {
			if r.rel.Row(i)[r.st.ProbeCol] == key {
				r.rows = append(r.rows, i)
			}
		}
		r.n = len(r.rows)
	case StepProbeN:
		vals := make([]storage.Value, len(r.st.ProbeKeys))
		for ki, k := range r.st.ProbeKeys {
			vals[ki] = k.resolve(r.bind)
		}
		rows, ok := r.rel.ProbeComposite(r.st.ProbeCols, vals)
		if ok {
			r.rows = rows
			r.n = len(rows)
			return
		}
		r.rows = r.rows[:0]
		total := int32(r.rel.Len())
	scan:
		for i := int32(0); i < total; i++ {
			row := r.rel.Row(i)
			for ci, c := range r.st.ProbeCols {
				if row[c] != vals[ci] {
					continue scan
				}
			}
			r.rows = append(r.rows, i)
		}
		r.n = len(r.rows)
	default:
		if r.hashFilter {
			if sc, col := r.rel.ShardConfig(); sc == r.shardCount && col == r.shardKeyCol {
				// Exact-bucket scan: iterate only this task's rows and skip
				// the per-row hash.
				r.hashFilter = false
				r.rows = r.rel.ShardRows(r.shard)
				r.n = len(r.rows)
				return
			}
		}
		r.rows = nil
		r.n = r.rel.Len()
	}
}

func (r *relPull) Next() bool {
	for r.pos < r.n {
		var row []storage.Value
		if r.rows != nil {
			row = r.rel.Row(r.rows[r.pos])
		} else {
			row = r.rel.Row(int32(r.pos))
		}
		r.pos++
		if !r.matches(row) {
			continue
		}
		for _, b := range r.st.Binds {
			r.bind[b.Var] = row[b.Col]
		}
		return true
	}
	return false
}

func (r *relPull) matches(row []storage.Value) bool {
	if r.hashFilter && storage.ShardOf(row[r.shardKeyCol], r.shardCount) != r.shard {
		return false
	}
	for _, ck := range r.st.Checks {
		switch ck.Mode {
		case CheckConst:
			if row[ck.Col] != ck.Const {
				return false
			}
		case CheckVar:
			if row[ck.Col] != r.bind[ck.Var] {
				return false
			}
		case CheckSameRow:
			if row[ck.Col] != row[ck.Other] {
				return false
			}
		}
	}
	return true
}

// guardPull evaluates a negation or builtin step: it yields at most one
// "row" (the guard passing) per Open.
type guardPull struct {
	st   *Step
	cat  *storage.Catalog
	bind []storage.Value
	done bool
	buf  []storage.Value
}

func (g *guardPull) Open() { g.done = false }

func (g *guardPull) Next() bool {
	if g.done {
		return false
	}
	g.done = true
	switch g.st.Kind {
	case StepNegCheck:
		rel := SourceRel(g.cat, g.st.Pred, g.st.Src)
		g.buf = g.buf[:0]
		for _, tm := range g.st.Tmpl {
			g.buf = append(g.buf, tm.resolve(g.bind))
		}
		return !rel.Contains(g.buf)
	case StepBuiltin:
		g.buf = g.buf[:0]
		for i, a := range g.st.Args {
			if i == g.st.Out {
				g.buf = append(g.buf, 0)
				continue
			}
			g.buf = append(g.buf, a.resolve(g.bind))
		}
		if g.st.Out < 0 {
			return eval.Check(g.st.Builtin, g.buf)
		}
		v, ok := eval.Solve(g.st.Builtin, g.buf, g.st.Out)
		if !ok {
			return false
		}
		g.bind[g.st.OutVar] = v
		return true
	}
	return false
}

// PullExecutor runs a plan with the iterator model: a stack of operators is
// advanced depth-first, emitting a head tuple for every full match.
type PullExecutor struct {
	plan  *Plan
	nodes []pullNode
	bind  []storage.Value
	head  []storage.Value
}

// NewPullExecutor prepares an iterator tree for the plan.
func NewPullExecutor(plan *Plan, cat *storage.Catalog) *PullExecutor {
	bind := make([]storage.Value, plan.NumVars)
	nodes := make([]pullNode, len(plan.Steps))
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if st.Kind == StepScan || st.Kind == StepProbe || st.Kind == StepProbeN {
			rp := &relPull{st: st, cat: cat, bind: bind}
			if plan.ShardCount > 1 && i == plan.ShardStep {
				rp.shard, rp.shardCount, rp.shardKeyCol = plan.Shard, plan.ShardCount, plan.ShardKeyCol
			}
			nodes[i] = rp
		} else {
			nodes[i] = &guardPull{st: st, cat: cat, bind: bind}
		}
	}
	return &PullExecutor{
		plan:  plan,
		nodes: nodes,
		bind:  bind,
		head:  make([]storage.Value, len(plan.Head)),
	}
}

// Execute pulls every match, invoking emit with (head, bindings).
func (e *PullExecutor) Execute(emit func(head, bind []storage.Value)) {
	n := len(e.nodes)
	if n == 0 {
		e.project()
		emit(e.head, e.bind)
		return
	}
	for i := range e.bind {
		e.bind[i] = 0
	}
	depth := 0
	e.nodes[0].Open()
	for depth >= 0 {
		if depth <= 1 {
			if e.plan.Cancel != nil && e.plan.Cancel() {
				return
			}
			if e.plan.Yield != nil && e.plan.Yield() {
				e.plan.Yielded = true
				return
			}
		}
		if !e.nodes[depth].Next() {
			depth--
			continue
		}
		if depth == n-1 {
			e.project()
			emit(e.head, e.bind)
			continue
		}
		depth++
		e.nodes[depth].Open()
	}
}

func (e *PullExecutor) project() {
	for hi, h := range e.plan.Head {
		if h.IsConst {
			e.head[hi] = h.Const
		} else {
			e.head[hi] = e.bind[h.Var]
		}
	}
}

// RunPlanPull executes a plan with the pull engine, sinking like RunPlan.
func RunPlanPull(p *Plan, cat *storage.Catalog) int64 {
	return runPlanSink(p, cat, ExecPull)
}

// Executor selects the leaf-join execution engine (paper §V-D).
type Executor uint8

const (
	// ExecPush is the default callback-driven engine.
	ExecPush Executor = iota
	// ExecPull is the Volcano-style iterator engine.
	ExecPull
)

// String names the executor.
func (e Executor) String() string {
	if e == ExecPull {
		return "pull"
	}
	return "push"
}
