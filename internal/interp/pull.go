package interp

import (
	"carac/internal/eval"
	"carac/internal/storage"
)

// This file implements the pull-based (Volcano-style iterator) execution
// engine for access plans. The paper's relational layer is pluggable and
// "has been integrated with a typical push-based and a pull-based engine"
// (§V-D); the push-based executor (Plan.Execute) is the default, and this
// iterator model is selectable via the engine options. Both must produce
// identical results — a differential test enforces it.

// pullNode is one operator of the iterator tree: Next advances to the next
// match of steps[0..i] and reports whether one exists.
type pullNode interface {
	// Open (re)initializes the node for the current upstream bindings.
	Open()
	// Next advances; false means exhausted.
	Next() bool
}

// relSeg is one contiguous slice of a relational step's input: a row-id
// list into rel (probe result or bucket view), or all of rel when rows is
// nil. A step's input is a sequence of segments — one for a flat relation,
// one per bucket for a physically sharded relation or a bucket-span
// restriction — iterated by relPull's cursor.
type relSeg struct {
	rel  *storage.Relation
	rows []int32 // nil = scan all of rel
}

// relPull iterates a relational step (scan or probe) under the current
// bindings, applying checks and binds.
type relPull struct {
	st   *Step
	cat  *storage.Catalog
	bind []storage.Value

	// Shard restriction for the plan's delta step (see Plan.Shard*):
	// shardCount > 1 admits only rows of buckets [shard, shard+shardSpan) —
	// served from the exact bucket lists or sub-relations when the
	// relation's partition matches the task layout (hashFilter off),
	// enforced per row otherwise.
	shard       int
	shardSpan   int
	shardCount  int
	shardKeyCol int
	hashFilter  bool

	segs    []relSeg // reused across Opens
	si, pos int
	scratch []int32 // degraded-path row materialization
}

func (r *relPull) Open() {
	rel := SourceRel(r.cat, r.st.Pred, r.st.Src)
	r.segs = r.segs[:0]
	r.scratch = r.scratch[:0]
	r.si, r.pos = 0, 0
	r.hashFilter = r.shardCount > 1
	subs := rel.PhysSubs()
	// Bucket range to serve: everything, narrowed to the task's span when
	// the restriction matches the relation's partition layout.
	lo, hi := 0, len(subs)
	if r.hashFilter {
		if sc, col := rel.ShardConfig(); sc == r.shardCount && col == r.shardKeyCol {
			r.hashFilter = false
			if subs != nil {
				lo, hi = r.shard, r.shard+r.shardSpan
			} else if r.st.Kind == StepScan {
				for s := r.shard; s < r.shard+r.shardSpan; s++ {
					if rows := rel.ShardRows(s); len(rows) > 0 {
						r.segs = append(r.segs, relSeg{rel: rel, rows: rows})
					}
				}
				return
			} else {
				// Probe through the global index: bucket membership must be
				// re-checked per row (the index is not partitioned).
				r.hashFilter = true
			}
		}
	}
	switch r.st.Kind {
	case StepProbe:
		key := r.st.ProbeKey.resolve(r.bind)
		if subs != nil {
			// A probe on the shard key column routes to exactly one bucket.
			plo, phi := rel.ProbeSpan(r.st.ProbeCol, key)
			lo, hi = max(lo, plo), min(hi, phi)
			for s := lo; s < hi; s++ {
				if rows, ok := subs[s].Probe(r.st.ProbeCol, key); ok {
					if len(rows) > 0 {
						r.segs = append(r.segs, relSeg{rel: subs[s], rows: rows})
					}
				} else {
					r.materialize(subs[s], func(row []storage.Value) bool { return row[r.st.ProbeCol] == key })
				}
			}
			return
		}
		if rows, ok := rel.Probe(r.st.ProbeCol, key); ok {
			// A probe miss yields a nil list — never a scan-all segment
			// (rows == nil marks scans only).
			if len(rows) > 0 {
				r.segs = append(r.segs, relSeg{rel: rel, rows: rows})
			}
			return
		}
		// No index at runtime: materialize matching rows (degraded path).
		r.materialize(rel, func(row []storage.Value) bool { return row[r.st.ProbeCol] == key })
	case StepProbeN:
		vals := make([]storage.Value, len(r.st.ProbeKeys))
		for ki, k := range r.st.ProbeKeys {
			vals[ki] = k.resolve(r.bind)
		}
		covers := func(row []storage.Value) bool {
			for ci, c := range r.st.ProbeCols {
				if row[c] != vals[ci] {
					return false
				}
			}
			return true
		}
		if subs != nil {
			// As above: a composite probe covering the shard key column
			// routes to one bucket.
			plo, phi := rel.ProbeSpanComposite(r.st.ProbeCols, vals)
			lo, hi = max(lo, plo), min(hi, phi)
			for s := lo; s < hi; s++ {
				if rows, ok := subs[s].ProbeComposite(r.st.ProbeCols, vals); ok {
					if len(rows) > 0 {
						r.segs = append(r.segs, relSeg{rel: subs[s], rows: rows})
					}
				} else {
					r.materialize(subs[s], covers)
				}
			}
			return
		}
		if rows, ok := rel.ProbeComposite(r.st.ProbeCols, vals); ok {
			if len(rows) > 0 {
				r.segs = append(r.segs, relSeg{rel: rel, rows: rows})
			}
			return
		}
		r.materialize(rel, covers)
	default:
		if subs != nil {
			for s := lo; s < hi; s++ {
				if subs[s].Len() > 0 {
					r.segs = append(r.segs, relSeg{rel: subs[s]})
				}
			}
			return
		}
		r.segs = append(r.segs, relSeg{rel: rel})
	}
}

// materialize appends a row-id segment holding rel's rows that satisfy
// keep — the degraded path when an expected index is missing at runtime.
func (r *relPull) materialize(rel *storage.Relation, keep func(row []storage.Value) bool) {
	start := len(r.scratch)
	total := int32(rel.Len())
	for i := int32(0); i < total; i++ {
		if keep(rel.Row(i)) {
			r.scratch = append(r.scratch, i)
		}
	}
	if len(r.scratch) > start {
		r.segs = append(r.segs, relSeg{rel: rel, rows: r.scratch[start:len(r.scratch):len(r.scratch)]})
	}
}

func (r *relPull) Next() bool {
	for r.si < len(r.segs) {
		seg := &r.segs[r.si]
		n := len(seg.rows)
		if seg.rows == nil {
			n = seg.rel.Len()
		}
		for r.pos < n {
			var row []storage.Value
			if seg.rows != nil {
				row = seg.rel.Row(seg.rows[r.pos])
			} else {
				row = seg.rel.Row(int32(r.pos))
			}
			r.pos++
			if !r.matches(row) {
				continue
			}
			for _, b := range r.st.Binds {
				r.bind[b.Var] = row[b.Col]
			}
			return true
		}
		r.si++
		r.pos = 0
	}
	return false
}

func (r *relPull) matches(row []storage.Value) bool {
	if r.hashFilter {
		if s := storage.ShardOf(row[r.shardKeyCol], r.shardCount); s < r.shard || s >= r.shard+r.shardSpan {
			return false
		}
	}
	for _, ck := range r.st.Checks {
		switch ck.Mode {
		case CheckConst:
			if row[ck.Col] != ck.Const {
				return false
			}
		case CheckVar:
			if row[ck.Col] != r.bind[ck.Var] {
				return false
			}
		case CheckSameRow:
			if row[ck.Col] != row[ck.Other] {
				return false
			}
		}
	}
	return true
}

// guardPull evaluates a negation or builtin step: it yields at most one
// "row" (the guard passing) per Open.
type guardPull struct {
	st   *Step
	cat  *storage.Catalog
	bind []storage.Value
	done bool
	buf  []storage.Value
}

func (g *guardPull) Open() { g.done = false }

func (g *guardPull) Next() bool {
	if g.done {
		return false
	}
	g.done = true
	switch g.st.Kind {
	case StepNegCheck:
		rel := SourceRel(g.cat, g.st.Pred, g.st.Src)
		g.buf = g.buf[:0]
		for _, tm := range g.st.Tmpl {
			g.buf = append(g.buf, tm.resolve(g.bind))
		}
		return !rel.Contains(g.buf)
	case StepBuiltin:
		g.buf = g.buf[:0]
		for i, a := range g.st.Args {
			if i == g.st.Out {
				g.buf = append(g.buf, 0)
				continue
			}
			g.buf = append(g.buf, a.resolve(g.bind))
		}
		if g.st.Out < 0 {
			return eval.Check(g.st.Builtin, g.buf)
		}
		v, ok := eval.Solve(g.st.Builtin, g.buf, g.st.Out)
		if !ok {
			return false
		}
		g.bind[g.st.OutVar] = v
		return true
	}
	return false
}

// PullExecutor runs a plan with the iterator model: a stack of operators is
// advanced depth-first, emitting a head tuple for every full match.
type PullExecutor struct {
	plan  *Plan
	nodes []pullNode
	bind  []storage.Value
	head  []storage.Value
}

// NewPullExecutor prepares an iterator tree for the plan.
func NewPullExecutor(plan *Plan, cat *storage.Catalog) *PullExecutor {
	bind := make([]storage.Value, plan.NumVars)
	nodes := make([]pullNode, len(plan.Steps))
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if st.Kind == StepScan || st.Kind == StepProbe || st.Kind == StepProbeN {
			rp := &relPull{st: st, cat: cat, bind: bind}
			if plan.ShardCount > 1 && i == plan.ShardStep {
				rp.shard, rp.shardSpan, rp.shardCount, rp.shardKeyCol = plan.Shard, plan.ShardSpan, plan.ShardCount, plan.ShardKeyCol
			}
			nodes[i] = rp
		} else {
			nodes[i] = &guardPull{st: st, cat: cat, bind: bind}
		}
	}
	return &PullExecutor{
		plan:  plan,
		nodes: nodes,
		bind:  bind,
		head:  make([]storage.Value, len(plan.Head)),
	}
}

// Execute pulls every match, invoking emit with (head, bindings).
func (e *PullExecutor) Execute(emit func(head, bind []storage.Value)) {
	n := len(e.nodes)
	if n == 0 {
		e.project()
		emit(e.head, e.bind)
		return
	}
	for i := range e.bind {
		e.bind[i] = 0
	}
	depth := 0
	e.nodes[0].Open()
	for depth >= 0 {
		if depth <= 1 {
			if e.plan.Cancel != nil && e.plan.Cancel() {
				return
			}
			if e.plan.Yield != nil && e.plan.Yield() {
				e.plan.Yielded = true
				return
			}
		}
		if !e.nodes[depth].Next() {
			depth--
			continue
		}
		if depth == n-1 {
			e.project()
			emit(e.head, e.bind)
			continue
		}
		depth++
		e.nodes[depth].Open()
	}
}

func (e *PullExecutor) project() {
	for hi, h := range e.plan.Head {
		if h.IsConst {
			e.head[hi] = h.Const
		} else {
			e.head[hi] = e.bind[h.Var]
		}
	}
}

// RunPlanPull executes a plan with the pull engine, sinking like RunPlan.
func RunPlanPull(p *Plan, cat *storage.Catalog) int64 {
	return runPlanSink(p, cat, ExecPull)
}

// Executor selects the leaf-join execution engine (paper §V-D).
type Executor uint8

const (
	// ExecPush is the default callback-driven engine.
	ExecPush Executor = iota
	// ExecPull is the Volcano-style iterator engine.
	ExecPull
)

// String names the executor.
func (e Executor) String() string {
	if e == ExecPull {
		return "pull"
	}
	return "push"
}
