package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"carac/internal/ast"
	"carac/internal/ir"
	"carac/internal/parser"
	"carac/internal/storage"
)

// runSrc parses, lowers (semi-naive unless naive is set), optionally builds
// join-key indexes, runs to fixpoint, and returns the catalog and stats.
func runSrc(t *testing.T, src string, indexed, naive bool) (*storage.Catalog, Stats) {
	t.Helper()
	cat := storage.NewCatalog()
	res, err := parser.Parse(src, cat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var root *ir.ProgramOp
	if naive {
		root, err = ir.LowerNaive(res.Program)
	} else {
		root, err = ir.Lower(res.Program)
	}
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if indexed {
		for pid, cols := range ir.JoinKeyColumns(res.Program) {
			cat.Pred(pid).BuildIndexes(cols)
		}
	}
	in := New(cat, nil)
	if err := in.Run(root); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cat, in.Stats
}

func derived(t *testing.T, cat *storage.Catalog, pred string) map[[2]storage.Value]bool {
	t.Helper()
	p, ok := cat.PredByName(pred)
	if !ok {
		t.Fatalf("predicate %q missing", pred)
	}
	out := map[[2]storage.Value]bool{}
	p.Derived.Each(func(row []storage.Value) bool {
		var k [2]storage.Value
		copy(k[:], row)
		out[k] = true
		return true
	})
	return out
}

const tcChain = `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3). edge(3,4).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`

func TestTransitiveClosureChain(t *testing.T) {
	cat, stats := runSrc(t, tcChain, false, false)
	tc := derived(t, cat, "tc")
	want := [][2]storage.Value{{1, 2}, {2, 3}, {3, 4}, {1, 3}, {2, 4}, {1, 4}}
	if len(tc) != len(want) {
		t.Fatalf("tc = %v", tc)
	}
	for _, w := range want {
		if !tc[w] {
			t.Fatalf("missing %v", w)
		}
	}
	if stats.Iterations == 0 || stats.Derivations == 0 {
		t.Fatalf("stats not collected: %+v", stats)
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	src := `
.decl edge(x:number, y:number)
.decl tc(x:number, y:number)
edge(1,2). edge(2,3). edge(3,1).
tc(x,y) :- edge(x,y).
tc(x,y) :- tc(x,z), edge(z,y).
`
	cat, _ := runSrc(t, src, false, false)
	tc := derived(t, cat, "tc")
	if len(tc) != 9 { // complete digraph on {1,2,3}
		t.Fatalf("cycle closure size = %d, want 9", len(tc))
	}
}

// reachOracle computes reachability by repeated squaring over a dense matrix.
func reachOracle(n int, edges [][2]int) map[[2]storage.Value]bool {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range edges {
		adj[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !adj[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[k][j] {
					adj[i][j] = true
				}
			}
		}
	}
	out := map[[2]storage.Value]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if adj[i][j] {
				out[[2]storage.Value{storage.Value(i), storage.Value(j)}] = true
			}
		}
	}
	return out
}

func TestTCAgainstFloydWarshallOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		var edges [][2]int
		src := ".decl edge(x:number, y:number)\n.decl tc(x:number, y:number)\n"
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			edges = append(edges, [2]int{a, b})
			src += "edge(" + itoa(a) + "," + itoa(b) + ").\n"
		}
		src += "tc(x,y) :- edge(x,y).\ntc(x,y) :- tc(x,z), edge(z,y).\n"
		cat, _ := runSrc(t, src, trial%2 == 0, false)
		got := derived(t, cat, "tc")
		want := reachOracle(n, edges)
		if len(got) != len(want) {
			t.Fatalf("trial %d: |tc| = %d, oracle %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing %v", trial, k)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSemiNaiveEqualsNaive(t *testing.T) {
	for _, src := range []string{tcChain, primesSrc, fibSrc} {
		semi, _ := runSrc(t, src, false, false)
		naive, _ := runSrc(t, src, false, true)
		for _, p := range semi.Preds() {
			np, _ := naive.PredByName(p.Name)
			if p.Derived.Len() != np.Derived.Len() {
				t.Fatalf("pred %s: semi %d != naive %d", p.Name, p.Derived.Len(), np.Derived.Len())
			}
			p.Derived.Each(func(row []storage.Value) bool {
				if !np.Derived.Contains(row) {
					t.Fatalf("pred %s: naive missing %v", p.Name, row)
				}
				return true
			})
		}
	}
}

func TestIndexedEqualsUnindexed(t *testing.T) {
	for _, src := range []string{tcChain, primesSrc, fibSrc} {
		plain, _ := runSrc(t, src, false, false)
		idx, _ := runSrc(t, src, true, false)
		for _, p := range plain.Preds() {
			ip, _ := idx.PredByName(p.Name)
			if p.Derived.Len() != ip.Derived.Len() {
				t.Fatalf("pred %s: unindexed %d != indexed %d", p.Name, p.Derived.Len(), ip.Derived.Len())
			}
		}
	}
}

const primesSrc = `
.decl num(n:number)
.decl composite(n:number)
.decl prime(n:number)
num(2). num(3). num(4). num(5). num(6). num(7). num(8). num(9). num(10).
num(11). num(12). num(13). num(14). num(15). num(16). num(17). num(18). num(19). num(20).
composite(c) :- num(a), num(b), c = a * b, num(c).
prime(p) :- num(p), !composite(p).
`

func TestPrimesWithNegation(t *testing.T) {
	cat, _ := runSrc(t, primesSrc, false, false)
	p, _ := cat.PredByName("prime")
	want := []storage.Value{2, 3, 5, 7, 11, 13, 17, 19}
	if p.Derived.Len() != len(want) {
		t.Fatalf("primes = %v", p.Derived.Snapshot())
	}
	for _, v := range want {
		if !p.Derived.Contains([]storage.Value{v}) {
			t.Fatalf("missing prime %d", v)
		}
	}
}

const fibSrc = `
.decl fib(i:number, v:number)
.decl lim(i:number)
fib(0, 0). fib(1, 1).
lim(15).
fib(j, s) :- fib(i, a), j = i + 2, lim(m), j <= m, fib(k, b), k = i + 1, s = a + b.
`

func TestFibonacciWithBuiltins(t *testing.T) {
	cat, _ := runSrc(t, fibSrc, false, false)
	p, _ := cat.PredByName("fib")
	if p.Derived.Len() != 16 {
		t.Fatalf("fib size = %d, want 16: %v", p.Derived.Len(), p.Derived.Snapshot())
	}
	if !p.Derived.Contains([]storage.Value{15, 610}) {
		t.Fatal("fib(15) != 610")
	}
	if !p.Derived.Contains([]storage.Value{10, 55}) {
		t.Fatal("fib(10) != 55")
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
.decl n(x:number)
.decl even(x:number)
.decl odd(x:number)
n(10).
even(0).
odd(y) :- even(x), y = x + 1, n(m), y <= m.
even(y) :- odd(x), y = x + 1, n(m), y <= m.
`
	cat, _ := runSrc(t, src, false, false)
	even := derived2(t, cat, "even")
	odd := derived2(t, cat, "odd")
	if len(even) != 6 || len(odd) != 5 {
		t.Fatalf("even=%v odd=%v", even, odd)
	}
}

func derived2(t *testing.T, cat *storage.Catalog, pred string) []storage.Value {
	t.Helper()
	p, ok := cat.PredByName(pred)
	if !ok {
		t.Fatalf("predicate %q missing", pred)
	}
	var out []storage.Value
	p.Derived.Each(func(row []storage.Value) bool {
		out = append(out, row[0])
		return true
	})
	return out
}

func TestConstantsInRuleBody(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl from7(y:number)
e(7, 1). e(7, 2). e(8, 3).
from7(y) :- e(7, y).
`
	cat, _ := runSrc(t, src, true, false)
	p, _ := cat.PredByName("from7")
	if p.Derived.Len() != 2 {
		t.Fatalf("from7 = %v", p.Derived.Snapshot())
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	src := `
.decl e(x:number, y:number)
.decl selfloop(x:number)
e(1, 1). e(1, 2). e(3, 3).
selfloop(x) :- e(x, x).
`
	cat, _ := runSrc(t, src, false, false)
	p, _ := cat.PredByName("selfloop")
	if p.Derived.Len() != 2 || !p.Derived.Contains([]storage.Value{1}) || !p.Derived.Contains([]storage.Value{3}) {
		t.Fatalf("selfloop = %v", p.Derived.Snapshot())
	}
}

// Property: the atom order of rule bodies never changes results (join
// reordering soundness — the foundation of the paper's optimization).
func TestAtomOrderInvarianceProperty(t *testing.T) {
	base := [][2]int8{}
	f := func(edges [][2]int8, seed int64) bool {
		if len(edges) == 0 {
			edges = base
		}
		src1 := ".decl e(x:number, y:number)\n.decl p(x:number, y:number)\n"
		for _, e := range edges {
			src1 += "e(" + itoa(int(uint8(e[0]))%16) + "," + itoa(int(uint8(e[1]))%16) + ").\n"
		}
		// Two orders of the same 3-atom recursive body.
		a := src1 + "p(x,y) :- e(x,y).\np(x,w) :- p(x,y), p(y,z), e(z,w).\n"
		b := src1 + "p(x,y) :- e(x,y).\np(x,w) :- e(z,w), p(y,z), p(x,y).\n"
		catA := storage.NewCatalog()
		resA, err := parser.Parse(a, catA)
		if err != nil {
			return false
		}
		rootA, err := ir.Lower(resA.Program)
		if err != nil {
			return false
		}
		if err := New(catA, nil).Run(rootA); err != nil {
			return false
		}
		catB := storage.NewCatalog()
		resB, err := parser.Parse(b, catB)
		if err != nil {
			return false
		}
		rootB, err := ir.Lower(resB.Program)
		if err != nil {
			return false
		}
		if err := New(catB, nil).Run(rootB); err != nil {
			return false
		}
		pa, _ := catA.PredByName("p")
		pb, _ := catB.PredByName("p")
		if pa.Derived.Len() != pb.Derived.Len() {
			return false
		}
		same := true
		pa.Derived.Each(func(row []storage.Value) bool {
			if !pb.Derived.Contains(row) {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregationCount(t *testing.T) {
	cat := storage.NewCatalog()
	edge := cat.Declare("edge", 2)
	deg := cat.Declare("deg", 2)
	p := ast.NewProgram(cat)
	p.MustAddRule(&ast.Rule{
		Head:    ast.Rel(deg, ast.V(0), ast.V(2)),
		Body:    []ast.Atom{ast.Rel(edge, ast.V(0), ast.V(1))},
		Agg:     ast.AggSpec{Kind: ast.AggCount, HeadPos: 1},
		NumVars: 3,
	})
	for _, e := range [][2]storage.Value{{1, 2}, {1, 3}, {1, 4}, {2, 3}} {
		cat.Pred(edge).AddFact([]storage.Value{e[0], e[1]})
	}
	root, err := ir.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := New(cat, nil).Run(root); err != nil {
		t.Fatal(err)
	}
	d := cat.Pred(deg).Derived
	if !d.Contains([]storage.Value{1, 3}) || !d.Contains([]storage.Value{2, 1}) {
		t.Fatalf("deg = %v", d.Snapshot())
	}
}

func TestAggregationSumMinMax(t *testing.T) {
	cat := storage.NewCatalog()
	sale := cat.Declare("sale", 2)
	agg := cat.Declare("agg", 2)
	for _, e := range [][2]storage.Value{{1, 10}, {1, 20}, {2, 5}} {
		cat.Pred(sale).AddFact([]storage.Value{e[0], e[1]})
	}
	for _, tc := range []struct {
		kind ast.AggKind
		g1   storage.Value
	}{
		{ast.AggSum, 30}, {ast.AggMin, 10}, {ast.AggMax, 20},
	} {
		cat.Pred(agg).Reset()
		p := ast.NewProgram(cat)
		p.MustAddRule(&ast.Rule{
			Head:    ast.Rel(agg, ast.V(0), ast.V(2)),
			Body:    []ast.Atom{ast.Rel(sale, ast.V(0), ast.V(1))},
			Agg:     ast.AggSpec{Kind: tc.kind, HeadPos: 1, OverVar: 1},
			NumVars: 3,
		})
		root, err := ir.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := New(cat, nil).Run(root); err != nil {
			t.Fatal(err)
		}
		if !cat.Pred(agg).Derived.Contains([]storage.Value{1, tc.g1}) {
			t.Fatalf("%v: agg = %v", tc.kind, cat.Pred(agg).Derived.Snapshot())
		}
	}
}

func TestControllerThunkOverridesInterpretation(t *testing.T) {
	cat, _ := runSrc(t, tcChain, false, false) // warm catalog for shape only
	_ = cat
	cat2 := storage.NewCatalog()
	res, err := parser.Parse(tcChain, cat2)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ir.Lower(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &countingController{}
	in := New(cat2, ctrl)
	if err := in.Run(root); err != nil {
		t.Fatal(err)
	}
	if ctrl.enters == 0 {
		t.Fatal("controller never consulted at safe points")
	}
	if in.Stats.Compiled != 0 {
		t.Fatal("nil thunks must not count as compiled executions")
	}
}

type countingController struct{ enters int }

func (c *countingController) Enter(op ir.Op, in *Interp) func() error {
	c.enters++
	return nil
}

func TestPlanErrorOnIllegalOrder(t *testing.T) {
	cat := storage.NewCatalog()
	n := cat.Declare("n", 1)
	out := cat.Declare("out", 1)
	spj := &ir.SPJOp{
		Sink:    out,
		Head:    []ir.ProjElem{{Var: 1}},
		NumVars: 2,
		Atoms: []ir.Atom{
			{Kind: ast.AtomBuiltin, Builtin: ast.BAdd, Terms: []ast.Term{ast.V(0), ast.C(1), ast.V(1)}},
			{Kind: ast.AtomRelation, Pred: n, Terms: []ast.Term{ast.V(0)}},
		},
		DeltaIdx: -1,
	}
	if _, err := BuildPlan(spj, cat); err == nil {
		t.Fatal("builtin before its binding atom must fail plan building")
	}
}

func TestEmptyBodyRule(t *testing.T) {
	// p(1,2) :- .  (constant head, empty body) behaves like a fact.
	cat := storage.NewCatalog()
	p := cat.Declare("p", 2)
	prog := ast.NewProgram(cat)
	prog.MustAddRule(&ast.Rule{Head: ast.Rel(p, ast.C(1), ast.C(2)), NumVars: 0})
	root, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := New(cat, nil).Run(root); err != nil {
		t.Fatal(err)
	}
	if !cat.Pred(p).Derived.Contains([]storage.Value{1, 2}) {
		t.Fatal("empty-body rule did not derive its head")
	}
}
