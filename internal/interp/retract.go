package interp

import (
	"sync"

	"carac/internal/ir"
	"carac/internal/storage"
)

// This file is the execution half of DRed-style retraction (lowered by
// ir.LowerRetract): given the ground facts a transaction deletes, OverDelete
// computes the over-approximate set of derived tuples that might lose
// support — the delta-driven closure of the deletions through every rule,
// evaluated against the OLD database — and, after the caller physically
// removes those rows, Rederive runs one naive round over the reduced
// database to resurrect the candidates that still have an all-surviving
// one-step derivation. Cascading rederivations (a resurrected tuple
// re-supporting another candidate) and co-batched insertions then ride the
// ordinary monotone warm-start continuation (ir.LowerWarm + SeedDelta),
// which is sound because after removal the database under-approximates the
// new fixpoint and the rederived/inserted rows seed its deltas.
//
// Both phases reuse the engine's execution substrate directly: each
// propagation variant is a plain SPJ whose SrcDelta atom reads DeltaKnown
// (SourceRel), so placing the round's doomed tuples there lets BuildPlan +
// Plan.Execute drive the join with the same probe selection, composite
// routing, and physical-bucket iteration as fixpoint evaluation — and the
// independent (rule × variant) executions of a round fan out across the
// worker pool exactly like an iteration's subqueries (readers are frozen for
// the round; each task writes a private buffer merged at the barrier).

// retractTask is one propagation execution of a round: a rule variant whose
// delta position reads the doomed tuples.
type retractTask struct {
	spj  *ir.SPJOp
	sink storage.PredID
}

// OverDelete computes the over-delete closure of seeds (per-predicate ground
// tuples being retracted; the caller has verified presence). It returns the
// full per-predicate candidate sets — seeds included — in deterministic
// order. The catalog's delta relations are used as the round's working state
// and are left cleared; Derived is read but never written (the caller
// removes the returned rows afterwards, via storage.DeleteRows).
//
// protect, when non-nil, exempts tuples from ever becoming candidates — the
// counting half of the maintenance scheme: a ground fact whose assertion
// count is still positive keeps its own support no matter how many of its
// derivations collapse, so it neither gets deleted nor propagates deletion.
func (in *Interp) OverDelete(rules []ir.RetractRule, seeds map[storage.PredID][][]storage.Value, protect func(storage.PredID, []storage.Value) bool) map[storage.PredID][][]storage.Value {
	cat := in.Cat
	for _, pd := range cat.Preds() {
		pd.DeltaKnown.Clear()
		pd.DeltaNew.Clear()
	}
	// doomed is the closure's membership set; out its deterministic order.
	doomed := make(map[storage.PredID]*storage.Relation)
	out := make(map[storage.PredID][][]storage.Value)
	mark := func(pid storage.PredID, t []storage.Value) bool {
		d := doomed[pid]
		if d == nil {
			d = storage.NewRelation("doomed", cat.Pred(pid).Arity)
			doomed[pid] = d
		}
		if !d.Insert(t) {
			return false
		}
		cp := append([]storage.Value(nil), t...)
		out[pid] = append(out[pid], cp)
		return true
	}
	for pid, ts := range seeds {
		for _, t := range ts {
			if mark(pid, t) {
				cat.Pred(pid).DeltaKnown.Insert(t)
			}
		}
	}

	var tasks []retractTask
	for _, rr := range rules {
		for _, spj := range rr.Propagate {
			tasks = append(tasks, retractTask{spj: spj, sink: rr.Head})
		}
	}

	for {
		any := false
		for _, pd := range cat.Preds() {
			if !pd.DeltaKnown.Empty() {
				any = true
				break
			}
		}
		if !any {
			break
		}
		// One propagation round: every variant joins the doomed deltas
		// against the old database; candidate heads that exist in Derived
		// and are not yet doomed enter the next round's delta.
		found := in.runRetractRound(tasks, func(sink storage.PredID, head []storage.Value) bool {
			if d := doomed[sink]; d != nil && d.Contains(head) {
				return false
			}
			if !cat.Pred(sink).Derived.Contains(head) {
				return false
			}
			return protect == nil || !protect(sink, head)
		})
		for _, pd := range cat.Preds() {
			pd.DeltaKnown.Clear()
		}
		for pid, ts := range found {
			for _, t := range ts {
				if mark(pid, t) {
					cat.Pred(pid).DeltaKnown.Insert(t)
				}
			}
		}
	}
	for _, pd := range cat.Preds() {
		pd.DeltaKnown.Clear()
		pd.DeltaNew.Clear()
	}
	return out
}

// Rederive runs the rederivation round: for every candidate set in deleted
// (whose rows the caller has already physically removed), execute each
// rule's naive variant over the reduced database and return the candidates
// that were rederived — they still hold and must be re-inserted. Counted
// into Stats.Rederived.
func (in *Interp) Rederive(rules []ir.RetractRule, deleted map[storage.PredID][][]storage.Value) map[storage.PredID][][]storage.Value {
	cat := in.Cat
	// Membership sets of the removed candidates, per sink.
	want := make(map[storage.PredID]*storage.Relation, len(deleted))
	for pid, ts := range deleted {
		r := storage.NewRelation("cand", cat.Pred(pid).Arity)
		for _, t := range ts {
			r.Insert(t)
		}
		want[pid] = r
	}
	var tasks []retractTask
	for _, rr := range rules {
		if want[rr.Head] == nil {
			continue
		}
		tasks = append(tasks, retractTask{spj: rr.Rederive, sink: rr.Head})
	}
	if len(tasks) == 0 {
		return nil
	}
	seen := make(map[storage.PredID]*storage.Relation)
	found := in.runRetractRound(tasks, func(sink storage.PredID, head []storage.Value) bool {
		return want[sink].Contains(head)
	})
	out := make(map[storage.PredID][][]storage.Value)
	for pid, ts := range found {
		s := seen[pid]
		if s == nil {
			s = storage.NewRelation("rederived", cat.Pred(pid).Arity)
			seen[pid] = s
		}
		for _, t := range ts {
			if s.Insert(t) {
				out[pid] = append(out[pid], t)
				in.Stats.Rederived++
			}
		}
	}
	return out
}

// runRetractRound executes every task once against the current catalog and
// returns the emitted head tuples that pass keep, per sink, deduplicated
// within each task but not across tasks (the caller's merge dedups). Tasks
// fan out across the worker pool when parallel execution is configured —
// sound for the same reason iteration fan-out is: Derived and DeltaKnown are
// frozen for the round and every task writes only its private buffer.
func (in *Interp) runRetractRound(tasks []retractTask, keep func(sink storage.PredID, head []storage.Value) bool) map[storage.PredID][][]storage.Value {
	run := func(t retractTask, sink func(storage.PredID, []storage.Value)) {
		plan, err := BuildPlan(t.spj, in.Cat)
		if err != nil {
			// The lowering only emits orders the optimizer validated; an
			// unbound order here would also have failed the cold run. Skip —
			// the caller's cold-path fallback covers it.
			return
		}
		plan.Cancel = in.Cancelled
		in.Stats.SPJRuns++
		in.Stats.PlanBuilds++
		plan.Execute(in.Cat, func(head, _ []storage.Value) {
			if keep(t.sink, head) {
				sink(t.sink, append([]storage.Value(nil), head...))
			}
		})
	}

	workers := 1
	if in.Parallel && len(tasks) > 1 {
		workers = in.workerCount()
		if workers > len(tasks) {
			workers = len(tasks)
		}
	}
	if workers <= 1 {
		out := make(map[storage.PredID][][]storage.Value)
		for _, t := range tasks {
			run(t, func(pid storage.PredID, row []storage.Value) {
				out[pid] = append(out[pid], row)
			})
		}
		return out
	}
	// Parallel: one private result list per task, merged in task order so
	// the round's output order is deterministic regardless of scheduling.
	results := make([]map[storage.PredID][][]storage.Value, len(tasks))
	var wg sync.WaitGroup
	next := make(chan int, len(tasks))
	for i := range tasks {
		next <- i
	}
	close(next)
	// Stats from worker goroutines would race; count the round's executions
	// up front and leave per-plan stats to the sequential path.
	in.Stats.SPJRuns += int64(len(tasks))
	in.Stats.PlanBuilds += int64(len(tasks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := tasks[i]
				buf := make(map[storage.PredID][][]storage.Value)
				plan, err := BuildPlan(t.spj, in.Cat)
				if err != nil {
					continue
				}
				plan.Cancel = in.Cancelled
				plan.Execute(in.Cat, func(head, _ []storage.Value) {
					if keep(t.sink, head) {
						buf[t.sink] = append(buf[t.sink], append([]storage.Value(nil), head...))
					}
				})
				results[i] = buf
			}
		}()
	}
	wg.Wait()
	out := make(map[storage.PredID][][]storage.Value)
	for _, buf := range results {
		for pid, ts := range buf {
			out[pid] = append(out[pid], ts...)
		}
	}
	return out
}
