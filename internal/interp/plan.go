// Package interp implements the tree-walking interpreter over IROps and the
// access-plan machinery that every compilation backend shares: a plan
// resolves one SPJ subquery's atom order into a sequence of scan/probe/
// filter/bind steps, choosing an indexed probe column per atom when one is
// available.
//
// Plans reference relations by (predicate, source) and resolve them at
// execution time, because SwapClearOp swaps relation identities between
// iterations; a plan therefore stays valid across iterations while the atom
// order it froze may grow stale — exactly the staleness the JIT's freshness
// test measures.
package interp

import (
	"fmt"

	"carac/internal/ast"
	"carac/internal/eval"
	"carac/internal/ir"
	"carac/internal/storage"
)

// CheckMode discriminates equality filters within a relational step.
type CheckMode uint8

const (
	// CheckConst compares a column against a constant.
	CheckConst CheckMode = iota
	// CheckVar compares a column against an already-bound variable.
	CheckVar
	// CheckSameRow compares a column against an earlier column of the same
	// row (intra-atom repeated variable).
	CheckSameRow
)

// ColCheck is one equality filter on a relational step.
type ColCheck struct {
	Col   int
	Mode  CheckMode
	Const storage.Value // CheckConst
	Var   ast.VarID     // CheckVar
	Other int           // CheckSameRow
}

// ColBind records that a column's value binds a variable.
type ColBind struct {
	Col int
	Var ast.VarID
}

// StepKind discriminates plan steps.
type StepKind uint8

const (
	// StepScan iterates all rows of a relation, filtering.
	StepScan StepKind = iota
	// StepProbe looks rows up through a hash index on ProbeCol.
	StepProbe
	// StepProbeN looks rows up through a composite index on ProbeCols.
	StepProbeN
	// StepNegCheck asserts the absence of a fully bound tuple.
	StepNegCheck
	// StepBuiltin evaluates a builtin: pure filter if Out < 0, otherwise it
	// solves and binds the output term.
	StepBuiltin
)

// TmplElem is one position of a negation tuple template.
type TmplElem struct {
	IsConst bool
	Const   storage.Value
	Var     ast.VarID
}

// Step is one atom of a compiled access plan.
type Step struct {
	Kind StepKind

	// Relational steps.
	Pred      storage.PredID
	Src       ir.Source
	ProbeCol  int // StepProbe: the indexed column
	ProbeKey  TmplElem
	ProbeCols []int      // StepProbeN: ascending composite columns
	ProbeKeys []TmplElem // StepProbeN: parallel to ProbeCols
	Checks    []ColCheck
	Binds     []ColBind

	// StepNegCheck.
	Tmpl []TmplElem

	// StepBuiltin.
	Builtin ast.Builtin
	Args    []TmplElem
	Out     int       // index into Args receiving the solved value, -1 = filter
	OutVar  ast.VarID // variable bound by Out
}

// Plan is a fully resolved execution strategy for one SPJ subquery in one
// specific atom order.
type Plan struct {
	Steps   []Step
	Head    []ir.ProjElem
	Sink    storage.PredID
	NumVars int
	Agg     ast.AggSpec

	// EstRows is the histogram-based join-output size estimate recorded when
	// the plan was built (see Interp.Estimate); 0 when estimation is off.
	// Part of the cached artifact: bindPlan's struct copy carries it through
	// rebinds, so the recorded estimate stays attached to the atom order it
	// justified.
	EstRows float64

	// Cancel, when non-nil, is polled once per row of the outermost
	// relation so that multi-minute cartesian products can be aborted
	// (benchmark DNF timeouts).
	Cancel func() bool
	// Yield, when non-nil, is polled alongside Cancel: returning true
	// abandons the rest of this execution and sets Yielded. The interpreter
	// uses it to escape a long-running badly-ordered subquery the moment an
	// asynchronously compiled ancestor unit becomes ready (paper §V-B2:
	// compiled code takes over "at the exact spot the interpreter left
	// off"); abandoning is sound because the ancestor unit recomputes the
	// subsumed work from storage state.
	Yield func() bool
	// Yielded reports that the last Execute was abandoned via Yield.
	Yielded bool

	// Shard restriction (per-execution state, set on plan copies by the
	// sharded fan-out; always zero in cached plans): when ShardCount > 1 the
	// relational step at index ShardStep — the subquery's delta read — only
	// admits rows whose ShardKeyCol hashes into the bucket span
	// [Shard, Shard+ShardSpan), so the tasks evaluating this subquery cover
	// disjoint slices of the delta and their union covers it exactly. The
	// adaptive fan-out sizes the span: one bucket per task at full fan-out,
	// wider spans when the live delta statistics call for fewer tasks.
	Shard       int
	ShardSpan   int
	ShardCount  int
	ShardStep   int
	ShardKeyCol int
}

// inShard reports whether row belongs to the plan's delta bucket span.
func (p *Plan) inShard(row []storage.Value) bool {
	s := storage.ShardOf(row[p.ShardKeyCol], p.ShardCount)
	return s >= p.Shard && s < p.Shard+p.ShardSpan
}

// SourceRel resolves the relation a relational step reads right now.
func SourceRel(cat *storage.Catalog, pred storage.PredID, src ir.Source) *storage.Relation {
	p := cat.Pred(pred)
	if src == ir.SrcDelta {
		return p.DeltaKnown
	}
	return p.Derived
}

// BuildPlan compiles the SPJ's current atom order into a Plan. It returns an
// error if the order violates binding constraints (builtin inputs or negated
// atoms unbound when reached) — compiled backends rely on this as their
// soundness check, and the optimizer never produces illegal orders.
func BuildPlan(spj *ir.SPJOp, cat *storage.Catalog) (*Plan, error) {
	p := &Plan{
		Head:    spj.Head,
		Sink:    spj.Sink,
		NumVars: spj.NumVars,
		Agg:     spj.Agg,
	}
	bound := make([]bool, spj.NumVars)
	for ai, a := range spj.Atoms {
		switch a.Kind {
		case ast.AtomRelation:
			st := Step{Kind: StepScan, Pred: a.Pred, Src: a.Src, ProbeCol: -1}
			firstOcc := map[ast.VarID]int{}
			for col, t := range a.Terms {
				switch t.Kind {
				case ast.TermConst:
					st.Checks = append(st.Checks, ColCheck{Col: col, Mode: CheckConst, Const: t.Val})
				case ast.TermVar:
					if prev, ok := firstOcc[t.Var]; ok {
						st.Checks = append(st.Checks, ColCheck{Col: col, Mode: CheckSameRow, Other: prev})
						continue
					}
					firstOcc[t.Var] = col
					if bound[t.Var] {
						st.Checks = append(st.Checks, ColCheck{Col: col, Mode: CheckVar, Var: t.Var})
					} else {
						st.Binds = append(st.Binds, ColBind{Col: col, Var: t.Var})
					}
				}
			}
			// Probe selection. Registration is checked on Derived (index
			// registrations are identical across a predicate's three
			// relations and the Derived pointer is never swapped), so plan
			// building is safe on the asynchronous compile thread while the
			// interpreter runs.
			selectProbe(&st, cat.Pred(a.Pred).Derived)
			for _, b := range st.Binds {
				bound[b.Var] = true
			}
			p.Steps = append(p.Steps, st)

		case ast.AtomNegated:
			st := Step{Kind: StepNegCheck, Pred: a.Pred, Src: a.Src}
			for _, t := range a.Terms {
				switch t.Kind {
				case ast.TermConst:
					st.Tmpl = append(st.Tmpl, TmplElem{IsConst: true, Const: t.Val})
				case ast.TermVar:
					if !bound[t.Var] {
						return nil, fmt.Errorf("interp: negated atom %d reached with unbound variable v%d", ai, t.Var)
					}
					st.Tmpl = append(st.Tmpl, TmplElem{Var: t.Var})
				}
			}
			p.Steps = append(p.Steps, st)

		case ast.AtomBuiltin:
			outs, ok := ast.BuiltinBindable(ir2astAtom(a), func(v ast.VarID) bool { return bound[v] })
			if !ok {
				return nil, fmt.Errorf("interp: builtin %v at atom %d has unbound inputs", a.Builtin, ai)
			}
			st := Step{Kind: StepBuiltin, Builtin: a.Builtin, Out: -1}
			for _, t := range a.Terms {
				if t.Kind == ast.TermConst {
					st.Args = append(st.Args, TmplElem{IsConst: true, Const: t.Val})
				} else {
					st.Args = append(st.Args, TmplElem{Var: t.Var})
				}
			}
			if len(outs) == 1 {
				st.Out = outs[0]
				t := a.Terms[outs[0]]
				st.OutVar = t.Var
				bound[t.Var] = true
			} else if len(outs) > 1 {
				return nil, fmt.Errorf("interp: builtin %v at atom %d has %d unbound outputs", a.Builtin, ai, len(outs))
			}
			p.Steps = append(p.Steps, st)
		}
	}
	// Head safety (belt and braces; ast.CheckRule already enforced this).
	for i, h := range p.Head {
		if !h.IsConst && !bound[h.Var] {
			if p.Agg.Kind != ast.AggNone && i == p.Agg.HeadPos {
				continue
			}
			return nil, fmt.Errorf("interp: head position %d unbound after body", i)
		}
	}
	return p, nil
}

// selectProbe upgrades a scan step to the best probe registered on idxRel:
// the widest composite index fully covered by the step's const/var equality
// checks, else the first single-column indexed check. Consumed checks move
// into the probe key; the rest stay row filters. The check slice is replaced,
// never truncated in place, so the step may alias a cached plan's slice
// (bindPlan's rebind-time upgrade runs on step copies sharing backing
// arrays). Steps that are already probes are left alone.
func selectProbe(st *Step, idxRel *storage.Relation) {
	// No equality checks means nothing to probe on — the common fast-out
	// for bindPlan's per-rebind upgrade attempt.
	if st.Kind != StepScan || len(st.Checks) == 0 {
		return
	}
	if comp := chooseComposite(idxRel, st.Checks); comp != nil {
		st.Kind = StepProbeN
		st.ProbeCol = -1
		st.ProbeCols = comp.cols
		st.ProbeKeys = comp.keys
		st.Checks = comp.rest
		return
	}
	for ci, ck := range st.Checks {
		if ck.Mode == CheckSameRow || !idxRel.HasIndex(ck.Col) {
			continue
		}
		st.Kind = StepProbe
		st.ProbeCol = ck.Col
		if ck.Mode == CheckConst {
			st.ProbeKey = TmplElem{IsConst: true, Const: ck.Const}
		} else {
			st.ProbeKey = TmplElem{Var: ck.Var}
		}
		rest := make([]ColCheck, 0, len(st.Checks)-1)
		rest = append(rest, st.Checks[:ci]...)
		rest = append(rest, st.Checks[ci+1:]...)
		st.Checks = rest
		return
	}
}

// demoteProbe converts a probe step back into the scan it was selected
// from, restoring the consumed probe-key check(s), so a subsequent
// selectProbe can pick whatever access path the rebind target supports.
// Fresh slices only — the step may alias a cached plan's slices.
func demoteProbe(st *Step) {
	switch st.Kind {
	case StepProbe:
		checks := make([]ColCheck, 0, len(st.Checks)+1)
		checks = append(checks, st.Checks...)
		checks = append(checks, probeKeyCheck(st.ProbeCol, st.ProbeKey))
		st.Checks = checks
		st.ProbeCol = -1
		st.ProbeKey = TmplElem{}
	case StepProbeN:
		checks := make([]ColCheck, 0, len(st.Checks)+len(st.ProbeCols))
		checks = append(checks, st.Checks...)
		for i, c := range st.ProbeCols {
			checks = append(checks, probeKeyCheck(c, st.ProbeKeys[i]))
		}
		st.Checks = checks
		st.ProbeCols = nil
		st.ProbeKeys = nil
	default:
		return
	}
	st.Kind = StepScan
}

// probeKeyCheck is the inverse of selectProbe's key consumption: the
// equality filter a probe key encodes.
func probeKeyCheck(col int, k TmplElem) ColCheck {
	if k.IsConst {
		return ColCheck{Col: col, Mode: CheckConst, Const: k.Const}
	}
	return ColCheck{Col: col, Mode: CheckVar, Var: k.Var}
}

func ir2astAtom(a ir.Atom) ast.Atom {
	return ast.Atom{Kind: a.Kind, Pred: a.Pred, Builtin: a.Builtin, Terms: a.Terms}
}

// compositeChoice is the outcome of matching equality filters against the
// relation's registered composite indexes.
type compositeChoice struct {
	cols []int
	keys []TmplElem
	rest []ColCheck
}

// chooseComposite finds the widest registered composite index whose columns
// are all covered by const/var equality checks.
func chooseComposite(rel *storage.Relation, checks []ColCheck) *compositeChoice {
	sets := rel.CompositeIndexes()
	if len(sets) == 0 {
		return nil
	}
	byCol := make(map[int]ColCheck, len(checks))
	for _, ck := range checks {
		if ck.Mode == CheckSameRow {
			continue
		}
		if _, dup := byCol[ck.Col]; !dup {
			byCol[ck.Col] = ck
		}
	}
	var best []int
	for _, cols := range sets {
		if len(cols) <= len(best) {
			continue
		}
		covered := true
		for _, c := range cols {
			if _, ok := byCol[c]; !ok {
				covered = false
				break
			}
		}
		if covered {
			best = cols
		}
	}
	if best == nil {
		return nil
	}
	choice := &compositeChoice{cols: best}
	used := make(map[int]bool, len(best))
	for _, c := range best {
		ck := byCol[c]
		if ck.Mode == CheckConst {
			choice.keys = append(choice.keys, TmplElem{IsConst: true, Const: ck.Const})
		} else {
			choice.keys = append(choice.keys, TmplElem{Var: ck.Var})
		}
		used[c] = true
	}
	consumed := make(map[int]bool, len(best))
	for _, ck := range checks {
		if ck.Mode != CheckSameRow && used[ck.Col] && !consumed[ck.Col] {
			consumed[ck.Col] = true
			continue // absorbed by the probe (first check per column only)
		}
		choice.rest = append(choice.rest, ck)
	}
	return choice
}

// resolve evaluates a template element under the current bindings.
func (t TmplElem) resolve(bind []storage.Value) storage.Value {
	if t.IsConst {
		return t.Const
	}
	return bind[t.Var]
}

// Execute runs the plan against the catalog, invoking emit for every body
// match with the projected head tuple and the full variable bindings (the
// latter lets aggregation sinks read the aggregated variable). Both slices
// are reused across calls; emit must copy what it keeps.
func (p *Plan) Execute(cat *storage.Catalog, emit func(head, bind []storage.Value)) {
	bind := make([]storage.Value, p.NumVars)
	head := make([]storage.Value, len(p.Head))
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Steps) {
			for hi, h := range p.Head {
				if h.IsConst {
					head[hi] = h.Const
				} else {
					head[hi] = bind[h.Var]
				}
			}
			emit(head, bind)
			return
		}
		st := &p.Steps[i]
		switch st.Kind {
		case StepScan, StepProbe, StepProbeN:
			rel := SourceRel(cat, st.Pred, st.Src)
			// Poll cancellation/yield in the two outermost loops: the outer
			// one alone is not enough when a tiny delta drives a huge inner
			// cartesian product.
			checkCancel := i <= 1 && p.Cancel != nil
			checkYield := i <= 1 && p.Yield != nil
			// Shard restriction on the delta step: served from the
			// incrementally maintained bucket lists when the relation's
			// partition matches the task layout (the scan fast path below),
			// otherwise enforced row-by-row here.
			shardFilter := p.ShardCount > 1 && i == p.ShardStep
			match := func(row []storage.Value) {
				if shardFilter && !p.inShard(row) {
					return
				}
				for _, ck := range st.Checks {
					switch ck.Mode {
					case CheckConst:
						if row[ck.Col] != ck.Const {
							return
						}
					case CheckVar:
						if row[ck.Col] != bind[ck.Var] {
							return
						}
					case CheckSameRow:
						if row[ck.Col] != row[ck.Other] {
							return
						}
					}
				}
				for _, b := range st.Binds {
					bind[b.Var] = row[b.Col]
				}
				rec(i + 1)
			}
			stop := func() bool {
				if p.Yielded || (checkCancel && p.Cancel()) {
					return true
				}
				if checkYield && p.Yield() {
					p.Yielded = true
					return true
				}
				return false
			}
			// Physically sharded relations serve probes and scans bucket-
			// locally: row ids are meaningless to the parent, and a shard-
			// restricted step whose layout matches the partition narrows to
			// exactly its bucket span — no per-row hash.
			if subs := rel.PhysSubs(); subs != nil {
				lo, hi := 0, len(subs)
				if shardFilter {
					if sc, col := rel.ShardConfig(); sc == p.ShardCount && col == p.ShardKeyCol {
						lo, hi = p.Shard, p.Shard+p.ShardSpan
						shardFilter = false
					}
				}
				switch st.Kind {
				case StepProbe:
					key := st.ProbeKey.resolve(bind)
					// A probe on the shard key column routes to exactly one
					// bucket — no reason to touch the other buckets' indexes
					// (and a bucket outside the task's span holds nothing
					// this task may emit, hence the intersection).
					plo, phi := rel.ProbeSpan(st.ProbeCol, key)
					lo, hi = max(lo, plo), min(hi, phi)
					for s := lo; s < hi; s++ {
						sub := subs[s]
						rows, ok := sub.Probe(st.ProbeCol, key)
						if !ok {
							sub.Each(func(row []storage.Value) bool {
								if stop() {
									return false
								}
								if row[st.ProbeCol] == key {
									match(row)
								}
								return true
							})
							continue
						}
						for _, ri := range rows {
							if stop() {
								return
							}
							match(sub.Row(ri))
						}
					}
				case StepProbeN:
					vals := make([]storage.Value, len(st.ProbeKeys))
					for ki, k := range st.ProbeKeys {
						vals[ki] = k.resolve(bind)
					}
					// As above: a composite probe covering the shard key
					// column routes to one bucket.
					plo, phi := rel.ProbeSpanComposite(st.ProbeCols, vals)
					lo, hi = max(lo, plo), min(hi, phi)
					for s := lo; s < hi; s++ {
						sub := subs[s]
						rows, ok := sub.ProbeComposite(st.ProbeCols, vals)
						if !ok {
							sub.Each(func(row []storage.Value) bool {
								if stop() {
									return false
								}
								for ci, c := range st.ProbeCols {
									if row[c] != vals[ci] {
										return true
									}
								}
								match(row)
								return true
							})
							continue
						}
						for _, ri := range rows {
							if stop() {
								return
							}
							match(sub.Row(ri))
						}
					}
				default:
					rel.EachShardRange(lo, hi, func(row []storage.Value) bool {
						if stop() {
							return false
						}
						match(row)
						return true
					})
				}
				return
			}
			if st.Kind == StepProbe {
				key := st.ProbeKey.resolve(bind)
				rows, ok := rel.Probe(st.ProbeCol, key)
				if !ok {
					// Index vanished (should not happen); degrade to scan.
					rel.Each(func(row []storage.Value) bool {
						if stop() {
							return false
						}
						if row[st.ProbeCol] == key {
							match(row)
						}
						return true
					})
					return
				}
				for _, ri := range rows {
					if stop() {
						return
					}
					match(rel.Row(ri))
				}
				return
			}
			if st.Kind == StepProbeN {
				vals := make([]storage.Value, len(st.ProbeKeys))
				for ki, k := range st.ProbeKeys {
					vals[ki] = k.resolve(bind)
				}
				rows, ok := rel.ProbeComposite(st.ProbeCols, vals)
				if !ok {
					// Composite index missing at runtime: filtered scan.
					rel.Each(func(row []storage.Value) bool {
						if stop() {
							return false
						}
						for ci, c := range st.ProbeCols {
							if row[c] != vals[ci] {
								return true
							}
						}
						match(row)
						return true
					})
					return
				}
				for _, ri := range rows {
					if stop() {
						return
					}
					match(rel.Row(ri))
				}
				return
			}
			if shardFilter {
				if sc, col := rel.ShardConfig(); sc == p.ShardCount && col == p.ShardKeyCol {
					// Bucket lists are exact for this layout: iterate only
					// this task's span and skip the per-row hash.
					shardFilter = false
					rel.EachShardRange(p.Shard, p.Shard+p.ShardSpan, func(row []storage.Value) bool {
						if stop() {
							return false
						}
						match(row)
						return true
					})
					return
				}
			}
			rel.Each(func(row []storage.Value) bool {
				if stop() {
					return false
				}
				match(row)
				return true
			})

		case StepNegCheck:
			rel := SourceRel(cat, st.Pred, st.Src)
			tuple := make([]storage.Value, len(st.Tmpl))
			for ti, tm := range st.Tmpl {
				tuple[ti] = tm.resolve(bind)
			}
			if !rel.Contains(tuple) {
				rec(i + 1)
			}

		case StepBuiltin:
			vals := make([]storage.Value, len(st.Args))
			for vi, a := range st.Args {
				if st.Out == vi {
					continue
				}
				vals[vi] = a.resolve(bind)
			}
			if st.Out < 0 {
				if eval.Check(st.Builtin, vals) {
					rec(i + 1)
				}
				return
			}
			v, ok := eval.Solve(st.Builtin, vals, st.Out)
			if !ok {
				return
			}
			bind[st.OutVar] = v
			rec(i + 1)
		}
	}
	rec(0)
}
